#include "src/kernel/alloc.h"

#include "src/support/strings.h"

namespace sva::kernel {

KernelAllocators::KernelAllocators(hw::Machine& machine,
                                   runtime::MetaPoolRuntime* pools,
                                   bool safety_checks)
    : pages_(machine),
      pools_(pools),
      safety_checks_(safety_checks && pools != nullptr),
      kmalloc_(std::make_unique<runtime::OrdinaryAllocator>(pages_)) {
  if (safety_checks_) {
    // SVA-PORT(alloc): one metapool per kmalloc size class — the exposed
    // kmalloc/kmem_cache relationship of Section 6.2 avoids merging all of
    // kmalloc.
    for (const auto& cache : kmalloc_->caches()) {
      kmalloc_pools_[cache->object_size()] = pools_->GetPool(
          StrCat("MPk.", cache->name()), /*type_homogeneous=*/false,
          /*element_size=*/cache->object_size(), /*complete=*/true);
    }
  }
}

runtime::PoolAllocator* KernelAllocators::CreateCache(const std::string& name,
                                                      uint64_t object_size) {
  auto cache =
      std::make_unique<runtime::PoolAllocator>(name, object_size, pages_);
  runtime::PoolAllocator* raw = cache.get();
  caches_[name] = std::move(cache);
  if (safety_checks_) {
    // SVA-PORT(alloc): typed caches map to type-homogeneous, complete
    // metapools; identified to the safety-checking compiler at creation.
    cache_pools_[raw] =
        pools_->GetPool(StrCat("MPc.", name), /*type_homogeneous=*/true,
                        object_size, /*complete=*/true);
  }
  return raw;
}

Result<uint64_t> KernelAllocators::CacheAlloc(runtime::PoolAllocator* cache) {
  uint64_t addr = cache->Allocate();
  if (addr == 0) {
    return Internal(StrCat("cache ", cache->name(), ": out of memory"));
  }
  if (safety_checks_) {
    // SVA-PORT(alloc): object registration inserted at the allocation site.
    SVA_RETURN_IF_ERROR(pools_->RegisterObject(*cache_pools_.at(cache), addr,
                                               cache->object_size()));
  }
  return addr;
}

Status KernelAllocators::CacheFree(runtime::PoolAllocator* cache,
                                   uint64_t addr) {
  if (safety_checks_) {
    SVA_RETURN_IF_ERROR(pools_->DropObject(*cache_pools_.at(cache), addr));
  }
  return cache->Free(addr);
}

Result<uint64_t> KernelAllocators::Kmalloc(uint64_t size) {
  uint64_t addr = kmalloc_->Allocate(size);
  if (addr == 0) {
    return Internal(StrCat("kmalloc(", size, "): out of memory"));
  }
  if (safety_checks_) {
    uint64_t cls = kmalloc_->AllocationSize(addr);
    SVA_RETURN_IF_ERROR(
        pools_->RegisterObject(*kmalloc_pools_.at(cls), addr, cls));
  }
  return addr;
}

Status KernelAllocators::Kfree(uint64_t addr) {
  if (safety_checks_) {
    uint64_t cls = kmalloc_->AllocationSize(addr);
    if (cls == 0) {
      return SafetyViolation(
          StrCat("kfree of unknown address 0x", std::hex, addr));
    }
    SVA_RETURN_IF_ERROR(pools_->DropObject(*kmalloc_pools_.at(cls), addr));
  }
  return kmalloc_->Free(addr);
}

Result<uint64_t> KernelAllocators::AllocBootmem(uint64_t size) {
  // Bootmem shares the kmalloc implementation during normal operation; a
  // real kernel would use a distinct early allocator (Section 6.2: the
  // stack-promotion interface uses _alloc_bootmem early, kmalloc later).
  return Kmalloc(size);
}

runtime::MetaPool* KernelAllocators::PoolForCache(
    const runtime::PoolAllocator* cache) const {
  auto it = cache_pools_.find(cache);
  return it == cache_pools_.end() ? nullptr : it->second;
}

runtime::MetaPool* KernelAllocators::PoolForKmallocClass(uint64_t size) const {
  for (const auto& [cls, pool] : kmalloc_pools_) {
    if (size <= cls) {
      return pool;
    }
  }
  return nullptr;
}

}  // namespace sva::kernel
