// The minikernel: a commodity-kernel stand-in ported to SVA-OS, hosting the
// subsystems the paper's evaluation exercises — processes with fork/exec,
// a VFS with a ramfs, pipes, signals delivered via llva.ipush.function,
// sockets, and the slab/kmalloc allocators of alloc.h.
//
// The kernel builds in the four configurations of Section 7.1 (config.h).
// Porting markers: lines changed for the SVA port are tagged with
// SVA-PORT(category) comments, which bench/table4_porting_effort counts the
// way Table 4 counts Linux diff lines. Categories: svaos (SVA-OS calls
// replacing privileged code), alloc (allocator contract changes), analysis
// (changes aiding the safety analysis).
#ifndef SVA_SRC_KERNEL_KERNEL_H_
#define SVA_SRC_KERNEL_KERNEL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/kernel/alloc.h"
#include "src/kernel/config.h"
#include "src/mm/vm.h"
#include "src/net/net_stack.h"
#include "src/runtime/metapool_runtime.h"
#include "src/smp/epoch.h"
#include "src/smp/lock_order.h"
#include "src/smp/sync.h"
#include "src/support/status.h"
#include "src/svaos/svaos.h"

namespace sva::kernel {

// System call numbers (Linux 2.4-flavoured).
enum class Sys : uint64_t {
  kExit = 1,
  kFork = 2,
  kRead = 3,
  kWrite = 4,
  kOpen = 5,
  kClose = 6,
  kWaitPid = 7,
  kUnlink = 10,
  kExecve = 11,
  // stat(path): returns the file's size in bytes (kENoEnt if absent).
  // Resolves the path through the epoch-protected directory index — the
  // whole syscall is lock-free, the canonical read-mostly fast path.
  kStat = 18,
  kLseek = 19,
  kGetPid = 20,
  kKill = 37,
  kPipe = 42,
  kBrk = 45,  // sbrk-style: argument is a delta, returns the new break.
  kSigaction = 67,
  kGetRusage = 77,
  kGetTimeOfDay = 78,
  kDup = 41,
  kSocket = 97,
  kSend = 98,
  kRecv = 99,
  kBind = 100,
  kAccept = 101,
  // Event-driven I/O (the epoll analog): create an event queue fd, register
  // interest in net-socket fds, wait for readiness with a timeout.
  kEvqCreate = 104,
  kEvqCtl = 105,
  kEvqWait = 106,
  // perf_event analog: open a self-profiling session fd, read its samples,
  // close the session. A task may only profile itself (kEPerm otherwise).
  kProfStart = 110,
  kProfStop = 111,
  kProfRead = 112,
};

// Socket domains for Sys::kSocket's first argument.
enum class SocketDomain : uint64_t {
  kLegacyLoopback = 0,  // The pre-net-stack in-kernel loopback queue.
  kDatagram = 1,        // UDP over the net stack.
  kListener = 2,        // Stream listener over the net stack.
};
inline constexpr int kMaxSignals = 32;
inline constexpr uint64_t kUserVirtualBase = 0x400000;
inline constexpr uint64_t kBlockSize = 4096;
inline constexpr uint64_t kPipeCapacity = 16384;
inline constexpr uint64_t kMaxPathLength = 64;

// Readiness event bits for kEvqCtl/kEvqWait. Numerically identical to the
// net stack's kReadyIn/kReadyOut/kReadyErr/kReadyHup so PollReady() results
// pass through unmasked.
inline constexpr uint32_t kEvqIn = 1;
inline constexpr uint32_t kEvqOut = 2;
inline constexpr uint32_t kEvqErr = 4;
inline constexpr uint32_t kEvqHup = 8;

// kEvqCtl op codes (low byte of a1; bits 8.. carry the interest mask — 0
// means the default kEvqIn | kEvqErr | kEvqHup).
inline constexpr uint64_t kEvqCtlAdd = 1;
inline constexpr uint64_t kEvqCtlMod = 2;
inline constexpr uint64_t kEvqCtlDel = 3;

// One record written to user memory by kEvqWait (16 bytes on the wire:
// u64 user_data, u32 events, u32 fd).
struct EvqEvent {
  uint64_t user_data = 0;
  uint32_t events = 0;
  uint32_t fd = 0;
};
inline constexpr uint64_t kEvqEventBytes = 16;
// kEvqWait returns at most this many records per call regardless of the
// caller's max_events (bounds the kmalloc scratch buffer).
inline constexpr uint64_t kEvqMaxEventsPerWait = 256;

struct SigAction {
  // Handler ids are small integers the "user program" registers; 0 = default.
  uint64_t handler = 0;
};

// The epoch-published fd table: a fixed-capacity array of atomic open-file
// indices (-1 = free). Readers resolve fd -> index lock-free under an
// EpochGuard; writers (who hold files_lock_) mutate slots in place and
// grow by publishing a copy, retiring the old table through the epoch
// machinery. See docs/CONCURRENCY.md §5.
struct FdTable {
  explicit FdTable(uint64_t cap)
      : capacity(cap), slots(new std::atomic<int>[cap]) {
    for (uint64_t i = 0; i < cap; ++i) {
      slots[i].store(-1, std::memory_order_relaxed);
    }
  }
  const uint64_t capacity;
  std::unique_ptr<std::atomic<int>[]> slots;
};

// Movable holder for a task's FdTable pointer. Task must stay movable (it
// is inserted into the pid map by value) and std::atomic<T*> is not, so
// this wraps one; moves only happen before the task is published, so they
// can be plain exchanges. Destruction deletes the table directly — by
// then the owning task is reaped and no reader can hold its fds (reaping
// a task still running syscalls is a caller bug, per FindTask).
class FdTablePtr {
 public:
  FdTablePtr() = default;
  explicit FdTablePtr(FdTable* table) : ptr_(table) {}
  FdTablePtr(FdTablePtr&& other) noexcept
      : ptr_(other.ptr_.exchange(nullptr, std::memory_order_relaxed)) {}
  FdTablePtr& operator=(FdTablePtr&& other) noexcept {
    if (this != &other) {
      delete ptr_.exchange(
          other.ptr_.exchange(nullptr, std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    return *this;
  }
  FdTablePtr(const FdTablePtr&) = delete;
  FdTablePtr& operator=(const FdTablePtr&) = delete;
  ~FdTablePtr() { delete ptr_.load(std::memory_order_relaxed); }

  // Reader side: acquire pairs with publish()'s release, so a reader that
  // sees a grown table also sees the fd_block store that preceded it.
  FdTable* load_acquire() const {
    return ptr_.load(std::memory_order_acquire);
  }
  // Writer side (files_lock_ held): no ordering needed to read own state.
  FdTable* load_plain() const {
    return ptr_.load(std::memory_order_relaxed);
  }
  void publish(FdTable* table) {
    ptr_.store(table, std::memory_order_release);
  }
  FdTable* exchange(FdTable* table) {
    return ptr_.exchange(table, std::memory_order_acq_rel);
  }

 private:
  std::atomic<FdTable*> ptr_{nullptr};
};

struct Task {
  uint64_t addr = 0;  // Address of the task struct in the task cache.
  int pid = 0;
  int parent = 0;
  bool zombie = false;
  bool alive = false;
  uint64_t brk = 0;
  // Open-file table indices; -1 = free. The first max_fds slots live inside
  // the task-cache object (the object size scales with max_fds); growth past
  // that moves the modeled array to a kmalloc'd block (fd_block), the Linux
  // files_struct/fdtable expansion scheme. Epoch-published: readers resolve
  // slots under an EpochGuard, writers mutate under files_lock_.
  FdTablePtr fds;
  // SVA-PORT(alloc): external fd-array block once the table outgrew the
  // embedded array; 0 while embedded. Bounds checks for fd slots go against
  // the kmalloc class pool instead of the task cache pool then.
  uint64_t fd_block = 0;
  // Lowest slot that could be free (every slot below it is occupied);
  // AllocateFd scans from here so 10k sequential accepts stay O(1) each.
  int fd_next_hint = 0;
  // SVA-PORT(svaos): processor state is opaque SVA-OS buffers, not a
  // hand-written struct pt_regs.
  svaos::SavedIntegerState cpu_state;
  svaos::SavedFpState fp_state;
  // SVA-PORT(svaos): user memory is a per-task address space whose page
  // tables are mutated only through the SVA-OS MMU operations (src/mm).
  std::unique_ptr<mm::AddressSpace> aspace;
  std::array<SigAction, kMaxSignals> sigactions{};
  uint32_t pending_signals = 0;
  uint64_t signals_delivered = 0;
};

struct Inode {
  uint64_t addr = 0;  // Inode cache object address.
  int ino = 0;
  std::string name;
  std::vector<uint64_t> blocks;  // kmalloc'd data blocks.
  uint64_t size = 0;
  int nlink = 1;
};

struct Pipe {
  uint64_t addr = 0;      // Pipe cache object address.
  uint64_t buffer = 0;    // kmalloc'd ring buffer.
  uint64_t rpos = 0;
  uint64_t wpos = 0;
  uint64_t count = 0;
};

struct Socket {
  uint64_t addr = 0;
  // Loopback queue of kmalloc'd skbs: (address, length).
  std::vector<std::pair<uint64_t, uint64_t>> queue;
  uint64_t queued_bytes = 0;
};

struct OpenFile {
  uint64_t addr = 0;  // File cache object address.
  // Guarded by files_lock_ (writers only — lock-free readers never read
  // refcounts; liveness comes from the epoch grace period instead).
  int refs = 0;
  int ino = -1;        // Ramfs inode, or
  int pipe_id = -1;    // pipe (with end), or
  bool pipe_read_end = false;
  int socket_id = -1;      // legacy loopback socket, or
  int net_socket_id = -1;  // a socket in the net stack (src/net), or
  int evq_id = -1;         // an event queue (kEvqCreate), or
  int prof_id = -1;        // a profiling session (kProfStart).
  // Accessed via std::atomic_ref: mutated under the backing subsystem's
  // lock (vfs_lock_ for regular files), read lock-free by the
  // lseek(fd, 0, SEEK_CUR) fast path.
  uint64_t offset = 0;
};

// The epoch-published open-file table: a fixed-capacity array of atomic
// OpenFile pointers. Indices are append-only and never reused (ABA-free by
// construction); a closed file's entry is nulled (release) and the object
// retired. Readers index it lock-free under an EpochGuard; AddOpenFile
// grows it copy-on-update under files_lock_.
struct OpenFileTable {
  explicit OpenFileTable(uint64_t cap)
      : capacity(cap), entries(new std::atomic<OpenFile*>[cap]) {
    for (uint64_t i = 0; i < cap; ++i) {
      entries[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  const uint64_t capacity;
  std::unique_ptr<std::atomic<OpenFile*>[]> entries;
};

// One perf_event-style self-profiling session (kProfStart). The fd is the
// handle; reads return ProfRecord-shaped samples filtered to the owner.
struct ProfSession {
  uint64_t addr = 0;   // Prof cache object address.
  int owner_pid = 0;   // Only this task may read or stop the session.
  uint64_t cursor = 0;  // Absolute sample index of the next unread sample.
  bool active = false;  // True between kProfStart and kProfStop/close.
};

// Liveness guard shared between a kernel and the profiler's tick hook. The
// profiler is process-global and refcounted, so a sampler started by this
// kernel can outlive it when another kernel's session holds the count up —
// but the tick hook targets this kernel's timer device. The hook fires
// under mu and checks alive; ~Kernel flips alive under mu before the
// machine can die, making a late tick a locked no-op instead of a
// use-after-free.
struct ProfTickGuard {
  std::mutex mu;
  bool alive = true;
};

// One record written to user memory by kProfRead (16 bytes on the wire:
// u64 ts_ns, u32 pid, u8 cpu, u8 context, u8 mode, u8 depth).
struct ProfRecord {
  uint64_t ts_ns = 0;
  uint32_t pid = 0;
  uint8_t cpu = 0;
  uint8_t context = 0;
  uint8_t mode = 0;
  uint8_t depth = 0;
};
inline constexpr uint64_t kProfRecordBytes = 16;
// kProfRead returns at most this many records per call (bounds the kmalloc
// scratch buffer, like kEvqMaxEventsPerWait).
inline constexpr uint64_t kProfMaxRecordsPerRead = 256;

// One registered interest in an event queue: fd -> net socket id plus the
// caller's interest mask and opaque cookie.
struct EvqWatch {
  int sid = -1;
  uint32_t interest = 0;
  uint64_t user_data = 0;
};

// The epoll analog: a level-triggered readiness queue over net-stack
// sockets. The net stack's ready callback inserts socket ids into
// ready_hints and bumps the generation counter; kEvqWait verifies each hint
// against NetStack::PollReady at wait time (level-triggered: a socket that
// stays ready stays hinted, a stale hint is culled). The per-queue lock is
// an unranked leaf: it is taken with the ranked evq_lock_ already released,
// and PollReady's net-stack locks (also unranked) are only acquired on the
// wait path, never while the ready callback holds this lock.
struct EventQueue {
  uint64_t addr = 0;  // Evq cache object address.
  mutable smp::SpinLock lock;
  bool open = true;
  std::map<int, EvqWatch> watches;  // fd -> watch
  std::map<int, int> sid_to_fd;     // net socket id -> registered fd
  std::vector<int> ready_hints;     // Socket ids with unverified readiness.
  // Bumped (release) on every hint insert and on close; kEvqWait blocks by
  // spinning/yielding on it with a deadline, so waiters never sleep through
  // a wakeup that raced their empty scan.
  std::atomic<uint64_t> generation{0};
};

struct KernelStats {
  uint64_t syscalls = 0;
  uint64_t context_switches = 0;
  uint64_t forks = 0;
  uint64_t execs = 0;
  uint64_t signals_delivered = 0;
  uint64_t bytes_copied_user = 0;
};

class Kernel {
 public:
  Kernel(hw::Machine& machine, KernelConfig config);
  ~Kernel();

  // Boots: creates allocators and caches, registers syscall handlers with
  // SVA-OS (SVA modes) or the direct dispatch table (native), registers
  // the userspace metapool object (safe mode), and starts pid 1.
  Status Boot();

  // The user-program entry point: traps into the kernel through the path
  // selected by the configuration. Safe to call from multiple worker
  // threads: every steady-state syscall dispatches onto its subsystem's
  // leaf lock (vfs_lock_, tasks_lock_, sockets_lock_, pipes_lock_, or the
  // net stack's own locks); fd -> file resolution and ramfs path lookup
  // are LOCK-FREE under an epoch guard (files_lock_ and vfs_lock_ are
  // writer-only); the big kernel lock survives only for the scheduler and
  // unknown syscall numbers. See docs/CONCURRENCY.md for the hierarchy
  // and §5 for the epoch contract.
  Result<uint64_t> Syscall(Sys number, uint64_t a0 = 0, uint64_t a1 = 0,
                           uint64_t a2 = 0, uint64_t a3 = 0);

  // Cooperative scheduler: switch to the next runnable task (exercises the
  // SVA-OS state save/restore path). Takes the big kernel lock.
  Status Yield();

  // --- Host-side helpers for benchmarks and tests ----------------------------
  // Read/write the current task's user memory directly (as the "user
  // program" would, without entering the kernel).
  Status PokeUser(uint64_t uaddr, const void* data, uint64_t len);
  Status PeekUser(uint64_t uaddr, void* data, uint64_t len);
  // Writes a NUL-terminated path into user memory at `uaddr`.
  Status PokeUserString(uint64_t uaddr, const std::string& text);

  // Resolves the current task through the epoch-published pid index —
  // lock-free on the hot path (every syscall prologue), falling back to
  // the locked map walk for pids created since the last publish. The
  // returned pointer stays valid after the internal guard drops: task map
  // nodes are stable until SysWaitPid reaps them, and reaping a task that
  // is still running syscalls is a caller bug (see FindTask).
  Task* current_task();
  Task* FindTask(int pid);
  int current_pid() const {
    return current_pid_.load(std::memory_order_relaxed);
  }
  // The network stack; null until Boot().
  net::NetStack* net() { return net_.get(); }
  // The virtual-memory subsystem (demand paging, COW fork, TLB shootdown).
  mm::VmManager& vm() { return vm_; }
  mm::FrameAllocator& frames() { return frames_; }
  const KernelStats& stats() const { return stats_; }
  svaos::SvaOS& svaos() { return svaos_; }
  runtime::MetaPoolRuntime& pools() { return pools_; }
  KernelAllocators& allocators() { return *allocators_; }
  const KernelConfig& config() const { return config_; }
  hw::Machine& machine() { return machine_; }

 private:
  // Kernel entry through the configured path.
  Result<uint64_t> Dispatch(Sys number, const std::array<uint64_t, 6>& args);
  Result<uint64_t> HandleSyscall(Sys number,
                                 const std::array<uint64_t, 6>& args,
                                 svaos::InterruptContext* icontext);
  // Simulated translator code-quality delta (kSvaLlvm and kSvaSafe).
  void TranslatorTax();

  // --- User memory ------------------------------------------------------------
  // Translates a user virtual address through the task's address space,
  // faulting the backing page in on first touch (per-CPU TLB fast path;
  // VmManager::Resolve slow path). `write` selects the access kind so COW
  // pages break on the first store, not on reads.
  Result<uint64_t> UserToPhysical(Task& task, uint64_t uaddr, bool write);
  Status CopyFromUser(Task& task, uint64_t kaddr, uint64_t uaddr,
                      uint64_t len);
  Status CopyToUser(Task& task, uint64_t uaddr, uint64_t kaddr, uint64_t len);
  // Copies with the safety checks hoisted by the caller (monotonic file
  // block loops, Section 7.1.3 optimization 2).
  Status CopyBlockToUser(Task& task, uint64_t uaddr, uint64_t kaddr,
                         uint64_t len);
  Status CopyBlockFromUser(Task& task, uint64_t kaddr, uint64_t uaddr,
                           uint64_t len);
  // Safe mode: bounds-check a user range against the userspace object.
  Status CheckUserRange(Task& task, uint64_t uaddr, uint64_t len);
  // Copies a NUL-terminated path out of user memory byte-by-byte through
  // the per-CPU TLB, bounds-checking each byte against the userspace
  // object (safe mode). Takes no lock and no kernel allocation — the
  // lock-free path-resolution syscalls (kStat, non-creating kOpen) use it
  // instead of the Kmalloc + CopyFromUser staging the mutating path keeps.
  Status ReadUserPath(Task& task, uint64_t path_uaddr, std::string* out);

  // --- Syscall implementations ---------------------------------------------------
  Result<uint64_t> SysGetPid();
  Result<uint64_t> SysGetTimeOfDay(uint64_t uaddr);
  Result<uint64_t> SysGetRusage(uint64_t uaddr);
  Result<uint64_t> SysOpen(uint64_t path_uaddr, uint64_t flags);
  Result<uint64_t> SysClose(uint64_t fd);
  Result<uint64_t> SysRead(uint64_t fd, uint64_t uaddr, uint64_t len);
  Result<uint64_t> SysWrite(uint64_t fd, uint64_t uaddr, uint64_t len);
  Result<uint64_t> SysLseek(uint64_t fd, uint64_t offset, uint64_t whence);
  Result<uint64_t> SysStat(uint64_t path_uaddr);
  Result<uint64_t> SysUnlink(uint64_t path_uaddr);
  Result<uint64_t> SysPipe(uint64_t uaddr_out);
  // Pipe read/write backends (run OFF the big kernel lock under
  // pipes_lock_; see Syscall).
  Result<uint64_t> SysPipeRead(uint64_t fd, uint64_t uaddr, uint64_t len);
  Result<uint64_t> SysPipeWrite(uint64_t fd, uint64_t uaddr, uint64_t len);
  Result<uint64_t> SysBrk(uint64_t delta);
  Result<uint64_t> SysSigaction(uint64_t sig, uint64_t handler);
  Result<uint64_t> SysKill(uint64_t pid, uint64_t sig,
                           svaos::InterruptContext* icontext);
  Result<uint64_t> SysFork();
  Result<uint64_t> SysExecve(uint64_t path_uaddr);
  Result<uint64_t> SysExit(uint64_t code);
  Result<uint64_t> SysWaitPid(uint64_t pid);
  Result<uint64_t> SysDup(uint64_t fd);
  Result<uint64_t> SysSocket(uint64_t domain);
  Result<uint64_t> SysSend(uint64_t fd, uint64_t uaddr, uint64_t len);
  Result<uint64_t> SysRecv(uint64_t fd, uint64_t uaddr, uint64_t len);
  // Net-stack syscall backends (run OFF the big kernel lock; see Syscall).
  Result<uint64_t> SysNetBind(uint64_t fd, uint64_t port, uint64_t flags);
  Result<uint64_t> SysNetAccept(uint64_t fd);
  Result<uint64_t> SysNetSend(uint64_t fd, uint64_t uaddr, uint64_t len,
                              uint64_t dest);
  Result<uint64_t> SysNetRecv(uint64_t fd, uint64_t uaddr, uint64_t len);
  // Event-queue syscall backends (src/kernel/evq.cc; run under evq_lock_ +
  // per-queue locks, never under the big kernel lock).
  Result<uint64_t> SysEvqCreate();
  Result<uint64_t> SysEvqCtl(uint64_t evq_fd, uint64_t op_and_interest,
                             uint64_t target_fd, uint64_t user_data);
  Result<uint64_t> SysEvqWait(uint64_t evq_fd, uint64_t uaddr,
                              uint64_t max_events, uint64_t timeout_us);
  // Profiling syscall backends (src/kernel/prof.cc; run under prof_lock_, an
  // unranked leaf, never under the big kernel lock).
  Result<uint64_t> SysProfStart(uint64_t hz);
  Result<uint64_t> SysProfStop(uint64_t fd);
  Result<uint64_t> SysProfRead(uint64_t fd, uint64_t uaddr,
                               uint64_t max_records);
  // ReleaseFile's teardown half for profiling fds (called OUTSIDE
  // files_lock_): stops the session if still active.
  void DestroyProfSession(int prof_id);
  // The prof session behind fd `fd` of the current task, or -1.
  int ProfIdForFd(uint64_t fd);

  // The net stack's ready callback: fans a socket-id readiness edge out to
  // every queue watching it (called with NO net-stack locks held).
  void OnSocketReady(int sid);
  // Evq teardown halves of ReleaseFile, both called OUTSIDE files_lock_:
  // destroy a queue when its fd goes away; drop a socket's watches when the
  // socket's last fd is closed while still registered.
  void DestroyEvq(int evq_id);
  void DropSocketWatches(int sid);

  // --- Internals ---------------------------------------------------------------
  // Which lock domain a syscall dispatches under (the per-subsystem locking
  // split the ROADMAP's fine-grained-locking item asked for, completed in
  // PR 5): the big kernel lock (scheduler + unknown numbers only), the net
  // stack's own locks, or one of the subsystem leaf locks. The routing
  // decision is carried in args[5] so handlers never fall through to state
  // another domain guards.
  enum class SyscallRoute : uint64_t {
    kBkl = 0,      // Legacy/fallback: unknown syscall numbers.
    kNet = 1,      // Net-stack sockets: the net stack's own lock classes.
    kPipes = 2,    // Pipe read/write: pipes_lock_.
    kVfs = 3,      // Ramfs open/close/read/write/lseek/unlink/dup: vfs_lock_.
    kTasks = 4,    // fork/exec/exit/wait/kill/brk/getpid/...: tasks_lock_.
    kSockets = 5,  // Legacy loopback sockets: sockets_lock_.
    kEvq = 6,      // Event queues: evq_lock_ + per-queue locks.
  };
  SyscallRoute RouteSyscall(Sys number, uint64_t a0);
  // The net socket id behind fd `a0` of the current task, or -1.
  int NetSocketIdForFd(uint64_t fd);
  // The pipe id behind fd `a0` of the current task, or -1.
  int PipeIdForFd(uint64_t fd);
  // The event queue id behind fd `a0` of the current task, or -1.
  int EvqIdForFd(uint64_t fd);
  // Appends to the open-file table under files_lock_; returns the index.
  // Grows the table copy-on-update (publish new, epoch-retire old).
  int AddOpenFile(std::unique_ptr<OpenFile> file);
  Result<int> AllocateFd(Task& task, int file_index);
  // Doubles the task's fd table toward KernelConfig::max_fds_limit, moving
  // the modeled array to a (new) kmalloc block. Caller holds files_lock_.
  Status GrowFdTable(Task& task);
  // Grows until the table holds at least `capacity` slots (fork copying a
  // grown parent). Caller holds files_lock_.
  Status EnsureFdCapacity(Task& task, uint64_t capacity);
  // Safe-mode bounds check for fd slot `fd` of `task`, against the embedded
  // array or the external block, whichever currently backs the table.
  Status FdSlotCheck(Task& task, uint64_t fd);
  // Lock-free fd -> OpenFile resolution. The caller must hold an
  // EpochGuard (HandleSyscall pins one for the whole syscall body) and may
  // use the returned pointer only while it is held; never takes
  // files_lock_.
  Result<OpenFile*> FileForFd(Task& task, uint64_t fd);
  Result<Inode*> LookupInode(const std::string& name, bool create);
  Status ReleaseFile(int file_index);
  Result<int> CreateTask(int parent_pid);
  void DeliverPendingSignals(Task& task, svaos::InterruptContext* icontext);
  // Safe-mode check helpers (no-ops otherwise).
  Status LsCheckObject(runtime::MetaPool* pool, uint64_t addr);
  Status BoundsCheckObject(runtime::MetaPool* pool, uint64_t base,
                           uint64_t derived);

  hw::Machine& machine_;
  KernelConfig config_;
  // Kernel lock hierarchy (docs/CONCURRENCY.md; machine-enforced in debug
  // builds by smp::LockOrderChecker). Rank order — a thread may only
  // acquire downward in this list, never upward:
  //
  //   bkl_ -> vfs_lock_ -> tasks_lock_ -> sockets_lock_ -> pipes_lock_
  //        -> evq_lock_ -> files_lock_ -> address-space locks (src/mm)
  //
  // Address-space locks (one per task, rank kAddrSpace) sit at the BOTTOM:
  // user-copy page faults fire while vfs/pipes/files locks are held, so the
  // fault path must still be able to take them. Same-rank nesting is
  // forbidden, so COW fork clones in two sequential critical sections
  // (parent lock, then child lock), never nested.
  //
  // External lock classes (metapool stripe locks, allocator locks, the net
  // stack's locks) sit BELOW all kernel ranks: they are taken under any of
  // these — e.g. BoundsCheckObject under files_lock_ on the fd fast path,
  // copy loops under vfs_lock_/pipes_lock_ — and never call back into
  // kernel locks, so they are deliberately unranked.
  //
  // The big kernel lock, demoted: after the PR 3-5 split it serializes only
  // the cooperative scheduler (Yield), the PokeUser/PeekUser host helpers,
  // and unknown syscall numbers. No steady-state syscall takes it.
  mutable smp::OrderedSpinLock bkl_{smp::LockRank::kBkl};
  // Guards ramfs MUTATION: inodes_, namespace_, next_ino_, inode block
  // lists and sizes, regular-file OpenFile offsets, and dir_index_
  // republication. Writer-only since the epoch conversion: path lookup
  // (kStat, non-creating kOpen) walks the epoch-published dir_index_
  // without it.
  mutable smp::OrderedSpinLock vfs_lock_{smp::LockRank::kVfs};
  // Guards the pid->task map structure, next_pid_, and task lifecycle
  // fields (alive/zombie/parent links). Per-field task state that other
  // syscalls touch concurrently (brk, pending_signals, sigaction handlers,
  // stats counters) uses std::atomic_ref instead, so hot paths touching
  // only their own task never take it.
  mutable smp::OrderedSpinLock tasks_lock_{smp::LockRank::kTasks};
  // Guards the legacy loopback socket table (sockets_) and per-socket skb
  // queues. The net stack's sockets never touch this.
  mutable smp::OrderedSpinLock sockets_lock_{smp::LockRank::kSockets};
  // Guards the pipes_ vector and every Pipe's ring state. The copy loops
  // under it take metapool stripe and allocator locks (external classes,
  // see above).
  mutable smp::OrderedSpinLock pipes_lock_{smp::LockRank::kPipes};
  // Guards the event-queue table (evqs_) and the sid -> watching-queues
  // reverse map (evq_watchers_). Sits above files_lock_ so the wait path
  // could resolve fds under it; the ready callback takes it with nothing
  // ranked held. Per-queue EventQueue::lock is a separate unranked leaf
  // taken after this is released.
  mutable smp::OrderedSpinLock evq_lock_{smp::LockRank::kEvq};
  // The fd-table WRITER lock: open-file table growth/append, fd-slot
  // allocation and teardown, and refcounts. Writer-only since the epoch
  // conversion — fd -> file READS (SysRead/SysWrite/SysSend/SysRecv and
  // the route probes) resolve through the epoch-published tables under an
  // EpochGuard and never take it. Nothing ranked is acquired while
  // holding it; retired OpenFile objects outlive pinned readers via the
  // epoch grace period.
  mutable smp::OrderedSpinLock files_lock_{smp::LockRank::kFiles};
  svaos::SvaOS svaos_;
  // The VM subsystem: physical-frame refcounts + per-task address spaces.
  // Declared after svaos_ (construction order) — all its MMU mutations flow
  // through svaos_'s mediated operations.
  mm::FrameAllocator frames_{machine_, svaos_};
  mm::VmManager vm_{svaos_, frames_};
  runtime::MetaPoolRuntime pools_;
  std::unique_ptr<KernelAllocators> allocators_;

  runtime::PoolAllocator* task_cache_ = nullptr;
  runtime::PoolAllocator* inode_cache_ = nullptr;
  runtime::PoolAllocator* file_cache_ = nullptr;
  runtime::PoolAllocator* pipe_cache_ = nullptr;
  runtime::PoolAllocator* socket_cache_ = nullptr;
  runtime::PoolAllocator* evq_cache_ = nullptr;
  runtime::PoolAllocator* prof_cache_ = nullptr;
  runtime::MetaPool* user_pool_ = nullptr;
  std::unique_ptr<net::NetStack> net_;

  // Epoch-published read-mostly indexes (docs/CONCURRENCY.md §5). Each is
  // an immutable snapshot: writers rebuild a copy under the owning lock,
  // publish it with a release store, and retire the old snapshot through
  // smp::EpochDomain. Readers load (acquire) under an EpochGuard.
  //
  // Snapshot of the ramfs namespace: path -> inode. Inode pointers are
  // map-node-stable; unlink unpublishes first, then retires the extracted
  // node so pinned readers finish against the intact inode.
  struct DirIndex {
    std::map<std::string, Inode*> entries;
  };
  // Snapshot of the pid map for lock-free current_task(). Task pointers
  // are map-node-stable until SysWaitPid reaps them (which republishes
  // without the pid before erasing the node).
  struct TaskIndex {
    std::vector<std::pair<int, Task*>> by_pid;  // Sorted by pid.
  };
  // Rebuild + publish + retire-old; callers hold vfs_lock_ / tasks_lock_.
  void RepublishDirIndex();
  void RepublishTaskIndex(int skip_pid = -1);

  std::map<int, Task> tasks_;               // pid -> task
  // The open-file table (see OpenFileTable). open_files_count_ (the
  // append cursor) is guarded by files_lock_; the table pointer itself is
  // epoch-published for the lock-free readers.
  std::atomic<OpenFileTable*> open_files_tab_{nullptr};
  uint64_t open_files_count_ = 0;
  // Event queues (index = evq id; entries stay allocated after close —
  // pointer stability for waiters racing a close — with open = false).
  std::vector<std::unique_ptr<EventQueue>> evqs_;
  std::map<int, std::vector<int>> evq_watchers_;  // net sid -> evq ids
  // Profiling sessions (index = prof id; entries stay allocated after close
  // with active = false, same pointer-stability scheme as evqs_). Guarded
  // by prof_lock_, an unranked leaf like the per-queue evq locks: taken
  // with no ranked lock held and nothing is acquired under it.
  std::vector<std::unique_ptr<ProfSession>> prof_sessions_;
  mutable smp::SpinLock prof_lock_;
  // Shared with the profiler's tick hook (see ProfTickGuard).
  std::shared_ptr<ProfTickGuard> prof_tick_guard_ =
      std::make_shared<ProfTickGuard>();
  std::map<int, Inode> inodes_;             // ino -> inode
  std::vector<std::unique_ptr<Pipe>> pipes_;
  std::vector<std::unique_ptr<Socket>> sockets_;
  std::map<std::string, int> namespace_;    // path -> ino
  std::atomic<DirIndex*> dir_index_{nullptr};
  std::atomic<TaskIndex*> task_index_{nullptr};

  std::atomic<int> current_pid_{0};  // Read off-lock by the net fast path.
  int next_pid_ = 1;
  int next_ino_ = 1;
  KernelStats stats_;
  bool booted_ = false;
};

}  // namespace sva::kernel

#endif  // SVA_SRC_KERNEL_KERNEL_H_
