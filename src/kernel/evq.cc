// The event-queue subsystem (the epoll analog): level-triggered readiness
// over net-stack sockets, served by the kEvqCreate/kEvqCtl/kEvqWait
// syscalls.
//
// Data flow: the net stack calls Kernel::OnSocketReady(sid) after a socket
// gains data, backlog, or a FIN (with no net-stack locks held). The callback
// fans the socket id out to every queue watching it as an unverified "ready
// hint" and bumps the queue's generation counter. kEvqWait verifies hints
// against NetStack::PollReady at wait time — level-triggered semantics fall
// out naturally: a socket that stays ready stays hinted and is re-reported
// on the next wait; a hint that no longer polls ready is culled.
//
// Locking: evq_lock_ (ranked, smp::LockRank::kEvq) guards the queue table
// and the sid -> watching-queues reverse map. EventQueue::lock (unranked
// leaf) guards one queue's watch set and hints. The two are NEVER nested —
// every path acquires them sequentially — so the callback's
// evq_lock_ -> q->lock order and the wait path's q->lock -> net-stack-lock
// order cannot form a cycle (the net stack never holds its locks while
// calling back in).
#include <algorithm>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/support/strings.h"
#include "src/trace/trace.h"

namespace sva::kernel {

namespace {
constexpr uint64_t kEInval = static_cast<uint64_t>(-22);
constexpr uint64_t kEBadF = static_cast<uint64_t>(-9);
constexpr uint64_t kENoEnt = static_cast<uint64_t>(-2);
constexpr uint64_t kEMFile = static_cast<uint64_t>(-24);
constexpr uint64_t kEExist = static_cast<uint64_t>(-17);

void EraseValue(std::vector<int>& values, int value) {
  values.erase(std::remove(values.begin(), values.end(), value),
               values.end());
}
}  // namespace

Result<uint64_t> Kernel::SysEvqCreate() {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  SVA_ASSIGN_OR_RETURN(uint64_t evq_addr,
                       allocators_->CacheAlloc(evq_cache_));
  auto queue = std::make_unique<EventQueue>();
  queue->addr = evq_addr;
  int evq_id;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(evq_lock_);
    evqs_.push_back(std::move(queue));
    evq_id = static_cast<int>(evqs_.size() - 1);
  }
  auto file_addr = allocators_->CacheAlloc(file_cache_);
  if (!file_addr.ok()) {
    DestroyEvq(evq_id);
    return file_addr.status();
  }
  auto file = std::make_unique<OpenFile>();
  file->addr = *file_addr;
  file->refs = 1;
  file->evq_id = evq_id;
  auto fd = AllocateFd(*task, AddOpenFile(std::move(file)));
  if (!fd.ok()) {
    return kEMFile;
  }
  return static_cast<uint64_t>(*fd);
}

Result<uint64_t> Kernel::SysEvqCtl(uint64_t evq_fd, uint64_t op_and_interest,
                                   uint64_t target_fd, uint64_t user_data) {
  int evq_id = EvqIdForFd(evq_fd);
  if (evq_id < 0) {
    return kEBadF;
  }
  EventQueue* q;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(evq_lock_);
    q = evqs_[static_cast<size_t>(evq_id)].get();
  }
  uint64_t op = op_and_interest & 0xFF;
  uint32_t interest = static_cast<uint32_t>(op_and_interest >> 8);
  if (interest == 0) {
    interest = kEvqIn | kEvqErr | kEvqHup;
  }
  int fd = static_cast<int>(target_fd);

  switch (op) {
    case kEvqCtlAdd: {
      int sid = NetSocketIdForFd(target_fd);
      if (sid < 0) {
        return kEInval;  // Only net-stack sockets are watchable.
      }
      // Reverse-map entry first: a readiness edge that lands between these
      // two steps produces a hint without a watch, which the wait path
      // culls; the opposite order would lose the edge entirely.
      {
        std::lock_guard<smp::OrderedSpinLock> guard(evq_lock_);
        evq_watchers_[sid].push_back(evq_id);
      }
      bool inserted = false;
      bool was_open = true;
      {
        std::lock_guard<smp::SpinLock> guard(q->lock);
        was_open = q->open;
        if (q->open && q->watches.find(fd) == q->watches.end() &&
            q->sid_to_fd.find(sid) == q->sid_to_fd.end()) {
          q->watches[fd] = EvqWatch{sid, interest, user_data};
          q->sid_to_fd[sid] = fd;
          // The socket may be ready ALREADY (data queued before the watch
          // existed); seed a hint so the first wait checks it.
          q->ready_hints.push_back(sid);
          inserted = true;
        }
      }
      if (!inserted) {
        std::lock_guard<smp::OrderedSpinLock> undo(evq_lock_);
        auto it = evq_watchers_.find(sid);
        if (it != evq_watchers_.end()) {
          EraseValue(it->second, evq_id);
          if (it->second.empty()) {
            evq_watchers_.erase(it);
          }
        }
        return was_open ? kEExist : kEBadF;
      }
      q->generation.fetch_add(1, std::memory_order_release);
      return uint64_t{0};
    }
    case kEvqCtlMod: {
      {
        std::lock_guard<smp::SpinLock> guard(q->lock);
        if (!q->open) {
          return kEBadF;
        }
        auto it = q->watches.find(fd);
        if (it == q->watches.end()) {
          return kENoEnt;
        }
        it->second.interest = interest;
        it->second.user_data = user_data;
        // Re-check on the next wait under the new mask.
        if (std::find(q->ready_hints.begin(), q->ready_hints.end(),
                      it->second.sid) == q->ready_hints.end()) {
          q->ready_hints.push_back(it->second.sid);
        }
      }
      q->generation.fetch_add(1, std::memory_order_release);
      return uint64_t{0};
    }
    case kEvqCtlDel: {
      int sid;
      {
        std::lock_guard<smp::SpinLock> guard(q->lock);
        if (!q->open) {
          return kEBadF;
        }
        auto it = q->watches.find(fd);
        if (it == q->watches.end()) {
          return kENoEnt;
        }
        sid = it->second.sid;
        q->watches.erase(it);
        q->sid_to_fd.erase(sid);
        EraseValue(q->ready_hints, sid);
      }
      std::lock_guard<smp::OrderedSpinLock> guard(evq_lock_);
      auto it = evq_watchers_.find(sid);
      if (it != evq_watchers_.end()) {
        EraseValue(it->second, evq_id);
        if (it->second.empty()) {
          evq_watchers_.erase(it);
        }
      }
      return uint64_t{0};
    }
    default:
      return kEInval;
  }
}

Result<uint64_t> Kernel::SysEvqWait(uint64_t evq_fd, uint64_t uaddr,
                                    uint64_t max_events,
                                    uint64_t timeout_us) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  int evq_id = EvqIdForFd(evq_fd);
  if (evq_id < 0) {
    return kEBadF;
  }
  if (max_events == 0) {
    return kEInval;
  }
  EventQueue* q;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(evq_lock_);
    q = evqs_[static_cast<size_t>(evq_id)].get();
  }
  uint64_t max = std::min(max_events, kEvqMaxEventsPerWait);
  trace::Span span(trace::EventId::kEvqWait, trace::HistId::kEvqWaitNs,
                   evq_fd);
  uint64_t deadline = trace::NowNs() + timeout_us * 1000;

  std::vector<EvqEvent> out;
  while (true) {
    // Generation snapshot BEFORE the scan: an edge that races the empty
    // scan changes the counter, so the block loop below falls straight
    // through instead of sleeping past the wakeup.
    uint64_t gen = q->generation.load(std::memory_order_acquire);
    {
      std::lock_guard<smp::SpinLock> guard(q->lock);
      if (!q->open) {
        return kEBadF;
      }
      // Verify each hinted socket against live readiness (PollReady takes
      // net-stack locks only — unranked external classes, safe under this
      // unranked leaf). Level-triggered: a still-ready socket keeps its
      // hint and will be re-reported next wait; an unready one is culled
      // (it re-arms via the next OnSocketReady edge).
      for (size_t i = 0; i < q->ready_hints.size() && out.size() < max;) {
        int sid = q->ready_hints[i];
        auto fit = q->sid_to_fd.find(sid);
        if (fit == q->sid_to_fd.end()) {
          // Stale: the watch went away between hint and wait.
          q->ready_hints[i] = q->ready_hints.back();
          q->ready_hints.pop_back();
          continue;
        }
        const EvqWatch& watch = q->watches[fit->second];
        uint32_t ready = net_->PollReady(sid) &
                         (watch.interest | kEvqErr | kEvqHup);
        if (ready == 0) {
          q->ready_hints[i] = q->ready_hints.back();
          q->ready_hints.pop_back();
          continue;
        }
        EvqEvent event;
        event.user_data = watch.user_data;
        event.events = ready;
        event.fd = static_cast<uint32_t>(fit->second);
        out.push_back(event);
        ++i;
      }
    }
    if (!out.empty() || trace::NowNs() >= deadline) {
      break;
    }
    // Block until a readiness edge or the deadline. The minikernel has no
    // sleeping waitqueues; yielding the host thread models one.
    while (q->generation.load(std::memory_order_acquire) == gen &&
           trace::NowNs() < deadline) {
      std::this_thread::yield();
    }
  }

  span.set_args(evq_fd, out.size());
  if (out.empty()) {
    return uint64_t{0};  // Timeout.
  }
  // Marshal 16-byte records through a kernel scratch block, one CopyToUser.
  uint64_t bytes = out.size() * kEvqEventBytes;
  SVA_ASSIGN_OR_RETURN(uint64_t scratch, allocators_->Kmalloc(bytes));
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t base = scratch + i * kEvqEventBytes;
    Status w = machine_.memory().Write(base, 8, out[i].user_data);
    if (w.ok()) {
      w = machine_.memory().Write(
          base + 8, 8,
          static_cast<uint64_t>(out[i].events) |
              (static_cast<uint64_t>(out[i].fd) << 32));
    }
    if (!w.ok()) {
      (void)allocators_->Kfree(scratch);
      return w;
    }
  }
  Status copy = CopyToUser(*task, uaddr, scratch, bytes);
  SVA_RETURN_IF_ERROR(allocators_->Kfree(scratch));
  SVA_RETURN_IF_ERROR(copy);
  return out.size();
}

void Kernel::OnSocketReady(int sid) {
  std::vector<EventQueue*> queues;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(evq_lock_);
    auto it = evq_watchers_.find(sid);
    if (it == evq_watchers_.end()) {
      return;
    }
    queues.reserve(it->second.size());
    for (int evq_id : it->second) {
      queues.push_back(evqs_[static_cast<size_t>(evq_id)].get());
    }
  }
  for (EventQueue* q : queues) {
    {
      std::lock_guard<smp::SpinLock> guard(q->lock);
      if (!q->open) {
        continue;
      }
      if (std::find(q->ready_hints.begin(), q->ready_hints.end(), sid) ==
          q->ready_hints.end()) {
        q->ready_hints.push_back(sid);
      }
    }
    q->generation.fetch_add(1, std::memory_order_release);
    trace::Emit(trace::EventId::kEvqWakeup, static_cast<uint64_t>(sid));
  }
}

void Kernel::DestroyEvq(int evq_id) {
  EventQueue* q;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(evq_lock_);
    if (evq_id < 0 || static_cast<size_t>(evq_id) >= evqs_.size()) {
      return;
    }
    q = evqs_[static_cast<size_t>(evq_id)].get();
  }
  uint64_t evq_addr;
  std::vector<int> sids;
  {
    std::lock_guard<smp::SpinLock> guard(q->lock);
    if (!q->open) {
      return;
    }
    q->open = false;
    evq_addr = q->addr;
    sids.reserve(q->sid_to_fd.size());
    for (const auto& [sid, fd] : q->sid_to_fd) {
      sids.push_back(sid);
    }
    q->watches.clear();
    q->sid_to_fd.clear();
    q->ready_hints.clear();
  }
  // Wake blocked waiters; they observe open == false and return kEBadF.
  q->generation.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<smp::OrderedSpinLock> guard(evq_lock_);
    for (int sid : sids) {
      auto it = evq_watchers_.find(sid);
      if (it == evq_watchers_.end()) {
        continue;
      }
      EraseValue(it->second, evq_id);
      if (it->second.empty()) {
        evq_watchers_.erase(it);
      }
    }
  }
  (void)allocators_->CacheFree(evq_cache_, evq_addr);
}

void Kernel::DropSocketWatches(int sid) {
  std::vector<EventQueue*> queues;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(evq_lock_);
    auto it = evq_watchers_.find(sid);
    if (it == evq_watchers_.end()) {
      return;
    }
    queues.reserve(it->second.size());
    for (int evq_id : it->second) {
      queues.push_back(evqs_[static_cast<size_t>(evq_id)].get());
    }
    evq_watchers_.erase(it);
  }
  for (EventQueue* q : queues) {
    std::lock_guard<smp::SpinLock> guard(q->lock);
    if (!q->open) {
      continue;
    }
    auto fit = q->sid_to_fd.find(sid);
    if (fit != q->sid_to_fd.end()) {
      q->watches.erase(fit->second);
      q->sid_to_fd.erase(fit);
    }
    EraseValue(q->ready_hints, sid);
  }
}

}  // namespace sva::kernel
