// The perf_event-analog syscall surface: kProfStart opens an fd-backed
// self-profiling session, kProfRead returns 16-byte sample records filtered
// to the owning task, kProfStop (or the fd's last close) ends the session.
//
// Sessions are references on the process-wide trace::Profiler: the first
// start spawns the sampler, which paces at the timer frequency and drives
// hw::TimerDevice::FireInterrupt — the kernel's Boot-installed interrupt
// callback then takes the actual sample, so the "timer interrupt drives the
// profiler" wiring is the same one svm-run and the benches use.
//
// Isolation: a task may only read or stop a session it owns (kEPerm
// otherwise) and reads only ever return samples attributed to the owner's
// pid — an inherited or leaked session fd is useless to any other task.
// The exploit suite's PROF-SPY scenario checks exactly this.
//
// Locking: prof_lock_ is an unranked leaf like the per-queue evq locks —
// taken with no ranked lock held; the only lock acquired under it is the
// profiler's internal store lock, which never calls back into the kernel.
#include "src/kernel/kernel.h"
#include "src/support/strings.h"
#include "src/trace/profiler.h"

namespace sva::kernel {

namespace {
constexpr uint64_t kEPerm = static_cast<uint64_t>(-1);
constexpr uint64_t kEInval = static_cast<uint64_t>(-22);
constexpr uint64_t kEBadF = static_cast<uint64_t>(-9);
constexpr uint64_t kEMFile = static_cast<uint64_t>(-24);
}  // namespace

Result<uint64_t> Kernel::SysProfStart(uint64_t hz) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  // a0 == 0 keeps the booted rate; an explicit rate reprograms the device
  // (bounds-checked there — 0 is already handled, >crystal is kEInval).
  if (hz != 0) {
    if (!machine_.timer().SetFrequency(hz).ok()) {
      return kEInval;
    }
  }
  trace::Profiler::Options opts;
  opts.hz = static_cast<unsigned>(machine_.timer().frequency_hz());
  opts.num_cpus = smp::kMaxCpus;  // Tasks may run on any worker's vCPU.
  // The guard keeps a late tick (sampler kept alive by another kernel's
  // session) from firing this kernel's timer after the kernel died.
  opts.tick = [this, tick_guard = prof_tick_guard_] {
    std::lock_guard<std::mutex> lock(tick_guard->mu);
    if (tick_guard->alive) {
      machine_.timer().FireInterrupt();
    }
  };
  if (!trace::Profiler::Get().Start(opts)) {
    return kEInval;
  }

  SVA_ASSIGN_OR_RETURN(uint64_t prof_addr,
                       allocators_->CacheAlloc(prof_cache_));
  auto session = std::make_unique<ProfSession>();
  session->addr = prof_addr;
  session->owner_pid = task->pid;
  // Start reading at "now": the session only ever sees samples taken after
  // it was opened.
  session->cursor = trace::Profiler::Get().EndCursor();
  session->active = true;
  int prof_id;
  {
    std::lock_guard<smp::SpinLock> guard(prof_lock_);
    prof_sessions_.push_back(std::move(session));
    prof_id = static_cast<int>(prof_sessions_.size() - 1);
  }
  auto file_addr = allocators_->CacheAlloc(file_cache_);
  if (!file_addr.ok()) {
    DestroyProfSession(prof_id);
    return file_addr.status();
  }
  auto file = std::make_unique<OpenFile>();
  file->addr = *file_addr;
  file->refs = 1;
  file->prof_id = prof_id;
  auto fd = AllocateFd(*task, AddOpenFile(std::move(file)));
  if (!fd.ok()) {
    return kEMFile;
  }
  return static_cast<uint64_t>(*fd);
}

Result<uint64_t> Kernel::SysProfStop(uint64_t fd) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  int prof_id = ProfIdForFd(fd);
  if (prof_id < 0) {
    return kEBadF;
  }
  bool was_active = false;
  {
    std::lock_guard<smp::SpinLock> guard(prof_lock_);
    ProfSession* session = prof_sessions_[static_cast<size_t>(prof_id)].get();
    if (session->owner_pid != task->pid) {
      return kEPerm;  // Only the owner may stop its session.
    }
    was_active = session->active;
    session->active = false;
  }
  if (was_active) {
    // Outside prof_lock_: the last reference joins the sampler thread.
    trace::Profiler::Get().Stop();
  }
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysProfRead(uint64_t fd, uint64_t uaddr,
                                     uint64_t max_records) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  int prof_id = ProfIdForFd(fd);
  if (prof_id < 0) {
    return kEBadF;
  }
  if (max_records == 0) {
    return kEInval;
  }
  if (max_records > kProfMaxRecordsPerRead) {
    max_records = kProfMaxRecordsPerRead;
  }

  std::vector<ProfRecord> out;
  {
    // The session cursor advances under prof_lock_ so two readers of a dup'd
    // fd never return the same sample twice. ReadSamples takes only the
    // profiler's store lock underneath — a leaf below this leaf.
    std::lock_guard<smp::SpinLock> guard(prof_lock_);
    ProfSession* session = prof_sessions_[static_cast<size_t>(prof_id)].get();
    if (session->owner_pid != task->pid) {
      return kEPerm;  // A task may only profile itself (PROF-SPY).
    }
    std::vector<trace::ProfSample> raw;
    while (out.size() < max_records) {
      raw.clear();
      size_t n = trace::Profiler::Get().ReadSamples(&session->cursor, &raw,
                                                    kProfMaxRecordsPerRead);
      if (n == 0) {
        break;
      }
      for (const trace::ProfSample& s : raw) {
        // Samples of other tasks (and idle CPUs) are skipped, not leaked.
        if (static_cast<int>(s.pid) != session->owner_pid) {
          continue;
        }
        ProfRecord r;
        r.ts_ns = s.ts_ns;
        r.pid = s.pid;
        r.cpu = s.cpu;
        r.context = static_cast<uint8_t>(s.context);
        r.mode = s.mode;
        r.depth = s.depth;
        out.push_back(r);
        if (out.size() == max_records) {
          break;
        }
      }
    }
  }
  if (out.empty()) {
    return uint64_t{0};
  }

  // Marshal 16-byte records through a kernel scratch block, one CopyToUser
  // (the kEvqWait scheme).
  uint64_t bytes = out.size() * kProfRecordBytes;
  SVA_ASSIGN_OR_RETURN(uint64_t scratch, allocators_->Kmalloc(bytes));
  for (size_t i = 0; i < out.size(); ++i) {
    uint64_t base = scratch + i * kProfRecordBytes;
    Status w = machine_.memory().Write(base, 8, out[i].ts_ns);
    if (w.ok()) {
      w = machine_.memory().Write(
          base + 8, 8,
          static_cast<uint64_t>(out[i].pid) |
              (static_cast<uint64_t>(out[i].cpu) << 32) |
              (static_cast<uint64_t>(out[i].context) << 40) |
              (static_cast<uint64_t>(out[i].mode) << 48) |
              (static_cast<uint64_t>(out[i].depth) << 56));
    }
    if (!w.ok()) {
      (void)allocators_->Kfree(scratch);
      return w;
    }
  }
  Status copy = CopyToUser(*task, uaddr, scratch, bytes);
  SVA_RETURN_IF_ERROR(allocators_->Kfree(scratch));
  SVA_RETURN_IF_ERROR(copy);
  return out.size();
}

void Kernel::DestroyProfSession(int prof_id) {
  uint64_t prof_addr = 0;
  bool was_active = false;
  {
    std::lock_guard<smp::SpinLock> guard(prof_lock_);
    if (prof_id < 0 ||
        static_cast<size_t>(prof_id) >= prof_sessions_.size()) {
      return;
    }
    ProfSession* session = prof_sessions_[static_cast<size_t>(prof_id)].get();
    was_active = session->active;
    session->active = false;
    prof_addr = session->addr;
    session->addr = 0;
  }
  if (was_active) {
    trace::Profiler::Get().Stop();
  }
  if (prof_addr != 0) {
    (void)allocators_->CacheFree(prof_cache_, prof_addr);
  }
}

int Kernel::ProfIdForFd(uint64_t fd) {
  // Routing probe: runs before HandleSyscall pins its epoch, so it takes a
  // guard of its own around the lock-free lookup.
  Task* task = current_task();
  if (task == nullptr) {
    return -1;
  }
  smp::EpochGuard guard;
  auto file = FileForFd(*task, fd);
  return file.ok() ? (*file)->prof_id : -1;
}

}  // namespace sva::kernel
