// Build configurations of the minikernel, matching the four kernels of
// Section 7.1:
//
//   kNative  - "Linux-native": direct syscall dispatch, no SVA-OS
//              indirection, no safety checks.
//   kSvaGcc  - "Linux-SVA-GCC": the SVA-OS port; every kernel entry flows
//              through interrupt contexts and the SVA-OS state operations.
//   kSvaLlvm - "Linux-SVA-LLVM": the port translated by the SVM; adds the
//              translator's code-quality delta (simulated as a small fixed
//              per-entry tax, calibrated to the paper's <= 13% observation).
//   kSvaSafe - "Linux-SVA-Safe": adds the run-time safety checks: object
//              registration in metapools and bounds/load-store checks on the
//              kernel fast paths, with live splay-tree lookups.
#ifndef SVA_SRC_KERNEL_CONFIG_H_
#define SVA_SRC_KERNEL_CONFIG_H_

namespace sva::kernel {

enum class KernelMode {
  kNative = 0,
  kSvaGcc = 1,
  kSvaLlvm = 2,
  kSvaSafe = 3,
};

inline const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kNative:
      return "Linux-native";
    case KernelMode::kSvaGcc:
      return "Linux-SVA-GCC";
    case KernelMode::kSvaLlvm:
      return "Linux-SVA-LLVM";
    case KernelMode::kSvaSafe:
      return "Linux-SVA-Safe";
  }
  return "?";
}

struct KernelConfig {
  KernelMode mode = KernelMode::kSvaSafe;
  // Iterations of the translator-delta loop per kernel entry in kSvaLlvm
  // and kSvaSafe modes (the LLVM-vs-GCC codegen difference; Section 7.1
  // measured at most 13% on kernel paths).
  unsigned translator_tax_iterations = 24;
  // Pages each task's address space may touch at creation (64 KiB default,
  // enough for the bandwidth benchmarks' transfer buffers). Pages are
  // demand-faulted, never committed up front; brk raises the frontier
  // lazily toward max_user_pages_per_task.
  unsigned user_pages_per_task = 16;
  // Hard cap on a task's address-space growth. 256 pages = 1 MiB, exactly
  // the per-pid virtual stride (UserBaseForPid), so grown spaces never
  // overlap their neighbours.
  unsigned max_user_pages_per_task = 256;
  // Fork backend: copy-on-write (CloneCow) by default; false selects the
  // eager-copy backend (the bench/vm_ops comparison baseline).
  bool cow_fork = true;
  // Ceiling for dynamic stream-listener accept-backlog growth (the fixed
  // kAcceptBacklog is only the initial allocation; the backlog doubles on
  // pressure up to this, like the fd table).
  unsigned max_accept_backlog = 16384;
  // Per-task fd-table size at task creation. The initial fd array is
  // modeled inside the task-cache object, so the task_struct cache's object
  // size scales with this; 64 is enough for the 25 concurrent connections
  // of the Table 6 experiment without fd pooling.
  unsigned max_fds = 64;
  // Ceiling for on-demand fd-table growth (the files_struct expansion the
  // c10k benchmark relies on). Growth doubles the table, moving the modeled
  // array to a kmalloc block; 16384 slots = a 64 KiB block, inside the
  // largest kmalloc size class.
  unsigned max_fds_limit = 16384;
  // Interrupt rate Boot programs into hw::TimerDevice — the sampling
  // profiler's tick source. Prime by default so the sampler never beats
  // against millisecond-periodic work; must satisfy the device's bounds
  // (1..TimerDevice::kMaxFrequencyHz) or Boot fails.
  unsigned timer_hz = 997;
};

}  // namespace sva::kernel

#endif  // SVA_SRC_KERNEL_CONFIG_H_
