#include "src/kernel/metrics_server.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/runtime/metapool_runtime.h"
#include "src/support/strings.h"
#include "src/trace/drainer.h"
#include "src/trace/metrics.h"
#include "src/trace/profiler.h"
#include "src/trace/trace.h"

namespace sva::kernel {
namespace {

// User-space scratch window the responder stages request/response bytes
// through, placed in the upper half of the initial 64 KB per-task user
// window (the demand-paged region brk starts with) so it never collides
// with the benchmarks' conventional offset-0..16K buffers.
constexpr uint64_t kScratchOffset = 0x8000;
constexpr uint64_t kSendChunk = 8192;

bool IsErrno(uint64_t value) {
  return static_cast<int64_t>(value) < 0;
}

void Add(std::vector<trace::CounterSample>& out, const char* name,
         uint64_t value, std::string label = "") {
  out.push_back(trace::CounterSample{name, std::move(label), value});
}

}  // namespace

Status MetricsServer::Start() {
  if (started_) {
    return FailedPrecondition("metrics server already started");
  }
  SVA_ASSIGN_OR_RETURN(
      uint64_t fd,
      kernel_.Syscall(Sys::kSocket,
                      static_cast<uint64_t>(SocketDomain::kListener)));
  if (IsErrno(fd)) {
    return Internal("metrics server: socket allocation failed");
  }
  SVA_ASSIGN_OR_RETURN(uint64_t bound,
                       kernel_.Syscall(Sys::kBind, fd, port_));
  if (IsErrno(bound)) {
    return Internal(StrCat("metrics server: bind to port ", port_,
                           " failed"));
  }
  listener_ = fd;
  started_ = true;
  return OkStatus();
}

std::string MetricsServer::RenderText() const {
  std::vector<trace::CounterSample> counters;
  counters.reserve(64);

  const KernelStats& ks = kernel_.stats();
  Add(counters, "sva_kernel_syscalls_total", ks.syscalls);
  Add(counters, "sva_kernel_context_switches_total", ks.context_switches);
  Add(counters, "sva_kernel_forks_total", ks.forks);
  Add(counters, "sva_kernel_execs_total", ks.execs);
  Add(counters, "sva_kernel_signals_delivered_total", ks.signals_delivered);
  Add(counters, "sva_kernel_user_bytes_copied_total", ks.bytes_copied_user);

  const runtime::CheckStats& cs = kernel_.pools().stats();
  Add(counters, "sva_pchk_bounds_checks_total", cs.bounds_performed);
  Add(counters, "sva_pchk_bounds_failed_total", cs.bounds_failed);
  Add(counters, "sva_pchk_loadstore_checks_total", cs.loadstore_performed);
  Add(counters, "sva_pchk_loadstore_failed_total", cs.loadstore_failed);
  Add(counters, "sva_pchk_indirect_checks_total", cs.indirect_performed);
  Add(counters, "sva_pchk_indirect_failed_total", cs.indirect_failed);
  Add(counters, "sva_pchk_frees_checked_total", cs.frees_checked);
  Add(counters, "sva_pchk_frees_failed_total", cs.frees_failed);
  Add(counters, "sva_pchk_reduced_checks_total", cs.reduced_checks);
  Add(counters, "sva_pchk_registrations_total", cs.registrations);
  Add(counters, "sva_pchk_drops_total", cs.drops);
  Add(counters, "sva_pchk_cache_hits_total", cs.cache_hits);
  Add(counters, "sva_pchk_cache_misses_total", cs.cache_misses);
  Add(counters, "sva_pchk_splay_comparisons_total", cs.splay_comparisons);
  Add(counters, "sva_pchk_splay_rotations_total", cs.splay_rotations);

  // Per-pool fast-path counters, grouped by metric name so each gets a
  // single # TYPE header. Reading the pool map is a control-plane
  // operation, same quiescence rule as MetaPoolRuntime::stats().
  const auto& pools = kernel_.pools().pools();
  for (const auto& [name, pool] : pools) {
    Add(counters, "sva_pchk_pool_live_objects",
        static_cast<uint64_t>(pool->live_objects()),
        StrCat("{pool=\"", name, "\"}"));
  }
  for (const auto& [name, pool] : pools) {
    Add(counters, "sva_pchk_pool_cache_hits_total", pool->cache_hits(),
        StrCat("{pool=\"", name, "\"}"));
  }
  for (const auto& [name, pool] : pools) {
    Add(counters, "sva_pchk_pool_cache_misses_total", pool->cache_misses(),
        StrCat("{pool=\"", name, "\"}"));
  }
  for (const auto& [name, pool] : pools) {
    Add(counters, "sva_pchk_pool_splay_rotations_total", pool->rotations(),
        StrCat("{pool=\"", name, "\"}"));
  }

  // Epoch-based reclamation (docs/CONCURRENCY.md §5). pinned_readers is a
  // gauge: it reports readers inside a critical section right now and must
  // return to 0 at quiescence (the check_epoch_reclaim gate asserts this).
  const smp::EpochDomain& epoch = smp::EpochDomain::Global();
  Add(counters, "sva_epoch_advances_total", epoch.advances());
  Add(counters, "sva_epoch_retired_total", epoch.retired());
  Add(counters, "sva_epoch_reclaimed_total", epoch.reclaimed());
  Add(counters, "sva_epoch_pinned_readers", epoch.pinned_readers());

  smp::SvaOsStats os = kernel_.svaos().stats();
  Add(counters, "sva_svaos_save_integer_total", os.save_integer);
  Add(counters, "sva_svaos_load_integer_total", os.load_integer);
  Add(counters, "sva_svaos_save_fp_total", os.save_fp);
  Add(counters, "sva_svaos_save_fp_skipped_total", os.save_fp_skipped);
  Add(counters, "sva_svaos_load_fp_total", os.load_fp);
  Add(counters, "sva_svaos_icontext_created_total", os.icontext_created);
  Add(counters, "sva_svaos_icontext_committed_total", os.icontext_committed);
  Add(counters, "sva_svaos_ipush_function_total", os.ipush_function);
  Add(counters, "sva_svaos_syscalls_dispatched_total",
      os.syscalls_dispatched);
  Add(counters, "sva_svaos_interrupts_dispatched_total",
      os.interrupts_dispatched);
  Add(counters, "sva_svaos_mmu_ops_total", os.mmu_ops);
  Add(counters, "sva_svaos_mmu_protects_total", os.mmu_protects);
  Add(counters, "sva_svaos_mmu_checks_failed_total", os.mmu_checks_failed);
  Add(counters, "sva_svaos_tlb_shootdowns_total", os.tlb_shootdowns);
  Add(counters, "sva_svaos_io_ops_total", os.io_ops);

  // Virtual-memory subsystem: fault/fill/COW traffic and frame-pool level.
  const mm::VmStats vm = kernel_.vm().stats();
  Add(counters, "sva_vm_page_faults_total", vm.page_faults);
  Add(counters, "sva_vm_demand_fills_total", vm.demand_fills);
  Add(counters, "sva_vm_cow_faults_total", vm.cow_faults);
  Add(counters, "sva_vm_cow_copies_total", vm.cow_copies);
  Add(counters, "sva_vm_forks_total", vm.forks_cow, "{mode=\"cow\"}");
  Add(counters, "sva_vm_forks_total", vm.forks_eager, "{mode=\"eager\"}");
  Add(counters, "sva_vm_shootdown_ipis_total", vm.shootdown_ipis);
  Add(counters, "sva_vm_frames_live", kernel_.frames().live_frames());
  Add(counters, "sva_vm_frames_free", kernel_.frames().free_frames());

  // Per-CPU TLBs, aggregated (the user-copy fast path's hit rate).
  hw::Tlb::Stats tlb{};
  svaos::SvaOS& svaos = kernel_.svaos();
  for (unsigned c = 0; c < svaos.num_cpus(); ++c) {
    hw::Tlb::Stats s = svaos.cpu(c).tlb().stats();
    tlb.hits += s.hits;
    tlb.misses += s.misses;
    tlb.invalidations += s.invalidations;
    tlb.shootdowns_received += s.shootdowns_received;
  }
  Add(counters, "sva_tlb_hits_total", tlb.hits);
  Add(counters, "sva_tlb_misses_total", tlb.misses);
  Add(counters, "sva_tlb_invalidations_total", tlb.invalidations);
  Add(counters, "sva_tlb_shootdowns_received_total",
      tlb.shootdowns_received);

  if (net::NetStack* net = kernel_.net()) {
    const net::NetStats& ns = net->stats();
    Add(counters, "sva_net_rx_delivered_total",
        ns.rx_delivered.load(std::memory_order_relaxed));
    Add(counters, "sva_net_rx_parse_errors_total",
        ns.rx_parse_errors.load(std::memory_order_relaxed));
    Add(counters, "sva_net_rx_violations_total",
        ns.rx_violations.load(std::memory_order_relaxed));
    Add(counters, "sva_net_rx_no_socket_total",
        ns.rx_no_socket.load(std::memory_order_relaxed));
    Add(counters, "sva_net_rx_queue_drops_total",
        ns.rx_queue_drops.load(std::memory_order_relaxed));
    Add(counters, "sva_net_tx_frames_total",
        ns.tx_frames.load(std::memory_order_relaxed));
    Add(counters, "sva_net_loopback_frames_total",
        ns.loopback_frames.load(std::memory_order_relaxed));
    Add(counters, "sva_net_conns_accepted_total",
        ns.conns_accepted.load(std::memory_order_relaxed));
    // NAPI batching: frames_polled / rx_irqs is the frames-per-interrupt
    // win; its inverse (irqs per frame) < 1 is the acceptance criterion.
    Add(counters, "sva_net_rx_irqs_total",
        ns.rx_irqs.load(std::memory_order_relaxed));
    Add(counters, "sva_net_rx_polls_total",
        ns.rx_polls.load(std::memory_order_relaxed));
    Add(counters, "sva_net_rx_frames_polled_total",
        ns.rx_frames_polled.load(std::memory_order_relaxed));
    Add(counters, "sva_net_rx_poll_budget", net::kNapiRxBudget);
  }

  // SVM execution-tier dispatch: how much verified bytecode ran on the
  // threaded tier vs the tree-walking interpreter (including per-function
  // decoder fallbacks), labelled by tier for one-query speed-ratio panels.
  const trace::TierCounters& tiers = trace::TierCounters::Get();
  Add(counters, "sva_exec_tier_functions_total",
      tiers.threaded_fns.load(std::memory_order_relaxed),
      "{tier=\"threaded\"}");
  Add(counters, "sva_exec_tier_functions_total",
      tiers.interp_fns.load(std::memory_order_relaxed), "{tier=\"interp\"}");
  Add(counters, "sva_exec_tier_ops_total",
      tiers.threaded_ops.load(std::memory_order_relaxed),
      "{tier=\"threaded\"}");
  Add(counters, "sva_exec_tier_ops_total",
      tiers.interp_ops.load(std::memory_order_relaxed), "{tier=\"interp\"}");
  Add(counters, "sva_exec_tier_fallback_functions_total",
      tiers.fallback_fns.load(std::memory_order_relaxed));

  trace::Tracer& tracer = trace::Tracer::Get();
  Add(counters, "sva_trace_events_recorded_total",
      tracer.events_recorded());
  Add(counters, "sva_trace_events_lost_total", tracer.events_lost());
  // Ring-loss and drain accounting (previously only visible in Chrome-trace
  // metadata): lost = overwritten/torn slots, drained = consumed by the
  // ContinuousDrainer, backlog = drained but not yet exported.
  Add(counters, "sva_trace_lost_events_total", tracer.events_lost());
  const trace::DrainerStats& ds = trace::DrainerStats::Get();
  Add(counters, "sva_trace_drained_events_total",
      ds.drained_events.load(std::memory_order_relaxed));
  Add(counters, "sva_trace_drainer_backlog_total",
      ds.backlog.load(std::memory_order_relaxed));

  // Sampling profiler: totals plus the per-context sample-share table
  // (sample counts labelled by what the CPU was doing when hit).
  const trace::Profiler& prof = trace::Profiler::Get();
  const trace::Profiler::Stats ps = prof.stats();
  Add(counters, "sva_prof_samples_total", ps.samples);
  Add(counters, "sva_prof_lost_total", ps.lost);
  Add(counters, "sva_prof_stacks_truncated_total", ps.stacks_truncated);
  std::vector<uint64_t> per_context = prof.ContextCounts();
  for (size_t c = 0; c < per_context.size(); ++c) {
    Add(counters, "sva_prof_context_samples_total", per_context[c],
        StrCat("{context=\"",
               trace::ProfContextName(static_cast<trace::ProfContext>(c)),
               "\"}"));
  }

  return trace::RenderPrometheus(counters,
                                 trace::Metrics::Get().Snapshot());
}

Result<std::string> MetricsServer::ServeOne() {
  if (!started_) {
    return FailedPrecondition("metrics server not started");
  }
  SVA_ASSIGN_OR_RETURN(uint64_t conn,
                       kernel_.Syscall(Sys::kAccept, listener_));
  if (IsErrno(conn)) {
    return FailedPrecondition("metrics server: no pending connection");
  }
  const uint64_t scratch =
      kUserVirtualBase +
      static_cast<uint64_t>(kernel_.current_pid()) * 0x100000 +
      kScratchOffset;
  SVA_ASSIGN_OR_RETURN(uint64_t got,
                       kernel_.Syscall(Sys::kRecv, conn, scratch, 256));
  if (IsErrno(got) || got == 0) {
    (void)kernel_.Syscall(Sys::kClose, conn);
    return FailedPrecondition("metrics server: empty request");
  }
  char request[257] = {};
  SVA_RETURN_IF_ERROR(
      kernel_.PeekUser(scratch, request, std::min<uint64_t>(got, 256)));

  std::string response;
  if (std::strncmp(request, "GET /metrics", 12) == 0) {
    std::string body = RenderText();
    response = StrCat("HTTP/1.0 200 OK\r\n",
                      "Content-Type: text/plain; version=0.0.4\r\n",
                      "Content-Length: ", body.size(), "\r\n\r\n", body);
  } else {
    const std::string body = "not found\n";
    response = StrCat("HTTP/1.0 404 Not Found\r\n",
                      "Content-Type: text/plain\r\n",
                      "Content-Length: ", body.size(), "\r\n\r\n", body);
  }

  // Stream the response back through the user scratch window; kSend
  // fragments each chunk into MTU-sized frames on its own.
  for (uint64_t done = 0; done < response.size();) {
    uint64_t n = std::min<uint64_t>(kSendChunk, response.size() - done);
    SVA_RETURN_IF_ERROR(kernel_.PokeUser(scratch, response.data() + done, n));
    SVA_ASSIGN_OR_RETURN(uint64_t sent,
                         kernel_.Syscall(Sys::kSend, conn, scratch, n));
    if (IsErrno(sent) || sent != n) {
      (void)kernel_.Syscall(Sys::kClose, conn);
      return Internal("metrics server: short send");
    }
    done += n;
  }
  SVA_ASSIGN_OR_RETURN(uint64_t closed, kernel_.Syscall(Sys::kClose, conn));
  (void)closed;
  return response;
}

}  // namespace sva::kernel
