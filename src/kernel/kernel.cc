#include "src/kernel/kernel.h"

#include <algorithm>
#include <cstring>

#include "src/support/strings.h"
#include "src/trace/profiler.h"
#include "src/trace/trace.h"

namespace sva::kernel {

namespace {
// Error returns follow the kernel convention of small negative numbers.
constexpr uint64_t kEInval = static_cast<uint64_t>(-22);
constexpr uint64_t kEBadF = static_cast<uint64_t>(-9);
constexpr uint64_t kENoEnt = static_cast<uint64_t>(-2);
constexpr uint64_t kEMFile = static_cast<uint64_t>(-24);
constexpr uint64_t kEChild = static_cast<uint64_t>(-10);
constexpr uint64_t kEAgain = static_cast<uint64_t>(-11);
constexpr uint64_t kEMsgSize = static_cast<uint64_t>(-90);
constexpr uint64_t kEAddrInUse = static_cast<uint64_t>(-98);
constexpr uint64_t kENoMem = static_cast<uint64_t>(-12);

// The fd array is modeled at this offset inside the task-cache object; the
// sigaction table sits below it at offset 96 (signals < 32 fit).
constexpr uint64_t kTaskFdArrayOffset = 128;

uint64_t UserBaseForPid(int pid) {
  return kUserVirtualBase + static_cast<uint64_t>(pid) * 0x100000;
}

const char* SyscallName(Sys number) {
  switch (number) {
    case Sys::kExit: return "exit";
    case Sys::kFork: return "fork";
    case Sys::kRead: return "read";
    case Sys::kWrite: return "write";
    case Sys::kOpen: return "open";
    case Sys::kClose: return "close";
    case Sys::kWaitPid: return "waitpid";
    case Sys::kUnlink: return "unlink";
    case Sys::kExecve: return "execve";
    case Sys::kStat: return "stat";
    case Sys::kLseek: return "lseek";
    case Sys::kGetPid: return "getpid";
    case Sys::kKill: return "kill";
    case Sys::kPipe: return "pipe";
    case Sys::kBrk: return "brk";
    case Sys::kSigaction: return "sigaction";
    case Sys::kGetRusage: return "getrusage";
    case Sys::kGetTimeOfDay: return "gettimeofday";
    case Sys::kDup: return "dup";
    case Sys::kSocket: return "socket";
    case Sys::kSend: return "send";
    case Sys::kRecv: return "recv";
    case Sys::kBind: return "bind";
    case Sys::kAccept: return "accept";
    case Sys::kEvqCreate: return "evq_create";
    case Sys::kEvqCtl: return "evq_ctl";
    case Sys::kEvqWait: return "evq_wait";
    case Sys::kProfStart: return "prof_start";
    case Sys::kProfStop: return "prof_stop";
    case Sys::kProfRead: return "prof_read";
  }
  return "unknown";
}

// Interned "syscall:<name>" profiler ids, one per syscall number, filled
// lazily off the sampler-visible fast path (the intern itself takes only
// the profiler's leaf name lock).
uint32_t ProfNameForSyscall(Sys number) {
  static std::array<std::atomic<uint32_t>, 128> ids = {};
  size_t idx = static_cast<uint64_t>(number) & 127;
  uint32_t id = ids[idx].load(std::memory_order_relaxed);
  if (id == 0) {
    id = trace::InternProfName(std::string("syscall:") + SyscallName(number));
    ids[idx].store(id, std::memory_order_relaxed);
  }
  return id;
}
}  // namespace

Kernel::Kernel(hw::Machine& machine, KernelConfig config)
    : machine_(machine),
      config_(config),
      svaos_(machine),
      pools_(runtime::EnforcementMode::kTrap) {}

Kernel::~Kernel() {
  // Drain the epoch machinery first: retired fd tables, open files, inodes
  // and directory-index snapshots capture this kernel's allocators in their
  // reclaim callbacks, so every pending retiree must run before the member
  // destructors below tear the allocators down. The caller guarantees no
  // syscall is still in flight, so the pinned-reader population is zero
  // (or draining) and Synchronize terminates.
  smp::EpochDomain::Global().Synchronize();
  // The epoch-published snapshots and the open-file table are owned raw:
  // with every reader gone, delete them directly.
  delete task_index_.exchange(nullptr, std::memory_order_relaxed);
  delete dir_index_.exchange(nullptr, std::memory_order_relaxed);
  if (OpenFileTable* tab =
          open_files_tab_.exchange(nullptr, std::memory_order_relaxed)) {
    for (uint64_t i = 0; i < open_files_count_; ++i) {
      delete tab->entries[i].load(std::memory_order_relaxed);
    }
    delete tab;
  }
  // The profiler sampler can outlive this kernel (another kernel's session
  // keeps the refcount up) and its tick hook targets our timer: flip the
  // shared guard first so a late tick becomes a locked no-op, then unhook
  // the interrupt callback and release our sessions. The Stops happen with
  // no lock held — the last one joins the sampler thread.
  {
    std::lock_guard<std::mutex> lock(prof_tick_guard_->mu);
    prof_tick_guard_->alive = false;
  }
  machine_.timer().SetInterruptCallback(nullptr);
  int open_sessions = 0;
  {
    std::lock_guard<smp::SpinLock> guard(prof_lock_);
    for (auto& session : prof_sessions_) {
      if (session != nullptr && session->active) {
        session->active = false;
        ++open_sessions;
      }
    }
  }
  for (int i = 0; i < open_sessions; ++i) {
    trace::Profiler::Get().Stop();
  }
}

Status Kernel::Boot() {
  bool safe = config_.mode == KernelMode::kSvaSafe;
  allocators_ = std::make_unique<KernelAllocators>(
      machine_, safe ? &pools_ : nullptr, safe);

  // SVA-PORT(alloc): caches are created with the pool-allocator contract
  // (type-size alignment, SLAB_NO_REAP) and identified to the compiler.
  // The task struct ends with the fd array, so its size scales with the
  // configured fd-table size (satisfying the Table 6 experiment's 25
  // concurrent connections without fd pooling).
  task_cache_ = allocators_->CreateCache(
      "task_struct", kTaskFdArrayOffset + 4 * config_.max_fds);
  inode_cache_ = allocators_->CreateCache("inode", 96);
  file_cache_ = allocators_->CreateCache("filp", 48);
  pipe_cache_ = allocators_->CreateCache("pipe_inode_info", 64);
  socket_cache_ = allocators_->CreateCache("sock", 128);
  evq_cache_ = allocators_->CreateCache("eventpoll", 64);
  prof_cache_ = allocators_->CreateCache("perf_event", 32);

  // Program the sampling-interrupt rate and route the line into the
  // profiler: every FireInterrupt edge takes one sample of each vCPU.
  SVA_RETURN_IF_ERROR(machine_.timer().SetFrequency(config_.timer_hz));
  machine_.timer().SetInterruptCallback(
      [] { trace::Profiler::Get().SampleNow(); });

  if (safe) {
    // SVA-PORT(analysis): all of userspace is one object per metapool
    // reachable from system call arguments (Section 4.6).
    user_pool_ = pools_.GetPool("MPu.user", /*type_homogeneous=*/false,
                                /*element_size=*/0, /*complete=*/true);
  }

  // The network stack boots against the same machine and metapool runtime;
  // SVA modes reach the NIC through SVA-OS I/O ops and the registered rx
  // interrupt, native mode touches the device directly.
  net_ = std::make_unique<net::NetStack>(
      machine_, svaos_, safe ? &pools_ : nullptr, safe,
      /*use_svaos=*/config_.mode != KernelMode::kNative);
  SVA_RETURN_IF_ERROR(net_->Boot());
  // Readiness edges flow from the net stack into the event queues. The
  // callback fires with no net-stack locks held (see NetStack::NotifyReady),
  // so OnSocketReady may take evq_lock_ and per-queue locks freely.
  net_->SetReadyCallback([this](int sid) { OnSocketReady(sid); });
  net_->set_max_accept_backlog(config_.max_accept_backlog);

  // The VM subsystem hooks the shootdown-IPI vector before any address
  // space exists.
  SVA_RETURN_IF_ERROR(vm_.Init());

  if (config_.mode != KernelMode::kNative) {
    // SVA-PORT(svaos): system call handlers are registered through the
    // SVA-OS registration operation instead of a hand-built IDT stub.
    for (Sys number :
         {Sys::kExit, Sys::kFork, Sys::kRead, Sys::kWrite, Sys::kOpen,
          Sys::kClose, Sys::kWaitPid, Sys::kUnlink, Sys::kExecve, Sys::kStat,
          Sys::kLseek,
          Sys::kGetPid, Sys::kKill, Sys::kPipe, Sys::kBrk, Sys::kSigaction,
          Sys::kGetRusage, Sys::kGetTimeOfDay, Sys::kDup, Sys::kSocket,
          Sys::kSend, Sys::kRecv, Sys::kBind, Sys::kAccept, Sys::kEvqCreate,
          Sys::kEvqCtl, Sys::kEvqWait, Sys::kProfStart, Sys::kProfStop,
          Sys::kProfRead}) {
      SVA_RETURN_IF_ERROR(svaos_.RegisterSyscall(
          static_cast<uint64_t>(number),
          [this, number](const svaos::SyscallArgs& call) {
            return HandleSyscall(number, call.args, call.icontext);
          }));
    }
  }

  // /dev/null.
  Inode null_dev;
  null_dev.ino = 0;
  null_dev.name = "/dev/null";
  inodes_[0] = null_dev;
  namespace_["/dev/null"] = 0;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(vfs_lock_);
    RepublishDirIndex();
  }

  // pid 1: init.
  SVA_ASSIGN_OR_RETURN(int pid, CreateTask(/*parent_pid=*/0));
  current_pid_ = pid;
  booted_ = true;
  return OkStatus();
}

void Kernel::TranslatorTax() {
  // Deterministic stand-in for the LLVM-vs-GCC code quality delta the paper
  // measured at <= 13% on kernel paths (DESIGN.md §2 records this
  // substitution).
  volatile uint64_t sink = 0;
  for (unsigned i = 0; i < config_.translator_tax_iterations; ++i) {
    sink = sink + i * 2654435761u;
  }
}

Kernel::SyscallRoute Kernel::RouteSyscall(Sys number, uint64_t a0) {
  switch (number) {
    case Sys::kBind:
    case Sys::kAccept:
      return SyscallRoute::kNet;  // Net-stack-only syscalls.
    case Sys::kEvqCreate:
    case Sys::kEvqCtl:
    case Sys::kEvqWait:
      return SyscallRoute::kEvq;
    case Sys::kSend:
    case Sys::kRecv:
      return NetSocketIdForFd(a0) >= 0 ? SyscallRoute::kNet
                                       : SyscallRoute::kSockets;
    case Sys::kSocket:
      // a0 is the domain: legacy loopback goes to the legacy socket table,
      // everything else is created in the net stack.
      return static_cast<SocketDomain>(a0) == SocketDomain::kLegacyLoopback
                 ? SyscallRoute::kSockets
                 : SyscallRoute::kNet;
    case Sys::kPipe:
      return SyscallRoute::kPipes;
    case Sys::kRead:
    case Sys::kWrite:
      // Pipe fds take the pipe path; everything else (regular files,
      // /dev/null, socket fallthroughs) enters through the vfs route.
      return PipeIdForFd(a0) >= 0 ? SyscallRoute::kPipes
                                  : SyscallRoute::kVfs;
    case Sys::kOpen:
    case Sys::kClose:
    case Sys::kStat:
    case Sys::kLseek:
    case Sys::kUnlink:
    case Sys::kDup:
      return SyscallRoute::kVfs;
    case Sys::kFork:
    case Sys::kExecve:
    case Sys::kExit:
    case Sys::kWaitPid:
    case Sys::kKill:
    case Sys::kBrk:
    case Sys::kSigaction:
    case Sys::kGetPid:
    case Sys::kGetTimeOfDay:
    case Sys::kGetRusage:
    // Profiling sessions ride the tasks route: the handlers touch only the
    // current task's fd table (files_lock_) and the unranked prof leaf.
    case Sys::kProfStart:
    case Sys::kProfStop:
    case Sys::kProfRead:
      return SyscallRoute::kTasks;
  }
  // Unknown syscall numbers are the only remaining big-kernel-lock users.
  return SyscallRoute::kBkl;
}

Result<uint64_t> Kernel::Syscall(Sys number, uint64_t a0, uint64_t a1,
                                 uint64_t a2, uint64_t a3) {
  if (!booted_) {
    return FailedPrecondition("kernel not booted");
  }
  trace::Span span(trace::EventId::kSyscall, trace::HistId::kSyscallNs,
                   static_cast<uint64_t>(number));
  // Every steady-state syscall dispatches off the big kernel lock onto its
  // subsystem's leaf lock (taken inside the handler, where the subsystem
  // state is actually touched — the wrapper cannot hold tasks_lock_ here
  // because handler prologues resolve current_task() through it). args[5]
  // carries the route so handlers never fall through to state another
  // domain guards.
  SyscallRoute route = RouteSyscall(number, a0);
  if (route != SyscallRoute::kBkl) {
    Result<uint64_t> r =
        Dispatch(number, {a0, a1, a2, a3, 0, static_cast<uint64_t>(route)});
    // The syscall-exit quiescent state (docs/CONCURRENCY.md §5): no epoch
    // guard and no kernel lock is held here, so this thread can drive the
    // grace-period advance and run deferred reclaims.
    smp::EpochDomain::Global().QuiescentState();
    return r;
  }
  // SVA-PORT(svaos): the demoted big kernel lock — only unknown syscall
  // numbers (and the scheduler/host helpers) still serialize on it.
  Result<uint64_t> r = [&] {
    trace::TimedLockGuard<smp::OrderedSpinLock> guard(
        bkl_, trace::HistId::kBklWaitNs, trace::kLockBkl);
    return Dispatch(number, {a0, a1, a2, a3, 0, 0});
  }();
  smp::EpochDomain::Global().QuiescentState();
  return r;
}

Result<uint64_t> Kernel::Dispatch(Sys number,
                                  const std::array<uint64_t, 6>& args) {
  // Relaxed atomic: the net fast path dispatches concurrently.
  std::atomic_ref<uint64_t>(stats_.syscalls)
      .fetch_add(1, std::memory_order_relaxed);
  // Privilege transitions act on the calling thread's virtual CPU (bound to
  // the boot CPU in single-CPU runs, so single-threaded behaviour is
  // unchanged).
  hw::Cpu& cpu = svaos_.current_cpu().cpu();
  switch (config_.mode) {
    case KernelMode::kNative: {
      // Native dispatch: the hand-written trap stub still saves and
      // restores the interrupted register state (as real kernels do), but
      // without interrupt-context bookkeeping or SVA-OS mediation.
      hw::ControlState saved = cpu.control();
      cpu.control().privilege = hw::Privilege::kKernel;
      Result<uint64_t> r = HandleSyscall(number, args, nullptr);
      cpu.control() = saved;
      return r;
    }
    case KernelMode::kSvaGcc:
      cpu.control().privilege = hw::Privilege::kUser;
      return svaos_.Syscall(static_cast<uint64_t>(number), args);
    case KernelMode::kSvaLlvm:
    case KernelMode::kSvaSafe:
      TranslatorTax();
      cpu.control().privilege = hw::Privilege::kUser;
      return svaos_.Syscall(static_cast<uint64_t>(number), args);
  }
  return Internal("bad kernel mode");
}

Result<uint64_t> Kernel::HandleSyscall(Sys number,
                                       const std::array<uint64_t, 6>& args,
                                       svaos::InterruptContext* icontext) {
  // The whole syscall body is one epoch read-side critical section: every
  // pointer resolved through the epoch-published structures (fd -> file,
  // path -> inode, pid -> task) stays valid until this guard drops at
  // return. Writers inside the body may Retire freely (retirement only
  // enqueues); the grace-period advance runs from the quiescent hook in
  // Syscall(), after the guard is gone. kEvqWait bounds the pin duration
  // by its timeout — the longest a reader may stall reclamation.
  smp::EpochGuard epoch_guard;
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  // Publish "in kernel, running syscall X for pid P" to the sampling
  // profiler. One relaxed load when no profiler is running; a few relaxed
  // stores on this CPU's slot otherwise — never a lock, so the hook is safe
  // under every route's leaf locks.
  trace::ProfContextScope prof;
  if (trace::prof_enabled()) {
    prof.Enter(trace::ProfContext::kKernelSyscall, ProfNameForSyscall(number),
               static_cast<uint32_t>(task->pid),
               static_cast<uint8_t>(config_.mode));
  }
  if (config_.mode == KernelMode::kSvaSafe) {
    // The load of the current task structure goes through the task cache's
    // metapool (a TH pool: bounds lookups only, no load-store check).
    SVA_RETURN_IF_ERROR(BoundsCheckObject(
        allocators_->PoolForCache(task_cache_), task->addr, task->addr + 8));
  }

  Result<uint64_t> result = [&]() -> Result<uint64_t> {
    switch (number) {
      case Sys::kGetPid:
        return SysGetPid();
      case Sys::kGetTimeOfDay:
        return SysGetTimeOfDay(args[0]);
      case Sys::kGetRusage:
        return SysGetRusage(args[0]);
      case Sys::kOpen:
        return SysOpen(args[0], args[1]);
      case Sys::kClose:
        return SysClose(args[0]);
      case Sys::kRead:
        // args[5] == 2: routed to the pipe subsystem (pipes_lock_, no BKL).
        return args[5] == 2 ? SysPipeRead(args[0], args[1], args[2])
                            : SysRead(args[0], args[1], args[2]);
      case Sys::kWrite:
        return args[5] == 2 ? SysPipeWrite(args[0], args[1], args[2])
                            : SysWrite(args[0], args[1], args[2]);
      case Sys::kLseek:
        return SysLseek(args[0], args[1], args[2]);
      case Sys::kStat:
        return SysStat(args[0]);
      case Sys::kUnlink:
        return SysUnlink(args[0]);
      case Sys::kPipe:
        return SysPipe(args[0]);
      case Sys::kBrk:
        return SysBrk(args[0]);
      case Sys::kSigaction:
        return SysSigaction(args[0], args[1]);
      case Sys::kKill:
        return SysKill(args[0], args[1], icontext);
      case Sys::kFork:
        return SysFork();
      case Sys::kExecve:
        return SysExecve(args[0]);
      case Sys::kExit:
        return SysExit(args[0]);
      case Sys::kWaitPid:
        return SysWaitPid(args[0]);
      case Sys::kDup:
        return SysDup(args[0]);
      case Sys::kSocket:
        return SysSocket(args[0]);
      case Sys::kSend:
        // args[5] routes: the net fast path must not touch the legacy
        // loopback queue (sockets_lock_-protected), and vice versa. A
        // mismatch means the socket changed type between routing and
        // dispatch: kEBadF.
        return args[5] == 1 ? SysNetSend(args[0], args[1], args[2], args[3])
                            : SysSend(args[0], args[1], args[2]);
      case Sys::kRecv:
        return args[5] == 1 ? SysNetRecv(args[0], args[1], args[2])
                            : SysRecv(args[0], args[1], args[2]);
      case Sys::kBind:
        return SysNetBind(args[0], args[1], args[2]);
      case Sys::kAccept:
        return SysNetAccept(args[0]);
      case Sys::kEvqCreate:
        return SysEvqCreate();
      case Sys::kEvqCtl:
        return SysEvqCtl(args[0], args[1], args[2], args[3]);
      case Sys::kEvqWait:
        return SysEvqWait(args[0], args[1], args[2], args[3]);
      case Sys::kProfStart:
        return SysProfStart(args[0]);
      case Sys::kProfStop:
        return SysProfStop(args[0]);
      case Sys::kProfRead:
        return SysProfRead(args[0], args[1], args[2]);
    }
    return NotFound(StrCat("unknown syscall ", static_cast<uint64_t>(number)));
  }();

  // Frame-pool exhaustion surfaces mid-copy as a fault that cannot fill;
  // the kernel turns it into -ENOMEM, never an abort or a kill.
  if (!result.ok() &&
      result.status().code() == StatusCode::kResourceExhausted) {
    result = kENoMem;
  }

  // Signal delivery on the return path. SVA-PORT(svaos): dispatch saves
  // state on the kernel stack and uses llva.ipush.function instead of
  // rewriting the user stack frame (Section 6.1). Delivery runs on the
  // tasks route (which kKill itself takes, so a self-signal is seen on the
  // same return) and the BKL fallback; the other fast paths skip it —
  // signals are delivered on the task's next tasks-route entry. The
  // pending mask is an atomic bitmask, so no lock is needed here.
  uint64_t route = args[5];
  if (route == 0 || route == static_cast<uint64_t>(SyscallRoute::kTasks)) {
    Task* after = current_task();
    if (after != nullptr &&
        std::atomic_ref<uint32_t>(after->pending_signals)
                .load(std::memory_order_acquire) != 0) {
      DeliverPendingSignals(*after, icontext);
    }
  }
  return result;
}

void Kernel::DeliverPendingSignals(Task& task,
                                   svaos::InterruptContext* icontext) {
  int pid = task.pid;
  // Claim the whole pending set atomically: concurrent killers may be
  // setting bits while this task drains them, and two return paths must
  // never deliver the same signal twice.
  uint32_t pending = std::atomic_ref<uint32_t>(task.pending_signals)
                         .exchange(0, std::memory_order_acq_rel);
  for (int sig = 0; sig < kMaxSignals; ++sig) {
    if ((pending & (1u << sig)) == 0) {
      continue;
    }
    if (std::atomic_ref<uint64_t>(task.sigactions[sig].handler)
            .load(std::memory_order_acquire) == 0) {
      continue;  // Default action: ignore (minikernel simplification).
    }
    auto deliver = [this, pid](uint64_t signum) {
      Task* t = FindTask(pid);
      if (t != nullptr) {
        std::atomic_ref<uint64_t>(t->signals_delivered)
            .fetch_add(1, std::memory_order_relaxed);
        std::atomic_ref<uint64_t>(stats_.signals_delivered)
            .fetch_add(1, std::memory_order_relaxed);
        (void)signum;
      }
    };
    if (icontext != nullptr) {
      svaos_.IPushFunction(icontext, deliver, static_cast<uint64_t>(sig));
    } else {
      deliver(static_cast<uint64_t>(sig));  // Native path: direct call.
    }
  }
}

// --- User memory ------------------------------------------------------------------

Result<uint64_t> Kernel::UserToPhysical(Task& task, uint64_t uaddr,
                                        bool write) {
  // SVA-PORT(svaos): translation goes through the task's address space —
  // per-CPU TLB hit on the fast path, page-fault-driven demand fill (or
  // COW break, for writes) on a miss. Net-path workers share the task off
  // the BKL; VmManager::Resolve serializes faults on the AS lock.
  return vm_.Resolve(*task.aspace, uaddr, write);
}

Status Kernel::CheckUserRange(Task& task, uint64_t uaddr, uint64_t len) {
  (void)task;
  if (config_.mode != KernelMode::kSvaSafe || user_pool_ == nullptr) {
    return OkStatus();
  }
  // The Section 4.6 check: the whole range must stay inside the single
  // userspace object; a buffer straddling into kernel memory fails here.
  uint64_t last = len == 0 ? uaddr : uaddr + len - 1;
  return pools_.BoundsCheck(*user_pool_, uaddr, last);
}

Status Kernel::ReadUserPath(Task& task, uint64_t path_uaddr,
                            std::string* out) {
  // Byte-wise NUL-terminated user-string copy with no kernel staging
  // buffer: the lock-free SysStat path must not touch the allocators (their
  // stripe locks are cheap, but the point of the fast path is zero shared
  // writes).
  out->clear();
  for (uint64_t i = 0; i < kMaxPathLength; ++i) {
    SVA_RETURN_IF_ERROR(CheckUserRange(task, path_uaddr + i, 1));
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(task, path_uaddr + i, /*write=*/false));
    SVA_ASSIGN_OR_RETURN(uint64_t c, machine_.memory().Read(pa, 1));
    if (c == 0) {
      break;
    }
    out->push_back(static_cast<char>(c));
  }
  return OkStatus();
}

Status Kernel::CopyFromUser(Task& task, uint64_t kaddr, uint64_t uaddr,
                            uint64_t len) {
  SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, len));
  std::atomic_ref<uint64_t>(stats_.bytes_copied_user)
      .fetch_add(len, std::memory_order_relaxed);
  uint64_t copied = 0;
  while (copied < len) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(task, uaddr + copied, /*write=*/false));
    uint64_t in_page = hw::kPageSize - (uaddr + copied) % hw::kPageSize;
    uint64_t chunk = std::min(len - copied, in_page);
    SVA_RETURN_IF_ERROR(machine_.memory().Copy(kaddr + copied, pa, chunk));
    copied += chunk;
  }
  return OkStatus();
}

Status Kernel::CopyToUser(Task& task, uint64_t uaddr, uint64_t kaddr,
                          uint64_t len) {
  SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, len));
  std::atomic_ref<uint64_t>(stats_.bytes_copied_user)
      .fetch_add(len, std::memory_order_relaxed);
  uint64_t copied = 0;
  while (copied < len) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(task, uaddr + copied, /*write=*/true));
    uint64_t in_page = hw::kPageSize - (uaddr + copied) % hw::kPageSize;
    uint64_t chunk = std::min(len - copied, in_page);
    SVA_RETURN_IF_ERROR(machine_.memory().Copy(pa, kaddr + copied, chunk));
    copied += chunk;
  }
  return OkStatus();
}

Status Kernel::CopyBlockToUser(Task& task, uint64_t uaddr, uint64_t kaddr,
                               uint64_t len) {
  // Copy with the range checks already hoisted by the caller.
  std::atomic_ref<uint64_t>(stats_.bytes_copied_user)
      .fetch_add(len, std::memory_order_relaxed);
  uint64_t copied = 0;
  while (copied < len) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(task, uaddr + copied, /*write=*/true));
    uint64_t in_page = hw::kPageSize - (uaddr + copied) % hw::kPageSize;
    uint64_t chunk = std::min(len - copied, in_page);
    SVA_RETURN_IF_ERROR(machine_.memory().Copy(pa, kaddr + copied, chunk));
    copied += chunk;
  }
  return OkStatus();
}

Status Kernel::CopyBlockFromUser(Task& task, uint64_t kaddr, uint64_t uaddr,
                                 uint64_t len) {
  std::atomic_ref<uint64_t>(stats_.bytes_copied_user)
      .fetch_add(len, std::memory_order_relaxed);
  uint64_t copied = 0;
  while (copied < len) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(task, uaddr + copied, /*write=*/false));
    uint64_t in_page = hw::kPageSize - (uaddr + copied) % hw::kPageSize;
    uint64_t chunk = std::min(len - copied, in_page);
    SVA_RETURN_IF_ERROR(machine_.memory().Copy(kaddr + copied, pa, chunk));
    copied += chunk;
  }
  return OkStatus();
}

Status Kernel::PokeUser(uint64_t uaddr, const void* data, uint64_t len) {
  std::lock_guard<smp::OrderedSpinLock> guard(bkl_);
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (uint64_t i = 0; i < len; ++i) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(*task, uaddr + i, /*write=*/true));
    SVA_RETURN_IF_ERROR(machine_.memory().Write(pa, 1, bytes[i]));
  }
  return OkStatus();
}

Status Kernel::PeekUser(uint64_t uaddr, void* data, uint64_t len) {
  std::lock_guard<smp::OrderedSpinLock> guard(bkl_);
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto* bytes = static_cast<uint8_t*>(data);
  for (uint64_t i = 0; i < len; ++i) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(*task, uaddr + i, /*write=*/false));
    SVA_ASSIGN_OR_RETURN(uint64_t v, machine_.memory().Read(pa, 1));
    bytes[i] = static_cast<uint8_t>(v);
  }
  return OkStatus();
}

Status Kernel::PokeUserString(uint64_t uaddr, const std::string& text) {
  SVA_RETURN_IF_ERROR(PokeUser(uaddr, text.data(), text.size()));
  uint8_t nul = 0;
  return PokeUser(uaddr + text.size(), &nul, 1);
}

// --- Safe-mode check helpers -----------------------------------------------------

Status Kernel::LsCheckObject(runtime::MetaPool* pool, uint64_t addr) {
  if (config_.mode != KernelMode::kSvaSafe || pool == nullptr) {
    return OkStatus();
  }
  return pools_.LoadStoreCheck(*pool, addr);
}

Status Kernel::BoundsCheckObject(runtime::MetaPool* pool, uint64_t base,
                                 uint64_t derived) {
  if (config_.mode != KernelMode::kSvaSafe || pool == nullptr) {
    return OkStatus();
  }
  return pools_.BoundsCheck(*pool, base, derived);
}

// --- Tasks -------------------------------------------------------------------------

Task* Kernel::FindTask(int pid) {
  // tasks_lock_ guards the map structure; node addresses are stable, so the
  // returned pointer stays valid after release (reaping a task that is
  // still running syscalls is a caller bug, as in any kernel).
  std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
  auto it = tasks_.find(pid);
  return it == tasks_.end() ? nullptr : &it->second;
}

Task* Kernel::current_task() {
  const int pid = current_pid();
  {
    // Fast path: binary-search the epoch-published pid snapshot. This runs
    // in every syscall prologue (and again on the signal tail), so it must
    // not contend on tasks_lock_ — before the epoch conversion this lookup
    // was the last lock every syscall still took.
    smp::EpochGuard guard;
    const TaskIndex* index = task_index_.load(std::memory_order_acquire);
    if (index != nullptr) {
      auto it = std::lower_bound(
          index->by_pid.begin(), index->by_pid.end(), pid,
          [](const std::pair<int, Task*>& e, int p) { return e.first < p; });
      if (it != index->by_pid.end() && it->first == pid) {
        return it->second;
      }
    }
  }
  // Slow path: a pid created since the last publish (or a pre-publish
  // caller) resolves through the locked map walk.
  return FindTask(pid);
}

void Kernel::RepublishTaskIndex(int skip_pid) {
  // Caller holds tasks_lock_. Build the sorted snapshot (map iteration is
  // already pid-ordered), publish it, retire the one it replaces. Readers
  // pinned on the old snapshot keep using it; its Task pointers stay valid
  // because map nodes outlive the snapshot retirement (SysWaitPid
  // republishes without the pid BEFORE erasing the node).
  auto* fresh = new TaskIndex;
  fresh->by_pid.reserve(tasks_.size());
  for (auto& [pid, task] : tasks_) {
    if (pid != skip_pid) {
      fresh->by_pid.emplace_back(pid, &task);
    }
  }
  TaskIndex* old = task_index_.exchange(fresh, std::memory_order_acq_rel);
  if (old != nullptr) {
    smp::RetireDelete(old);
  }
}

void Kernel::RepublishDirIndex() {
  // Caller holds vfs_lock_. Same snapshot discipline as the task index:
  // Inode pointers are map-node-stable, and SysUnlink extracts the node
  // only after publishing the entry's absence (retiring the node through
  // the epoch machinery so pinned readers finish against intact memory).
  auto* fresh = new DirIndex;
  for (const auto& [path, ino] : namespace_) {
    auto it = inodes_.find(ino);
    if (it != inodes_.end()) {
      fresh->entries.emplace(path, &it->second);
    }
  }
  DirIndex* old = dir_index_.exchange(fresh, std::memory_order_acq_rel);
  if (old != nullptr) {
    smp::RetireDelete(old);
  }
}

Result<int> Kernel::CreateTask(int parent_pid) {
  SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(task_cache_));
  Task task;
  task.addr = addr;
  {
    // Concurrent forks race on pid allocation; next_pid_ lives under
    // tasks_lock_ with the map it keys.
    std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
    task.pid = next_pid_++;
  }
  task.parent = parent_pid;
  task.alive = true;
  task.fds = FdTablePtr(new FdTable(config_.max_fds));
  // SVA-PORT(svaos): a fresh address space — nothing committed; pages fault
  // in on first touch, and brk grows the frontier lazily toward the cap.
  SVA_ASSIGN_OR_RETURN(
      task.aspace,
      vm_.CreateAddressSpace(UserBaseForPid(task.pid),
                             config_.user_pages_per_task,
                             config_.max_user_pages_per_task));
  task.brk = UserBaseForPid(task.pid) +
             config_.user_pages_per_task * hw::kPageSize / 2;
  if (config_.mode == KernelMode::kSvaSafe && user_pool_ != nullptr) {
    // Register this task's user range as one object (Section 4.6), covering
    // the full growable span so lazy brk needs no re-registration. Spans
    // tile exactly with the per-pid stride, so neighbours never overlap. An
    // overlap with an existing registration is a kernel bug, not a
    // recoverable condition.
    SVA_RETURN_IF_ERROR(pools_.RegisterUserspace(
        *user_pool_, UserBaseForPid(task.pid),
        static_cast<uint64_t>(config_.max_user_pages_per_task) *
            hw::kPageSize));
  }
  int pid = task.pid;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
    tasks_[pid] = std::move(task);
    RepublishTaskIndex();
  }
  return pid;
}

Status Kernel::Yield() {
  std::lock_guard<smp::OrderedSpinLock> guard(bkl_);
  Task* current = current_task();
  if (current == nullptr) {
    return Internal("no current task");
  }
  // Pick the next alive task in pid order (round robin). The map walk runs
  // under tasks_lock_ (fork/wait mutate the structure off the BKL now);
  // the picked node's address is stable, so the switch below runs on a
  // plain pointer after release.
  Task* next_task;
  {
    std::lock_guard<smp::OrderedSpinLock> tasks_guard(tasks_lock_);
    auto it = tasks_.upper_bound(current_pid_);
    while (true) {
      if (it == tasks_.end()) {
        it = tasks_.begin();
      }
      if (it->second.alive && !it->second.zombie) {
        break;
      }
      ++it;
      if (it != tasks_.end() && it->first == current_pid_) {
        break;
      }
    }
    next_task = &it->second;
  }
  Task& next = *next_task;
  if (next.pid == current_pid_) {
    return OkStatus();
  }
  std::atomic_ref<uint64_t>(stats_.context_switches)
      .fetch_add(1, std::memory_order_relaxed);
  if (config_.mode == KernelMode::kNative) {
    // Native context switch: direct struct copies.
    current->cpu_state.control = machine_.cpu().control();
    current->cpu_state.valid = true;
    current->fp_state.fp = machine_.cpu().fp();
    current->fp_state.valid = true;
    if (next.cpu_state.valid) {
      machine_.cpu().control() = next.cpu_state.control;
    }
  } else {
    // SVA-PORT(svaos): context switch through llva.save.integer /
    // llva.load.integer with lazy FP save (Table 1).
    svaos_.SaveIntegerState(&current->cpu_state);
    svaos_.SaveFpState(&current->fp_state, /*always=*/false);
    if (next.cpu_state.valid) {
      SVA_RETURN_IF_ERROR(svaos_.LoadIntegerState(next.cpu_state));
    }
    if (next.fp_state.valid) {
      SVA_RETURN_IF_ERROR(svaos_.LoadFpState(next.fp_state));
    }
  }
  current_pid_ = next.pid;
  return OkStatus();
}

// --- Files --------------------------------------------------------------------------

int Kernel::AddOpenFile(std::unique_ptr<OpenFile> file) {
  std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
  OpenFileTable* tab = open_files_tab_.load(std::memory_order_relaxed);
  if (tab == nullptr || open_files_count_ == tab->capacity) {
    // Copy-on-update growth: build the doubled table, publish it with
    // release ordering, retire the old one. A reader pinned on the old
    // table keeps indexing it — every index below open_files_count_ holds
    // the same entry pointer in both tables.
    auto* grown = new OpenFileTable(tab == nullptr ? 64 : tab->capacity * 2);
    for (uint64_t i = 0; i < open_files_count_; ++i) {
      grown->entries[i].store(tab->entries[i].load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    }
    open_files_tab_.store(grown, std::memory_order_release);
    if (tab != nullptr) {
      smp::RetireDelete(tab);
    }
    tab = grown;
  }
  // Indices are append-only and never reused, so a retired-then-reused
  // slot can never alias an old fd's index (no ABA for lock-free readers).
  tab->entries[open_files_count_].store(file.release(),
                                        std::memory_order_release);
  return static_cast<int>(open_files_count_++);
}

Status Kernel::FdSlotCheck(Task& task, uint64_t fd) {
  // SVA-safe: indexing the fd array is an array indexing operation; the
  // compiler emits a bounds check against the object backing the array —
  // the task struct while the table is embedded, the kmalloc block once it
  // has grown.
  // fd_block is read through atomic_ref: lock-free readers race GrowFdTable
  // swapping it. The release-publish of the grown FdTable orders the block
  // store, so a reader that saw the bigger table also sees its block; the
  // reverse skew (old table, new block) only widens the checked object.
  uint64_t block = std::atomic_ref<uint64_t>(task.fd_block)
                       .load(std::memory_order_relaxed);
  if (block != 0) {
    return BoundsCheckObject(
        allocators_->PoolForKmallocClass(allocators_->KmallocSize(block)),
        block, block + fd * 4);
  }
  return BoundsCheckObject(allocators_->PoolForCache(task_cache_), task.addr,
                           task.addr + kTaskFdArrayOffset + fd * 4);
}

Status Kernel::GrowFdTable(Task& task) {
  FdTable* table = task.fds.load_plain();
  uint64_t capacity = table->capacity;
  if (capacity >= config_.max_fds_limit) {
    return Status(StatusCode::kInternal, "fd table at max_fds_limit");
  }
  uint64_t grown =
      std::min<uint64_t>(capacity * 2, config_.max_fds_limit);
  // SVA-PORT(alloc): the expanded fdtable is an ordinary allocation, so its
  // bounds live in the kmalloc class metapool. (The embedded array stays
  // inside the task object — the task cache's object size never changes.)
  SVA_ASSIGN_OR_RETURN(uint64_t block, allocators_->Kmalloc(grown * 4));
  uint64_t old_block = std::atomic_ref<uint64_t>(task.fd_block)
                           .load(std::memory_order_relaxed);
  auto* bigger = new FdTable(grown);
  for (uint64_t fd = 0; fd < capacity; ++fd) {
    bigger->slots[fd].store(table->slots[fd].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  }
  // Publish-then-retire, in the order lock-free FdSlotCheck depends on:
  // the modeled block store first, THEN the release-publish of the table
  // that orders it, THEN the deferred frees. A reader pinned mid-lookup
  // keeps a consistent (old table, old-or-new block) pair; the old block's
  // kfree — which drops its bounds registration — waits out the grace
  // period, so no reader ever bounds-checks against freed metadata.
  std::atomic_ref<uint64_t>(task.fd_block)
      .store(block, std::memory_order_relaxed);
  task.fds.publish(bigger);
  smp::RetireDelete(table);
  if (old_block != 0) {
    KernelAllocators* allocators = allocators_.get();
    smp::EpochDomain::Global().Retire(
        [allocators, old_block] { (void)allocators->Kfree(old_block); });
  }
  return OkStatus();
}

Status Kernel::EnsureFdCapacity(Task& task, uint64_t capacity) {
  while (task.fds.load_plain()->capacity < capacity) {
    SVA_RETURN_IF_ERROR(GrowFdTable(task));
  }
  return OkStatus();
}

Result<int> Kernel::AllocateFd(Task& task, int file_index) {
  std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
  FdTable* table = task.fds.load_plain();
  // Every slot below fd_next_hint is occupied (SysClose/SysExit lower the
  // hint on free), so scanning from it finds the lowest free slot without
  // the O(table) walk that would make 10k accepts quadratic.
  size_t start = std::min<size_t>(
      static_cast<size_t>(std::max(task.fd_next_hint, 0)),
      static_cast<size_t>(table->capacity));
  for (size_t fd = start; fd < table->capacity; ++fd) {
    if (table->slots[fd].load(std::memory_order_relaxed) < 0) {
      SVA_RETURN_IF_ERROR(FdSlotCheck(task, fd));
      // Release: a lock-free reader that observes this index also observes
      // the fully-initialized OpenFile published by AddOpenFile.
      table->slots[fd].store(file_index, std::memory_order_release);
      task.fd_next_hint = static_cast<int>(fd) + 1;
      return static_cast<int>(fd);
    }
  }
  // Table genuinely full: grow it and take the first new slot.
  size_t fd = table->capacity;
  SVA_RETURN_IF_ERROR(GrowFdTable(task));
  SVA_RETURN_IF_ERROR(FdSlotCheck(task, fd));
  task.fds.load_plain()->slots[fd].store(file_index,
                                         std::memory_order_release);
  task.fd_next_hint = static_cast<int>(fd) + 1;
  return static_cast<int>(fd);
}

Result<OpenFile*> Kernel::FileForFd(Task& task, uint64_t fd) {
  // Lock-free fd resolution (docs/CONCURRENCY.md §5): the caller holds an
  // EpochGuard (HandleSyscall pins one around the whole syscall body), so
  // every snapshot loaded here — the fd table, the open-file table, the
  // OpenFile itself — outlives this lookup even when writers concurrently
  // close the fd, grow the table, or retire the file. The acquire loads
  // pair with the writers' release publishes; the bounds check below takes
  // only metapool stripe locks (external classes, never kernel ranks).
  FdTable* table = task.fds.load_acquire();
  if (table == nullptr || fd >= table->capacity) {
    return SafetyViolation(StrCat("fd ", fd, " out of range"));
  }
  SVA_RETURN_IF_ERROR(FdSlotCheck(task, fd));
  int index = table->slots[fd].load(std::memory_order_acquire);
  OpenFileTable* tab = open_files_tab_.load(std::memory_order_acquire);
  if (index < 0 || tab == nullptr ||
      static_cast<uint64_t>(index) >= tab->capacity) {
    return NotFound(StrCat("bad fd ", fd));
  }
  OpenFile* file = tab->entries[index].load(std::memory_order_acquire);
  if (file == nullptr) {
    // Racing a close: the slot was read before the writer cleared it, the
    // entry after. Either outcome of the race is a clean kEBadF or the old
    // file — never a torn slot.
    return NotFound(StrCat("bad fd ", fd));
  }
  return file;
}

Result<Inode*> Kernel::LookupInode(const std::string& name, bool create) {
  auto it = namespace_.find(name);
  if (it != namespace_.end()) {
    return &inodes_[it->second];
  }
  if (!create) {
    return NotFound(StrCat("no such file: ", name));
  }
  SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(inode_cache_));
  Inode inode;
  inode.addr = addr;
  inode.ino = next_ino_++;
  inode.name = name;
  int ino = inode.ino;
  inodes_[ino] = std::move(inode);
  namespace_[name] = ino;
  // Publish the new name to lock-free path resolution (SysStat, the SysOpen
  // fast path) before the creating syscall returns.
  RepublishDirIndex();
  return &inodes_[ino];
}

Status Kernel::ReleaseFile(int file_index) {
  OpenFile* defunct = nullptr;
  int defunct_net_sid = -1;
  int defunct_evq = -1;
  int defunct_prof = -1;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    OpenFileTable* tab = open_files_tab_.load(std::memory_order_relaxed);
    OpenFile* file =
        tab->entries[static_cast<uint64_t>(file_index)].load(
            std::memory_order_relaxed);
    if (file == nullptr) {
      return OkStatus();  // Already released (racing closes both got here).
    }
    if (--file->refs > 0) {
      return OkStatus();
    }
    defunct_net_sid = file->net_socket_id;
    defunct_evq = file->evq_id;
    defunct_prof = file->prof_id;
    // Publish-then-retire: null the entry (release pairs with FileForFd's
    // acquire) while the object is still intact, and free it only after a
    // grace period — a lock-free reader that loaded the pointer just before
    // the store finishes its read against live memory.
    tab->entries[static_cast<uint64_t>(file_index)].store(
        nullptr, std::memory_order_release);
    defunct = file;
  }
  // Teardown outside files_lock_ (it is a leaf lock; the net stack, the
  // allocators, and evq_lock_ — which ranks ABOVE files_lock_ — take their
  // own locks).
  if (defunct_net_sid >= 0) {
    // Close-while-registered: the socket silently leaves every event queue
    // watching it, epoll-style, before the net stack reclaims the id.
    DropSocketWatches(defunct_net_sid);
    if (net_ != nullptr) {
      SVA_RETURN_IF_ERROR(net_->Close(defunct_net_sid));
    }
  }
  if (defunct_evq >= 0) {
    DestroyEvq(defunct_evq);
  }
  if (defunct_prof >= 0) {
    DestroyProfSession(defunct_prof);
  }
  // The OpenFile itself (and its cache slot) waits out the grace period.
  KernelAllocators* allocators = allocators_.get();
  smp::EpochDomain::Global().Retire(
      [allocators, cache = file_cache_, defunct] {
        (void)allocators->CacheFree(cache, defunct->addr);
        delete defunct;
      });
  return OkStatus();
}

// --- Syscalls ----------------------------------------------------------------------

Result<uint64_t> Kernel::SysGetPid() {
  return static_cast<uint64_t>(current_pid_);
}

Result<uint64_t> Kernel::SysGetTimeOfDay(uint64_t uaddr) {
  Task& task = *current_task();
  uint64_t micros;
  if (config_.mode == KernelMode::kNative) {
    micros = machine_.timer().microseconds();
  } else {
    // SVA-PORT(svaos): timer access through the SVA-OS I/O operation.
    SVA_ASSIGN_OR_RETURN(uint64_t ticks,
                         svaos_.IoRead(hw::Machine::kPortTimer));
    micros = ticks * 100;
  }
  uint64_t tv[2] = {micros / 1000000, micros % 1000000};
  SVA_ASSIGN_OR_RETURN(uint64_t scratch, allocators_->Kmalloc(16));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(scratch, 8, tv[0]));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(scratch + 8, 8, tv[1]));
  Status copy = CopyToUser(task, uaddr, scratch, 16);
  SVA_RETURN_IF_ERROR(allocators_->Kfree(scratch));
  SVA_RETURN_IF_ERROR(copy);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysGetRusage(uint64_t uaddr) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t scratch, allocators_->Kmalloc(64));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(
      scratch, 8,
      std::atomic_ref<uint64_t>(stats_.syscalls)
          .load(std::memory_order_relaxed)));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(
      scratch + 8, 8,
      std::atomic_ref<uint64_t>(stats_.context_switches)
          .load(std::memory_order_relaxed)));
  Status copy = CopyToUser(task, uaddr, scratch, 64);
  SVA_RETURN_IF_ERROR(allocators_->Kfree(scratch));
  SVA_RETURN_IF_ERROR(copy);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysOpen(uint64_t path_uaddr, uint64_t flags) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t path_buf,
                       allocators_->Kmalloc(kMaxPathLength));
  Status copy = CopyFromUser(task, path_buf, path_uaddr, kMaxPathLength);
  if (!copy.ok()) {
    (void)allocators_->Kfree(path_buf);
    return copy;
  }
  std::string path;
  for (uint64_t i = 0; i < kMaxPathLength; ++i) {
    auto c = machine_.memory().Read(path_buf + i, 1);
    if (!c.ok() || *c == 0) {
      break;
    }
    path.push_back(static_cast<char>(*c));
  }
  SVA_RETURN_IF_ERROR(allocators_->Kfree(path_buf));

  // Fast path: resolve existing names against the epoch-published directory
  // index with no vfs_lock_ (docs/CONCURRENCY.md §5). The Inode pointer is
  // safe to dereference because this syscall's EpochGuard pins the epoch a
  // concurrent unlink would have to wait out before freeing the node.
  int ino = -1;
  if (const DirIndex* index = dir_index_.load(std::memory_order_acquire)) {
    auto hit = index->entries.find(path);
    if (hit != index->entries.end()) {
      ino = hit->second->ino;
    }
  }
  if (ino < 0) {
    if ((flags & 1) == 0) {
      return kENoEnt;
    }
    // Creation is the slow path: vfs_lock_ serializes writers, and
    // LookupInode republishes the index before the lock drops.
    trace::TimedLockGuard<smp::OrderedSpinLock> guard(
        vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
    auto inode = LookupInode(path, true);
    if (!inode.ok()) {
      return kENoEnt;
    }
    ino = (*inode)->ino;
  }
  SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(file_cache_));
  auto file = std::make_unique<OpenFile>();
  file->addr = addr;
  file->refs = 1;
  file->ino = ino;
  auto fd = AllocateFd(task, AddOpenFile(std::move(file)));
  if (!fd.ok()) {
    return kEMFile;
  }
  return static_cast<uint64_t>(*fd);
}

Result<uint64_t> Kernel::SysClose(uint64_t fd) {
  Task& task = *current_task();
  auto file = FileForFd(task, fd);
  if (!file.ok()) {
    return kEBadF;
  }
  int index;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    // Re-read under the lock: the lock-free validation above may have raced
    // another close of the same fd. A slot already cleared means the other
    // close won — report kEBadF rather than double-releasing the file.
    FdTable* fdt = task.fds.load_plain();
    index = fd < fdt->capacity
                ? fdt->slots[fd].load(std::memory_order_relaxed)
                : -1;
    if (index < 0) {
      return kEBadF;
    }
    // Unpublish the slot (release) BEFORE ReleaseFile retires the object:
    // a concurrent lock-free read sees either the old index (and a file
    // kept alive by the grace period) or -1 — never a torn slot.
    fdt->slots[fd].store(-1, std::memory_order_release);
    task.fd_next_hint =
        std::min(task.fd_next_hint, static_cast<int>(fd));
  }
  SVA_RETURN_IF_ERROR(ReleaseFile(index));
  trace::Emit(trace::EventId::kConnClose, fd);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysRead(uint64_t fd, uint64_t uaddr, uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;

  if (file->pipe_id >= 0) {
    // Fallback (the fd became a pipe between routing and dispatch): take
    // the pipe path. No vfs lock is held yet, so pipes_lock_ is acquired
    // clean, not nested.
    return SysPipeRead(fd, uaddr, len);
  }
  if (file->net_socket_id >= 0) {
    return SysNetRecv(fd, uaddr, len);
  }
  if (file->socket_id >= 0) {
    return SysRecv(fd, uaddr, len);
  }
  if (file->ino < 0) {
    return kEBadF;
  }
  // Regular-file read: inode data, size, and the fd offset live under
  // vfs_lock_. The copy loops below take only external lock classes
  // (metapool stripes, allocator locks), which rank below every kernel
  // lock.
  trace::TimedLockGuard<smp::OrderedSpinLock> vfs_guard(
      vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
  Inode& inode = inodes_[file->ino];
  if (inode.ino == 0) {
    return uint64_t{0};  // /dev/null reads EOF.
  }
  // Offset and size go through atomic_ref: both are written under vfs_lock_
  // but read lock-free elsewhere (SEEK_CUR lseek, SysStat).
  std::atomic_ref<uint64_t> offset_ref(file->offset);
  uint64_t offset = offset_ref.load(std::memory_order_relaxed);
  uint64_t size =
      std::atomic_ref<uint64_t>(inode.size).load(std::memory_order_relaxed);
  uint64_t remaining = offset >= size ? 0 : size - offset;
  uint64_t to_read = std::min(len, remaining);
  // SVA-safe: the block-copy loop has monotonic indices, so the compiler
  // hoists the checks out of the loop (Section 7.1.3 optimization 2): one
  // bounds check on the first block and one user-range check for the whole
  // span; the per-iteration accesses are provably within their block.
  if (to_read > 0) {
    uint64_t first_block = inode.blocks[offset / kBlockSize];
    SVA_RETURN_IF_ERROR(BoundsCheckObject(
        allocators_->PoolForKmallocClass(kBlockSize), first_block,
        first_block + offset % kBlockSize));
    SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, to_read));
  }
  uint64_t done = 0;
  while (done < to_read) {
    uint64_t block_index = (offset + done) / kBlockSize;
    uint64_t in_block = (offset + done) % kBlockSize;
    uint64_t chunk = std::min(to_read - done, kBlockSize - in_block);
    uint64_t block = inode.blocks[block_index];
    SVA_RETURN_IF_ERROR(
        CopyBlockToUser(task, uaddr + done, block + in_block, chunk));
    done += chunk;
  }
  offset_ref.store(offset + to_read, std::memory_order_release);
  return to_read;
}

Result<uint64_t> Kernel::SysWrite(uint64_t fd, uint64_t uaddr, uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;

  if (file->pipe_id >= 0) {
    // Fallback, as in SysRead (no vfs lock held yet).
    return SysPipeWrite(fd, uaddr, len);
  }
  if (file->net_socket_id >= 0) {
    return SysNetSend(fd, uaddr, len, /*dest=*/0);
  }
  if (file->socket_id >= 0) {
    return SysSend(fd, uaddr, len);
  }
  if (file->ino < 0) {
    return kEBadF;
  }
  trace::TimedLockGuard<smp::OrderedSpinLock> vfs_guard(
      vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
  Inode& inode = inodes_[file->ino];
  if (inode.ino == 0) {
    // /dev/null: validate the user range, drop the data.
    SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, len));
    return len;
  }
  // SVA-safe: like the read path, the write loop's indices are monotonic,
  // so the checks hoist: one user-range check for the span (the first block
  // may not exist yet, so its check happens on allocation registration).
  if (len > 0) {
    SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, len));
  }
  std::atomic_ref<uint64_t> offset_ref(file->offset);
  uint64_t offset = offset_ref.load(std::memory_order_relaxed);
  uint64_t done = 0;
  while (done < len) {
    uint64_t block_index = (offset + done) / kBlockSize;
    uint64_t in_block = (offset + done) % kBlockSize;
    while (inode.blocks.size() <= block_index) {
      SVA_ASSIGN_OR_RETURN(uint64_t block, allocators_->Kmalloc(kBlockSize));
      inode.blocks.push_back(block);
    }
    uint64_t chunk = std::min(len - done, kBlockSize - in_block);
    uint64_t block = inode.blocks[block_index];
    SVA_RETURN_IF_ERROR(
        CopyBlockFromUser(task, block + in_block, uaddr + done, chunk));
    done += chunk;
  }
  offset_ref.store(offset + len, std::memory_order_release);
  std::atomic_ref<uint64_t> size_ref(inode.size);
  if (offset + len > size_ref.load(std::memory_order_relaxed)) {
    // Release pairs with SysStat's lock-free acquire load of the size.
    size_ref.store(offset + len, std::memory_order_release);
  }
  return len;
}

Result<uint64_t> Kernel::SysLseek(uint64_t fd, uint64_t offset,
                                  uint64_t whence) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;
  if (file->ino < 0) {
    return kEInval;
  }
  std::atomic_ref<uint64_t> offset_ref(file->offset);
  if (whence == 1 && offset == 0) {
    // lseek(fd, 0, SEEK_CUR) is a pure read: one acquire load, no
    // vfs_lock_. The read-mostly bench phase and the epoch torture test
    // lean on this path staying lock-free.
    return offset_ref.load(std::memory_order_acquire);
  }
  trace::TimedLockGuard<smp::OrderedSpinLock> vfs_guard(
      vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
  Inode& inode = inodes_[file->ino];
  uint64_t next;
  switch (whence) {
    case 0:
      next = offset;
      break;
    case 1:
      next = offset_ref.load(std::memory_order_relaxed) + offset;
      break;
    case 2:
      next = std::atomic_ref<uint64_t>(inode.size)
                 .load(std::memory_order_relaxed) +
             offset;
      break;
    default:
      return kEInval;
  }
  offset_ref.store(next, std::memory_order_release);
  return next;
}

Result<uint64_t> Kernel::SysStat(uint64_t path_uaddr) {
  // Entirely lock-free (docs/CONCURRENCY.md §5): path resolution walks the
  // epoch-published directory index and the result is one acquire load of
  // the inode size. This is the headline syscall of the read-mostly
  // bench/smp_scaling phase — it touches no kernel lock at any rank.
  Task& task = *current_task();
  std::string path;
  SVA_RETURN_IF_ERROR(ReadUserPath(task, path_uaddr, &path));
  const DirIndex* index = dir_index_.load(std::memory_order_acquire);
  if (index == nullptr) {
    return kENoEnt;
  }
  auto it = index->entries.find(path);
  if (it == index->entries.end()) {
    return kENoEnt;
  }
  // Acquire pairs with SysWrite's release size store; the Inode stays
  // valid under this syscall's EpochGuard even if an unlink races.
  return std::atomic_ref<uint64_t>(it->second->size)
      .load(std::memory_order_acquire);
}

Result<uint64_t> Kernel::SysUnlink(uint64_t path_uaddr) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t path_buf,
                       allocators_->Kmalloc(kMaxPathLength));
  Status copy = CopyFromUser(task, path_buf, path_uaddr, kMaxPathLength);
  if (!copy.ok()) {
    (void)allocators_->Kfree(path_buf);
    return copy;
  }
  std::string path;
  for (uint64_t i = 0; i < kMaxPathLength; ++i) {
    auto c = machine_.memory().Read(path_buf + i, 1);
    if (!c.ok() || *c == 0) {
      break;
    }
    path.push_back(static_cast<char>(*c));
  }
  SVA_RETURN_IF_ERROR(allocators_->Kfree(path_buf));
  trace::TimedLockGuard<smp::OrderedSpinLock> vfs_guard(
      vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
  auto it = namespace_.find(path);
  if (it == namespace_.end() || it->second == 0) {
    return kENoEnt;
  }
  auto inode_it = inodes_.find(it->second);
  if (inode_it == inodes_.end()) {
    return kENoEnt;
  }
  // Publish-then-retire (docs/CONCURRENCY.md §5): extract the map node (the
  // Inode pointer stays stable inside it), drop the name, republish the
  // directory index WITHOUT the entry — then hand the node and its data
  // blocks to the epoch machinery. A SysStat pinned on the outgoing index
  // snapshot finishes its size load against intact memory; the frees run
  // only after that reader's grace period ends. (shared_ptr because
  // std::function requires a copyable callable; the node itself is
  // move-only.)
  auto holder = std::make_shared<std::map<int, Inode>::node_type>(
      inodes_.extract(inode_it));
  namespace_.erase(it);
  RepublishDirIndex();
  KernelAllocators* allocators = allocators_.get();
  smp::EpochDomain::Global().Retire(
      [allocators, cache = inode_cache_, holder] {
        Inode& dead = holder->mapped();
        for (uint64_t block : dead.blocks) {
          (void)allocators->Kfree(block);
        }
        (void)allocators->CacheFree(cache, dead.addr);
      });
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysPipe(uint64_t uaddr_out) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t pipe_addr,
                       allocators_->CacheAlloc(pipe_cache_));
  SVA_ASSIGN_OR_RETURN(uint64_t buffer, allocators_->Kmalloc(kPipeCapacity));
  auto pipe = std::make_unique<Pipe>();
  pipe->addr = pipe_addr;
  pipe->buffer = buffer;
  int pipe_id;
  {
    // SysPipe runs off the BKL, so the vector growth itself needs the lock
    // (concurrent readers index pipes_ under it; Pipe nodes are stable).
    std::lock_guard<smp::OrderedSpinLock> guard(pipes_lock_);
    pipes_.push_back(std::move(pipe));
    pipe_id = static_cast<int>(pipes_.size() - 1);
  }

  int fds[2] = {-1, -1};
  for (int end = 0; end < 2; ++end) {
    SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(file_cache_));
    auto file = std::make_unique<OpenFile>();
    file->addr = addr;
    file->refs = 1;
    file->pipe_id = pipe_id;
    file->pipe_read_end = end == 0;
    auto fd = AllocateFd(task, AddOpenFile(std::move(file)));
    if (!fd.ok()) {
      return kEMFile;
    }
    fds[end] = *fd;
  }
  uint32_t out[2] = {static_cast<uint32_t>(fds[0]),
                     static_cast<uint32_t>(fds[1])};
  SVA_ASSIGN_OR_RETURN(uint64_t scratch, allocators_->Kmalloc(8));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(scratch, 4, out[0]));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(scratch + 4, 4, out[1]));
  Status copy = CopyToUser(task, uaddr_out, scratch, 8);
  SVA_RETURN_IF_ERROR(allocators_->Kfree(scratch));
  SVA_RETURN_IF_ERROR(copy);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysPipeRead(uint64_t fd, uint64_t uaddr,
                                     uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;
  if (file->pipe_id < 0) {
    // The fd stopped being a pipe between routing and dispatch: kEBadF, the
    // same contract the net route uses for a socket-type mismatch.
    return kEBadF;
  }
  if (!file->pipe_read_end) {
    return kEInval;
  }
  trace::TimedLockGuard<smp::OrderedSpinLock> guard(
      pipes_lock_, trace::HistId::kPipesWaitNs, trace::kLockPipes);
  Pipe& pipe = *pipes_[static_cast<size_t>(file->pipe_id)];
  uint64_t to_read = std::min(len, pipe.count);
  uint64_t done = 0;
  while (done < to_read) {
    uint64_t chunk = std::min(to_read - done, kPipeCapacity - pipe.rpos);
    // SVA-safe: ring indexing is array indexing into the pipe buffer.
    SVA_RETURN_IF_ERROR(BoundsCheckObject(
        allocators_->PoolForKmallocClass(kPipeCapacity), pipe.buffer,
        pipe.buffer + pipe.rpos + chunk - 1));
    SVA_RETURN_IF_ERROR(
        CopyToUser(task, uaddr + done, pipe.buffer + pipe.rpos, chunk));
    pipe.rpos = (pipe.rpos + chunk) % kPipeCapacity;
    pipe.count -= chunk;
    done += chunk;
  }
  return to_read;
}

Result<uint64_t> Kernel::SysPipeWrite(uint64_t fd, uint64_t uaddr,
                                      uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;
  if (file->pipe_id < 0) {
    return kEBadF;
  }
  if (file->pipe_read_end) {
    return kEInval;
  }
  trace::TimedLockGuard<smp::OrderedSpinLock> guard(
      pipes_lock_, trace::HistId::kPipesWaitNs, trace::kLockPipes);
  Pipe& pipe = *pipes_[static_cast<size_t>(file->pipe_id)];
  uint64_t space = kPipeCapacity - pipe.count;
  uint64_t to_write = std::min(len, space);
  uint64_t done = 0;
  while (done < to_write) {
    uint64_t chunk = std::min(to_write - done, kPipeCapacity - pipe.wpos);
    SVA_RETURN_IF_ERROR(BoundsCheckObject(
        allocators_->PoolForKmallocClass(kPipeCapacity), pipe.buffer,
        pipe.buffer + pipe.wpos + chunk - 1));
    SVA_RETURN_IF_ERROR(
        CopyFromUser(task, pipe.buffer + pipe.wpos, uaddr + done, chunk));
    pipe.wpos = (pipe.wpos + chunk) % kPipeCapacity;
    pipe.count += chunk;
    done += chunk;
  }
  return to_write;
}

Result<uint64_t> Kernel::SysBrk(uint64_t delta) {
  Task& task = *current_task();
  mm::AddressSpace& as = *task.aspace;
  // Lazy brk: raise the touchable-page frontier, commit nothing — pages
  // fault in on first touch. Atomic CAS loop: the break is per-task state a
  // multi-threaded "process" (net workers sharing pid 1) may move
  // concurrently, and a failed growth must not move it at all.
  std::atomic_ref<uint64_t> brk(task.brk);
  uint64_t old_brk = brk.load(std::memory_order_relaxed);
  while (true) {
    uint64_t new_brk = old_brk + delta;
    if (new_brk < as.base()) {
      return kEInval;  // Shrunk below the image base.
    }
    uint64_t needed_pages =
        (new_brk - as.base() + hw::kPageSize - 1) / hw::kPageSize;
    // Growth past the address-space cap is kENoMem, never an abort: the
    // limit is monotonic, so a shrink needs no extension.
    if (!vm_.ExtendLimit(as, needed_pages).ok()) {
      return kENoMem;
    }
    if (brk.compare_exchange_weak(old_brk, new_brk,
                                  std::memory_order_relaxed)) {
      return new_brk;
    }
  }
}

Result<uint64_t> Kernel::SysSigaction(uint64_t sig, uint64_t handler) {
  if (sig >= kMaxSignals) {
    return kEInval;
  }
  Task& task = *current_task();
  SVA_RETURN_IF_ERROR(
      BoundsCheckObject(allocators_->PoolForCache(task_cache_), task.addr,
                        task.addr + 96 + sig));
  std::atomic_ref<uint64_t>(task.sigactions[sig].handler)
      .store(handler, std::memory_order_release);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysKill(uint64_t pid, uint64_t sig,
                                 svaos::InterruptContext* icontext) {
  (void)icontext;
  if (sig >= kMaxSignals) {
    return kEInval;
  }
  Task* target = FindTask(static_cast<int>(pid));
  if (target == nullptr || !target->alive) {
    return kENoEnt;
  }
  std::atomic_ref<uint32_t>(target->pending_signals)
      .fetch_or(1u << sig, std::memory_order_acq_rel);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysFork() {
  Task& parent = *current_task();
  trace::Span span(trace::EventId::kFork, trace::HistId::kForkNs,
                   static_cast<uint64_t>(parent.pid));
  std::atomic_ref<uint64_t>(stats_.forks)
      .fetch_add(1, std::memory_order_relaxed);
  SVA_ASSIGN_OR_RETURN(int child_pid, CreateTask(parent.pid));
  Task& child = *FindTask(child_pid);
  // Copy the fd table (bumping refs) and signal dispositions. A parent that
  // grew its table hands the child an equally grown one first.
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    FdTable* parent_fdt = parent.fds.load_plain();
    SVA_RETURN_IF_ERROR(EnsureFdCapacity(child, parent_fdt->capacity));
    FdTable* child_fdt = child.fds.load_plain();
    OpenFileTable* tab = open_files_tab_.load(std::memory_order_relaxed);
    for (uint64_t fd = 0; fd < parent_fdt->capacity; ++fd) {
      int index = parent_fdt->slots[fd].load(std::memory_order_relaxed);
      child_fdt->slots[fd].store(index, std::memory_order_release);
      if (index >= 0 && tab != nullptr) {
        OpenFile* file =
            tab->entries[index].load(std::memory_order_relaxed);
        if (file != nullptr) {
          ++file->refs;
        }
      }
    }
    child.fd_next_hint = parent.fd_next_hint;
  }
  // Field-wise atomic copy: a sibling thread of the parent may be changing
  // dispositions mid-fork; each handler value is copied torn-free even if
  // the set as a whole is a snapshot in motion (as in real kernels).
  for (int sig = 0; sig < kMaxSignals; ++sig) {
    child.sigactions[sig].handler =
        std::atomic_ref<uint64_t>(parent.sigactions[sig].handler)
            .load(std::memory_order_acquire);
  }
  // Clone the address space. COW (default): the parent's mappings are
  // downgraded to read-only + kPteCow, refcounts bumped, and the same
  // frames mapped into the child — the first write on either side breaks
  // the share in the fault handler. Eager mode copies every resident frame
  // up front (the bench/vm_ops comparison baseline).
  SVA_RETURN_IF_ERROR(config_.cow_fork
                          ? vm_.CloneCow(*parent.aspace, *child.aspace)
                          : vm_.CloneEager(*parent.aspace, *child.aspace));
  // The child's break mirrors the parent's offset into its own stride.
  std::atomic_ref<uint64_t>(child.brk).store(
      UserBaseForPid(child.pid) +
          (std::atomic_ref<uint64_t>(parent.brk)
               .load(std::memory_order_relaxed) -
           UserBaseForPid(parent.pid)),
      std::memory_order_relaxed);
  // Snapshot the parent's processor state into the child.
  if (config_.mode == KernelMode::kNative) {
    child.cpu_state.control = machine_.cpu().control();
    child.cpu_state.valid = true;
  } else {
    // SVA-PORT(svaos): child state captured via llva.save.integer.
    svaos_.SaveIntegerState(&child.cpu_state);
    svaos_.SaveFpState(&child.fp_state, /*always=*/false);
  }
  trace::Emit(trace::EventId::kConnForked, static_cast<uint64_t>(child_pid),
              static_cast<uint64_t>(parent.pid));
  return static_cast<uint64_t>(child_pid);
}

Result<uint64_t> Kernel::SysExecve(uint64_t path_uaddr) {
  (void)path_uaddr;
  Task& task = *current_task();
  trace::Span span(trace::EventId::kExec, trace::HistId::kExecNs,
                   static_cast<uint64_t>(task.pid));
  std::atomic_ref<uint64_t>(stats_.execs)
      .fetch_add(1, std::memory_order_relaxed);
  // Reset the image: drop every mapping (frames go back to the pool),
  // rewind the brk frontier, close nothing (CLOEXEC is out of scope). The
  // fresh zero-fill faults model image loading.
  SVA_RETURN_IF_ERROR(vm_.Reset(*task.aspace, config_.user_pages_per_task));
  std::atomic_ref<uint64_t>(task.brk).store(
      UserBaseForPid(task.pid) +
          config_.user_pages_per_task * hw::kPageSize / 2,
      std::memory_order_relaxed);
  std::atomic_ref<uint32_t>(task.pending_signals)
      .store(0, std::memory_order_release);
  for (auto& action : task.sigactions) {
    std::atomic_ref<uint64_t>(action.handler)
        .store(0, std::memory_order_release);
  }
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysExit(uint64_t code) {
  (void)code;
  Task& task = *current_task();
  FdTable* fdt = task.fds.load_plain();
  for (uint64_t fd = 0; fd < fdt->capacity; ++fd) {
    int index;
    {
      std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
      index = fdt->slots[fd].load(std::memory_order_relaxed);
      fdt->slots[fd].store(-1, std::memory_order_release);
      if (index < 0) {
        continue;
      }
      OpenFileTable* tab = open_files_tab_.load(std::memory_order_relaxed);
      if (tab == nullptr ||
          tab->entries[index].load(std::memory_order_relaxed) == nullptr) {
        continue;
      }
    }
    SVA_RETURN_IF_ERROR(ReleaseFile(index));
  }
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    task.fd_next_hint = 0;
  }
  {
    // Lifecycle flip + parent lookup under one tasks_lock_ hold, so a
    // concurrent waitpid sees the zombie and the parent link consistently.
    std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
    task.zombie = true;
    // Switch to the parent if it exists, else stay (init never exits).
    auto parent_it = tasks_.find(task.parent);
    if (parent_it != tasks_.end() && parent_it->second.alive) {
      current_pid_ = task.parent;
    }
  }
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysWaitPid(uint64_t pid) {
  uint64_t child_addr;
  uint64_t child_fd_block;
  FdTable* child_fdt = nullptr;
  std::shared_ptr<std::map<int, Task>::node_type> child_node;
  std::unique_ptr<mm::AddressSpace> child_aspace;
  {
    // Validate and detach under one tasks_lock_ hold: two concurrent
    // waiters must not both reap the same child.
    std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
    auto it = tasks_.find(static_cast<int>(pid));
    if (it == tasks_.end() || it->second.parent != current_pid_) {
      return kEChild;
    }
    if (!it->second.zombie) {
      return kEInval;  // Would block; the minikernel has no blocking waits.
    }
    child_addr = it->second.addr;
    child_fd_block = std::atomic_ref<uint64_t>(it->second.fd_block)
                         .load(std::memory_order_relaxed);
    child_aspace = std::move(it->second.aspace);
    // Unpublish before reclaim: republish the task index without the pid,
    // then EXTRACT the map node rather than erasing it — a current_task()
    // reader pinned on the outgoing index snapshot still holds a Task*
    // into this node, so the node (and the child's fd table) must survive
    // the grace period.
    RepublishTaskIndex(static_cast<int>(pid));
    child_fdt = it->second.fds.exchange(nullptr);
    child_node = std::make_shared<std::map<int, Task>::node_type>(
        tasks_.extract(it));
  }
  if (child_fdt != nullptr) {
    smp::RetireDelete(child_fdt);
  }
  // Empty-bodied retiree: the capture alone keeps the Task node alive until
  // every reader that could have resolved the pid has unpinned.
  smp::EpochDomain::Global().Retire([holder = std::move(child_node)] {});
  // Tear the address space down outside tasks_lock_ (the AS lock ranks
  // above it anyway): unmap everything, release the frames for reuse —
  // COW-shared frames survive until the other side drops its reference —
  // and retire the asid.
  if (child_aspace != nullptr) {
    SVA_RETURN_IF_ERROR(vm_.Destroy(*child_aspace));
  }
  if (child_fd_block != 0) {
    // A grown fd table dies with the task, like free_fdtable at release —
    // deferred past a grace period because a lock-free FileForFd may still
    // be bounds-checking against the old block registration.
    KernelAllocators* allocators = allocators_.get();
    smp::EpochDomain::Global().Retire([allocators, child_fd_block] {
      (void)allocators->Kfree(child_fd_block);
    });
  }
  // Reap: free the task struct and its user pages' registration (external
  // lock classes; no kernel lock held).
  if (config_.mode == KernelMode::kSvaSafe && user_pool_ != nullptr) {
    (void)pools_.DropObject(*user_pool_,
                            UserBaseForPid(static_cast<int>(pid)));
  }
  SVA_RETURN_IF_ERROR(allocators_->CacheFree(task_cache_, child_addr));
  return pid;
}

Result<uint64_t> Kernel::SysDup(uint64_t fd) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  int index;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    // Re-read under the lock: the lock-free validation above may have raced
    // a close of the same fd. Bumping refs through a stale index would
    // resurrect a file that is already retiring (the close-during-dup
    // regression test pins exactly this interleaving).
    FdTable* fdt = task.fds.load_plain();
    index = fd < fdt->capacity
                ? fdt->slots[fd].load(std::memory_order_relaxed)
                : -1;
    if (index < 0) {
      return kEBadF;
    }
    OpenFileTable* tab = open_files_tab_.load(std::memory_order_relaxed);
    OpenFile* file = tab->entries[index].load(std::memory_order_relaxed);
    if (file == nullptr) {
      return kEBadF;
    }
    ++file->refs;
  }
  auto new_fd = AllocateFd(task, index);
  if (!new_fd.ok()) {
    return kEMFile;
  }
  return static_cast<uint64_t>(*new_fd);
}

Result<uint64_t> Kernel::SysSocket(uint64_t domain) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(file_cache_));
  auto file = std::make_unique<OpenFile>();
  file->addr = addr;
  file->refs = 1;

  switch (static_cast<SocketDomain>(domain)) {
    case SocketDomain::kLegacyLoopback: {
      SVA_ASSIGN_OR_RETURN(uint64_t sock_addr,
                           allocators_->CacheAlloc(socket_cache_));
      auto socket = std::make_unique<Socket>();
      socket->addr = sock_addr;
      // SysSocket runs off the BKL; the table growth needs sockets_lock_
      // (concurrent send/recv index sockets_ under it; nodes are stable).
      std::lock_guard<smp::OrderedSpinLock> guard(sockets_lock_);
      sockets_.push_back(std::move(socket));
      file->socket_id = static_cast<int>(sockets_.size() - 1);
      break;
    }
    case SocketDomain::kDatagram:
    case SocketDomain::kListener: {
      auto sid = net_->CreateSocket(
          static_cast<SocketDomain>(domain) == SocketDomain::kDatagram
              ? net::SocketKind::kDatagram
              : net::SocketKind::kListener);
      if (!sid.ok()) {
        (void)allocators_->CacheFree(file_cache_, addr);
        return sid.status();
      }
      file->net_socket_id = *sid;
      break;
    }
    default:
      (void)allocators_->CacheFree(file_cache_, addr);
      return kEInval;
  }

  auto fd = AllocateFd(task, AddOpenFile(std::move(file)));
  if (!fd.ok()) {
    return kEMFile;
  }
  return static_cast<uint64_t>(*fd);
}

Result<uint64_t> Kernel::SysSend(uint64_t fd, uint64_t uaddr, uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok() || (*file_r)->socket_id < 0) {
    return kEBadF;
  }
  // An skb per send, like the network stack's allocation pattern. Allocate
  // and fill it before taking sockets_lock_, so only the queue append is
  // serialized.
  SVA_ASSIGN_OR_RETURN(uint64_t skb, allocators_->Kmalloc(len));
  uint64_t cls = allocators_->KmallocSize(skb);
  SVA_RETURN_IF_ERROR(BoundsCheckObject(allocators_->PoolForKmallocClass(cls),
                                        skb, skb + len - 1));
  Status copy = CopyFromUser(task, skb, uaddr, len);
  if (!copy.ok()) {
    (void)allocators_->Kfree(skb);
    return copy;
  }
  std::lock_guard<smp::OrderedSpinLock> guard(sockets_lock_);
  Socket& socket = *sockets_[static_cast<size_t>((*file_r)->socket_id)];
  socket.queue.emplace_back(skb, len);
  socket.queued_bytes += len;
  return len;
}

Result<uint64_t> Kernel::SysRecv(uint64_t fd, uint64_t uaddr, uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok() || (*file_r)->socket_id < 0) {
    return kEBadF;
  }
  // The copy-out runs under sockets_lock_ so a failed copy leaves the skb
  // at the queue head (it only takes external lock classes, which rank
  // below every kernel lock).
  std::lock_guard<smp::OrderedSpinLock> guard(sockets_lock_);
  Socket& socket = *sockets_[static_cast<size_t>((*file_r)->socket_id)];
  if (socket.queue.empty()) {
    return uint64_t{0};
  }
  auto [skb, skb_len] = socket.queue.front();
  uint64_t to_copy = std::min(len, skb_len);
  SVA_RETURN_IF_ERROR(BoundsCheckObject(
      allocators_->PoolForKmallocClass(allocators_->KmallocSize(skb)), skb,
      skb + to_copy - 1));
  SVA_RETURN_IF_ERROR(CopyToUser(task, uaddr, skb, to_copy));
  socket.queue.erase(socket.queue.begin());
  socket.queued_bytes -= skb_len;
  SVA_RETURN_IF_ERROR(allocators_->Kfree(skb));
  return to_copy;
}

// --- Net-stack syscalls (off the big kernel lock) ---------------------------------

int Kernel::NetSocketIdForFd(uint64_t fd) {
  // Routing probe: runs in RouteSyscall, BEFORE HandleSyscall pins its
  // epoch, so it takes a guard of its own around the lock-free lookup.
  Task* task = current_task();
  if (task == nullptr) {
    return -1;
  }
  smp::EpochGuard guard;
  auto file = FileForFd(*task, fd);
  return file.ok() ? (*file)->net_socket_id : -1;
}

int Kernel::PipeIdForFd(uint64_t fd) {
  Task* task = current_task();
  if (task == nullptr) {
    return -1;
  }
  smp::EpochGuard guard;
  auto file = FileForFd(*task, fd);
  return file.ok() ? (*file)->pipe_id : -1;
}

int Kernel::EvqIdForFd(uint64_t fd) {
  Task* task = current_task();
  if (task == nullptr) {
    return -1;
  }
  smp::EpochGuard guard;
  auto file = FileForFd(*task, fd);
  return file.ok() ? (*file)->evq_id : -1;
}

Result<uint64_t> Kernel::SysNetBind(uint64_t fd, uint64_t port,
                                    uint64_t flags) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto file_r = FileForFd(*task, fd);
  if (!file_r.ok() || (*file_r)->net_socket_id < 0) {
    return kEBadF;
  }
  // flags bit 0 = SO_REUSEPORT-style shard join: listeners binding the same
  // port with it set form an accept shard group (src/net demuxes SYNs
  // across the group by flow hash).
  Status bound = net_->Bind((*file_r)->net_socket_id,
                            static_cast<uint16_t>(port),
                            /*reuse=*/(flags & 1) != 0);
  if (!bound.ok()) {
    switch (bound.code()) {
      case StatusCode::kAlreadyExists:
        return kEAddrInUse;
      case StatusCode::kInvalidArgument:
      case StatusCode::kFailedPrecondition:
        return kEInval;
      default:
        return bound;
    }
  }
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysNetAccept(uint64_t fd) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto file_r = FileForFd(*task, fd);
  if (!file_r.ok() || (*file_r)->net_socket_id < 0) {
    return kEBadF;
  }
  auto conn = net_->Accept((*file_r)->net_socket_id);
  if (!conn.ok()) {
    switch (conn.status().code()) {
      case StatusCode::kFailedPrecondition:
        return kEAgain;  // Empty backlog; the caller retries.
      case StatusCode::kInvalidArgument:
        return kEInval;
      default:
        return conn.status();
    }
  }
  auto addr = allocators_->CacheAlloc(file_cache_);
  if (!addr.ok()) {
    (void)net_->Close(*conn);
    return addr.status();
  }
  auto file = std::make_unique<OpenFile>();
  file->addr = *addr;
  file->refs = 1;
  file->net_socket_id = *conn;
  auto new_fd = AllocateFd(*task, AddOpenFile(std::move(file)));
  if (!new_fd.ok()) {
    return kEMFile;
  }
  trace::Emit(trace::EventId::kConnAccept, static_cast<uint64_t>(*new_fd),
              fd);
  return static_cast<uint64_t>(*new_fd);
}

Result<uint64_t> Kernel::SysNetSend(uint64_t fd, uint64_t uaddr, uint64_t len,
                                    uint64_t dest) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto file_r = FileForFd(*task, fd);
  if (!file_r.ok() || (*file_r)->net_socket_id < 0) {
    return kEBadF;
  }
  int sid = (*file_r)->net_socket_id;
  auto kind = net_->Kind(sid);
  if (!kind.ok()) {
    return kEBadF;
  }
  if (*kind == net::SocketKind::kListener) {
    return kEInval;
  }
  // `dest` packs (ip << 16) | port; ignored on connected stream sockets.
  uint32_t dst_ip = static_cast<uint32_t>(dest >> 16);
  uint16_t dst_port = static_cast<uint16_t>(dest & 0xFFFF);
  const bool datagram = *kind == net::SocketKind::kDatagram;
  const uint32_t max_chunk =
      datagram ? net::kMaxUdpPayload : net::kMaxStreamPayload;
  if (datagram && len > max_chunk) {
    return kEMsgSize;  // Datagrams never fragment here.
  }
  uint64_t sent = 0;
  do {
    uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(len - sent, max_chunk));
    auto skb = net_->AllocTxSkb();
    if (!skb.ok()) {
      return sent > 0 ? Result<uint64_t>(sent) : Result<uint64_t>(kEAgain);
    }
    // SVA-PORT(analysis): the header-framing and payload stores derive
    // pointers up to payload_offset + chunk into the packet buffer; the
    // compiler emits one hoisted bounds check against the skbuff metapool.
    Status check = BoundsCheckObject(
        net_->skbs().metapool(), skb->addr,
        skb->addr + net::kTxPayloadOffset + chunk - (chunk == 0 ? 0 : 1));
    if (!check.ok()) {
      (void)net_->FreeSkb(skb->addr);
      return check;
    }
    Status copy = CopyFromUser(*task, skb->addr + net::kTxPayloadOffset,
                               uaddr + sent, chunk);
    if (!copy.ok()) {
      (void)net_->FreeSkb(skb->addr);
      return copy;
    }
    auto pushed = net_->Send(sid, *skb, chunk, dst_ip, dst_port);
    if (!pushed.ok()) {
      return pushed.status();
    }
    sent += chunk;
  } while (sent < len);
  return sent;
}

Result<uint64_t> Kernel::SysNetRecv(uint64_t fd, uint64_t uaddr,
                                    uint64_t len) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto file_r = FileForFd(*task, fd);
  if (!file_r.ok() || (*file_r)->net_socket_id < 0) {
    return kEBadF;
  }
  auto slice = net_->RecvBegin((*file_r)->net_socket_id,
                               static_cast<uint32_t>(std::min<uint64_t>(
                                   len, net::kSkbBufferBytes)));
  if (!slice.ok()) {
    return slice.status().code() == StatusCode::kInvalidArgument
               ? Result<uint64_t>(kEInval)
               : Result<uint64_t>(kEBadF);
  }
  if (slice->len == 0) {
    // Non-blocking semantics: an empty queue is EOF (0) only after the peer
    // FINned; otherwise the caller must retry — blind polling loops are
    // what the event queue exists to replace.
    int sid = (*file_r)->net_socket_id;
    if ((net_->PollReady(sid) & net::kReadyHup) != 0) {
      return uint64_t{0};
    }
    return kEAgain;
  }
  // SVA-PORT(analysis): copying out of the packet buffer derives a pointer
  // slice->len past the payload start; one bounds check covers the copy.
  Status check = BoundsCheckObject(net_->skbs().metapool(), slice->skb_addr,
                                   slice->data_addr + slice->len - 1);
  if (!check.ok()) {
    (void)net_->RecvFinish(*slice);
    return check;
  }
  Status copy = CopyToUser(*task, uaddr, slice->data_addr, slice->len);
  SVA_RETURN_IF_ERROR(net_->RecvFinish(*slice));
  SVA_RETURN_IF_ERROR(copy);
  return uint64_t{slice->len};
}

}  // namespace sva::kernel
