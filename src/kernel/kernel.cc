#include "src/kernel/kernel.h"

#include <cstring>

#include "src/support/strings.h"
#include "src/trace/profiler.h"
#include "src/trace/trace.h"

namespace sva::kernel {

namespace {
// Error returns follow the kernel convention of small negative numbers.
constexpr uint64_t kEInval = static_cast<uint64_t>(-22);
constexpr uint64_t kEBadF = static_cast<uint64_t>(-9);
constexpr uint64_t kENoEnt = static_cast<uint64_t>(-2);
constexpr uint64_t kEMFile = static_cast<uint64_t>(-24);
constexpr uint64_t kEChild = static_cast<uint64_t>(-10);
constexpr uint64_t kEAgain = static_cast<uint64_t>(-11);
constexpr uint64_t kEMsgSize = static_cast<uint64_t>(-90);
constexpr uint64_t kEAddrInUse = static_cast<uint64_t>(-98);
constexpr uint64_t kENoMem = static_cast<uint64_t>(-12);

// The fd array is modeled at this offset inside the task-cache object; the
// sigaction table sits below it at offset 96 (signals < 32 fit).
constexpr uint64_t kTaskFdArrayOffset = 128;

uint64_t UserBaseForPid(int pid) {
  return kUserVirtualBase + static_cast<uint64_t>(pid) * 0x100000;
}

const char* SyscallName(Sys number) {
  switch (number) {
    case Sys::kExit: return "exit";
    case Sys::kFork: return "fork";
    case Sys::kRead: return "read";
    case Sys::kWrite: return "write";
    case Sys::kOpen: return "open";
    case Sys::kClose: return "close";
    case Sys::kWaitPid: return "waitpid";
    case Sys::kUnlink: return "unlink";
    case Sys::kExecve: return "execve";
    case Sys::kLseek: return "lseek";
    case Sys::kGetPid: return "getpid";
    case Sys::kKill: return "kill";
    case Sys::kPipe: return "pipe";
    case Sys::kBrk: return "brk";
    case Sys::kSigaction: return "sigaction";
    case Sys::kGetRusage: return "getrusage";
    case Sys::kGetTimeOfDay: return "gettimeofday";
    case Sys::kDup: return "dup";
    case Sys::kSocket: return "socket";
    case Sys::kSend: return "send";
    case Sys::kRecv: return "recv";
    case Sys::kBind: return "bind";
    case Sys::kAccept: return "accept";
    case Sys::kEvqCreate: return "evq_create";
    case Sys::kEvqCtl: return "evq_ctl";
    case Sys::kEvqWait: return "evq_wait";
    case Sys::kProfStart: return "prof_start";
    case Sys::kProfStop: return "prof_stop";
    case Sys::kProfRead: return "prof_read";
  }
  return "unknown";
}

// Interned "syscall:<name>" profiler ids, one per syscall number, filled
// lazily off the sampler-visible fast path (the intern itself takes only
// the profiler's leaf name lock).
uint32_t ProfNameForSyscall(Sys number) {
  static std::array<std::atomic<uint32_t>, 128> ids = {};
  size_t idx = static_cast<uint64_t>(number) & 127;
  uint32_t id = ids[idx].load(std::memory_order_relaxed);
  if (id == 0) {
    id = trace::InternProfName(std::string("syscall:") + SyscallName(number));
    ids[idx].store(id, std::memory_order_relaxed);
  }
  return id;
}
}  // namespace

Kernel::Kernel(hw::Machine& machine, KernelConfig config)
    : machine_(machine),
      config_(config),
      svaos_(machine),
      pools_(runtime::EnforcementMode::kTrap) {}

Kernel::~Kernel() {
  // The profiler sampler can outlive this kernel (another kernel's session
  // keeps the refcount up) and its tick hook targets our timer: flip the
  // shared guard first so a late tick becomes a locked no-op, then unhook
  // the interrupt callback and release our sessions. The Stops happen with
  // no lock held — the last one joins the sampler thread.
  {
    std::lock_guard<std::mutex> lock(prof_tick_guard_->mu);
    prof_tick_guard_->alive = false;
  }
  machine_.timer().SetInterruptCallback(nullptr);
  int open_sessions = 0;
  {
    std::lock_guard<smp::SpinLock> guard(prof_lock_);
    for (auto& session : prof_sessions_) {
      if (session != nullptr && session->active) {
        session->active = false;
        ++open_sessions;
      }
    }
  }
  for (int i = 0; i < open_sessions; ++i) {
    trace::Profiler::Get().Stop();
  }
}

Status Kernel::Boot() {
  bool safe = config_.mode == KernelMode::kSvaSafe;
  allocators_ = std::make_unique<KernelAllocators>(
      machine_, safe ? &pools_ : nullptr, safe);

  // SVA-PORT(alloc): caches are created with the pool-allocator contract
  // (type-size alignment, SLAB_NO_REAP) and identified to the compiler.
  // The task struct ends with the fd array, so its size scales with the
  // configured fd-table size (satisfying the Table 6 experiment's 25
  // concurrent connections without fd pooling).
  task_cache_ = allocators_->CreateCache(
      "task_struct", kTaskFdArrayOffset + 4 * config_.max_fds);
  inode_cache_ = allocators_->CreateCache("inode", 96);
  file_cache_ = allocators_->CreateCache("filp", 48);
  pipe_cache_ = allocators_->CreateCache("pipe_inode_info", 64);
  socket_cache_ = allocators_->CreateCache("sock", 128);
  evq_cache_ = allocators_->CreateCache("eventpoll", 64);
  prof_cache_ = allocators_->CreateCache("perf_event", 32);

  // Program the sampling-interrupt rate and route the line into the
  // profiler: every FireInterrupt edge takes one sample of each vCPU.
  SVA_RETURN_IF_ERROR(machine_.timer().SetFrequency(config_.timer_hz));
  machine_.timer().SetInterruptCallback(
      [] { trace::Profiler::Get().SampleNow(); });

  if (safe) {
    // SVA-PORT(analysis): all of userspace is one object per metapool
    // reachable from system call arguments (Section 4.6).
    user_pool_ = pools_.GetPool("MPu.user", /*type_homogeneous=*/false,
                                /*element_size=*/0, /*complete=*/true);
  }

  // The network stack boots against the same machine and metapool runtime;
  // SVA modes reach the NIC through SVA-OS I/O ops and the registered rx
  // interrupt, native mode touches the device directly.
  net_ = std::make_unique<net::NetStack>(
      machine_, svaos_, safe ? &pools_ : nullptr, safe,
      /*use_svaos=*/config_.mode != KernelMode::kNative);
  SVA_RETURN_IF_ERROR(net_->Boot());
  // Readiness edges flow from the net stack into the event queues. The
  // callback fires with no net-stack locks held (see NetStack::NotifyReady),
  // so OnSocketReady may take evq_lock_ and per-queue locks freely.
  net_->SetReadyCallback([this](int sid) { OnSocketReady(sid); });
  net_->set_max_accept_backlog(config_.max_accept_backlog);

  // The VM subsystem hooks the shootdown-IPI vector before any address
  // space exists.
  SVA_RETURN_IF_ERROR(vm_.Init());

  if (config_.mode != KernelMode::kNative) {
    // SVA-PORT(svaos): system call handlers are registered through the
    // SVA-OS registration operation instead of a hand-built IDT stub.
    for (Sys number :
         {Sys::kExit, Sys::kFork, Sys::kRead, Sys::kWrite, Sys::kOpen,
          Sys::kClose, Sys::kWaitPid, Sys::kUnlink, Sys::kExecve, Sys::kLseek,
          Sys::kGetPid, Sys::kKill, Sys::kPipe, Sys::kBrk, Sys::kSigaction,
          Sys::kGetRusage, Sys::kGetTimeOfDay, Sys::kDup, Sys::kSocket,
          Sys::kSend, Sys::kRecv, Sys::kBind, Sys::kAccept, Sys::kEvqCreate,
          Sys::kEvqCtl, Sys::kEvqWait, Sys::kProfStart, Sys::kProfStop,
          Sys::kProfRead}) {
      SVA_RETURN_IF_ERROR(svaos_.RegisterSyscall(
          static_cast<uint64_t>(number),
          [this, number](const svaos::SyscallArgs& call) {
            return HandleSyscall(number, call.args, call.icontext);
          }));
    }
  }

  // /dev/null.
  Inode null_dev;
  null_dev.ino = 0;
  null_dev.name = "/dev/null";
  inodes_[0] = null_dev;
  namespace_["/dev/null"] = 0;

  // pid 1: init.
  SVA_ASSIGN_OR_RETURN(int pid, CreateTask(/*parent_pid=*/0));
  current_pid_ = pid;
  booted_ = true;
  return OkStatus();
}

void Kernel::TranslatorTax() {
  // Deterministic stand-in for the LLVM-vs-GCC code quality delta the paper
  // measured at <= 13% on kernel paths (DESIGN.md §2 records this
  // substitution).
  volatile uint64_t sink = 0;
  for (unsigned i = 0; i < config_.translator_tax_iterations; ++i) {
    sink = sink + i * 2654435761u;
  }
}

Kernel::SyscallRoute Kernel::RouteSyscall(Sys number, uint64_t a0) {
  switch (number) {
    case Sys::kBind:
    case Sys::kAccept:
      return SyscallRoute::kNet;  // Net-stack-only syscalls.
    case Sys::kEvqCreate:
    case Sys::kEvqCtl:
    case Sys::kEvqWait:
      return SyscallRoute::kEvq;
    case Sys::kSend:
    case Sys::kRecv:
      return NetSocketIdForFd(a0) >= 0 ? SyscallRoute::kNet
                                       : SyscallRoute::kSockets;
    case Sys::kSocket:
      // a0 is the domain: legacy loopback goes to the legacy socket table,
      // everything else is created in the net stack.
      return static_cast<SocketDomain>(a0) == SocketDomain::kLegacyLoopback
                 ? SyscallRoute::kSockets
                 : SyscallRoute::kNet;
    case Sys::kPipe:
      return SyscallRoute::kPipes;
    case Sys::kRead:
    case Sys::kWrite:
      // Pipe fds take the pipe path; everything else (regular files,
      // /dev/null, socket fallthroughs) enters through the vfs route.
      return PipeIdForFd(a0) >= 0 ? SyscallRoute::kPipes
                                  : SyscallRoute::kVfs;
    case Sys::kOpen:
    case Sys::kClose:
    case Sys::kLseek:
    case Sys::kUnlink:
    case Sys::kDup:
      return SyscallRoute::kVfs;
    case Sys::kFork:
    case Sys::kExecve:
    case Sys::kExit:
    case Sys::kWaitPid:
    case Sys::kKill:
    case Sys::kBrk:
    case Sys::kSigaction:
    case Sys::kGetPid:
    case Sys::kGetTimeOfDay:
    case Sys::kGetRusage:
    // Profiling sessions ride the tasks route: the handlers touch only the
    // current task's fd table (files_lock_) and the unranked prof leaf.
    case Sys::kProfStart:
    case Sys::kProfStop:
    case Sys::kProfRead:
      return SyscallRoute::kTasks;
  }
  // Unknown syscall numbers are the only remaining big-kernel-lock users.
  return SyscallRoute::kBkl;
}

Result<uint64_t> Kernel::Syscall(Sys number, uint64_t a0, uint64_t a1,
                                 uint64_t a2, uint64_t a3) {
  if (!booted_) {
    return FailedPrecondition("kernel not booted");
  }
  trace::Span span(trace::EventId::kSyscall, trace::HistId::kSyscallNs,
                   static_cast<uint64_t>(number));
  // Every steady-state syscall dispatches off the big kernel lock onto its
  // subsystem's leaf lock (taken inside the handler, where the subsystem
  // state is actually touched — the wrapper cannot hold tasks_lock_ here
  // because handler prologues resolve current_task() through it). args[5]
  // carries the route so handlers never fall through to state another
  // domain guards.
  SyscallRoute route = RouteSyscall(number, a0);
  if (route != SyscallRoute::kBkl) {
    return Dispatch(number,
                    {a0, a1, a2, a3, 0, static_cast<uint64_t>(route)});
  }
  // SVA-PORT(svaos): the demoted big kernel lock — only unknown syscall
  // numbers (and the scheduler/host helpers) still serialize on it.
  trace::TimedLockGuard<smp::OrderedSpinLock> guard(
      bkl_, trace::HistId::kBklWaitNs, trace::kLockBkl);
  return Dispatch(number, {a0, a1, a2, a3, 0, 0});
}

Result<uint64_t> Kernel::Dispatch(Sys number,
                                  const std::array<uint64_t, 6>& args) {
  // Relaxed atomic: the net fast path dispatches concurrently.
  std::atomic_ref<uint64_t>(stats_.syscalls)
      .fetch_add(1, std::memory_order_relaxed);
  // Privilege transitions act on the calling thread's virtual CPU (bound to
  // the boot CPU in single-CPU runs, so single-threaded behaviour is
  // unchanged).
  hw::Cpu& cpu = svaos_.current_cpu().cpu();
  switch (config_.mode) {
    case KernelMode::kNative: {
      // Native dispatch: the hand-written trap stub still saves and
      // restores the interrupted register state (as real kernels do), but
      // without interrupt-context bookkeeping or SVA-OS mediation.
      hw::ControlState saved = cpu.control();
      cpu.control().privilege = hw::Privilege::kKernel;
      Result<uint64_t> r = HandleSyscall(number, args, nullptr);
      cpu.control() = saved;
      return r;
    }
    case KernelMode::kSvaGcc:
      cpu.control().privilege = hw::Privilege::kUser;
      return svaos_.Syscall(static_cast<uint64_t>(number), args);
    case KernelMode::kSvaLlvm:
    case KernelMode::kSvaSafe:
      TranslatorTax();
      cpu.control().privilege = hw::Privilege::kUser;
      return svaos_.Syscall(static_cast<uint64_t>(number), args);
  }
  return Internal("bad kernel mode");
}

Result<uint64_t> Kernel::HandleSyscall(Sys number,
                                       const std::array<uint64_t, 6>& args,
                                       svaos::InterruptContext* icontext) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  // Publish "in kernel, running syscall X for pid P" to the sampling
  // profiler. One relaxed load when no profiler is running; a few relaxed
  // stores on this CPU's slot otherwise — never a lock, so the hook is safe
  // under every route's leaf locks.
  trace::ProfContextScope prof;
  if (trace::prof_enabled()) {
    prof.Enter(trace::ProfContext::kKernelSyscall, ProfNameForSyscall(number),
               static_cast<uint32_t>(task->pid),
               static_cast<uint8_t>(config_.mode));
  }
  if (config_.mode == KernelMode::kSvaSafe) {
    // The load of the current task structure goes through the task cache's
    // metapool (a TH pool: bounds lookups only, no load-store check).
    SVA_RETURN_IF_ERROR(BoundsCheckObject(
        allocators_->PoolForCache(task_cache_), task->addr, task->addr + 8));
  }

  Result<uint64_t> result = [&]() -> Result<uint64_t> {
    switch (number) {
      case Sys::kGetPid:
        return SysGetPid();
      case Sys::kGetTimeOfDay:
        return SysGetTimeOfDay(args[0]);
      case Sys::kGetRusage:
        return SysGetRusage(args[0]);
      case Sys::kOpen:
        return SysOpen(args[0], args[1]);
      case Sys::kClose:
        return SysClose(args[0]);
      case Sys::kRead:
        // args[5] == 2: routed to the pipe subsystem (pipes_lock_, no BKL).
        return args[5] == 2 ? SysPipeRead(args[0], args[1], args[2])
                            : SysRead(args[0], args[1], args[2]);
      case Sys::kWrite:
        return args[5] == 2 ? SysPipeWrite(args[0], args[1], args[2])
                            : SysWrite(args[0], args[1], args[2]);
      case Sys::kLseek:
        return SysLseek(args[0], args[1], args[2]);
      case Sys::kUnlink:
        return SysUnlink(args[0]);
      case Sys::kPipe:
        return SysPipe(args[0]);
      case Sys::kBrk:
        return SysBrk(args[0]);
      case Sys::kSigaction:
        return SysSigaction(args[0], args[1]);
      case Sys::kKill:
        return SysKill(args[0], args[1], icontext);
      case Sys::kFork:
        return SysFork();
      case Sys::kExecve:
        return SysExecve(args[0]);
      case Sys::kExit:
        return SysExit(args[0]);
      case Sys::kWaitPid:
        return SysWaitPid(args[0]);
      case Sys::kDup:
        return SysDup(args[0]);
      case Sys::kSocket:
        return SysSocket(args[0]);
      case Sys::kSend:
        // args[5] routes: the net fast path must not touch the legacy
        // loopback queue (sockets_lock_-protected), and vice versa. A
        // mismatch means the socket changed type between routing and
        // dispatch: kEBadF.
        return args[5] == 1 ? SysNetSend(args[0], args[1], args[2], args[3])
                            : SysSend(args[0], args[1], args[2]);
      case Sys::kRecv:
        return args[5] == 1 ? SysNetRecv(args[0], args[1], args[2])
                            : SysRecv(args[0], args[1], args[2]);
      case Sys::kBind:
        return SysNetBind(args[0], args[1], args[2]);
      case Sys::kAccept:
        return SysNetAccept(args[0]);
      case Sys::kEvqCreate:
        return SysEvqCreate();
      case Sys::kEvqCtl:
        return SysEvqCtl(args[0], args[1], args[2], args[3]);
      case Sys::kEvqWait:
        return SysEvqWait(args[0], args[1], args[2], args[3]);
      case Sys::kProfStart:
        return SysProfStart(args[0]);
      case Sys::kProfStop:
        return SysProfStop(args[0]);
      case Sys::kProfRead:
        return SysProfRead(args[0], args[1], args[2]);
    }
    return NotFound(StrCat("unknown syscall ", static_cast<uint64_t>(number)));
  }();

  // Frame-pool exhaustion surfaces mid-copy as a fault that cannot fill;
  // the kernel turns it into -ENOMEM, never an abort or a kill.
  if (!result.ok() &&
      result.status().code() == StatusCode::kResourceExhausted) {
    result = kENoMem;
  }

  // Signal delivery on the return path. SVA-PORT(svaos): dispatch saves
  // state on the kernel stack and uses llva.ipush.function instead of
  // rewriting the user stack frame (Section 6.1). Delivery runs on the
  // tasks route (which kKill itself takes, so a self-signal is seen on the
  // same return) and the BKL fallback; the other fast paths skip it —
  // signals are delivered on the task's next tasks-route entry. The
  // pending mask is an atomic bitmask, so no lock is needed here.
  uint64_t route = args[5];
  if (route == 0 || route == static_cast<uint64_t>(SyscallRoute::kTasks)) {
    Task* after = current_task();
    if (after != nullptr &&
        std::atomic_ref<uint32_t>(after->pending_signals)
                .load(std::memory_order_acquire) != 0) {
      DeliverPendingSignals(*after, icontext);
    }
  }
  return result;
}

void Kernel::DeliverPendingSignals(Task& task,
                                   svaos::InterruptContext* icontext) {
  int pid = task.pid;
  // Claim the whole pending set atomically: concurrent killers may be
  // setting bits while this task drains them, and two return paths must
  // never deliver the same signal twice.
  uint32_t pending = std::atomic_ref<uint32_t>(task.pending_signals)
                         .exchange(0, std::memory_order_acq_rel);
  for (int sig = 0; sig < kMaxSignals; ++sig) {
    if ((pending & (1u << sig)) == 0) {
      continue;
    }
    if (std::atomic_ref<uint64_t>(task.sigactions[sig].handler)
            .load(std::memory_order_acquire) == 0) {
      continue;  // Default action: ignore (minikernel simplification).
    }
    auto deliver = [this, pid](uint64_t signum) {
      Task* t = FindTask(pid);
      if (t != nullptr) {
        std::atomic_ref<uint64_t>(t->signals_delivered)
            .fetch_add(1, std::memory_order_relaxed);
        std::atomic_ref<uint64_t>(stats_.signals_delivered)
            .fetch_add(1, std::memory_order_relaxed);
        (void)signum;
      }
    };
    if (icontext != nullptr) {
      svaos_.IPushFunction(icontext, deliver, static_cast<uint64_t>(sig));
    } else {
      deliver(static_cast<uint64_t>(sig));  // Native path: direct call.
    }
  }
}

// --- User memory ------------------------------------------------------------------

Result<uint64_t> Kernel::UserToPhysical(Task& task, uint64_t uaddr,
                                        bool write) {
  // SVA-PORT(svaos): translation goes through the task's address space —
  // per-CPU TLB hit on the fast path, page-fault-driven demand fill (or
  // COW break, for writes) on a miss. Net-path workers share the task off
  // the BKL; VmManager::Resolve serializes faults on the AS lock.
  return vm_.Resolve(*task.aspace, uaddr, write);
}

Status Kernel::CheckUserRange(Task& task, uint64_t uaddr, uint64_t len) {
  (void)task;
  if (config_.mode != KernelMode::kSvaSafe || user_pool_ == nullptr) {
    return OkStatus();
  }
  // The Section 4.6 check: the whole range must stay inside the single
  // userspace object; a buffer straddling into kernel memory fails here.
  uint64_t last = len == 0 ? uaddr : uaddr + len - 1;
  return pools_.BoundsCheck(*user_pool_, uaddr, last);
}

Status Kernel::CopyFromUser(Task& task, uint64_t kaddr, uint64_t uaddr,
                            uint64_t len) {
  SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, len));
  std::atomic_ref<uint64_t>(stats_.bytes_copied_user)
      .fetch_add(len, std::memory_order_relaxed);
  uint64_t copied = 0;
  while (copied < len) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(task, uaddr + copied, /*write=*/false));
    uint64_t in_page = hw::kPageSize - (uaddr + copied) % hw::kPageSize;
    uint64_t chunk = std::min(len - copied, in_page);
    SVA_RETURN_IF_ERROR(machine_.memory().Copy(kaddr + copied, pa, chunk));
    copied += chunk;
  }
  return OkStatus();
}

Status Kernel::CopyToUser(Task& task, uint64_t uaddr, uint64_t kaddr,
                          uint64_t len) {
  SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, len));
  std::atomic_ref<uint64_t>(stats_.bytes_copied_user)
      .fetch_add(len, std::memory_order_relaxed);
  uint64_t copied = 0;
  while (copied < len) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(task, uaddr + copied, /*write=*/true));
    uint64_t in_page = hw::kPageSize - (uaddr + copied) % hw::kPageSize;
    uint64_t chunk = std::min(len - copied, in_page);
    SVA_RETURN_IF_ERROR(machine_.memory().Copy(pa, kaddr + copied, chunk));
    copied += chunk;
  }
  return OkStatus();
}

Status Kernel::CopyBlockToUser(Task& task, uint64_t uaddr, uint64_t kaddr,
                               uint64_t len) {
  // Copy with the range checks already hoisted by the caller.
  std::atomic_ref<uint64_t>(stats_.bytes_copied_user)
      .fetch_add(len, std::memory_order_relaxed);
  uint64_t copied = 0;
  while (copied < len) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(task, uaddr + copied, /*write=*/true));
    uint64_t in_page = hw::kPageSize - (uaddr + copied) % hw::kPageSize;
    uint64_t chunk = std::min(len - copied, in_page);
    SVA_RETURN_IF_ERROR(machine_.memory().Copy(pa, kaddr + copied, chunk));
    copied += chunk;
  }
  return OkStatus();
}

Status Kernel::CopyBlockFromUser(Task& task, uint64_t kaddr, uint64_t uaddr,
                                 uint64_t len) {
  std::atomic_ref<uint64_t>(stats_.bytes_copied_user)
      .fetch_add(len, std::memory_order_relaxed);
  uint64_t copied = 0;
  while (copied < len) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(task, uaddr + copied, /*write=*/false));
    uint64_t in_page = hw::kPageSize - (uaddr + copied) % hw::kPageSize;
    uint64_t chunk = std::min(len - copied, in_page);
    SVA_RETURN_IF_ERROR(machine_.memory().Copy(kaddr + copied, pa, chunk));
    copied += chunk;
  }
  return OkStatus();
}

Status Kernel::PokeUser(uint64_t uaddr, const void* data, uint64_t len) {
  std::lock_guard<smp::OrderedSpinLock> guard(bkl_);
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (uint64_t i = 0; i < len; ++i) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(*task, uaddr + i, /*write=*/true));
    SVA_RETURN_IF_ERROR(machine_.memory().Write(pa, 1, bytes[i]));
  }
  return OkStatus();
}

Status Kernel::PeekUser(uint64_t uaddr, void* data, uint64_t len) {
  std::lock_guard<smp::OrderedSpinLock> guard(bkl_);
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto* bytes = static_cast<uint8_t*>(data);
  for (uint64_t i = 0; i < len; ++i) {
    SVA_ASSIGN_OR_RETURN(
        uint64_t pa, UserToPhysical(*task, uaddr + i, /*write=*/false));
    SVA_ASSIGN_OR_RETURN(uint64_t v, machine_.memory().Read(pa, 1));
    bytes[i] = static_cast<uint8_t>(v);
  }
  return OkStatus();
}

Status Kernel::PokeUserString(uint64_t uaddr, const std::string& text) {
  SVA_RETURN_IF_ERROR(PokeUser(uaddr, text.data(), text.size()));
  uint8_t nul = 0;
  return PokeUser(uaddr + text.size(), &nul, 1);
}

// --- Safe-mode check helpers -----------------------------------------------------

Status Kernel::LsCheckObject(runtime::MetaPool* pool, uint64_t addr) {
  if (config_.mode != KernelMode::kSvaSafe || pool == nullptr) {
    return OkStatus();
  }
  return pools_.LoadStoreCheck(*pool, addr);
}

Status Kernel::BoundsCheckObject(runtime::MetaPool* pool, uint64_t base,
                                 uint64_t derived) {
  if (config_.mode != KernelMode::kSvaSafe || pool == nullptr) {
    return OkStatus();
  }
  return pools_.BoundsCheck(*pool, base, derived);
}

// --- Tasks -------------------------------------------------------------------------

Task* Kernel::FindTask(int pid) {
  // tasks_lock_ guards the map structure; node addresses are stable, so the
  // returned pointer stays valid after release (reaping a task that is
  // still running syscalls is a caller bug, as in any kernel).
  std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
  auto it = tasks_.find(pid);
  return it == tasks_.end() ? nullptr : &it->second;
}

Result<int> Kernel::CreateTask(int parent_pid) {
  SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(task_cache_));
  Task task;
  task.addr = addr;
  {
    // Concurrent forks race on pid allocation; next_pid_ lives under
    // tasks_lock_ with the map it keys.
    std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
    task.pid = next_pid_++;
  }
  task.parent = parent_pid;
  task.alive = true;
  task.fds.assign(config_.max_fds, -1);
  // SVA-PORT(svaos): a fresh address space — nothing committed; pages fault
  // in on first touch, and brk grows the frontier lazily toward the cap.
  SVA_ASSIGN_OR_RETURN(
      task.aspace,
      vm_.CreateAddressSpace(UserBaseForPid(task.pid),
                             config_.user_pages_per_task,
                             config_.max_user_pages_per_task));
  task.brk = UserBaseForPid(task.pid) +
             config_.user_pages_per_task * hw::kPageSize / 2;
  if (config_.mode == KernelMode::kSvaSafe && user_pool_ != nullptr) {
    // Register this task's user range as one object (Section 4.6), covering
    // the full growable span so lazy brk needs no re-registration. Spans
    // tile exactly with the per-pid stride, so neighbours never overlap. An
    // overlap with an existing registration is a kernel bug, not a
    // recoverable condition.
    SVA_RETURN_IF_ERROR(pools_.RegisterUserspace(
        *user_pool_, UserBaseForPid(task.pid),
        static_cast<uint64_t>(config_.max_user_pages_per_task) *
            hw::kPageSize));
  }
  int pid = task.pid;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
    tasks_[pid] = std::move(task);
  }
  return pid;
}

Status Kernel::Yield() {
  std::lock_guard<smp::OrderedSpinLock> guard(bkl_);
  Task* current = current_task();
  if (current == nullptr) {
    return Internal("no current task");
  }
  // Pick the next alive task in pid order (round robin). The map walk runs
  // under tasks_lock_ (fork/wait mutate the structure off the BKL now);
  // the picked node's address is stable, so the switch below runs on a
  // plain pointer after release.
  Task* next_task;
  {
    std::lock_guard<smp::OrderedSpinLock> tasks_guard(tasks_lock_);
    auto it = tasks_.upper_bound(current_pid_);
    while (true) {
      if (it == tasks_.end()) {
        it = tasks_.begin();
      }
      if (it->second.alive && !it->second.zombie) {
        break;
      }
      ++it;
      if (it != tasks_.end() && it->first == current_pid_) {
        break;
      }
    }
    next_task = &it->second;
  }
  Task& next = *next_task;
  if (next.pid == current_pid_) {
    return OkStatus();
  }
  std::atomic_ref<uint64_t>(stats_.context_switches)
      .fetch_add(1, std::memory_order_relaxed);
  if (config_.mode == KernelMode::kNative) {
    // Native context switch: direct struct copies.
    current->cpu_state.control = machine_.cpu().control();
    current->cpu_state.valid = true;
    current->fp_state.fp = machine_.cpu().fp();
    current->fp_state.valid = true;
    if (next.cpu_state.valid) {
      machine_.cpu().control() = next.cpu_state.control;
    }
  } else {
    // SVA-PORT(svaos): context switch through llva.save.integer /
    // llva.load.integer with lazy FP save (Table 1).
    svaos_.SaveIntegerState(&current->cpu_state);
    svaos_.SaveFpState(&current->fp_state, /*always=*/false);
    if (next.cpu_state.valid) {
      SVA_RETURN_IF_ERROR(svaos_.LoadIntegerState(next.cpu_state));
    }
    if (next.fp_state.valid) {
      SVA_RETURN_IF_ERROR(svaos_.LoadFpState(next.fp_state));
    }
  }
  current_pid_ = next.pid;
  return OkStatus();
}

// --- Files --------------------------------------------------------------------------

int Kernel::AddOpenFile(std::unique_ptr<OpenFile> file) {
  std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
  open_files_.push_back(std::move(file));
  return static_cast<int>(open_files_.size() - 1);
}

Status Kernel::FdSlotCheck(Task& task, uint64_t fd) {
  // SVA-safe: indexing the fd array is an array indexing operation; the
  // compiler emits a bounds check against the object backing the array —
  // the task struct while the table is embedded, the kmalloc block once it
  // has grown.
  if (task.fd_block != 0) {
    return BoundsCheckObject(
        allocators_->PoolForKmallocClass(
            allocators_->KmallocSize(task.fd_block)),
        task.fd_block, task.fd_block + fd * 4);
  }
  return BoundsCheckObject(allocators_->PoolForCache(task_cache_), task.addr,
                           task.addr + kTaskFdArrayOffset + fd * 4);
}

Status Kernel::GrowFdTable(Task& task) {
  uint64_t capacity = task.fds.size();
  if (capacity >= config_.max_fds_limit) {
    return Status(StatusCode::kInternal, "fd table at max_fds_limit");
  }
  uint64_t grown =
      std::min<uint64_t>(capacity * 2, config_.max_fds_limit);
  // SVA-PORT(alloc): the expanded fdtable is an ordinary allocation, so its
  // bounds live in the kmalloc class metapool; the old block's registration
  // is dropped by kfree. (The embedded array stays inside the task object —
  // the task cache's object size never changes.)
  SVA_ASSIGN_OR_RETURN(uint64_t block, allocators_->Kmalloc(grown * 4));
  if (task.fd_block != 0) {
    SVA_RETURN_IF_ERROR(allocators_->Kfree(task.fd_block));
  }
  task.fd_block = block;
  task.fds.resize(grown, -1);
  return OkStatus();
}

Status Kernel::EnsureFdCapacity(Task& task, uint64_t capacity) {
  while (task.fds.size() < capacity) {
    SVA_RETURN_IF_ERROR(GrowFdTable(task));
  }
  return OkStatus();
}

Result<int> Kernel::AllocateFd(Task& task, int file_index) {
  std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
  // Every slot below fd_next_hint is occupied (SysClose/SysExit lower the
  // hint on free), so scanning from it finds the lowest free slot without
  // the O(table) walk that would make 10k accepts quadratic.
  size_t start = std::min<size_t>(
      static_cast<size_t>(std::max(task.fd_next_hint, 0)), task.fds.size());
  for (size_t fd = start; fd < task.fds.size(); ++fd) {
    if (task.fds[fd] < 0) {
      SVA_RETURN_IF_ERROR(FdSlotCheck(task, fd));
      task.fds[fd] = file_index;
      task.fd_next_hint = static_cast<int>(fd) + 1;
      return static_cast<int>(fd);
    }
  }
  // Table genuinely full: grow it and take the first new slot.
  size_t fd = task.fds.size();
  SVA_RETURN_IF_ERROR(GrowFdTable(task));
  SVA_RETURN_IF_ERROR(FdSlotCheck(task, fd));
  task.fds[fd] = file_index;
  task.fd_next_hint = static_cast<int>(fd) + 1;
  return static_cast<int>(fd);
}

Result<OpenFile*> Kernel::FileForFd(Task& task, uint64_t fd) {
  // The whole lookup runs under files_lock_: a concurrent AllocateFd may be
  // growing the fd table (resizing the vector / swapping fd_block), so both
  // the size check and the slot bounds check must see a consistent table.
  // The bounds check only takes metapool stripe locks (external classes,
  // fine under the files leaf).
  std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
  if (fd >= task.fds.size()) {
    return SafetyViolation(StrCat("fd ", fd, " out of range"));
  }
  SVA_RETURN_IF_ERROR(FdSlotCheck(task, fd));
  int index = task.fds[fd];
  if (index < 0 || static_cast<size_t>(index) >= open_files_.size() ||
      open_files_[static_cast<size_t>(index)] == nullptr) {
    return NotFound(StrCat("bad fd ", fd));
  }
  // The pointer remains valid after release: entries are heap-allocated and
  // only reset when the refcount hits zero (closing an fd that another
  // thread is actively using is a user-program race, as in real kernels).
  return open_files_[static_cast<size_t>(index)].get();
}

Result<Inode*> Kernel::LookupInode(const std::string& name, bool create) {
  auto it = namespace_.find(name);
  if (it != namespace_.end()) {
    return &inodes_[it->second];
  }
  if (!create) {
    return NotFound(StrCat("no such file: ", name));
  }
  SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(inode_cache_));
  Inode inode;
  inode.addr = addr;
  inode.ino = next_ino_++;
  inode.name = name;
  int ino = inode.ino;
  inodes_[ino] = std::move(inode);
  namespace_[name] = ino;
  return &inodes_[ino];
}

Status Kernel::ReleaseFile(int file_index) {
  uint64_t defunct_addr = 0;
  int defunct_net_sid = -1;
  int defunct_evq = -1;
  int defunct_prof = -1;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    OpenFile* file = open_files_[static_cast<size_t>(file_index)].get();
    if (--file->refs > 0) {
      return OkStatus();
    }
    defunct_addr = file->addr;
    defunct_net_sid = file->net_socket_id;
    defunct_evq = file->evq_id;
    defunct_prof = file->prof_id;
    open_files_[static_cast<size_t>(file_index)].reset();
  }
  // Teardown outside files_lock_ (it is a leaf lock; the net stack, the
  // allocators, and evq_lock_ — which ranks ABOVE files_lock_ — take their
  // own locks).
  if (defunct_net_sid >= 0) {
    // Close-while-registered: the socket silently leaves every event queue
    // watching it, epoll-style, before the net stack reclaims the id.
    DropSocketWatches(defunct_net_sid);
    if (net_ != nullptr) {
      SVA_RETURN_IF_ERROR(net_->Close(defunct_net_sid));
    }
  }
  if (defunct_evq >= 0) {
    DestroyEvq(defunct_evq);
  }
  if (defunct_prof >= 0) {
    DestroyProfSession(defunct_prof);
  }
  return allocators_->CacheFree(file_cache_, defunct_addr);
}

// --- Syscalls ----------------------------------------------------------------------

Result<uint64_t> Kernel::SysGetPid() {
  return static_cast<uint64_t>(current_pid_);
}

Result<uint64_t> Kernel::SysGetTimeOfDay(uint64_t uaddr) {
  Task& task = *current_task();
  uint64_t micros;
  if (config_.mode == KernelMode::kNative) {
    micros = machine_.timer().microseconds();
  } else {
    // SVA-PORT(svaos): timer access through the SVA-OS I/O operation.
    SVA_ASSIGN_OR_RETURN(uint64_t ticks,
                         svaos_.IoRead(hw::Machine::kPortTimer));
    micros = ticks * 100;
  }
  uint64_t tv[2] = {micros / 1000000, micros % 1000000};
  SVA_ASSIGN_OR_RETURN(uint64_t scratch, allocators_->Kmalloc(16));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(scratch, 8, tv[0]));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(scratch + 8, 8, tv[1]));
  Status copy = CopyToUser(task, uaddr, scratch, 16);
  SVA_RETURN_IF_ERROR(allocators_->Kfree(scratch));
  SVA_RETURN_IF_ERROR(copy);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysGetRusage(uint64_t uaddr) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t scratch, allocators_->Kmalloc(64));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(
      scratch, 8,
      std::atomic_ref<uint64_t>(stats_.syscalls)
          .load(std::memory_order_relaxed)));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(
      scratch + 8, 8,
      std::atomic_ref<uint64_t>(stats_.context_switches)
          .load(std::memory_order_relaxed)));
  Status copy = CopyToUser(task, uaddr, scratch, 64);
  SVA_RETURN_IF_ERROR(allocators_->Kfree(scratch));
  SVA_RETURN_IF_ERROR(copy);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysOpen(uint64_t path_uaddr, uint64_t flags) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t path_buf,
                       allocators_->Kmalloc(kMaxPathLength));
  Status copy = CopyFromUser(task, path_buf, path_uaddr, kMaxPathLength);
  if (!copy.ok()) {
    (void)allocators_->Kfree(path_buf);
    return copy;
  }
  std::string path;
  for (uint64_t i = 0; i < kMaxPathLength; ++i) {
    auto c = machine_.memory().Read(path_buf + i, 1);
    if (!c.ok() || *c == 0) {
      break;
    }
    path.push_back(static_cast<char>(*c));
  }
  SVA_RETURN_IF_ERROR(allocators_->Kfree(path_buf));

  int ino;
  {
    // The namespace/inode lookup (and possible creation) runs under
    // vfs_lock_; only the ino escapes the scope — a concurrent unlink may
    // invalidate the Inode pointer the moment the lock drops.
    trace::TimedLockGuard<smp::OrderedSpinLock> guard(
        vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
    auto inode = LookupInode(path, (flags & 1) != 0);
    if (!inode.ok()) {
      return kENoEnt;
    }
    ino = (*inode)->ino;
  }
  SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(file_cache_));
  auto file = std::make_unique<OpenFile>();
  file->addr = addr;
  file->refs = 1;
  file->ino = ino;
  auto fd = AllocateFd(task, AddOpenFile(std::move(file)));
  if (!fd.ok()) {
    return kEMFile;
  }
  return static_cast<uint64_t>(*fd);
}

Result<uint64_t> Kernel::SysClose(uint64_t fd) {
  Task& task = *current_task();
  auto file = FileForFd(task, fd);
  if (!file.ok()) {
    return kEBadF;
  }
  int index;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    index = task.fds[fd];
    task.fds[fd] = -1;
    task.fd_next_hint =
        std::min(task.fd_next_hint, static_cast<int>(fd));
  }
  SVA_RETURN_IF_ERROR(ReleaseFile(index));
  trace::Emit(trace::EventId::kConnClose, fd);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysRead(uint64_t fd, uint64_t uaddr, uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;

  if (file->pipe_id >= 0) {
    // Fallback (the fd became a pipe between routing and dispatch): take
    // the pipe path. No vfs lock is held yet, so pipes_lock_ is acquired
    // clean, not nested.
    return SysPipeRead(fd, uaddr, len);
  }
  if (file->net_socket_id >= 0) {
    return SysNetRecv(fd, uaddr, len);
  }
  if (file->socket_id >= 0) {
    return SysRecv(fd, uaddr, len);
  }
  if (file->ino < 0) {
    return kEBadF;
  }
  // Regular-file read: inode data, size, and the fd offset live under
  // vfs_lock_. The copy loops below take only external lock classes
  // (metapool stripes, allocator locks), which rank below every kernel
  // lock.
  trace::TimedLockGuard<smp::OrderedSpinLock> vfs_guard(
      vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
  Inode& inode = inodes_[file->ino];
  if (inode.ino == 0) {
    return uint64_t{0};  // /dev/null reads EOF.
  }
  uint64_t remaining =
      file->offset >= inode.size ? 0 : inode.size - file->offset;
  uint64_t to_read = std::min(len, remaining);
  // SVA-safe: the block-copy loop has monotonic indices, so the compiler
  // hoists the checks out of the loop (Section 7.1.3 optimization 2): one
  // bounds check on the first block and one user-range check for the whole
  // span; the per-iteration accesses are provably within their block.
  if (to_read > 0) {
    uint64_t first_block = inode.blocks[file->offset / kBlockSize];
    SVA_RETURN_IF_ERROR(BoundsCheckObject(
        allocators_->PoolForKmallocClass(kBlockSize), first_block,
        first_block + file->offset % kBlockSize));
    SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, to_read));
  }
  uint64_t done = 0;
  while (done < to_read) {
    uint64_t block_index = (file->offset + done) / kBlockSize;
    uint64_t in_block = (file->offset + done) % kBlockSize;
    uint64_t chunk = std::min(to_read - done, kBlockSize - in_block);
    uint64_t block = inode.blocks[block_index];
    SVA_RETURN_IF_ERROR(
        CopyBlockToUser(task, uaddr + done, block + in_block, chunk));
    done += chunk;
  }
  file->offset += to_read;
  return to_read;
}

Result<uint64_t> Kernel::SysWrite(uint64_t fd, uint64_t uaddr, uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;

  if (file->pipe_id >= 0) {
    // Fallback, as in SysRead (no vfs lock held yet).
    return SysPipeWrite(fd, uaddr, len);
  }
  if (file->net_socket_id >= 0) {
    return SysNetSend(fd, uaddr, len, /*dest=*/0);
  }
  if (file->socket_id >= 0) {
    return SysSend(fd, uaddr, len);
  }
  if (file->ino < 0) {
    return kEBadF;
  }
  trace::TimedLockGuard<smp::OrderedSpinLock> vfs_guard(
      vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
  Inode& inode = inodes_[file->ino];
  if (inode.ino == 0) {
    // /dev/null: validate the user range, drop the data.
    SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, len));
    return len;
  }
  // SVA-safe: like the read path, the write loop's indices are monotonic,
  // so the checks hoist: one user-range check for the span (the first block
  // may not exist yet, so its check happens on allocation registration).
  if (len > 0) {
    SVA_RETURN_IF_ERROR(CheckUserRange(task, uaddr, len));
  }
  uint64_t done = 0;
  while (done < len) {
    uint64_t block_index = (file->offset + done) / kBlockSize;
    uint64_t in_block = (file->offset + done) % kBlockSize;
    while (inode.blocks.size() <= block_index) {
      SVA_ASSIGN_OR_RETURN(uint64_t block, allocators_->Kmalloc(kBlockSize));
      inode.blocks.push_back(block);
    }
    uint64_t chunk = std::min(len - done, kBlockSize - in_block);
    uint64_t block = inode.blocks[block_index];
    SVA_RETURN_IF_ERROR(
        CopyBlockFromUser(task, block + in_block, uaddr + done, chunk));
    done += chunk;
  }
  file->offset += len;
  inode.size = std::max(inode.size, file->offset);
  return len;
}

Result<uint64_t> Kernel::SysLseek(uint64_t fd, uint64_t offset,
                                  uint64_t whence) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;
  if (file->ino < 0) {
    return kEInval;
  }
  trace::TimedLockGuard<smp::OrderedSpinLock> vfs_guard(
      vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
  Inode& inode = inodes_[file->ino];
  switch (whence) {
    case 0:
      file->offset = offset;
      break;
    case 1:
      file->offset += offset;
      break;
    case 2:
      file->offset = inode.size + offset;
      break;
    default:
      return kEInval;
  }
  return file->offset;
}

Result<uint64_t> Kernel::SysUnlink(uint64_t path_uaddr) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t path_buf,
                       allocators_->Kmalloc(kMaxPathLength));
  Status copy = CopyFromUser(task, path_buf, path_uaddr, kMaxPathLength);
  if (!copy.ok()) {
    (void)allocators_->Kfree(path_buf);
    return copy;
  }
  std::string path;
  for (uint64_t i = 0; i < kMaxPathLength; ++i) {
    auto c = machine_.memory().Read(path_buf + i, 1);
    if (!c.ok() || *c == 0) {
      break;
    }
    path.push_back(static_cast<char>(*c));
  }
  SVA_RETURN_IF_ERROR(allocators_->Kfree(path_buf));
  trace::TimedLockGuard<smp::OrderedSpinLock> vfs_guard(
      vfs_lock_, trace::HistId::kVfsWaitNs, trace::kLockVfs);
  auto it = namespace_.find(path);
  if (it == namespace_.end() || it->second == 0) {
    return kENoEnt;
  }
  Inode& inode = inodes_[it->second];
  for (uint64_t block : inode.blocks) {
    SVA_RETURN_IF_ERROR(allocators_->Kfree(block));
  }
  SVA_RETURN_IF_ERROR(allocators_->CacheFree(inode_cache_, inode.addr));
  inodes_.erase(it->second);
  namespace_.erase(it);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysPipe(uint64_t uaddr_out) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t pipe_addr,
                       allocators_->CacheAlloc(pipe_cache_));
  SVA_ASSIGN_OR_RETURN(uint64_t buffer, allocators_->Kmalloc(kPipeCapacity));
  auto pipe = std::make_unique<Pipe>();
  pipe->addr = pipe_addr;
  pipe->buffer = buffer;
  int pipe_id;
  {
    // SysPipe runs off the BKL, so the vector growth itself needs the lock
    // (concurrent readers index pipes_ under it; Pipe nodes are stable).
    std::lock_guard<smp::OrderedSpinLock> guard(pipes_lock_);
    pipes_.push_back(std::move(pipe));
    pipe_id = static_cast<int>(pipes_.size() - 1);
  }

  int fds[2] = {-1, -1};
  for (int end = 0; end < 2; ++end) {
    SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(file_cache_));
    auto file = std::make_unique<OpenFile>();
    file->addr = addr;
    file->refs = 1;
    file->pipe_id = pipe_id;
    file->pipe_read_end = end == 0;
    auto fd = AllocateFd(task, AddOpenFile(std::move(file)));
    if (!fd.ok()) {
      return kEMFile;
    }
    fds[end] = *fd;
  }
  uint32_t out[2] = {static_cast<uint32_t>(fds[0]),
                     static_cast<uint32_t>(fds[1])};
  SVA_ASSIGN_OR_RETURN(uint64_t scratch, allocators_->Kmalloc(8));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(scratch, 4, out[0]));
  SVA_RETURN_IF_ERROR(machine_.memory().Write(scratch + 4, 4, out[1]));
  Status copy = CopyToUser(task, uaddr_out, scratch, 8);
  SVA_RETURN_IF_ERROR(allocators_->Kfree(scratch));
  SVA_RETURN_IF_ERROR(copy);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysPipeRead(uint64_t fd, uint64_t uaddr,
                                     uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;
  if (file->pipe_id < 0) {
    // The fd stopped being a pipe between routing and dispatch: kEBadF, the
    // same contract the net route uses for a socket-type mismatch.
    return kEBadF;
  }
  if (!file->pipe_read_end) {
    return kEInval;
  }
  trace::TimedLockGuard<smp::OrderedSpinLock> guard(
      pipes_lock_, trace::HistId::kPipesWaitNs, trace::kLockPipes);
  Pipe& pipe = *pipes_[static_cast<size_t>(file->pipe_id)];
  uint64_t to_read = std::min(len, pipe.count);
  uint64_t done = 0;
  while (done < to_read) {
    uint64_t chunk = std::min(to_read - done, kPipeCapacity - pipe.rpos);
    // SVA-safe: ring indexing is array indexing into the pipe buffer.
    SVA_RETURN_IF_ERROR(BoundsCheckObject(
        allocators_->PoolForKmallocClass(kPipeCapacity), pipe.buffer,
        pipe.buffer + pipe.rpos + chunk - 1));
    SVA_RETURN_IF_ERROR(
        CopyToUser(task, uaddr + done, pipe.buffer + pipe.rpos, chunk));
    pipe.rpos = (pipe.rpos + chunk) % kPipeCapacity;
    pipe.count -= chunk;
    done += chunk;
  }
  return to_read;
}

Result<uint64_t> Kernel::SysPipeWrite(uint64_t fd, uint64_t uaddr,
                                      uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  OpenFile* file = *file_r;
  if (file->pipe_id < 0) {
    return kEBadF;
  }
  if (file->pipe_read_end) {
    return kEInval;
  }
  trace::TimedLockGuard<smp::OrderedSpinLock> guard(
      pipes_lock_, trace::HistId::kPipesWaitNs, trace::kLockPipes);
  Pipe& pipe = *pipes_[static_cast<size_t>(file->pipe_id)];
  uint64_t space = kPipeCapacity - pipe.count;
  uint64_t to_write = std::min(len, space);
  uint64_t done = 0;
  while (done < to_write) {
    uint64_t chunk = std::min(to_write - done, kPipeCapacity - pipe.wpos);
    SVA_RETURN_IF_ERROR(BoundsCheckObject(
        allocators_->PoolForKmallocClass(kPipeCapacity), pipe.buffer,
        pipe.buffer + pipe.wpos + chunk - 1));
    SVA_RETURN_IF_ERROR(
        CopyFromUser(task, pipe.buffer + pipe.wpos, uaddr + done, chunk));
    pipe.wpos = (pipe.wpos + chunk) % kPipeCapacity;
    pipe.count += chunk;
    done += chunk;
  }
  return to_write;
}

Result<uint64_t> Kernel::SysBrk(uint64_t delta) {
  Task& task = *current_task();
  mm::AddressSpace& as = *task.aspace;
  // Lazy brk: raise the touchable-page frontier, commit nothing — pages
  // fault in on first touch. Atomic CAS loop: the break is per-task state a
  // multi-threaded "process" (net workers sharing pid 1) may move
  // concurrently, and a failed growth must not move it at all.
  std::atomic_ref<uint64_t> brk(task.brk);
  uint64_t old_brk = brk.load(std::memory_order_relaxed);
  while (true) {
    uint64_t new_brk = old_brk + delta;
    if (new_brk < as.base()) {
      return kEInval;  // Shrunk below the image base.
    }
    uint64_t needed_pages =
        (new_brk - as.base() + hw::kPageSize - 1) / hw::kPageSize;
    // Growth past the address-space cap is kENoMem, never an abort: the
    // limit is monotonic, so a shrink needs no extension.
    if (!vm_.ExtendLimit(as, needed_pages).ok()) {
      return kENoMem;
    }
    if (brk.compare_exchange_weak(old_brk, new_brk,
                                  std::memory_order_relaxed)) {
      return new_brk;
    }
  }
}

Result<uint64_t> Kernel::SysSigaction(uint64_t sig, uint64_t handler) {
  if (sig >= kMaxSignals) {
    return kEInval;
  }
  Task& task = *current_task();
  SVA_RETURN_IF_ERROR(
      BoundsCheckObject(allocators_->PoolForCache(task_cache_), task.addr,
                        task.addr + 96 + sig));
  std::atomic_ref<uint64_t>(task.sigactions[sig].handler)
      .store(handler, std::memory_order_release);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysKill(uint64_t pid, uint64_t sig,
                                 svaos::InterruptContext* icontext) {
  (void)icontext;
  if (sig >= kMaxSignals) {
    return kEInval;
  }
  Task* target = FindTask(static_cast<int>(pid));
  if (target == nullptr || !target->alive) {
    return kENoEnt;
  }
  std::atomic_ref<uint32_t>(target->pending_signals)
      .fetch_or(1u << sig, std::memory_order_acq_rel);
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysFork() {
  Task& parent = *current_task();
  trace::Span span(trace::EventId::kFork, trace::HistId::kForkNs,
                   static_cast<uint64_t>(parent.pid));
  std::atomic_ref<uint64_t>(stats_.forks)
      .fetch_add(1, std::memory_order_relaxed);
  SVA_ASSIGN_OR_RETURN(int child_pid, CreateTask(parent.pid));
  Task& child = *FindTask(child_pid);
  // Copy the fd table (bumping refs) and signal dispositions. A parent that
  // grew its table hands the child an equally grown one first.
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    SVA_RETURN_IF_ERROR(EnsureFdCapacity(child, parent.fds.size()));
    for (size_t fd = 0; fd < parent.fds.size(); ++fd) {
      child.fds[fd] = parent.fds[fd];
      int index = parent.fds[fd];
      if (index >= 0 && open_files_[static_cast<size_t>(index)] != nullptr) {
        ++open_files_[static_cast<size_t>(index)]->refs;
      }
    }
    child.fd_next_hint = parent.fd_next_hint;
  }
  // Field-wise atomic copy: a sibling thread of the parent may be changing
  // dispositions mid-fork; each handler value is copied torn-free even if
  // the set as a whole is a snapshot in motion (as in real kernels).
  for (int sig = 0; sig < kMaxSignals; ++sig) {
    child.sigactions[sig].handler =
        std::atomic_ref<uint64_t>(parent.sigactions[sig].handler)
            .load(std::memory_order_acquire);
  }
  // Clone the address space. COW (default): the parent's mappings are
  // downgraded to read-only + kPteCow, refcounts bumped, and the same
  // frames mapped into the child — the first write on either side breaks
  // the share in the fault handler. Eager mode copies every resident frame
  // up front (the bench/vm_ops comparison baseline).
  SVA_RETURN_IF_ERROR(config_.cow_fork
                          ? vm_.CloneCow(*parent.aspace, *child.aspace)
                          : vm_.CloneEager(*parent.aspace, *child.aspace));
  // The child's break mirrors the parent's offset into its own stride.
  std::atomic_ref<uint64_t>(child.brk).store(
      UserBaseForPid(child.pid) +
          (std::atomic_ref<uint64_t>(parent.brk)
               .load(std::memory_order_relaxed) -
           UserBaseForPid(parent.pid)),
      std::memory_order_relaxed);
  // Snapshot the parent's processor state into the child.
  if (config_.mode == KernelMode::kNative) {
    child.cpu_state.control = machine_.cpu().control();
    child.cpu_state.valid = true;
  } else {
    // SVA-PORT(svaos): child state captured via llva.save.integer.
    svaos_.SaveIntegerState(&child.cpu_state);
    svaos_.SaveFpState(&child.fp_state, /*always=*/false);
  }
  trace::Emit(trace::EventId::kConnForked, static_cast<uint64_t>(child_pid),
              static_cast<uint64_t>(parent.pid));
  return static_cast<uint64_t>(child_pid);
}

Result<uint64_t> Kernel::SysExecve(uint64_t path_uaddr) {
  (void)path_uaddr;
  Task& task = *current_task();
  trace::Span span(trace::EventId::kExec, trace::HistId::kExecNs,
                   static_cast<uint64_t>(task.pid));
  std::atomic_ref<uint64_t>(stats_.execs)
      .fetch_add(1, std::memory_order_relaxed);
  // Reset the image: drop every mapping (frames go back to the pool),
  // rewind the brk frontier, close nothing (CLOEXEC is out of scope). The
  // fresh zero-fill faults model image loading.
  SVA_RETURN_IF_ERROR(vm_.Reset(*task.aspace, config_.user_pages_per_task));
  std::atomic_ref<uint64_t>(task.brk).store(
      UserBaseForPid(task.pid) +
          config_.user_pages_per_task * hw::kPageSize / 2,
      std::memory_order_relaxed);
  std::atomic_ref<uint32_t>(task.pending_signals)
      .store(0, std::memory_order_release);
  for (auto& action : task.sigactions) {
    std::atomic_ref<uint64_t>(action.handler)
        .store(0, std::memory_order_release);
  }
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysExit(uint64_t code) {
  (void)code;
  Task& task = *current_task();
  for (size_t fd = 0; fd < task.fds.size(); ++fd) {
    int index;
    {
      std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
      index = task.fds[fd];
      task.fds[fd] = -1;
      if (index < 0 || open_files_[static_cast<size_t>(index)] == nullptr) {
        continue;
      }
    }
    SVA_RETURN_IF_ERROR(ReleaseFile(index));
  }
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    task.fd_next_hint = 0;
  }
  {
    // Lifecycle flip + parent lookup under one tasks_lock_ hold, so a
    // concurrent waitpid sees the zombie and the parent link consistently.
    std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
    task.zombie = true;
    // Switch to the parent if it exists, else stay (init never exits).
    auto parent_it = tasks_.find(task.parent);
    if (parent_it != tasks_.end() && parent_it->second.alive) {
      current_pid_ = task.parent;
    }
  }
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysWaitPid(uint64_t pid) {
  uint64_t child_addr;
  uint64_t child_fd_block;
  std::unique_ptr<mm::AddressSpace> child_aspace;
  {
    // Validate and detach under one tasks_lock_ hold: two concurrent
    // waiters must not both reap the same child.
    std::lock_guard<smp::OrderedSpinLock> guard(tasks_lock_);
    auto it = tasks_.find(static_cast<int>(pid));
    if (it == tasks_.end() || it->second.parent != current_pid_) {
      return kEChild;
    }
    if (!it->second.zombie) {
      return kEInval;  // Would block; the minikernel has no blocking waits.
    }
    child_addr = it->second.addr;
    child_fd_block = it->second.fd_block;
    child_aspace = std::move(it->second.aspace);
    tasks_.erase(it);
  }
  // Tear the address space down outside tasks_lock_ (the AS lock ranks
  // above it anyway): unmap everything, release the frames for reuse —
  // COW-shared frames survive until the other side drops its reference —
  // and retire the asid.
  if (child_aspace != nullptr) {
    SVA_RETURN_IF_ERROR(vm_.Destroy(*child_aspace));
  }
  if (child_fd_block != 0) {
    // A grown fd table dies with the task, like free_fdtable at release.
    SVA_RETURN_IF_ERROR(allocators_->Kfree(child_fd_block));
  }
  // Reap: free the task struct and its user pages' registration (external
  // lock classes; no kernel lock held).
  if (config_.mode == KernelMode::kSvaSafe && user_pool_ != nullptr) {
    (void)pools_.DropObject(*user_pool_,
                            UserBaseForPid(static_cast<int>(pid)));
  }
  SVA_RETURN_IF_ERROR(allocators_->CacheFree(task_cache_, child_addr));
  return pid;
}

Result<uint64_t> Kernel::SysDup(uint64_t fd) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok()) {
    return kEBadF;
  }
  int index;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
    index = task.fds[fd];
    ++open_files_[static_cast<size_t>(index)]->refs;
  }
  auto new_fd = AllocateFd(task, index);
  if (!new_fd.ok()) {
    return kEMFile;
  }
  return static_cast<uint64_t>(*new_fd);
}

Result<uint64_t> Kernel::SysSocket(uint64_t domain) {
  Task& task = *current_task();
  SVA_ASSIGN_OR_RETURN(uint64_t addr, allocators_->CacheAlloc(file_cache_));
  auto file = std::make_unique<OpenFile>();
  file->addr = addr;
  file->refs = 1;

  switch (static_cast<SocketDomain>(domain)) {
    case SocketDomain::kLegacyLoopback: {
      SVA_ASSIGN_OR_RETURN(uint64_t sock_addr,
                           allocators_->CacheAlloc(socket_cache_));
      auto socket = std::make_unique<Socket>();
      socket->addr = sock_addr;
      // SysSocket runs off the BKL; the table growth needs sockets_lock_
      // (concurrent send/recv index sockets_ under it; nodes are stable).
      std::lock_guard<smp::OrderedSpinLock> guard(sockets_lock_);
      sockets_.push_back(std::move(socket));
      file->socket_id = static_cast<int>(sockets_.size() - 1);
      break;
    }
    case SocketDomain::kDatagram:
    case SocketDomain::kListener: {
      auto sid = net_->CreateSocket(
          static_cast<SocketDomain>(domain) == SocketDomain::kDatagram
              ? net::SocketKind::kDatagram
              : net::SocketKind::kListener);
      if (!sid.ok()) {
        (void)allocators_->CacheFree(file_cache_, addr);
        return sid.status();
      }
      file->net_socket_id = *sid;
      break;
    }
    default:
      (void)allocators_->CacheFree(file_cache_, addr);
      return kEInval;
  }

  auto fd = AllocateFd(task, AddOpenFile(std::move(file)));
  if (!fd.ok()) {
    return kEMFile;
  }
  return static_cast<uint64_t>(*fd);
}

Result<uint64_t> Kernel::SysSend(uint64_t fd, uint64_t uaddr, uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok() || (*file_r)->socket_id < 0) {
    return kEBadF;
  }
  // An skb per send, like the network stack's allocation pattern. Allocate
  // and fill it before taking sockets_lock_, so only the queue append is
  // serialized.
  SVA_ASSIGN_OR_RETURN(uint64_t skb, allocators_->Kmalloc(len));
  uint64_t cls = allocators_->KmallocSize(skb);
  SVA_RETURN_IF_ERROR(BoundsCheckObject(allocators_->PoolForKmallocClass(cls),
                                        skb, skb + len - 1));
  Status copy = CopyFromUser(task, skb, uaddr, len);
  if (!copy.ok()) {
    (void)allocators_->Kfree(skb);
    return copy;
  }
  std::lock_guard<smp::OrderedSpinLock> guard(sockets_lock_);
  Socket& socket = *sockets_[static_cast<size_t>((*file_r)->socket_id)];
  socket.queue.emplace_back(skb, len);
  socket.queued_bytes += len;
  return len;
}

Result<uint64_t> Kernel::SysRecv(uint64_t fd, uint64_t uaddr, uint64_t len) {
  Task& task = *current_task();
  auto file_r = FileForFd(task, fd);
  if (!file_r.ok() || (*file_r)->socket_id < 0) {
    return kEBadF;
  }
  // The copy-out runs under sockets_lock_ so a failed copy leaves the skb
  // at the queue head (it only takes external lock classes, which rank
  // below every kernel lock).
  std::lock_guard<smp::OrderedSpinLock> guard(sockets_lock_);
  Socket& socket = *sockets_[static_cast<size_t>((*file_r)->socket_id)];
  if (socket.queue.empty()) {
    return uint64_t{0};
  }
  auto [skb, skb_len] = socket.queue.front();
  uint64_t to_copy = std::min(len, skb_len);
  SVA_RETURN_IF_ERROR(BoundsCheckObject(
      allocators_->PoolForKmallocClass(allocators_->KmallocSize(skb)), skb,
      skb + to_copy - 1));
  SVA_RETURN_IF_ERROR(CopyToUser(task, uaddr, skb, to_copy));
  socket.queue.erase(socket.queue.begin());
  socket.queued_bytes -= skb_len;
  SVA_RETURN_IF_ERROR(allocators_->Kfree(skb));
  return to_copy;
}

// --- Net-stack syscalls (off the big kernel lock) ---------------------------------

int Kernel::NetSocketIdForFd(uint64_t fd) {
  Task* task = current_task();
  if (task == nullptr) {
    return -1;
  }
  std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
  if (fd >= task->fds.size()) {
    return -1;
  }
  int index = task->fds[fd];
  if (index < 0 || static_cast<size_t>(index) >= open_files_.size() ||
      open_files_[static_cast<size_t>(index)] == nullptr) {
    return -1;
  }
  return open_files_[static_cast<size_t>(index)]->net_socket_id;
}

int Kernel::PipeIdForFd(uint64_t fd) {
  Task* task = current_task();
  if (task == nullptr) {
    return -1;
  }
  std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
  if (fd >= task->fds.size()) {
    return -1;
  }
  int index = task->fds[fd];
  if (index < 0 || static_cast<size_t>(index) >= open_files_.size() ||
      open_files_[static_cast<size_t>(index)] == nullptr) {
    return -1;
  }
  return open_files_[static_cast<size_t>(index)]->pipe_id;
}

int Kernel::EvqIdForFd(uint64_t fd) {
  Task* task = current_task();
  if (task == nullptr) {
    return -1;
  }
  std::lock_guard<smp::OrderedSpinLock> guard(files_lock_);
  if (fd >= task->fds.size()) {
    return -1;
  }
  int index = task->fds[fd];
  if (index < 0 || static_cast<size_t>(index) >= open_files_.size() ||
      open_files_[static_cast<size_t>(index)] == nullptr) {
    return -1;
  }
  return open_files_[static_cast<size_t>(index)]->evq_id;
}

Result<uint64_t> Kernel::SysNetBind(uint64_t fd, uint64_t port,
                                    uint64_t flags) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto file_r = FileForFd(*task, fd);
  if (!file_r.ok() || (*file_r)->net_socket_id < 0) {
    return kEBadF;
  }
  // flags bit 0 = SO_REUSEPORT-style shard join: listeners binding the same
  // port with it set form an accept shard group (src/net demuxes SYNs
  // across the group by flow hash).
  Status bound = net_->Bind((*file_r)->net_socket_id,
                            static_cast<uint16_t>(port),
                            /*reuse=*/(flags & 1) != 0);
  if (!bound.ok()) {
    switch (bound.code()) {
      case StatusCode::kAlreadyExists:
        return kEAddrInUse;
      case StatusCode::kInvalidArgument:
      case StatusCode::kFailedPrecondition:
        return kEInval;
      default:
        return bound;
    }
  }
  return uint64_t{0};
}

Result<uint64_t> Kernel::SysNetAccept(uint64_t fd) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto file_r = FileForFd(*task, fd);
  if (!file_r.ok() || (*file_r)->net_socket_id < 0) {
    return kEBadF;
  }
  auto conn = net_->Accept((*file_r)->net_socket_id);
  if (!conn.ok()) {
    switch (conn.status().code()) {
      case StatusCode::kFailedPrecondition:
        return kEAgain;  // Empty backlog; the caller retries.
      case StatusCode::kInvalidArgument:
        return kEInval;
      default:
        return conn.status();
    }
  }
  auto addr = allocators_->CacheAlloc(file_cache_);
  if (!addr.ok()) {
    (void)net_->Close(*conn);
    return addr.status();
  }
  auto file = std::make_unique<OpenFile>();
  file->addr = *addr;
  file->refs = 1;
  file->net_socket_id = *conn;
  auto new_fd = AllocateFd(*task, AddOpenFile(std::move(file)));
  if (!new_fd.ok()) {
    return kEMFile;
  }
  trace::Emit(trace::EventId::kConnAccept, static_cast<uint64_t>(*new_fd),
              fd);
  return static_cast<uint64_t>(*new_fd);
}

Result<uint64_t> Kernel::SysNetSend(uint64_t fd, uint64_t uaddr, uint64_t len,
                                    uint64_t dest) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto file_r = FileForFd(*task, fd);
  if (!file_r.ok() || (*file_r)->net_socket_id < 0) {
    return kEBadF;
  }
  int sid = (*file_r)->net_socket_id;
  auto kind = net_->Kind(sid);
  if (!kind.ok()) {
    return kEBadF;
  }
  if (*kind == net::SocketKind::kListener) {
    return kEInval;
  }
  // `dest` packs (ip << 16) | port; ignored on connected stream sockets.
  uint32_t dst_ip = static_cast<uint32_t>(dest >> 16);
  uint16_t dst_port = static_cast<uint16_t>(dest & 0xFFFF);
  const bool datagram = *kind == net::SocketKind::kDatagram;
  const uint32_t max_chunk =
      datagram ? net::kMaxUdpPayload : net::kMaxStreamPayload;
  if (datagram && len > max_chunk) {
    return kEMsgSize;  // Datagrams never fragment here.
  }
  uint64_t sent = 0;
  do {
    uint32_t chunk =
        static_cast<uint32_t>(std::min<uint64_t>(len - sent, max_chunk));
    auto skb = net_->AllocTxSkb();
    if (!skb.ok()) {
      return sent > 0 ? Result<uint64_t>(sent) : Result<uint64_t>(kEAgain);
    }
    // SVA-PORT(analysis): the header-framing and payload stores derive
    // pointers up to payload_offset + chunk into the packet buffer; the
    // compiler emits one hoisted bounds check against the skbuff metapool.
    Status check = BoundsCheckObject(
        net_->skbs().metapool(), skb->addr,
        skb->addr + net::kTxPayloadOffset + chunk - (chunk == 0 ? 0 : 1));
    if (!check.ok()) {
      (void)net_->FreeSkb(skb->addr);
      return check;
    }
    Status copy = CopyFromUser(*task, skb->addr + net::kTxPayloadOffset,
                               uaddr + sent, chunk);
    if (!copy.ok()) {
      (void)net_->FreeSkb(skb->addr);
      return copy;
    }
    auto pushed = net_->Send(sid, *skb, chunk, dst_ip, dst_port);
    if (!pushed.ok()) {
      return pushed.status();
    }
    sent += chunk;
  } while (sent < len);
  return sent;
}

Result<uint64_t> Kernel::SysNetRecv(uint64_t fd, uint64_t uaddr,
                                    uint64_t len) {
  Task* task = current_task();
  if (task == nullptr) {
    return Internal("no current task");
  }
  auto file_r = FileForFd(*task, fd);
  if (!file_r.ok() || (*file_r)->net_socket_id < 0) {
    return kEBadF;
  }
  auto slice = net_->RecvBegin((*file_r)->net_socket_id,
                               static_cast<uint32_t>(std::min<uint64_t>(
                                   len, net::kSkbBufferBytes)));
  if (!slice.ok()) {
    return slice.status().code() == StatusCode::kInvalidArgument
               ? Result<uint64_t>(kEInval)
               : Result<uint64_t>(kEBadF);
  }
  if (slice->len == 0) {
    // Non-blocking semantics: an empty queue is EOF (0) only after the peer
    // FINned; otherwise the caller must retry — blind polling loops are
    // what the event queue exists to replace.
    int sid = (*file_r)->net_socket_id;
    if ((net_->PollReady(sid) & net::kReadyHup) != 0) {
      return uint64_t{0};
    }
    return kEAgain;
  }
  // SVA-PORT(analysis): copying out of the packet buffer derives a pointer
  // slice->len past the payload start; one bounds check covers the copy.
  Status check = BoundsCheckObject(net_->skbs().metapool(), slice->skb_addr,
                                   slice->data_addr + slice->len - 1);
  if (!check.ok()) {
    (void)net_->RecvFinish(*slice);
    return check;
  }
  Status copy = CopyToUser(*task, uaddr, slice->data_addr, slice->len);
  SVA_RETURN_IF_ERROR(net_->RecvFinish(*slice));
  SVA_RETURN_IF_ERROR(copy);
  return uint64_t{slice->len};
}

}  // namespace sva::kernel
