// A Prometheus-style /metrics endpoint served as real packets: an HTTP/1.0
// responder that listens on a stream socket through the kernel's net stack,
// so every byte of the exposition crosses the virtual NIC like any other
// served file. The body unifies every counter surface in the tree —
// minikernel stats, the aggregated metapool CheckStats (plus per-pool
// fast-path counters), SVA-OS per-CPU operation counts, NIC/net-stack
// counters, and the trace subsystem's latency histograms.
#ifndef SVA_SRC_KERNEL_METRICS_SERVER_H_
#define SVA_SRC_KERNEL_METRICS_SERVER_H_

#include <cstdint>
#include <string>

#include "src/kernel/kernel.h"
#include "src/support/status.h"

namespace sva::kernel {

class MetricsServer {
 public:
  static constexpr uint16_t kDefaultPort = 9100;

  explicit MetricsServer(Kernel& kernel, uint16_t port = kDefaultPort)
      : kernel_(kernel), port_(port) {}

  // Opens the listening stream socket and binds it; the kernel must be
  // booted (net stack up) first.
  Status Start();

  // Serves one pending connection end-to-end: accepts it, reads the HTTP
  // request out of the socket queue, renders the exposition, streams the
  // response back through kSend, and closes the connection. Returns the
  // exact bytes put on the wire so callers can byte-verify what the
  // loopback client drained. The caller's client must have opened a stream
  // to `port` and sent its request before this is called (the loopback
  // wire is synchronous).
  Result<std::string> ServeOne();

  // The Prometheus text body alone (no HTTP framing); exposed so svm-run
  // and tests can reuse the rendering without a socket.
  std::string RenderText() const;

  uint16_t port() const { return port_; }
  uint64_t listener_fd() const { return listener_; }

 private:
  Kernel& kernel_;
  uint16_t port_;
  uint64_t listener_ = 0;
  bool started_ = false;
};

}  // namespace sva::kernel

#endif  // SVA_SRC_KERNEL_METRICS_SERVER_H_
