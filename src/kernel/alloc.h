// The minikernel's memory allocators, ported to SVA per Section 6.2:
//
//  * kmem_cache_create/alloc/free — the pool allocator (typed slab caches).
//    Ported changes: SLAB_NO_REAP semantics (pages never leave a live
//    pool), type-size slot alignment, and per-cache metapool registration.
//  * kmalloc/kfree — the ordinary allocator, implemented as a collection of
//    size-class caches; the exposed relationship means one metapool per
//    size class rather than one for all of kmalloc.
//  * alloc_bootmem — early boot allocation, usable before the caches exist.
//
// In the kSvaSafe configuration every allocation/free performs the
// pchk.reg.obj/pchk.drop.obj work against the MetaPool runtime — this is
// the instrumentation the safety-checking compiler inserts, applied to the
// natively-compiled kernel.
#ifndef SVA_SRC_KERNEL_ALLOC_H_
#define SVA_SRC_KERNEL_ALLOC_H_

#include <map>
#include <memory>
#include <string>

#include "src/hw/machine.h"
#include "src/kernel/config.h"
#include "src/runtime/metapool_runtime.h"
#include "src/runtime/pool_allocator.h"
#include "src/support/status.h"

namespace sva::kernel {

// PageProvider over the machine's physical page allocator.
class MachinePages : public runtime::PageProvider {
 public:
  explicit MachinePages(hw::Machine& machine) : machine_(machine) {}
  uint64_t AllocatePage() override { return machine_.AllocatePhysicalPage(); }
  uint64_t page_size() const override { return hw::kPageSize; }

 private:
  hw::Machine& machine_;
};

class KernelAllocators {
 public:
  KernelAllocators(hw::Machine& machine, runtime::MetaPoolRuntime* pools,
                   bool safety_checks);

  // kmem_cache_create: returns a cache handle. In safe mode a TH complete
  // metapool is created for the cache.
  runtime::PoolAllocator* CreateCache(const std::string& name,
                                      uint64_t object_size);
  // kmem_cache_alloc / kmem_cache_free.
  Result<uint64_t> CacheAlloc(runtime::PoolAllocator* cache);
  Status CacheFree(runtime::PoolAllocator* cache, uint64_t addr);

  // kmalloc / kfree.
  Result<uint64_t> Kmalloc(uint64_t size);
  Status Kfree(uint64_t addr);
  uint64_t KmallocSize(uint64_t addr) const {
    return kmalloc_->AllocationSize(addr);
  }

  // _alloc_bootmem: early allocations, registered like kmalloc's.
  Result<uint64_t> AllocBootmem(uint64_t size);

  // The metapool an address of this cache belongs to (safe mode only).
  runtime::MetaPool* PoolForCache(const runtime::PoolAllocator* cache) const;
  runtime::MetaPool* PoolForKmallocClass(uint64_t size) const;

  runtime::MetaPoolRuntime* pools() { return pools_; }
  bool safety_checks() const { return safety_checks_; }

 private:
  MachinePages pages_;
  runtime::MetaPoolRuntime* pools_;  // Null when checks are off.
  const bool safety_checks_;
  std::unique_ptr<runtime::OrdinaryAllocator> kmalloc_;
  std::map<std::string, std::unique_ptr<runtime::PoolAllocator>> caches_;
  std::map<const runtime::PoolAllocator*, runtime::MetaPool*> cache_pools_;
  std::map<uint64_t, runtime::MetaPool*> kmalloc_pools_;  // class -> pool
};

}  // namespace sva::kernel

#endif  // SVA_SRC_KERNEL_ALLOC_H_
