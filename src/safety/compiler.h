// The SVA safety-checking compiler (Sections 4.3-4.6).
//
// Pipeline over one bytecode module:
//   1. (optional) function cloning for analysis precision (Section 4.8)
//   2. unification points-to analysis
//   3. metapool inference: one metapool per points-to partition, with
//      kernel-pool-driven merging (one kernel pool => one metapool; ordinary
//      allocators merge all their partitions, per size class when the
//      kmalloc/kmem_cache relationship is exposed)
//   4. stack-to-heap promotion of escaping allocas
//   5. object registration: pchk.reg.obj/pchk.drop.obj at every allocation/
//      deallocation, globals registered in a synthesized @sva.init entry
//   6. run-time check insertion: bounds checks on unprovable GEPs (direct
//      bounds when statically known), load-store checks on complete non-TH
//      pools, indirect call checks against call-graph target sets
//   7. (optional) devirtualization of signature-asserted sites
//   8. metapool type annotations on every pointer value, for the bytecode
//      verifier (Section 5)
//
// The compiler is NOT in the trusted computing base: the type checker in
// src/verifier re-validates its output.
#ifndef SVA_SRC_SAFETY_COMPILER_H_
#define SVA_SRC_SAFETY_COMPILER_H_

#include <cstdint>
#include <string>

#include "src/analysis/config.h"
#include "src/analysis/transforms.h"
#include "src/support/status.h"
#include "src/vir/module.h"

namespace sva::safety {

struct SafetyCompilerOptions {
  analysis::AnalysisConfig analysis = analysis::AnalysisConfig::LinuxLike();
  bool run_cloning = true;
  bool run_devirt = true;
  // Use sva.boundscheck.direct when object bounds are statically known
  // (the Figure 2 line-19 "check without lookup" optimization).
  bool use_direct_bounds = true;
  // Elide provably-safe constant-index GEP checks (static array bounds
  // checking, Section 7.1.3 optimization 3).
  bool elide_static_safe_bounds = true;
  // Skip load-store checks on TH pools (core SAFECode optimization). Turning
  // this off measures the cost the partitioning strategy saves.
  bool elide_th_loadstore = true;
};

// Static instrumentation metrics; the Table 9 rows are derived from these.
struct AccessMetrics {
  uint64_t total = 0;
  uint64_t to_incomplete = 0;
  uint64_t to_type_safe = 0;
};

struct SafetyReport {
  // Metapool inventory.
  uint64_t metapools = 0;
  uint64_t th_metapools = 0;
  uint64_t complete_metapools = 0;
  uint64_t merged_by_kernel_pools = 0;

  // Instrumentation counts.
  uint64_t reg_obj = 0;
  uint64_t drop_obj = 0;
  uint64_t global_registrations = 0;
  uint64_t stack_registrations = 0;
  uint64_t stack_promotions = 0;
  uint64_t bounds_checks = 0;
  uint64_t direct_bounds_checks = 0;
  uint64_t elided_bounds_checks = 0;
  uint64_t ls_checks = 0;
  uint64_t elided_th_ls_checks = 0;
  uint64_t reduced_ls_checks = 0;  // Skipped on incomplete pools (I2).
  uint64_t indirect_checks = 0;

  // Allocation-site coverage (Table 9, column 2).
  uint64_t allocation_sites = 0;
  uint64_t allocation_sites_registered = 0;

  // Static access metrics (Table 9, columns 3-4).
  AccessMetrics loads;
  AccessMetrics stores;
  AccessMetrics struct_indexing;
  AccessMetrics array_indexing;

  analysis::CloneReport clone_report;
  analysis::DevirtReport devirt_report;
};

// Runs the full pipeline, mutating `module` in place. On success the module
// carries metapool declarations, value annotations, and inserted checks,
// and (if any globals exist) a synthesized @sva.init registration function.
Result<SafetyReport> RunSafetyCompiler(vir::Module& module,
                                       const SafetyCompilerOptions& options = {});

// Name of the synthesized initialization function that registers global
// objects; the SVM runs it automatically at load time.
inline constexpr const char* kInitFunctionName = "sva.init";

}  // namespace sva::safety

#endif  // SVA_SRC_SAFETY_COMPILER_H_
