#include "src/safety/compiler.h"

#include <map>
#include <set>

#include "src/analysis/callgraph.h"
#include "src/analysis/pointsto.h"
#include "src/support/strings.h"
#include "src/vir/builder.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::safety {

using analysis::AllocatorInfo;
using analysis::CallGraph;
using analysis::PointsToAnalysis;
using analysis::PointsToNode;
using vir::AllocaInst;
using vir::BasicBlock;
using vir::CallInst;
using vir::ConstantInt;
using vir::FreeInst;
using vir::Function;
using vir::GetElementPtrInst;
using vir::GlobalVariable;
using vir::Instruction;
using vir::IRBuilder;
using vir::LoadInst;
using vir::MallocInst;
using vir::MallocInst;
using vir::Module;
using vir::Opcode;
using vir::PointerType;
using vir::StoreInst;
using vir::Type;
using vir::Value;

namespace {

// The allocator size-query function for pool allocators (Section 4.4: "each
// allocator must provide a function that returns the size of an allocation").
constexpr const char* kKmemCacheSizeFn = "kmem_cache_size";

class SafetyCompiler {
 public:
  SafetyCompiler(Module& module, const SafetyCompilerOptions& options)
      : module_(module), options_(options) {}

  Result<SafetyReport> Run() {
    if (options_.run_cloning) {
      report_.clone_report = analysis::CloneForPrecision(module_);
    }
    pta_ = std::make_unique<PointsToAnalysis>(module_, options_.analysis);
    SVA_RETURN_IF_ERROR(pta_->Run());
    MergeKernelPools();
    AssignMetapools();
    callgraph_ = std::make_unique<CallGraph>(*pta_);
    if (options_.run_devirt) {
      report_.devirt_report = analysis::Devirtualize(module_, *callgraph_);
    }
    PromoteEscapingAllocas();
    InstrumentAllocations();
    InstrumentGlobals();
    InstrumentStack();
    InsertBoundsChecks();
    InsertLoadStoreChecks();
    InsertIndirectChecks();
    return report_;
  }

 private:
  // --- Metapool inference ----------------------------------------------------

  void MergeKernelPools() {
    // All partitions whose objects come from the same kernel pool (or the
    // same ordinary-allocator size class) must form one metapool
    // (Section 4.3): memory reuse within a kernel pool would otherwise let
    // a dangling pointer cross metapools.
    std::map<std::string, PointsToNode*> first_by_source;
    for (PointsToNode* node : pta_->graph().CanonicalNodes()) {
      for (const std::string& source : node->allocator_sources()) {
        auto [it, inserted] = first_by_source.try_emplace(source, node);
        if (!inserted) {
          PointsToNode* merged = pta_->graph().Unify(it->second, node);
          it->second = merged;
          ++report_.merged_by_kernel_pools;
        }
      }
    }
  }

  const std::string& PoolNameOf(PointsToNode* node) {
    static const std::string kEmpty;
    if (node == nullptr) {
      return kEmpty;
    }
    node = pta_->graph().Find(node);
    auto it = pool_names_.find(node);
    return it == pool_names_.end() ? kEmpty : it->second;
  }

  void AssignMetapools() {
    // Collect every pointer value's node plus object nodes.
    auto ensure_pool = [&](PointsToNode* node) {
      node = pta_->graph().Find(node);
      if (pool_names_.count(node) != 0) {
        return;
      }
      std::string name = StrCat("MP", pool_names_.size() + 1);
      pool_names_[node] = name;
      vir::MetapoolDecl& decl = module_.DeclareMetapool(name);
      decl.type_homogeneous = node->IsTypeHomogeneous();
      decl.element_type = node->element_type();
      decl.complete = node->IsComplete();
      decl.user_reachable = node->has_flag(PointsToNode::kUserReachable);
      vir::MetapoolHandle(module_, name);
      ++report_.metapools;
      if (decl.type_homogeneous) {
        ++report_.th_metapools;
      }
      if (decl.complete) {
        ++report_.complete_metapools;
      }
    };

    // Number pools in program order (globals, then each function's args and
    // instructions). value_nodes() is keyed by Value pointer, so iterating
    // it directly would make MP numbering depend on heap layout and two
    // compiles of the same module could disagree on pool names.
    const auto& nodes = pta_->graph().value_nodes();
    // Snapshot the walk first: ensure_pool creates metapool handle globals,
    // which would invalidate iterators into module_.globals().
    std::vector<const Value*> ordered;
    for (const auto& global : module_.globals()) {
      ordered.push_back(global.get());
    }
    for (const auto& fn : module_.functions()) {
      for (const auto& arg : fn->args()) {
        ordered.push_back(arg.get());
      }
      for (const auto& block : fn->blocks()) {
        for (const auto& inst : block->instructions()) {
          ordered.push_back(inst.get());
        }
      }
    }
    for (const Value* v : ordered) {
      if (!v->type()->IsPointer()) {
        continue;
      }
      auto it = nodes.find(v);
      if (it != nodes.end()) {
        ensure_pool(it->second);
      }
    }
    // Sweep anything the walk missed (e.g. pointer-typed constants) so every
    // node still gets a pool.
    for (const auto& [value, node] : nodes) {
      if (value->type()->IsPointer()) {
        ensure_pool(node);
      }
    }
    // Annotate all pointer values with their metapool (the Section 5 type
    // qualifiers).
    for (const auto& [value, node] : pta_->graph().value_nodes()) {
      if (!value->type()->IsPointer()) {
        continue;
      }
      const std::string& name = PoolNameOf(node);
      if (!name.empty()) {
        module_.AnnotateValue(value, name);
      }
    }
  }

  GlobalVariable* HandleFor(const std::string& pool_name) {
    return vir::MetapoolHandle(module_, pool_name);
  }

  const vir::MetapoolDecl* DeclFor(const Value* v) const {
    const std::string& name = module_.MetapoolOf(v);
    return name.empty() ? nullptr : module_.FindMetapool(name);
  }

  // Casts `v` to i8*, annotating the cast with v's pool.
  Value* CastToI8Ptr(IRBuilder& b, Value* v) {
    const PointerType* i8p = module_.types().PointerTo(module_.types().I8());
    if (v->type() == i8p) {
      return v;
    }
    Value* cast = b.CreateBitcast(v, i8p);
    const std::string& pool = module_.MetapoolOf(v);
    if (!pool.empty()) {
      module_.AnnotateValue(cast, pool);
    }
    return cast;
  }

  Value* ToI64(IRBuilder& b, Value* v) {
    if (v->type() == module_.types().I64()) {
      return v;
    }
    return b.CreateZExt(v, module_.types().I64());
  }

  // --- Stack-to-heap promotion (Section 4.3) -----------------------------------

  bool AllocaEscapes(Function& fn, const AllocaInst* alloca) {
    for (Instruction* inst : fn.AllInstructions()) {
      if (const auto* store = dynamic_cast<const StoreInst*>(inst)) {
        if (store->stored_value() == alloca) {
          return true;
        }
      } else if (const auto* ret = dynamic_cast<const vir::RetInst*>(inst)) {
        if (ret->has_value() && ret->value() == alloca) {
          return true;
        }
      }
    }
    return false;
  }

  void PromoteEscapingAllocas() {
    for (const auto& fn : module_.functions()) {
      if (fn->is_declaration() || fn->blocks().empty()) {
        continue;
      }
      BasicBlock* entry = fn->entry();
      std::vector<std::pair<size_t, AllocaInst*>> to_promote;
      for (size_t i = 0; i < entry->instructions().size(); ++i) {
        auto* alloca =
            dynamic_cast<AllocaInst*>(entry->instructions()[i].get());
        if (alloca != nullptr && AllocaEscapes(*fn, alloca)) {
          to_promote.emplace_back(i, alloca);
        }
      }
      for (auto& [index, alloca] : to_promote) {
        auto promoted = std::make_unique<MallocInst>(
            static_cast<const PointerType*>(alloca->type()),
            alloca->allocated_type(), alloca->count(),
            alloca->name() + ".promoted");
        MallocInst* malloc_inst = promoted.get();
        const std::string& pool = module_.MetapoolOf(alloca);
        std::unique_ptr<Instruction> old =
            entry->ReplaceAt(index, std::move(promoted));
        fn->ReplaceAllUsesWith(old.get(), malloc_inst);
        if (!pool.empty()) {
          module_.AnnotateValue(malloc_inst, pool);
        }
        // Free at every return: dangling pointers to it are rendered
        // harmless by the metapool reuse rules, like any heap object.
        for (const auto& bb : fn->blocks()) {
          Instruction* term = bb->terminator();
          if (term != nullptr && term->opcode() == Opcode::kRet) {
            bb->InsertAt(bb->IndexOf(term),
                         std::make_unique<FreeInst>(module_.types().VoidTy(),
                                                    malloc_inst));
          }
        }
        ++report_.stack_promotions;
      }
    }
  }

  // --- Object registration ------------------------------------------------------

  const AllocatorInfo* AllocatorByName(const std::string& name) const {
    for (const AllocatorInfo& info : options_.analysis.allocators) {
      if (info.alloc_fn == name) {
        return &info;
      }
    }
    return nullptr;
  }
  const AllocatorInfo* FreeFnByName(const std::string& name) const {
    for (const AllocatorInfo& info : options_.analysis.allocators) {
      if (!info.free_fn.empty() && info.free_fn == name) {
        return &info;
      }
    }
    return nullptr;
  }

  void InstrumentAllocations() {
    Function* reg = DeclareIntrinsic(module_, vir::Intrinsic::kPchkRegObj);
    Function* drop = DeclareIntrinsic(module_, vir::Intrinsic::kPchkDropObj);
    for (const auto& fn : module_.functions()) {
      if (fn->is_declaration()) {
        continue;
      }
      for (const auto& bb : fn->blocks()) {
        // Snapshot: insertion invalidates indices, so collect first.
        std::vector<Instruction*> worklist;
        for (const auto& inst : bb->instructions()) {
          worklist.push_back(inst.get());
        }
        for (Instruction* inst : worklist) {
          if (auto* malloc_inst = dynamic_cast<MallocInst*>(inst)) {
            const std::string& pool = module_.MetapoolOf(inst);
            if (pool.empty()) {
              continue;
            }
            IRBuilder b(module_);
            b.SetInsertPoint(bb.get(), bb->IndexOf(inst) + 1);
            uint64_t elem = vir::SizeOf(malloc_inst->allocated_type());
            Value* size;
            if (const auto* c =
                    dynamic_cast<const ConstantInt*>(malloc_inst->count())) {
              uint64_t total = elem * c->zext_value();
              size = module_.GetInt64(total);
              static_sizes_[inst] = total;
            } else {
              size = b.CreateMul(ToI64(b, malloc_inst->count()),
                                 module_.GetInt64(elem));
            }
            b.CreateCall(reg, {HandleFor(pool), CastToI8Ptr(b, inst), size});
            ++report_.reg_obj;
            RecordRegisteredSite(inst);
          } else if (auto* free_inst = dynamic_cast<FreeInst*>(inst)) {
            const std::string& pool =
                module_.MetapoolOf(free_inst->pointer());
            if (pool.empty()) {
              continue;
            }
            IRBuilder b(module_);
            b.SetInsertPoint(bb.get(), bb->IndexOf(inst));
            b.CreateCall(drop, {HandleFor(pool),
                                CastToI8Ptr(b, free_inst->pointer())});
            ++report_.drop_obj;
          } else if (auto* call = dynamic_cast<CallInst*>(inst)) {
            Function* callee = call->called_function();
            if (callee == nullptr) {
              continue;
            }
            if (const AllocatorInfo* info = AllocatorByName(callee->name())) {
              const std::string& pool = module_.MetapoolOf(inst);
              if (pool.empty()) {
                continue;
              }
              IRBuilder b(module_);
              b.SetInsertPoint(bb.get(), bb->IndexOf(inst) + 1);
              Value* size = nullptr;
              if (info->size_arg >= 0 &&
                  static_cast<size_t>(info->size_arg) < call->num_args()) {
                size = ToI64(b, call->arg(
                                    static_cast<size_t>(info->size_arg)));
                if (const auto* c = dynamic_cast<const ConstantInt*>(size)) {
                  static_sizes_[inst] = c->zext_value();
                }
              } else if (info->is_pool && info->pool_arg >= 0) {
                // Pool allocators report object sizes via the allocator's
                // size query (Section 4.4).
                Function* size_fn = module_.GetOrDeclareFunction(
                    kKmemCacheSizeFn,
                    module_.types().FunctionTy(
                        module_.types().I64(),
                        {module_.types().PointerTo(module_.types().I8())}));
                Value* desc = call->arg(static_cast<size_t>(info->pool_arg));
                size = b.CreateCall(size_fn, {CastToI8Ptr(b, desc)});
              } else {
                size = module_.GetInt64(0);
              }
              b.CreateCall(reg,
                           {HandleFor(pool), CastToI8Ptr(b, inst), size});
              ++report_.reg_obj;
              RecordRegisteredSite(inst);
            } else if (FreeFnByName(callee->name()) != nullptr) {
              const AllocatorInfo* info = FreeFnByName(callee->name());
              size_t ptr_arg = info->is_pool ? 1 : 0;
              if (ptr_arg >= call->num_args()) {
                continue;
              }
              Value* ptr = call->arg(ptr_arg);
              const std::string& pool = module_.MetapoolOf(ptr);
              if (pool.empty()) {
                continue;
              }
              IRBuilder b(module_);
              b.SetInsertPoint(bb.get(), bb->IndexOf(inst));
              b.CreateCall(drop, {HandleFor(pool), CastToI8Ptr(b, ptr)});
              ++report_.drop_obj;
            }
          }
        }
      }
    }
    report_.allocation_sites = pta_->allocation_sites().size();
  }

  void RecordRegisteredSite(const Instruction* inst) {
    if (registered_sites_.insert(inst).second) {
      ++report_.allocation_sites_registered;
    }
  }

  void InstrumentGlobals() {
    // Registrations go into a synthesized entry function, which the SVM
    // invokes at load time (the paper places them in the kernel "entry").
    std::vector<GlobalVariable*> to_register;
    for (const auto& gv : module_.globals()) {
      if (vir::IsMetapoolHandle(gv.get())) {
        continue;
      }
      const std::string& pool = module_.MetapoolOf(gv.get());
      if (pool.empty()) {
        continue;
      }
      if (gv->is_external()) {
        // External objects stay unregistered in partial builds (incomplete
        // partitions). When the analysis treated them as complete
        // (whole-program mode), the kernel registers them before first use
        // — the pseudo_alloc idiom of Section 4.7.
        const vir::MetapoolDecl* decl = module_.FindMetapool(pool);
        if (decl == nullptr || !decl->complete) {
          continue;
        }
      }
      to_register.push_back(gv.get());
    }
    if (to_register.empty()) {
      return;
    }
    Function* init = module_.GetFunction(kInitFunctionName);
    if (init == nullptr) {
      init = module_.CreateFunction(
          kInitFunctionName,
          module_.types().FunctionTy(module_.types().VoidTy(), {}),
          /*is_declaration=*/false);
      init->CreateBlock("entry");
      IRBuilder b(module_);
      b.SetInsertPoint(init->entry());
      b.CreateRetVoid();
    }
    Function* reg = DeclareIntrinsic(module_, vir::Intrinsic::kPchkRegObj);
    IRBuilder b(module_);
    b.SetInsertPoint(init->entry(), 0);
    for (GlobalVariable* gv : to_register) {
      const std::string& pool = module_.MetapoolOf(gv);
      b.CreateCall(reg, {HandleFor(pool), CastToI8Ptr(b, gv),
                         module_.GetInt64(vir::SizeOf(gv->value_type()))});
      ++report_.reg_obj;
      ++report_.global_registrations;
    }
  }

  void InstrumentStack() {
    Function* reg = DeclareIntrinsic(module_, vir::Intrinsic::kPchkRegObj);
    Function* drop = DeclareIntrinsic(module_, vir::Intrinsic::kPchkDropObj);
    for (const auto& fn : module_.functions()) {
      if (fn->is_declaration() || fn->blocks().empty()) {
        continue;
      }
      BasicBlock* entry = fn->entry();
      std::vector<AllocaInst*> allocas;
      for (const auto& inst : entry->instructions()) {
        if (auto* a = dynamic_cast<AllocaInst*>(inst.get())) {
          if (!module_.MetapoolOf(a).empty()) {
            allocas.push_back(a);
          }
        }
      }
      for (AllocaInst* a : allocas) {
        const std::string& pool = module_.MetapoolOf(a);
        IRBuilder b(module_);
        b.SetInsertPoint(entry, entry->IndexOf(a) + 1);
        uint64_t elem = vir::SizeOf(a->allocated_type());
        Value* size;
        if (const auto* c = dynamic_cast<const ConstantInt*>(a->count())) {
          uint64_t total = elem * c->zext_value();
          size = module_.GetInt64(total);
          static_sizes_[a] = total;
        } else {
          size = b.CreateMul(ToI64(b, a->count()), module_.GetInt64(elem));
        }
        b.CreateCall(reg, {HandleFor(pool), CastToI8Ptr(b, a), size});
        ++report_.reg_obj;
        ++report_.stack_registrations;
        // Deregister on every return (Section 4.1: stack objects are
        // deregistered when returning from the parent function).
        for (const auto& bb : fn->blocks()) {
          Instruction* term = bb->terminator();
          if (term != nullptr && term->opcode() == Opcode::kRet) {
            IRBuilder rb(module_);
            rb.SetInsertPoint(bb.get(), bb->IndexOf(term));
            rb.CreateCall(drop, {HandleFor(pool), CastToI8Ptr(rb, a)});
            ++report_.drop_obj;
          }
        }
      }
    }
  }

  // --- Bounds checks --------------------------------------------------------------

  // Classification of one GEP for the Table 9 metrics.
  void ClassifyGep(const GetElementPtrInst* gep, bool incomplete, bool th) {
    const Type* current =
        static_cast<const PointerType*>(gep->base()->type())->pointee();
    bool is_struct_index = false;
    bool is_array_index = false;
    const auto* lead = dynamic_cast<const ConstantInt*>(gep->index(0));
    if (lead == nullptr || lead->zext_value() != 0) {
      is_array_index = true;  // Pointer arithmetic over the object.
    }
    for (size_t i = 1; i < gep->num_indices(); ++i) {
      if (current->IsStruct()) {
        is_struct_index = true;
        const auto* ci = dynamic_cast<const ConstantInt*>(gep->index(i));
        current = static_cast<const vir::StructType*>(current)
                      ->fields()[ci->zext_value()];
      } else if (current->IsArray()) {
        is_array_index = true;
        current = static_cast<const vir::ArrayType*>(current)->element();
      }
    }
    auto count = [&](AccessMetrics& m) {
      ++m.total;
      if (incomplete) {
        ++m.to_incomplete;
      }
      if (th) {
        ++m.to_type_safe;
      }
    };
    if (is_struct_index) {
      count(report_.struct_indexing);
    }
    if (is_array_index) {
      count(report_.array_indexing);
    }
  }

  // True if every index is a constant provably inside the declared type.
  bool StaticallySafe(const GetElementPtrInst* gep) {
    const auto* lead = dynamic_cast<const ConstantInt*>(gep->index(0));
    if (lead == nullptr || lead->zext_value() != 0) {
      return false;
    }
    const Type* current =
        static_cast<const PointerType*>(gep->base()->type())->pointee();
    for (size_t i = 1; i < gep->num_indices(); ++i) {
      const auto* ci = dynamic_cast<const ConstantInt*>(gep->index(i));
      if (current->IsStruct()) {
        // Struct field indices are constant and range-checked by the
        // structural verifier.
        current = static_cast<const vir::StructType*>(current)
                      ->fields()[ci->zext_value()];
      } else if (current->IsArray()) {
        const auto* at = static_cast<const vir::ArrayType*>(current);
        if (ci == nullptr || ci->zext_value() >= at->length()) {
          return false;
        }
        current = at->element();
      } else {
        return false;
      }
    }
    return true;
  }

  void InsertBoundsChecks() {
    Function* boundscheck =
        DeclareIntrinsic(module_, vir::Intrinsic::kBoundsCheck);
    Function* direct =
        DeclareIntrinsic(module_, vir::Intrinsic::kBoundsCheckDirect);
    for (const auto& fn : module_.functions()) {
      if (fn->is_declaration()) {
        continue;
      }
      for (const auto& bb : fn->blocks()) {
        std::vector<GetElementPtrInst*> geps;
        for (const auto& inst : bb->instructions()) {
          if (auto* gep = dynamic_cast<GetElementPtrInst*>(inst.get())) {
            if (inserted_values_.count(gep) == 0) {
              geps.push_back(gep);
            }
          }
        }
        for (GetElementPtrInst* gep : geps) {
          const vir::MetapoolDecl* decl = DeclFor(gep->base());
          bool incomplete = decl != nullptr && !decl->complete;
          bool th = decl != nullptr && decl->type_homogeneous;
          ClassifyGep(gep, incomplete, th);
          if (decl == nullptr) {
            continue;
          }
          if (options_.elide_static_safe_bounds && StaticallySafe(gep)) {
            ++report_.elided_bounds_checks;
            continue;
          }
          IRBuilder b(module_);
          b.SetInsertPoint(bb.get(), bb->IndexOf(gep) + 1);
          auto size_it = static_sizes_.find(
              dynamic_cast<const Instruction*>(gep->base()));
          if (options_.use_direct_bounds && size_it != static_sizes_.end()) {
            // The Figure 2 line-19 case: bounds known from the allocation,
            // no splay lookup needed.
            Value* base_cast = CastToI8Ptr(b, gep->base());
            Value* end = b.CreateGEP(base_cast,
                                     {module_.GetInt64(size_it->second)});
            module_.AnnotateValue(end, module_.MetapoolOf(gep->base()));
            inserted_values_.insert(end);
            b.CreateCall(direct,
                         {base_cast, CastToI8Ptr(b, gep), end});
            ++report_.direct_bounds_checks;
          } else {
            b.CreateCall(boundscheck,
                         {HandleFor(module_.MetapoolOf(gep->base())),
                          CastToI8Ptr(b, gep->base()), CastToI8Ptr(b, gep)});
            ++report_.bounds_checks;
          }
        }
      }
    }
  }

  // --- Load-store checks -------------------------------------------------------------

  void InsertLoadStoreChecks() {
    Function* lscheck = DeclareIntrinsic(module_, vir::Intrinsic::kLSCheck);
    for (const auto& fn : module_.functions()) {
      if (fn->is_declaration()) {
        continue;
      }
      for (const auto& bb : fn->blocks()) {
        std::vector<Instruction*> accesses;
        for (const auto& inst : bb->instructions()) {
          if (inserted_values_.count(inst.get()) != 0) {
            continue;
          }
          if (inst->opcode() == Opcode::kLoad ||
              inst->opcode() == Opcode::kStore) {
            accesses.push_back(inst.get());
          }
        }
        for (Instruction* inst : accesses) {
          Value* ptr = inst->opcode() == Opcode::kLoad
                           ? static_cast<LoadInst*>(inst)->pointer()
                           : static_cast<StoreInst*>(inst)->pointer();
          const vir::MetapoolDecl* decl = DeclFor(ptr);
          bool incomplete = decl == nullptr || !decl->complete;
          bool th = decl != nullptr && decl->type_homogeneous;
          AccessMetrics& metrics = inst->opcode() == Opcode::kLoad
                                       ? report_.loads
                                       : report_.stores;
          ++metrics.total;
          if (incomplete) {
            ++metrics.to_incomplete;
          }
          if (th) {
            ++metrics.to_type_safe;
          }
          if (decl == nullptr) {
            continue;
          }
          if (!decl->complete) {
            // No load-store checks are possible on incomplete partitions
            // (Section 4.5, "reduced checks").
            ++report_.reduced_ls_checks;
            continue;
          }
          if (decl->type_homogeneous && options_.elide_th_loadstore) {
            // Dereferences within TH pools need no checks (Section 4.1).
            ++report_.elided_th_ls_checks;
            continue;
          }
          IRBuilder b(module_);
          b.SetInsertPoint(bb.get(), bb->IndexOf(inst));
          b.CreateCall(lscheck, {HandleFor(module_.MetapoolOf(ptr)),
                                 CastToI8Ptr(b, ptr)});
          ++report_.ls_checks;
        }
      }
    }
  }

  // --- Indirect call checks -------------------------------------------------------------

  void InsertIndirectChecks() {
    Function* check = DeclareIntrinsic(module_, vir::Intrinsic::kIndirectCheck);
    for (const CallInst* site : callgraph_->indirect_sites()) {
      auto* call = const_cast<CallInst*>(site);
      if (call->called_function() != nullptr) {
        continue;  // Devirtualized in the meantime.
      }
      const vir::MetapoolDecl* decl = DeclFor(call->callee());
      if (decl != nullptr && decl->type_homogeneous && decl->complete) {
        // Function pointers loaded from TH pools cannot have been forged
        // (all writes to such pools are checked), so no check is needed.
        continue;
      }
      std::vector<std::string> targets;
      for (const Function* callee : callgraph_->Callees(call)) {
        targets.push_back(callee->name());
      }
      uint64_t set_id = module_.AddTargetSet(std::move(targets));
      BasicBlock* bb = call->parent();
      IRBuilder b(module_);
      b.SetInsertPoint(bb, bb->IndexOf(call));
      b.CreateCall(check, {CastToI8Ptr(b, call->callee()),
                           module_.GetInt64(set_id)});
      ++report_.indirect_checks;
    }
  }

  Module& module_;
  const SafetyCompilerOptions& options_;
  SafetyReport report_;
  std::unique_ptr<PointsToAnalysis> pta_;
  std::unique_ptr<CallGraph> callgraph_;
  std::map<PointsToNode*, std::string> pool_names_;
  std::map<const Instruction*, uint64_t> static_sizes_;
  std::set<const Instruction*> registered_sites_;
  std::set<const Value*> inserted_values_;
};

}  // namespace

Result<SafetyReport> RunSafetyCompiler(vir::Module& module,
                                       const SafetyCompilerOptions& options) {
  SafetyCompiler compiler(module, options);
  return compiler.Run();
}

}  // namespace sva::safety
