// The MetaPool runtime (Sections 4.3-4.6): object registries keyed by
// metapool, plus the three run-time checks the SVM verifier inserts into
// kernel bytecode. This is part of the SVA trusted computing base.
#ifndef SVA_SRC_RUNTIME_METAPOOL_RUNTIME_H_
#define SVA_SRC_RUNTIME_METAPOOL_RUNTIME_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/runtime/checks.h"
#include "src/runtime/splay_tree.h"

namespace sva::runtime {

// What the runtime does when a check fails. The paper's SVM stops the
// offending operation; kRecord exists for the benchmark harness and for the
// exploit study's reporting.
enum class EnforcementMode {
  kTrap,    // Checks return a SafetyViolation status.
  kRecord,  // Violations are logged; checks return OK.
};

class MetaPoolRuntime;

// One metapool: the run-time reflection of one points-to partition.
class MetaPool {
 public:
  MetaPool(std::string name, bool type_homogeneous, uint64_t element_size,
           bool complete)
      : name_(std::move(name)),
        type_homogeneous_(type_homogeneous),
        element_size_(element_size),
        complete_(complete) {}

  const std::string& name() const { return name_; }
  bool type_homogeneous() const { return type_homogeneous_; }
  uint64_t element_size() const { return element_size_; }
  bool complete() const { return complete_; }
  void set_complete(bool c) { complete_ = c; }

  size_t live_objects() const { return tree_.size(); }
  SplayTree& tree() { return tree_; }

  // Direct (uninstrumented) registry access used by the runtime and tests.
  bool RegisterRange(uint64_t start, uint64_t size) {
    return tree_.Insert(start, size);
  }
  std::optional<ObjectRange> Lookup(uint64_t addr) {
    return tree_.LookupContaining(addr);
  }

 private:
  const std::string name_;
  const bool type_homogeneous_;
  const uint64_t element_size_;
  bool complete_;
  SplayTree tree_;
};

// Owns all metapools of one executing kernel/program and implements the
// pchk.*/sva.* operations against them.
class MetaPoolRuntime {
 public:
  explicit MetaPoolRuntime(EnforcementMode mode = EnforcementMode::kTrap)
      : mode_(mode) {}

  MetaPool* CreatePool(const std::string& name, bool type_homogeneous,
                       uint64_t element_size, bool complete);
  MetaPool* FindPool(const std::string& name) const;
  // Finds or creates with the given properties.
  MetaPool* GetPool(const std::string& name, bool type_homogeneous,
                    uint64_t element_size, bool complete);

  // --- Object registration (Table 3) ---------------------------------------
  // pchk.reg.obj: registers [start, start+size) in `pool`.
  Status RegisterObject(MetaPool& pool, uint64_t start, uint64_t size);
  // pchk.drop.obj: removes the object starting at `start`.
  Status DropObject(MetaPool& pool, uint64_t start);
  // Registers all of userspace as a single object (Section 4.6) so that
  // syscall pointer arguments check out but cannot straddle into the kernel.
  // Re-registering the exact same range is an idempotent no-op; a partial
  // overlap with an existing object is reported as a registration violation
  // (previously it silently left userspace unregistered, making later
  // syscall bounds checks fail spuriously).
  Status RegisterUserspace(MetaPool& pool, uint64_t user_base,
                           uint64_t user_size);

  // --- Run-time checks (Section 4.5) ----------------------------------------
  // sva.boundscheck: `derived` must lie within the same registered object as
  // `src`. For incomplete pools the check degrades to the "reduced" form.
  Status BoundsCheck(MetaPool& pool, uint64_t src, uint64_t derived);
  // sva.boundscheck.direct: bounds known statically, no splay lookup.
  Status BoundsCheckDirect(uint64_t start, uint64_t derived, uint64_t end);
  // sva.getbounds: object lookup without failing (incomplete-pool misses
  // return nullopt).
  std::optional<ObjectRange> GetBounds(MetaPool& pool, uint64_t addr);
  // sva.lscheck: `addr` must lie inside some registered object. No-op
  // (reduced) for incomplete pools.
  Status LoadStoreCheck(MetaPool& pool, uint64_t addr);
  // sva.indirectcheck support: target sets computed by the call graph.
  uint64_t RegisterTargetSet(std::vector<uint64_t> targets);
  Status IndirectCallCheck(uint64_t fp, uint64_t set_id);

  // --- State -----------------------------------------------------------------
  EnforcementMode mode() const { return mode_; }
  void set_mode(EnforcementMode mode) { mode_ = mode; }
  const std::vector<Violation>& violations() const { return violations_; }
  void ClearViolations() { violations_.clear(); }
  // Returns the counters with the per-pool fast-path counters (cache
  // hits/misses, splay comparisons) aggregated in.
  const CheckStats& stats() const;
  CheckStats& mutable_stats() { return stats_; }
  void ResetStats();

  // Toggles the per-pool object-lookup cache on every pool (existing and
  // future). Enabled by default; the benchmark harness disables it to
  // measure the bare splay-tree path.
  void set_lookup_cache_enabled(bool enabled);
  bool lookup_cache_enabled() const { return lookup_cache_enabled_; }

  const std::map<std::string, std::unique_ptr<MetaPool>>& pools() const {
    return pools_;
  }

 private:
  Status Fail(CheckKind kind, const MetaPool* pool, uint64_t address,
              uint64_t aux, std::string detail);

  EnforcementMode mode_;
  bool lookup_cache_enabled_ = true;
  std::map<std::string, std::unique_ptr<MetaPool>> pools_;
  std::vector<std::vector<uint64_t>> target_sets_;
  std::vector<Violation> violations_;
  // stats() folds the cumulative per-pool tree counters into the cache/splay
  // fields on demand; mutable so the accessor can stay const.
  mutable CheckStats stats_;
};

}  // namespace sva::runtime

#endif  // SVA_SRC_RUNTIME_METAPOOL_RUNTIME_H_
