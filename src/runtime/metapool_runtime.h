// The MetaPool runtime (Sections 4.3-4.6): object registries keyed by
// metapool, plus the three run-time checks the SVM verifier inserts into
// kernel bytecode. This is part of the SVA trusted computing base.
//
// Thread safety (DESIGN.md §SMP): checks arrive concurrently from every
// virtual CPU, so each metapool shards its registry over kNumStripes splay
// trees by address window, each stripe guarded by its own spinlock; an
// object is inserted into every stripe its range touches, so a lookup only
// ever probes the single stripe of the queried address. The object-lookup
// cache in front of the trees is per-thread (TLS) and validated against a
// per-pool generation counter, so the hot fast path takes no lock at all.
#ifndef SVA_SRC_RUNTIME_METAPOOL_RUNTIME_H_
#define SVA_SRC_RUNTIME_METAPOOL_RUNTIME_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/checks.h"
#include "src/runtime/lookup_cache.h"
#include "src/runtime/splay_tree.h"
#include "src/smp/percpu.h"
#include "src/smp/sync.h"
#include "src/support/status.h"

namespace sva::runtime {

using LookupCache = LookupCacheT<ObjectRange>;

// What the runtime does when a check fails. The paper's SVM stops the
// offending operation; kRecord exists for the benchmark harness and for the
// exploit study's reporting.
enum class EnforcementMode {
  kTrap,    // Checks return a SafetyViolation status.
  kRecord,  // Violations are logged; checks return OK.
};

class MetaPoolRuntime;

// One metapool: the run-time reflection of one points-to partition.
//
// Concurrency: RegisterRange/RemoveStart/Lookup/LookupStart are safe to call
// from any thread. The registry is striped by 4 KiB address window; a range
// lives in every stripe it touches (all stripes once it spans >= kNumStripes
// windows), so Lookup(addr) needs only stripe(addr). Drops bump the pool
// generation *after* the tree removal, which is what lets the per-thread
// lookup cache skip locking: an entry is served only if its recorded
// generation still matches, and any entry for a dropped object was tagged
// with a pre-drop generation.
class MetaPool {
 public:
  static constexpr size_t kNumStripes = 16;
  static constexpr uint64_t kStripeShift = 12;  // 4 KiB address windows.

  MetaPool(std::string name, bool type_homogeneous, uint64_t element_size,
           bool complete);

  const std::string& name() const { return name_; }
  bool type_homogeneous() const { return type_homogeneous_; }
  uint64_t element_size() const { return element_size_; }
  bool complete() const { return complete_; }
  void set_complete(bool c) { complete_ = c; }

  size_t live_objects() const {
    return live_objects_.load(std::memory_order_relaxed);
  }

  // Direct (uninstrumented) registry access used by the runtime and tests.
  // Registers [start, start+size); false on overlap with a live object.
  bool RegisterRange(uint64_t start, uint64_t size);
  // Removes the object starting exactly at `start`; nullopt if none does.
  std::optional<ObjectRange> RemoveStart(uint64_t start);
  // The registered object containing `addr`, if any (per-thread cache +
  // single-stripe splay lookup).
  std::optional<ObjectRange> Lookup(uint64_t addr);
  // The registered object starting exactly at `start`, if any.
  std::optional<ObjectRange> LookupStart(uint64_t start);

  // Per-pool object-lookup cache switch. Disabling (or re-enabling) starts
  // every thread's cache cold for this pool. Enabled by default.
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const {
    return cache_enabled_.load(std::memory_order_relaxed);
  }

  // Fast-path counters: lookups absorbed by the per-thread cache, lookups
  // that fell through to a tree, and splay comparisons over all stripes.
  uint64_t cache_hits() const { return cache_hits_.value(); }
  uint64_t cache_misses() const { return cache_misses_.value(); }
  uint64_t comparisons() const;
  uint64_t rotations() const;
  void ResetStats();

 private:
  struct alignas(smp::kCacheLineBytes) Stripe {
    mutable smp::SpinLock lock;
    SplayTree tree;
  };

  static size_t StripeFor(uint64_t addr) {
    return static_cast<size_t>(addr >> kStripeShift) & (kNumStripes - 1);
  }
  // Bitmask of stripes the range [start, start+size) touches.
  static uint32_t StripeMaskFor(uint64_t start, uint64_t size);

  // Per-thread cache probe/fill (implemented over the TLS slot table in
  // metapool_runtime.cc). `generation` is the pool generation observed
  // *before* the locked tree lookup that produced `range`.
  const ObjectRange* TlsProbe(uint64_t addr) const;
  void TlsFill(uint64_t generation, const ObjectRange& range);

  const std::string name_;
  const bool type_homogeneous_;
  const uint64_t element_size_;
  bool complete_;

  std::array<Stripe, kNumStripes> stripes_;
  // Bumped (release) after every removal; per-thread cache entries tagged
  // with an older generation are never served.
  std::atomic<uint64_t> generation_{1};
  std::atomic<uint64_t> live_objects_{0};
  // Globally unique, never recycled: keys this pool's slot in each thread's
  // cache table, so a destroyed pool's entries can never alias a new pool.
  const uint64_t cache_id_;
  std::atomic<bool> cache_enabled_{true};
  mutable smp::ShardedCounter cache_hits_;
  mutable smp::ShardedCounter cache_misses_;
};

// Owns all metapools of one executing kernel/program and implements the
// pchk.*/sva.* operations against them.
//
// Concurrency: the check/registration entry points are thread-safe (striped
// pool registries, spinlocked violation log and target sets, per-CPU check
// counters). stats(), violations() and pools() report a consistent snapshot
// only at quiescence (no checks in flight), which is how the harnesses use
// them.
class MetaPoolRuntime {
 public:
  explicit MetaPoolRuntime(EnforcementMode mode = EnforcementMode::kTrap)
      : mode_(mode) {}

  MetaPool* CreatePool(const std::string& name, bool type_homogeneous,
                       uint64_t element_size, bool complete);
  MetaPool* FindPool(const std::string& name) const;
  // Finds or creates with the given properties.
  MetaPool* GetPool(const std::string& name, bool type_homogeneous,
                    uint64_t element_size, bool complete);

  // --- Object registration (Table 3) ---------------------------------------
  // pchk.reg.obj: registers [start, start+size) in `pool`.
  Status RegisterObject(MetaPool& pool, uint64_t start, uint64_t size);
  // pchk.drop.obj: removes the object starting at `start`.
  Status DropObject(MetaPool& pool, uint64_t start);
  // Registers all of userspace as a single object (Section 4.6) so that
  // syscall pointer arguments check out but cannot straddle into the kernel.
  // Re-registering the exact same range is an idempotent no-op; a partial
  // overlap with an existing object is reported as a registration violation
  // (previously it silently left userspace unregistered, making later
  // syscall bounds checks fail spuriously).
  Status RegisterUserspace(MetaPool& pool, uint64_t user_base,
                           uint64_t user_size);

  // --- Run-time checks (Section 4.5) ----------------------------------------
  // sva.boundscheck: `derived` must lie within the same registered object as
  // `src`. For incomplete pools the check degrades to the "reduced" form.
  Status BoundsCheck(MetaPool& pool, uint64_t src, uint64_t derived);
  // sva.boundscheck.direct: bounds known statically, no splay lookup.
  Status BoundsCheckDirect(uint64_t start, uint64_t derived, uint64_t end);
  // sva.getbounds: object lookup without failing (incomplete-pool misses
  // return nullopt).
  std::optional<ObjectRange> GetBounds(MetaPool& pool, uint64_t addr);
  // sva.lscheck: `addr` must lie inside some registered object. No-op
  // (reduced) for incomplete pools.
  Status LoadStoreCheck(MetaPool& pool, uint64_t addr);
  // sva.indirectcheck support: target sets computed by the call graph.
  uint64_t RegisterTargetSet(std::vector<uint64_t> targets);
  Status IndirectCallCheck(uint64_t fp, uint64_t set_id);

  // --- State -----------------------------------------------------------------
  EnforcementMode mode() const { return mode_; }
  void set_mode(EnforcementMode mode) { mode_ = mode; }
  const std::vector<Violation>& violations() const { return violations_; }
  void ClearViolations();
  // Returns the counters aggregated over all CPU shards, with the per-pool
  // fast-path counters (cache hits/misses, splay comparisons) folded in.
  const CheckStats& stats() const;
  void ResetStats();

  // Toggles the per-pool object-lookup cache on every pool (existing and
  // future). Enabled by default; the benchmark harness disables it to
  // measure the bare splay-tree path.
  void set_lookup_cache_enabled(bool enabled);
  bool lookup_cache_enabled() const { return lookup_cache_enabled_; }

  const std::map<std::string, std::unique_ptr<MetaPool>>& pools() const {
    return pools_;
  }

 private:
  Status Fail(CheckKind kind, const MetaPool* pool, uint64_t address,
              uint64_t aux, std::string detail);
  // The calling CPU's counter shard; fields are bumped through atomic_ref so
  // oversubscribed threads sharing a CPU id stay race-free.
  CheckStats& Shard() { return stats_shards_.Current(); }
  static void Bump(uint64_t& counter) {
    std::atomic_ref<uint64_t>(counter).fetch_add(1,
                                                 std::memory_order_relaxed);
  }

  EnforcementMode mode_;
  bool lookup_cache_enabled_ = true;
  mutable smp::SpinLock pools_lock_;
  std::map<std::string, std::unique_ptr<MetaPool>> pools_;
  mutable smp::SpinLock targets_lock_;
  std::vector<std::vector<uint64_t>> target_sets_;
  mutable smp::SpinLock violations_lock_;
  std::vector<Violation> violations_;
  smp::PerCpu<CheckStats> stats_shards_;
  // stats() folds the shards and the per-pool counters into this scratch on
  // demand; mutable so the accessor can stay const.
  mutable CheckStats stats_;
};

}  // namespace sva::runtime

#endif  // SVA_SRC_RUNTIME_METAPOOL_RUNTIME_H_
