#include "src/runtime/splay_tree.h"

#include <vector>

namespace sva::runtime {

SplayTree::~SplayTree() { Clear(); }

void SplayTree::DeleteSubtree(Node* n) {
  // Iterative deletion to avoid deep recursion on adversarial shapes.
  std::vector<Node*> stack;
  if (n != nullptr) {
    stack.push_back(n);
  }
  while (!stack.empty()) {
    Node* cur = stack.back();
    stack.pop_back();
    if (cur->left != nullptr) {
      stack.push_back(cur->left);
    }
    if (cur->right != nullptr) {
      stack.push_back(cur->right);
    }
    delete cur;
  }
}

void SplayTree::Clear() {
  DeleteSubtree(root_);
  root_ = nullptr;
  size_ = 0;
}

int SplayTree::Compare(uint64_t addr, const ObjectRange& range) {
  ++comparisons_;
  if (addr < range.start) {
    return -1;
  }
  // Unsigned-safe containment: ranges abutting UINT64_MAX must not wrap.
  if (range.ContainsForLookup(addr)) {
    return 0;
  }
  return 1;
}

void SplayTree::Splay(uint64_t addr) {
  if (root_ == nullptr) {
    return;
  }
  Node header;
  Node* left_max = &header;
  Node* right_min = &header;
  Node* t = root_;
  while (true) {
    int cmp = Compare(addr, t->range);
    if (cmp < 0) {
      if (t->left == nullptr) {
        break;
      }
      if (Compare(addr, t->left->range) < 0) {
        // Rotate right.
        ++rotations_;
        Node* l = t->left;
        t->left = l->right;
        l->right = t;
        t = l;
        if (t->left == nullptr) {
          break;
        }
      }
      // Link right.
      right_min->left = t;
      right_min = t;
      t = t->left;
    } else if (cmp > 0) {
      if (t->right == nullptr) {
        break;
      }
      if (Compare(addr, t->right->range) > 0) {
        // Rotate left.
        ++rotations_;
        Node* r = t->right;
        t->right = r->left;
        r->left = t;
        t = r;
        if (t->right == nullptr) {
          break;
        }
      }
      // Link left.
      left_max->right = t;
      left_max = t;
      t = t->right;
    } else {
      break;
    }
  }
  // Assemble.
  left_max->right = t->left;
  right_min->left = t->right;
  t->left = header.right;
  t->right = header.left;
  root_ = t;
}

bool SplayTree::Insert(uint64_t start, uint64_t size) {
  // Inclusive last byte, saturated: a range whose end would pass the top of
  // the 64-bit address space is treated as ending at UINT64_MAX instead of
  // wrapping, which would defeat the successor overlap test below.
  uint64_t end = start;
  if (size != 0) {
    uint64_t len = size - 1;
    end = start > UINT64_MAX - len ? UINT64_MAX : start + len;
  }
  if (root_ != nullptr) {
    // The top-down splay terminates at the node containing `start` if one
    // exists, so this detects any range covering our first byte.
    Splay(start);
    if (Compare(start, root_->range) == 0) {
      return false;
    }
    // Otherwise the only possible overlap is a range beginning inside
    // [start, end]: find the successor (smallest range start >= start).
    uint64_t succ = 0;
    bool have_succ = false;
    if (root_->range.start >= start) {
      succ = root_->range.start;
      have_succ = true;
    } else if (root_->right != nullptr) {
      Node* n = root_->right;
      while (n->left != nullptr) {
        n = n->left;
      }
      succ = n->range.start;
      have_succ = true;
    }
    if (have_succ && succ <= end) {
      return false;
    }
  }
  Node* n = new Node;
  n->range = ObjectRange{start, size};
  if (root_ == nullptr) {
    root_ = n;
  } else {
    // root_ is now the nearest node to `end`; split around `start`.
    Splay(start);
    if (root_->range.start < start) {
      n->left = root_;
      n->right = root_->right;
      root_->right = nullptr;
    } else {
      n->right = root_;
      n->left = root_->left;
      root_->left = nullptr;
    }
    root_ = n;
  }
  ++size_;
  return true;
}

std::optional<ObjectRange> SplayTree::RemoveAt(uint64_t start) {
  void* node = nullptr;
  std::optional<ObjectRange> removed = ExtractAt(start, &node);
  FreeNode(node);
  return removed;
}

std::optional<ObjectRange> SplayTree::ExtractAt(uint64_t start,
                                                void** node_out) {
  *node_out = nullptr;
  if (root_ == nullptr) {
    return std::nullopt;
  }
  Splay(start);
  if (root_->range.start != start) {
    return std::nullopt;
  }
  ObjectRange removed = root_->range;
  Node* old = root_;
  if (root_->left == nullptr) {
    root_ = root_->right;
  } else {
    Node* right = root_->right;
    root_ = root_->left;
    Splay(start);  // Max of left subtree becomes root (no right child).
    root_->right = right;
  }
  // Detached, not freed: the node's children links are dead weight now, but
  // the caller may still be publishing its absence to lock-free cache
  // readers before the memory can be reused.
  old->left = nullptr;
  old->right = nullptr;
  *node_out = old;
  --size_;
  return removed;
}

void SplayTree::FreeNode(void* node) {
  delete static_cast<Node*>(node);
}

std::optional<ObjectRange> SplayTree::LookupContaining(uint64_t addr) {
  if (root_ == nullptr) {
    return std::nullopt;
  }
  Splay(addr);
  if (Compare(addr, root_->range) == 0) {
    return root_->range;
  }
  return std::nullopt;
}

std::optional<ObjectRange> SplayTree::LookupStart(uint64_t start) {
  if (root_ == nullptr) {
    return std::nullopt;
  }
  Splay(start);
  if (root_->range.start == start) {
    return root_->range;
  }
  return std::nullopt;
}

}  // namespace sva::runtime
