// Shared definitions for run-time safety check outcomes and statistics.
#ifndef SVA_SRC_RUNTIME_CHECKS_H_
#define SVA_SRC_RUNTIME_CHECKS_H_

#include <cstdint>
#include <string>

namespace sva::runtime {

enum class CheckKind {
  kBounds,        // array bounds / object containment (Section 4.5 check 1)
  kLoadStore,     // non-TH pool membership (check 2)
  kIndirectCall,  // callee in call-graph target set (check 3)
  kIllegalFree,   // free of a non-live or interior pointer (T5)
  kRegistration,  // double registration / overlapping object
};

const char* CheckKindName(CheckKind kind);

// One detected safety violation.
struct Violation {
  CheckKind kind = CheckKind::kBounds;
  std::string pool;
  uint64_t address = 0;  // The offending pointer.
  uint64_t aux = 0;      // Source pointer / target-set id, kind-specific.
  std::string detail;
};

// Counters kept per runtime, split by check kind. "Reduced" counts checks
// that were skipped or weakened because the metapool is incomplete
// (Section 4.5) — the sole source of false negatives in SVA.
struct CheckStats {
  uint64_t bounds_performed = 0;
  uint64_t bounds_failed = 0;
  uint64_t loadstore_performed = 0;
  uint64_t loadstore_failed = 0;
  uint64_t indirect_performed = 0;
  uint64_t indirect_failed = 0;
  uint64_t frees_checked = 0;
  uint64_t frees_failed = 0;
  uint64_t reduced_checks = 0;
  uint64_t registrations = 0;
  uint64_t drops = 0;
  // Hot-path fast-path counters, aggregated over all pools' splay trees:
  // lookups absorbed by the per-pool object cache, lookups that fell
  // through to the tree, and total splay comparisons/rotations performed
  // (cache probes are not comparisons).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t splay_comparisons = 0;
  uint64_t splay_rotations = 0;

  uint64_t total_performed() const {
    return bounds_performed + loadstore_performed + indirect_performed +
           frees_checked;
  }
  uint64_t total_failed() const {
    return bounds_failed + loadstore_failed + indirect_failed + frees_failed;
  }
  uint64_t cache_lookups() const { return cache_hits + cache_misses; }
  // Hit rate in [0,1]; 0 when the cache was never consulted.
  double cache_hit_rate() const {
    uint64_t lookups = cache_lookups();
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

}  // namespace sva::runtime

#endif  // SVA_SRC_RUNTIME_CHECKS_H_
