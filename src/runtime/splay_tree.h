// The per-metapool splay tree of Section 4.5: each metapool records the
// address ranges of all registered objects in a self-adjusting binary search
// tree, so that bounds and load-store checks amortize to the cost of a few
// comparisons on the hot path (the key insight SAFECode takes from the
// Jones-Kelly bounds checker and makes fast by splitting trees per pool).
//
// Keys are byte ranges [start, start+size). Ranges never overlap; attempting
// to insert an overlapping range fails (the caller reports a double
// registration). Lookup by containing address splays the found node to the
// root, which is what makes repeated checks on the same object cheap.
#ifndef SVA_SRC_RUNTIME_SPLAY_TREE_H_
#define SVA_SRC_RUNTIME_SPLAY_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/runtime/lookup_cache.h"

namespace sva::runtime {

struct ObjectRange {
  uint64_t start = 0;
  uint64_t size = 0;
  // Exclusive end, saturated: a range abutting the top of the 64-bit
  // address space (e.g. a RegisterUserspace object) reports UINT64_MAX
  // instead of wrapping to 0.
  uint64_t end() const {
    uint64_t e = start + size;
    return e < start ? UINT64_MAX : e;
  }
  // Unsigned-safe containment (no start+size arithmetic that can wrap).
  bool Contains(uint64_t addr) const {
    return addr >= start && addr - start < size;
  }
  // Containment as the check path defines it: a zero-size object occupies
  // exactly its start address.
  bool ContainsForLookup(uint64_t addr) const {
    return size == 0 ? addr == start : Contains(addr);
  }
};

using LookupCache = LookupCacheT<ObjectRange>;

class SplayTree {
 public:
  SplayTree() = default;
  ~SplayTree();
  SplayTree(const SplayTree&) = delete;
  SplayTree& operator=(const SplayTree&) = delete;
  SplayTree(SplayTree&& other) noexcept
      : root_(other.root_),
        size_(other.size_),
        cache_(other.cache_),
        cache_enabled_(other.cache_enabled_),
        comparisons_(other.comparisons_),
        cache_hits_(other.cache_hits_),
        cache_misses_(other.cache_misses_) {
    other.root_ = nullptr;
    other.size_ = 0;
    other.cache_.Reset();
    other.comparisons_ = 0;
    other.cache_hits_ = 0;
    other.cache_misses_ = 0;
  }

  // Inserts [start, start+size). Returns false if it would overlap an
  // existing range (including an exact duplicate). Zero-size ranges occupy
  // one conceptual point and are stored with size 0.
  bool Insert(uint64_t start, uint64_t size);

  // Removes the range that starts exactly at `start`. Returns the removed
  // range, or nullopt if no range starts there (an illegal free).
  std::optional<ObjectRange> RemoveAt(uint64_t start);

  // Finds the range containing `addr`. Consults the lookup cache first;
  // on a cache miss, splays the found node to the root and caches it.
  std::optional<ObjectRange> LookupContaining(uint64_t addr);

  // Finds the range with the given exact start (cache consult + splaying).
  std::optional<ObjectRange> LookupStart(uint64_t start);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  // Enables/disables the front-end lookup cache (enabled by default).
  // Disabling drops all cached entries, so re-enabling starts cold.
  void set_cache_enabled(bool enabled) {
    cache_enabled_ = enabled;
    cache_.Reset();
  }
  bool cache_enabled() const { return cache_enabled_; }

  // Cumulative counters for the benchmark harness. Comparisons count splay
  // steps only; cache probes are not comparisons.
  uint64_t comparisons() const { return comparisons_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  void ResetStats() {
    comparisons_ = 0;
    cache_hits_ = 0;
    cache_misses_ = 0;
  }

 private:
  struct Node {
    ObjectRange range;
    Node* left = nullptr;
    Node* right = nullptr;
  };

  // Top-down splay: moves the node whose range contains (or is nearest to)
  // `addr` to the root.
  void Splay(uint64_t addr);
  // -1 if addr before range, 0 if inside (or equal for empty), +1 if after.
  int Compare(uint64_t addr, const ObjectRange& range);
  static void DeleteSubtree(Node* n);

  Node* root_ = nullptr;
  size_t size_ = 0;
  LookupCache cache_;
  bool cache_enabled_ = true;
  uint64_t comparisons_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace sva::runtime

#endif  // SVA_SRC_RUNTIME_SPLAY_TREE_H_
