// The per-metapool splay tree of Section 4.5: each metapool records the
// address ranges of all registered objects in a self-adjusting binary search
// tree, so that bounds and load-store checks amortize to the cost of a few
// comparisons on the hot path (the key insight SAFECode takes from the
// Jones-Kelly bounds checker and makes fast by splitting trees per pool).
//
// Keys are byte ranges [start, start+size). Ranges never overlap; attempting
// to insert an overlapping range fails (the caller reports a double
// registration). Lookup by containing address splays the found node to the
// root, which is what makes repeated checks on the same object cheap.
//
// The tree itself is single-writer: MetaPool shards its registry over
// several trees (one per address stripe) and guards each with its own lock;
// the object-lookup cache that used to front this tree is now per-thread
// and lives in metapool_runtime.cc.
#ifndef SVA_SRC_RUNTIME_SPLAY_TREE_H_
#define SVA_SRC_RUNTIME_SPLAY_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>

namespace sva::runtime {

struct ObjectRange {
  uint64_t start = 0;
  uint64_t size = 0;
  // Exclusive end, saturated: a range abutting the top of the 64-bit
  // address space (e.g. a RegisterUserspace object) reports UINT64_MAX
  // instead of wrapping to 0.
  uint64_t end() const {
    uint64_t e = start + size;
    return e < start ? UINT64_MAX : e;
  }
  // Unsigned-safe containment (no start+size arithmetic that can wrap).
  bool Contains(uint64_t addr) const {
    return addr >= start && addr - start < size;
  }
  // Containment as the check path defines it: a zero-size object occupies
  // exactly its start address.
  bool ContainsForLookup(uint64_t addr) const {
    return size == 0 ? addr == start : Contains(addr);
  }
};

class SplayTree {
 public:
  SplayTree() = default;
  ~SplayTree();
  SplayTree(const SplayTree&) = delete;
  SplayTree& operator=(const SplayTree&) = delete;
  SplayTree(SplayTree&& other) noexcept
      : root_(other.root_),
        size_(other.size_),
        comparisons_(other.comparisons_),
        rotations_(other.rotations_) {
    other.root_ = nullptr;
    other.size_ = 0;
    other.comparisons_ = 0;
    other.rotations_ = 0;
  }

  // Inserts [start, start+size). Returns false if it would overlap an
  // existing range (including an exact duplicate). Zero-size ranges occupy
  // one conceptual point and are stored with size 0.
  bool Insert(uint64_t start, uint64_t size);

  // Removes the range that starts exactly at `start`. Returns the removed
  // range, or nullopt if no range starts there (an illegal free).
  std::optional<ObjectRange> RemoveAt(uint64_t start);

  // Like RemoveAt, but hands the detached node back through `node_out`
  // (untyped, because Node is private) instead of deleting it, so the
  // caller can defer the free through the epoch machinery (MetaPool
  // retires replaced nodes past a grace period; see docs/CONCURRENCY.md
  // §5). Pass the pointer to FreeNode when the grace period ends.
  // `*node_out` is left null when nothing starts at `start`.
  std::optional<ObjectRange> ExtractAt(uint64_t start, void** node_out);
  static void FreeNode(void* node);

  // Finds the range containing `addr`, splaying the found node to the root.
  std::optional<ObjectRange> LookupContaining(uint64_t addr);

  // Finds the range with the given exact start (splaying).
  std::optional<ObjectRange> LookupStart(uint64_t start);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  // Cumulative splay-step comparison / rotation counts for the benchmark
  // harness and the trace subsystem.
  uint64_t comparisons() const { return comparisons_; }
  uint64_t rotations() const { return rotations_; }
  void ResetStats() {
    comparisons_ = 0;
    rotations_ = 0;
  }

 private:
  struct Node {
    ObjectRange range;
    Node* left = nullptr;
    Node* right = nullptr;
  };

  // Top-down splay: moves the node whose range contains (or is nearest to)
  // `addr` to the root.
  void Splay(uint64_t addr);
  // -1 if addr before range, 0 if inside (or equal for empty), +1 if after.
  int Compare(uint64_t addr, const ObjectRange& range);
  static void DeleteSubtree(Node* n);

  Node* root_ = nullptr;
  size_t size_ = 0;
  uint64_t comparisons_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace sva::runtime

#endif  // SVA_SRC_RUNTIME_SPLAY_TREE_H_
