#include "src/runtime/metapool_runtime.h"

#include <algorithm>

#include "src/support/strings.h"

namespace sva::runtime {

const char* CheckKindName(CheckKind kind) {
  switch (kind) {
    case CheckKind::kBounds:
      return "bounds";
    case CheckKind::kLoadStore:
      return "load-store";
    case CheckKind::kIndirectCall:
      return "indirect-call";
    case CheckKind::kIllegalFree:
      return "illegal-free";
    case CheckKind::kRegistration:
      return "registration";
  }
  return "unknown";
}

MetaPool* MetaPoolRuntime::CreatePool(const std::string& name,
                                      bool type_homogeneous,
                                      uint64_t element_size, bool complete) {
  auto pool = std::make_unique<MetaPool>(name, type_homogeneous, element_size,
                                         complete);
  MetaPool* raw = pool.get();
  raw->tree().set_cache_enabled(lookup_cache_enabled_);
  pools_[name] = std::move(pool);
  return raw;
}

void MetaPoolRuntime::set_lookup_cache_enabled(bool enabled) {
  lookup_cache_enabled_ = enabled;
  for (auto& [name, pool] : pools_) {
    pool->tree().set_cache_enabled(enabled);
  }
}

const CheckStats& MetaPoolRuntime::stats() const {
  stats_.cache_hits = 0;
  stats_.cache_misses = 0;
  stats_.splay_comparisons = 0;
  for (const auto& [name, pool] : pools_) {
    const SplayTree& tree = pool->tree();
    stats_.cache_hits += tree.cache_hits();
    stats_.cache_misses += tree.cache_misses();
    stats_.splay_comparisons += tree.comparisons();
  }
  return stats_;
}

void MetaPoolRuntime::ResetStats() {
  stats_ = CheckStats{};
  for (auto& [name, pool] : pools_) {
    pool->tree().ResetStats();
  }
}

MetaPool* MetaPoolRuntime::FindPool(const std::string& name) const {
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : it->second.get();
}

MetaPool* MetaPoolRuntime::GetPool(const std::string& name,
                                   bool type_homogeneous,
                                   uint64_t element_size, bool complete) {
  if (MetaPool* p = FindPool(name)) {
    return p;
  }
  return CreatePool(name, type_homogeneous, element_size, complete);
}

Status MetaPoolRuntime::Fail(CheckKind kind, const MetaPool* pool,
                             uint64_t address, uint64_t aux,
                             std::string detail) {
  Violation v;
  v.kind = kind;
  v.pool = pool != nullptr ? pool->name() : "";
  v.address = address;
  v.aux = aux;
  v.detail = std::move(detail);
  violations_.push_back(v);
  if (mode_ == EnforcementMode::kRecord) {
    return OkStatus();
  }
  return SafetyViolation(StrCat(CheckKindName(kind), " check failed in pool ",
                                v.pool, " at 0x", std::hex, address, ": ",
                                violations_.back().detail));
}

Status MetaPoolRuntime::RegisterObject(MetaPool& pool, uint64_t start,
                                       uint64_t size) {
  ++stats_.registrations;
  if (!pool.tree().Insert(start, size)) {
    return Fail(CheckKind::kRegistration, &pool, start, size,
                "object overlaps an already-registered object");
  }
  return OkStatus();
}

Status MetaPoolRuntime::DropObject(MetaPool& pool, uint64_t start) {
  ++stats_.drops;
  ++stats_.frees_checked;
  std::optional<ObjectRange> removed = pool.tree().RemoveAt(start);
  if (!removed.has_value()) {
    ++stats_.frees_failed;
    return Fail(CheckKind::kIllegalFree, &pool, start, 0,
                "free of pointer that is not the start of a live object");
  }
  return OkStatus();
}

Status MetaPoolRuntime::RegisterUserspace(MetaPool& pool, uint64_t user_base,
                                          uint64_t user_size) {
  // Idempotent: re-registering the exact same userspace object is harmless.
  std::optional<ObjectRange> existing = pool.tree().LookupStart(user_base);
  if (existing.has_value()) {
    if (existing->size == user_size) {
      return OkStatus();
    }
    return Fail(CheckKind::kRegistration, &pool, user_base, user_size,
                "userspace range conflicts with a differently-sized object "
                "registered at the same base");
  }
  if (pool.tree().Insert(user_base, user_size)) {
    return OkStatus();
  }
  // A partial overlap with an existing object: previously this was silently
  // dropped, leaving userspace unregistered so that later syscall-argument
  // bounds checks failed spuriously.
  return Fail(CheckKind::kRegistration, &pool, user_base, user_size,
              "userspace range partially overlaps a registered object");
}

Status MetaPoolRuntime::BoundsCheck(MetaPool& pool, uint64_t src,
                                    uint64_t derived) {
  ++stats_.bounds_performed;
  std::optional<ObjectRange> obj = pool.tree().LookupContaining(src);
  if (obj.has_value()) {
    if (obj->Contains(derived)) {
      return OkStatus();
    }
    ++stats_.bounds_failed;
    return Fail(CheckKind::kBounds, &pool, derived, src,
                StrCat("derived pointer escapes object [0x", std::hex,
                       obj->start, ", 0x", obj->end(), ")"));
  }
  if (!pool.complete()) {
    // Reduced check (Section 4.5): the source may be a legal unregistered
    // external object. If the *derived* pointer lands inside some other
    // registered object, the indexing crossed an object boundary — fail.
    ++stats_.reduced_checks;
    std::optional<ObjectRange> hit = pool.tree().LookupContaining(derived);
    if (hit.has_value() && !hit->Contains(src)) {
      ++stats_.bounds_failed;
      return Fail(CheckKind::kBounds, &pool, derived, src,
                  "indexing from unregistered source into a registered "
                  "object");
    }
    return OkStatus();
  }
  ++stats_.bounds_failed;
  return Fail(CheckKind::kBounds, &pool, derived, src,
              "source pointer not registered in its metapool");
}

Status MetaPoolRuntime::BoundsCheckDirect(uint64_t start, uint64_t derived,
                                          uint64_t end) {
  ++stats_.bounds_performed;
  if (derived >= start && derived < end) {
    return OkStatus();
  }
  ++stats_.bounds_failed;
  return Fail(CheckKind::kBounds, nullptr, derived, start,
              StrCat("derived pointer outside static bounds [0x", std::hex,
                     start, ", 0x", end, ")"));
}

std::optional<ObjectRange> MetaPoolRuntime::GetBounds(MetaPool& pool,
                                                      uint64_t addr) {
  return pool.tree().LookupContaining(addr);
}

Status MetaPoolRuntime::LoadStoreCheck(MetaPool& pool, uint64_t addr) {
  if (!pool.complete()) {
    // No load-store checks are possible on incomplete partitions (I2).
    ++stats_.reduced_checks;
    return OkStatus();
  }
  ++stats_.loadstore_performed;
  if (pool.tree().LookupContaining(addr).has_value()) {
    return OkStatus();
  }
  ++stats_.loadstore_failed;
  return Fail(CheckKind::kLoadStore, &pool, addr, 0,
              "pointer does not reference a registered object of its "
              "metapool");
}

uint64_t MetaPoolRuntime::RegisterTargetSet(std::vector<uint64_t> targets) {
  std::sort(targets.begin(), targets.end());
  target_sets_.push_back(std::move(targets));
  return target_sets_.size() - 1;
}

Status MetaPoolRuntime::IndirectCallCheck(uint64_t fp, uint64_t set_id) {
  ++stats_.indirect_performed;
  if (set_id < target_sets_.size()) {
    const std::vector<uint64_t>& set = target_sets_[set_id];
    if (std::binary_search(set.begin(), set.end(), fp)) {
      return OkStatus();
    }
  }
  ++stats_.indirect_failed;
  return Fail(CheckKind::kIndirectCall, nullptr, fp, set_id,
              "indirect call target not in the compiler-computed callee set");
}

}  // namespace sva::runtime
