#include "src/runtime/metapool_runtime.h"

#include <algorithm>
#include <vector>

#include "src/smp/epoch.h"
#include "src/support/strings.h"
#include "src/trace/trace.h"

namespace sva::runtime {

const char* CheckKindName(CheckKind kind) {
  switch (kind) {
    case CheckKind::kBounds:
      return "bounds";
    case CheckKind::kLoadStore:
      return "load-store";
    case CheckKind::kIndirectCall:
      return "indirect-call";
    case CheckKind::kIllegalFree:
      return "illegal-free";
    case CheckKind::kRegistration:
      return "registration";
  }
  return "unknown";
}

namespace {

// --- Per-thread object-lookup cache ----------------------------------------
//
// Each thread keeps a small table of per-pool caches keyed by the pool's
// globally unique cache id (direct-mapped; a collision merely evicts, a
// perf event, never a correctness one). An entry records the pool
// generation observed before the locked tree lookup that produced it; the
// probe re-reads the pool's generation and refuses any older entry. Since a
// drop bumps the generation only after the removal leaves the tree, an
// entry describing a dropped object is always generation-stale by the time
// the drop returns — no locks on the hit path.
struct TlsPoolCache {
  uint64_t pool_id = 0;  // 0 = empty slot.
  uint64_t generation = 0;
  // Global epoch in which `generation` was last verified against the pool.
  // While the epoch has not advanced, TlsProbe skips the generation
  // acquire load entirely (see the soundness argument there).
  uint64_t epoch = 0;
  LookupCache cache;
};

constexpr size_t kTlsPoolCacheSlots = 32;
thread_local std::array<TlsPoolCache, kTlsPoolCacheSlots> tls_pool_caches;

// Pool cache ids are never recycled, so a stale TLS slot can never be
// mistaken for a newly created pool occupying the same slot.
std::atomic<uint64_t> next_pool_cache_id{1};

uint64_t LoadCounter(const uint64_t& counter) {
  return std::atomic_ref<const uint64_t>(counter).load(
      std::memory_order_relaxed);
}

void StoreCounter(uint64_t& counter, uint64_t value) {
  std::atomic_ref<uint64_t>(counter).store(value, std::memory_order_relaxed);
}

}  // namespace

// --- MetaPool ---------------------------------------------------------------

MetaPool::MetaPool(std::string name, bool type_homogeneous,
                   uint64_t element_size, bool complete)
    : name_(std::move(name)),
      type_homogeneous_(type_homogeneous),
      element_size_(element_size),
      complete_(complete),
      cache_id_(next_pool_cache_id.fetch_add(1, std::memory_order_relaxed)) {}

uint32_t MetaPool::StripeMaskFor(uint64_t start, uint64_t size) {
  constexpr uint32_t kAllStripes = (1u << kNumStripes) - 1;
  uint64_t first = start >> kStripeShift;
  uint64_t last = first;
  if (size != 0) {
    uint64_t len = size - 1;
    uint64_t end_inclusive =
        start > UINT64_MAX - len ? UINT64_MAX : start + len;
    last = end_inclusive >> kStripeShift;
  }
  if (last - first >= kNumStripes - 1) {
    return kAllStripes;
  }
  uint32_t mask = 0;
  for (uint64_t w = first;; ++w) {
    mask |= 1u << (w & (kNumStripes - 1));
    if (w == last) {
      break;
    }
  }
  return mask;
}

namespace {
// Locks the masked stripes in ascending index order (the repo-wide stripe
// lock order; see DESIGN.md §SMP) and releases them on destruction.
template <typename StripeArray>
class StripeMaskLock {
 public:
  StripeMaskLock(StripeArray& stripes, uint32_t mask)
      : stripes_(stripes), mask_(mask) {
    for (size_t i = 0; i < stripes_.size(); ++i) {
      if (mask_ & (1u << i)) {
        stripes_[i].lock.lock();
      }
    }
  }
  ~StripeMaskLock() {
    for (size_t i = 0; i < stripes_.size(); ++i) {
      if (mask_ & (1u << i)) {
        stripes_[i].lock.unlock();
      }
    }
  }
  StripeMaskLock(const StripeMaskLock&) = delete;
  StripeMaskLock& operator=(const StripeMaskLock&) = delete;

 private:
  StripeArray& stripes_;
  const uint32_t mask_;
};
}  // namespace

bool MetaPool::RegisterRange(uint64_t start, uint64_t size) {
  const uint32_t mask = StripeMaskFor(start, size);
  StripeMaskLock guard(stripes_, mask);
  // Any live range overlapping [start, end] shares an address window with
  // it, so the overlap surfaces as an Insert failure in one of the masked
  // stripes; partially completed inserts are rolled back.
  uint32_t inserted = 0;
  for (size_t i = 0; i < kNumStripes; ++i) {
    if ((mask & (1u << i)) == 0) {
      continue;
    }
    if (!stripes_[i].tree.Insert(start, size)) {
      for (size_t j = 0; j < i; ++j) {
        if (inserted & (1u << j)) {
          stripes_[j].tree.RemoveAt(start);
        }
      }
      return false;
    }
    inserted |= 1u << i;
  }
  live_objects_.fetch_add(1, std::memory_order_release);
  return true;
}

std::optional<ObjectRange> MetaPool::RemoveStart(uint64_t start) {
  constexpr uint32_t kAllStripes = (1u << kNumStripes) - 1;
  std::optional<ObjectRange> removed;
  // The detached splay nodes outlive the removal by a grace period
  // (shared_ptr because std::function requires a copyable callable).
  auto detached = std::make_shared<std::vector<void*>>();
  {
    // Drops are rare next to checks: take every stripe, so the removal is
    // atomic with respect to lookups without a two-phase size probe.
    StripeMaskLock guard(stripes_, kAllStripes);
    void* node = nullptr;
    removed = stripes_[StripeFor(start)].tree.ExtractAt(start, &node);
    if (!removed.has_value()) {
      return std::nullopt;
    }
    if (node != nullptr) {
      detached->push_back(node);
    }
    const uint32_t mask = StripeMaskFor(removed->start, removed->size);
    for (size_t i = 0; i < kNumStripes; ++i) {
      if (i != StripeFor(start) && (mask & (1u << i)) != 0) {
        node = nullptr;
        stripes_[i].tree.ExtractAt(start, &node);
        if (node != nullptr) {
          detached->push_back(node);
        }
      }
    }
    live_objects_.fetch_sub(1, std::memory_order_release);
    // The per-thread cache contract: bump only after the trees no longer
    // hold the object, so every cached copy of it is generation-stale from
    // here on. Other threads' epoch-fresh entries may still serve it until
    // the next epoch advance — see TlsProbe for why that is sound.
    generation_.fetch_add(1, std::memory_order_release);
  }
  // Same-thread drop-then-check must miss immediately, not at the next
  // epoch boundary: kill this thread's own slot for the pool.
  TlsPoolCache& slot = tls_pool_caches[cache_id_ % kTlsPoolCacheSlots];
  if (slot.pool_id == cache_id_) {
    slot.pool_id = 0;
  }
  smp::EpochDomain::Global().Retire([detached] {
    for (void* node : *detached) {
      SplayTree::FreeNode(node);
    }
  });
  return removed;
}

const ObjectRange* MetaPool::TlsProbe(uint64_t addr) const {
  TlsPoolCache& slot = tls_pool_caches[cache_id_ % kTlsPoolCacheSlots];
  if (slot.pool_id != cache_id_) {
    return nullptr;
  }
  // Epoch-fresh fast path (docs/CONCURRENCY.md §5): a slot whose generation
  // was verified in the current global epoch skips the pool-generation
  // acquire load — the hot check path becomes one relaxed epoch load plus
  // the TLS cache probe. Soundness: every drop retires its memory through
  // the same epoch machinery, and a retiree from epoch E is reclaimed only
  // once the global epoch reaches E+2; a hit served here is stale by less
  // than one epoch, so it can only approve access to memory that is still
  // intact. RemoveStart additionally self-invalidates the dropping
  // thread's own slot, so a same-thread drop-then-check misses
  // deterministically, with no epoch lag.
  const uint64_t now = smp::EpochDomain::Global().epoch();
  if (slot.epoch != now) {
    if (slot.generation != generation_.load(std::memory_order_acquire)) {
      return nullptr;
    }
    slot.epoch = now;  // Verified: fresh for the rest of this epoch.
  }
  return slot.cache.Find(addr);
}

void MetaPool::TlsFill(uint64_t generation, const ObjectRange& range) {
  TlsPoolCache& slot = tls_pool_caches[cache_id_ % kTlsPoolCacheSlots];
  if (slot.pool_id != cache_id_ || slot.generation != generation) {
    slot.pool_id = cache_id_;
    slot.generation = generation;
    slot.cache.Reset();
  }
  // Tag with the fill-time epoch: drops that raced the locked lookup are at
  // most epoch-current, so their memory outlives every hit this tag can
  // authorize (same argument as in TlsProbe).
  slot.epoch = smp::EpochDomain::Global().epoch();
  slot.cache.Remember(range);
}

std::optional<ObjectRange> MetaPool::Lookup(uint64_t addr) {
  const bool use_cache = cache_enabled();
  if (use_cache) {
    if (const ObjectRange* hit = TlsProbe(addr)) {
      cache_hits_.Add();
      trace::Emit(trace::EventId::kCacheHit, addr);
      return *hit;
    }
  }
  if (live_objects_.load(std::memory_order_acquire) == 0) {
    return std::nullopt;  // Empty pool: no miss is charged (cold registry).
  }
  if (use_cache) {
    cache_misses_.Add();
    trace::Emit(trace::EventId::kCacheMiss, addr);
  }
  // Read the generation before the locked lookup: if a drop races in after
  // this point it bumps the generation past `gen`, so whatever we cache
  // below is already stale and can never serve the dropped object.
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  Stripe& stripe = stripes_[StripeFor(addr)];
  std::optional<ObjectRange> found;
  uint64_t rotation_delta = 0;
  {
    std::lock_guard<smp::SpinLock> guard(stripe.lock);
    uint64_t rotations_before = stripe.tree.rotations();
    found = stripe.tree.LookupContaining(addr);
    rotation_delta = stripe.tree.rotations() - rotations_before;
  }
  if (rotation_delta != 0) {
    trace::Emit(trace::EventId::kSplayRotation, rotation_delta);
  }
  if (found.has_value() && use_cache) {
    TlsFill(gen, *found);
  }
  return found;
}

std::optional<ObjectRange> MetaPool::LookupStart(uint64_t start) {
  const bool use_cache = cache_enabled();
  if (use_cache) {
    // Exact-start lookups can only be served by an entry starting there.
    const ObjectRange* hit = TlsProbe(start);
    if (hit != nullptr && hit->start == start) {
      cache_hits_.Add();
      return *hit;
    }
  }
  if (live_objects_.load(std::memory_order_acquire) == 0) {
    return std::nullopt;
  }
  if (use_cache) {
    cache_misses_.Add();
  }
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  Stripe& stripe = stripes_[StripeFor(start)];
  std::optional<ObjectRange> found;
  {
    std::lock_guard<smp::SpinLock> guard(stripe.lock);
    found = stripe.tree.LookupStart(start);
  }
  if (found.has_value() && use_cache) {
    TlsFill(gen, *found);
  }
  return found;
}

void MetaPool::set_cache_enabled(bool enabled) {
  cache_enabled_.store(enabled, std::memory_order_relaxed);
  // Start cold on any toggle: bumping the generation invalidates every
  // thread's entries for this pool.
  generation_.fetch_add(1, std::memory_order_release);
}

uint64_t MetaPool::comparisons() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<smp::SpinLock> guard(stripe.lock);
    total += stripe.tree.comparisons();
  }
  return total;
}

uint64_t MetaPool::rotations() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<smp::SpinLock> guard(stripe.lock);
    total += stripe.tree.rotations();
  }
  return total;
}

void MetaPool::ResetStats() {
  cache_hits_.Reset();
  cache_misses_.Reset();
  for (Stripe& stripe : stripes_) {
    std::lock_guard<smp::SpinLock> guard(stripe.lock);
    stripe.tree.ResetStats();
  }
}

// --- MetaPoolRuntime --------------------------------------------------------

MetaPool* MetaPoolRuntime::CreatePool(const std::string& name,
                                      bool type_homogeneous,
                                      uint64_t element_size, bool complete) {
  auto pool = std::make_unique<MetaPool>(name, type_homogeneous, element_size,
                                         complete);
  MetaPool* raw = pool.get();
  std::lock_guard<smp::SpinLock> guard(pools_lock_);
  raw->set_cache_enabled(lookup_cache_enabled_);
  pools_[name] = std::move(pool);
  return raw;
}

void MetaPoolRuntime::set_lookup_cache_enabled(bool enabled) {
  std::lock_guard<smp::SpinLock> guard(pools_lock_);
  lookup_cache_enabled_ = enabled;
  for (auto& [name, pool] : pools_) {
    pool->set_cache_enabled(enabled);
  }
}

const CheckStats& MetaPoolRuntime::stats() const {
  CheckStats total;
  stats_shards_.ForEach([&total](const CheckStats& shard) {
    total.bounds_performed += LoadCounter(shard.bounds_performed);
    total.bounds_failed += LoadCounter(shard.bounds_failed);
    total.loadstore_performed += LoadCounter(shard.loadstore_performed);
    total.loadstore_failed += LoadCounter(shard.loadstore_failed);
    total.indirect_performed += LoadCounter(shard.indirect_performed);
    total.indirect_failed += LoadCounter(shard.indirect_failed);
    total.frees_checked += LoadCounter(shard.frees_checked);
    total.frees_failed += LoadCounter(shard.frees_failed);
    total.reduced_checks += LoadCounter(shard.reduced_checks);
    total.registrations += LoadCounter(shard.registrations);
    total.drops += LoadCounter(shard.drops);
  });
  {
    std::lock_guard<smp::SpinLock> guard(pools_lock_);
    for (const auto& [name, pool] : pools_) {
      total.cache_hits += pool->cache_hits();
      total.cache_misses += pool->cache_misses();
      total.splay_comparisons += pool->comparisons();
      total.splay_rotations += pool->rotations();
    }
  }
  stats_ = total;
  return stats_;
}

void MetaPoolRuntime::ResetStats() {
  stats_shards_.ForEachMutable([](CheckStats& shard) {
    StoreCounter(shard.bounds_performed, 0);
    StoreCounter(shard.bounds_failed, 0);
    StoreCounter(shard.loadstore_performed, 0);
    StoreCounter(shard.loadstore_failed, 0);
    StoreCounter(shard.indirect_performed, 0);
    StoreCounter(shard.indirect_failed, 0);
    StoreCounter(shard.frees_checked, 0);
    StoreCounter(shard.frees_failed, 0);
    StoreCounter(shard.reduced_checks, 0);
    StoreCounter(shard.registrations, 0);
    StoreCounter(shard.drops, 0);
  });
  stats_ = CheckStats{};
  std::lock_guard<smp::SpinLock> guard(pools_lock_);
  for (auto& [name, pool] : pools_) {
    pool->ResetStats();
  }
}

void MetaPoolRuntime::ClearViolations() {
  std::lock_guard<smp::SpinLock> guard(violations_lock_);
  violations_.clear();
}

MetaPool* MetaPoolRuntime::FindPool(const std::string& name) const {
  std::lock_guard<smp::SpinLock> guard(pools_lock_);
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : it->second.get();
}

MetaPool* MetaPoolRuntime::GetPool(const std::string& name,
                                   bool type_homogeneous,
                                   uint64_t element_size, bool complete) {
  if (MetaPool* p = FindPool(name)) {
    return p;
  }
  return CreatePool(name, type_homogeneous, element_size, complete);
}

Status MetaPoolRuntime::Fail(CheckKind kind, const MetaPool* pool,
                             uint64_t address, uint64_t aux,
                             std::string detail) {
  Violation v;
  v.kind = kind;
  v.pool = pool != nullptr ? pool->name() : "";
  v.address = address;
  v.aux = aux;
  v.detail = std::move(detail);
  {
    std::lock_guard<smp::SpinLock> guard(violations_lock_);
    violations_.push_back(v);
  }
  if (mode_ == EnforcementMode::kRecord) {
    return OkStatus();
  }
  return SafetyViolation(StrCat(CheckKindName(kind), " check failed in pool ",
                                v.pool, " at 0x", std::hex, address, ": ",
                                v.detail));
}

Status MetaPoolRuntime::RegisterObject(MetaPool& pool, uint64_t start,
                                       uint64_t size) {
  Bump(Shard().registrations);
  trace::Emit(trace::EventId::kPchkRegObj, start, size);
  if (!pool.RegisterRange(start, size)) {
    return Fail(CheckKind::kRegistration, &pool, start, size,
                "object overlaps an already-registered object");
  }
  return OkStatus();
}

Status MetaPoolRuntime::DropObject(MetaPool& pool, uint64_t start) {
  CheckStats& shard = Shard();
  Bump(shard.drops);
  Bump(shard.frees_checked);
  trace::Emit(trace::EventId::kPchkDropObj, start);
  std::optional<ObjectRange> removed = pool.RemoveStart(start);
  if (!removed.has_value()) {
    Bump(shard.frees_failed);
    return Fail(CheckKind::kIllegalFree, &pool, start, 0,
                "free of pointer that is not the start of a live object");
  }
  return OkStatus();
}

Status MetaPoolRuntime::RegisterUserspace(MetaPool& pool, uint64_t user_base,
                                          uint64_t user_size) {
  // Idempotent: re-registering the exact same userspace object is harmless.
  std::optional<ObjectRange> existing = pool.LookupStart(user_base);
  if (existing.has_value()) {
    if (existing->size == user_size) {
      return OkStatus();
    }
    return Fail(CheckKind::kRegistration, &pool, user_base, user_size,
                "userspace range conflicts with a differently-sized object "
                "registered at the same base");
  }
  if (pool.RegisterRange(user_base, user_size)) {
    return OkStatus();
  }
  // A partial overlap with an existing object: previously this was silently
  // dropped, leaving userspace unregistered so that later syscall-argument
  // bounds checks failed spuriously.
  return Fail(CheckKind::kRegistration, &pool, user_base, user_size,
              "userspace range partially overlaps a registered object");
}

Status MetaPoolRuntime::BoundsCheck(MetaPool& pool, uint64_t src,
                                    uint64_t derived) {
  trace::Span span(trace::EventId::kBoundsCheck,
                   trace::HistId::kBoundsCheckNs, src, derived);
  Bump(Shard().bounds_performed);
  std::optional<ObjectRange> obj = pool.Lookup(src);
  if (obj.has_value()) {
    if (obj->Contains(derived)) {
      return OkStatus();
    }
    Bump(Shard().bounds_failed);
    return Fail(CheckKind::kBounds, &pool, derived, src,
                StrCat("derived pointer escapes object [0x", std::hex,
                       obj->start, ", 0x", obj->end(), ")"));
  }
  if (!pool.complete()) {
    // Reduced check (Section 4.5): the source may be a legal unregistered
    // external object. If the *derived* pointer lands inside some other
    // registered object, the indexing crossed an object boundary — fail.
    Bump(Shard().reduced_checks);
    std::optional<ObjectRange> hit = pool.Lookup(derived);
    if (hit.has_value() && !hit->Contains(src)) {
      Bump(Shard().bounds_failed);
      return Fail(CheckKind::kBounds, &pool, derived, src,
                  "indexing from unregistered source into a registered "
                  "object");
    }
    return OkStatus();
  }
  Bump(Shard().bounds_failed);
  return Fail(CheckKind::kBounds, &pool, derived, src,
              "source pointer not registered in its metapool");
}

Status MetaPoolRuntime::BoundsCheckDirect(uint64_t start, uint64_t derived,
                                          uint64_t end) {
  Bump(Shard().bounds_performed);
  if (derived >= start && derived < end) {
    return OkStatus();
  }
  Bump(Shard().bounds_failed);
  return Fail(CheckKind::kBounds, nullptr, derived, start,
              StrCat("derived pointer outside static bounds [0x", std::hex,
                     start, ", 0x", end, ")"));
}

std::optional<ObjectRange> MetaPoolRuntime::GetBounds(MetaPool& pool,
                                                      uint64_t addr) {
  return pool.Lookup(addr);
}

Status MetaPoolRuntime::LoadStoreCheck(MetaPool& pool, uint64_t addr) {
  trace::Span span(trace::EventId::kLoadStoreCheck,
                   trace::HistId::kLoadStoreCheckNs, addr);
  if (!pool.complete()) {
    // No load-store checks are possible on incomplete partitions (I2).
    Bump(Shard().reduced_checks);
    return OkStatus();
  }
  Bump(Shard().loadstore_performed);
  if (pool.Lookup(addr).has_value()) {
    return OkStatus();
  }
  Bump(Shard().loadstore_failed);
  return Fail(CheckKind::kLoadStore, &pool, addr, 0,
              "pointer does not reference a registered object of its "
              "metapool");
}

uint64_t MetaPoolRuntime::RegisterTargetSet(std::vector<uint64_t> targets) {
  std::sort(targets.begin(), targets.end());
  std::lock_guard<smp::SpinLock> guard(targets_lock_);
  target_sets_.push_back(std::move(targets));
  return target_sets_.size() - 1;
}

Status MetaPoolRuntime::IndirectCallCheck(uint64_t fp, uint64_t set_id) {
  trace::Span span(trace::EventId::kIndirectCallCheck,
                   trace::HistId::kIndirectCheckNs, fp, set_id);
  Bump(Shard().indirect_performed);
  {
    std::lock_guard<smp::SpinLock> guard(targets_lock_);
    if (set_id < target_sets_.size()) {
      const std::vector<uint64_t>& set = target_sets_[set_id];
      if (std::binary_search(set.begin(), set.end(), fp)) {
        return OkStatus();
      }
    }
  }
  Bump(Shard().indirect_failed);
  return Fail(CheckKind::kIndirectCall, nullptr, fp, set_id,
              "indirect call target not in the compiler-computed callee set");
}

}  // namespace sva::runtime
