// A small object-lookup cache placed in front of each metapool splay tree.
//
// Splay lookups amortize well but still pay a handful of pointer-chasing
// comparisons per check, and every hit mutates the tree (the splay itself).
// The SAFECode line of work front-ends the per-pool trees with a tiny cache
// of recently-hit object ranges for exactly this reason: kernel check
// streams are heavily skewed toward a few hot objects (the current stack
// frame, the buffer being copied, the inode being walked), so even a
// 2-4 entry direct-mapped cache absorbs most lookups before the tree is
// touched.
//
// Correctness contract (see DESIGN.md "Run-time check fast path"):
//  * Only ranges that are live in the tree may be cached (positive hits
//    only; negative results are never cached, so insertions need no
//    invalidation — a new object cannot overlap any cached live range).
//  * Every removal path must invalidate precisely: RemoveAt() invalidates
//    the entry with the removed start; Clear() resets the cache.
//  * A dropped-then-reregistered object at the same address must never
//    serve stale bounds; InvalidateStart() on the drop guarantees this.
#ifndef SVA_SRC_RUNTIME_LOOKUP_CACHE_H_
#define SVA_SRC_RUNTIME_LOOKUP_CACHE_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace sva::runtime {

// Forward range semantics shared with SplayTree: a zero-size object
// occupies exactly its start address; all comparisons are unsigned-safe
// (no start+size arithmetic that can wrap past UINT64_MAX).
template <typename Range>
class LookupCacheT {
 public:
  static constexpr size_t kWays = 4;

  // Returns the cached range containing `addr`, or nullptr on a miss.
  const Range* Find(uint64_t addr) const {
    for (size_t i = 0; i < kWays; ++i) {
      if (valid_[i] && Matches(entries_[i], addr)) {
        return &entries_[i];
      }
    }
    return nullptr;
  }

  // Records a range that was just found live in the tree. An entry with the
  // same start is overwritten in place (re-registration at the same address
  // after an invalidation); otherwise round-robin replacement.
  void Remember(const Range& range) {
    for (size_t i = 0; i < kWays; ++i) {
      if (valid_[i] && entries_[i].start == range.start) {
        entries_[i] = range;
        return;
      }
    }
    entries_[victim_] = range;
    valid_[victim_] = true;
    victim_ = (victim_ + 1) % kWays;
  }

  // Drops the entry whose range starts at `start` (object removal).
  void InvalidateStart(uint64_t start) {
    for (size_t i = 0; i < kWays; ++i) {
      if (valid_[i] && entries_[i].start == start) {
        valid_[i] = false;
      }
    }
  }

  // Drops everything (tree cleared or cache disabled).
  void Reset() {
    valid_.fill(false);
    victim_ = 0;
  }

 private:
  static bool Matches(const Range& r, uint64_t addr) {
    if (r.size == 0) {
      return addr == r.start;
    }
    return addr >= r.start && addr - r.start < r.size;
  }

  std::array<Range, kWays> entries_{};
  std::array<bool, kWays> valid_{};
  size_t victim_ = 0;
};

}  // namespace sva::runtime

#endif  // SVA_SRC_RUNTIME_LOOKUP_CACHE_H_
