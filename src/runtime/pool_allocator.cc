#include "src/runtime/pool_allocator.h"

#include "src/support/strings.h"

namespace sva::runtime {

namespace {
constexpr uint64_t kMinStride = 8;
}  // namespace

PoolAllocator::PoolAllocator(std::string name, uint64_t object_size,
                             PageProvider& pages)
    : name_(std::move(name)),
      object_size_(object_size == 0 ? 1 : object_size),
      pages_(pages) {
  stride_ = (object_size_ + kMinStride - 1) / kMinStride * kMinStride;
}

bool PoolAllocator::Grow() {
  uint64_t page = pages_.AllocatePage();
  if (page == 0) {
    return false;
  }
  ++pages_owned_;
  uint64_t count = pages_.page_size() / stride_;
  if (count == 0) {
    // Object larger than a page: allocate contiguous pages.
    uint64_t needed = (stride_ + pages_.page_size() - 1) / pages_.page_size();
    for (uint64_t i = 1; i < needed; ++i) {
      uint64_t next = pages_.AllocatePage();
      if (next == 0) {
        return false;
      }
      ++pages_owned_;
      // Pages from the simulated machine are contiguous by construction;
      // non-contiguous providers would need a vmalloc-style mapping here.
    }
    free_list_.push_back(page);
    return true;
  }
  for (uint64_t i = 0; i < count; ++i) {
    free_list_.push_back(page + i * stride_);
  }
  return true;
}

uint64_t PoolAllocator::Allocate() {
  if (free_list_.empty() && !Grow()) {
    return 0;
  }
  uint64_t addr = free_list_.back();
  free_list_.pop_back();
  live_.insert(addr);
  ++total_allocations_;
  return addr;
}

Status PoolAllocator::Free(uint64_t addr) {
  auto it = live_.find(addr);
  if (it == live_.end()) {
    return InvalidArgument(StrCat("pool ", name_, ": free of 0x", std::hex,
                                  addr, " which is not a live object"));
  }
  live_.erase(it);
  // Reuse stays within this pool: the address goes back on our own free
  // list and is never handed to another pool (SLAB_NO_REAP).
  free_list_.push_back(addr);
  return OkStatus();
}

OrdinaryAllocator::OrdinaryAllocator(PageProvider& pages) : pages_(pages) {
  // Linux-style geometric size classes.
  for (uint64_t size : {32ull, 64ull, 128ull, 256ull, 512ull, 1024ull,
                        2048ull, 4096ull, 8192ull, 16384ull, 32768ull,
                        65536ull, 131072ull}) {
    caches_.push_back(std::make_unique<PoolAllocator>(
        StrCat("kmalloc-", size), size, pages_));
  }
}

PoolAllocator* OrdinaryAllocator::CacheFor(uint64_t size) const {
  for (const auto& cache : caches_) {
    if (size <= cache->object_size()) {
      return cache.get();
    }
  }
  return nullptr;
}

uint64_t OrdinaryAllocator::largest_class() const {
  return caches_.back()->object_size();
}

uint64_t OrdinaryAllocator::Allocate(uint64_t size) {
  PoolAllocator* cache = CacheFor(size == 0 ? 1 : size);
  if (cache == nullptr) {
    return 0;
  }
  uint64_t addr = cache->Allocate();
  if (addr != 0) {
    live_sizes_[addr] = cache->object_size();
  }
  return addr;
}

Status OrdinaryAllocator::Free(uint64_t addr) {
  auto it = live_sizes_.find(addr);
  if (it == live_sizes_.end()) {
    return InvalidArgument(
        StrCat("kmalloc: free of unknown address 0x", std::hex, addr));
  }
  PoolAllocator* cache = CacheFor(it->second);
  live_sizes_.erase(it);
  return cache->Free(addr);
}

uint64_t OrdinaryAllocator::AllocationSize(uint64_t addr) const {
  auto it = live_sizes_.find(addr);
  return it == live_sizes_.end() ? 0 : it->second;
}

}  // namespace sva::runtime
