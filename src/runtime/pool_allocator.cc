#include "src/runtime/pool_allocator.h"

#include "src/support/strings.h"

namespace sva::runtime {

namespace {
constexpr uint64_t kMinStride = 8;
}  // namespace

PoolAllocator::PoolAllocator(std::string name, uint64_t object_size,
                             PageProvider& pages)
    : name_(std::move(name)),
      object_size_(object_size == 0 ? 1 : object_size),
      pages_(pages) {
  stride_ = (object_size_ + kMinStride - 1) / kMinStride * kMinStride;
}

bool PoolAllocator::Grow() {
  uint64_t page_size = pages_.page_size();
  uint64_t count = page_size / stride_;
  if (count > 0) {
    uint64_t page = pages_.AllocatePage();
    if (page == 0) {
      return false;
    }
    ++pages_owned_;
    for (uint64_t i = 0; i < count; ++i) {
      free_list_.push_back(page + i * stride_);
    }
    return true;
  }
  // Object larger than a page: the object needs `needed` physically
  // contiguous pages. The provider makes no contiguity promise, so verify
  // each follow-on page actually extends the run. A run interrupted by
  // allocation failure is kept in run_base_/run_pages_ and resumed by the
  // next Grow() instead of being leaked (the pages stay counted in
  // pages_owned_ but previously never reached the free list).
  uint64_t needed = (stride_ + page_size - 1) / page_size;
  uint64_t attempts = 0;
  const uint64_t max_attempts = needed * 4;
  while (run_pages_ < needed) {
    if (++attempts > max_attempts) {
      // Pathologically fragmented provider: give up for this call rather
      // than consuming pages without bound. The current run is retained.
      return false;
    }
    uint64_t next = pages_.AllocatePage();
    if (next == 0) {
      return false;
    }
    ++pages_owned_;
    if (run_pages_ == 0) {
      run_base_ = next;
      run_pages_ = 1;
    } else if (next == run_base_ + run_pages_ * page_size) {
      ++run_pages_;
    } else {
      // Non-contiguous: the accumulated prefix cannot back one object.
      // Those pages stay owned by the pool (SLAB_NO_REAP — they are never
      // returned to the provider) but are unusable for allocation.
      stranded_pages_ += run_pages_;
      run_base_ = next;
      run_pages_ = 1;
    }
  }
  free_list_.push_back(run_base_);
  run_base_ = 0;
  run_pages_ = 0;
  return true;
}

uint64_t PoolAllocator::Allocate() {
  std::lock_guard<smp::SpinLock> guard(lock_);
  if (free_list_.empty() && !Grow()) {
    return 0;
  }
  uint64_t addr = free_list_.back();
  free_list_.pop_back();
  live_.insert(addr);
  ++total_allocations_;
  return addr;
}

Status PoolAllocator::Free(uint64_t addr) {
  std::lock_guard<smp::SpinLock> guard(lock_);
  auto it = live_.find(addr);
  if (it == live_.end()) {
    return InvalidArgument(StrCat("pool ", name_, ": free of 0x", std::hex,
                                  addr, " which is not a live object"));
  }
  live_.erase(it);
  // Reuse stays within this pool: the address goes back on our own free
  // list and is never handed to another pool (SLAB_NO_REAP).
  free_list_.push_back(addr);
  return OkStatus();
}

OrdinaryAllocator::OrdinaryAllocator(PageProvider& pages) : pages_(pages) {
  // Linux-style geometric size classes.
  for (uint64_t size : {32ull, 64ull, 128ull, 256ull, 512ull, 1024ull,
                        2048ull, 4096ull, 8192ull, 16384ull, 32768ull,
                        65536ull, 131072ull}) {
    caches_.push_back(std::make_unique<PoolAllocator>(
        StrCat("kmalloc-", size), size, pages_));
  }
}

PoolAllocator* OrdinaryAllocator::CacheFor(uint64_t size) const {
  for (const auto& cache : caches_) {
    if (size <= cache->object_size()) {
      return cache.get();
    }
  }
  return nullptr;
}

uint64_t OrdinaryAllocator::largest_class() const {
  return caches_.back()->object_size();
}

uint64_t OrdinaryAllocator::Allocate(uint64_t size) {
  PoolAllocator* cache = CacheFor(size == 0 ? 1 : size);
  if (cache == nullptr) {
    return 0;
  }
  uint64_t addr = cache->Allocate();
  if (addr != 0) {
    std::lock_guard<smp::SpinLock> guard(lock_);
    live_sizes_[addr] = cache->object_size();
  }
  return addr;
}

Status OrdinaryAllocator::Free(uint64_t addr) {
  uint64_t class_size = 0;
  {
    std::lock_guard<smp::SpinLock> guard(lock_);
    auto it = live_sizes_.find(addr);
    if (it == live_sizes_.end()) {
      return InvalidArgument(
          StrCat("kmalloc: free of unknown address 0x", std::hex, addr));
    }
    class_size = it->second;
    live_sizes_.erase(it);
  }
  return CacheFor(class_size)->Free(addr);
}

uint64_t OrdinaryAllocator::AllocationSize(uint64_t addr) const {
  std::lock_guard<smp::SpinLock> guard(lock_);
  auto it = live_sizes_.find(addr);
  return it == live_sizes_.end() ? 0 : it->second;
}

}  // namespace sva::runtime
