// Kernel-style allocators with the SVA porting contract of Section 4.4:
//
//  * PoolAllocator models Linux's kmem_cache: one object size per pool,
//    objects aligned at the type size so dangling pointers cannot cause
//    type misalignment, and pages never released to other pools while the
//    pool lives (the SLAB_NO_REAP change of Section 6.2).
//  * OrdinaryAllocator models kmalloc as a collection of size-class caches,
//    exposing the kmalloc -> kmem_cache relationship so the safety compiler
//    can merge per-cache instead of globally (Section 6.2).
//
// Both report allocation sizes, fulfilling the "size query" requirement the
// compiler relies on to emit pchk.reg.obj with correct lengths.
#ifndef SVA_SRC_RUNTIME_POOL_ALLOCATOR_H_
#define SVA_SRC_RUNTIME_POOL_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/smp/sync.h"
#include "src/support/status.h"

namespace sva::runtime {

// Supplies fixed-size pages of abstract address space to allocators. The
// minikernel backs this with simulated physical memory; the SVM interpreter
// backs it with its virtual address space.
class PageProvider {
 public:
  virtual ~PageProvider() = default;
  // Returns the base address of a fresh page, or 0 when exhausted.
  virtual uint64_t AllocatePage() = 0;
  virtual uint64_t page_size() const = 0;
};

// A kmem_cache-style slab pool.
class PoolAllocator {
 public:
  // `object_size` is the declared type size. Objects are laid out at
  // multiples of the slot stride (object_size rounded up to 8), which
  // implements the alignment constraint of Section 4.4.
  PoolAllocator(std::string name, uint64_t object_size, PageProvider& pages);

  const std::string& name() const { return name_; }
  uint64_t object_size() const { return object_size_; }
  uint64_t slot_stride() const { return stride_; }

  // Allocates one object; returns 0 on page exhaustion. Thread-safe: the
  // free list and live set are guarded (concurrent Grow() calls into the
  // page provider are serialized per pool by the same lock).
  uint64_t Allocate();
  // Returns the object to the pool's internal free list. The memory stays
  // owned by this pool (never released while the pool lives).
  Status Free(uint64_t addr);
  // True if `addr` is the start of a live object of this pool.
  bool IsLiveObject(uint64_t addr) const {
    std::lock_guard<smp::SpinLock> guard(lock_);
    return live_.count(addr) != 0;
  }

  uint64_t live_objects() const {
    std::lock_guard<smp::SpinLock> guard(lock_);
    return live_.size();
  }
  uint64_t pages_owned() const { return pages_owned_; }
  uint64_t total_allocations() const { return total_allocations_; }
  // Pages consumed from the provider that can never back an object: the
  // abandoned prefixes of multi-page runs broken by a non-contiguous page.
  uint64_t stranded_pages() const { return stranded_pages_; }
  // Pages held in a partially-acquired multi-page run, to be completed by a
  // later Grow() (not leaked, not yet allocatable).
  uint64_t pending_run_pages() const { return run_pages_; }

  // Enumerates the live objects (used when a pool is destroyed: the kernel
  // deregisters all remaining objects from the metapool, Section 4.3).
  std::vector<uint64_t> LiveObjects() const {
    std::lock_guard<smp::SpinLock> guard(lock_);
    return std::vector<uint64_t>(live_.begin(), live_.end());
  }

 private:
  // Requires lock_ held.
  bool Grow();

  mutable smp::SpinLock lock_;
  const std::string name_;
  const uint64_t object_size_;
  uint64_t stride_;
  PageProvider& pages_;
  std::vector<uint64_t> free_list_;
  std::unordered_set<uint64_t> live_;
  uint64_t pages_owned_ = 0;
  uint64_t total_allocations_ = 0;
  // Multi-page (object > page) growth state: the contiguous run being
  // assembled, and pages stranded by broken runs.
  uint64_t run_base_ = 0;
  uint64_t run_pages_ = 0;
  uint64_t stranded_pages_ = 0;
};

// kmalloc: size-class caches over PoolAllocator.
class OrdinaryAllocator {
 public:
  explicit OrdinaryAllocator(PageProvider& pages);

  // Allocates `size` bytes (rounded up to a size class); 0 on exhaustion or
  // for requests beyond the largest class. Thread-safe: the size map is
  // guarded here, the per-class caches by their own locks.
  uint64_t Allocate(uint64_t size);
  Status Free(uint64_t addr);

  // The allocator's size query (Section 4.4): the usable size of the
  // allocation at `addr`, or 0 if `addr` is not a live allocation.
  uint64_t AllocationSize(uint64_t addr) const;

  // The per-size-class caches, exposing the kmalloc/kmem_cache relationship.
  const std::vector<std::unique_ptr<PoolAllocator>>& caches() const {
    return caches_;
  }
  // The cache that would service a request of `size` bytes (nullptr if too
  // large).
  PoolAllocator* CacheFor(uint64_t size) const;

  uint64_t largest_class() const;

 private:
  mutable smp::SpinLock lock_;  // Guards live_sizes_.
  PageProvider& pages_;
  std::vector<std::unique_ptr<PoolAllocator>> caches_;
  std::map<uint64_t, uint64_t> live_sizes_;  // addr -> class size
};

}  // namespace sva::runtime

#endif  // SVA_SRC_RUNTIME_POOL_ALLOCATOR_H_
