#include "src/corpus/corpus.h"

#include "src/support/strings.h"

namespace sva::corpus {
namespace {

// Shared type and global declarations.
constexpr const char* kHeader = R"(
module "kernel_corpus"

%task_struct = type { i64, i64, [16 x i32], i64 }
%inode = type { i64, i64, i8* }
%file = type { %inode*, i64, i64 }
%sk_buff = type { i8*, i64, i64 }

global @task_cache : i8*
global @inode_cache : i8*
global @task_table : [8 x i64]
global @fib_props : [12 x i32]
global @file_ops : [4 x i64 (%file*, i64)*]
global @jiffies : i64
extern global @bios_area : [256 x i8]

declare i8* @kmalloc(i64)
declare void @kfree(i8*)
declare i8* @kmem_cache_create(i64)
declare i8* @kmem_cache_alloc(i8*)
declare void @kmem_cache_free(i8*, i8*)
)";

// The low-level utility library: byte-wise memory/string/checksum loops and
// an skb clone helper with its own allocation site. In the "as tested"
// configuration these are external declarations only.
constexpr const char* kLibDeclarations = R"(
declare void @lib_memzero(i8*, i64)
declare void @lib_copy(i8*, i8*, i64)
declare i64 @lib_checksum(i8*, i64)
declare i8* @lib_skb_clone(i8*, i64)
declare i64 @lib_hash_obj(i8*)
)";

constexpr const char* kLibDefinitions = R"(
define void @lib_memzero(i8* %dst, i64 %len) {
entry:
  %zero = icmp eq i64 %len, 0
  br i1 %zero, label %done, label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %slot = getelementptr i8* %dst, i64 %i
  store i8 0, i8* %slot
  %i2 = add i64 %i, 1
  %more = icmp ult i64 %i2, %len
  br i1 %more, label %loop, label %done
done:
  ret void
}

define void @lib_copy(i8* %dst, i8* %src, i64 %len) {
entry:
  %zero = icmp eq i64 %len, 0
  br i1 %zero, label %done, label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %s = getelementptr i8* %src, i64 %i
  %v = load i8, i8* %s
  %d = getelementptr i8* %dst, i64 %i
  store i8 %v, i8* %d
  %i2 = add i64 %i, 1
  %more = icmp ult i64 %i2, %len
  br i1 %more, label %loop, label %done
done:
  ret void
}

define i64 @lib_checksum(i8* %data, i64 %len) {
entry:
  %zero = icmp eq i64 %len, 0
  br i1 %zero, label %done, label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %loop ]
  %slot = getelementptr i8* %data, i64 %i
  %v = load i8, i8* %slot
  %v64 = zext i8 %v to i64
  %acc2 = add i64 %acc, %v64
  %i2 = add i64 %i, 1
  %more = icmp ult i64 %i2, %len
  br i1 %more, label %loop, label %done
done:
  %r = phi i64 [ 0, %entry ], [ %acc2, %loop ]
  ret i64 %r
}

define i8* @lib_skb_clone(i8* %data, i64 %len) {
entry:
  %copy = call i8* @kmalloc(i64 %len)
  call void @lib_copy(i8* %copy, i8* %data, i64 %len)
  ret i8* %copy
}

define i64 @lib_hash_obj(i8* %obj) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i64 [ 14695981039346656037, %entry ], [ %acc2, %loop ]
  %slot = getelementptr i8* %obj, i64 %i
  %v = load i8, i8* %slot
  %v64 = zext i8 %v to i64
  %mixed = xor i64 %acc, %v64
  %acc2 = mul i64 %mixed, 1099511628211
  %i2 = add i64 %i, 1
  %more = icmp ult i64 %i2, 8
  br i1 %more, label %loop, label %done
done:
  ret i64 %acc2
}
)";

// Core: boot-time cache creation, task lifecycle, syscall registration, and
// the scheduler's indirect dispatch.
constexpr const char* kCore = R"(
define void @boot() {
entry:
  %tc = call i8* @kmem_cache_create(i64 96)
  store i8* %tc, i8** @task_cache
  %ic = call i8* @kmem_cache_create(i64 24)
  store i8* %ic, i8** @inode_cache
  %h1 = bitcast i64 (i8*, i64)* @sys_read_impl to i8*
  call void @sva.register.syscall(i64 3, i8* %h1)
  %h2 = bitcast i64 (i8*, i64)* @sys_write_impl to i8*
  call void @sva.register.syscall(i64 4, i8* %h2)
  ret void
}

define %task_struct* @task_create(i64 %pid) {
entry:
  %cache = load i8*, i8** @task_cache
  %raw = call i8* @kmem_cache_alloc(i8* %cache)
  %task = bitcast i8* %raw to %task_struct*
  %pid_slot = getelementptr %task_struct* %task, i64 0, i32 0
  store i64 %pid, i64* %pid_slot
  %state = getelementptr %task_struct* %task, i64 0, i32 1
  store i64 0, i64* %state
  %ptr64 = ptrtoint %task_struct* %task to i64
  %index = and i64 %pid, 7
  %table_slot = getelementptr [8 x i64]* @task_table, i64 0, i64 %index
  store i64 %ptr64, i64* %table_slot
  %audit = bitcast %task_struct* %task to i8*
  %h = call i64 @lib_hash_obj(i8* %audit)
  ret %task_struct* %task
}

define void @task_destroy(%task_struct* %task) {
entry:
  %cache = load i8*, i8** @task_cache
  %raw = bitcast %task_struct* %task to i8*
  call void @kmem_cache_free(i8* %cache, i8* %raw)
  ret void
}

define i64 @task_tick(%task_struct* %task) {
entry:
  %state = getelementptr %task_struct* %task, i64 0, i32 1
  %v = load i64, i64* %state
  %v2 = add i64 %v, 1
  store i64 %v2, i64* %state
  %j = load i64, i64* @jiffies
  %j2 = add i64 %j, 1
  store i64 %j2, i64* @jiffies
  ret i64 %v2
}
)";

// Filesystem: inode/file objects, a block-copy read path through the
// library, and indirect calls through the file-operations table.
constexpr const char* kFs = R"(
define %inode* @inode_alloc(i64 %size) {
entry:
  %cache = load i8*, i8** @inode_cache
  %raw = call i8* @kmem_cache_alloc(i8* %cache)
  %ino = bitcast i8* %raw to %inode*
  %size_slot = getelementptr %inode* %ino, i64 0, i32 0
  store i64 %size, i64* %size_slot
  %data = call i8* @kmalloc(i64 %size)
  %data_slot = getelementptr %inode* %ino, i64 0, i32 2
  store i8* %data, i8** %data_slot
  %audit = bitcast %inode* %ino to i8*
  %h = call i64 @lib_hash_obj(i8* %audit)
  ret %inode* %ino
}

define %file* @file_open(%inode* %ino) {
entry:
  %raw = call i8* @kmalloc(i64 24)
  %f = bitcast i8* %raw to %file*
  %ino_slot = getelementptr %file* %f, i64 0, i32 0
  store %inode* %ino, %inode** %ino_slot
  %off = getelementptr %file* %f, i64 0, i32 1
  store i64 0, i64* %off
  %audit = bitcast %file* %f to i8*
  %h = call i64 @lib_hash_obj(i8* %audit)
  ret %file* %f
}

define i64 @file_read(%file* %f, i8* %out, i64 %len) {
entry:
  %ino_slot = getelementptr %file* %f, i64 0, i32 0
  %ino = load %inode*, %inode** %ino_slot
  %data_slot = getelementptr %inode* %ino, i64 0, i32 2
  %data = load i8*, i8** %data_slot
  call void @lib_copy(i8* %out, i8* %data, i64 %len)
  %sum = call i64 @lib_checksum(i8* %out, i64 %len)
  ret i64 %sum
}

define i64 @file_dispatch(%file* %f, i64 %which, i64 %arg) {
entry:
  %index = and i64 %which, 3
  %slot = getelementptr [4 x i64 (%file*, i64)*]* @file_ops, i64 0, i64 %index
  %fp = load i64 (%file*, i64)*, i64 (%file*, i64)** %slot
  %r = call i64 %fp(%file* %f, i64 %arg) !sig
  ret i64 %r
}

define i64 @op_seek(%file* %f, i64 %pos) {
entry:
  %off = getelementptr %file* %f, i64 0, i32 1
  store i64 %pos, i64* %off
  ret i64 %pos
}

define i64 @op_size(%file* %f, i64 %unused) {
entry:
  %ino_slot = getelementptr %file* %f, i64 0, i32 0
  %ino = load %inode*, %inode** %ino_slot
  %size_slot = getelementptr %inode* %ino, i64 0, i32 0
  %size = load i64, i64* %size_slot
  ret i64 %size
}

define void @fs_setup_ops() {
entry:
  %s0 = getelementptr [4 x i64 (%file*, i64)*]* @file_ops, i64 0, i64 0
  store i64 (%file*, i64)* @op_seek, i64 (%file*, i64)** %s0
  %s1 = getelementptr [4 x i64 (%file*, i64)*]* @file_ops, i64 0, i64 1
  store i64 (%file*, i64)* @op_size, i64 (%file*, i64)** %s1
  ret void
}
)";

// Network: skb allocation, header validation against the global properties
// table, and a receive path that clones packets through the library.
constexpr const char* kNet = R"(
define %sk_buff* @skb_alloc(i64 %len) {
entry:
  %raw = call i8* @kmalloc(i64 24)
  %skb = bitcast i8* %raw to %sk_buff*
  %data = call i8* @kmalloc(i64 %len)
  %data_slot = getelementptr %sk_buff* %skb, i64 0, i32 0
  store i8* %data, i8** %data_slot
  %len_slot = getelementptr %sk_buff* %skb, i64 0, i32 1
  store i64 %len, i64* %len_slot
  %audit = bitcast %sk_buff* %skb to i8*
  %h = call i64 @lib_hash_obj(i8* %audit)
  ret %sk_buff* %skb
}

define i64 @net_validate(i64 %rtm_type) {
entry:
  %slot = getelementptr [12 x i32]* @fib_props, i64 0, i64 %rtm_type
  %v = load i32, i32* %slot
  %r = zext i32 %v to i64
  ret i64 %r
}

define i64 @net_rx(i8* %pkt, i64 %len) {
entry:
  %skb = call %sk_buff* @skb_alloc(i64 %len)
  %data_slot = getelementptr %sk_buff* %skb, i64 0, i32 0
  %data = load i8*, i8** %data_slot
  call void @lib_copy(i8* %data, i8* %pkt, i64 %len)
  %clone = call i8* @lib_skb_clone(i8* %data, i64 %len)
  %sum = call i64 @lib_checksum(i8* %clone, i64 %len)
  call void @kfree(i8* %clone)
  ret i64 %sum
}

define i64 @sys_read_impl(i8* %ubuf, i64 %len) {
entry:
  %ino = call %inode* @inode_alloc(i64 256)
  %f = call %file* @file_open(%inode* %ino)
  %r = call i64 @file_read(%file* %f, i8* %ubuf, i64 %len)
  ret i64 %r
}

define i64 @sys_write_impl(i8* %ubuf, i64 %len) {
entry:
  %r = call i64 @net_rx(i8* %pkt_alias, i64 %len)
  ret i64 %r
}
)";

// Drivers: a ring-buffer character driver with a descriptor table and an
// ioctl-style dispatcher, plus the BIOS-scan idiom (manufactured address).
constexpr const char* kDrivers = R"(
define i64 @drv_write_ring(i8* %ring, i64 %pos, i64 %value) {
entry:
  %index = and i64 %pos, 63
  %scaled = mul i64 %index, 8
  %slot8 = getelementptr i8* %ring, i64 %scaled
  %slot = bitcast i8* %slot8 to i64*
  store i64 %value, i64* %slot
  ret i64 %index
}

define i64 @drv_ioctl(i64 %cmd, i64 %argval) {
entry:
  %ring = call i8* @kmalloc(i64 512)
  switch i64 %cmd, label %bad, [ 1, label %do_write ], [ 2, label %do_scan ]
do_write:
  %w = call i64 @drv_write_ring(i8* %ring, i64 %argval, i64 7)
  call void @kfree(i8* %ring)
  ret i64 %w
do_scan:
  %slot = getelementptr [256 x i8]* @bios_area, i64 0, i64 %argval
  %v = load i8, i8* %slot
  call void @kfree(i8* %ring)
  %r = zext i8 %v to i64
  ret i64 %r
bad:
  call void @kfree(i8* %ring)
  ret i64 -22
}
)";

}  // namespace

std::string KernelCorpusText(bool include_libs) {
  std::string text = kHeader;
  // sys_write_impl references a packet alias global defined here to keep
  // the net section self-contained.
  text += "\nglobal @pkt_buffer : [128 x i8]\n";
  text += "global @pkt_alias_storage : i8*\n";
  text += include_libs ? kLibDefinitions : kLibDeclarations;
  text += kCore;
  text += kFs;
  // Patch the net section: %pkt_alias is a load of the alias global.
  std::string net = kNet;
  std::string from = "  %r = call i64 @net_rx(i8* %pkt_alias, i64 %len)";
  std::string to =
      "  %pkt_alias = load i8*, i8** @pkt_alias_storage\n"
      "  %r = call i64 @net_rx(i8* %pkt_alias, i64 %len)";
  size_t pos = net.find(from);
  if (pos != std::string::npos) {
    net.replace(pos, from.size(), to);
  }
  text += net;
  text += kDrivers;
  return text;
}

analysis::AnalysisConfig CorpusConfig(bool entire_kernel) {
  analysis::AnalysisConfig config = analysis::AnalysisConfig::LinuxLike();
  config.whole_program = entire_kernel;
  config.entry_points = {"sys_read_impl", "sys_write_impl", "drv_ioctl",
                         "net_rx", "net_validate"};
  // The library's byte-copy helpers are ordinary analyzed functions when
  // compiled; when excluded they are NOT the known external copy routines
  // (the paper's special-cased memcpy/copy_*_user), so they count as
  // unanalyzed external code.
  config.copy_functions = {"memcpy", "memmove", "copy_from_user",
                           "copy_to_user"};
  return config;
}

int TotalAllocationSites() {
  // kmem_cache_create x2 are not object sites; counted sites: task_create,
  // inode_alloc x2, file_open, skb_alloc x2, drv_ioctl, lib_skb_clone.
  return 8;
}

}  // namespace sva::corpus
