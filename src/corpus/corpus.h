// A kernel-flavoured SVA bytecode corpus standing in for the Linux kernel
// source tree in the static-analysis experiments (Table 9). The corpus has
// core, filesystem, network, and driver "subsystems" plus a low-level
// utility library that can be included as bytecode ("entire kernel") or
// left as external declarations ("as tested" — the paper excluded mm/,
// lib/, and the character drivers from the safety-checking compiler).
#ifndef SVA_SRC_CORPUS_CORPUS_H_
#define SVA_SRC_CORPUS_CORPUS_H_

#include <string>

#include "src/analysis/config.h"

namespace sva::corpus {

// The corpus module text. `include_libs` compiles the utility library as
// bytecode; otherwise the library functions are declarations (external,
// unanalyzed code — the source of incompleteness).
std::string KernelCorpusText(bool include_libs);

// The analysis configuration for each Table 9 row: "as tested" (libraries
// excluded, partial knowledge) vs "entire kernel" (whole-program, userspace
// treated as a valid object for syscall arguments).
analysis::AnalysisConfig CorpusConfig(bool entire_kernel);

// Number of heap allocation sites in the full corpus (library included) —
// the denominator of the "Allocation Sites Seen" row.
int TotalAllocationSites();

}  // namespace sva::corpus

#endif  // SVA_SRC_CORPUS_CORPUS_H_
