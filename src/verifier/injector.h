// Pointer-analysis bug injector for the Section 5 experiment: the paper
// injected 20 bugs (5 instances of 4 kinds) into the pointer analysis
// results and showed the bytecode verifier catches all of them. The four
// kinds mirror the paper's: incorrect variable aliasing, incorrect
// inter-node edges, incorrect claims of type homogeneity, and insufficient
// merging of points-to graph nodes.
#ifndef SVA_SRC_VERIFIER_INJECTOR_H_
#define SVA_SRC_VERIFIER_INJECTOR_H_

#include <cstdint>

#include "src/support/status.h"
#include "src/vir/module.h"

namespace sva::verifier {

enum class BugKind {
  kWrongAlias,            // A value annotated with the wrong metapool.
  kWrongEdge,             // A points-to edge bent to the wrong partition.
  kFalseTypeHomogeneity,  // A non-TH pool claimed TH with a bogus type.
  kInsufficientMerging,   // A partition split that should have merged.
};

const char* BugKindName(BugKind kind);

// Mutates `module` (which must carry safety-compiler annotations) to plant
// one bug of the given kind. `seed` selects among candidate sites, so
// different seeds give different instances. Returns NotFound when the
// module has no suitable site for this kind.
Status InjectBug(vir::Module& module, BugKind kind, uint64_t seed);

}  // namespace sva::verifier

#endif  // SVA_SRC_VERIFIER_INJECTOR_H_
