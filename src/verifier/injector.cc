#include "src/verifier/injector.h"

#include <map>
#include <vector>

#include "src/support/strings.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::verifier {

using vir::CallInst;
using vir::GlobalVariable;
using vir::Instruction;
using vir::LoadInst;
using vir::Module;
using vir::Opcode;
using vir::StoreInst;
using vir::Value;

const char* BugKindName(BugKind kind) {
  switch (kind) {
    case BugKind::kWrongAlias:
      return "incorrect-variable-aliasing";
    case BugKind::kWrongEdge:
      return "incorrect-inter-node-edge";
    case BugKind::kFalseTypeHomogeneity:
      return "incorrect-type-homogeneity";
    case BugKind::kInsufficientMerging:
      return "insufficient-node-merging";
  }
  return "unknown";
}

namespace {

// A different declared pool than `not_this`, preferring variety by seed.
std::string OtherPool(const Module& module, const std::string& not_this,
                      uint64_t seed) {
  std::vector<std::string> pools;
  for (const auto& [name, decl] : module.metapools()) {
    (void)decl;
    if (name != not_this) {
      pools.push_back(name);
    }
  }
  if (pools.empty()) {
    return "";
  }
  return pools[seed % pools.size()];
}

Status InjectWrongAlias(Module& module, uint64_t seed) {
  // Re-annotate a pool-preserving instruction's result.
  std::vector<Instruction*> candidates;
  for (const auto& fn : module.functions()) {
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (!inst->type()->IsPointer()) {
          continue;
        }
        Opcode op = inst->opcode();
        if ((op == Opcode::kBitcast || op == Opcode::kGetElementPtr) &&
            !module.MetapoolOf(inst.get()).empty()) {
          candidates.push_back(inst.get());
        }
      }
    }
  }
  if (candidates.empty()) {
    return NotFound("no aliasing injection site");
  }
  Instruction* victim = candidates[seed % candidates.size()];
  std::string wrong =
      OtherPool(module, module.MetapoolOf(victim), seed / 7 + 1);
  if (wrong.empty()) {
    return NotFound("module has a single metapool");
  }
  module.AnnotateValue(victim, wrong);
  return OkStatus();
}

Status InjectWrongEdge(Module& module, uint64_t seed) {
  // Bend the pointee pool of one pointer-load so the derived points-to
  // nesting becomes inconsistent. To guarantee inconsistency we pick a load
  // whose holder pool carries at least one other pointer edge use.
  struct Candidate {
    Instruction* load;
  };
  std::map<std::string, int> edge_uses;
  std::vector<Instruction*> loads;
  for (const auto& fn : module.functions()) {
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (const auto* load = dynamic_cast<const LoadInst*>(inst.get())) {
          if (inst->type()->IsPointer() &&
              !module.MetapoolOf(load->pointer()).empty() &&
              !module.MetapoolOf(inst.get()).empty()) {
            ++edge_uses[module.MetapoolOf(load->pointer())];
            loads.push_back(inst.get());
          }
        } else if (const auto* store =
                       dynamic_cast<const StoreInst*>(inst.get())) {
          if (store->stored_value()->type()->IsPointer() &&
              !module.MetapoolOf(store->pointer()).empty() &&
              !module.MetapoolOf(store->stored_value()).empty()) {
            ++edge_uses[module.MetapoolOf(store->pointer())];
          }
        }
      }
    }
  }
  std::vector<Instruction*> candidates;
  for (Instruction* load : loads) {
    const auto* l = static_cast<const LoadInst*>(load);
    if (edge_uses[module.MetapoolOf(l->pointer())] >= 2) {
      candidates.push_back(load);
    }
  }
  if (candidates.empty()) {
    return NotFound("no edge injection site");
  }
  Instruction* victim = candidates[seed % candidates.size()];
  std::string wrong =
      OtherPool(module, module.MetapoolOf(victim), seed / 3 + 1);
  if (wrong.empty()) {
    return NotFound("module has a single metapool");
  }
  module.AnnotateValue(victim, wrong);
  return OkStatus();
}

Status InjectFalseTH(Module& module, uint64_t seed) {
  // Find a pool with at least one load/store access and claim it is TH with
  // a type that does not contain the accessed type.
  std::map<std::string, const vir::Type*> accessed;
  for (const auto& fn : module.functions()) {
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (const auto* load = dynamic_cast<const LoadInst*>(inst.get())) {
          const std::string& pool = module.MetapoolOf(load->pointer());
          if (!pool.empty()) {
            accessed.emplace(pool, inst->type());
          }
        }
      }
    }
  }
  std::vector<std::pair<std::string, const vir::Type*>> candidates(
      accessed.begin(), accessed.end());
  if (candidates.empty()) {
    return NotFound("no TH injection site");
  }
  auto& [pool, type] = candidates[seed % candidates.size()];
  vir::MetapoolDecl& decl = module.mutable_metapools()[pool];
  decl.name = pool;
  decl.type_homogeneous = true;
  // A bogus element type guaranteed not to contain the accessed type: a
  // float of a width class the access does not use.
  const vir::Type* bogus = module.types().F64();
  if (type->IsFloat() &&
      static_cast<const vir::FloatType*>(type)->bits() == 64) {
    bogus = module.types().F32();
  }
  decl.element_type = bogus;
  return OkStatus();
}

Status InjectInsufficientMerging(Module& module, uint64_t seed) {
  // Split a partition: the registered object keeps its annotation while the
  // registration handle moves to a freshly invented pool, as if the
  // analysis had failed to merge the two nodes backing one kernel pool.
  std::vector<CallInst*> candidates;
  for (const auto& fn : module.functions()) {
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        auto* call = dynamic_cast<CallInst*>(inst.get());
        if (call == nullptr || call->called_function() == nullptr) {
          continue;
        }
        vir::Intrinsic which =
            vir::LookupIntrinsic(call->called_function()->name());
        if ((which == vir::Intrinsic::kPchkRegObj ||
             which == vir::Intrinsic::kLSCheck ||
             which == vir::Intrinsic::kBoundsCheck) &&
            call->num_args() >= 2 &&
            !module.MetapoolOf(call->arg(1)).empty()) {
          candidates.push_back(call);
        }
      }
    }
  }
  if (candidates.empty()) {
    return NotFound("no merging injection site");
  }
  CallInst* victim = candidates[seed % candidates.size()];
  const std::string& old_pool = module.MetapoolOf(victim->arg(1));
  std::string split_name = StrCat(old_pool, ".split", seed % 97);
  const vir::MetapoolDecl* old_decl = module.FindMetapool(old_pool);
  vir::MetapoolDecl& split = module.DeclareMetapool(split_name);
  if (old_decl != nullptr) {
    split.type_homogeneous = old_decl->type_homogeneous;
    split.element_type = old_decl->element_type;
    split.complete = old_decl->complete;
  }
  // Operand 0 is the callee; operand 1 is the metapool handle argument.
  GlobalVariable* handle = vir::MetapoolHandle(module, split_name);
  victim->set_operand(1, handle);
  return OkStatus();
}

}  // namespace

Status InjectBug(Module& module, BugKind kind, uint64_t seed) {
  switch (kind) {
    case BugKind::kWrongAlias:
      return InjectWrongAlias(module, seed);
    case BugKind::kWrongEdge:
      return InjectWrongEdge(module, seed);
    case BugKind::kFalseTypeHomogeneity:
      return InjectFalseTH(module, seed);
    case BugKind::kInsufficientMerging:
      return InjectInsufficientMerging(module, seed);
  }
  return InvalidArgument("unknown bug kind");
}

}  // namespace sva::verifier
