// The bytecode type checker of Section 5 — the piece that keeps the complex
// safety-checking compiler OUT of the trusted computing base.
//
// The compiler encodes its pointer analysis as metapool qualifiers on every
// pointer value (int *M1 Q style). The checker re-validates the annotations
// with purely local typing rules:
//
//   (R1) every referenced metapool is declared;
//   (R2) pool-preserving operations (bitcast, getelementptr, phi, select)
//        produce a pointer in the same metapool as their pointer operands;
//   (R3) the points-to nesting is consistent: if loading a pointer from an
//        object in M3 yields a pointer in M2, every load/store of pointers
//        through M3 must use M2 (this is the M2/M3 edge of the paper);
//   (R4) calls agree: actual argument pools match the callee's declared
//        formal pools, and the call result pool matches the callee's return
//        pool;
//   (R5) run-time check operands are coherent: pchk.reg.obj/pchk.drop.obj/
//        sva.boundscheck/sva.lscheck receive pointers annotated with the
//        same metapool as the handle they pass;
//   (R6) type homogeneity claims are justified: accesses through a TH pool
//        use the declared element type or one of its member types;
//   (R7) information flow (the Section 9 extension): a pointer into a
//        `classified` metapool may not be stored into an object of an
//        unclassified metapool — higher-level security policy encoded
//        compactly as a type qualifier, checked with the same local rules.
//
// Like the paper's checker, the rules need only the operands of each
// instruction; the checker is small, fast, and independent of the analysis.
#ifndef SVA_SRC_VERIFIER_TYPECHECKER_H_
#define SVA_SRC_VERIFIER_TYPECHECKER_H_

#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/vir/module.h"

namespace sva::verifier {

struct TypeCheckOptions {
  // Stop at the first error (default) or collect all of them.
  bool collect_all = false;
};

struct TypeCheckResult {
  bool ok = true;
  std::vector<std::string> errors;
};

// Runs the metapool type checker over the module. A module that was never
// processed by the safety compiler (no annotations) passes trivially.
TypeCheckResult TypeCheckModule(const vir::Module& module,
                                const TypeCheckOptions& options = {});

// Convenience wrapper returning a Status.
Status TypeCheckOrError(const vir::Module& module);

}  // namespace sva::verifier

#endif  // SVA_SRC_VERIFIER_TYPECHECKER_H_
