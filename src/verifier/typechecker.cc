#include "src/verifier/typechecker.h"

#include <map>

#include "src/support/strings.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::verifier {

using vir::CallInst;
using vir::Function;
using vir::GetElementPtrInst;
using vir::GlobalVariable;
using vir::Instruction;
using vir::Intrinsic;
using vir::LoadInst;
using vir::Module;
using vir::Opcode;
using vir::PhiInst;
using vir::SelectInst;
using vir::StoreInst;
using vir::Type;
using vir::Value;

namespace {

class TypeChecker {
 public:
  TypeChecker(const Module& module, const TypeCheckOptions& options)
      : module_(module), options_(options) {}

  TypeCheckResult Run() {
    for (const auto& gv : module_.globals()) {
      CheckDeclared(gv.get(), "global");
    }
    for (const auto& fn : module_.functions()) {
      if (fn->is_declaration()) {
        continue;
      }
      current_fn_ = fn.get();
      for (const auto& arg : fn->args()) {
        CheckDeclared(arg.get(), "argument");
      }
      for (const auto& bb : fn->blocks()) {
        for (const auto& inst : bb->instructions()) {
          if (!result_.ok && !options_.collect_all) {
            return result_;
          }
          CheckInstruction(*inst);
        }
      }
    }
    return result_;
  }

 private:
  void Error(std::string msg) {
    result_.ok = false;
    if (current_fn_ != nullptr) {
      msg = StrCat("@", current_fn_->name(), ": ", msg);
    }
    result_.errors.push_back(std::move(msg));
  }

  const std::string& PoolOf(const Value* v) const {
    return module_.MetapoolOf(v);
  }

  void CheckDeclared(const Value* v, const char* what) {
    const std::string& pool = PoolOf(v);
    if (!pool.empty() && module_.FindMetapool(pool) == nullptr) {
      Error(StrCat(what, " annotated with undeclared metapool ", pool));
    }
  }

  // R2: result pool must match the operand pool when both are annotated.
  void CheckPreserves(const Instruction& inst, const Value* operand) {
    const std::string& rp = PoolOf(&inst);
    const std::string& op = PoolOf(operand);
    if (!rp.empty() && !op.empty() && rp != op) {
      Error(StrCat(vir::OpcodeName(inst.opcode()), " crosses metapools: ",
                   "operand in ", op, ", result in ", rp));
    }
  }

  // R3: consistent pointee pool per pool, derived while checking.
  void CheckEdge(const std::string& holder_pool,
                 const std::string& pointee_pool, const char* what) {
    if (holder_pool.empty() || pointee_pool.empty()) {
      return;
    }
    auto [it, inserted] = pointee_pools_.try_emplace(holder_pool,
                                                     pointee_pool);
    if (!inserted && it->second != pointee_pool) {
      Error(StrCat("inconsistent points-to edge from ", holder_pool, ": ",
                   what, " uses ", pointee_pool, " but earlier uses ",
                   it->second));
    }
  }

  // R7: no pointer into a classified pool may be written into an object of
  // an unclassified pool (information-flow qualifier, Section 9).
  void CheckFlow(const std::string& holder_pool,
                 const std::string& stored_pool) {
    if (holder_pool.empty() || stored_pool.empty()) {
      return;
    }
    const vir::MetapoolDecl* holder = module_.FindMetapool(holder_pool);
    const vir::MetapoolDecl* stored = module_.FindMetapool(stored_pool);
    if (holder == nullptr || stored == nullptr) {
      return;
    }
    if (stored->classified && !holder->classified) {
      Error(StrCat("information-flow violation: pointer into classified "
                   "pool ",
                   stored_pool, " stored into unclassified pool ",
                   holder_pool));
    }
  }

  // R6: accesses through TH pools must use member types of the element.
  void CheckTHAccess(const Value* ptr, const Type* accessed) {
    const std::string& pool = PoolOf(ptr);
    if (pool.empty()) {
      return;
    }
    const vir::MetapoolDecl* decl = module_.FindMetapool(pool);
    if (decl == nullptr || !decl->type_homogeneous ||
        decl->element_type == nullptr) {
      return;
    }
    if (!vir::TypeContainsMember(decl->element_type, accessed)) {
      Error(StrCat("type-homogeneity violation: pool ", pool, " declared ",
                   decl->element_type->ToString(), " but accessed as ",
                   accessed->ToString()));
    }
  }

  void CheckIntrinsicCall(const CallInst& call, Intrinsic which) {
    auto handle_pool = [&](size_t arg_index) -> std::string {
      if (arg_index >= call.num_args()) {
        return "";
      }
      const auto* gv =
          dynamic_cast<const GlobalVariable*>(call.arg(arg_index));
      if (gv == nullptr || !vir::IsMetapoolHandle(gv)) {
        Error("safety operation does not take a metapool handle");
        return "";
      }
      return gv->name();
    };
    auto expect_pool = [&](size_t arg_index, const std::string& pool,
                           const char* what) {
      if (pool.empty() || arg_index >= call.num_args()) {
        return;
      }
      const std::string& got = PoolOf(call.arg(arg_index));
      if (!got.empty() && got != pool) {
        Error(StrCat(what, ": pointer annotated ", got,
                     " but operation targets pool ", pool));
      }
    };
    switch (which) {
      case Intrinsic::kPchkRegObj:
        expect_pool(1, handle_pool(0), "pchk.reg.obj");
        break;
      case Intrinsic::kPchkDropObj:
        expect_pool(1, handle_pool(0), "pchk.drop.obj");
        break;
      case Intrinsic::kBoundsCheck: {
        std::string pool = handle_pool(0);
        expect_pool(1, pool, "sva.boundscheck src");
        expect_pool(2, pool, "sva.boundscheck derived");
        break;
      }
      case Intrinsic::kGetBounds:
        expect_pool(1, handle_pool(0), "sva.getbounds");
        break;
      case Intrinsic::kLSCheck:
        expect_pool(1, handle_pool(0), "sva.lscheck");
        break;
      default:
        break;
    }
  }

  void CheckInstruction(const Instruction& inst) {
    CheckDeclared(&inst, "instruction");
    switch (inst.opcode()) {
      case Opcode::kBitcast: {
        const auto* cast = static_cast<const vir::CastInst*>(&inst);
        if (cast->src()->type()->IsPointer() && inst.type()->IsPointer()) {
          CheckPreserves(inst, cast->src());
        }
        break;
      }
      case Opcode::kGetElementPtr: {
        const auto* gep = static_cast<const GetElementPtrInst*>(&inst);
        CheckPreserves(inst, gep->base());
        break;
      }
      case Opcode::kPhi: {
        const auto* phi = static_cast<const PhiInst*>(&inst);
        if (inst.type()->IsPointer()) {
          for (size_t i = 0; i < phi->num_incoming(); ++i) {
            CheckPreserves(inst, phi->incoming_value(i));
          }
        }
        break;
      }
      case Opcode::kSelect: {
        const auto* sel = static_cast<const SelectInst*>(&inst);
        if (inst.type()->IsPointer()) {
          CheckPreserves(inst, sel->true_value());
          CheckPreserves(inst, sel->false_value());
        }
        break;
      }
      case Opcode::kLoad: {
        const auto* load = static_cast<const LoadInst*>(&inst);
        CheckTHAccess(load->pointer(), inst.type());
        if (inst.type()->IsPointer()) {
          CheckEdge(PoolOf(load->pointer()), PoolOf(&inst), "load");
        }
        break;
      }
      case Opcode::kStore: {
        const auto* store = static_cast<const StoreInst*>(&inst);
        CheckTHAccess(store->pointer(), store->stored_value()->type());
        if (store->stored_value()->type()->IsPointer()) {
          CheckEdge(PoolOf(store->pointer()),
                    PoolOf(store->stored_value()), "store");
          CheckFlow(PoolOf(store->pointer()), PoolOf(store->stored_value()));
        }
        break;
      }
      case Opcode::kCall: {
        const auto* call = static_cast<const CallInst*>(&inst);
        const Function* callee = call->called_function();
        if (callee != nullptr) {
          Intrinsic which = vir::LookupIntrinsic(callee->name());
          if (which != Intrinsic::kNone) {
            CheckIntrinsicCall(*call, which);
            break;
          }
          if (!callee->is_declaration()) {
            // R4: actuals match formals.
            for (size_t i = 0;
                 i < call->num_args() && i < callee->num_args(); ++i) {
              if (!call->arg(i)->type()->IsPointer()) {
                continue;
              }
              const std::string& actual = PoolOf(call->arg(i));
              const std::string& formal = PoolOf(callee->arg(i));
              if (!actual.empty() && !formal.empty() && actual != formal) {
                Error(StrCat("call to @", callee->name(), " passes arg ", i,
                             " in pool ", actual, " but formal expects ",
                             formal));
              }
            }
          }
        }
        break;
      }
      default:
        break;
    }
  }

  const Module& module_;
  const TypeCheckOptions& options_;
  TypeCheckResult result_;
  const Function* current_fn_ = nullptr;
  std::map<std::string, std::string> pointee_pools_;
};

}  // namespace

TypeCheckResult TypeCheckModule(const Module& module,
                                const TypeCheckOptions& options) {
  TypeChecker checker(module, options);
  return checker.Run();
}

Status TypeCheckOrError(const Module& module) {
  TypeCheckResult result = TypeCheckModule(module);
  if (result.ok) {
    return OkStatus();
  }
  return VerificationFailed(result.errors.empty() ? "type check failed"
                                                  : result.errors.front());
}

}  // namespace sva::verifier
