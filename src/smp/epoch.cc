#include "src/smp/epoch.h"

#include <mutex>
#include <utility>

namespace sva::smp {

EpochDomain& EpochDomain::Global() {
  static EpochDomain domain;
  return domain;
}

int EpochDomain::Pin() {
  const int index = static_cast<int>(current_cpu_id() % kMaxCpus);
  PinSlot& slot = slots_[index];
  // seq_cst RMW: the StoreLoad edge between publishing pins > 0 and loading
  // the global epoch is what stops TryAdvance from racing past a reader
  // that pinned "just now" with a stale epoch snapshot. (A stale snapshot
  // is always <= the true epoch, so the race would only be conservative —
  // but the seq_cst RMW costs the same as acq_rel on x86 and keeps the
  // argument one sentence long.)
  if (slot.pins.fetch_add(1, std::memory_order_seq_cst) == 0) {
    slot.epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                     std::memory_order_seq_cst);
  }
  return index;
}

void EpochDomain::Unpin(int slot_index) {
  // Release: everything this reader did (every load through a retired
  // pointer) happens-before a later advance observing pins == 0.
  slots_[slot_index].pins.fetch_sub(1, std::memory_order_release);
}

void EpochDomain::Retire(std::function<void()> reclaim) {
  RetireList& list = retire_[current_cpu_id() % kMaxCpus];
  const uint64_t epoch = global_epoch_.load(std::memory_order_relaxed);
  {
    std::lock_guard<SpinLock> guard(list.lock);
    list.items.push_back(Retiree{std::move(reclaim), epoch});
  }
  retired_.fetch_add(1, std::memory_order_relaxed);
}

bool EpochDomain::TryAdvance() {
  if (!advance_lock_.try_lock()) {
    return false;
  }
  std::lock_guard<SpinLock> guard(advance_lock_, std::adopt_lock);
  const uint64_t current = global_epoch_.load(std::memory_order_seq_cst);
  for (PinSlot& slot : slots_) {
    // Acquire on pins pairs with the reader's release Unpin, so a slot seen
    // unpinned has fully retired from its critical section.
    if (slot.pins.load(std::memory_order_acquire) != 0 &&
        slot.epoch.load(std::memory_order_seq_cst) != current) {
      return false;  // A reader still straddles the previous epoch.
    }
  }
  global_epoch_.store(current + 1, std::memory_order_seq_cst);
  advances_.fetch_add(1, std::memory_order_relaxed);
  // After advancing to current+1, anything retired at <= current-1 has
  // outlived its grace period: every slot pinned today snapshotted either
  // `current` (after the unpublish that preceded a retire at current-1) or
  // `current+1`.
  reclaimed_.fetch_add(ReclaimUpTo(current - 1), std::memory_order_relaxed);
  return true;
}

uint64_t EpochDomain::ReclaimUpTo(uint64_t limit) {
  std::vector<std::function<void()>> ready;
  for (RetireList& list : retire_) {
    std::lock_guard<SpinLock> guard(list.lock);
    size_t kept = 0;
    for (Retiree& r : list.items) {
      if (r.epoch <= limit) {
        ready.push_back(std::move(r.reclaim));
      } else {
        list.items[kept++] = std::move(r);
      }
    }
    list.items.resize(kept);
  }
  // Callbacks run outside every list lock: a reclaimer is free to Retire()
  // again (e.g. a table whose teardown retires its entries).
  for (auto& fn : ready) {
    fn();
  }
  return ready.size();
}

void EpochDomain::QuiescentState() {
  thread_local uint32_t tick = 0;
  if (++tick % kQuiescentStride != 0) {
    return;
  }
  if (pending() == 0) {
    return;
  }
  TryAdvance();
}

void EpochDomain::Synchronize() {
  // Two advances from the retiree's epoch always suffice, but pinned
  // readers (which the caller promised are draining) can hold an advance
  // back — just spin until the pending count hits zero.
  while (pending() != 0) {
    if (!TryAdvance()) {
      CpuRelax();
    }
  }
}

void EpochDomain::DrainIfQuiescent() {
  for (int attempt = 0; attempt < 3 && pending() != 0; ++attempt) {
    if (pinned_readers() != 0 || !TryAdvance()) {
      return;
    }
  }
}

uint64_t EpochDomain::pinned_readers() const {
  uint64_t total = 0;
  for (const PinSlot& slot : slots_) {
    total += slot.pins.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace sva::smp
