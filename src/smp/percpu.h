// Per-CPU data for the virtual multiprocessor.
//
// Worker threads bind themselves to a virtual CPU id (ScopedCpu); per-CPU
// containers (PerCpu<T>) then index by that id so hot-path counters and
// scratch state never share cache lines between CPUs. This mirrors the
// kernel idiom (DEFINE_PER_CPU / smp_processor_id) the paper's SVA-OS
// per-processor state assumes.
//
// The binding is advisory: an unbound thread reads CPU 0. Slots written
// through Shard() use relaxed atomic read-modify-writes, so even two
// threads bound to the same id (oversubscription) stay race-free — they
// merely contend.
#ifndef SVA_SRC_SMP_PERCPU_H_
#define SVA_SRC_SMP_PERCPU_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/smp/sync.h"

namespace sva::smp {

// Upper bound on virtual CPUs. Sized for the 1/2/4/8-thread scaling study
// with headroom; per-CPU state is padded, so keep this modest.
inline constexpr unsigned kMaxCpus = 16;

namespace internal {
inline thread_local unsigned tls_cpu_id = 0;
}  // namespace internal

// The virtual CPU id the calling thread is bound to (0 if never bound).
inline unsigned current_cpu_id() { return internal::tls_cpu_id; }

inline void SetCurrentCpu(unsigned id) {
  internal::tls_cpu_id = id < kMaxCpus ? id : kMaxCpus - 1;
}

// RAII binding of the calling thread to a virtual CPU id.
class ScopedCpu {
 public:
  explicit ScopedCpu(unsigned id) : previous_(current_cpu_id()) {
    SetCurrentCpu(id);
  }
  ~ScopedCpu() { SetCurrentCpu(previous_); }
  ScopedCpu(const ScopedCpu&) = delete;
  ScopedCpu& operator=(const ScopedCpu&) = delete;

 private:
  unsigned previous_;
};

// A fixed array of cache-line-padded T, one per possible CPU.
template <typename T>
class PerCpu {
 public:
  T& ForCpu(unsigned id) { return slots_[id % kMaxCpus].value; }
  const T& ForCpu(unsigned id) const { return slots_[id % kMaxCpus].value; }
  T& Current() { return ForCpu(current_cpu_id()); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (unsigned i = 0; i < kMaxCpus; ++i) {
      fn(slots_[i].value);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (unsigned i = 0; i < kMaxCpus; ++i) {
      fn(slots_[i].value);
    }
  }

 private:
  struct alignas(kCacheLineBytes) Padded {
    T value{};
  };
  std::array<Padded, kMaxCpus> slots_{};
};

// A per-CPU sharded uint64 counter. Increments are relaxed atomic RMWs on
// the caller's CPU slot (no contention across bound CPUs, race-free even
// when oversubscribed); value() sums all shards.
class ShardedCounter {
 public:
  void Add(uint64_t delta = 1) {
    shards_.Current().fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    shards_.ForEach([&total](const std::atomic<uint64_t>& shard) {
      total += shard.load(std::memory_order_relaxed);
    });
    return total;
  }
  void Reset() {
    shards_.ForEachMutable([](std::atomic<uint64_t>& shard) {
      shard.store(0, std::memory_order_relaxed);
    });
  }

 private:
  PerCpu<std::atomic<uint64_t>> shards_;
};

}  // namespace sva::smp

#endif  // SVA_SRC_SMP_PERCPU_H_
