// Lock-order checking for the kernel lock hierarchy (docs/CONCURRENCY.md).
//
// Every kernel-policy lock carries a LockRank; a thread must acquire ranked
// locks in strictly increasing rank order (which also forbids recursive
// acquisition). The ordering that matters for deadlock freedom is the one
// that is actually executed, so the checker keeps a per-thread stack of held
// ranks and validates every acquisition against it *before* blocking on the
// lock — an inversion is reported while the thread can still report it,
// instead of as a silent deadlock.
//
// Debug builds (NDEBUG undefined) enforce on every acquisition and abort on
// inversion. Release builds compile the bookkeeping in but leave the checker
// disabled behind a single relaxed load; tests flip it on at quiescence
// (LockOrderChecker::set_enabled) to exercise the enforcement in tier-1
// RelWithDebInfo builds too.
//
// Locks outside the kernel policy hierarchy — metapool stripe locks,
// allocator locks, the net stack's three lock classes, trace drain locks —
// are deliberately unranked: they are leaves of independent subsystems that
// never call back into kernel locks, so ranking them would only add noise.
// The invariant the checker protects is the kernel's own order:
//
//   bkl_ -> vfs_lock_ -> tasks_lock_ -> sockets_lock_ -> pipes_lock_
//        -> evq_lock_ -> files_lock_ -> address-space locks
#ifndef SVA_SRC_SMP_LOCK_ORDER_H_
#define SVA_SRC_SMP_LOCK_ORDER_H_

#include <atomic>
#include <cstdint>

#include "src/smp/sync.h"

namespace sva::smp {

// Ranks are spaced so a future subsystem lock can slot between existing
// levels without renumbering. Lower rank = acquired earlier (outermost).
enum class LockRank : uint8_t {
  kBkl = 0,       // Big kernel lock: scheduler + legacy fallback only.
  kVfs = 10,      // vfs_lock_: ramfs namespace, inodes, file offsets.
  kTasks = 20,    // tasks_lock_: pid->task map structure, pid allocation.
  kSockets = 30,  // sockets_lock_: legacy loopback socket table + queues.
  kPipes = 40,    // pipes_lock_: pipe table + ring state.
  kEvq = 45,      // evq_lock_: event-queue table + sid->watch reverse map.
  kFiles = 50,    // files_lock_: open-file table + fd arrays (shared leaf).
  // Per-task address-space locks rank ABOVE every table lock: user-copy
  // page faults happen while vfs/pipes/files locks are held, so the fault
  // path (FaultIn under the AS lock) must still be acquirable there.
  kAddrSpace = 60,
};

const char* LockRankName(LockRank rank);

class LockOrderChecker {
 public:
  // Compile-time default: enforcing in debug builds, dormant in release.
#ifndef NDEBUG
  static constexpr bool kEnabledByDefault = true;
#else
  static constexpr bool kEnabledByDefault = false;
#endif

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  // Control-plane toggle (tests): flip only while no ranked lock is held.
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Validates `rank` against the calling thread's held set and pushes it.
  // Fatal (abort) if any held rank is >= `rank`.
  static void NoteAcquire(LockRank rank) {
    if (!enabled()) {
      return;
    }
    HeldStack& held = Held();
    for (int i = 0; i < held.depth; ++i) {
      if (static_cast<uint8_t>(rank) <= held.ranks[i]) {
        FatalInversion(rank, held.ranks, held.depth);
      }
    }
    if (held.depth < kMaxHeld) {
      held.ranks[held.depth] = static_cast<uint8_t>(rank);
      ++held.depth;
    }
    checked_.fetch_add(1, std::memory_order_relaxed);
    per_rank_[static_cast<uint8_t>(rank) % kRankSlots].fetch_add(
        1, std::memory_order_relaxed);
  }

  // Removes the most recent entry for `rank` (scoped guards release LIFO;
  // a missing entry — checker enabled mid-hold — is ignored).
  static void NoteRelease(LockRank rank) {
    HeldStack& held = Held();
    for (int i = held.depth - 1; i >= 0; --i) {
      if (held.ranks[i] == static_cast<uint8_t>(rank)) {
        for (int j = i; j + 1 < held.depth; ++j) {
          held.ranks[j] = held.ranks[j + 1];
        }
        --held.depth;
        return;
      }
    }
  }

  // Ranked locks the calling thread currently holds (0 at syscall exit).
  static int held_depth() { return Held().depth; }
  // Process-wide count of validated acquisitions (test observability).
  static uint64_t acquisitions_checked() {
    return checked_.load(std::memory_order_relaxed);
  }
  // Validated acquisitions of one specific rank. Lets a test prove a code
  // path is lock-free with respect to a given kernel lock: enable the
  // checker, snapshot acquisitions_of(kFiles), run the path, assert the
  // count did not move (the epoch torture test does exactly this for
  // kFiles and kVfs on the fd-read / path-lookup fast paths).
  static uint64_t acquisitions_of(LockRank rank) {
    return per_rank_[static_cast<uint8_t>(rank) % kRankSlots].load(
        std::memory_order_relaxed);
  }

 private:
  static constexpr int kMaxHeld = 8;
  struct HeldStack {
    uint8_t ranks[kMaxHeld] = {};
    int depth = 0;
  };
  static HeldStack& Held() {
    thread_local HeldStack held;
    return held;
  }
  [[noreturn]] static void FatalInversion(LockRank incoming,
                                          const uint8_t* held, int depth);

  // Ranks are sparse uint8 values (max today: kAddrSpace = 60); one slot
  // per possible value keeps acquisitions_of O(1) with no registration.
  static constexpr int kRankSlots = 64;

  inline static std::atomic<bool> enabled_{kEnabledByDefault};
  inline static std::atomic<uint64_t> checked_{0};
  inline static std::atomic<uint64_t> per_rank_[kRankSlots]{};
};

// A SpinLock that participates in the rank order above. Meets the C++
// Lockable requirements, so std::lock_guard and trace::TimedLockGuard work
// unchanged.
class OrderedSpinLock {
 public:
  explicit OrderedSpinLock(LockRank rank) : rank_(rank) {}
  OrderedSpinLock(const OrderedSpinLock&) = delete;
  OrderedSpinLock& operator=(const OrderedSpinLock&) = delete;

  void lock() {
    LockOrderChecker::NoteAcquire(rank_);
    lock_.lock();
  }
  bool try_lock() {
    if (!lock_.try_lock()) {
      return false;
    }
    LockOrderChecker::NoteAcquire(rank_);
    return true;
  }
  void unlock() {
    lock_.unlock();
    LockOrderChecker::NoteRelease(rank_);
  }
  LockRank rank() const { return rank_; }

 private:
  SpinLock lock_;
  LockRank rank_;
};

}  // namespace sva::smp

#endif  // SVA_SRC_SMP_LOCK_ORDER_H_
