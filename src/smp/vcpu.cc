#include "src/smp/vcpu.h"

namespace sva::smp {

SvaOsStats& SvaOsStats::operator+=(const SvaOsStats& other) {
  save_integer += other.save_integer;
  load_integer += other.load_integer;
  save_fp += other.save_fp;
  save_fp_skipped += other.save_fp_skipped;
  load_fp += other.load_fp;
  icontext_created += other.icontext_created;
  icontext_committed += other.icontext_committed;
  ipush_function += other.ipush_function;
  syscalls_dispatched += other.syscalls_dispatched;
  interrupts_dispatched += other.interrupts_dispatched;
  mmu_ops += other.mmu_ops;
  mmu_protects += other.mmu_protects;
  mmu_checks_failed += other.mmu_checks_failed;
  tlb_shootdowns += other.tlb_shootdowns;
  io_ops += other.io_ops;
  return *this;
}

VirtualCpu::VirtualCpu(unsigned id, hw::Cpu* external)
    : id_(id),
      owned_cpu_(external ? nullptr : std::make_unique<hw::Cpu>()),
      cpu_(external ? external : owned_cpu_.get()) {}

InterruptContext* VirtualCpu::PushContext(uint64_t id) {
  InterruptContext* icp = &icontext_slab_[icontext_depth_ % kMaxNestedContexts];
  ++icontext_depth_;
  icp->id_ = id;
  icp->committed_ = false;
  icp->from_privileged_ = false;
  icp->pushed_.clear();
  return icp;
}

void VirtualCpu::PopContext(InterruptContext* icp) {
  if (icontext_depth_ > 0 &&
      icp == &icontext_slab_[(icontext_depth_ - 1) % kMaxNestedContexts]) {
    --icontext_depth_;
  }
}

VirtualMultiprocessor::VirtualMultiprocessor(hw::Cpu& boot_cpu)
    : boot_cpu_(boot_cpu) {
  cpus_.push_back(std::make_unique<VirtualCpu>(0, &boot_cpu_));
}

void VirtualMultiprocessor::Configure(unsigned n) {
  if (n < 1) n = 1;
  if (n > kMaxCpus) n = kMaxCpus;
  while (cpus_.size() > n) cpus_.pop_back();
  while (cpus_.size() < n) {
    auto ap = std::make_unique<VirtualCpu>(static_cast<unsigned>(cpus_.size()));
    // Application processors come out of the boot trampoline with the boot
    // CPU's control state (same privilege level and handler table).
    ap->cpu().control() = boot_cpu_.control();
    cpus_.push_back(std::move(ap));
  }
}

SvaOsStats VirtualMultiprocessor::AggregateStats() const {
  SvaOsStats total;
  for (const auto& cpu : cpus_) total += cpu->stats();
  return total;
}

void VirtualMultiprocessor::ResetStats() {
  for (auto& cpu : cpus_) cpu->stats() = SvaOsStats{};
}

}  // namespace sva::smp
