#include "src/smp/lock_order.h"

#include <cstdio>
#include <cstdlib>

namespace sva::smp {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kBkl:
      return "bkl";
    case LockRank::kVfs:
      return "vfs";
    case LockRank::kTasks:
      return "tasks";
    case LockRank::kSockets:
      return "sockets";
    case LockRank::kPipes:
      return "pipes";
    case LockRank::kEvq:
      return "evq";
    case LockRank::kFiles:
      return "files";
    case LockRank::kAddrSpace:
      return "addrspace";
  }
  return "unknown";
}

void LockOrderChecker::FatalInversion(LockRank incoming, const uint8_t* held,
                                      int depth) {
  std::fprintf(stderr,
               "lock-order violation: acquiring %s(rank %u) while holding [",
               LockRankName(incoming), static_cast<unsigned>(incoming));
  for (int i = 0; i < depth; ++i) {
    std::fprintf(stderr, "%s%s(rank %u)", i ? " -> " : "",
                 LockRankName(static_cast<LockRank>(held[i])),
                 static_cast<unsigned>(held[i]));
  }
  std::fprintf(stderr,
               "]; required order is bkl -> vfs -> tasks -> sockets -> pipes "
               "-> evq -> files -> addrspace (docs/CONCURRENCY.md)\n");
  std::abort();
}

}  // namespace sva::smp
