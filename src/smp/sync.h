// Synchronization primitives for the virtual multiprocessor (DESIGN.md §SMP).
//
// The SVA paper targets multiprocessor commodity kernels: the runtime's
// checks are issued concurrently from every processor, so the metapool
// registries and the kernel's shared structures need kernel-style locking.
// Two primitives cover every use in this repo:
//
//  * SpinLock — a test-and-test-and-set spinlock, the moral equivalent of
//    Linux 2.4's spin_lock_t. Critical sections here are tens of
//    nanoseconds (a splay-tree operation, a free-list pop), so spinning
//    beats a futex-based std::mutex and keeps the dependency surface tiny.
//  * StripedLockSet — a power-of-two array of SpinLocks hashed by address,
//    for callers that want address-striped mutual exclusion without
//    embedding a lock per object.
//
// Both are TSan-friendly: all synchronization goes through std::atomic with
// acquire/release ordering.
#ifndef SVA_SRC_SMP_SYNC_H_
#define SVA_SRC_SMP_SYNC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace sva::smp {

// One CPU cache line; per-CPU data is padded to this to avoid false sharing.
inline constexpr size_t kCacheLineBytes = 64;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

// Test-and-test-and-set spinlock. Meets the C++ Lockable requirements, so
// std::lock_guard / std::scoped_lock work directly.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    // Fast path: uncontended acquire.
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Contended: spin on a plain load so the line stays shared until the
      // holder releases it (test-and-test-and-set).
      do {
        CpuRelax();
      } while (locked_.load(std::memory_order_relaxed));
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

// A power-of-two set of spinlocks indexed by a hashed address. Distinct
// addresses usually map to distinct locks, so unrelated critical sections
// proceed in parallel; equal addresses always map to the same lock.
template <size_t N>
class StripedLockSet {
  static_assert((N & (N - 1)) == 0, "stripe count must be a power of two");

 public:
  static constexpr size_t kStripes = N;

  SpinLock& ForAddress(uint64_t address) {
    return stripes_[IndexFor(address)].lock;
  }
  SpinLock& ForIndex(size_t index) { return stripes_[index & (N - 1)].lock; }

  static size_t IndexFor(uint64_t address) {
    // Fibonacci hash of the page number: adjacent pages spread across
    // stripes, while addresses within one page share a stripe.
    uint64_t page = address >> 12;
    return static_cast<size_t>((page * 0x9E3779B97F4A7C15ULL) >> 32) &
           (N - 1);
  }

 private:
  struct alignas(kCacheLineBytes) PaddedLock {
    SpinLock lock;
  };
  PaddedLock stripes_[N];
};

}  // namespace sva::smp

#endif  // SVA_SRC_SMP_SYNC_H_
