// The virtual multiprocessor: VirtualCpu bundles everything the SVM keeps
// per processor, exactly the state the paper's SVA-OS operations manipulate
// per-CPU (Section 3.3):
//
//  * the processor's native control/FP state (an hw::Cpu),
//  * the interrupt-context stack (a fixed slab, like the kernel stack),
//  * scratch SavedIntegerState/SavedFpState buffers for context switching,
//  * the per-processor SvaOsStats, aggregated on demand.
//
// CPU 0 aliases the hw::Machine's boot CPU so single-processor behaviour is
// bit-for-bit what it was before the SMP subsystem existed; CPUs 1..N-1 own
// their hw::Cpu outright. Worker threads bind to a VirtualCpu with
// smp::ScopedCpu and SvaOS routes every privileged-state access through the
// current CPU.
#ifndef SVA_SRC_SMP_VCPU_H_
#define SVA_SRC_SMP_VCPU_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/hw/machine.h"
#include "src/smp/percpu.h"

namespace sva::svaos {
class SvaOS;
}  // namespace sva::svaos

namespace sva::smp {

// Opaque buffer for llva.save.integer / llva.load.integer (Table 1). The
// kernel sees only this handle; the layout belongs to the SVM.
struct SavedIntegerState {
  hw::ControlState control;
  bool valid = false;
};

// Opaque buffer for llva.save.fp / llva.load.fp.
struct SavedFpState {
  hw::FpState fp;
  bool valid = false;
};

// A function call pushed onto an interrupted context by
// llva.ipush.function — the signal-dispatch mechanism of Table 2.
struct PushedCall {
  std::function<void(uint64_t)> fn;
  uint64_t argument = 0;
};

// The interrupt context of Section 3.3: the interrupted control state, kept
// on the owning CPU's context slab by the SVM, manipulated only through the
// llva.icontext operations.
class InterruptContext {
 public:
  uint64_t id() const { return id_; }
  bool committed() const { return committed_; }

 private:
  friend class sva::svaos::SvaOS;
  friend class VirtualCpu;
  uint64_t id_ = 0;
  hw::ControlState interrupted_;
  bool from_privileged_ = false;
  bool committed_ = false;
  std::vector<PushedCall> pushed_;
};

// Per-operation counters; the Table 7 analysis attributes syscall overhead
// to these operations. Kept per-CPU and summed on demand.
struct SvaOsStats {
  uint64_t save_integer = 0;
  uint64_t load_integer = 0;
  uint64_t save_fp = 0;
  uint64_t save_fp_skipped = 0;  // Lazy saves avoided (Table 1 `always=0`).
  uint64_t load_fp = 0;
  uint64_t icontext_created = 0;
  uint64_t icontext_committed = 0;
  uint64_t ipush_function = 0;
  uint64_t syscalls_dispatched = 0;
  uint64_t interrupts_dispatched = 0;
  uint64_t mmu_ops = 0;
  uint64_t mmu_protects = 0;
  uint64_t mmu_checks_failed = 0;  // §4.3 frame-type checks that rejected.
  uint64_t tlb_shootdowns = 0;     // Shootdown rounds initiated here.
  uint64_t io_ops = 0;

  SvaOsStats& operator+=(const SvaOsStats& other);
};

class VirtualCpu {
 public:
  // The kernel-stack region holding live interrupt contexts: a fixed slab,
  // like the real kernel stack — no allocation on the trap path. Nested
  // interrupts stack up to the slab depth.
  static constexpr size_t kMaxNestedContexts = 32;

  // CPU 0 of a machine is constructed over the machine's boot CPU
  // (`external` non-null); application processors own their state.
  explicit VirtualCpu(unsigned id, hw::Cpu* external = nullptr);

  unsigned id() const { return id_; }
  hw::Cpu& cpu() { return *cpu_; }
  const hw::Cpu& cpu() const { return *cpu_; }

  // This CPU's translation lookaside buffer. Remote CPUs reach in only to
  // invalidate (SvaOS::TlbShootdown); the owning thread fills and queries.
  hw::Tlb& tlb() { return tlb_; }
  const hw::Tlb& tlb() const { return tlb_; }

  SvaOsStats& stats() { return stats_; }
  const SvaOsStats& stats() const { return stats_; }

  // --- Interrupt-context stack ----------------------------------------------
  // Pushes a fresh context (wrapping at the slab depth, matching the
  // pre-SMP behaviour for pathological nesting).
  InterruptContext* PushContext(uint64_t id);
  // Pops `icp` if it is the innermost context.
  void PopContext(InterruptContext* icp);
  size_t icontext_depth() const { return icontext_depth_; }

  // --- Context-switch scratch buffers ---------------------------------------
  SavedIntegerState& integer_scratch() { return integer_scratch_; }
  SavedFpState& fp_scratch() { return fp_scratch_; }

 private:
  const unsigned id_;
  std::unique_ptr<hw::Cpu> owned_cpu_;  // Null for the boot CPU.
  hw::Cpu* cpu_;
  hw::Tlb tlb_;
  SvaOsStats stats_;
  std::array<InterruptContext, kMaxNestedContexts> icontext_slab_;
  size_t icontext_depth_ = 0;
  SavedIntegerState integer_scratch_;
  SavedFpState fp_scratch_;
};

// The set of virtual CPUs behind one SvaOS instance. CPU topology is
// configured once (before worker threads start); dispatch then picks the
// calling thread's CPU via smp::current_cpu_id().
class VirtualMultiprocessor {
 public:
  // Boots with one CPU over `boot_cpu`.
  explicit VirtualMultiprocessor(hw::Cpu& boot_cpu);

  // Brings the processor count to `n` (clamped to [1, kMaxCpus]).
  // Application processors start with a copy of the boot CPU's control
  // state, as if released from the boot trampoline. Not thread-safe; call
  // before spawning workers.
  void Configure(unsigned n);

  unsigned num_cpus() const { return static_cast<unsigned>(cpus_.size()); }
  VirtualCpu& cpu(unsigned id) { return *cpus_[id % cpus_.size()]; }
  // The calling thread's CPU (threads bound past the configured count share
  // the last CPU rather than faulting).
  VirtualCpu& Current() {
    unsigned id = current_cpu_id();
    return *cpus_[id < cpus_.size() ? id : cpus_.size() - 1];
  }

  // Sums the per-CPU operation counters.
  SvaOsStats AggregateStats() const;
  void ResetStats();

 private:
  std::vector<std::unique_ptr<VirtualCpu>> cpus_;
  hw::Cpu& boot_cpu_;
};

}  // namespace sva::smp

#endif  // SVA_SRC_SMP_VCPU_H_
