// Epoch-based reclamation (EBR) for the kernel's read-mostly structures —
// the classic three-epoch scheme (Fraser'04; the same grace-period contract
// as Linux RCU, with epochs standing in for context-switch quiescence).
//
// The contract:
//
//   Readers  enter a critical section with an EpochGuard. Inside it, any
//            pointer loaded (acquire) from an epoch-published location stays
//            valid until the guard drops, even if a writer concurrently
//            unpublishes and retires it. The guard is one atomic RMW on a
//            per-CPU pin slot plus two uncontended per-CPU stores — it
//            never takes a lock and never spins, so readers cannot block on
//            writers (or on each other).
//
//   Writers  serialize among themselves however they like (the kernel keeps
//            its ranked leaf locks for that), and replace state in two
//            steps: PUBLISH the new value with release ordering first, THEN
//            Retire() the old object. Retire defers the reclaim callback
//            until every reader that could still hold the old pointer has
//            unpinned — it never runs the callback inline.
//
//   Grace    The global epoch E advances only when every pinned slot has
//            observed E (TryAdvance). An object retired in epoch E is
//            reclaimed once the epoch reaches E+2: readers pinned in E may
//            hold it through the advance to E+1, but any slot pinned at
//            E+1 pinned after the advance — and therefore after the
//            unpublish that preceded the retire — so by E+2 no pinned
//            reader can still reference it.
//
//   Quiesce  Grace periods are driven from syscall exit: the kernel calls
//            QuiescentState() on every return to user mode (no guard held,
//            no kernel lock held), which periodically attempts an advance
//            and reclaims whatever became safe. There is no reclaim thread.
//
// Epochs pin NO LockRank: an EpochGuard may be held while acquiring any
// ranked lock and vice versa, and the LockOrderChecker does not see it.
// The only rule is that a thread must not sit pinned indefinitely (a pinned
// slot stalls the epoch and reclamation backs up) — syscall-scoped guards
// satisfy this by construction. See docs/CONCURRENCY.md §5.
#ifndef SVA_SRC_SMP_EPOCH_H_
#define SVA_SRC_SMP_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/smp/percpu.h"
#include "src/smp/sync.h"

namespace sva::smp {

class EpochDomain {
 public:
  // The process-global domain. Every epoch-published structure in the
  // process shares it: grace periods are a global property of the readers,
  // so splitting domains per kernel instance would only multiply the
  // bookkeeping without shortening any grace period.
  static EpochDomain& Global();

  // The current global epoch (relaxed; for cache tags and diagnostics).
  uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }

  // --- Read side (use EpochGuard, not these) --------------------------------
  // Pins the calling thread's CPU slot and returns its index for Unpin.
  // Nested pins on the same slot just bump the count; the epoch snapshot is
  // taken only by the outermost pin.
  int Pin();
  void Unpin(int slot_index);

  // --- Write side -----------------------------------------------------------
  // Defers `reclaim` until two epoch advances from now. The caller must
  // have already unpublished every epoch-visible pointer to the dying
  // object (with release ordering) — publish-then-retire, never the
  // reverse. Never runs `reclaim` inline; safe to call with locks held.
  void Retire(std::function<void()> reclaim);

  // Attempts one epoch advance; on success reclaims everything whose grace
  // period has elapsed. Returns false if a pinned reader still sits in an
  // older epoch (or another thread is advancing). Must be called with no
  // EpochGuard held. Reclaim callbacks run on this thread, with whatever
  // locks the caller holds — call it lock-free (the kernel does, from the
  // syscall-exit quiescent hook).
  bool TryAdvance();

  // The syscall-exit hook: cheap counter tick; every kQuiescentStride-th
  // call with retirees pending attempts an advance.
  void QuiescentState();

  // Blocks (spinning) until every currently pending retiree is reclaimed.
  // Callers must guarantee the pinned-reader population drains (teardown
  // paths: all worker threads joined). Used by ~Kernel so deferred frees
  // that capture allocator references run before the allocators die.
  void Synchronize();

  // Best-effort drain for destructors that cannot rule out concurrent
  // readers: reclaims what it can while nothing is pinned, gives up
  // immediately otherwise.
  void DrainIfQuiescent();

  // --- Observability (exported as sva_epoch_* on /metrics) ------------------
  uint64_t advances() const {
    return advances_.load(std::memory_order_relaxed);
  }
  uint64_t retired() const { return retired_.load(std::memory_order_relaxed); }
  uint64_t reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  uint64_t pending() const { return retired() - reclaimed(); }
  // Gauge: readers currently pinned across all slots (0 at quiescence).
  uint64_t pinned_readers() const;

  static constexpr uint32_t kQuiescentStride = 64;

 private:
  EpochDomain() = default;

  // One pin slot per CPU, cache-line-padded: Pin/Unpin are uncontended RMWs
  // on the caller's own line. Oversubscribed threads sharing a slot only
  // make the epoch snapshot more conservative (the slot keeps the oldest
  // active pin's epoch), never unsafe.
  struct alignas(kCacheLineBytes) PinSlot {
    std::atomic<uint32_t> pins{0};
    std::atomic<uint64_t> epoch{0};
  };

  struct Retiree {
    std::function<void()> reclaim;
    uint64_t epoch = 0;
  };

  // Per-CPU retire lists: Retire appends to the caller's CPU list under a
  // short unranked leaf lock (writers only — readers never touch these).
  struct alignas(kCacheLineBytes) RetireList {
    SpinLock lock;
    std::vector<Retiree> items;
  };

  // Detaches every retiree with epoch <= `limit` and runs the callbacks
  // outside the list locks. Returns the count reclaimed.
  uint64_t ReclaimUpTo(uint64_t limit);

  std::atomic<uint64_t> global_epoch_{1};
  PinSlot slots_[kMaxCpus];
  RetireList retire_[kMaxCpus];
  SpinLock advance_lock_;  // Serializes TryAdvance; contenders skip.
  std::atomic<uint64_t> advances_{0};
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};
};

// RAII read-side critical section. Cheap enough for every syscall: one
// fetch_add, one fetch_sub, and (outermost pin only) an epoch snapshot
// store on this CPU's own cache line.
class EpochGuard {
 public:
  EpochGuard() : slot_(EpochDomain::Global().Pin()) {}
  ~EpochGuard() { EpochDomain::Global().Unpin(slot_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  int slot_;
};

// Convenience: retire a heap object for deferred delete.
template <typename T>
void RetireDelete(T* object) {
  EpochDomain::Global().Retire([object] { delete object; });
}

}  // namespace sva::smp

#endif  // SVA_SRC_SMP_EPOCH_H_
