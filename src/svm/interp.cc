#include "src/svm/interp.h"

#include <cassert>

#include "src/support/strings.h"
#include "src/svm/exec_semantics.h"
#include "src/svm/threaded_interp.h"
#include "src/trace/metrics.h"
#include "src/trace/profiler.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::svm {

using vir::AllocaInst;
using vir::Argument;
using vir::AtomicLISInst;
using vir::BasicBlock;
using vir::BinaryInst;
using vir::BranchInst;
using vir::CallInst;
using vir::CastInst;
using vir::CmpInst;
using vir::CmpPred;
using vir::CmpXchgInst;
using vir::ConstantFloat;
using vir::ConstantInt;
using vir::FreeInst;
using vir::Function;
using vir::GetElementPtrInst;
using vir::GlobalVariable;
using vir::Instruction;
using vir::Intrinsic;
using vir::LoadInst;
using vir::MallocInst;
using vir::Opcode;
using vir::PhiInst;
using vir::PointerType;
using vir::RetInst;
using vir::SelectInst;
using vir::StoreInst;
using vir::SwitchInst;
using vir::Type;
using vir::Value;

using sem::BitWidthOf;
using sem::MaskToWidth;
using sem::SignExtend;
using sem::kMaxCallDepth;

namespace {

constexpr uint64_t kFunctionAddressBase = 0xF0000000ull;
constexpr uint64_t kFunctionAddressStride = 16;
constexpr uint64_t kStackArenaSize = 1 << 20;

}  // namespace

// Per-call SSA value environment.
class Interpreter::Frame {
 public:
  uint64_t Get(const Value* v) const {
    auto it = ints_.find(v);
    return it == ints_.end() ? 0 : it->second;
  }
  double GetF(const Value* v) const {
    auto it = floats_.find(v);
    return it == floats_.end() ? 0 : it->second;
  }
  void Set(const Value* v, uint64_t x) { ints_[v] = x; }
  void SetF(const Value* v, double x) { floats_[v] = x; }

 private:
  std::map<const Value*, uint64_t> ints_;
  std::map<const Value*, double> floats_;
};

Interpreter::Interpreter(vir::Module& module, runtime::MetaPoolRuntime& pools,
                         InterpOptions options)
    : module_(module),
      pools_(pools),
      options_(options),
      memory_(std::make_unique<AddressSpace>()) {
  if (options_.tier == ExecTier::kThreaded) {
    threaded_ = std::make_unique<ThreadedEngine>(*this);
  }
}

Interpreter::~Interpreter() = default;

Status Interpreter::LayoutGlobals() {
  // Assign code addresses to all functions first so globals can hold
  // function pointers.
  uint64_t next_code = kFunctionAddressBase;
  for (const auto& fn : module_.functions()) {
    function_addresses_[fn->name()] = next_code;
    functions_by_address_[next_code] = fn.get();
    next_code += kFunctionAddressStride;
  }
  for (const auto& gv : module_.globals()) {
    uint64_t size = std::max<uint64_t>(vir::SizeOf(gv->value_type()), 8);
    uint64_t addr =
        memory_->AllocateRegion(size, std::max<uint64_t>(
                                          vir::AlignOf(gv->value_type()), 8));
    if (addr == 0) {
      return Internal("out of memory laying out globals");
    }
    global_addresses_[gv->name()] = addr;
    if (gv->has_int_initializer()) {
      SVA_RETURN_IF_ERROR(memory_->Write(addr, 8, gv->int_initializer()));
    }
    if (vir::IsMetapoolHandle(gv.get())) {
      // Resolved to runtime pools in CreatePools().
      continue;
    }
  }
  return OkStatus();
}

Status Interpreter::CreatePools() {
  for (const auto& [name, decl] : module_.metapools()) {
    uint64_t elem_size =
        decl.element_type != nullptr ? vir::SizeOf(decl.element_type) : 0;
    runtime::MetaPool* pool =
        pools_.GetPool(name, decl.type_homogeneous, elem_size, decl.complete);
    auto it = global_addresses_.find(name);
    if (it != global_addresses_.end()) {
      pools_by_handle_[it->second] = pool;
    }
    if (decl.user_reachable) {
      SVA_RETURN_IF_ERROR(pools_.RegisterUserspace(
          *pool, memory_->user_base(), memory_->user_size()));
    }
  }
  for (const auto& set : module_.target_sets()) {
    std::vector<uint64_t> addrs;
    for (const std::string& fn : set) {
      auto it = function_addresses_.find(fn);
      if (it != function_addresses_.end()) {
        addrs.push_back(it->second);
      }
    }
    runtime_set_ids_.push_back(pools_.RegisterTargetSet(std::move(addrs)));
  }
  return OkStatus();
}

Status Interpreter::Initialize() {
  pools_.set_lookup_cache_enabled(options_.use_lookup_cache);
  SVA_RETURN_IF_ERROR(LayoutGlobals());
  SVA_RETURN_IF_ERROR(CreatePools());
  stack_arena_ = memory_->AllocateRegion(kStackArenaSize, 16);
  if (stack_arena_ == 0) {
    return Internal("out of memory reserving the stack arena");
  }
  stack_top_ = stack_arena_;
  stack_limit_ = stack_arena_ + kStackArenaSize;
  kmalloc_ = std::make_unique<runtime::OrdinaryAllocator>(memory_->pages());

  // --- Default kernel-allocator host bindings --------------------------------
  BindHost("kmalloc", [](Interpreter& in, std::span<const uint64_t> args)
               -> Result<uint64_t> {
    uint64_t size = args.empty() ? 0 : args[0];
    uint64_t addr = in.kmalloc().Allocate(size);
    if (addr == 0) {
      return Internal("kmalloc: out of memory");
    }
    SVA_RETURN_IF_ERROR(
        in.memory().Fill(addr, 0, in.kmalloc().AllocationSize(addr)));
    return addr;
  });
  BindHost("_alloc_bootmem", [](Interpreter& in,
                                std::span<const uint64_t> args)
               -> Result<uint64_t> {
    uint64_t addr = in.kmalloc().Allocate(args.empty() ? 0 : args[0]);
    if (addr == 0) {
      return Internal("_alloc_bootmem: out of memory");
    }
    return addr;
  });
  BindHost("kfree",
           [](Interpreter& in,
              std::span<const uint64_t> args) -> Result<uint64_t> {
             if (args.empty() || args[0] == 0) {
               return uint64_t{0};
             }
             Status s = in.kmalloc().Free(args[0]);
             if (!s.ok()) {
               return SafetyViolation(
                   StrCat("kfree: ", s.message()));
             }
             return uint64_t{0};
           });
  BindHost("kmem_cache_create",
           [](Interpreter& in,
              std::span<const uint64_t> args) -> Result<uint64_t> {
             uint64_t size = args.empty() ? 8 : args[0];
             return in.CreateKmemCache(StrCat("cache-", size), size);
           });
  BindHost("kmem_cache_alloc",
           [](Interpreter& in,
              std::span<const uint64_t> args) -> Result<uint64_t> {
             if (args.empty()) {
               return InvalidArgument("kmem_cache_alloc: missing cache");
             }
             runtime::PoolAllocator* cache = in.KmemCacheAt(args[0]);
             if (cache == nullptr) {
               return InvalidArgument("kmem_cache_alloc: bad descriptor");
             }
             uint64_t addr = cache->Allocate();
             if (addr == 0) {
               return Internal("kmem_cache_alloc: out of memory");
             }
             SVA_RETURN_IF_ERROR(
                 in.memory().Fill(addr, 0, cache->object_size()));
             return addr;
           });
  BindHost("kmem_cache_free",
           [](Interpreter& in,
              std::span<const uint64_t> args) -> Result<uint64_t> {
             if (args.size() < 2) {
               return InvalidArgument("kmem_cache_free: missing args");
             }
             runtime::PoolAllocator* cache = in.KmemCacheAt(args[0]);
             if (cache == nullptr) {
               return InvalidArgument("kmem_cache_free: bad descriptor");
             }
             Status s = cache->Free(args[1]);
             if (!s.ok()) {
               return SafetyViolation(StrCat("kmem_cache_free: ",
                                             s.message()));
             }
             return uint64_t{0};
           });
  // The user-to-kernel copy routines. These model the *external kernel
  // library* of Section 7.2: they perform no checking of their own, which is
  // exactly why the ELF-loader exploit is missed when this library is not
  // part of the analyzed bytecode.
  BindHost("copy_from_user",
           [](Interpreter& in,
              std::span<const uint64_t> args) -> Result<uint64_t> {
             if (args.size() < 3) {
               return InvalidArgument("copy_from_user: missing args");
             }
             SVA_RETURN_IF_ERROR(in.memory().Copy(args[0], args[1], args[2]));
             return uint64_t{0};
           });
  BindHost("copy_to_user",
           [](Interpreter& in,
              std::span<const uint64_t> args) -> Result<uint64_t> {
             if (args.size() < 3) {
               return InvalidArgument("copy_to_user: missing args");
             }
             SVA_RETURN_IF_ERROR(in.memory().Copy(args[0], args[1], args[2]));
             return uint64_t{0};
           });
  BindHost("memset",
           [](Interpreter& in,
              std::span<const uint64_t> args) -> Result<uint64_t> {
             if (args.size() < 3) {
               return InvalidArgument("memset: missing args");
             }
             SVA_RETURN_IF_ERROR(in.memory().Fill(
                 args[0], static_cast<uint8_t>(args[1]), args[2]));
             return args[0];
           });
  BindHost("memcpy",
           [](Interpreter& in,
              std::span<const uint64_t> args) -> Result<uint64_t> {
             if (args.size() < 3) {
               return InvalidArgument("memcpy: missing args");
             }
             SVA_RETURN_IF_ERROR(in.memory().Copy(args[0], args[1], args[2]));
             return args[0];
           });
  BindHost("kmem_cache_size",
           [](Interpreter& in,
              std::span<const uint64_t> args) -> Result<uint64_t> {
             if (args.empty()) {
               return InvalidArgument("kmem_cache_size: missing descriptor");
             }
             runtime::PoolAllocator* cache = in.KmemCacheAt(args[0]);
             if (cache == nullptr) {
               return InvalidArgument("kmem_cache_size: bad descriptor");
             }
             return cache->object_size();
           });
  initialized_ = true;
  // The safety compiler synthesizes @sva.init to register global objects;
  // the SVM runs it as part of loading the module (kernel "entry").
  vir::Function* init = module_.GetFunction("sva.init");
  if (init != nullptr && !init->is_declaration()) {
    ExecResult r = Run("sva.init", {});
    if (!r.status.ok()) {
      return r.status;
    }
  }
  return OkStatus();
}

void Interpreter::BindHost(const std::string& name, HostFn fn) {
  host_fns_[name] = std::move(fn);
}

uint64_t Interpreter::GlobalAddress(const std::string& name) const {
  auto it = global_addresses_.find(name);
  return it == global_addresses_.end() ? 0 : it->second;
}

uint64_t Interpreter::FunctionAddress(const std::string& name) const {
  auto it = function_addresses_.find(name);
  return it == function_addresses_.end() ? 0 : it->second;
}

const Function* Interpreter::FunctionAt(uint64_t code_address) const {
  auto it = functions_by_address_.find(code_address);
  return it == functions_by_address_.end() ? nullptr : it->second;
}

runtime::MetaPool* Interpreter::PoolForHandle(uint64_t handle_address) const {
  auto it = pools_by_handle_.find(handle_address);
  return it == pools_by_handle_.end() ? nullptr : it->second;
}

runtime::MetaPool* Interpreter::PoolByName(const std::string& name) const {
  return pools_.FindPool(name);
}

uint64_t Interpreter::CreateKmemCache(const std::string& name,
                                      uint64_t object_size) {
  uint64_t descriptor = memory_->AllocateRegion(64, 16);
  if (descriptor == 0) {
    return 0;
  }
  kmem_caches_[descriptor] = std::make_unique<runtime::PoolAllocator>(
      name, object_size, memory_->pages());
  return descriptor;
}

runtime::PoolAllocator* Interpreter::KmemCacheAt(uint64_t descriptor) {
  auto it = kmem_caches_.find(descriptor);
  return it == kmem_caches_.end() ? nullptr : it->second.get();
}

Result<uint64_t> Interpreter::Eval(const Frame& frame, const Value* v) const {
  switch (v->value_kind()) {
    case vir::ValueKind::kConstantInt:
      return static_cast<const ConstantInt*>(v)->zext_value();
    case vir::ValueKind::kConstantNull:
      return uint64_t{0};
    case vir::ValueKind::kConstantUndef:
      return uint64_t{0};
    case vir::ValueKind::kConstantFloat:
      return InvalidArgument("float constant in integer context");
    case vir::ValueKind::kGlobalVariable: {
      auto it = global_addresses_.find(v->name());
      if (it == global_addresses_.end()) {
        return Internal(StrCat("unlaid global @", v->name()));
      }
      return it->second;
    }
    case vir::ValueKind::kFunction: {
      auto it = function_addresses_.find(v->name());
      if (it == function_addresses_.end()) {
        return Internal(StrCat("unassigned function @", v->name()));
      }
      return it->second;
    }
    case vir::ValueKind::kArgument:
    case vir::ValueKind::kInstruction:
      return frame.Get(v);
  }
  return Internal("bad value kind");
}

Result<double> Interpreter::EvalF(const Frame& frame, const Value* v) const {
  if (v->value_kind() == vir::ValueKind::kConstantFloat) {
    return static_cast<const ConstantFloat*>(v)->value();
  }
  if (v->value_kind() == vir::ValueKind::kConstantUndef) {
    return 0.0;
  }
  return frame.GetF(v);
}

Result<uint64_t> Interpreter::RunIntrinsic(const Function& callee,
                                           std::span<const uint64_t> args,
                                           bool* handled) {
  *handled = true;
  Intrinsic which = vir::LookupIntrinsic(callee.name());
  if (which == Intrinsic::kNone) {
    *handled = false;
    return uint64_t{0};
  }
  return RunIntrinsicById(which, args);
}

Result<uint64_t> Interpreter::RunIntrinsicById(vir::Intrinsic which,
                                               std::span<const uint64_t> args) {
  if (!options_.enforce_checks) {
    return uint64_t{0};
  }
  auto pool_arg = [&](size_t i) -> Result<runtime::MetaPool*> {
    if (i >= args.size()) {
      return InvalidArgument("intrinsic: missing metapool argument");
    }
    runtime::MetaPool* pool = PoolForHandle(args[i]);
    if (pool == nullptr) {
      return InvalidArgument(
          StrCat("intrinsic: bad metapool handle 0x", std::hex, args[i]));
    }
    return pool;
  };
  switch (which) {
    case Intrinsic::kPchkRegObj: {
      SVA_ASSIGN_OR_RETURN(runtime::MetaPool* pool, pool_arg(0));
      SVA_RETURN_IF_ERROR(pools_.RegisterObject(*pool, args[1], args[2]));
      return uint64_t{0};
    }
    case Intrinsic::kPchkDropObj: {
      SVA_ASSIGN_OR_RETURN(runtime::MetaPool* pool, pool_arg(0));
      SVA_RETURN_IF_ERROR(pools_.DropObject(*pool, args[1]));
      return uint64_t{0};
    }
    case Intrinsic::kBoundsCheck: {
      SVA_ASSIGN_OR_RETURN(runtime::MetaPool* pool, pool_arg(0));
      SVA_RETURN_IF_ERROR(pools_.BoundsCheck(*pool, args[1], args[2]));
      return uint64_t{0};
    }
    case Intrinsic::kBoundsCheckDirect: {
      SVA_RETURN_IF_ERROR(
          pools_.BoundsCheckDirect(args[0], args[1], args[2]));
      return uint64_t{0};
    }
    case Intrinsic::kGetBounds: {
      SVA_ASSIGN_OR_RETURN(runtime::MetaPool* pool, pool_arg(0));
      std::optional<runtime::ObjectRange> range =
          pools_.GetBounds(*pool, args[1]);
      uint64_t start = range.has_value() ? range->start : 0;
      uint64_t end = range.has_value() ? range->end() : 0;
      SVA_RETURN_IF_ERROR(memory_->Write(args[2], 8, start));
      SVA_RETURN_IF_ERROR(memory_->Write(args[3], 8, end));
      return uint64_t{0};
    }
    case Intrinsic::kLSCheck: {
      SVA_ASSIGN_OR_RETURN(runtime::MetaPool* pool, pool_arg(0));
      SVA_RETURN_IF_ERROR(pools_.LoadStoreCheck(*pool, args[1]));
      return uint64_t{0};
    }
    case Intrinsic::kIndirectCheck: {
      uint64_t module_set = args[1];
      uint64_t runtime_set = module_set < runtime_set_ids_.size()
                                 ? runtime_set_ids_[module_set]
                                 : module_set;
      SVA_RETURN_IF_ERROR(pools_.IndirectCallCheck(args[0], runtime_set));
      return uint64_t{0};
    }
    case Intrinsic::kPseudoAlloc:
      // The safety compiler rewrites pseudo_alloc into pchk.reg.obj; a
      // remaining call is a benign no-op in uninstrumented code.
      return uint64_t{0};
    case Intrinsic::kRegisterSyscall:
      // Static information for the pointer analysis; nothing to do at run
      // time in the SVM (the minikernel keeps its own dispatch table).
      return uint64_t{0};
    case Intrinsic::kNone:
      break;
  }
  return uint64_t{0};
}

Result<uint64_t> Interpreter::AllocaBytes(uint64_t elem_size, uint64_t count) {
  uint64_t size = 0;
  if (!sem::ScaledAllocSize(elem_size, count, &size)) {
    return sem::AllocSizeOverflow("alloca");
  }
  uint64_t base = (stack_top_ + 15) / 16 * 16;
  // `base < stack_top_` catches alignment wraparound at the top of the
  // address space; the subtraction form avoids `base + size` overflowing
  // into a "fits" verdict.
  if (base < stack_top_ || base > stack_limit_ ||
      size > stack_limit_ - base) {
    return SafetyViolation("kernel stack overflow");
  }
  stack_top_ = base + size;
  return base;
}

Result<uint64_t> Interpreter::MallocBytes(uint64_t elem_size, uint64_t count) {
  uint64_t size = 0;
  if (!sem::ScaledAllocSize(elem_size, count, &size)) {
    return sem::AllocSizeOverflow("malloc");
  }
  uint64_t addr = kmalloc_->Allocate(size == 0 ? 1 : size);
  if (addr == 0) {
    return Internal("malloc: out of memory");
  }
  SVA_RETURN_IF_ERROR(memory_->Fill(addr, 0, kmalloc_->AllocationSize(addr)));
  return addr;
}

Status Interpreter::FreeAddr(uint64_t addr) {
  if (addr == 0) {
    return OkStatus();
  }
  Status s = kmalloc_->Free(addr);
  if (!s.ok()) {
    return SafetyViolation(s.message());
  }
  return OkStatus();
}

ExecResult Interpreter::Run(const std::string& name,
                            const std::vector<uint64_t>& args) {
  ExecResult result;
  if (!initialized_) {
    result.status = FailedPrecondition("Initialize() has not been called");
    return result;
  }
  Function* fn = module_.GetFunction(name);
  if (fn == nullptr || fn->is_declaration()) {
    result.status = NotFound(StrCat("no defined function @", name));
    return result;
  }
  steps_ = 0;
  result = RunFunction(*fn, args, {}, 0);
  result.steps = steps_;
  // Fold this run's dispatch accounting into the process-wide tier
  // counters (/metrics and svm-run --stats read those).
  trace::TierCounters& tiers = trace::TierCounters::Get();
  tiers.interp_fns.fetch_add(tier_interp_fns_, std::memory_order_relaxed);
  tiers.interp_ops.fetch_add(tier_interp_ops_, std::memory_order_relaxed);
  tiers.threaded_fns.fetch_add(tier_threaded_fns_,
                               std::memory_order_relaxed);
  tiers.threaded_ops.fetch_add(tier_threaded_ops_,
                               std::memory_order_relaxed);
  tier_interp_fns_ = tier_interp_ops_ = 0;
  tier_threaded_fns_ = tier_threaded_ops_ = 0;
  return result;
}

ExecResult Interpreter::RunFunction(const Function& fn,
                                    const std::vector<uint64_t>& args,
                                    const std::vector<double>& fargs,
                                    uint64_t depth) {
  if (depth > kMaxCallDepth) {
    ExecResult result;
    result.status = Internal("call depth limit exceeded");
    return result;
  }
  // Tier dispatch: run pre-decoded threaded code when the engine has it;
  // functions the decoder rejected fall through to the tree-walker. Nested
  // calls from either tier come back through here, so the fallback is
  // uniformly per-function.
  const ThreadedCode* code =
      threaded_ != nullptr ? threaded_->CodeFor(fn) : nullptr;
  // Publish this guest frame to the sampling profiler; nested calls from
  // both tiers funnel through here, so the sampled stack is the real guest
  // call stack, tier-tagged per frame.
  trace::ProfGuestFrameScope prof;
  if (trace::prof_enabled()) {
    prof.Enter(ProfFunctionId(fn), /*threaded=*/code != nullptr,
               /*safe_mode=*/options_.enforce_checks);
  }
  if (code != nullptr) {
    return threaded_->Execute(*code, args, fargs, depth);
  }
  return RunFunctionInterp(fn, args, fargs, depth);
}

uint32_t Interpreter::ProfFunctionId(const vir::Function& fn) {
  auto it = prof_name_ids_.find(&fn);
  if (it != prof_name_ids_.end()) {
    return it->second;
  }
  uint32_t id = trace::InternProfName(StrCat("guest:", fn.name()));
  prof_name_ids_.emplace(&fn, id);
  return id;
}

ExecResult Interpreter::RunFunctionInterp(const Function& fn,
                                          const std::vector<uint64_t>& args,
                                          const std::vector<double>& fargs,
                                          uint64_t depth) {
  ExecResult result;
  ++tier_interp_fns_;
  Frame frame;
  size_t fi = 0;
  for (size_t i = 0; i < fn.num_args(); ++i) {
    const Argument* arg = fn.arg(i);
    if (arg->type()->IsFloat()) {
      frame.SetF(arg, fi < fargs.size() ? fargs[fi++] : 0.0);
    } else {
      frame.Set(arg, i < args.size() ? args[i] : 0);
    }
  }

  uint64_t saved_stack = stack_top_;
  const BasicBlock* block = fn.entry();
  const BasicBlock* prev_block = nullptr;
  size_t index = 0;

  auto fail = [&](Status s) {
    stack_top_ = saved_stack;
    result.status = std::move(s);
    return result;
  };

  while (true) {
    if (block == nullptr || index >= block->instructions().size()) {
      return fail(Internal(StrCat("fell off the end of block in @",
                                  fn.name())));
    }
    const Instruction* inst = block->instructions()[index].get();
    ++tier_interp_ops_;
    if (++steps_ > options_.max_steps) {
      return fail(Internal("instruction budget exhausted"));
    }

    switch (inst->opcode()) {
      // --- Integer binary ops ---------------------------------------------
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kUDiv:
      case Opcode::kSDiv:
      case Opcode::kURem:
      case Opcode::kSRem:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kLShr:
      case Opcode::kAShr: {
        auto lr = Eval(frame, inst->operand(0));
        auto rr = Eval(frame, inst->operand(1));
        if (!lr.ok()) {
          return fail(lr.status());
        }
        if (!rr.ok()) {
          return fail(rr.status());
        }
        unsigned bits = BitWidthOf(inst->type());
        uint64_t l = MaskToWidth(*lr, bits);
        uint64_t r = MaskToWidth(*rr, bits);
        uint64_t out = 0;
        sem::ArithTrap trap =
            sem::EvalIntBinary(inst->opcode(), l, r, bits, &out);
        if (trap != sem::ArithTrap::kNone) {
          return fail(sem::ArithTrapStatus(trap));
        }
        frame.Set(inst, MaskToWidth(out, bits));
        break;
      }
      // --- Floating binary ops ---------------------------------------------
      case Opcode::kFAdd:
      case Opcode::kFSub:
      case Opcode::kFMul:
      case Opcode::kFDiv: {
        auto lr = EvalF(frame, inst->operand(0));
        auto rr = EvalF(frame, inst->operand(1));
        if (!lr.ok() || !rr.ok()) {
          return fail(lr.ok() ? rr.status() : lr.status());
        }
        frame.SetF(inst, sem::EvalFloatBinary(inst->opcode(), *lr, *rr));
        break;
      }
      case Opcode::kICmp: {
        const auto* cmp = static_cast<const CmpInst*>(inst);
        auto lr = Eval(frame, cmp->lhs());
        auto rr = Eval(frame, cmp->rhs());
        if (!lr.ok() || !rr.ok()) {
          return fail(lr.ok() ? rr.status() : lr.status());
        }
        unsigned bits = BitWidthOf(cmp->lhs()->type());
        frame.Set(inst, sem::EvalICmp(cmp->pred(), *lr, *rr, bits) ? 1 : 0);
        break;
      }
      case Opcode::kFCmp: {
        const auto* cmp = static_cast<const CmpInst*>(inst);
        auto lr = EvalF(frame, cmp->lhs());
        auto rr = EvalF(frame, cmp->rhs());
        if (!lr.ok() || !rr.ok()) {
          return fail(lr.ok() ? rr.status() : lr.status());
        }
        frame.Set(inst, sem::EvalFCmp(cmp->pred(), *lr, *rr) ? 1 : 0);
        break;
      }
      case Opcode::kSelect: {
        const auto* sel = static_cast<const SelectInst*>(inst);
        auto cr = Eval(frame, sel->condition());
        if (!cr.ok()) {
          return fail(cr.status());
        }
        const Value* chosen = (*cr & 1) != 0 ? sel->true_value()
                                             : sel->false_value();
        if (inst->type()->IsFloat()) {
          auto v = EvalF(frame, chosen);
          if (!v.ok()) {
            return fail(v.status());
          }
          frame.SetF(inst, *v);
        } else {
          auto v = Eval(frame, chosen);
          if (!v.ok()) {
            return fail(v.status());
          }
          frame.Set(inst, *v);
        }
        break;
      }
      // --- Casts -------------------------------------------------------------
      case Opcode::kTrunc:
      case Opcode::kZExt:
      case Opcode::kBitcast:
      case Opcode::kPtrToInt:
      case Opcode::kIntToPtr: {
        const auto* cast = static_cast<const CastInst*>(inst);
        auto v = Eval(frame, cast->src());
        if (!v.ok()) {
          return fail(v.status());
        }
        frame.Set(inst, MaskToWidth(*v, BitWidthOf(inst->type())));
        break;
      }
      case Opcode::kSExt: {
        const auto* cast = static_cast<const CastInst*>(inst);
        auto v = Eval(frame, cast->src());
        if (!v.ok()) {
          return fail(v.status());
        }
        unsigned src_bits = BitWidthOf(cast->src()->type());
        frame.Set(inst,
                  MaskToWidth(static_cast<uint64_t>(SignExtend(*v, src_bits)),
                              BitWidthOf(inst->type())));
        break;
      }
      case Opcode::kSIToFP: {
        const auto* cast = static_cast<const CastInst*>(inst);
        auto v = Eval(frame, cast->src());
        if (!v.ok()) {
          return fail(v.status());
        }
        frame.SetF(inst, static_cast<double>(
                             SignExtend(*v, BitWidthOf(cast->src()->type()))));
        break;
      }
      case Opcode::kFPToSI: {
        const auto* cast = static_cast<const CastInst*>(inst);
        auto v = EvalF(frame, cast->src());
        if (!v.ok()) {
          return fail(v.status());
        }
        frame.Set(inst, MaskToWidth(static_cast<uint64_t>(
                                        static_cast<int64_t>(*v)),
                                    BitWidthOf(inst->type())));
        break;
      }
      // --- Memory -------------------------------------------------------------
      case Opcode::kAlloca: {
        const auto* a = static_cast<const AllocaInst*>(inst);
        auto count = Eval(frame, a->count());
        if (!count.ok()) {
          return fail(count.status());
        }
        auto base = AllocaBytes(vir::SizeOf(a->allocated_type()), *count);
        if (!base.ok()) {
          return fail(base.status());
        }
        frame.Set(inst, *base);
        break;
      }
      case Opcode::kMalloc: {
        const auto* m = static_cast<const MallocInst*>(inst);
        auto count = Eval(frame, m->count());
        if (!count.ok()) {
          return fail(count.status());
        }
        auto addr = MallocBytes(vir::SizeOf(m->allocated_type()), *count);
        if (!addr.ok()) {
          return fail(addr.status());
        }
        frame.Set(inst, *addr);
        break;
      }
      case Opcode::kFree: {
        const auto* f = static_cast<const FreeInst*>(inst);
        auto addr = Eval(frame, f->pointer());
        if (!addr.ok()) {
          return fail(addr.status());
        }
        Status s = FreeAddr(*addr);
        if (!s.ok()) {
          return fail(s);
        }
        break;
      }
      case Opcode::kLoad: {
        const auto* load = static_cast<const LoadInst*>(inst);
        auto addr = Eval(frame, load->pointer());
        if (!addr.ok()) {
          return fail(addr.status());
        }
        const Type* t = inst->type();
        if (t->IsFloat()) {
          if (static_cast<const vir::FloatType*>(t)->bits() == 32) {
            auto v = memory_->ReadF32(*addr);
            if (!v.ok()) {
              return fail(v.status());
            }
            frame.SetF(inst, *v);
          } else {
            auto v = memory_->ReadF64(*addr);
            if (!v.ok()) {
              return fail(v.status());
            }
            frame.SetF(inst, *v);
          }
        } else {
          auto v = memory_->Read(*addr,
                                 static_cast<unsigned>(vir::SizeOf(t)));
          if (!v.ok()) {
            return fail(v.status());
          }
          frame.Set(inst, *v);
        }
        break;
      }
      case Opcode::kStore: {
        const auto* store = static_cast<const StoreInst*>(inst);
        auto addr = Eval(frame, store->pointer());
        if (!addr.ok()) {
          return fail(addr.status());
        }
        const Type* t = store->stored_value()->type();
        Status s;
        if (t->IsFloat()) {
          auto v = EvalF(frame, store->stored_value());
          if (!v.ok()) {
            return fail(v.status());
          }
          s = static_cast<const vir::FloatType*>(t)->bits() == 32
                  ? memory_->WriteF32(*addr, static_cast<float>(*v))
                  : memory_->WriteF64(*addr, *v);
        } else {
          auto v = Eval(frame, store->stored_value());
          if (!v.ok()) {
            return fail(v.status());
          }
          s = memory_->Write(*addr, static_cast<unsigned>(vir::SizeOf(t)),
                             *v);
        }
        if (!s.ok()) {
          return fail(s);
        }
        break;
      }
      case Opcode::kGetElementPtr: {
        const auto* gep = static_cast<const GetElementPtrInst*>(inst);
        auto base = Eval(frame, gep->base());
        if (!base.ok()) {
          return fail(base.status());
        }
        const Type* current =
            static_cast<const PointerType*>(gep->base()->type())->pointee();
        auto idx0 = Eval(frame, gep->index(0));
        if (!idx0.ok()) {
          return fail(idx0.status());
        }
        int64_t offset =
            SignExtend(*idx0, BitWidthOf(gep->index(0)->type())) *
            static_cast<int64_t>(vir::SizeOf(current));
        for (size_t i = 1; i < gep->num_indices(); ++i) {
          if (current->IsArray()) {
            const auto* at = static_cast<const vir::ArrayType*>(current);
            auto idx = Eval(frame, gep->index(i));
            if (!idx.ok()) {
              return fail(idx.status());
            }
            offset += SignExtend(*idx, BitWidthOf(gep->index(i)->type())) *
                      static_cast<int64_t>(vir::SizeOf(at->element()));
            current = at->element();
          } else {
            const auto* st = static_cast<const vir::StructType*>(current);
            auto idx = Eval(frame, gep->index(i));
            if (!idx.ok()) {
              return fail(idx.status());
            }
            unsigned field = static_cast<unsigned>(*idx);
            offset += static_cast<int64_t>(
                vir::StructFieldOffset(st, field));
            current = st->fields()[field];
          }
        }
        frame.Set(inst, *base + static_cast<uint64_t>(offset));
        break;
      }
      case Opcode::kAtomicLIS: {
        const auto* a = static_cast<const AtomicLISInst*>(inst);
        auto addr = Eval(frame, a->pointer());
        auto delta = Eval(frame, a->delta());
        if (!addr.ok() || !delta.ok()) {
          return fail(addr.ok() ? delta.status() : addr.status());
        }
        unsigned width = static_cast<unsigned>(vir::SizeOf(inst->type()));
        auto old = memory_->Read(*addr, width);
        if (!old.ok()) {
          return fail(old.status());
        }
        Status s = memory_->Write(*addr, width, *old + *delta);
        if (!s.ok()) {
          return fail(s);
        }
        frame.Set(inst, *old);
        break;
      }
      case Opcode::kCmpXchg: {
        const auto* c = static_cast<const CmpXchgInst*>(inst);
        auto addr = Eval(frame, c->pointer());
        auto expected = Eval(frame, c->expected());
        auto desired = Eval(frame, c->desired());
        if (!addr.ok() || !expected.ok() || !desired.ok()) {
          return fail(!addr.ok() ? addr.status()
                                 : (!expected.ok() ? expected.status()
                                                   : desired.status()));
        }
        unsigned width = static_cast<unsigned>(vir::SizeOf(inst->type()));
        auto old = memory_->Read(*addr, width);
        if (!old.ok()) {
          return fail(old.status());
        }
        if (*old == *expected) {
          Status s = memory_->Write(*addr, width, *desired);
          if (!s.ok()) {
            return fail(s);
          }
        }
        frame.Set(inst, *old);
        break;
      }
      case Opcode::kWriteBarrier:
        break;  // Single-threaded interpreter: ordering is trivial.
      // --- Calls --------------------------------------------------------------
      case Opcode::kCall: {
        const auto* call = static_cast<const CallInst*>(inst);
        const Function* target = nullptr;
        if (const auto* direct =
                dynamic_cast<const Function*>(call->callee())) {
          target = direct;
        } else {
          auto fp = Eval(frame, call->callee());
          if (!fp.ok()) {
            return fail(fp.status());
          }
          target = FunctionAt(*fp);
          if (target == nullptr) {
            return fail(SafetyViolation(
                StrCat("indirect call to non-code address 0x", std::hex,
                       *fp)));
          }
        }
        std::vector<uint64_t> call_args;
        std::vector<double> call_fargs;
        for (size_t i = 0; i < call->num_args(); ++i) {
          if (call->arg(i)->type()->IsFloat()) {
            auto v = EvalF(frame, call->arg(i));
            if (!v.ok()) {
              return fail(v.status());
            }
            call_fargs.push_back(*v);
            call_args.push_back(0);
          } else {
            auto v = Eval(frame, call->arg(i));
            if (!v.ok()) {
              return fail(v.status());
            }
            call_args.push_back(*v);
          }
        }
        bool handled = false;
        auto intrinsic_result = RunIntrinsic(*target, call_args, &handled);
        if (handled) {
          if (!intrinsic_result.ok()) {
            return fail(intrinsic_result.status());
          }
          if (!inst->type()->IsVoid()) {
            frame.Set(inst, *intrinsic_result);
          }
        } else if (!target->is_declaration()) {
          ExecResult sub =
              RunFunction(*target, call_args, call_fargs, depth + 1);
          if (!sub.status.ok()) {
            return fail(sub.status);
          }
          if (!inst->type()->IsVoid()) {
            if (inst->type()->IsFloat()) {
              frame.SetF(inst, sub.fvalue);
            } else {
              frame.Set(inst, sub.value);
            }
          }
        } else {
          auto host = host_fns_.find(target->name());
          if (host == host_fns_.end()) {
            return fail(Unimplemented(
                StrCat("call to unbound external @", target->name())));
          }
          auto r = host->second(*this, call_args);
          if (!r.ok()) {
            return fail(r.status());
          }
          if (!inst->type()->IsVoid()) {
            frame.Set(inst, *r);
          }
        }
        break;
      }
      // --- Control flow ---------------------------------------------------------
      case Opcode::kPhi: {
        // Evaluate the whole phi group against prev_block atomically.
        std::vector<std::pair<const Instruction*, uint64_t>> ivals;
        std::vector<std::pair<const Instruction*, double>> fvals;
        size_t k = index;
        while (k < block->instructions().size() &&
               block->instructions()[k]->opcode() == Opcode::kPhi) {
          const auto* phi =
              static_cast<const PhiInst*>(block->instructions()[k].get());
          const Value* in = phi->ValueForBlock(prev_block);
          if (in == nullptr) {
            return fail(Internal(StrCat("phi in @", fn.name(),
                                        " missing incoming block")));
          }
          if (phi->type()->IsFloat()) {
            auto v = EvalF(frame, in);
            if (!v.ok()) {
              return fail(v.status());
            }
            fvals.emplace_back(phi, *v);
          } else {
            auto v = Eval(frame, in);
            if (!v.ok()) {
              return fail(v.status());
            }
            ivals.emplace_back(phi, *v);
          }
          ++k;
        }
        for (const auto& [phi, v] : ivals) {
          frame.Set(phi, v);
        }
        for (const auto& [phi, v] : fvals) {
          frame.SetF(phi, v);
        }
        steps_ += k - index - 1;
        index = k;
        continue;  // Skip the common ++index below.
      }
      case Opcode::kBr: {
        const auto* br = static_cast<const BranchInst*>(inst);
        const BasicBlock* next;
        if (br->is_conditional()) {
          auto c = Eval(frame, br->condition());
          if (!c.ok()) {
            return fail(c.status());
          }
          next = (*c & 1) != 0 ? br->target(0) : br->target(1);
        } else {
          next = br->target(0);
        }
        prev_block = block;
        block = next;
        index = 0;
        continue;
      }
      case Opcode::kSwitch: {
        const auto* sw = static_cast<const SwitchInst*>(inst);
        auto v = Eval(frame, sw->condition());
        if (!v.ok()) {
          return fail(v.status());
        }
        const BasicBlock* next = sw->default_target();
        unsigned bits = BitWidthOf(sw->condition()->type());
        for (size_t i = 0; i < sw->num_cases(); ++i) {
          if (MaskToWidth(sw->case_value(i), bits) == MaskToWidth(*v, bits)) {
            next = sw->case_target(i);
            break;
          }
        }
        prev_block = block;
        block = next;
        index = 0;
        continue;
      }
      case Opcode::kRet: {
        const auto* ret = static_cast<const RetInst*>(inst);
        if (ret->has_value()) {
          if (ret->value()->type()->IsFloat()) {
            auto v = EvalF(frame, ret->value());
            if (!v.ok()) {
              return fail(v.status());
            }
            result.fvalue = *v;
          } else {
            auto v = Eval(frame, ret->value());
            if (!v.ok()) {
              return fail(v.status());
            }
            result.value = *v;
          }
        }
        stack_top_ = saved_stack;
        result.status = OkStatus();
        return result;
      }
      case Opcode::kUnreachable:
        return fail(Internal(StrCat("executed unreachable in @", fn.name())));
    }
    ++index;
  }
}

}  // namespace sva::svm
