// Shared arithmetic and trap semantics for the SVM's execution tiers.
//
// Both engines — the tree-walking interpreter (interp.cc) and the
// threaded-code tier (threaded_interp.cc) — compile against these inline
// helpers, so the two tiers cannot diverge on what an SVA-Core instruction
// computes or when it traps. The differential battery in
// tests/tier_parity_test.cc asserts this empirically; this header makes it
// true by construction.
//
// Trap rules (all surfaced as SafetyViolation, never as host UB):
//   - udiv/sdiv by zero, urem/srem by zero.
//   - sdiv/srem of MIN_INT(width) by -1: two's-complement overflow. On the
//     host this is undefined behaviour (SIGFPE on x86 for the 64-bit case),
//     so a verified guest could previously kill the SVM with
//     `sdiv i64 INT64_MIN, -1`. The guard is width-generic: `sdiv i8 -128,
//     -1` traps identically, keeping guest semantics uniform instead of
//     silently wrapping at narrow widths while trapping at 64 bits.
//   - Shift amounts >= the operand width produce 0 for shl/lshr and the
//     sign fill (0 or all-ones) for ashr — fully defined, never host UB.
//   - Allocation-size computations (alloca/malloc element count x element
//     size) that overflow uint64 trap instead of wrapping to a small
//     allocation that later indexing would "legitimately" overrun.
#ifndef SVA_SRC_SVM_EXEC_SEMANTICS_H_
#define SVA_SRC_SVM_EXEC_SEMANTICS_H_

#include <cstdint>

#include "src/support/status.h"
#include "src/vir/instructions.h"
#include "src/vir/type.h"

namespace sva::svm::sem {

inline uint64_t MaskToWidth(uint64_t v, unsigned bits) {
  if (bits >= 64) {
    return v;
  }
  return v & ((uint64_t{1} << bits) - 1);
}

inline int64_t SignExtend(uint64_t v, unsigned bits) {
  if (bits >= 64) {
    return static_cast<int64_t>(v);
  }
  uint64_t sign = uint64_t{1} << (bits - 1);
  v = MaskToWidth(v, bits);
  return static_cast<int64_t>(v ^ sign) - static_cast<int64_t>(sign);
}

inline unsigned BitWidthOf(const vir::Type* t) {
  if (t->IsInt()) {
    return static_cast<const vir::IntType*>(t)->bits();
  }
  return 64;  // Pointers.
}

// The most negative value representable at `bits` (e.g. -128 for i8).
inline int64_t MinSigned(unsigned bits) {
  if (bits >= 64) {
    return INT64_MIN;
  }
  return -(int64_t{1} << (bits - 1));
}

// How an integer binary op failed; kNone on success.
enum class ArithTrap : uint8_t {
  kNone = 0,
  kDivByZero,
  kRemByZero,
  kDivOverflow,  // MIN_INT(width) / -1 (or the srem twin).
};

inline Status ArithTrapStatus(ArithTrap trap) {
  switch (trap) {
    case ArithTrap::kDivByZero:
      return SafetyViolation("integer division by zero");
    case ArithTrap::kRemByZero:
      return SafetyViolation("integer remainder by zero");
    case ArithTrap::kDivOverflow:
      return SafetyViolation("integer overflow in division");
    case ArithTrap::kNone:
      break;
  }
  return OkStatus();
}

// Evaluates one SVA-Core integer binary op on operands already masked to
// `bits`. Writes the (unmasked) result to *out; the caller masks. Returns
// the trap kind (kNone on success).
//
// `op` must be one of kAdd..kAShr; anything else is a caller bug.
inline ArithTrap EvalIntBinary(vir::Opcode op, uint64_t l, uint64_t r,
                               unsigned bits, uint64_t* out) {
  using vir::Opcode;
  switch (op) {
    case Opcode::kAdd:
      *out = l + r;
      return ArithTrap::kNone;
    case Opcode::kSub:
      *out = l - r;
      return ArithTrap::kNone;
    case Opcode::kMul:
      *out = l * r;
      return ArithTrap::kNone;
    case Opcode::kUDiv:
      if (r == 0) {
        return ArithTrap::kDivByZero;
      }
      *out = l / r;
      return ArithTrap::kNone;
    case Opcode::kSDiv: {
      if (r == 0) {
        return ArithTrap::kDivByZero;
      }
      int64_t ls = SignExtend(l, bits);
      int64_t rs = SignExtend(r, bits);
      if (ls == MinSigned(bits) && rs == -1) {
        return ArithTrap::kDivOverflow;
      }
      *out = static_cast<uint64_t>(ls / rs);
      return ArithTrap::kNone;
    }
    case Opcode::kURem:
      if (r == 0) {
        return ArithTrap::kRemByZero;
      }
      *out = l % r;
      return ArithTrap::kNone;
    case Opcode::kSRem: {
      if (r == 0) {
        return ArithTrap::kRemByZero;
      }
      int64_t ls = SignExtend(l, bits);
      int64_t rs = SignExtend(r, bits);
      if (ls == MinSigned(bits) && rs == -1) {
        // Mathematically the remainder is 0, but the host idiv raises
        // SIGFPE computing it; trap like the division twin so both tiers
        // (and any future native tier) agree without relying on host
        // quirks.
        return ArithTrap::kDivOverflow;
      }
      *out = static_cast<uint64_t>(ls % rs);
      return ArithTrap::kNone;
    }
    case Opcode::kAnd:
      *out = l & r;
      return ArithTrap::kNone;
    case Opcode::kOr:
      *out = l | r;
      return ArithTrap::kNone;
    case Opcode::kXor:
      *out = l ^ r;
      return ArithTrap::kNone;
    case Opcode::kShl:
      *out = r >= bits ? 0 : l << r;
      return ArithTrap::kNone;
    case Opcode::kLShr:
      *out = r >= bits ? 0 : l >> r;
      return ArithTrap::kNone;
    case Opcode::kAShr:
      *out = static_cast<uint64_t>(SignExtend(l, bits) >>
                                   (r >= bits ? bits - 1 : r));
      return ArithTrap::kNone;
    default:
      *out = 0;
      return ArithTrap::kNone;
  }
}

inline double EvalFloatBinary(vir::Opcode op, double l, double r) {
  using vir::Opcode;
  switch (op) {
    case Opcode::kFAdd: return l + r;
    case Opcode::kFSub: return l - r;
    case Opcode::kFMul: return l * r;
    case Opcode::kFDiv: return l / r;  // IEEE: inf/nan, never traps.
    default: return 0;
  }
}

// icmp on operands NOT yet masked; masks/sign-extends internally so both
// tiers agree on sub-64-bit comparisons.
inline bool EvalICmp(vir::CmpPred pred, uint64_t lraw, uint64_t rraw,
                     unsigned bits) {
  using vir::CmpPred;
  uint64_t l = MaskToWidth(lraw, bits);
  uint64_t r = MaskToWidth(rraw, bits);
  switch (pred) {
    case CmpPred::kEq: return l == r;
    case CmpPred::kNe: return l != r;
    case CmpPred::kUGt: return l > r;
    case CmpPred::kUGe: return l >= r;
    case CmpPred::kULt: return l < r;
    case CmpPred::kULe: return l <= r;
    case CmpPred::kSGt: return SignExtend(l, bits) > SignExtend(r, bits);
    case CmpPred::kSGe: return SignExtend(l, bits) >= SignExtend(r, bits);
    case CmpPred::kSLt: return SignExtend(l, bits) < SignExtend(r, bits);
    case CmpPred::kSLe: return SignExtend(l, bits) <= SignExtend(r, bits);
  }
  return false;
}

inline bool EvalFCmp(vir::CmpPred pred, double l, double r) {
  using vir::CmpPred;
  switch (pred) {
    case CmpPred::kEq: return l == r;
    case CmpPred::kNe: return l != r;
    case CmpPred::kUGt:
    case CmpPred::kSGt: return l > r;
    case CmpPred::kUGe:
    case CmpPred::kSGe: return l >= r;
    case CmpPred::kULt:
    case CmpPred::kSLt: return l < r;
    case CmpPred::kULe:
    case CmpPred::kSLe: return l <= r;
  }
  return false;
}

// elem_size * count for alloca/malloc, refusing uint64 wraparound (a guest
// could otherwise turn `alloca i64, 0x2000000000000000` into a tiny
// allocation whose later indexing stays "in bounds" of the wrapped size).
inline bool ScaledAllocSize(uint64_t elem_size, uint64_t count,
                            uint64_t* out) {
  if (count != 0 && elem_size > UINT64_MAX / count) {
    return false;
  }
  *out = elem_size * count;
  return true;
}

inline Status AllocSizeOverflow(const char* what) {
  return SafetyViolation(
      std::string("integer overflow in ") + what + " size");
}

// Guest calls recurse through the host stack in both tiers, so the guest
// depth bound is also a host frame bound. 256 is plenty for the corpus and
// keeps the runaway-recursion path well inside the default host stack even
// under ASan instrumentation.
inline constexpr uint64_t kMaxCallDepth = 256;

}  // namespace sva::svm::sem

#endif  // SVA_SRC_SVM_EXEC_SEMANTICS_H_
