// The flat virtual address space the SVM translator executes bytecode in.
//
// Layout (all addresses are offsets into one simulated arena; address 0 is
// never mapped, so null dereferences fault):
//
//   [0, 4K)                  : null guard page
//   [4K, user_base)          : reserved
//   [user_base, user_end)    : simulated userspace (Section 4.6 object)
//   [kernel_base, ...)       : globals, stack, and heap regions, laid out
//                              bottom-up by the interpreter at load time
#ifndef SVA_SRC_SVM_ADDRESS_SPACE_H_
#define SVA_SRC_SVM_ADDRESS_SPACE_H_

#include <cstdint>
#include <vector>

#include "src/support/status.h"
#include "src/runtime/pool_allocator.h"

namespace sva::svm {

class AddressSpace {
 public:
  static constexpr uint64_t kNullGuard = 4096;
  static constexpr uint64_t kDefaultUserBase = 0x10000;
  static constexpr uint64_t kDefaultUserSize = 0x40000;   // 256 KiB of "user"
  static constexpr uint64_t kPageSize = 4096;

  explicit AddressSpace(uint64_t size_bytes = 32ull << 20);

  uint64_t size() const { return bytes_.size(); }
  uint64_t user_base() const { return kDefaultUserBase; }
  uint64_t user_size() const { return kDefaultUserSize; }
  uint64_t user_end() const { return user_base() + user_size(); }
  uint64_t kernel_base() const { return user_end(); }

  // Reads/writes an integer of 1/2/4/8 bytes, little-endian. Out-of-arena or
  // null-page accesses fault (simulating a hardware trap).
  Result<uint64_t> Read(uint64_t addr, unsigned bytes) const;
  Status Write(uint64_t addr, unsigned bytes, uint64_t value);
  Result<double> ReadF64(uint64_t addr) const;
  Status WriteF64(uint64_t addr, double value);
  Result<float> ReadF32(uint64_t addr) const;
  Status WriteF32(uint64_t addr, float value);
  Status Copy(uint64_t dst, uint64_t src, uint64_t len);
  Status Fill(uint64_t addr, uint8_t value, uint64_t len);

  // Bump-allocates a region in the kernel area (globals, stack arena, heap
  // arena reservations). Returns 0 on exhaustion.
  uint64_t AllocateRegion(uint64_t size, uint64_t align = 16);

  // A PageProvider view of this address space for the kernel allocators.
  class Pages : public runtime::PageProvider {
   public:
    explicit Pages(AddressSpace& space) : space_(space) {}
    uint64_t AllocatePage() override {
      return space_.AllocateRegion(kPageSize, kPageSize);
    }
    uint64_t page_size() const override { return kPageSize; }

   private:
    AddressSpace& space_;
  };

  Pages& pages() { return pages_; }

 private:
  Status CheckRange(uint64_t addr, uint64_t len) const;

  std::vector<uint8_t> bytes_;
  uint64_t bump_;
  Pages pages_;
};

}  // namespace sva::svm

#endif  // SVA_SRC_SVM_ADDRESS_SPACE_H_
