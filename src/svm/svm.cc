#include "src/svm/svm.h"

#include "src/support/strings.h"
#include "src/verifier/typechecker.h"
#include "src/vir/bytecode.h"
#include "src/vir/structural_verifier.h"

namespace sva::svm {

LoadedModule::LoadedModule(std::unique_ptr<vir::Module> module,
                           SvmOptions options)
    : module_(std::move(module)),
      pools_(std::make_unique<runtime::MetaPoolRuntime>(options.enforcement)),
      interp_(std::make_unique<Interpreter>(*module_, *pools_,
                                            options.interp)) {}

Status LoadedModule::Initialize() { return interp_->Initialize(); }

ExecResult LoadedModule::Run(const std::string& entry,
                             const std::vector<uint64_t>& args) {
  return interp_->Run(entry, args);
}

Result<std::unique_ptr<LoadedModule>> SecureVirtualMachine::LoadBytecode(
    const std::vector<uint8_t>& bytecode) {
  SVA_ASSIGN_OR_RETURN(std::unique_ptr<vir::Module> module,
                       vir::ReadBytecode(bytecode));
  uint64_t digest = vir::DigestBytes(bytecode);
  SVA_RETURN_IF_ERROR(vir::VerifyModule(*module));
  CacheEntry entry;
  entry.digest = digest;
  entry.verified = true;
  if (options_.run_type_check) {
    SVA_RETURN_IF_ERROR(verifier::TypeCheckOrError(*module));
    entry.type_checked = true;
  }
  cache_[digest] = entry;
  auto loaded = std::make_unique<LoadedModule>(std::move(module), options_);
  SVA_RETURN_IF_ERROR(loaded->Initialize());
  return loaded;
}

Result<std::unique_ptr<LoadedModule>> SecureVirtualMachine::LoadModule(
    std::unique_ptr<vir::Module> module) {
  std::vector<uint8_t> bytes = vir::WriteBytecode(*module);
  uint64_t digest = vir::DigestBytes(bytes);
  SVA_RETURN_IF_ERROR(vir::VerifyModule(*module));
  CacheEntry entry;
  entry.digest = digest;
  entry.verified = true;
  if (options_.run_type_check) {
    SVA_RETURN_IF_ERROR(verifier::TypeCheckOrError(*module));
    entry.type_checked = true;
  }
  cache_[digest] = entry;
  auto loaded = std::make_unique<LoadedModule>(std::move(module), options_);
  SVA_RETURN_IF_ERROR(loaded->Initialize());
  return loaded;
}

bool SecureVirtualMachine::CacheContains(
    const std::vector<uint8_t>& bytecode) const {
  return cache_.count(vir::DigestBytes(bytecode)) != 0;
}

}  // namespace sva::svm
