#include "src/svm/threaded_interp.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/support/strings.h"
#include "src/svm/exec_semantics.h"
#include "src/trace/metrics.h"
#include "src/vir/type.h"

namespace sva::svm {

using sem::BitWidthOf;
using sem::MaskToWidth;
using sem::SignExtend;
using vir::BasicBlock;
using vir::Function;
using vir::Instruction;
using vir::Opcode;
using vir::Value;

namespace {

bool IsTerminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kSwitch || op == Opcode::kRet ||
         op == Opcode::kUnreachable;
}

// Lowers one verified function to threaded code. Purely local: reads the
// function body and the Interpreter's public address maps, writes a
// ThreadedCode. Every unsupported shape is a hard decode error — the caller
// falls back to the tree-walker for this function, never a weakened lowering.
class Decoder {
 public:
  Decoder(const Interpreter& interp, const Function& fn)
      : interp_(interp), fn_(fn) {}

  Result<std::unique_ptr<ThreadedCode>> Decode() {
    code_ = std::make_unique<ThreadedCode>();
    code_->fn = &fn_;
    if (fn_.is_declaration() || fn_.entry() == nullptr) {
      return Unimplemented("no body to decode");
    }
    // Register allocation: one dense slot per argument and per value-
    // producing instruction, split by register file (int/pointer vs float).
    for (size_t i = 0; i < fn_.num_args(); ++i) {
      const vir::Argument* arg = fn_.arg(i);
      if (arg->type()->IsFloat()) {
        uint32_t s = NewF();
        fslot_[arg] = s;
        code_->arg_binds.push_back({s, true});
      } else {
        uint32_t s = NewI();
        islot_[arg] = s;
        code_->arg_binds.push_back({s, false});
      }
    }
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : block->instructions()) {
        if (inst->type()->IsVoid()) {
          continue;
        }
        if (inst->type()->IsFloat()) {
          fslot_[inst.get()] = NewF();
        } else {
          islot_[inst.get()] = NewI();
        }
      }
    }
    // Encode the entry block at op 0, then the rest in declaration order.
    SVA_RETURN_IF_ERROR(EncodeBlock(fn_.entry()));
    for (const auto& block : fn_.blocks()) {
      if (block.get() != fn_.entry()) {
        SVA_RETURN_IF_ERROR(EncodeBlock(block.get()));
      }
    }
    SVA_RETURN_IF_ERROR(LinkEdges());
    code_->num_int_slots = next_int_;
    code_->num_float_slots = next_float_;
    return std::move(code_);
  }

 private:
  uint32_t NewI() { return next_int_++; }
  uint32_t NewF() { return next_float_++; }

  // Slot for `v` read as an integer/pointer. Constants (including global
  // and function addresses, which are fixed once Initialize() has laid out
  // the module — decode is lazy and always runs after that) become
  // initialized slots.
  Result<uint32_t> ISlotOf(const Value* v) {
    switch (v->value_kind()) {
      case vir::ValueKind::kConstantInt:
        return IConst(static_cast<const vir::ConstantInt*>(v)->zext_value());
      case vir::ValueKind::kConstantNull:
      case vir::ValueKind::kConstantUndef:
        return IConst(0);
      case vir::ValueKind::kGlobalVariable: {
        uint64_t addr = interp_.GlobalAddress(v->name());
        if (addr == 0) {
          return Unimplemented(StrCat("unlaid global @", v->name()));
        }
        return IConst(addr);
      }
      case vir::ValueKind::kFunction: {
        uint64_t addr = interp_.FunctionAddress(v->name());
        if (addr == 0) {
          return Unimplemented(StrCat("unassigned function @", v->name()));
        }
        return IConst(addr);
      }
      case vir::ValueKind::kConstantFloat:
        return Unimplemented("float constant in integer context");
      case vir::ValueKind::kArgument:
      case vir::ValueKind::kInstruction: {
        auto it = islot_.find(v);
        if (it == islot_.end()) {
          return Unimplemented("integer read of non-integer value");
        }
        return it->second;
      }
    }
    return Unimplemented("bad value kind");
  }

  Result<uint32_t> FSlotOf(const Value* v) {
    switch (v->value_kind()) {
      case vir::ValueKind::kConstantFloat:
        return FConst(static_cast<const vir::ConstantFloat*>(v)->value());
      case vir::ValueKind::kConstantUndef:
        return FConst(0.0);
      case vir::ValueKind::kArgument:
      case vir::ValueKind::kInstruction: {
        auto it = fslot_.find(v);
        if (it == fslot_.end()) {
          return Unimplemented("float read of non-float value");
        }
        return it->second;
      }
      default:
        return Unimplemented("bad value in float context");
    }
  }

  Result<uint32_t> IConst(uint64_t value) {
    auto it = iconst_.find(value);
    if (it != iconst_.end()) {
      return it->second;
    }
    uint32_t s = NewI();
    iconst_[value] = s;
    code_->iconst_inits.emplace_back(s, value);
    return s;
  }

  Result<uint32_t> FConst(double value) {
    uint64_t key;
    static_assert(sizeof(key) == sizeof(value));
    std::memcpy(&key, &value, sizeof(key));
    auto it = fconst_.find(key);
    if (it != fconst_.end()) {
      return it->second;
    }
    uint32_t s = NewF();
    fconst_[key] = s;
    code_->fconst_inits.emplace_back(s, value);
    return s;
  }

  // Destination slot of a value-producing instruction.
  uint32_t DstOf(const Instruction* inst) {
    if (inst->type()->IsFloat()) {
      return fslot_.at(inst);
    }
    return islot_.at(inst);
  }

  uint32_t PendEdge(const BasicBlock* from, const BasicBlock* to) {
    code_->edges.emplace_back();
    pending_.emplace_back(from, to);
    return static_cast<uint32_t>(code_->edges.size() - 1);
  }

  Status EncodeBlock(const BasicBlock* block) {
    const auto& insts = block->instructions();
    size_t first = 0;
    while (first < insts.size() &&
           insts[first]->opcode() == Opcode::kPhi) {
      ++first;
    }
    if (first > 0 && block == fn_.entry()) {
      // The interpreter reports this at run time (no predecessor); keep
      // that behaviour by falling back.
      return Unimplemented("phi in entry block");
    }
    if (first > 0xFFFF) {
      return Unimplemented("too many phis in one block");
    }
    phi_count_[block] = first;
    block_start_[block] = static_cast<uint32_t>(code_->ops.size());
    bool terminated = false;
    for (size_t k = first; k < insts.size(); ++k) {
      const Instruction* inst = insts[k].get();
      if (inst->opcode() == Opcode::kPhi) {
        return Unimplemented("phi after non-phi");
      }
      SVA_RETURN_IF_ERROR(EncodeInst(block, inst));
      if (IsTerminator(inst->opcode())) {
        terminated = true;
        break;  // Anything after a terminator is dead in both tiers.
      }
    }
    if (!terminated) {
      // The interpreter reports "fell off the end of block" at run time.
      return Unimplemented("block without terminator");
    }
    return OkStatus();
  }

  Status EncodeInst(const BasicBlock* block, const Instruction* inst) {
    Op op;
    switch (inst->opcode()) {
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
      case Opcode::kUDiv: case Opcode::kSDiv: case Opcode::kURem:
      case Opcode::kSRem: case Opcode::kAnd: case Opcode::kOr:
      case Opcode::kXor: case Opcode::kShl: case Opcode::kLShr:
      case Opcode::kAShr: {
        static_assert(static_cast<int>(Opcode::kAShr) -
                              static_cast<int>(Opcode::kAdd) ==
                          static_cast<int>(OpK::kAShr) -
                              static_cast<int>(OpK::kAdd),
                      "integer binary op blocks must stay parallel");
        op.kind = static_cast<OpK>(
            static_cast<int>(OpK::kAdd) +
            (static_cast<int>(inst->opcode()) -
             static_cast<int>(Opcode::kAdd)));
        op.bits = static_cast<uint8_t>(BitWidthOf(inst->type()));
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(inst->operand(0)));
        SVA_ASSIGN_OR_RETURN(op.b, ISlotOf(inst->operand(1)));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kFAdd: case Opcode::kFSub: case Opcode::kFMul:
      case Opcode::kFDiv: {
        static_assert(static_cast<int>(Opcode::kFDiv) -
                              static_cast<int>(Opcode::kFAdd) ==
                          static_cast<int>(OpK::kFDiv) -
                              static_cast<int>(OpK::kFAdd),
                      "float binary op blocks must stay parallel");
        op.kind = static_cast<OpK>(
            static_cast<int>(OpK::kFAdd) +
            (static_cast<int>(inst->opcode()) -
             static_cast<int>(Opcode::kFAdd)));
        SVA_ASSIGN_OR_RETURN(op.a, FSlotOf(inst->operand(0)));
        SVA_ASSIGN_OR_RETURN(op.b, FSlotOf(inst->operand(1)));
        op.dst = fslot_.at(inst);
        break;
      }
      case Opcode::kICmp: {
        const auto* cmp = static_cast<const vir::CmpInst*>(inst);
        op.kind = OpK::kICmp;
        op.bits = static_cast<uint8_t>(BitWidthOf(cmp->lhs()->type()));
        op.aux = static_cast<uint16_t>(cmp->pred());
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(cmp->lhs()));
        SVA_ASSIGN_OR_RETURN(op.b, ISlotOf(cmp->rhs()));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kFCmp: {
        const auto* cmp = static_cast<const vir::CmpInst*>(inst);
        op.kind = OpK::kFCmp;
        op.aux = static_cast<uint16_t>(cmp->pred());
        SVA_ASSIGN_OR_RETURN(op.a, FSlotOf(cmp->lhs()));
        SVA_ASSIGN_OR_RETURN(op.b, FSlotOf(cmp->rhs()));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kSelect: {
        const auto* sel = static_cast<const vir::SelectInst*>(inst);
        SVA_ASSIGN_OR_RETURN(op.c, ISlotOf(sel->condition()));
        if (inst->type()->IsFloat()) {
          op.kind = OpK::kSelectF;
          SVA_ASSIGN_OR_RETURN(op.a, FSlotOf(sel->true_value()));
          SVA_ASSIGN_OR_RETURN(op.b, FSlotOf(sel->false_value()));
          op.dst = fslot_.at(inst);
        } else {
          op.kind = OpK::kSelectI;
          SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(sel->true_value()));
          SVA_ASSIGN_OR_RETURN(op.b, ISlotOf(sel->false_value()));
          op.dst = islot_.at(inst);
        }
        break;
      }
      case Opcode::kTrunc: case Opcode::kZExt: case Opcode::kBitcast:
      case Opcode::kPtrToInt: case Opcode::kIntToPtr: {
        const auto* cast = static_cast<const vir::CastInst*>(inst);
        op.kind = OpK::kMask;
        op.bits = static_cast<uint8_t>(BitWidthOf(inst->type()));
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(cast->src()));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kSExt: {
        const auto* cast = static_cast<const vir::CastInst*>(inst);
        op.kind = OpK::kSExt;
        op.bits = static_cast<uint8_t>(BitWidthOf(inst->type()));
        op.aux = static_cast<uint16_t>(BitWidthOf(cast->src()->type()));
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(cast->src()));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kSIToFP: {
        const auto* cast = static_cast<const vir::CastInst*>(inst);
        op.kind = OpK::kSIToFP;
        op.aux = static_cast<uint16_t>(BitWidthOf(cast->src()->type()));
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(cast->src()));
        op.dst = fslot_.at(inst);
        break;
      }
      case Opcode::kFPToSI: {
        const auto* cast = static_cast<const vir::CastInst*>(inst);
        op.kind = OpK::kFPToSI;
        op.bits = static_cast<uint8_t>(BitWidthOf(inst->type()));
        SVA_ASSIGN_OR_RETURN(op.a, FSlotOf(cast->src()));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kAlloca: {
        const auto* a = static_cast<const vir::AllocaInst*>(inst);
        op.kind = OpK::kAlloca;
        op.imm = vir::SizeOf(a->allocated_type());
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(a->count()));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kMalloc: {
        const auto* m = static_cast<const vir::MallocInst*>(inst);
        op.kind = OpK::kMalloc;
        op.imm = vir::SizeOf(m->allocated_type());
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(m->count()));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kFree: {
        const auto* f = static_cast<const vir::FreeInst*>(inst);
        op.kind = OpK::kFree;
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(f->pointer()));
        break;
      }
      case Opcode::kLoad: {
        const auto* load = static_cast<const vir::LoadInst*>(inst);
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(load->pointer()));
        const vir::Type* t = inst->type();
        if (t->IsFloat()) {
          op.kind = static_cast<const vir::FloatType*>(t)->bits() == 32
                        ? OpK::kLoadF32
                        : OpK::kLoadF64;
          op.dst = fslot_.at(inst);
        } else {
          op.kind = OpK::kLoadI;
          op.aux = static_cast<uint16_t>(vir::SizeOf(t));
          op.dst = islot_.at(inst);
        }
        break;
      }
      case Opcode::kStore: {
        const auto* store = static_cast<const vir::StoreInst*>(inst);
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(store->pointer()));
        const vir::Type* t = store->stored_value()->type();
        if (t->IsFloat()) {
          op.kind = static_cast<const vir::FloatType*>(t)->bits() == 32
                        ? OpK::kStoreF32
                        : OpK::kStoreF64;
          SVA_ASSIGN_OR_RETURN(op.b, FSlotOf(store->stored_value()));
        } else {
          op.kind = OpK::kStoreI;
          op.aux = static_cast<uint16_t>(vir::SizeOf(t));
          SVA_ASSIGN_OR_RETURN(op.b, ISlotOf(store->stored_value()));
        }
        break;
      }
      case Opcode::kGetElementPtr:
        return EncodeGep(static_cast<const vir::GetElementPtrInst*>(inst));
      case Opcode::kAtomicLIS: {
        const auto* a = static_cast<const vir::AtomicLISInst*>(inst);
        op.kind = OpK::kAtomicLIS;
        op.aux = static_cast<uint16_t>(vir::SizeOf(inst->type()));
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(a->pointer()));
        SVA_ASSIGN_OR_RETURN(op.b, ISlotOf(a->delta()));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kCmpXchg: {
        const auto* c = static_cast<const vir::CmpXchgInst*>(inst);
        op.kind = OpK::kCmpXchg;
        op.aux = static_cast<uint16_t>(vir::SizeOf(inst->type()));
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(c->pointer()));
        SVA_ASSIGN_OR_RETURN(op.b, ISlotOf(c->expected()));
        SVA_ASSIGN_OR_RETURN(op.c, ISlotOf(c->desired()));
        op.dst = islot_.at(inst);
        break;
      }
      case Opcode::kWriteBarrier:
        op.kind = OpK::kNop;
        break;
      case Opcode::kCall:
        return EncodeCall(static_cast<const vir::CallInst*>(inst));
      case Opcode::kBr: {
        const auto* br = static_cast<const vir::BranchInst*>(inst);
        if (br->is_conditional()) {
          op.kind = OpK::kBrCond;
          SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(br->condition()));
          op.b = PendEdge(block, br->target(0));
          op.c = PendEdge(block, br->target(1));
        } else {
          op.kind = OpK::kBr;
          op.a = PendEdge(block, br->target(0));
        }
        break;
      }
      case Opcode::kSwitch: {
        const auto* sw = static_cast<const vir::SwitchInst*>(inst);
        op.kind = OpK::kSwitch;
        SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(sw->condition()));
        auto table = std::make_unique<SwitchTable>();
        unsigned bits = BitWidthOf(sw->condition()->type());
        table->bits = static_cast<uint8_t>(bits);
        for (size_t i = 0; i < sw->num_cases(); ++i) {
          table->cases.emplace_back(MaskToWidth(sw->case_value(i), bits),
                                    PendEdge(block, sw->case_target(i)));
        }
        table->default_edge = PendEdge(block, sw->default_target());
        op.ptr = table.get();
        code_->switch_tables.push_back(std::move(table));
        break;
      }
      case Opcode::kRet: {
        const auto* ret = static_cast<const vir::RetInst*>(inst);
        if (!ret->has_value()) {
          op.kind = OpK::kRetVoid;
        } else if (ret->value()->type()->IsFloat()) {
          op.kind = OpK::kRetF;
          SVA_ASSIGN_OR_RETURN(op.a, FSlotOf(ret->value()));
        } else {
          op.kind = OpK::kRetI;
          SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(ret->value()));
        }
        break;
      }
      case Opcode::kUnreachable:
        op.kind = OpK::kUnreachable;
        break;
      case Opcode::kPhi:
        return Unimplemented("phi outside block head");
    }
    code_->ops.push_back(op);
    return OkStatus();
  }

  Status EncodeGep(const vir::GetElementPtrInst* gep) {
    Op op;
    SVA_ASSIGN_OR_RETURN(op.a, ISlotOf(gep->base()));
    const vir::Type* current =
        static_cast<const vir::PointerType*>(gep->base()->type())->pointee();
    int64_t static_off = 0;
    uint32_t terms_start = static_cast<uint32_t>(code_->gep_terms.size());
    auto add_index = [&](const Value* idx, uint64_t scale) -> Status {
      if (idx->value_kind() == vir::ValueKind::kConstantInt) {
        static_off +=
            SignExtend(static_cast<const vir::ConstantInt*>(idx)->zext_value(),
                       BitWidthOf(idx->type())) *
            static_cast<int64_t>(scale);
        return OkStatus();
      }
      GepTerm term;
      SVA_ASSIGN_OR_RETURN(term.slot, ISlotOf(idx));
      term.bits = static_cast<uint8_t>(BitWidthOf(idx->type()));
      term.scale = scale;
      code_->gep_terms.push_back(term);
      return OkStatus();
    };
    SVA_RETURN_IF_ERROR(add_index(gep->index(0), vir::SizeOf(current)));
    for (size_t i = 1; i < gep->num_indices(); ++i) {
      if (current->IsArray()) {
        const auto* at = static_cast<const vir::ArrayType*>(current);
        SVA_RETURN_IF_ERROR(
            add_index(gep->index(i), vir::SizeOf(at->element())));
        current = at->element();
      } else if (current->IsStruct()) {
        const auto* st = static_cast<const vir::StructType*>(current);
        const Value* idx = gep->index(i);
        if (idx->value_kind() != vir::ValueKind::kConstantInt) {
          // The interpreter indexes the field vector with whatever the
          // dynamic value is; that shape is not lowered — fall back.
          return Unimplemented("dynamic struct field index");
        }
        unsigned field = static_cast<unsigned>(
            static_cast<const vir::ConstantInt*>(idx)->zext_value());
        if (field >= st->fields().size()) {
          return Unimplemented("struct field index out of range");
        }
        static_off +=
            static_cast<int64_t>(vir::StructFieldOffset(st, field));
        current = st->fields()[field];
      } else {
        return Unimplemented("GEP into non-aggregate");
      }
    }
    size_t nterms = code_->gep_terms.size() - terms_start;
    op.imm = static_cast<uint64_t>(static_off);
    op.dst = islot_.at(gep);
    if (nterms == 0) {
      op.kind = OpK::kGepStatic;
    } else {
      if (nterms > 0xFFFF) {
        return Unimplemented("too many GEP indices");
      }
      op.kind = OpK::kGepDyn;
      op.aux = static_cast<uint16_t>(nterms);
      op.b = terms_start;
    }
    code_->ops.push_back(op);
    return OkStatus();
  }

  Status EncodeCall(const vir::CallInst* call) {
    Op op;
    op.kind = OpK::kCall;
    auto site = std::make_unique<CallSite>();
    if (const auto* direct =
            dynamic_cast<const Function*>(call->callee())) {
      site->target = direct;
      // Same precedence as the interpreter: intrinsic by name first, then
      // defined body, then host binding (resolved at call time).
      site->intrinsic = vir::LookupIntrinsic(direct->name());
      if (site->intrinsic != vir::Intrinsic::kNone) {
        site->kind = CallSite::Kind::kIntrinsic;
      } else if (!direct->is_declaration()) {
        site->kind = CallSite::Kind::kDirect;
      } else {
        site->kind = CallSite::Kind::kHost;
      }
    } else {
      site->kind = CallSite::Kind::kIndirect;
      SVA_ASSIGN_OR_RETURN(site->callee_slot, ISlotOf(call->callee()));
    }
    site->returns_void = call->type()->IsVoid();
    site->returns_float = call->type()->IsFloat();
    if (site->returns_float && site->kind != CallSite::Kind::kDirect) {
      // The interpreter stores intrinsic/host results in the integer file
      // even for float-typed calls; that corner is not lowered.
      return Unimplemented("float-typed non-direct call");
    }
    for (size_t i = 0; i < call->num_args(); ++i) {
      CallSite::Arg arg;
      arg.is_float = call->arg(i)->type()->IsFloat();
      if (arg.is_float) {
        SVA_ASSIGN_OR_RETURN(arg.slot, FSlotOf(call->arg(i)));
      } else {
        SVA_ASSIGN_OR_RETURN(arg.slot, ISlotOf(call->arg(i)));
      }
      site->args.push_back(arg);
    }
    if (!site->returns_void) {
      op.dst = DstOf(call);
    }
    op.ptr = site.get();
    code_->call_sites.push_back(std::move(site));
    code_->ops.push_back(op);
    return OkStatus();
  }

  // Resolves pended edges: target op index plus the phi-elimination moves
  // for the (pred, succ) pair.
  Status LinkEdges() {
    for (size_t i = 0; i < pending_.size(); ++i) {
      const auto& [from, to] = pending_[i];
      Edge& e = code_->edges[i];
      e.target = block_start_.at(to);
      e.moves_start = static_cast<uint32_t>(code_->moves.size());
      size_t phis = phi_count_.at(to);
      e.phi_steps = static_cast<uint16_t>(phis);
      for (size_t k = 0; k < phis; ++k) {
        const auto* phi = static_cast<const vir::PhiInst*>(
            to->instructions()[k].get());
        const Value* in = phi->ValueForBlock(from);
        if (in == nullptr) {
          // Interp reports this at run time; fall back to reproduce it.
          return Unimplemented("phi missing incoming block");
        }
        Move mv;
        if (phi->type()->IsFloat()) {
          mv.is_float = true;
          SVA_ASSIGN_OR_RETURN(mv.src, FSlotOf(in));
          mv.dst = fslot_.at(phi);
        } else {
          SVA_ASSIGN_OR_RETURN(mv.src, ISlotOf(in));
          mv.dst = islot_.at(phi);
        }
        code_->moves.push_back(mv);
      }
      e.moves_count = static_cast<uint16_t>(phis);
      code_->max_edge_moves = std::max<size_t>(code_->max_edge_moves, phis);
    }
    return OkStatus();
  }

  const Interpreter& interp_;
  const Function& fn_;
  std::unique_ptr<ThreadedCode> code_;
  uint32_t next_int_ = 0;
  uint32_t next_float_ = 0;
  std::map<const Value*, uint32_t> islot_;
  std::map<const Value*, uint32_t> fslot_;
  std::map<uint64_t, uint32_t> iconst_;
  std::map<uint64_t, uint32_t> fconst_;  // Keyed by bit pattern.
  std::map<const BasicBlock*, uint32_t> block_start_;
  std::map<const BasicBlock*, size_t> phi_count_;
  std::vector<std::pair<const BasicBlock*, const BasicBlock*>> pending_;
};

}  // namespace

ThreadedEngine::ThreadedEngine(Interpreter& interp) : interp_(interp) {}
ThreadedEngine::~ThreadedEngine() = default;

const ThreadedCode* ThreadedEngine::CodeFor(const Function& fn) {
  auto it = code_.find(&fn);
  if (it != code_.end()) {
    return it->second.get();
  }
  if (unsupported_.count(&fn) != 0) {
    return nullptr;
  }
  Decoder decoder(interp_, fn);
  auto decoded = decoder.Decode();
  if (!decoded.ok()) {
    unsupported_.insert(&fn);
    trace::TierCounters::Get().fallback_fns.fetch_add(
        1, std::memory_order_relaxed);
    return nullptr;
  }
  ThreadedCode* ptr = decoded->get();
  code_[&fn] = std::move(*decoded);
  return ptr;
}

// Threaded dispatch: computed goto on GCC/Clang, a switch loop elsewhere.
#if defined(__GNUC__) || defined(__clang__)
#define SVA_THREADED_GOTO 1
#endif

ExecResult ThreadedEngine::Execute(const ThreadedCode& code,
                                   std::span<const uint64_t> args,
                                   std::span<const double> fargs,
                                   uint64_t depth) {
  ExecResult result;
  ++interp_.tier_threaded_fns_;

  // Register files. Constants first (they were deduplicated at decode), then
  // arguments, mirroring the interpreter's missing-argument-reads-as-zero
  // behaviour.
  std::vector<uint64_t> regs(code.num_int_slots, 0);
  std::vector<double> fregs(code.num_float_slots, 0.0);
  for (const auto& [slot, v] : code.iconst_inits) {
    regs[slot] = v;
  }
  for (const auto& [slot, v] : code.fconst_inits) {
    fregs[slot] = v;
  }
  size_t fi = 0;
  for (size_t i = 0; i < code.arg_binds.size(); ++i) {
    const ThreadedCode::ArgBind& bind = code.arg_binds[i];
    if (bind.is_float) {
      fregs[bind.slot] = fi < fargs.size() ? fargs[fi++] : 0.0;
    } else {
      regs[bind.slot] = i < args.size() ? args[i] : 0;
    }
  }

  const uint64_t saved_stack = interp_.stack_top_;
  const uint64_t max_steps = interp_.options_.max_steps;
  uint64_t steps = interp_.steps_;
  uint64_t ops_executed = 0;

  // Scratch buffers reused across ops.
  std::vector<uint64_t> iscratch(code.max_edge_moves);
  std::vector<double> fscratch(code.max_edge_moves);
  std::vector<uint64_t> call_args;
  std::vector<double> call_fargs;

  const Op* const ops = code.ops.data();
  const Op* op = nullptr;
  uint32_t pc = 0;

  auto fail = [&](Status s) {
    interp_.stack_top_ = saved_stack;
    interp_.steps_ = steps;
    interp_.tier_threaded_ops_ += ops_executed;
    result.status = std::move(s);
    return result;
  };
  auto finish = [&]() {
    interp_.stack_top_ = saved_stack;
    interp_.steps_ = steps;
    interp_.tier_threaded_ops_ += ops_executed;
    result.status = OkStatus();
    return result;
  };
  // Phi elimination, gather-then-scatter so a phi group reading each
  // other's previous values (a swap) sees the simultaneous-assignment
  // semantics SSA requires.
  auto take_edge = [&](uint32_t edge_idx) {
    const Edge& e = code.edges[edge_idx];
    const Move* mv = code.moves.data() + e.moves_start;
    for (uint16_t k = 0; k < e.moves_count; ++k) {
      if (mv[k].is_float) {
        fscratch[k] = fregs[mv[k].src];
      } else {
        iscratch[k] = regs[mv[k].src];
      }
    }
    for (uint16_t k = 0; k < e.moves_count; ++k) {
      if (mv[k].is_float) {
        fregs[mv[k].dst] = fscratch[k];
      } else {
        regs[mv[k].dst] = iscratch[k];
      }
    }
    // Step parity: the interpreter charges one step per phi it retires.
    steps += e.phi_steps;
    ops_executed += e.phi_steps;
    pc = e.target;
  };

#ifdef SVA_THREADED_GOTO
  static const void* kDispatch[] = {
      &&L_kAdd, &&L_kSub, &&L_kMul, &&L_kUDiv, &&L_kSDiv, &&L_kURem,
      &&L_kSRem, &&L_kAnd, &&L_kOr, &&L_kXor, &&L_kShl, &&L_kLShr,
      &&L_kAShr, &&L_kFAdd, &&L_kFSub, &&L_kFMul, &&L_kFDiv, &&L_kICmp,
      &&L_kFCmp, &&L_kSelectI, &&L_kSelectF, &&L_kMask, &&L_kSExt,
      &&L_kSIToFP, &&L_kFPToSI, &&L_kAlloca, &&L_kMalloc, &&L_kFree,
      &&L_kLoadI, &&L_kLoadF32, &&L_kLoadF64, &&L_kStoreI, &&L_kStoreF32,
      &&L_kStoreF64, &&L_kGepStatic, &&L_kGepDyn, &&L_kAtomicLIS,
      &&L_kCmpXchg, &&L_kCall, &&L_kBr, &&L_kBrCond, &&L_kSwitch,
      &&L_kRetVoid, &&L_kRetI, &&L_kRetF, &&L_kUnreachable, &&L_kNop,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                    static_cast<size_t>(OpK::kCount),
                "dispatch table must cover every OpK");
#define SVA_DISPATCH()                                        \
  do {                                                        \
    op = &ops[pc];                                            \
    ++ops_executed;                                           \
    if (++steps > max_steps) {                                \
      return fail(Internal("instruction budget exhausted"));  \
    }                                                         \
    goto* kDispatch[static_cast<size_t>(op->kind)];           \
  } while (0)
#define SVA_CASE(k) L_##k:
#define SVA_NEXT() \
  do {             \
    ++pc;          \
    SVA_DISPATCH(); \
  } while (0)
#define SVA_JUMP() SVA_DISPATCH()

  SVA_DISPATCH();
#else
#define SVA_CASE(k) case OpK::k:
#define SVA_NEXT() \
  {                \
    ++pc;          \
    break;         \
  }
#define SVA_JUMP() break

  for (;;) {
    op = &ops[pc];
    ++ops_executed;
    if (++steps > max_steps) {
      return fail(Internal("instruction budget exhausted"));
    }
    switch (op->kind) {
#endif

  // --- Integer binary ops. The trap paths (div/rem by zero, MIN/-1
  // overflow) share sem::EvalIntBinary with the interpreter; the common
  // non-trapping ops are open-coded on the already-masked slot values.
  SVA_CASE(kAdd) {
    regs[op->dst] = MaskToWidth(regs[op->a] + regs[op->b], op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kSub) {
    regs[op->dst] = MaskToWidth(regs[op->a] - regs[op->b], op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kMul) {
    regs[op->dst] = MaskToWidth(MaskToWidth(regs[op->a], op->bits) *
                                    MaskToWidth(regs[op->b], op->bits),
                                op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kUDiv)
  SVA_CASE(kSDiv)
  SVA_CASE(kURem)
  SVA_CASE(kSRem) {
    static_assert(static_cast<int>(OpK::kSRem) - static_cast<int>(OpK::kAdd) ==
                  static_cast<int>(Opcode::kSRem) -
                      static_cast<int>(Opcode::kAdd));
    Opcode opcode = static_cast<Opcode>(
        static_cast<int>(Opcode::kAdd) +
        (static_cast<int>(op->kind) - static_cast<int>(OpK::kAdd)));
    uint64_t out = 0;
    sem::ArithTrap trap = sem::EvalIntBinary(
        opcode, MaskToWidth(regs[op->a], op->bits),
        MaskToWidth(regs[op->b], op->bits), op->bits, &out);
    if (trap != sem::ArithTrap::kNone) {
      return fail(sem::ArithTrapStatus(trap));
    }
    regs[op->dst] = MaskToWidth(out, op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kAnd) {
    regs[op->dst] = MaskToWidth(regs[op->a] & regs[op->b], op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kOr) {
    regs[op->dst] = MaskToWidth(regs[op->a] | regs[op->b], op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kXor) {
    regs[op->dst] = MaskToWidth(regs[op->a] ^ regs[op->b], op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kShl)
  SVA_CASE(kLShr)
  SVA_CASE(kAShr) {
    Opcode opcode = static_cast<Opcode>(
        static_cast<int>(Opcode::kAdd) +
        (static_cast<int>(op->kind) - static_cast<int>(OpK::kAdd)));
    uint64_t out = 0;
    sem::EvalIntBinary(opcode, MaskToWidth(regs[op->a], op->bits),
                       MaskToWidth(regs[op->b], op->bits), op->bits, &out);
    regs[op->dst] = MaskToWidth(out, op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kFAdd) {
    fregs[op->dst] = fregs[op->a] + fregs[op->b];
    SVA_NEXT();
  }
  SVA_CASE(kFSub) {
    fregs[op->dst] = fregs[op->a] - fregs[op->b];
    SVA_NEXT();
  }
  SVA_CASE(kFMul) {
    fregs[op->dst] = fregs[op->a] * fregs[op->b];
    SVA_NEXT();
  }
  SVA_CASE(kFDiv) {
    fregs[op->dst] = fregs[op->a] / fregs[op->b];
    SVA_NEXT();
  }
  SVA_CASE(kICmp) {
    regs[op->dst] = sem::EvalICmp(static_cast<vir::CmpPred>(op->aux),
                                  regs[op->a], regs[op->b], op->bits)
                        ? 1
                        : 0;
    SVA_NEXT();
  }
  SVA_CASE(kFCmp) {
    regs[op->dst] = sem::EvalFCmp(static_cast<vir::CmpPred>(op->aux),
                                  fregs[op->a], fregs[op->b])
                        ? 1
                        : 0;
    SVA_NEXT();
  }
  SVA_CASE(kSelectI) {
    regs[op->dst] = (regs[op->c] & 1) != 0 ? regs[op->a] : regs[op->b];
    SVA_NEXT();
  }
  SVA_CASE(kSelectF) {
    fregs[op->dst] = (regs[op->c] & 1) != 0 ? fregs[op->a] : fregs[op->b];
    SVA_NEXT();
  }
  SVA_CASE(kMask) {
    regs[op->dst] = MaskToWidth(regs[op->a], op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kSExt) {
    regs[op->dst] = MaskToWidth(
        static_cast<uint64_t>(SignExtend(regs[op->a], op->aux)), op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kSIToFP) {
    fregs[op->dst] = static_cast<double>(SignExtend(regs[op->a], op->aux));
    SVA_NEXT();
  }
  SVA_CASE(kFPToSI) {
    regs[op->dst] = MaskToWidth(
        static_cast<uint64_t>(static_cast<int64_t>(fregs[op->a])), op->bits);
    SVA_NEXT();
  }
  SVA_CASE(kAlloca) {
    auto base = interp_.AllocaBytes(op->imm, regs[op->a]);
    if (!base.ok()) {
      return fail(base.status());
    }
    regs[op->dst] = *base;
    SVA_NEXT();
  }
  SVA_CASE(kMalloc) {
    auto addr = interp_.MallocBytes(op->imm, regs[op->a]);
    if (!addr.ok()) {
      return fail(addr.status());
    }
    regs[op->dst] = *addr;
    SVA_NEXT();
  }
  SVA_CASE(kFree) {
    Status s = interp_.FreeAddr(regs[op->a]);
    if (!s.ok()) {
      return fail(std::move(s));
    }
    SVA_NEXT();
  }
  SVA_CASE(kLoadI) {
    auto v = interp_.memory_->Read(regs[op->a],
                                   static_cast<unsigned>(op->aux));
    if (!v.ok()) {
      return fail(v.status());
    }
    regs[op->dst] = *v;
    SVA_NEXT();
  }
  SVA_CASE(kLoadF32) {
    auto v = interp_.memory_->ReadF32(regs[op->a]);
    if (!v.ok()) {
      return fail(v.status());
    }
    fregs[op->dst] = *v;
    SVA_NEXT();
  }
  SVA_CASE(kLoadF64) {
    auto v = interp_.memory_->ReadF64(regs[op->a]);
    if (!v.ok()) {
      return fail(v.status());
    }
    fregs[op->dst] = *v;
    SVA_NEXT();
  }
  SVA_CASE(kStoreI) {
    Status s = interp_.memory_->Write(
        regs[op->a], static_cast<unsigned>(op->aux), regs[op->b]);
    if (!s.ok()) {
      return fail(std::move(s));
    }
    SVA_NEXT();
  }
  SVA_CASE(kStoreF32) {
    Status s = interp_.memory_->WriteF32(regs[op->a],
                                         static_cast<float>(fregs[op->b]));
    if (!s.ok()) {
      return fail(std::move(s));
    }
    SVA_NEXT();
  }
  SVA_CASE(kStoreF64) {
    Status s = interp_.memory_->WriteF64(regs[op->a], fregs[op->b]);
    if (!s.ok()) {
      return fail(std::move(s));
    }
    SVA_NEXT();
  }
  SVA_CASE(kGepStatic) {
    regs[op->dst] = regs[op->a] + op->imm;
    SVA_NEXT();
  }
  SVA_CASE(kGepDyn) {
    int64_t offset = static_cast<int64_t>(op->imm);
    const GepTerm* terms = code.gep_terms.data() + op->b;
    for (uint16_t k = 0; k < op->aux; ++k) {
      offset += SignExtend(regs[terms[k].slot], terms[k].bits) *
                static_cast<int64_t>(terms[k].scale);
    }
    regs[op->dst] = regs[op->a] + static_cast<uint64_t>(offset);
    SVA_NEXT();
  }
  SVA_CASE(kAtomicLIS) {
    auto old = interp_.memory_->Read(regs[op->a],
                                     static_cast<unsigned>(op->aux));
    if (!old.ok()) {
      return fail(old.status());
    }
    Status s = interp_.memory_->Write(
        regs[op->a], static_cast<unsigned>(op->aux), *old + regs[op->b]);
    if (!s.ok()) {
      return fail(std::move(s));
    }
    regs[op->dst] = *old;
    SVA_NEXT();
  }
  SVA_CASE(kCmpXchg) {
    auto old = interp_.memory_->Read(regs[op->a],
                                     static_cast<unsigned>(op->aux));
    if (!old.ok()) {
      return fail(old.status());
    }
    if (*old == regs[op->b]) {
      Status s = interp_.memory_->Write(
          regs[op->a], static_cast<unsigned>(op->aux), regs[op->c]);
      if (!s.ok()) {
        return fail(std::move(s));
      }
    }
    regs[op->dst] = *old;
    SVA_NEXT();
  }
  SVA_CASE(kCall) {
    const CallSite& site = *static_cast<const CallSite*>(op->ptr);
    call_args.clear();
    call_fargs.clear();
    for (const CallSite::Arg& arg : site.args) {
      if (arg.is_float) {
        call_fargs.push_back(fregs[arg.slot]);
        call_args.push_back(0);
      } else {
        call_args.push_back(regs[arg.slot]);
      }
    }
    const Function* target = site.target;
    CallSite::Kind kind = site.kind;
    vir::Intrinsic intrinsic = site.intrinsic;
    if (kind == CallSite::Kind::kIndirect) {
      uint64_t fp = regs[site.callee_slot];
      target = interp_.FunctionAt(fp);
      if (target == nullptr) {
        return fail(SafetyViolation(
            StrCat("indirect call to non-code address 0x", std::hex, fp)));
      }
      intrinsic = vir::LookupIntrinsic(target->name());
      if (intrinsic != vir::Intrinsic::kNone) {
        kind = CallSite::Kind::kIntrinsic;
      } else if (!target->is_declaration()) {
        kind = CallSite::Kind::kDirect;
      } else {
        kind = CallSite::Kind::kHost;
      }
    }
    if (kind == CallSite::Kind::kIntrinsic) {
      auto r = interp_.RunIntrinsicById(intrinsic, call_args);
      if (!r.ok()) {
        return fail(r.status());
      }
      if (!site.returns_void) {
        regs[op->dst] = *r;
      }
    } else if (kind == CallSite::Kind::kDirect) {
      // Nested calls go back through RunFunction so callees get their own
      // tier decision (and the per-function fallback stays uniform). The
      // shared step budget crosses the boundary via steps_.
      interp_.steps_ = steps;
      ExecResult sub =
          interp_.RunFunction(*target, call_args, call_fargs, depth + 1);
      steps = interp_.steps_;
      if (!sub.status.ok()) {
        return fail(std::move(sub.status));
      }
      if (!site.returns_void) {
        if (site.returns_float) {
          fregs[op->dst] = sub.fvalue;
        } else {
          regs[op->dst] = sub.value;
        }
      }
    } else {
      auto host = interp_.host_fns_.find(target->name());
      if (host == interp_.host_fns_.end()) {
        return fail(Unimplemented(
            StrCat("call to unbound external @", target->name())));
      }
      auto r = host->second(interp_, call_args);
      if (!r.ok()) {
        return fail(r.status());
      }
      if (!site.returns_void) {
        regs[op->dst] = *r;
      }
    }
    SVA_NEXT();
  }
  SVA_CASE(kBr) {
    take_edge(op->a);
    SVA_JUMP();
  }
  SVA_CASE(kBrCond) {
    take_edge((regs[op->a] & 1) != 0 ? op->b : op->c);
    SVA_JUMP();
  }
  SVA_CASE(kSwitch) {
    const SwitchTable& table = *static_cast<const SwitchTable*>(op->ptr);
    uint64_t v = MaskToWidth(regs[op->a], table.bits);
    uint32_t edge = table.default_edge;
    for (const auto& [value, target] : table.cases) {
      if (value == v) {
        edge = target;
        break;
      }
    }
    take_edge(edge);
    SVA_JUMP();
  }
  SVA_CASE(kRetVoid) {
    return finish();
  }
  SVA_CASE(kRetI) {
    result.value = regs[op->a];
    return finish();
  }
  SVA_CASE(kRetF) {
    result.fvalue = fregs[op->a];
    return finish();
  }
  SVA_CASE(kUnreachable) {
    return fail(
        Internal(StrCat("executed unreachable in @", code.fn->name())));
  }
  SVA_CASE(kNop) {
    SVA_NEXT();
  }

#ifndef SVA_THREADED_GOTO
      case OpK::kCount:
        return fail(Internal("bad threaded op"));
    }
  }
#endif

#undef SVA_DISPATCH
#undef SVA_CASE
#undef SVA_NEXT
#undef SVA_JUMP
}

}  // namespace sva::svm
