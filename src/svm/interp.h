// The SVM translator/execution engine. Executes SVA bytecode against the
// flat virtual address space, routing the pchk.*/sva.* operations to the
// MetaPool runtime and kernel allocator calls to host implementations.
//
// In the paper the translator emits native code; here it interprets. All
// four benchmark configurations run on the same engine, so relative
// overheads between configurations remain meaningful (see DESIGN.md §2).
#ifndef SVA_SRC_SVM_INTERP_H_
#define SVA_SRC_SVM_INTERP_H_

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/runtime/metapool_runtime.h"
#include "src/runtime/pool_allocator.h"
#include "src/support/status.h"
#include "src/svm/address_space.h"
#include "src/vir/intrinsics.h"
#include "src/vir/module.h"

namespace sva::svm {

class ThreadedEngine;

// Outcome of executing one entry point.
struct ExecResult {
  Status status;           // OK, or the first trap (safety violation/fault).
  uint64_t value = 0;      // Integer/pointer return value.
  double fvalue = 0;       // Floating return value.
  uint64_t steps = 0;      // Instructions executed.
};

// Which engine executes verified bytecode. Both tiers share the arithmetic
// and trap semantics in exec_semantics.h and all run-time check plumbing, so
// results, statuses, and CheckStats are identical — the differential battery
// in tests/tier_parity_test.cc enforces this.
enum class ExecTier {
  // The tree-walking reference interpreter (one std::map frame per call).
  kInterp,
  // The pre-decoded threaded-code tier: each function is lowered once into a
  // flat stream of handler records with dense operand slots and pre-linked
  // branch targets. Functions the decoder cannot lower (e.g. dynamic struct
  // field indices) transparently fall back to the interpreter per function.
  kThreaded,
};

struct InterpOptions {
  // When false, the pchk.*/sva.* operations become no-ops: this is the
  // "Linux-native"-style configuration used to isolate check overheads.
  bool enforce_checks = true;
  // When false, the per-metapool object-lookup cache in front of the splay
  // trees is disabled and every check pays the full splay lookup (the
  // benchmark harness uses this to measure the fast path's effect).
  bool use_lookup_cache = true;
  // Abort after this many executed instructions (runaway-loop guard).
  uint64_t max_steps = 500'000'000;
  // Execution engine. Threaded is the default; kInterp forces the reference
  // tree-walker everywhere (svm-run --tier=interp).
  ExecTier tier = ExecTier::kThreaded;
};

class Interpreter {
 public:
  // A host function receives the raw 64-bit argument slots and returns the
  // 64-bit result slot.
  using HostFn =
      std::function<Result<uint64_t>(Interpreter&, std::span<const uint64_t>)>;

  Interpreter(vir::Module& module, runtime::MetaPoolRuntime& pools,
              InterpOptions options = {});
  ~Interpreter();

  // Lays out globals, creates run-time metapools from the module's
  // declarations, registers the userspace object in user-reachable pools,
  // registers indirect-call target sets, and binds the default kernel
  // allocator host functions (kmalloc/kfree/kmem_cache_*).
  Status Initialize();

  // Binds (or overrides) a host implementation for a declared function.
  void BindHost(const std::string& name, HostFn fn);

  // Runs @name with the given integer/pointer arguments.
  ExecResult Run(const std::string& name, const std::vector<uint64_t>& args);

  // --- Introspection used by tests, exploits, and benches -------------------
  AddressSpace& memory() { return *memory_; }
  runtime::MetaPoolRuntime& pools() { return pools_; }
  runtime::OrdinaryAllocator& kmalloc() { return *kmalloc_; }
  vir::Module& module() { return module_; }

  // Address of a global (0 if unknown).
  uint64_t GlobalAddress(const std::string& name) const;
  // Code address assigned to a function (0 if unknown).
  uint64_t FunctionAddress(const std::string& name) const;
  const vir::Function* FunctionAt(uint64_t code_address) const;
  // The run-time metapool behind a metapool handle global, or nullptr.
  runtime::MetaPool* PoolForHandle(uint64_t handle_address) const;
  runtime::MetaPool* PoolByName(const std::string& name) const;

  // Registers a kmem_cache created by bytecode or host code; returns its
  // descriptor address (usable as the first argument of kmem_cache_alloc).
  uint64_t CreateKmemCache(const std::string& name, uint64_t object_size);
  runtime::PoolAllocator* KmemCacheAt(uint64_t descriptor);

 private:
  class Frame;
  friend class ThreadedEngine;

  // Evaluates a constant or SSA value in the current frame.
  Result<uint64_t> Eval(const Frame& frame, const vir::Value* v) const;
  Result<double> EvalF(const Frame& frame, const vir::Value* v) const;

  ExecResult RunFunction(const vir::Function& fn,
                         const std::vector<uint64_t>& args,
                         const std::vector<double>& fargs, uint64_t depth);
  // The tree-walking engine behind RunFunction (the kInterp tier, and the
  // per-function fallback of the kThreaded tier).
  ExecResult RunFunctionInterp(const vir::Function& fn,
                               const std::vector<uint64_t>& args,
                               const std::vector<double>& fargs,
                               uint64_t depth);
  // The interned "guest:<fn>" profiler name id for `fn`, cached per
  // function (an Interpreter runs on one thread; no lock).
  uint32_t ProfFunctionId(const vir::Function& fn);

  // Executes an intrinsic; `handled` is false if `callee` is not one.
  Result<uint64_t> RunIntrinsic(const vir::Function& callee,
                                std::span<const uint64_t> args, bool* handled);
  // The id-keyed body of RunIntrinsic: `which` must not be kNone. The
  // threaded tier pre-resolves intrinsic ids at decode time and calls this
  // directly, so both tiers share one implementation of every check.
  Result<uint64_t> RunIntrinsicById(vir::Intrinsic which,
                                    std::span<const uint64_t> args);

  // Stack/heap allocation shared by both tiers: overflow-checked
  // element*count scaling plus the stack-limit / allocator paths.
  Result<uint64_t> AllocaBytes(uint64_t elem_size, uint64_t count);
  Result<uint64_t> MallocBytes(uint64_t elem_size, uint64_t count);
  Status FreeAddr(uint64_t addr);

  Status LayoutGlobals();
  Status CreatePools();

  vir::Module& module_;
  runtime::MetaPoolRuntime& pools_;
  InterpOptions options_;
  std::unique_ptr<AddressSpace> memory_;
  std::unique_ptr<runtime::OrdinaryAllocator> kmalloc_;

  std::map<std::string, uint64_t> global_addresses_;
  std::map<std::string, uint64_t> function_addresses_;
  std::map<uint64_t, const vir::Function*> functions_by_address_;
  std::map<uint64_t, runtime::MetaPool*> pools_by_handle_;
  std::map<uint64_t, std::unique_ptr<runtime::PoolAllocator>> kmem_caches_;
  std::map<std::string, HostFn> host_fns_;
  // Maps module target-set ids to runtime target-set ids.
  std::vector<uint64_t> runtime_set_ids_;
  // Interned profiler name ids (ProfFunctionId).
  std::map<const vir::Function*, uint32_t> prof_name_ids_;

  // The threaded-code tier; null when options_.tier == kInterp.
  std::unique_ptr<ThreadedEngine> threaded_;

  uint64_t steps_ = 0;
  uint64_t stack_arena_ = 0;
  uint64_t stack_top_ = 0;
  uint64_t stack_limit_ = 0;
  bool initialized_ = false;

  // Per-tier dispatch accounting, accumulated without atomics on the hot
  // path and flushed to trace::TierCounters at the end of each Run().
  uint64_t tier_interp_fns_ = 0;
  uint64_t tier_interp_ops_ = 0;
  uint64_t tier_threaded_fns_ = 0;
  uint64_t tier_threaded_ops_ = 0;
};

}  // namespace sva::svm

#endif  // SVA_SRC_SVM_INTERP_H_
