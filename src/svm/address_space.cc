#include "src/svm/address_space.h"

#include <cstring>

#include "src/support/strings.h"

namespace sva::svm {

AddressSpace::AddressSpace(uint64_t size_bytes)
    : bytes_(size_bytes, 0), bump_(kernel_base()), pages_(*this) {}

Status AddressSpace::CheckRange(uint64_t addr, uint64_t len) const {
  if (addr < kNullGuard) {
    return SafetyViolation(
        StrCat("hardware fault: null-page access at 0x", std::hex, addr));
  }
  if (addr + len > bytes_.size() || addr + len < addr) {
    return SafetyViolation(
        StrCat("hardware fault: access beyond physical memory at 0x",
               std::hex, addr));
  }
  return OkStatus();
}

Result<uint64_t> AddressSpace::Read(uint64_t addr, unsigned bytes) const {
  SVA_RETURN_IF_ERROR(CheckRange(addr, bytes));
  uint64_t v = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(bytes_[addr + i]) << (8 * i);
  }
  return v;
}

Status AddressSpace::Write(uint64_t addr, unsigned bytes, uint64_t value) {
  SVA_RETURN_IF_ERROR(CheckRange(addr, bytes));
  for (unsigned i = 0; i < bytes; ++i) {
    bytes_[addr + i] = static_cast<uint8_t>(value >> (8 * i));
  }
  return OkStatus();
}

Result<double> AddressSpace::ReadF64(uint64_t addr) const {
  SVA_ASSIGN_OR_RETURN(uint64_t bits, Read(addr, 8));
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status AddressSpace::WriteF64(uint64_t addr, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return Write(addr, 8, bits);
}

Result<float> AddressSpace::ReadF32(uint64_t addr) const {
  SVA_ASSIGN_OR_RETURN(uint64_t bits, Read(addr, 4));
  uint32_t b32 = static_cast<uint32_t>(bits);
  float v;
  std::memcpy(&v, &b32, sizeof(v));
  return v;
}

Status AddressSpace::WriteF32(uint64_t addr, float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return Write(addr, 4, bits);
}

Status AddressSpace::Copy(uint64_t dst, uint64_t src, uint64_t len) {
  SVA_RETURN_IF_ERROR(CheckRange(dst, len));
  SVA_RETURN_IF_ERROR(CheckRange(src, len));
  std::memmove(bytes_.data() + dst, bytes_.data() + src, len);
  return OkStatus();
}

Status AddressSpace::Fill(uint64_t addr, uint8_t value, uint64_t len) {
  SVA_RETURN_IF_ERROR(CheckRange(addr, len));
  std::memset(bytes_.data() + addr, value, len);
  return OkStatus();
}

uint64_t AddressSpace::AllocateRegion(uint64_t size, uint64_t align) {
  uint64_t base = (bump_ + align - 1) / align * align;
  if (base + size > bytes_.size() || base + size < base) {
    return 0;
  }
  bump_ = base + size;
  return base;
}

}  // namespace sva::svm
