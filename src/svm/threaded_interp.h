// The threaded-code execution tier (ROADMAP open item 1).
//
// Each verified function is lowered once, lazily at first call, into a flat
// stream of pre-resolved handler records: SSA values get dense register
// slots instead of a per-frame std::map, constants (including global and
// function addresses) are materialized into slot initializers, branch
// targets become indices into the op stream, phis become per-edge parallel
// move lists, and call sites are pre-classified (intrinsic id / direct
// target / host binding / indirect). The stream is executed by
// computed-goto threaded dispatch (portable switch fallback) with the
// bounds/load-store/indirect-call checks invoked through exactly the same
// MetaPoolRuntime entry points as the tree-walking interpreter.
//
// TCB story: the decoder consumes only bytecode that already passed the
// structural verifier — the same keying as the interpreter — and performs a
// purely local, per-function lowering. Anything it cannot prove it can
// lower faithfully (dynamic struct field indices, phis in the entry block,
// blocks without terminators) it refuses, and the Interpreter transparently
// tree-walks that one function instead; no check is ever weakened to make a
// function decodable. Arithmetic and trap semantics come from
// exec_semantics.h, shared with the interpreter, so the tiers cannot
// diverge; tests/tier_parity_test.cc asserts identical results, statuses,
// step counts, and CheckStats across both.
#ifndef SVA_SRC_SVM_THREADED_INTERP_H_
#define SVA_SRC_SVM_THREADED_INTERP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "src/support/status.h"
#include "src/svm/interp.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::svm {

// One threaded-code operation. Fixed-size records keep the stream flat and
// the dispatch loop free of pointer chasing; variable-length payloads
// (call arguments, GEP terms, switch cases, phi moves) live in side tables
// referenced by index.
enum class OpK : uint8_t {
  // Integer binary ops (dst = a op b at width `bits`).
  kAdd, kSub, kMul, kUDiv, kSDiv, kURem, kSRem,
  kAnd, kOr, kXor, kShl, kLShr, kAShr,
  // Float binary ops (fdst = fa op fb).
  kFAdd, kFSub, kFMul, kFDiv,
  kICmp,     // aux = CmpPred, bits = operand width.
  kFCmp,     // aux = CmpPred.
  kSelectI,  // dst = regs[c]&1 ? regs[a] : regs[b].
  kSelectF,  // fregs: same shape.
  kMask,     // trunc/zext/bitcast/ptrtoint/inttoptr: dst = mask(a, bits).
  kSExt,     // aux = src bits, bits = dst bits.
  kSIToFP,   // aux = src bits.
  kFPToSI,   // bits = dst bits.
  kAlloca,   // imm = element size, a = count slot.
  kMalloc,   // imm = element size, a = count slot.
  kFree,     // a = pointer slot.
  kLoadI,    // aux = byte width, a = address slot.
  kLoadF32, kLoadF64,
  kStoreI,   // aux = byte width, a = address slot, b = value slot.
  kStoreF32, kStoreF64,
  kGepStatic,  // dst = regs[a] + imm.
  kGepDyn,     // + aux dynamic terms starting at gep_terms[b].
  kAtomicLIS,  // aux = byte width, a = address, b = delta.
  kCmpXchg,    // aux = byte width, a = address, b = expected, c = desired.
  kCall,       // ptr = CallSite.
  kBr,         // a = edge index.
  kBrCond,     // a = condition slot, b = true edge, c = false edge.
  kSwitch,     // a = condition slot, ptr = SwitchTable.
  kRetVoid, kRetI, kRetF,
  kUnreachable,
  kNop,  // sva.writebarrier (counts one step, does nothing).
  kCount,
};

struct Op {
  OpK kind;
  uint8_t bits = 64;   // Operating width in bits where applicable.
  uint16_t aux = 0;    // Predicate / byte width / source bits / term count.
  uint32_t dst = 0;    // Destination slot (int or float register file).
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  uint64_t imm = 0;    // Immediate: sizes, static GEP offset.
  const void* ptr = nullptr;  // CallSite* / SwitchTable*.
};

// A CFG edge: jump target plus the phi-elimination moves to perform when
// taking it. Moves are gather-then-scatter so mutually-referencing phi
// groups (swaps) behave as the simultaneous assignment SSA requires.
struct Edge {
  uint32_t target = 0;       // Op index of the target block's first op.
  uint32_t moves_start = 0;  // Into ThreadedCode::moves.
  uint16_t moves_count = 0;
  // Step-count parity with the interpreter, which charges one step per phi
  // instruction it retires at the head of the target block.
  uint16_t phi_steps = 0;
};

struct Move {
  uint32_t src = 0;
  uint32_t dst = 0;
  bool is_float = false;
};

// One dynamic GEP index: offset += sext(regs[slot], bits) * scale.
struct GepTerm {
  uint32_t slot = 0;
  uint8_t bits = 64;
  uint64_t scale = 0;
};

// A pre-classified call site.
struct CallSite {
  enum class Kind : uint8_t {
    kIntrinsic,  // Pre-resolved pchk.*/sva.* id.
    kDirect,     // Defined function: recurse through RunFunction.
    kHost,       // Declaration: resolve host binding by name at call time
                 // (bindings may change between runs, so no caching).
    kIndirect,   // Function pointer: full runtime resolution, as interp.
  };
  struct Arg {
    uint32_t slot = 0;
    bool is_float = false;
  };
  Kind kind = Kind::kDirect;
  const vir::Function* target = nullptr;  // Null for kIndirect.
  vir::Intrinsic intrinsic = vir::Intrinsic::kNone;
  uint32_t callee_slot = 0;  // kIndirect only.
  std::vector<Arg> args;
  bool returns_void = true;
  bool returns_float = false;
};

struct SwitchTable {
  uint8_t bits = 64;
  uint32_t default_edge = 0;
  // Pre-masked case values, in source order (first match wins, as interp).
  std::vector<std::pair<uint64_t, uint32_t>> cases;
};

// The decoded form of one function.
struct ThreadedCode {
  const vir::Function* fn = nullptr;
  std::vector<Op> ops;
  std::vector<Edge> edges;
  std::vector<Move> moves;
  std::vector<GepTerm> gep_terms;
  std::vector<std::unique_ptr<CallSite>> call_sites;
  std::vector<std::unique_ptr<SwitchTable>> switch_tables;
  // Register files. Slot 0 upward; const_inits are applied at frame entry.
  uint32_t num_int_slots = 0;
  uint32_t num_float_slots = 0;
  std::vector<std::pair<uint32_t, uint64_t>> iconst_inits;
  std::vector<std::pair<uint32_t, double>> fconst_inits;
  // Argument binding, mirroring the interpreter's mixed int/float ABI.
  struct ArgBind {
    uint32_t slot = 0;
    bool is_float = false;
  };
  std::vector<ArgBind> arg_binds;
  size_t max_edge_moves = 0;  // Scratch sizing for gather/scatter.
};

// Owns the per-function code cache and the dispatch loop. One engine per
// Interpreter; all VM state (memory, pools, allocator, stack arena, step
// budget) stays in the Interpreter, which declares this class a friend.
class ThreadedEngine {
 public:
  explicit ThreadedEngine(Interpreter& interp);
  ~ThreadedEngine();

  // Decoded code for `fn`, decoding on first use. Returns null if the
  // function cannot be lowered (the caller then tree-walks it).
  const ThreadedCode* CodeFor(const vir::Function& fn);

  // Executes decoded code. `depth` has already been bounds-checked by
  // RunFunction.
  ExecResult Execute(const ThreadedCode& code, std::span<const uint64_t> args,
                     std::span<const double> fargs, uint64_t depth);

  // Functions that failed to decode so far (fallback diagnostics).
  uint64_t fallback_functions() const { return unsupported_.size(); }

 private:
  Interpreter& interp_;
  std::map<const vir::Function*, std::unique_ptr<ThreadedCode>> code_;
  std::set<const vir::Function*> unsupported_;
};

}  // namespace sva::svm

#endif  // SVA_SRC_SVM_THREADED_INTERP_H_
