// The Secure Virtual Machine (Section 3.4): loads SVA bytecode, runs the
// structural verifier and the metapool type checker, "translates" it (our
// translator is the interpreter back end), caches and signs the
// bytecode/translation pair, and executes entry points with the runtime
// checks live.
#ifndef SVA_SRC_SVM_SVM_H_
#define SVA_SRC_SVM_SVM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/metapool_runtime.h"
#include "src/support/status.h"
#include "src/svm/interp.h"
#include "src/vir/module.h"

namespace sva::svm {

struct SvmOptions {
  InterpOptions interp;
  runtime::EnforcementMode enforcement = runtime::EnforcementMode::kTrap;
  // Skip the bytecode type check (only the benchmark harness uses this, to
  // isolate verification cost).
  bool run_type_check = true;
};

// One loaded, verified, executable module.
class LoadedModule {
 public:
  LoadedModule(std::unique_ptr<vir::Module> module, SvmOptions options);

  Status Initialize();
  ExecResult Run(const std::string& entry, const std::vector<uint64_t>& args);

  vir::Module& module() { return *module_; }
  Interpreter& interpreter() { return *interp_; }
  runtime::MetaPoolRuntime& pools() { return *pools_; }

 private:
  std::unique_ptr<vir::Module> module_;
  std::unique_ptr<runtime::MetaPoolRuntime> pools_;
  std::unique_ptr<Interpreter> interp_;
};

// Entry in the native-code cache: in the paper the pair (bytecode, native
// code) is digitally signed; here the "native code" is the verified module
// and the signature is a digest over the bytecode.
struct CacheEntry {
  uint64_t digest = 0;
  bool verified = false;
  bool type_checked = false;
};

class SecureVirtualMachine {
 public:
  explicit SecureVirtualMachine(SvmOptions options = {})
      : options_(options) {}

  // Full load path: deserialize -> structural verify -> type check ->
  // translate -> cache signature. Returns the executable module.
  Result<std::unique_ptr<LoadedModule>> LoadBytecode(
      const std::vector<uint8_t>& bytecode);

  // Load path for an already-parsed module (the offline-translation route);
  // serializes internally to produce the cache signature.
  Result<std::unique_ptr<LoadedModule>> LoadModule(
      std::unique_ptr<vir::Module> module);

  // Checks whether previously loaded bytecode would hit the signed cache.
  bool CacheContains(const std::vector<uint8_t>& bytecode) const;
  const std::map<uint64_t, CacheEntry>& cache() const { return cache_; }

  const SvmOptions& options() const { return options_; }

 private:
  SvmOptions options_;
  std::map<uint64_t, CacheEntry> cache_;
};

}  // namespace sva::svm

#endif  // SVA_SRC_SVM_SVM_H_
