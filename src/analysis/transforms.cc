#include "src/analysis/transforms.h"

#include <map>
#include <algorithm>

#include "src/support/strings.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::analysis {

using vir::BasicBlock;
using vir::CallInst;
using vir::Function;
using vir::Instruction;
using vir::Module;
using vir::Opcode;
using vir::Value;

namespace {

size_t InstructionCount(const Function& fn) {
  size_t n = 0;
  for (const auto& bb : fn.blocks()) {
    n += bb->instructions().size();
  }
  return n;
}

size_t ModuleInstructionCount(const Module& module) {
  size_t n = 0;
  for (const auto& fn : module.functions()) {
    n += InstructionCount(*fn);
  }
  return n;
}

}  // namespace

Function* CloneFunction(Module& module, const Function& fn,
                        const std::string& new_name) {
  std::vector<std::string> arg_names;
  for (const auto& arg : fn.args()) {
    arg_names.push_back(arg->name());
  }
  Function* clone = module.CreateFunction(new_name, fn.function_type(),
                                          /*is_declaration=*/false, arg_names);
  std::map<const Value*, Value*> vmap;
  std::map<const BasicBlock*, BasicBlock*> bmap;
  for (size_t i = 0; i < fn.num_args(); ++i) {
    vmap[fn.arg(i)] = clone->arg(i);
  }
  for (const auto& bb : fn.blocks()) {
    bmap[bb.get()] = clone->CreateBlock(bb->name());
  }
  auto mapped = [&](Value* v) -> Value* {
    auto it = vmap.find(v);
    return it == vmap.end() ? v : it->second;
  };

  for (const auto& bb : fn.blocks()) {
    BasicBlock* nbb = bmap[bb.get()];
    for (const auto& inst : bb->instructions()) {
      std::unique_ptr<Instruction> copy;
      const Instruction* in = inst.get();
      switch (in->opcode()) {
        case Opcode::kICmp:
        case Opcode::kFCmp: {
          const auto* c = static_cast<const vir::CmpInst*>(in);
          copy = std::make_unique<vir::CmpInst>(
              in->opcode(), c->pred(),
              static_cast<const vir::IntType*>(in->type()),
              mapped(c->lhs()), mapped(c->rhs()), in->name());
          break;
        }
        case Opcode::kSelect: {
          const auto* s = static_cast<const vir::SelectInst*>(in);
          copy = std::make_unique<vir::SelectInst>(
              mapped(s->condition()), mapped(s->true_value()),
              mapped(s->false_value()), in->name());
          break;
        }
        case Opcode::kTrunc:
        case Opcode::kZExt:
        case Opcode::kSExt:
        case Opcode::kBitcast:
        case Opcode::kPtrToInt:
        case Opcode::kIntToPtr:
        case Opcode::kSIToFP:
        case Opcode::kFPToSI: {
          const auto* c = static_cast<const vir::CastInst*>(in);
          copy = std::make_unique<vir::CastInst>(in->opcode(), mapped(c->src()),
                                                 in->type(), in->name());
          break;
        }
        case Opcode::kAlloca: {
          const auto* a = static_cast<const vir::AllocaInst*>(in);
          copy = std::make_unique<vir::AllocaInst>(
              static_cast<const vir::PointerType*>(in->type()),
              a->allocated_type(), mapped(a->count()), in->name());
          break;
        }
        case Opcode::kMalloc: {
          const auto* m = static_cast<const vir::MallocInst*>(in);
          copy = std::make_unique<vir::MallocInst>(
              static_cast<const vir::PointerType*>(in->type()),
              m->allocated_type(), mapped(m->count()), in->name());
          break;
        }
        case Opcode::kFree: {
          const auto* f = static_cast<const vir::FreeInst*>(in);
          copy = std::make_unique<vir::FreeInst>(module.types().VoidTy(),
                                                 mapped(f->pointer()));
          break;
        }
        case Opcode::kLoad: {
          const auto* l = static_cast<const vir::LoadInst*>(in);
          copy = std::make_unique<vir::LoadInst>(in->type(),
                                                 mapped(l->pointer()),
                                                 in->name());
          break;
        }
        case Opcode::kStore: {
          const auto* s = static_cast<const vir::StoreInst*>(in);
          copy = std::make_unique<vir::StoreInst>(module.types().VoidTy(),
                                                  mapped(s->stored_value()),
                                                  mapped(s->pointer()));
          break;
        }
        case Opcode::kGetElementPtr: {
          const auto* g = static_cast<const vir::GetElementPtrInst*>(in);
          std::vector<Value*> indices;
          for (size_t i = 0; i < g->num_indices(); ++i) {
            indices.push_back(mapped(g->index(i)));
          }
          copy = std::make_unique<vir::GetElementPtrInst>(
              static_cast<const vir::PointerType*>(in->type()),
              mapped(g->base()), std::move(indices), in->name());
          break;
        }
        case Opcode::kAtomicLIS: {
          const auto* a = static_cast<const vir::AtomicLISInst*>(in);
          copy = std::make_unique<vir::AtomicLISInst>(
              in->type(), mapped(a->pointer()), mapped(a->delta()),
              in->name());
          break;
        }
        case Opcode::kCmpXchg: {
          const auto* c = static_cast<const vir::CmpXchgInst*>(in);
          copy = std::make_unique<vir::CmpXchgInst>(
              in->type(), mapped(c->pointer()), mapped(c->expected()),
              mapped(c->desired()), in->name());
          break;
        }
        case Opcode::kWriteBarrier:
          copy = std::make_unique<vir::WriteBarrierInst>(
              module.types().VoidTy());
          break;
        case Opcode::kCall: {
          const auto* c = static_cast<const CallInst*>(in);
          std::vector<Value*> args;
          for (size_t i = 0; i < c->num_args(); ++i) {
            args.push_back(mapped(c->arg(i)));
          }
          copy = std::make_unique<CallInst>(in->type(), mapped(c->callee()),
                                            std::move(args), in->name());
          break;
        }
        case Opcode::kPhi: {
          const auto* p = static_cast<const vir::PhiInst*>(in);
          auto phi = std::make_unique<vir::PhiInst>(in->type(), in->name());
          for (size_t i = 0; i < p->num_incoming(); ++i) {
            phi->AddIncoming(mapped(p->incoming_value(i)),
                             bmap[p->incoming_block(i)]);
          }
          copy = std::move(phi);
          break;
        }
        case Opcode::kBr: {
          const auto* b = static_cast<const vir::BranchInst*>(in);
          if (b->is_conditional()) {
            copy = std::make_unique<vir::BranchInst>(
                module.types().VoidTy(), mapped(b->condition()),
                bmap[b->target(0)], bmap[b->target(1)]);
          } else {
            copy = std::make_unique<vir::BranchInst>(module.types().VoidTy(),
                                                     bmap[b->target(0)]);
          }
          break;
        }
        case Opcode::kSwitch: {
          const auto* s = static_cast<const vir::SwitchInst*>(in);
          auto sw = std::make_unique<vir::SwitchInst>(
              module.types().VoidTy(), mapped(s->condition()),
              bmap[s->default_target()]);
          for (size_t i = 0; i < s->num_cases(); ++i) {
            sw->AddCase(s->case_value(i), bmap[s->case_target(i)]);
          }
          copy = std::move(sw);
          break;
        }
        case Opcode::kRet: {
          const auto* r = static_cast<const vir::RetInst*>(in);
          copy = std::make_unique<vir::RetInst>(
              module.types().VoidTy(),
              r->has_value() ? mapped(r->value()) : nullptr);
          break;
        }
        case Opcode::kUnreachable:
          copy = std::make_unique<vir::UnreachableInst>(
              module.types().VoidTy());
          break;
        default: {
          // Binary arithmetic.
          copy = std::make_unique<vir::BinaryInst>(
              in->opcode(), mapped(in->operand(0)), mapped(in->operand(1)),
              in->name());
          break;
        }
      }
      Instruction* placed = nbb->Append(std::move(copy));
      vmap[in] = placed;
      // Propagate metapool annotations if present (clones made after the
      // safety compiler keep their typing).
      const std::string& mp = module.MetapoolOf(in);
      if (!mp.empty()) {
        module.AnnotateValue(placed, mp);
      }
      if (module.HasSignatureAssertion(in)) {
        module.AddSignatureAssertion(placed);
      }
    }
  }
  // Fix phi incoming values that referenced instructions defined after the
  // phi (loop back-edges): the first pass mapped only already-seen values.
  for (const auto& bb : clone->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != Opcode::kPhi) {
        continue;
      }
      auto* phi = static_cast<vir::PhiInst*>(inst.get());
      for (size_t i = 0; i < phi->num_incoming(); ++i) {
        auto it = vmap.find(phi->incoming_value(i));
        if (it != vmap.end()) {
          phi->set_incoming_value(i, it->second);
        }
      }
    }
  }
  return clone;
}

CloneReport CloneForPrecision(Module& module,
                              const CloneHeuristics& heuristics) {
  CloneReport report;
  report.instructions_before = ModuleInstructionCount(module);
  size_t budget = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(report.instructions_before) *
                          heuristics.max_growth),
      heuristics.max_instructions * 4);

  // Collect direct call sites per callee. (Snapshot function list first:
  // cloning appends to it.)
  std::map<const Function*, std::vector<CallInst*>> sites;
  std::vector<Function*> originals;
  for (const auto& fn : module.functions()) {
    if (!fn->is_declaration()) {
      originals.push_back(fn.get());
    }
  }
  for (Function* fn : originals) {
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        auto* call = dynamic_cast<CallInst*>(inst.get());
        if (call == nullptr) {
          continue;
        }
        Function* callee = call->called_function();
        if (callee == nullptr || callee->is_declaration()) {
          continue;
        }
        sites[callee].push_back(call);
      }
    }
  }

  size_t grown = 0;
  for (Function* fn : originals) {
    auto it = sites.find(fn);
    if (it == sites.end() || it->second.size() < 2) {
      continue;
    }
    size_t size = InstructionCount(*fn);
    if (size > heuristics.max_instructions) {
      continue;
    }
    if (heuristics.require_pointer_param) {
      bool has_ptr = false;
      for (const auto& arg : fn->args()) {
        if (arg->type()->IsPointer()) {
          has_ptr = true;
          break;
        }
      }
      if (!has_ptr) {
        continue;
      }
    }
    // Give every call site beyond the first its own clone, bounded.
    size_t clones = 0;
    for (size_t si = 1; si < it->second.size(); ++si) {
      if (clones >= heuristics.max_clones_per_function ||
          grown + size > budget) {
        break;
      }
      Function* clone = CloneFunction(
          module, *fn, StrCat(fn->name(), ".clone", si));
      it->second[si]->set_operand(0, clone);
      ++clones;
      grown += size;
      ++report.call_sites_rewritten;
    }
    if (clones > 0) {
      ++report.functions_cloned;
    }
  }
  report.instructions_after = ModuleInstructionCount(module);
  return report;
}

DevirtReport Devirtualize(Module& module, const CallGraph& callgraph) {
  DevirtReport report;
  for (const CallInst* call : callgraph.indirect_sites()) {
    if (!module.HasSignatureAssertion(call)) {
      continue;
    }
    ++report.asserted_sites;
    report.candidates_before += callgraph.UnfilteredCalleeCount(call);
    const auto& callees = callgraph.Callees(call);
    report.candidates_after += callees.size();
    if (callees.size() == 1 && !callees.front()->is_declaration()) {
      // The single possible callee: rewrite into a direct call, enabling
      // inlining downstream and removing the run-time check entirely.
      auto* mutable_call = const_cast<CallInst*>(call);
      mutable_call->set_operand(0, const_cast<Function*>(callees.front()));
      ++report.devirtualized_sites;
    }
  }
  return report;
}

}  // namespace sva::analysis
