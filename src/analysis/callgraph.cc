#include "src/analysis/callgraph.h"

#include "src/vir/intrinsics.h"

namespace sva::analysis {

using vir::CallInst;
using vir::Function;

CallGraph::CallGraph(PointsToAnalysis& analysis) : analysis_(analysis) {
  vir::Module& module = analysis.module();
  PointsToGraph& graph = analysis.graph();
  for (const auto& fn : module.functions()) {
    if (fn->is_declaration()) {
      continue;
    }
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        const auto* call = dynamic_cast<const CallInst*>(inst.get());
        if (call == nullptr) {
          continue;
        }
        if (const Function* direct = call->called_function()) {
          if (vir::LookupIntrinsic(direct->name()) != vir::Intrinsic::kNone) {
            continue;
          }
          callees_[call] = {direct};
          unfiltered_counts_[call] = 1;
          continue;
        }
        // Indirect: candidates from the points-to node of the callee.
        PointsToNode* node = graph.NodeOf(call->callee());
        std::vector<const Function*> candidates(
            graph.Find(node)->functions().begin(),
            graph.Find(node)->functions().end());
        unfiltered_counts_[call] = candidates.size();
        if (module.HasSignatureAssertion(call)) {
          // Section 4.8 annotation: all real callees match the call's
          // signature exactly, so filter by FunctionType identity.
          const auto* callee_ptr_type =
              static_cast<const vir::PointerType*>(call->callee()->type());
          const vir::Type* expected = callee_ptr_type->pointee();
          std::vector<const Function*> filtered;
          for (const Function* f : candidates) {
            if (f->function_type() == expected) {
              filtered.push_back(f);
            }
          }
          candidates = std::move(filtered);
        }
        callees_[call] = std::move(candidates);
        indirect_sites_.push_back(call);
      }
    }
  }
}

const std::vector<const Function*>& CallGraph::Callees(
    const CallInst* call) const {
  auto it = callees_.find(call);
  return it == callees_.end() ? empty_ : it->second;
}

size_t CallGraph::UnfilteredCalleeCount(const CallInst* call) const {
  auto it = unfiltered_counts_.find(call);
  return it == unfiltered_counts_.end() ? 0 : it->second;
}

std::vector<const CallInst*> CallGraph::CallersOf(const Function* fn) const {
  std::vector<const CallInst*> out;
  for (const auto& [call, callees] : callees_) {
    for (const Function* f : callees) {
      if (f == fn) {
        out.push_back(call);
        break;
      }
    }
  }
  return out;
}

}  // namespace sva::analysis
