// Unification-based ("Steensgaard-style", [41]) points-to analysis over SVA
// bytecode. Every pointer value in the program maps to exactly one node of
// the points-to graph; each node represents one static partition of memory
// objects and later becomes one metapool (Section 4.3).
//
// Nodes carry the memory-class flags of the paper (Heap/Stack/Global/
// Function/Unknown), an Incomplete flag for partitions exposed to
// unanalyzed code, a type-homogeneity candidate type, and — per the
// kernel-specific extensions of Section 4.8 — user-reachability for syscall
// argument partitions and allocator provenance for kernel-pool correlation.
#ifndef SVA_SRC_ANALYSIS_POINTSTO_H_
#define SVA_SRC_ANALYSIS_POINTSTO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/config.h"
#include "src/support/status.h"
#include "src/vir/module.h"

namespace sva::analysis {

class PointsToGraph;

class PointsToNode {
 public:
  enum Flag : uint32_t {
    kHeap = 1 << 0,
    kStack = 1 << 1,
    kGlobal = 1 << 2,
    kFunction = 1 << 3,
    kUnknown = 1 << 4,      // Manufactured address may alias this node.
    kIncomplete = 1 << 5,   // Exposed to unanalyzed code.
    kUserReachable = 1 << 6,  // Reachable from syscall pointer arguments.
  };

  explicit PointsToNode(uint32_t id) : id_(id) {}

  uint32_t id() const { return id_; }
  uint32_t flags() const { return flags_; }
  bool has_flag(Flag f) const { return (flags_ & f) != 0; }

  // The single element type candidate, or nullptr when no typed access has
  // been seen. Collapsed nodes have conflicting accesses and are never
  // type-homogeneous.
  const vir::Type* element_type() const { return element_type_; }
  bool collapsed() const { return collapsed_; }

  // Type-homogeneous: a single consistent element type, no unknown aliases.
  bool IsTypeHomogeneous() const {
    return !collapsed_ && element_type_ != nullptr && !has_flag(kUnknown);
  }
  bool IsComplete() const { return !has_flag(kIncomplete); }

  // Functions whose address flows into this node (callee candidates).
  const std::set<const vir::Function*>& functions() const {
    return functions_;
  }

  // Names of the allocator interfaces that create objects in this node
  // ("kmalloc-128", "kmem_cache:<descriptor site>") — used for kernel pool
  // correlation and metapool merging.
  const std::set<std::string>& allocator_sources() const {
    return allocator_sources_;
  }

 private:
  friend class PointsToGraph;
  uint32_t id_;
  uint32_t flags_ = 0;
  const vir::Type* element_type_ = nullptr;
  bool collapsed_ = false;
  std::set<const vir::Function*> functions_;
  std::set<std::string> allocator_sources_;

  // Union-find state and the single outgoing points-to edge.
  PointsToNode* parent_ = nullptr;
  PointsToNode* pointee_ = nullptr;
};

class PointsToGraph {
 public:
  PointsToGraph() = default;
  PointsToGraph(const PointsToGraph&) = delete;
  PointsToGraph& operator=(const PointsToGraph&) = delete;

  // The canonical node a pointer-typed value points to (creating it on
  // first use).
  PointsToNode* NodeOf(const vir::Value* v);
  // NodeOf without creating: nullptr if the value was never seen.
  PointsToNode* FindNode(const vir::Value* v) const;

  PointsToNode* MakeNode();
  PointsToNode* Find(PointsToNode* n) const;
  // Unifies two partitions; returns the canonical survivor.
  PointsToNode* Unify(PointsToNode* a, PointsToNode* b);
  // The node this partition's pointers point to (created on demand).
  PointsToNode* PointeeOf(PointsToNode* n);
  // Pointee if present, nullptr otherwise.
  PointsToNode* FindPointee(PointsToNode* n) const;

  void AddFlag(PointsToNode* n, PointsToNode::Flag f) {
    Find(n)->flags_ |= f;
  }
  void AddFunction(PointsToNode* n, const vir::Function* fn) {
    Find(n)->functions_.insert(fn);
    Find(n)->flags_ |= PointsToNode::kFunction;
  }
  void AddAllocatorSource(PointsToNode* n, const std::string& source) {
    Find(n)->allocator_sources_.insert(source);
  }
  // Records a typed access (load/store/allocation element type); conflicting
  // types collapse the node. Array types are normalized to their element.
  void AccessType(PointsToNode* n, const vir::Type* type);
  void Collapse(PointsToNode* n) { Find(n)->collapsed_ = true; }

  // All canonical (representative) nodes.
  std::vector<PointsToNode*> CanonicalNodes() const;
  // All values mapped to nodes.
  const std::map<const vir::Value*, PointsToNode*>& value_nodes() const {
    return value_nodes_;
  }

  // Marks everything reachable from incomplete nodes incomplete.
  void PropagateIncompleteness();

 private:
  std::vector<std::unique_ptr<PointsToNode>> nodes_;
  std::map<const vir::Value*, PointsToNode*> value_nodes_;
};

// Runs the analysis over a module. The graph and per-value mapping stay
// valid as long as the module does.
class PointsToAnalysis {
 public:
  PointsToAnalysis(vir::Module& module, AnalysisConfig config);

  // Builds constraints and iterates to a fixpoint.
  Status Run();

  PointsToGraph& graph() { return graph_; }
  const AnalysisConfig& config() const { return config_; }
  vir::Module& module() { return module_; }

  // Allocation sites discovered (malloc instructions and allocator calls),
  // with the node their result points into.
  struct AllocationSite {
    const vir::Instruction* inst = nullptr;
    PointsToNode* node = nullptr;
    std::string allocator;  // "malloc", "kmalloc", "kmem_cache_alloc", ...
  };
  const std::vector<AllocationSite>& allocation_sites() const {
    return allocation_sites_;
  }

  // Syscall handlers discovered via sva.register.syscall (Section 4.8).
  const std::map<uint64_t, const vir::Function*>& syscall_table() const {
    return syscall_table_;
  }

  // True if `fn` is external to the analyzed portion (a declaration without
  // a host allocator/copy role).
  bool IsExternalFunction(const vir::Function& fn) const;

  // The node representing the pointer objects returned by `fn`.
  PointsToNode* ReturnNodeOf(const vir::Function& fn);

 private:
  void ProcessFunction(const vir::Function& fn);
  void ProcessInstruction(const vir::Function& fn,
                          const vir::Instruction& inst);
  void ProcessCall(const vir::Function& fn, const vir::CallInst& call);
  void ApplyCallBinding(const vir::CallInst& call, const vir::Function& callee);
  const AllocatorInfo* AllocatorFor(const std::string& name) const;
  bool IsCopyFunction(const std::string& name) const;

  vir::Module& module_;
  AnalysisConfig config_;
  PointsToGraph graph_;
  std::vector<AllocationSite> allocation_sites_;
  std::set<const vir::Instruction*> sites_seen_;
  std::map<const vir::Function*, PointsToNode*> return_nodes_;
  std::map<uint64_t, const vir::Function*> syscall_table_;
};

}  // namespace sva::analysis

#endif  // SVA_SRC_ANALYSIS_POINTSTO_H_
