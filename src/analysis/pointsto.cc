#include <cstdlib>
#include "src/analysis/pointsto.h"

#include <algorithm>
#include <cassert>

#include "src/support/strings.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::analysis {

using vir::CallInst;
using vir::Function;
using vir::GlobalVariable;
using vir::Instruction;
using vir::Opcode;
using vir::Type;
using vir::Value;

AnalysisConfig AnalysisConfig::LinuxLike() {
  AnalysisConfig config;
  AllocatorInfo kmalloc;
  kmalloc.alloc_fn = "kmalloc";
  kmalloc.free_fn = "kfree";
  kmalloc.size_arg = 0;
  kmalloc.exposes_size_classes = true;
  config.allocators.push_back(kmalloc);

  AllocatorInfo bootmem;
  bootmem.alloc_fn = "_alloc_bootmem";
  bootmem.free_fn = "";
  bootmem.size_arg = 0;
  config.allocators.push_back(bootmem);

  AllocatorInfo kmem_cache;
  kmem_cache.alloc_fn = "kmem_cache_alloc";
  kmem_cache.free_fn = "kmem_cache_free";
  kmem_cache.size_arg = -1;
  kmem_cache.is_pool = true;
  kmem_cache.pool_arg = 0;
  config.allocators.push_back(kmem_cache);

  AllocatorInfo vmalloc;
  vmalloc.alloc_fn = "vmalloc";
  vmalloc.free_fn = "vfree";
  vmalloc.size_arg = 0;
  config.allocators.push_back(vmalloc);
  return config;
}

// --- PointsToGraph -----------------------------------------------------------

PointsToNode* PointsToGraph::MakeNode() {
  nodes_.push_back(
      std::make_unique<PointsToNode>(static_cast<uint32_t>(nodes_.size())));
  return nodes_.back().get();
}

PointsToNode* PointsToGraph::Find(PointsToNode* n) const {
  while (n->parent_ != nullptr) {
    if (n->parent_->parent_ != nullptr) {
      n->parent_ = n->parent_->parent_;  // Path halving.
    }
    n = n->parent_;
  }
  return n;
}

PointsToNode* PointsToGraph::NodeOf(const Value* v) {
  auto it = value_nodes_.find(v);
  if (it != value_nodes_.end()) {
    PointsToNode* canon = Find(it->second);
    it->second = canon;
    return canon;
  }
  PointsToNode* n = MakeNode();
  value_nodes_[v] = n;
  return n;
}

PointsToNode* PointsToGraph::FindNode(const Value* v) const {
  auto it = value_nodes_.find(v);
  return it == value_nodes_.end() ? nullptr : Find(it->second);
}

void PointsToGraph::AccessType(PointsToNode* n, const Type* type) {
  n = Find(n);
  // Arrays of T are type-homogeneous as T (Section 4.1, T2).
  while (type->IsArray()) {
    type = static_cast<const vir::ArrayType*>(type)->element();
  }
  if (type->IsVoid()) {
    return;
  }
  if (n->element_type_ == nullptr) {
    if (!n->collapsed_) {
      n->element_type_ = type;
    }
    return;
  }
  if (n->element_type_ == type) {
    return;
  }
  // Accessing a member of the element type (struct field loads/stores via
  // getelementptr) preserves type homogeneity; seeing the containing type
  // after a member upgrades the element. Anything else collapses the node.
  if (vir::TypeContainsMember(n->element_type_, type)) {
    return;
  }
  if (vir::TypeContainsMember(type, n->element_type_)) {
    n->element_type_ = type;
    return;
  }
  n->collapsed_ = true;
  n->element_type_ = nullptr;
}

PointsToNode* PointsToGraph::Unify(PointsToNode* a, PointsToNode* b) {
  a = Find(a);
  b = Find(b);
  if (a == b) {
    return a;
  }
  // Keep the lower id as representative (stable naming for tests/benches).
  if (b->id_ < a->id_) {
    std::swap(a, b);
  }
  b->parent_ = a;
  a->flags_ |= b->flags_;
  a->functions_.insert(b->functions_.begin(), b->functions_.end());
  a->allocator_sources_.insert(b->allocator_sources_.begin(),
                               b->allocator_sources_.end());
  if (b->collapsed_) {
    a->collapsed_ = true;
    a->element_type_ = nullptr;
  } else if (b->element_type_ != nullptr) {
    if (a->element_type_ == nullptr && !a->collapsed_) {
      a->element_type_ = b->element_type_;
    } else if (a->element_type_ != b->element_type_ && !a->collapsed_) {
      if (vir::TypeContainsMember(a->element_type_, b->element_type_)) {
        // Keep the containing type.
      } else if (vir::TypeContainsMember(b->element_type_,
                                         a->element_type_)) {
        a->element_type_ = b->element_type_;
      } else {
        a->collapsed_ = true;
        a->element_type_ = nullptr;
      }
    }
  }
  PointsToNode* b_pointee = b->pointee_;
  b->pointee_ = nullptr;
  if (b_pointee != nullptr) {
    if (a->pointee_ == nullptr) {
      a->pointee_ = b_pointee;
    } else {
      Unify(a->pointee_, b_pointee);
    }
  }
  return Find(a);
}

PointsToNode* PointsToGraph::PointeeOf(PointsToNode* n) {
  n = Find(n);
  if (n->pointee_ == nullptr) {
    n->pointee_ = MakeNode();
  }
  return Find(n->pointee_);
}

PointsToNode* PointsToGraph::FindPointee(PointsToNode* n) const {
  n = Find(n);
  return n->pointee_ == nullptr ? nullptr : Find(n->pointee_);
}

std::vector<PointsToNode*> PointsToGraph::CanonicalNodes() const {
  std::vector<PointsToNode*> out;
  for (const auto& n : nodes_) {
    if (n->parent_ == nullptr) {
      out.push_back(n.get());
    }
  }
  return out;
}

void PointsToGraph::PropagateIncompleteness() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& n : nodes_) {
      if (n->parent_ != nullptr) {
        continue;
      }
      if (n->has_flag(PointsToNode::kIncomplete) && n->pointee_ != nullptr) {
        PointsToNode* p = Find(n->pointee_);
        if (!p->has_flag(PointsToNode::kIncomplete)) {
          p->flags_ |= PointsToNode::kIncomplete;
          changed = true;
        }
      }
      // User-reachability flows to what the arguments point at.
      if (n->has_flag(PointsToNode::kUserReachable) && n->pointee_ != nullptr) {
        PointsToNode* p = Find(n->pointee_);
        if (!p->has_flag(PointsToNode::kUserReachable)) {
          p->flags_ |= PointsToNode::kUserReachable;
          changed = true;
        }
      }
    }
  }
}

// --- PointsToAnalysis ---------------------------------------------------------

PointsToAnalysis::PointsToAnalysis(vir::Module& module, AnalysisConfig config)
    : module_(module), config_(std::move(config)) {}

const AllocatorInfo* PointsToAnalysis::AllocatorFor(
    const std::string& name) const {
  for (const AllocatorInfo& info : config_.allocators) {
    if (info.alloc_fn == name) {
      return &info;
    }
  }
  return nullptr;
}

bool PointsToAnalysis::IsCopyFunction(const std::string& name) const {
  return std::find(config_.copy_functions.begin(),
                   config_.copy_functions.end(),
                   name) != config_.copy_functions.end();
}

bool PointsToAnalysis::IsExternalFunction(const Function& fn) const {
  if (!fn.is_declaration()) {
    return false;
  }
  if (vir::LookupIntrinsic(fn.name()) != vir::Intrinsic::kNone) {
    return false;
  }
  if (AllocatorFor(fn.name()) != nullptr || IsCopyFunction(fn.name())) {
    return false;
  }
  for (const AllocatorInfo& info : config_.allocators) {
    if (info.free_fn == fn.name()) {
      return false;
    }
  }
  if (std::find(config_.allocator_metadata_functions.begin(),
                config_.allocator_metadata_functions.end(),
                fn.name()) != config_.allocator_metadata_functions.end()) {
    return false;
  }
  return true;
}

void PointsToAnalysis::ApplyCallBinding(const CallInst& call,
                                        const Function& callee) {
  for (size_t i = 0; i < call.num_args() && i < callee.num_args(); ++i) {
    if (call.arg(i)->type()->IsPointer()) {
      graph_.Unify(graph_.NodeOf(call.arg(i)),
                   graph_.NodeOf(callee.arg(i)));
    }
  }
  if (call.type()->IsPointer()) {
    // The callee's return partition is keyed by the Function value itself
    // shifted into a dedicated slot: use the function's own map entry's
    // pointee as "returns" storage. We keep a simple convention: a defined
    // function's pointer returns all unify with the node of each of its ret
    // instructions, which ProcessInstruction links to this call below via
    // the per-function return node.
    graph_.Unify(graph_.NodeOf(&call), ReturnNodeOf(callee));
  }
}

// Out-of-line helper: stable per-function return node.
PointsToNode* PointsToAnalysis::ReturnNodeOf(const Function& fn) {
  auto it = return_nodes_.find(&fn);
  if (it != return_nodes_.end()) {
    return graph_.Find(it->second);
  }
  PointsToNode* n = graph_.MakeNode();
  return_nodes_[&fn] = n;
  return n;
}

void PointsToAnalysis::ProcessCall(const Function& fn, const CallInst& call) {
  (void)fn;
  // Intrinsics: no dataflow effect (they are checks, not data operations).
  if (const Function* direct = call.called_function()) {
    vir::Intrinsic which = vir::LookupIntrinsic(direct->name());
    if (which == vir::Intrinsic::kRegisterSyscall) {
      // Section 4.8: map syscall numbers to handlers so internal syscalls
      // analyze as direct calls.
      if (call.num_args() == 2) {
        const auto* num = dynamic_cast<const vir::ConstantInt*>(call.arg(0));
        const Function* handler = nullptr;
        if (const auto* cast =
                dynamic_cast<const vir::CastInst*>(call.arg(1))) {
          handler = dynamic_cast<const Function*>(cast->src());
        } else {
          handler = dynamic_cast<const Function*>(call.arg(1));
        }
        if (num != nullptr && handler != nullptr) {
          syscall_table_[num->zext_value()] = handler;
        }
      }
      return;
    }
    if (which != vir::Intrinsic::kNone) {
      return;
    }

    // Kernel allocators (Section 4.3).
    if (const AllocatorInfo* info = AllocatorFor(direct->name())) {
      PointsToNode* obj = graph_.NodeOf(&call);
      graph_.AddFlag(obj, PointsToNode::kHeap);
      std::string source;
      if (info->is_pool && info->pool_arg >= 0 &&
          static_cast<size_t>(info->pool_arg) < call.num_args()) {
        PointsToNode* desc =
            graph_.NodeOf(call.arg(static_cast<size_t>(info->pool_arg)));
        source = StrCat(info->alloc_fn, ":pool", graph_.Find(desc)->id());
      } else if (info->exposes_size_classes && info->size_arg >= 0 &&
                 static_cast<size_t>(info->size_arg) < call.num_args()) {
        const auto* size = dynamic_cast<const vir::ConstantInt*>(
            call.arg(static_cast<size_t>(info->size_arg)));
        if (size != nullptr) {
          // Size classes as in the runtime's OrdinaryAllocator.
          uint64_t cls = 32;
          while (cls < size->zext_value()) {
            cls *= 2;
          }
          source = StrCat(info->alloc_fn, "-", cls);
        } else {
          source = info->alloc_fn;
        }
      } else {
        source = info->alloc_fn;
      }
      graph_.AddAllocatorSource(obj, source);
      if (sites_seen_.insert(&call).second) {
        allocation_sites_.push_back(AllocationSite{&call, obj, source});
      }
      return;
    }
    // Free functions: no constraints.
    for (const AllocatorInfo& info : config_.allocators) {
      if (info.free_fn == direct->name()) {
        return;
      }
    }
    // Allocator metadata (cache descriptors): opaque allocator-internal
    // objects; neither registered nor incompleteness-inducing.
    if (std::find(config_.allocator_metadata_functions.begin(),
                  config_.allocator_metadata_functions.end(),
                  direct->name()) !=
        config_.allocator_metadata_functions.end()) {
      return;
    }
    // Copy-function heuristic (Section 4.8): merge only the outgoing edges
    // of source and destination objects, like *p = *q rather than p = q.
    // Applies only to external copy routines; a copy function compiled as
    // bytecode analyzes like any other function (this distinction is what
    // makes the ELF-loader exploit detectable once the library is compiled).
    if (IsCopyFunction(direct->name()) && direct->is_declaration()) {
      if (call.num_args() >= 2 && call.arg(0)->type()->IsPointer() &&
          call.arg(1)->type()->IsPointer()) {
        PointsToNode* dst = graph_.NodeOf(call.arg(0));
        PointsToNode* src = graph_.NodeOf(call.arg(1));
        graph_.Unify(graph_.PointeeOf(dst), graph_.PointeeOf(src));
      }
      return;
    }

    if (!direct->is_declaration()) {
      ApplyCallBinding(call, *direct);
      return;
    }
    // External code: everything passed or returned is exposed (Incomplete).
    for (size_t i = 0; i < call.num_args(); ++i) {
      if (call.arg(i)->type()->IsPointer()) {
        graph_.AddFlag(graph_.NodeOf(call.arg(i)), PointsToNode::kIncomplete);
      }
    }
    if (call.type()->IsPointer()) {
      graph_.AddFlag(graph_.NodeOf(&call), PointsToNode::kIncomplete);
    }
    return;
  }

  // Indirect call: bind against every candidate callee seen so far.
  PointsToNode* callee_node = graph_.NodeOf(call.callee());
  for (const Function* candidate : graph_.Find(callee_node)->functions()) {
    if (!candidate->is_declaration()) {
      ApplyCallBinding(call, *candidate);
    }
  }
  if (graph_.Find(callee_node)->has_flag(PointsToNode::kUnknown)) {
    for (size_t i = 0; i < call.num_args(); ++i) {
      if (call.arg(i)->type()->IsPointer()) {
        graph_.AddFlag(graph_.NodeOf(call.arg(i)), PointsToNode::kIncomplete);
      }
    }
  }
}

void PointsToAnalysis::ProcessInstruction(const Function& fn,
                                          const Instruction& inst) {
  switch (inst.opcode()) {
    case Opcode::kAlloca: {
      const auto* a = static_cast<const vir::AllocaInst*>(&inst);
      PointsToNode* n = graph_.NodeOf(&inst);
      graph_.AddFlag(n, PointsToNode::kStack);
      graph_.AccessType(n, a->allocated_type());
      break;
    }
    case Opcode::kMalloc: {
      const auto* m = static_cast<const vir::MallocInst*>(&inst);
      PointsToNode* n = graph_.NodeOf(&inst);
      graph_.AddFlag(n, PointsToNode::kHeap);
      graph_.AccessType(n, m->allocated_type());
      graph_.AddAllocatorSource(n, "malloc");
      if (sites_seen_.insert(&inst).second) {
        allocation_sites_.push_back(AllocationSite{&inst, n, "malloc"});
      }
      break;
    }
    case Opcode::kBitcast: {
      const auto* cast = static_cast<const vir::CastInst*>(&inst);
      if (cast->src()->type()->IsPointer() && inst.type()->IsPointer()) {
        PointsToNode* n =
            graph_.Unify(graph_.NodeOf(cast->src()), graph_.NodeOf(&inst));
        // The i8* -> T* specialization idiom (kmalloc result casts) yields
        // the element type; T* -> i8* genericization does not collapse.
        const Type* src_pointee =
            static_cast<const vir::PointerType*>(cast->src()->type())
                ->pointee();
        const Type* dst_pointee =
            static_cast<const vir::PointerType*>(inst.type())->pointee();
        if (src_pointee->IsInt() &&
            static_cast<const vir::IntType*>(src_pointee)->bits() == 8 &&
            !(dst_pointee->IsInt() &&
              static_cast<const vir::IntType*>(dst_pointee)->bits() == 8)) {
          graph_.AccessType(n, dst_pointee);
        }
      }
      break;
    }
    case Opcode::kIntToPtr: {
      const auto* cast = static_cast<const vir::CastInst*>(&inst);
      const auto* c = dynamic_cast<const vir::ConstantInt*>(cast->src());
      if (c != nullptr &&
          std::llabs(c->sext_value()) <= config_.small_int_threshold) {
        // Small-constant error-code idiom: treat as null (Section 4.8).
        break;
      }
      PointsToNode* n = graph_.NodeOf(&inst);
      graph_.AddFlag(n, PointsToNode::kUnknown);
      graph_.AddFlag(n, PointsToNode::kIncomplete);
      graph_.Collapse(n);
      break;
    }
    case Opcode::kGetElementPtr: {
      const auto* gep = static_cast<const vir::GetElementPtrInst*>(&inst);
      graph_.Unify(graph_.NodeOf(gep->base()), graph_.NodeOf(&inst));
      break;
    }
    case Opcode::kLoad: {
      const auto* load = static_cast<const vir::LoadInst*>(&inst);
      PointsToNode* obj = graph_.NodeOf(load->pointer());
      graph_.AccessType(obj, inst.type());
      if (inst.type()->IsPointer()) {
        graph_.Unify(graph_.NodeOf(&inst), graph_.PointeeOf(obj));
      }
      break;
    }
    case Opcode::kStore: {
      const auto* store = static_cast<const vir::StoreInst*>(&inst);
      PointsToNode* obj = graph_.NodeOf(store->pointer());
      graph_.AccessType(obj, store->stored_value()->type());
      if (store->stored_value()->type()->IsPointer()) {
        graph_.Unify(graph_.PointeeOf(obj),
                     graph_.NodeOf(store->stored_value()));
      }
      break;
    }
    case Opcode::kAtomicLIS:
    case Opcode::kCmpXchg: {
      PointsToNode* obj = graph_.NodeOf(inst.operand(0));
      graph_.AccessType(obj, inst.type());
      break;
    }
    case Opcode::kSelect: {
      if (inst.type()->IsPointer()) {
        const auto* sel = static_cast<const vir::SelectInst*>(&inst);
        graph_.Unify(graph_.NodeOf(&inst), graph_.NodeOf(sel->true_value()));
        graph_.Unify(graph_.NodeOf(&inst), graph_.NodeOf(sel->false_value()));
      }
      break;
    }
    case Opcode::kPhi: {
      if (inst.type()->IsPointer()) {
        const auto* phi = static_cast<const vir::PhiInst*>(&inst);
        for (size_t i = 0; i < phi->num_incoming(); ++i) {
          graph_.Unify(graph_.NodeOf(&inst),
                       graph_.NodeOf(phi->incoming_value(i)));
        }
      }
      break;
    }
    case Opcode::kRet: {
      const auto* ret = static_cast<const vir::RetInst*>(&inst);
      if (ret->has_value() && ret->value()->type()->IsPointer()) {
        graph_.Unify(ReturnNodeOf(fn), graph_.NodeOf(ret->value()));
      }
      break;
    }
    case Opcode::kCall:
      ProcessCall(fn, *static_cast<const CallInst*>(&inst));
      break;
    default:
      break;
  }
}

void PointsToAnalysis::ProcessFunction(const Function& fn) {
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      ProcessInstruction(fn, *inst);
    }
  }
}

Status PointsToAnalysis::Run() {
  // Seed globals and function constants.
  for (const auto& gv : module_.globals()) {
    if (vir::IsMetapoolHandle(gv.get())) {
      continue;
    }
    PointsToNode* n = graph_.NodeOf(gv.get());
    graph_.AddFlag(n, PointsToNode::kGlobal);
    graph_.AccessType(n, gv->value_type());
    if (gv->is_external() && !config_.whole_program) {
      // External objects (BIOS areas, pre-kernel allocations) are
      // unregistered in partial builds. In whole-program mode the kernel
      // registers them via pseudo_alloc before first use (Section 4.7), so
      // they behave like ordinary registered objects.
      graph_.AddFlag(n, PointsToNode::kIncomplete);
    }
  }
  for (const auto& fn : module_.functions()) {
    PointsToNode* n = graph_.NodeOf(fn.get());
    graph_.AddFunction(n, fn.get());
  }
  // Entry points: syscall-style external callers.
  auto seed_entry = [&](const Function* fn) {
    for (size_t i = 0; i < fn->num_args(); ++i) {
      if (!fn->arg(i)->type()->IsPointer()) {
        continue;
      }
      PointsToNode* n = graph_.NodeOf(fn->arg(i));
      if (config_.whole_program) {
        graph_.AddFlag(n, PointsToNode::kUserReachable);
      } else {
        graph_.AddFlag(n, PointsToNode::kIncomplete);
      }
    }
  };
  for (const std::string& name : config_.entry_points) {
    if (const Function* fn = module_.GetFunction(name)) {
      seed_entry(fn);
    }
  }

  // Fixpoint: indirect-call bindings may discover new constraints.
  uint64_t last_signature = ~uint64_t{0};
  for (int iter = 0; iter < 64; ++iter) {
    for (const auto& fn : module_.functions()) {
      if (!fn->is_declaration()) {
        ProcessFunction(*fn);
      }
    }
    for (const auto& [num, handler] : syscall_table_) {
      (void)num;
      seed_entry(handler);
    }
    // Convergence check via a structural signature of the graph.
    uint64_t sig = 1469598103934665603ull;
    for (const auto& [value, node] : graph_.value_nodes()) {
      (void)value;
      PointsToNode* c = graph_.Find(node);
      sig = (sig ^ c->id()) * 1099511628211ull;
      sig = (sig ^ c->flags()) * 1099511628211ull;
      sig = (sig ^ c->functions().size()) * 1099511628211ull;
    }
    if (sig == last_signature) {
      break;
    }
    last_signature = sig;
  }
  graph_.PropagateIncompleteness();
  return OkStatus();
}

}  // namespace sva::analysis
