// Precision-improving module transformations of Section 4.8:
//
//  * Function cloning: different objects passed through the same formal
//    parameter from different call sites alias in a unification analysis;
//    cloning small multi-caller functions separates the partitions.
//  * Devirtualization: signature-asserted indirect call sites whose filtered
//    callee set is a single function become direct calls.
#ifndef SVA_SRC_ANALYSIS_TRANSFORMS_H_
#define SVA_SRC_ANALYSIS_TRANSFORMS_H_

#include <string>

#include "src/analysis/callgraph.h"
#include "src/support/status.h"
#include "src/vir/module.h"

namespace sva::analysis {

// Deep-copies `fn` into `module` under `new_name` (returns the clone).
// Metapool annotations are not copied; cloning runs before the safety
// compiler assigns them.
vir::Function* CloneFunction(vir::Module& module, const vir::Function& fn,
                             const std::string& new_name);

struct CloneHeuristics {
  // Only clone functions with at most this many instructions (code-blowup
  // guard; the paper reports < 10% bytecode growth).
  size_t max_instructions = 48;
  // Only clone when the function has at least one pointer parameter.
  bool require_pointer_param = true;
  // Maximum clones created per original function.
  size_t max_clones_per_function = 8;
  // Overall growth bound: stop when the module grew by this fraction.
  double max_growth = 0.10;
};

struct CloneReport {
  size_t functions_cloned = 0;
  size_t call_sites_rewritten = 0;
  size_t instructions_before = 0;
  size_t instructions_after = 0;
};

// Clones eligible multi-caller functions so each (remaining) call site calls
// a private copy. Must run before the points-to analysis that feeds the
// safety compiler.
CloneReport CloneForPrecision(vir::Module& module,
                              const CloneHeuristics& heuristics = {});

struct DevirtReport {
  size_t asserted_sites = 0;
  size_t devirtualized_sites = 0;
  size_t candidates_before = 0;
  size_t candidates_after = 0;
};

// Rewrites signature-asserted indirect call sites with a unique callee into
// direct calls. Requires a CallGraph built on a completed analysis.
DevirtReport Devirtualize(vir::Module& module, const CallGraph& callgraph);

}  // namespace sva::analysis

#endif  // SVA_SRC_ANALYSIS_TRANSFORMS_H_
