// Call graph construction on top of the points-to analysis. Direct calls
// give exact edges; indirect calls resolve through the function sets of the
// callee pointer's points-to node, optionally filtered by the programmer's
// signature assertions (Section 4.8) which can shrink a callee set by
// orders of magnitude.
#ifndef SVA_SRC_ANALYSIS_CALLGRAPH_H_
#define SVA_SRC_ANALYSIS_CALLGRAPH_H_

#include <map>
#include <set>
#include <vector>

#include "src/analysis/pointsto.h"
#include "src/vir/instructions.h"

namespace sva::analysis {

class CallGraph {
 public:
  // Builds the graph from the module underlying `analysis` (which must have
  // been Run()).
  explicit CallGraph(PointsToAnalysis& analysis);

  // Callee candidates of a call site. Direct calls return exactly one.
  const std::vector<const vir::Function*>& Callees(
      const vir::CallInst* call) const;

  // All call sites that are indirect (needing run-time indirect-call checks).
  const std::vector<const vir::CallInst*>& indirect_sites() const {
    return indirect_sites_;
  }

  // Callers of a function (call sites that may reach it).
  std::vector<const vir::CallInst*> CallersOf(const vir::Function* fn) const;

  // Number of candidates an unfiltered (no signature assertion) resolution
  // would give — used to report the Section 4.8 improvement.
  size_t UnfilteredCalleeCount(const vir::CallInst* call) const;

 private:
  PointsToAnalysis& analysis_;
  std::map<const vir::CallInst*, std::vector<const vir::Function*>> callees_;
  std::map<const vir::CallInst*, size_t> unfiltered_counts_;
  std::vector<const vir::CallInst*> indirect_sites_;
  std::vector<const vir::Function*> empty_;
};

}  // namespace sva::analysis

#endif  // SVA_SRC_ANALYSIS_CALLGRAPH_H_
