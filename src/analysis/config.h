// Configuration the kernel developer supplies to the safety-checking
// compiler during porting (Section 4.4): which functions are allocators,
// which are pool allocators, where the size argument lives, and which
// functions are externally reachable entry points (system calls).
#ifndef SVA_SRC_ANALYSIS_CONFIG_H_
#define SVA_SRC_ANALYSIS_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sva::analysis {

// Describes one kernel allocator interface.
struct AllocatorInfo {
  std::string alloc_fn;
  std::string free_fn;
  // Index of the byte-size argument of alloc_fn, or -1 if the size is fixed
  // per pool (pool allocators report it via the descriptor).
  int size_arg = 0;
  // Pool allocator (kmem_cache style): allocations from the same descriptor
  // argument share one kernel pool. Ordinary allocators (kmalloc) have full
  // internal reuse across all call sites.
  bool is_pool = false;
  int pool_arg = -1;  // Index of the descriptor argument for pool allocators.
  // For ordinary allocators that are internally implemented over a pool
  // allocator (kmalloc over kmem_cache, Section 6.2), naming the underlying
  // relationship lets the compiler merge per size class instead of globally.
  bool exposes_size_classes = false;
};

struct AnalysisConfig {
  std::vector<AllocatorInfo> allocators;

  // Whole-program ("entire kernel", Table 9 row 2): every entry point is
  // known, so nothing is incomplete except what flows through inttoptr.
  bool whole_program = false;

  // Functions callable from outside the analyzed code (system call
  // handlers). In whole-program mode their pointer arguments are treated as
  // (checked) userspace pointers rather than incompleteness sources.
  std::vector<std::string> entry_points;

  // Functions treated as "copy" operations with the Section 4.8 heuristic:
  // (dst, src, len) byte copies whose analysis merges only the outgoing
  // edges of the copied objects, not the objects themselves.
  std::vector<std::string> copy_functions = {"memcpy", "memmove",
                                             "copy_from_user",
                                             "copy_to_user"};

  // Integer-to-pointer casts of constants with |value| <= this threshold
  // are treated as null (error-code idiom, Section 4.8).
  int64_t small_int_threshold = 4096;

  // Allocator-infrastructure functions whose results are allocator-internal
  // metadata (cache descriptors): calls to them neither create registered
  // objects nor mark partitions incomplete. The paper notes that most
  // unregistered allocation sites are "objects used internally by the
  // allocators" — these are exactly those.
  std::vector<std::string> allocator_metadata_functions = {
      "kmem_cache_create", "kmem_cache_size", "kmem_cache_destroy"};

  // The default configuration for a Linux-like kernel.
  static AnalysisConfig LinuxLike();
};

}  // namespace sva::analysis

#endif  // SVA_SRC_ANALYSIS_CONFIG_H_
