// Statistical sampling profiler, perf-style, layered on the PR-4 trace
// rings.
//
// Producers (the kernel syscall dispatcher, the SVA-OS trap handlers, both
// execution tiers) publish "what am I doing right now" into a per-CPU
// current-context slot: a small stack of {name id, pid, context kind, mode}
// entries plus a guest call stack of interned function-name ids. A sampler
// thread fires at a configurable rate (default 997 Hz — prime, so it does
// not beat against millisecond-periodic work), reads every configured CPU's
// slot through a seqlock, and records one kProfSample event per CPU into
// profiler-private per-CPU EventRings (same seqlock-slot discipline,
// flight-recorder overwrite, lost accounting as the Tracer rings).
//
// The slot is written only by the CPU that owns it and read only by the
// sampler. A seqlock (odd = mid-update) plus all-atomic fields make the
// race a counted misattribution — a torn read retries a few times, then
// counts the sample as unattributed — never UB. Producers never take a
// lock, never allocate, and never block: the push/pop fast path is a few
// relaxed stores behind a one-relaxed-load gate (prof_enabled()), so it is
// safe inside interrupt context and under any rank of kernel lock (see
// docs/CONCURRENCY.md).
//
// Name interning is the one place a producer may take a lock: the leaf
// name_lock_, held for a map lookup only, never while acquiring anything
// else. Callers intern once per call site (static/local caches) so the
// steady state never touches it.
#ifndef SVA_SRC_TRACE_PROFILER_H_
#define SVA_SRC_TRACE_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/smp/percpu.h"
#include "src/trace/trace.h"

namespace sva::trace {

// What a CPU was doing when the sample hit. Ordering is part of the wire
// format (kProfRead returns the raw value); append only.
enum class ProfContext : uint8_t {
  kUnknown = 0,
  kIdle = 1,
  kGuestThreaded = 2,  // Guest bytecode on the threaded-code tier.
  kGuestInterp = 3,    // Guest bytecode on the tree-walking interpreter.
  kKernelSyscall = 4,  // Inside HandleSyscall.
  kSvaOsOp = 5,        // SVA-OS dispatch / non-NIC interrupt.
  kNetIrq = 6,         // NIC rx interrupt / NAPI poll.
  kNumContexts,
};

const char* ProfContextName(ProfContext c);

// Interns `name` into the global profiler string table, returning a stable
// id. Id 0 is reserved ("unknown"). Takes the leaf name lock; cache the
// result at the call site.
uint32_t InternProfName(std::string_view name);
// The interned string for `id` ("unknown" for ids never handed out).
std::string ProfNameForId(uint32_t id);

namespace internal {
// Count of active profiling sessions; the producer-side gate.
inline std::atomic<uint32_t> g_prof_sessions{0};
}  // namespace internal

// The producer fast path when no profiler is running: one relaxed load.
inline bool prof_enabled() {
  return internal::g_prof_sessions.load(std::memory_order_relaxed) != 0;
}

// One decoded sample.
struct ProfSample {
  uint64_t ts_ns = 0;
  uint32_t stack_id = 0;  // Index into the interned-stack table.
  uint32_t pid = 0;
  uint8_t cpu = 0;
  ProfContext context = ProfContext::kUnknown;
  uint8_t mode = 0;  // KernelMode ordinal of the sampled task (0 = native).
  uint8_t depth = 0;  // Context-stack depth at sample time.
};

class Profiler {
 public:
  struct Options {
    unsigned hz = 997;       // Sampling rate; must be in [1, 100000].
    unsigned num_cpus = 1;   // CPUs [0, num_cpus) are sampled each tick.
    // When set, the sampler calls tick() each period instead of sampling
    // directly — the hook for routing through hw::TimerDevice so the
    // "timer interrupt drives the profiler" wiring is real. The callee is
    // expected to end up in SampleNow().
    std::function<void()> tick;
  };

  struct Stats {
    uint64_t samples = 0;        // Samples recorded (attributed or not).
    uint64_t lost = 0;           // Ring overwrites + store trims.
    uint64_t stacks_truncated = 0;  // Guest stacks deeper than the slot.
    uint64_t unattributed = 0;   // Seqlock never settled; context unknown.
  };

  static Profiler& Get();

  // Starts (or joins) the sampling session. Refcounted: the first Start
  // spawns the sampler thread with `opts`; later Starts just bump the
  // count (their options are ignored). Returns false if opts are invalid.
  bool Start(const Options& opts);
  // Drops one reference; the last Stop joins the sampler. Samples stay
  // readable/exportable after the session ends.
  void Stop();
  bool running() const {
    return internal::g_prof_sessions.load(std::memory_order_relaxed) != 0;
  }

  // --- Producer API (hot path, interrupt-safe) ---------------------------
  // Pushes/pops one context entry on the calling CPU's slot. name_id is an
  // InternProfName result; pid/mode describe the current task.
  void PushContext(ProfContext ctx, uint32_t name_id, uint32_t pid,
                   uint8_t mode);
  void PopContext();
  // Pushes/pops one guest frame (a function entry on either tier).
  void PushGuestFrame(uint32_t name_id, bool threaded, bool safe_mode);
  void PopGuestFrame();

  // --- Sampler ----------------------------------------------------------
  // Takes one sample of every configured CPU right now. Normally called by
  // the sampler thread (directly or via the timer-interrupt tick hook);
  // also callable from tests.
  void SampleNow();

  // --- Consumer API (control plane) -------------------------------------
  // Copies up to `max` samples starting at *cursor (an absolute sample
  // index; clamped forward if the store trimmed past it), advancing
  // *cursor. Returns the number appended.
  size_t ReadSamples(uint64_t* cursor, std::vector<ProfSample>* out,
                     size_t max);
  // The absolute index one past the newest stored sample — the cursor a
  // reader starts from to see only post-subscription samples.
  uint64_t EndCursor() const;

  Stats stats() const;
  // Cumulative sample count per context (index = ProfContext ordinal).
  std::vector<uint64_t> ContextCounts() const;

  // Collapsed-stack ("folded") text: one `frame;frame;... count` line per
  // distinct stack, flamegraph.pl / speedscope compatible. Built from the
  // cumulative per-stack counters, so it survives store trimming.
  std::string FoldedText() const;
  bool WriteFolded(const std::string& path) const;
  // The `;`-joined frame string for an interned stack id.
  std::string StackString(uint32_t stack_id) const;
  // The n highest-count stacks as {stack string, count}, descending.
  std::vector<std::pair<std::string, uint64_t>> TopStacks(size_t n) const;

  // Stops any session and clears samples, stacks, counters, and slots.
  // Control-plane only; requires producer quiescence (same rule as
  // Tracer::Enable).
  void ResetForTest();

 private:
  // The per-CPU current-context slot. Written by the owning CPU, read by
  // the sampler through the seq field.
  struct Slot {
    static constexpr unsigned kMaxContexts = 8;
    static constexpr unsigned kMaxGuestFrames = 32;
    std::atomic<uint32_t> seq{0};  // Odd while the owner is mid-update.
    std::atomic<uint32_t> depth{0};
    // name_id<<32 | (pid & 0xffff)<<16 | ctx<<8 | mode.
    std::atomic<uint64_t> ctx[kMaxContexts] = {};
    std::atomic<uint32_t> gdepth{0};
    // name_id<<2 | threaded<<1 | safe — the tier/mode ride with each frame
    // so popping back across a cross-tier call never leaves a stale flag.
    std::atomic<uint32_t> gframe[kMaxGuestFrames] = {};
    std::atomic<uint64_t> truncated{0};  // Pushes past kMaxGuestFrames.
  };

  Profiler() = default;

  void SamplerMain();
  void SampleCpu(unsigned cpu, uint64_t ts_ns);
  // Interns a frame vector into the stack table; returns its id.
  uint32_t InternStack(const std::vector<uint32_t>& frames);
  void DrainRingsLocked();

  smp::PerCpu<Slot> slots_;
  smp::PerCpu<EventRing> rings_;  // Transport: sampler -> drain, per CPU.

  // Control plane. control_lock_ orders Start/Stop; it is never taken on
  // the producer or sampler fast paths.
  std::mutex control_lock_;
  Options opts_;
  std::thread sampler_;
  std::atomic<bool> sampler_run_{false};

  // Sample store + stack table, under store_lock_ (leaf; the sampler takes
  // it briefly after recording, consumers take it to read).
  mutable smp::SpinLock store_lock_;
  static constexpr size_t kMaxStoredSamples = 1 << 20;
  std::deque<ProfSample> store_;
  uint64_t store_base_ = 0;  // Absolute index of store_.front().
  std::map<std::vector<uint32_t>, uint32_t> stack_ids_;
  std::vector<std::vector<uint32_t>> stacks_;       // id -> frames.
  std::vector<uint64_t> stack_counts_;              // id -> samples.
  uint64_t samples_ = 0;
  uint64_t lost_ = 0;
  uint64_t unattributed_ = 0;
  uint64_t context_counts_[static_cast<size_t>(ProfContext::kNumContexts)] =
      {};
};

// RAII producer helpers. Enter() is separated from the constructor so the
// prof_enabled() check stays a single inlined branch at the call site:
//
//   ProfContextScope prof;
//   if (trace::prof_enabled()) prof.Enter(ctx, name_id, pid, mode);
class ProfContextScope {
 public:
  ProfContextScope() = default;
  void Enter(ProfContext ctx, uint32_t name_id, uint32_t pid, uint8_t mode) {
    Profiler::Get().PushContext(ctx, name_id, pid, mode);
    entered_ = true;
  }
  ~ProfContextScope() {
    if (entered_) {
      Profiler::Get().PopContext();
    }
  }
  ProfContextScope(const ProfContextScope&) = delete;
  ProfContextScope& operator=(const ProfContextScope&) = delete;

 private:
  bool entered_ = false;
};

class ProfGuestFrameScope {
 public:
  ProfGuestFrameScope() = default;
  void Enter(uint32_t name_id, bool threaded, bool safe_mode) {
    Profiler::Get().PushGuestFrame(name_id, threaded, safe_mode);
    entered_ = true;
  }
  ~ProfGuestFrameScope() {
    if (entered_) {
      Profiler::Get().PopGuestFrame();
    }
  }
  ProfGuestFrameScope(const ProfGuestFrameScope&) = delete;
  ProfGuestFrameScope& operator=(const ProfGuestFrameScope&) = delete;

 private:
  bool entered_ = false;
};

}  // namespace sva::trace

#endif  // SVA_SRC_TRACE_PROFILER_H_
