// The metrics registry: fixed-slot log2-bucket latency histograms, sharded
// per CPU so hot-path observations are relaxed increments on the caller's
// own cache lines. Snapshots fold the shards, the same read-side pattern as
// MetaPoolRuntime::stats().
//
// Bucketing: an observation v lands in bucket bit_width(v), so bucket 0 is
// exactly v == 0 and bucket b (b >= 1) covers [2^(b-1), 2^b - 1]. 65 buckets
// cover the full uint64 range with no overflow bucket needed.
#ifndef SVA_SRC_TRACE_METRICS_H_
#define SVA_SRC_TRACE_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "src/smp/percpu.h"

namespace sva::trace {

// Latency histograms with fixed registry slots. kNone is the "no histogram"
// sentinel for span tracepoints that only feed the ring.
enum class HistId : uint8_t {
  kSyscallNs = 0,     // Minikernel syscall, entry to exit.
  kBklWaitNs,         // Big-kernel-lock acquisition wait.
  kPipesWaitNs,       // pipes_lock_ acquisition wait (the leaf-lock axis).
  kVfsWaitNs,         // vfs_lock_ acquisition wait.
  kTasksWaitNs,       // tasks_lock_ acquisition wait.
  kSvaosDispatchNs,   // SVA-OS trap dispatch.
  kIrqNs,             // Interrupt delivery, entry to iret.
  kBoundsCheckNs,     // boundscheck
  kLoadStoreCheckNs,  // lscheck
  kIndirectCheckNs,   // indirect-call check
  kNicTxNs,           // TransmitFrame (frame + DMA kick).
  kNicRxIrqNs,        // Rx interrupt handler (harvest + deliver).
  kEvqWaitNs,         // evq_wait, entry to return (block time included).
  kPageFaultNs,       // Demand-paging fault, TLB miss to mapped + filled.
  kForkNs,            // SysFork, entry to child ready.
  kExecNs,            // SysExecve, entry to reset image.
  kNumHists,
  kNone = 255,
};

inline constexpr size_t kNumHistograms =
    static_cast<size_t>(HistId::kNumHists);

// Prometheus-safe metric name for a histogram slot (e.g. "sva_syscall_ns").
const char* HistName(HistId id);

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, 65> buckets{};  // Indexed by bit_width.
};

class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Observe(uint64_t value) {
    Shard& shard = shards_.Current();
    shard.buckets[std::bit_width(value)].fetch_add(
        1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    shards_.ForEach([&snap](const Shard& shard) {
      snap.count += shard.count.load(std::memory_order_relaxed);
      snap.sum += shard.sum.load(std::memory_order_relaxed);
      for (size_t b = 0; b < kBuckets; ++b) {
        snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
    });
    return snap;
  }

  void Reset() {
    shards_.ForEachMutable([](Shard& shard) {
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum.store(0, std::memory_order_relaxed);
      for (auto& bucket : shard.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    });
  }

 private:
  struct Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  smp::PerCpu<Shard> shards_;
};

class Metrics {
 public:
  static Metrics& Get();

  Histogram& hist(HistId id) {
    return hists_[static_cast<size_t>(id)];
  }
  const Histogram& hist(HistId id) const {
    return hists_[static_cast<size_t>(id)];
  }

  std::vector<HistogramSnapshot> Snapshot() const;
  void Reset();

 private:
  Metrics() = default;
  std::array<Histogram, kNumHistograms> hists_;
};

// Per-tier SVM dispatch accounting: how many function activations and how
// many executed operations each execution tier handled, plus how many
// functions the threaded decoder refused (per-function interpreter
// fallback). The Interpreter accumulates these in plain members on the hot
// path and flushes them here once per Run(); /metrics renders them as
// sva_exec_tier_* counters.
struct TierCounters {
  std::atomic<uint64_t> interp_fns{0};
  std::atomic<uint64_t> interp_ops{0};
  std::atomic<uint64_t> threaded_fns{0};
  std::atomic<uint64_t> threaded_ops{0};
  std::atomic<uint64_t> fallback_fns{0};

  static TierCounters& Get();
};

// One named monotonic counter for the Prometheus rendering below.
struct CounterSample {
  std::string name;   // Prometheus metric name (…_total).
  std::string label;  // Optional label rendering, e.g. {pool="MPk"}.
  uint64_t value = 0;
};

// Renders counters + histograms in the Prometheus text exposition format
// (only non-empty buckets, cumulative, with a closing +Inf).
std::string RenderPrometheus(const std::vector<CounterSample>& counters,
                             const std::vector<HistogramSnapshot>& hists);

}  // namespace sva::trace

#endif  // SVA_SRC_TRACE_METRICS_H_
