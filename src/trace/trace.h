// Low-overhead event tracing for the SVA reproduction, ftrace/LTTng style.
//
// Static tracepoints compiled into the hot layers (metapool checks, SVA-OS
// ops, kernel syscalls, NIC datapath) cost one relaxed atomic load and a
// predictable branch when tracing is off. When enabled, events go into
// per-CPU lock-free ring buffers with flight-recorder (overwrite) semantics:
// producers never block and never wait for the reader; old events are
// overwritten and counted as lost.
//
// Slot protocol (seqlock-per-slot, multi-producer safe): a producer claims a
// global position with a relaxed fetch_add, marks the slot busy
// (seq = 2*pos+1), publishes the payload words, then marks it done
// (seq = 2*pos+2, release). The drainer accepts a slot only if it reads the
// done value for the expected position before AND after copying the payload;
// anything else (overwritten, mid-write) counts as lost. Payload words are
// themselves atomics so concurrent overwrite is a counted race, not UB.
//
// Enabling, disabling, and draining are control-plane operations: callers
// must not resize rings while producers are mid-tracepoint (the same
// quiescence rule MetaPoolRuntime::stats() documents).
#ifndef SVA_SRC_TRACE_TRACE_H_
#define SVA_SRC_TRACE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/smp/percpu.h"
#include "src/trace/metrics.h"

namespace sva::trace {

// Every static tracepoint in the tree. Names (EventName) follow the paper's
// intrinsic spelling where one exists (pchk.reg.obj, sva.save.integer, ...).
enum class EventId : uint16_t {
  // Metapool runtime.
  kPchkRegObj = 0,     // pchk.reg.obj: a0 = start, a1 = length
  kPchkDropObj,        // pchk.drop.obj: a0 = start
  kBoundsCheck,        // a0 = src, a1 = derived
  kLoadStoreCheck,     // a0 = address
  kIndirectCallCheck,  // a0 = target
  kSplayRotation,      // a0 = rotations this lookup
  kCacheHit,           // a0 = address
  kCacheMiss,          // a0 = address
  // SVA-OS.
  kInterrupt,       // a0 = vector
  kKernelEntry,     // interrupt/syscall entry into kernel context
  kKernelExit,      // sva.iret
  kSvaosDispatch,   // a0 = syscall number (SVA-OS trap dispatch)
  kSaveInteger,     // sva.save.integer: a0 = buffer
  kLoadInteger,     // sva.load.integer: a0 = buffer
  kMmuOp,           // a0 = vaddr, a1 = op (0=map 1=unmap 2=loadpt 3=reserve
                    //                      4=protect 5=declare-frame-type)
  kIoOp,            // a0 = port/addr, a1 = 0 read / 1 write
  kTlbShootdown,    // a0 = asid, a1 = vaddr (0 for a full-asid flush)
  // Minikernel.
  kSyscall,    // a0 = syscall number
  kLockWait,   // a0 = lock id (kLockBkl / kLockPipes / kLockVfs / kLockTasks)
  kPageFault,  // demand-paging fault span: a0 = vaddr, a1 = 1 if write
  kFork,       // fork span: a0 = parent pid
  kExec,       // execve span: a0 = pid
  // NIC + net stack.
  kNicRxIrq,      // rx interrupt handler span
  kNicTx,         // a0 = frame length
  kNicRxDeliver,  // a0 = frame length
  kNicDma,        // a0 = ring slot, a1 = 0 rx / 1 tx
  kNapiPoll,      // a0 = frames harvested this pass, a1 = budget
  // Event queue + connection lifecycle.
  kEvqWait,     // evq_wait span: a0 = evq fd, a1 = events returned
  kEvqWakeup,   // a0 = socket id that became ready
  kConnAccept,  // a0 = accepted fd, a1 = listener fd
  kConnClose,   // a0 = fd
  kConnForked,  // a0 = child pid, a1 = parent pid (per-connection forks)
  // Sampling profiler.
  kProfSample,  // a0 = pid<<32 | depth<<16 | mode<<8 | context, a1 = stack id
  kNumIds,
};

const char* EventName(EventId id);

// Lock ids carried in kLockWait events.
inline constexpr uint64_t kLockBkl = 0;
inline constexpr uint64_t kLockPipes = 1;
inline constexpr uint64_t kLockVfs = 2;
inline constexpr uint64_t kLockTasks = 3;

enum class Phase : uint8_t {
  kInstant = 0,  // Point event (Chrome "i").
  kSpan = 1,     // Duration event (Chrome "X"), dur_ns valid.
};

// One decoded trace event. The wire form is 4 uint64 words per ring slot:
// w0 = ts_ns, w1 = dur_ns | id<<32 | phase<<48 | cpu<<56, w2 = a0, w3 = a1.
struct Event {
  uint64_t ts_ns = 0;
  uint32_t dur_ns = 0;
  EventId id = EventId::kNumIds;
  Phase phase = Phase::kInstant;
  uint8_t cpu = 0;
  uint64_t a0 = 0;
  uint64_t a1 = 0;
};

// Tracing mode bits: metrics (histograms) and ring capture are independent.
inline constexpr uint32_t kModeOff = 0;
inline constexpr uint32_t kModeMetrics = 1u << 0;
inline constexpr uint32_t kModeRing = 1u << 1;
inline constexpr uint32_t kModeFull = kModeMetrics | kModeRing;

namespace internal {
inline std::atomic<uint32_t> g_mode{kModeOff};
}  // namespace internal

// The tracepoint fast path: one relaxed load, branch on zero.
inline uint32_t mode() {
  return internal::g_mode.load(std::memory_order_relaxed);
}
inline bool enabled() { return mode() != kModeOff; }

// Monotonic nanoseconds (steady clock); the timestamp domain of all events.
uint64_t NowNs();

// One per-CPU ring. Capacity is a power of two; the writer index is a
// monotonically increasing position so lost counts survive wraps.
class EventRing {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  // (Re)initializes the ring. Requires quiescence (no concurrent Record).
  void Reset(size_t capacity_pow2);

  void Record(const Event& e);

  // Appends every event recorded since the last drain to `out`, oldest
  // first; returns how many were lost (overwritten or torn). Single drainer
  // at a time; safe against concurrent producers.
  uint64_t Drain(std::vector<Event>* out);

  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> w[4] = {};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;
  std::atomic<uint64_t> next_{0};
  uint64_t drained_ = 0;  // Drainer-private cursor.
  uint64_t lost_ = 0;     // Cumulative, maintained by the drainer.
};

// The process-wide tracer: per-CPU rings behind the mode gate.
class Tracer {
 public:
  static Tracer& Get();

  // Allocates/rewinds the rings and opens the gate. Control-plane only:
  // producers must be quiescent.
  void Enable(uint32_t mode_bits, size_t ring_capacity = 0);
  // Closes the gate; recorded events stay drainable.
  void Disable();
  // Disable + drop all recorded events and zero the metrics registry.
  void Reset();

  // Records into the calling CPU's ring. Callers check mode() first.
  void Record(EventId id, Phase phase, uint64_t ts_ns, uint64_t dur_ns,
              uint64_t a0, uint64_t a1);

  // Drains every CPU ring; events ordered by (cpu, ts). One drainer at a
  // time (internally locked); producers may keep recording.
  std::vector<Event> Drain();

  uint64_t events_recorded() const;
  uint64_t events_lost() const { return lost_.load(std::memory_order_relaxed); }

 private:
  Tracer() = default;

  smp::PerCpu<EventRing> rings_;
  smp::SpinLock drain_lock_;
  std::atomic<uint64_t> lost_{0};
  size_t capacity_ = 0;
};

// Emits an instant event if ring capture is on.
inline void Emit(EventId id, uint64_t a0 = 0, uint64_t a1 = 0) {
  if ((mode() & kModeRing) == 0) {
    return;
  }
  Tracer::Get().Record(id, Phase::kInstant, NowNs(), 0, a0, a1);
}

// RAII span tracepoint: times its scope, feeding the ring (as a Chrome "X"
// duration event) and/or a latency histogram, per the active mode.
class Span {
 public:
  explicit Span(EventId id, HistId hist = HistId::kNone, uint64_t a0 = 0,
                uint64_t a1 = 0)
      : mode_(mode()) {
    if (mode_ != kModeOff) {
      id_ = id;
      hist_ = hist;
      a0_ = a0;
      a1_ = a1;
      t0_ = NowNs();
    }
  }
  ~Span() {
    if (mode_ == kModeOff) {
      return;
    }
    uint64_t dur = NowNs() - t0_;
    if ((mode_ & kModeMetrics) != 0 && hist_ != HistId::kNone) {
      Metrics::Get().hist(hist_).Observe(dur);
    }
    if ((mode_ & kModeRing) != 0) {
      Tracer::Get().Record(id_, Phase::kSpan, t0_, dur, a0_, a1_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_args(uint64_t a0, uint64_t a1) {
    a0_ = a0;
    a1_ = a1;
  }

 private:
  uint32_t mode_;
  EventId id_ = EventId::kNumIds;
  HistId hist_ = HistId::kNone;
  uint64_t a0_ = 0;
  uint64_t a1_ = 0;
  uint64_t t0_ = 0;
};

// Lock guard that records how long acquisition blocked (the BKL-vs-leaf-lock
// wait axis): a kLockWait span plus the lock's wait histogram.
template <typename Lock>
class TimedLockGuard {
 public:
  TimedLockGuard(Lock& lock, HistId hist, uint64_t lock_id) : lock_(lock) {
    uint32_t m = mode();
    if (m == kModeOff) {
      lock_.lock();
      return;
    }
    uint64_t t0 = NowNs();
    lock_.lock();
    uint64_t dur = NowNs() - t0;
    if ((m & kModeMetrics) != 0) {
      Metrics::Get().hist(hist).Observe(dur);
    }
    if ((m & kModeRing) != 0) {
      Tracer::Get().Record(EventId::kLockWait, Phase::kSpan, t0, dur, lock_id,
                           0);
    }
  }
  ~TimedLockGuard() { lock_.unlock(); }
  TimedLockGuard(const TimedLockGuard&) = delete;
  TimedLockGuard& operator=(const TimedLockGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace sva::trace

#endif  // SVA_SRC_TRACE_TRACE_H_
