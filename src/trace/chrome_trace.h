// Chrome trace-event JSON export: the drained event stream rendered as
// "X" (duration) and "i" (instant) events on per-CPU tracks, loadable in
// Perfetto or chrome://tracing.
#ifndef SVA_SRC_TRACE_CHROME_TRACE_H_
#define SVA_SRC_TRACE_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/trace/trace.h"

namespace sva::trace {

// Renders the events as a Chrome trace JSON document. Events are sorted by
// (cpu, ts) so each tid track is timestamp-monotonic in file order; ts/dur
// are microseconds (Chrome's unit), rebased to the earliest event.
std::string ChromeTraceJson(std::vector<Event> events);

// ChromeTraceJson written to `path`.
Status WriteChromeTrace(const std::string& path, std::vector<Event> events);

}  // namespace sva::trace

#endif  // SVA_SRC_TRACE_CHROME_TRACE_H_
