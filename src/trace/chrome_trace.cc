#include "src/trace/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace sva::trace {

std::string ChromeTraceJson(std::vector<Event> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.cpu != b.cpu) {
                       return a.cpu < b.cpu;
                     }
                     return a.ts_ns < b.ts_ns;
                   });
  uint64_t t0 = 0;
  for (const Event& e : events) {
    if (t0 == 0 || e.ts_ns < t0) {
      t0 = e.ts_ns;
    }
  }

  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  // Track-name metadata first (ph "M" carries no timestamp).
  uint8_t last_cpu = 0xff;
  for (const Event& e : events) {
    if (e.cpu != last_cpu) {
      last_cpu = e.cpu;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                    "\"name\":\"thread_name\",\"args\":{\"name\":\"cpu%u\"}}",
                    first ? "" : ",", e.cpu, e.cpu);
      out += buf;
      first = false;
    }
  }
  for (const Event& e : events) {
    double ts_us = static_cast<double>(e.ts_ns - t0) / 1000.0;
    if (e.phase == Phase::kSpan) {
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"sva\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"a0\":%" PRIu64
          ",\"a1\":%" PRIu64 "}}",
          first ? "" : ",", EventName(e.id),
          ts_us, static_cast<double>(e.dur_ns) / 1000.0, e.cpu, e.a0, e.a1);
    } else {
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"name\":\"%s\",\"cat\":\"sva\",\"ph\":\"i\",\"s\":\"t\","
          "\"ts\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"a0\":%" PRIu64
          ",\"a1\":%" PRIu64 "}}",
          first ? "" : ",", EventName(e.id), ts_us, e.cpu, e.a0, e.a1);
    }
    out += buf;
    first = false;
  }
  out += "]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path, std::vector<Event> events) {
  std::string json = ChromeTraceJson(std::move(events));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Internal("cannot open trace output: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Internal("short write to trace output: " + path);
  }
  return OkStatus();
}

}  // namespace sva::trace
