// Continuous drain consumer: a background thread that empties the per-CPU
// event rings on a short period so long runs don't overwrite the flight
// recorder. The rings hold 8192 events per CPU; a c10k run emits millions
// (conn-accept, evq-wait, napi-poll, ...), so without a live consumer the
// final Drain() sees only the last few milliseconds and the Chrome trace is
// a stub. With one, the accumulated stream covers the whole run and stays
// Perfetto-readable (ChromeTraceJson re-sorts by (cpu, ts), so interleaved
// drain batches are fine).
#ifndef SVA_SRC_TRACE_DRAINER_H_
#define SVA_SRC_TRACE_DRAINER_H_

#include <atomic>
#include <thread>
#include <vector>

#include "src/trace/trace.h"

namespace sva::trace {

// Process-wide drainer accounting, surfaced on /metrics as
// sva_trace_{drained_events,drainer_backlog}_total. Written by whichever
// ContinuousDrainer is live (the benches run at most one at a time, but the
// counters are atomics so a second instance is merely additive, not racy).
struct DrainerStats {
  std::atomic<uint64_t> drained_events{0};  // Cumulative events consumed.
  std::atomic<uint64_t> backlog{0};         // Events held awaiting export.
  static DrainerStats& Get() {
    static DrainerStats stats;
    return stats;
  }
};

class ContinuousDrainer {
 public:
  // interval_us: sleep between drains. The default (2ms) keeps up with the
  // benches' worst-case event rates at ~500 drains/second of overhead.
  explicit ContinuousDrainer(uint64_t interval_us = 2000)
      : interval_us_(interval_us) {}
  ~ContinuousDrainer() { (void)Stop(); }

  ContinuousDrainer(const ContinuousDrainer&) = delete;
  ContinuousDrainer& operator=(const ContinuousDrainer&) = delete;

  // Starts the consumer thread. Tracing should already be enabled (the
  // drainer consumes whatever mode produces; it never flips the gate).
  void Start();

  // Stops the thread, performs a final drain, and returns every event
  // accumulated since Start() (ordered by drain batch; sort or hand to
  // ChromeTraceJson, which sorts). Idempotent: a second Stop() returns an
  // empty vector.
  std::vector<Event> Stop();

  // Events accumulated so far (approximate while running).
  size_t events_seen() const {
    return events_seen_.load(std::memory_order_relaxed);
  }

 private:
  void Run();

  uint64_t interval_us_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> events_seen_{0};
  std::vector<Event> events_;  // Touched only by the consumer thread + Stop.
};

}  // namespace sva::trace

#endif  // SVA_SRC_TRACE_DRAINER_H_
