#include "src/trace/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace sva::trace {

const char* HistName(HistId id) {
  switch (id) {
    case HistId::kSyscallNs: return "sva_syscall_ns";
    case HistId::kBklWaitNs: return "sva_bkl_wait_ns";
    case HistId::kPipesWaitNs: return "sva_pipes_lock_wait_ns";
    case HistId::kVfsWaitNs: return "sva_vfs_lock_wait_ns";
    case HistId::kTasksWaitNs: return "sva_tasks_lock_wait_ns";
    case HistId::kSvaosDispatchNs: return "sva_svaos_dispatch_ns";
    case HistId::kIrqNs: return "sva_irq_ns";
    case HistId::kBoundsCheckNs: return "sva_boundscheck_ns";
    case HistId::kLoadStoreCheckNs: return "sva_lscheck_ns";
    case HistId::kIndirectCheckNs: return "sva_indirect_check_ns";
    case HistId::kNicTxNs: return "sva_nic_tx_ns";
    case HistId::kNicRxIrqNs: return "sva_nic_rx_irq_ns";
    case HistId::kEvqWaitNs: return "sva_evq_wait_ns";
    case HistId::kPageFaultNs: return "sva_page_fault_ns";
    case HistId::kForkNs: return "sva_fork_ns";
    case HistId::kExecNs: return "sva_exec_ns";
    case HistId::kNumHists:
    case HistId::kNone: break;
  }
  return "sva_unknown_ns";
}

Metrics& Metrics::Get() {
  static Metrics metrics;
  return metrics;
}

TierCounters& TierCounters::Get() {
  static TierCounters counters;
  return counters;
}

std::vector<HistogramSnapshot> Metrics::Snapshot() const {
  std::vector<HistogramSnapshot> out;
  out.reserve(kNumHistograms);
  for (size_t i = 0; i < kNumHistograms; ++i) {
    HistogramSnapshot snap = hists_[i].Snapshot();
    snap.name = HistName(static_cast<HistId>(i));
    out.push_back(std::move(snap));
  }
  return out;
}

void Metrics::Reset() {
  for (Histogram& h : hists_) {
    h.Reset();
  }
}

std::string RenderPrometheus(const std::vector<CounterSample>& counters,
                             const std::vector<HistogramSnapshot>& hists) {
  std::string out;
  out.reserve(4096);
  char line[256];
  const char* last_name = "";
  for (const CounterSample& c : counters) {
    if (c.name != last_name) {
      std::snprintf(line, sizeof(line), "# TYPE %s counter\n",
                    c.name.c_str());
      out += line;
      last_name = c.name.c_str();
    }
    std::snprintf(line, sizeof(line), "%s%s %" PRIu64 "\n", c.name.c_str(),
                  c.label.c_str(), c.value);
    out += line;
  }
  for (const HistogramSnapshot& h : hists) {
    std::snprintf(line, sizeof(line), "# TYPE %s histogram\n",
                  h.name.c_str());
    out += line;
    // Cumulative buckets, non-empty ones only (plus the mandatory +Inf).
    // Bucket b holds values of bit_width b, so its upper edge is 2^b - 1.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) {
        continue;
      }
      cumulative += h.buckets[b];
      if (b >= 64) {
        continue;  // Top bucket's edge is only representable as +Inf.
      }
      uint64_t le = (b == 0) ? 0 : ((1ull << b) - 1);
      std::snprintf(line, sizeof(line),
                    "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                    h.name.c_str(), le, cumulative);
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  h.name.c_str(), h.count);
    out += line;
    std::snprintf(line, sizeof(line), "%s_sum %" PRIu64 "\n", h.name.c_str(),
                  h.sum);
    out += line;
    std::snprintf(line, sizeof(line), "%s_count %" PRIu64 "\n",
                  h.name.c_str(), h.count);
    out += line;
  }
  return out;
}

}  // namespace sva::trace
