#include "src/trace/trace.h"

#include <cassert>
#include <chrono>

namespace sva::trace {
namespace {

// Packs/unpacks event word 1: dur | id<<32 | phase<<48 | cpu<<56.
uint64_t PackWord1(uint32_t dur_ns, EventId id, Phase phase, uint8_t cpu) {
  return static_cast<uint64_t>(dur_ns) |
         static_cast<uint64_t>(static_cast<uint16_t>(id)) << 32 |
         static_cast<uint64_t>(static_cast<uint8_t>(phase)) << 48 |
         static_cast<uint64_t>(cpu) << 56;
}

void UnpackWord1(uint64_t w1, Event* e) {
  e->dur_ns = static_cast<uint32_t>(w1);
  e->id = static_cast<EventId>(static_cast<uint16_t>(w1 >> 32));
  e->phase = static_cast<Phase>(static_cast<uint8_t>(w1 >> 48));
  e->cpu = static_cast<uint8_t>(w1 >> 56);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

const char* EventName(EventId id) {
  switch (id) {
    case EventId::kPchkRegObj: return "pchk.reg.obj";
    case EventId::kPchkDropObj: return "pchk.drop.obj";
    case EventId::kBoundsCheck: return "boundscheck";
    case EventId::kLoadStoreCheck: return "lscheck";
    case EventId::kIndirectCallCheck: return "indirect-call-check";
    case EventId::kSplayRotation: return "splay-rotation";
    case EventId::kCacheHit: return "pool-cache-hit";
    case EventId::kCacheMiss: return "pool-cache-miss";
    case EventId::kInterrupt: return "interrupt";
    case EventId::kKernelEntry: return "kernel-entry";
    case EventId::kKernelExit: return "sva.iret";
    case EventId::kSvaosDispatch: return "svaos-dispatch";
    case EventId::kSaveInteger: return "sva.save.integer";
    case EventId::kLoadInteger: return "sva.load.integer";
    case EventId::kMmuOp: return "mmu-op";
    case EventId::kIoOp: return "io-op";
    case EventId::kTlbShootdown: return "tlb-shootdown";
    case EventId::kSyscall: return "syscall";
    case EventId::kLockWait: return "lock-wait";
    case EventId::kPageFault: return "page-fault";
    case EventId::kFork: return "fork";
    case EventId::kExec: return "execve";
    case EventId::kNicRxIrq: return "nic-rx-irq";
    case EventId::kNicTx: return "nic-tx";
    case EventId::kNicRxDeliver: return "nic-rx-deliver";
    case EventId::kNicDma: return "nic-dma";
    case EventId::kNapiPoll: return "napi-poll";
    case EventId::kEvqWait: return "evq-wait";
    case EventId::kEvqWakeup: return "evq-wakeup";
    case EventId::kConnAccept: return "conn-accept";
    case EventId::kConnClose: return "conn-close";
    case EventId::kConnForked: return "conn-forked";
    case EventId::kProfSample: return "prof.sample";
    case EventId::kNumIds: break;
  }
  return "unknown";
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void EventRing::Reset(size_t capacity_pow2) {
  assert((capacity_pow2 & (capacity_pow2 - 1)) == 0 && capacity_pow2 != 0);
  if (capacity_ != capacity_pow2) {
    slots_ = std::make_unique<Slot[]>(capacity_pow2);
    capacity_ = capacity_pow2;
  } else {
    for (size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(0, std::memory_order_relaxed);
    }
  }
  next_.store(0, std::memory_order_relaxed);
  drained_ = 0;
  lost_ = 0;
}

void EventRing::Record(const Event& e) {
  if (capacity_ == 0) {
    return;
  }
  uint64_t pos = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[pos & (capacity_ - 1)];
  // Busy marker first, then the payload, then the done marker with release
  // so the drainer's acquire load of seq orders the payload reads.
  slot.seq.store(2 * pos + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.w[0].store(e.ts_ns, std::memory_order_relaxed);
  slot.w[1].store(PackWord1(e.dur_ns, e.id, e.phase, e.cpu),
                  std::memory_order_relaxed);
  slot.w[2].store(e.a0, std::memory_order_relaxed);
  slot.w[3].store(e.a1, std::memory_order_relaxed);
  slot.seq.store(2 * pos + 2, std::memory_order_release);
}

uint64_t EventRing::Drain(std::vector<Event>* out) {
  if (capacity_ == 0) {
    return 0;
  }
  uint64_t hi = next_.load(std::memory_order_acquire);
  uint64_t lo = drained_;
  uint64_t lost = 0;
  // Positions that wrapped out of the window before we got here are gone.
  if (hi > capacity_ && hi - capacity_ > lo) {
    lost += hi - capacity_ - lo;
    lo = hi - capacity_;
  }
  for (uint64_t pos = lo; pos < hi; ++pos) {
    Slot& slot = slots_[pos & (capacity_ - 1)];
    uint64_t want = 2 * pos + 2;
    uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != want) {
      ++lost;  // Overwritten by a wrap, or the producer is still writing.
      continue;
    }
    Event e;
    e.ts_ns = slot.w[0].load(std::memory_order_relaxed);
    uint64_t w1 = slot.w[1].load(std::memory_order_relaxed);
    e.a0 = slot.w[2].load(std::memory_order_relaxed);
    e.a1 = slot.w[3].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) {
      ++lost;  // Torn: a wrapping producer got in during the copy.
      continue;
    }
    UnpackWord1(w1, &e);
    out->push_back(e);
  }
  drained_ = hi;
  lost_ += lost;
  return lost;
}

Tracer& Tracer::Get() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Enable(uint32_t mode_bits, size_t ring_capacity) {
  size_t capacity = ring_capacity == 0 ? EventRing::kDefaultCapacity
                                       : RoundUpPow2(ring_capacity);
  rings_.ForEachMutable(
      [capacity](EventRing& ring) { ring.Reset(capacity); });
  capacity_ = capacity;
  lost_.store(0, std::memory_order_relaxed);
  internal::g_mode.store(mode_bits, std::memory_order_release);
}

void Tracer::Disable() {
  internal::g_mode.store(kModeOff, std::memory_order_release);
}

void Tracer::Reset() {
  Disable();
  rings_.ForEachMutable([this](EventRing& ring) {
    if (ring.capacity() != 0) {
      ring.Reset(ring.capacity());
    }
  });
  lost_.store(0, std::memory_order_relaxed);
  Metrics::Get().Reset();
}

void Tracer::Record(EventId id, Phase phase, uint64_t ts_ns, uint64_t dur_ns,
                    uint64_t a0, uint64_t a1) {
  Event e;
  e.ts_ns = ts_ns;
  // Spans longer than ~4.29s saturate the 32-bit duration field.
  e.dur_ns = dur_ns > UINT32_MAX ? UINT32_MAX
                                 : static_cast<uint32_t>(dur_ns);
  e.id = id;
  e.phase = phase;
  e.cpu = static_cast<uint8_t>(smp::current_cpu_id());
  e.a0 = a0;
  e.a1 = a1;
  rings_.ForCpu(e.cpu).Record(e);
}

std::vector<Event> Tracer::Drain() {
  std::lock_guard<smp::SpinLock> guard(drain_lock_);
  std::vector<Event> out;
  uint64_t lost = 0;
  // ForEachMutable walks CPUs in id order and each ring drains oldest-first,
  // so `out` is ordered by (cpu, ts) — one monotonic track per CPU.
  rings_.ForEachMutable(
      [&out, &lost](EventRing& ring) { lost += ring.Drain(&out); });
  lost_.fetch_add(lost, std::memory_order_relaxed);
  return out;
}

uint64_t Tracer::events_recorded() const {
  uint64_t total = 0;
  rings_.ForEach(
      [&total](const EventRing& ring) { total += ring.recorded(); });
  return total;
}

}  // namespace sva::trace
