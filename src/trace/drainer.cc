#include "src/trace/drainer.h"

#include <chrono>

namespace sva::trace {

void ContinuousDrainer::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  thread_ = std::thread([this] { Run(); });
}

std::vector<Event> ContinuousDrainer::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel) &&
      thread_.joinable()) {
    thread_.join();
  }
  // Final sweep: whatever landed after the thread's last pass.
  std::vector<Event> tail = Tracer::Get().Drain();
  events_.insert(events_.end(), tail.begin(), tail.end());
  events_seen_.store(events_.size(), std::memory_order_relaxed);
  DrainerStats::Get().drained_events.fetch_add(tail.size(),
                                               std::memory_order_relaxed);
  DrainerStats::Get().backlog.store(0, std::memory_order_relaxed);
  std::vector<Event> out;
  out.swap(events_);
  return out;
}

void ContinuousDrainer::Run() {
  while (running_.load(std::memory_order_acquire)) {
    std::vector<Event> batch = Tracer::Get().Drain();
    events_.insert(events_.end(), batch.begin(), batch.end());
    events_seen_.store(events_.size(), std::memory_order_relaxed);
    DrainerStats::Get().drained_events.fetch_add(batch.size(),
                                                 std::memory_order_relaxed);
    DrainerStats::Get().backlog.store(events_.size(),
                                      std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(interval_us_));
  }
}

}  // namespace sva::trace
