#include "src/trace/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>

namespace sva::trace {
namespace {

// The global name table. Producers intern once per call site and cache the
// id, so the lock is cold in steady state. Leaf lock: never held while
// acquiring anything else.
struct NameTable {
  smp::SpinLock lock;
  std::vector<std::string> names{"unknown"};
  std::unordered_map<std::string, uint32_t> ids{{"unknown", 0}};
};

NameTable& Names() {
  static NameTable* table = new NameTable();  // Leaked: outlives everything.
  return *table;
}

constexpr size_t kProfRingCapacity = 4096;

// Packs the sample's a0 word: pid<<32 | depth<<16 | mode<<8 | context.
uint64_t PackSampleA0(uint32_t pid, uint8_t depth, uint8_t mode,
                      ProfContext ctx) {
  return static_cast<uint64_t>(pid) << 32 |
         static_cast<uint64_t>(depth) << 16 |
         static_cast<uint64_t>(mode) << 8 |
         static_cast<uint64_t>(ctx);
}

}  // namespace

const char* ProfContextName(ProfContext c) {
  switch (c) {
    case ProfContext::kUnknown: return "unknown";
    case ProfContext::kIdle: return "idle";
    case ProfContext::kGuestThreaded: return "guest-threaded";
    case ProfContext::kGuestInterp: return "guest-interp";
    case ProfContext::kKernelSyscall: return "kernel-syscall";
    case ProfContext::kSvaOsOp: return "svaos-op";
    case ProfContext::kNetIrq: return "net-irq";
    case ProfContext::kNumContexts: break;
  }
  return "unknown";
}

uint32_t InternProfName(std::string_view name) {
  NameTable& table = Names();
  std::lock_guard<smp::SpinLock> guard(table.lock);
  std::string key(name);
  auto it = table.ids.find(key);
  if (it != table.ids.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(table.names.size());
  table.names.push_back(key);
  table.ids.emplace(std::move(key), id);
  return id;
}

std::string ProfNameForId(uint32_t id) {
  NameTable& table = Names();
  std::lock_guard<smp::SpinLock> guard(table.lock);
  if (id >= table.names.size()) {
    return "unknown";
  }
  return table.names[id];
}

Profiler& Profiler::Get() {
  static Profiler* profiler = new Profiler();  // Leaked: see NameTable.
  return *profiler;
}

bool Profiler::Start(const Options& opts) {
  std::lock_guard<std::mutex> guard(control_lock_);
  uint32_t sessions =
      internal::g_prof_sessions.load(std::memory_order_relaxed);
  if (sessions != 0) {
    // Joining an existing session: the first caller's rate wins.
    internal::g_prof_sessions.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (opts.hz == 0 || opts.hz > 100000) {
    return false;
  }
  opts_ = opts;
  if (opts_.num_cpus == 0) {
    opts_.num_cpus = 1;
  }
  if (opts_.num_cpus > smp::kMaxCpus) {
    opts_.num_cpus = smp::kMaxCpus;
  }
  rings_.ForEachMutable(
      [](EventRing& ring) { ring.Reset(kProfRingCapacity); });
  sampler_run_.store(true, std::memory_order_relaxed);
  sampler_ = std::thread([this] { SamplerMain(); });
  // Open the producer gate only once the sampler exists, so every push has
  // a chance of being observed.
  internal::g_prof_sessions.store(1, std::memory_order_release);
  return true;
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> guard(control_lock_);
  uint32_t sessions =
      internal::g_prof_sessions.load(std::memory_order_relaxed);
  if (sessions == 0) {
    return;
  }
  if (sessions > 1) {
    internal::g_prof_sessions.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  internal::g_prof_sessions.store(0, std::memory_order_release);
  sampler_run_.store(false, std::memory_order_relaxed);
  if (sampler_.joinable()) {
    sampler_.join();
  }
  // Final drain so nothing recorded by the last tick is stranded in a ring.
  std::lock_guard<smp::SpinLock> store_guard(store_lock_);
  DrainRingsLocked();
}

void Profiler::SamplerMain() {
  const auto period =
      std::chrono::nanoseconds(1000000000ull / opts_.hz);
  auto next = std::chrono::steady_clock::now() + period;
  while (sampler_run_.load(std::memory_order_relaxed)) {
    if (opts_.tick) {
      opts_.tick();  // Normally hw::TimerDevice::FireInterrupt -> SampleNow.
    } else {
      SampleNow();
    }
    std::this_thread::sleep_until(next);
    next += period;
    auto now = std::chrono::steady_clock::now();
    if (next < now) {
      next = now + period;  // Fell behind (suspend, load); don't burst.
    }
  }
}

void Profiler::PushContext(ProfContext ctx, uint32_t name_id, uint32_t pid,
                           uint8_t mode) {
  Slot& slot = slots_.Current();
  slot.seq.fetch_add(1, std::memory_order_relaxed);  // Odd: mid-update.
  std::atomic_thread_fence(std::memory_order_release);
  uint32_t d = slot.depth.load(std::memory_order_relaxed);
  if (d < Slot::kMaxContexts) {
    uint64_t word = static_cast<uint64_t>(name_id) << 32 |
                    static_cast<uint64_t>(pid & 0xffff) << 16 |
                    static_cast<uint64_t>(ctx) << 8 |
                    static_cast<uint64_t>(mode);
    slot.ctx[d].store(word, std::memory_order_relaxed);
  }
  slot.depth.store(d + 1, std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_release);  // Even: settled.
}

void Profiler::PopContext() {
  Slot& slot = slots_.Current();
  slot.seq.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  uint32_t d = slot.depth.load(std::memory_order_relaxed);
  if (d > 0) {
    slot.depth.store(d - 1, std::memory_order_relaxed);
  }
  slot.seq.fetch_add(1, std::memory_order_release);
}

void Profiler::PushGuestFrame(uint32_t name_id, bool threaded,
                              bool safe_mode) {
  Slot& slot = slots_.Current();
  slot.seq.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  uint32_t d = slot.gdepth.load(std::memory_order_relaxed);
  if (d < Slot::kMaxGuestFrames) {
    uint32_t word = name_id << 2 | (threaded ? 2u : 0u) |
                    (safe_mode ? 1u : 0u);
    slot.gframe[d].store(word, std::memory_order_relaxed);
  } else {
    slot.truncated.fetch_add(1, std::memory_order_relaxed);
  }
  slot.gdepth.store(d + 1, std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_release);
}

void Profiler::PopGuestFrame() {
  Slot& slot = slots_.Current();
  slot.seq.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  uint32_t d = slot.gdepth.load(std::memory_order_relaxed);
  if (d > 0) {
    slot.gdepth.store(d - 1, std::memory_order_relaxed);
  }
  slot.seq.fetch_add(1, std::memory_order_release);
}

void Profiler::SampleNow() {
  if (rings_.ForCpu(0).capacity() == 0) {
    // Direct test callers without a Start(): give the transport rings their
    // capacity (single-caller context by the control-plane rule).
    rings_.ForEachMutable(
        [](EventRing& ring) { ring.Reset(kProfRingCapacity); });
  }
  unsigned cpus = opts_.num_cpus == 0 ? 1 : opts_.num_cpus;
  uint64_t ts = NowNs();
  for (unsigned cpu = 0; cpu < cpus; ++cpu) {
    SampleCpu(cpu, ts);
  }
  std::lock_guard<smp::SpinLock> guard(store_lock_);
  DrainRingsLocked();
}

void Profiler::SampleCpu(unsigned cpu, uint64_t ts_ns) {
  const Slot& slot = slots_.ForCpu(cpu);
  uint32_t depth = 0;
  uint32_t gdepth = 0;
  uint64_t ctx_words[Slot::kMaxContexts];
  uint32_t gframe_words[Slot::kMaxGuestFrames];
  bool settled = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    uint32_t s1 = slot.seq.load(std::memory_order_acquire);
    if ((s1 & 1u) != 0) {
      continue;  // Owner mid-update; retry.
    }
    depth = slot.depth.load(std::memory_order_relaxed);
    gdepth = slot.gdepth.load(std::memory_order_relaxed);
    uint32_t nctx = std::min(depth, Slot::kMaxContexts);
    for (uint32_t i = 0; i < nctx; ++i) {
      ctx_words[i] = slot.ctx[i].load(std::memory_order_relaxed);
    }
    uint32_t ngf = std::min(gdepth, Slot::kMaxGuestFrames);
    for (uint32_t i = 0; i < ngf; ++i) {
      gframe_words[i] = slot.gframe[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) == s1) {
      settled = true;
      break;
    }
  }
  ProfContext ctx = ProfContext::kUnknown;
  uint32_t pid = 0;
  uint8_t mode = 0;
  std::vector<uint32_t> frames;
  if (settled) {
    uint32_t nctx = std::min(depth, Slot::kMaxContexts);
    uint32_t ngf = std::min(gdepth, Slot::kMaxGuestFrames);
    if (depth > 0) {
      uint64_t top = ctx_words[nctx - 1];
      pid = static_cast<uint32_t>((top >> 16) & 0xffff);
      ctx = static_cast<ProfContext>((top >> 8) & 0xff);
      mode = static_cast<uint8_t>(top & 0xff);
      if (ctx >= ProfContext::kNumContexts) {
        ctx = ProfContext::kUnknown;
      }
    }
    if (gdepth > 0) {
      // Guest frames sit on top of whatever kernel/SVA-OS context invoked
      // the tier; the top frame decides interp-vs-threaded.
      uint32_t top = ngf > 0 ? gframe_words[ngf - 1] : 0;
      ctx = (top & 2u) != 0 ? ProfContext::kGuestThreaded
                            : ProfContext::kGuestInterp;
      if (depth == 0) {
        mode = (top & 1u) != 0 ? 3 : 0;  // kSvaSafe : kNative.
      }
    }
    frames.reserve(nctx + ngf + 1);
    for (uint32_t i = 0; i < nctx; ++i) {
      frames.push_back(static_cast<uint32_t>(ctx_words[i] >> 32));
    }
    for (uint32_t i = 0; i < ngf; ++i) {
      frames.push_back(gframe_words[i] >> 2);
    }
    if (frames.empty()) {
      ctx = ProfContext::kIdle;
    }
  }

  uint32_t stack_id;
  {
    std::lock_guard<smp::SpinLock> guard(store_lock_);
    if (!settled) {
      ++unattributed_;
    }
    if (frames.empty()) {
      // Idle and unattributed samples get a one-frame synthetic stack so
      // the folded output still accounts for 100% of samples.
      static const uint32_t kIdleId = InternProfName("idle");
      static const uint32_t kUnknownId = 0;
      frames.push_back(ctx == ProfContext::kIdle ? kIdleId : kUnknownId);
    }
    stack_id = InternStack(frames);
    stack_counts_[stack_id] += 1;
    context_counts_[static_cast<size_t>(ctx)] += 1;
    ++samples_;
  }

  Event e;
  e.ts_ns = ts_ns;
  e.dur_ns = 0;
  e.id = EventId::kProfSample;
  e.phase = Phase::kInstant;
  e.cpu = static_cast<uint8_t>(cpu);
  e.a0 = PackSampleA0(pid, static_cast<uint8_t>(std::min<uint32_t>(depth, 255)),
                      mode, ctx);
  e.a1 = stack_id;
  rings_.ForCpu(cpu).Record(e);
  if ((trace::mode() & kModeRing) != 0) {
    // Mirror into the main trace so --trace-out timelines carry samples.
    Tracer::Get().Record(EventId::kProfSample, Phase::kInstant, ts_ns, 0,
                         e.a0, e.a1);
  }
}

uint32_t Profiler::InternStack(const std::vector<uint32_t>& frames) {
  auto it = stack_ids_.find(frames);
  if (it != stack_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(stacks_.size());
  stack_ids_.emplace(frames, id);
  stacks_.push_back(frames);
  stack_counts_.push_back(0);
  return id;
}

void Profiler::DrainRingsLocked() {
  std::vector<Event> events;
  uint64_t lost = 0;
  rings_.ForEachMutable(
      [&events, &lost](EventRing& ring) { lost += ring.Drain(&events); });
  lost_ += lost;
  for (const Event& e : events) {
    if (e.id != EventId::kProfSample) {
      continue;
    }
    ProfSample s;
    s.ts_ns = e.ts_ns;
    s.stack_id = static_cast<uint32_t>(e.a1);
    s.pid = static_cast<uint32_t>(e.a0 >> 32);
    s.cpu = e.cpu;
    s.depth = static_cast<uint8_t>(e.a0 >> 16);
    s.mode = static_cast<uint8_t>(e.a0 >> 8);
    s.context = static_cast<ProfContext>(e.a0 & 0xff);
    if (s.context >= ProfContext::kNumContexts) {
      s.context = ProfContext::kUnknown;
    }
    store_.push_back(s);
  }
  while (store_.size() > kMaxStoredSamples) {
    store_.pop_front();
    ++store_base_;
    ++lost_;  // Readers that fell behind the trim lose these.
  }
}

size_t Profiler::ReadSamples(uint64_t* cursor, std::vector<ProfSample>* out,
                             size_t max) {
  std::lock_guard<smp::SpinLock> guard(store_lock_);
  if (*cursor < store_base_) {
    *cursor = store_base_;  // Trimmed past the reader; clamp forward.
  }
  size_t idx = static_cast<size_t>(*cursor - store_base_);
  size_t n = 0;
  while (idx < store_.size() && n < max) {
    out->push_back(store_[idx]);
    ++idx;
    ++n;
  }
  *cursor += n;
  return n;
}

uint64_t Profiler::EndCursor() const {
  std::lock_guard<smp::SpinLock> guard(store_lock_);
  return store_base_ + store_.size();
}

Profiler::Stats Profiler::stats() const {
  Stats s;
  {
    std::lock_guard<smp::SpinLock> guard(store_lock_);
    s.samples = samples_;
    s.lost = lost_;
    s.unattributed = unattributed_;
  }
  slots_.ForEach([&s](const Slot& slot) {
    s.stacks_truncated += slot.truncated.load(std::memory_order_relaxed);
  });
  return s;
}

std::vector<uint64_t> Profiler::ContextCounts() const {
  std::lock_guard<smp::SpinLock> guard(store_lock_);
  return std::vector<uint64_t>(
      context_counts_,
      context_counts_ + static_cast<size_t>(ProfContext::kNumContexts));
}

std::string Profiler::StackString(uint32_t stack_id) const {
  std::vector<uint32_t> frames;
  {
    std::lock_guard<smp::SpinLock> guard(store_lock_);
    if (stack_id >= stacks_.size()) {
      return "unknown";
    }
    frames = stacks_[stack_id];
  }
  std::string out;
  for (size_t i = 0; i < frames.size(); ++i) {
    if (i != 0) {
      out += ';';
    }
    out += ProfNameForId(frames[i]);
  }
  return out.empty() ? "unknown" : out;
}

std::string Profiler::FoldedText() const {
  std::vector<std::pair<std::vector<uint32_t>, uint64_t>> rows;
  {
    std::lock_guard<smp::SpinLock> guard(store_lock_);
    rows.reserve(stacks_.size());
    for (size_t id = 0; id < stacks_.size(); ++id) {
      if (stack_counts_[id] > 0) {
        rows.emplace_back(stacks_[id], stack_counts_[id]);
      }
    }
  }
  std::string out;
  for (const auto& [frames, count] : rows) {
    std::string line;
    for (size_t i = 0; i < frames.size(); ++i) {
      if (i != 0) {
        line += ';';
      }
      line += ProfNameForId(frames[i]);
    }
    if (line.empty()) {
      line = "unknown";
    }
    out += line;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

bool Profiler::WriteFolded(const std::string& path) const {
  std::string text = FoldedText();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::vector<std::pair<std::string, uint64_t>> Profiler::TopStacks(
    size_t n) const {
  std::vector<std::pair<uint32_t, uint64_t>> rows;
  {
    std::lock_guard<smp::SpinLock> guard(store_lock_);
    for (size_t id = 0; id < stacks_.size(); ++id) {
      if (stack_counts_[id] > 0) {
        rows.emplace_back(static_cast<uint32_t>(id), stack_counts_[id]);
      }
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (rows.size() > n) {
    rows.resize(n);
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(rows.size());
  for (const auto& [id, count] : rows) {
    out.emplace_back(StackString(id), count);
  }
  return out;
}

void Profiler::ResetForTest() {
  while (running()) {
    Stop();
  }
  std::lock_guard<std::mutex> guard(control_lock_);
  std::lock_guard<smp::SpinLock> store_guard(store_lock_);
  rings_.ForEachMutable([](EventRing& ring) {
    if (ring.capacity() != 0) {
      ring.Reset(ring.capacity());
    }
  });
  slots_.ForEachMutable([](Slot& slot) {
    slot.seq.store(0, std::memory_order_relaxed);
    slot.depth.store(0, std::memory_order_relaxed);
    slot.gdepth.store(0, std::memory_order_relaxed);
    slot.truncated.store(0, std::memory_order_relaxed);
  });
  store_.clear();
  store_base_ = 0;
  stack_ids_.clear();
  stacks_.clear();
  stack_counts_.clear();
  samples_ = 0;
  lost_ = 0;
  unattributed_ = 0;
  for (uint64_t& c : context_counts_) {
    c = 0;
  }
  opts_ = Options{};
}

}  // namespace sva::trace
