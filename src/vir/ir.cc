// Implementation of the instruction/function/module core.
#include <algorithm>
#include <cassert>

#include "src/vir/function.h"
#include "src/vir/instructions.h"
#include "src/vir/module.h"

namespace sva::vir {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kUDiv: return "udiv";
    case Opcode::kSDiv: return "sdiv";
    case Opcode::kURem: return "urem";
    case Opcode::kSRem: return "srem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kLShr: return "lshr";
    case Opcode::kAShr: return "ashr";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kICmp: return "icmp";
    case Opcode::kFCmp: return "fcmp";
    case Opcode::kSelect: return "select";
    case Opcode::kTrunc: return "trunc";
    case Opcode::kZExt: return "zext";
    case Opcode::kSExt: return "sext";
    case Opcode::kBitcast: return "bitcast";
    case Opcode::kPtrToInt: return "ptrtoint";
    case Opcode::kIntToPtr: return "inttoptr";
    case Opcode::kSIToFP: return "sitofp";
    case Opcode::kFPToSI: return "fptosi";
    case Opcode::kAlloca: return "alloca";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kGetElementPtr: return "getelementptr";
    case Opcode::kMalloc: return "malloc";
    case Opcode::kFree: return "free";
    case Opcode::kAtomicLIS: return "atomiclis";
    case Opcode::kCmpXchg: return "cmpxchg";
    case Opcode::kWriteBarrier: return "writebarrier";
    case Opcode::kCall: return "call";
    case Opcode::kPhi: return "phi";
    case Opcode::kBr: return "br";
    case Opcode::kSwitch: return "switch";
    case Opcode::kRet: return "ret";
    case Opcode::kUnreachable: return "unreachable";
  }
  return "<bad-opcode>";
}

const char* CmpPredName(CmpPred pred) {
  switch (pred) {
    case CmpPred::kEq: return "eq";
    case CmpPred::kNe: return "ne";
    case CmpPred::kUGt: return "ugt";
    case CmpPred::kUGe: return "uge";
    case CmpPred::kULt: return "ult";
    case CmpPred::kULe: return "ule";
    case CmpPred::kSGt: return "sgt";
    case CmpPred::kSGe: return "sge";
    case CmpPred::kSLt: return "slt";
    case CmpPred::kSLe: return "sle";
  }
  return "<bad-pred>";
}

void Instruction::ReplaceUsesOfWith(Value* from, Value* to) {
  for (size_t i = 0; i < operands_.size(); ++i) {
    if (operands_[i] == from) {
      operands_[i] = to;
    }
  }
  if (auto* phi = dynamic_cast<PhiInst*>(this)) {
    phi->ReplaceIncomingUsesOfWith(from, to);
  }
}

Function* CallInst::called_function() const {
  return dynamic_cast<Function*>(callee());
}

Value* PhiInst::ValueForBlock(const BasicBlock* pred) const {
  for (size_t i = 0; i < incoming_blocks_.size(); ++i) {
    if (incoming_blocks_[i] == pred) {
      return incoming_values_[i];
    }
  }
  return nullptr;
}

void PhiInst::ReplaceIncomingUsesOfWith(Value* from, Value* to) {
  for (auto& v : incoming_values_) {
    if (v == from) {
      v = to;
    }
  }
}

Instruction* BasicBlock::Append(std::unique_ptr<Instruction> inst) {
  inst->set_parent(this);
  instructions_.push_back(std::move(inst));
  return instructions_.back().get();
}

Instruction* BasicBlock::InsertAt(size_t index,
                                  std::unique_ptr<Instruction> inst) {
  assert(index <= instructions_.size());
  inst->set_parent(this);
  auto it = instructions_.begin() + static_cast<ptrdiff_t>(index);
  return instructions_.insert(it, std::move(inst))->get();
}

std::unique_ptr<Instruction> BasicBlock::ReplaceAt(
    size_t index, std::unique_ptr<Instruction> inst) {
  assert(index < instructions_.size());
  inst->set_parent(this);
  std::unique_ptr<Instruction> old = std::move(instructions_[index]);
  instructions_[index] = std::move(inst);
  return old;
}

size_t BasicBlock::IndexOf(const Instruction* inst) const {
  for (size_t i = 0; i < instructions_.size(); ++i) {
    if (instructions_[i].get() == inst) {
      return i;
    }
  }
  assert(false && "instruction not in block");
  return instructions_.size();
}

std::vector<BasicBlock*> BasicBlock::Successors() const {
  std::vector<BasicBlock*> succs;
  Instruction* term = terminator();
  if (term == nullptr) {
    return succs;
  }
  if (auto* br = dynamic_cast<BranchInst*>(term)) {
    for (size_t i = 0; i < br->num_targets(); ++i) {
      succs.push_back(br->target(i));
    }
  } else if (auto* sw = dynamic_cast<SwitchInst*>(term)) {
    succs.push_back(sw->default_target());
    for (size_t i = 0; i < sw->num_cases(); ++i) {
      succs.push_back(sw->case_target(i));
    }
  }
  return succs;
}

Function::Function(const PointerType* value_type, const FunctionType* fn_type,
                   std::string name, Module* parent, bool is_declaration)
    : Value(ValueKind::kFunction, value_type, std::move(name)),
      fn_type_(fn_type),
      parent_(parent),
      is_declaration_(is_declaration) {
  for (size_t i = 0; i < fn_type->params().size(); ++i) {
    args_.push_back(std::make_unique<Argument>(
        fn_type->params()[i], "arg" + std::to_string(i), this,
        static_cast<unsigned>(i)));
  }
}

BasicBlock* Function::CreateBlock(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(name), this));
  return blocks_.back().get();
}

std::vector<Instruction*> Function::AllInstructions() const {
  std::vector<Instruction*> out;
  for (const auto& bb : blocks_) {
    for (const auto& inst : bb->instructions()) {
      out.push_back(inst.get());
    }
  }
  return out;
}

void Function::ReplaceAllUsesWith(Value* from, Value* to) {
  for (const auto& bb : blocks_) {
    for (const auto& inst : bb->instructions()) {
      inst->ReplaceUsesOfWith(from, to);
    }
  }
}

Function* Module::CreateFunction(const std::string& name,
                                 const FunctionType* type, bool is_declaration,
                                 const std::vector<std::string>& arg_names) {
  assert(function_map_.find(name) == function_map_.end() &&
         "duplicate function");
  const PointerType* ptr = types_.PointerTo(type);
  functions_.push_back(
      std::make_unique<Function>(ptr, type, name, this, is_declaration));
  Function* fn = functions_.back().get();
  for (size_t i = 0; i < arg_names.size() && i < fn->num_args(); ++i) {
    fn->arg(i)->set_name(arg_names[i]);
  }
  function_map_[name] = fn;
  return fn;
}

Function* Module::GetFunction(const std::string& name) const {
  auto it = function_map_.find(name);
  return it == function_map_.end() ? nullptr : it->second;
}

Function* Module::GetOrDeclareFunction(const std::string& name,
                                       const FunctionType* type) {
  if (Function* fn = GetFunction(name)) {
    return fn;
  }
  return CreateFunction(name, type, /*is_declaration=*/true);
}

GlobalVariable* Module::CreateGlobal(const std::string& name,
                                     const Type* value_type, bool is_external) {
  assert(global_map_.find(name) == global_map_.end() && "duplicate global");
  const PointerType* ptr = types_.PointerTo(value_type);
  globals_.push_back(
      std::make_unique<GlobalVariable>(ptr, value_type, name, is_external));
  GlobalVariable* gv = globals_.back().get();
  global_map_[name] = gv;
  return gv;
}

GlobalVariable* Module::GetGlobal(const std::string& name) const {
  auto it = global_map_.find(name);
  return it == global_map_.end() ? nullptr : it->second;
}

ConstantInt* Module::GetInt(const IntType* type, uint64_t bits) {
  // Mask to the type's width so equal values intern equally.
  unsigned width = type->bits();
  if (width < 64) {
    bits &= (uint64_t{1} << width) - 1;
  }
  auto key = std::make_pair(static_cast<const Type*>(type), bits);
  auto it = int_constants_.find(key);
  if (it != int_constants_.end()) {
    return it->second;
  }
  auto c = std::make_unique<ConstantInt>(type, bits);
  ConstantInt* raw = c.get();
  constants_.push_back(std::move(c));
  int_constants_[key] = raw;
  return raw;
}

ConstantFloat* Module::GetFloat(const FloatType* type, double value) {
  auto key = std::make_pair(static_cast<const Type*>(type), value);
  auto it = float_constants_.find(key);
  if (it != float_constants_.end()) {
    return it->second;
  }
  auto c = std::make_unique<ConstantFloat>(type, value);
  ConstantFloat* raw = c.get();
  constants_.push_back(std::move(c));
  float_constants_[key] = raw;
  return raw;
}

ConstantNull* Module::GetNull(const PointerType* type) {
  auto it = null_constants_.find(type);
  if (it != null_constants_.end()) {
    return it->second;
  }
  auto c = std::make_unique<ConstantNull>(type);
  ConstantNull* raw = c.get();
  constants_.push_back(std::move(c));
  null_constants_[type] = raw;
  return raw;
}

ConstantUndef* Module::GetUndef(const Type* type) {
  auto it = undef_constants_.find(type);
  if (it != undef_constants_.end()) {
    return it->second;
  }
  auto c = std::make_unique<ConstantUndef>(type);
  ConstantUndef* raw = c.get();
  constants_.push_back(std::move(c));
  undef_constants_[type] = raw;
  return raw;
}

MetapoolDecl& Module::DeclareMetapool(const std::string& name) {
  MetapoolDecl& decl = metapools_[name];
  decl.name = name;
  return decl;
}

const MetapoolDecl* Module::FindMetapool(const std::string& name) const {
  auto it = metapools_.find(name);
  return it == metapools_.end() ? nullptr : &it->second;
}

const std::string& Module::MetapoolOf(const Value* v) const {
  static const std::string kEmpty;
  auto it = value_metapool_.find(v);
  return it == value_metapool_.end() ? kEmpty : it->second;
}

bool Module::HasSignatureAssertion(const Value* call) const {
  return std::find(signature_asserted_.begin(), signature_asserted_.end(),
                   call) != signature_asserted_.end();
}

}  // namespace sva::vir
