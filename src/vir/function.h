// Functions, basic blocks, and the explicit control flow graph of SVA-Core.
#ifndef SVA_SRC_VIR_FUNCTION_H_
#define SVA_SRC_VIR_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/vir/instructions.h"
#include "src/vir/value.h"

namespace sva::vir {

class Module;

class BasicBlock {
 public:
  BasicBlock(std::string name, Function* parent)
      : name_(std::move(name)), parent_(parent) {}
  BasicBlock(const BasicBlock&) = delete;
  BasicBlock& operator=(const BasicBlock&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  Function* parent() const { return parent_; }

  const std::vector<std::unique_ptr<Instruction>>& instructions() const {
    return instructions_;
  }
  bool empty() const { return instructions_.empty(); }
  Instruction* front() const { return instructions_.front().get(); }
  Instruction* back() const { return instructions_.back().get(); }

  // The terminator, or nullptr if the block is not yet terminated.
  Instruction* terminator() const {
    if (instructions_.empty() || !instructions_.back()->IsTerminator()) {
      return nullptr;
    }
    return instructions_.back().get();
  }

  // Appends an instruction (takes ownership) and returns the raw pointer.
  Instruction* Append(std::unique_ptr<Instruction> inst);

  // Inserts before position `index`; used by the safety-checking passes to
  // place run-time checks next to the operations they guard.
  Instruction* InsertAt(size_t index, std::unique_ptr<Instruction> inst);

  // Index of `inst` in this block; asserts if absent.
  size_t IndexOf(const Instruction* inst) const;

  // Replaces the instruction at `index` with `inst`, returning the old one
  // (used by stack-to-heap promotion). Callers must fix up uses first.
  std::unique_ptr<Instruction> ReplaceAt(size_t index,
                                         std::unique_ptr<Instruction> inst);

  // Successor blocks per the terminator.
  std::vector<BasicBlock*> Successors() const;

 private:
  std::string name_;
  Function* const parent_;
  std::vector<std::unique_ptr<Instruction>> instructions_;
};

class Function : public Value {
 public:
  Function(const PointerType* value_type, const FunctionType* fn_type,
           std::string name, Module* parent, bool is_declaration);

  const FunctionType* function_type() const { return fn_type_; }
  Module* parent() const { return parent_; }
  bool is_declaration() const { return is_declaration_; }
  void set_is_declaration(bool d) { is_declaration_ = d; }

  const std::vector<std::unique_ptr<Argument>>& args() const { return args_; }
  Argument* arg(size_t i) const { return args_[i].get(); }
  size_t num_args() const { return args_.size(); }

  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }
  BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  BasicBlock* CreateBlock(std::string name);

  // All instructions in block order (convenience for analyses).
  std::vector<Instruction*> AllInstructions() const;

  // Replaces all uses of `from` with `to` across this function's instruction
  // operands and phi incoming values.
  void ReplaceAllUsesWith(Value* from, Value* to);

 private:
  const FunctionType* const fn_type_;
  Module* const parent_;
  bool is_declaration_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_FUNCTION_H_
