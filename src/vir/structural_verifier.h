// Structural well-formedness checks on SVA-Core modules: explicit CFG with
// terminated blocks, SSA dominance of definitions over uses, operand type
// agreement, and phi/predecessor coherence. This is the instruction-set-level
// verification the SVM performs before the metapool type check of Section 5.
#ifndef SVA_SRC_VIR_STRUCTURAL_VERIFIER_H_
#define SVA_SRC_VIR_STRUCTURAL_VERIFIER_H_

#include <map>
#include <vector>

#include "src/support/status.h"
#include "src/vir/module.h"

namespace sva::vir {

// Immediate-dominator tree of one function (Cooper-Harvey-Kennedy iterative
// algorithm). Exposed for reuse by the bounds-check hoisting ablation.
class DominatorTree {
 public:
  explicit DominatorTree(const Function& fn);

  // Immediate dominator, or nullptr for the entry block / unreachable blocks.
  const BasicBlock* ImmediateDominator(const BasicBlock* bb) const;
  // True if `a` dominates `b` (reflexive).
  bool Dominates(const BasicBlock* a, const BasicBlock* b) const;
  bool IsReachable(const BasicBlock* bb) const;

 private:
  std::map<const BasicBlock*, const BasicBlock*> idom_;
  std::map<const BasicBlock*, int> rpo_index_;
};

// Verifies one function; returns the first problem found.
Status VerifyFunction(const Module& module, const Function& fn);

// Verifies every defined function in the module.
Status VerifyModule(const Module& module);

// Predecessor map of a function's CFG (utility shared with analyses).
std::map<const BasicBlock*, std::vector<const BasicBlock*>> PredecessorMap(
    const Function& fn);

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_STRUCTURAL_VERIFIER_H_
