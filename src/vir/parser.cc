#include "src/vir/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

#include "src/support/strings.h"
#include "src/vir/builder.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::vir {
namespace {

enum class TokKind {
  kEof,
  kIdent,       // bare identifier / keyword
  kLocal,       // %name
  kGlobal,      // @name
  kAnnotation,  // !name
  kInt,         // integer literal (possibly negative)
  kFloat,       // floating literal
  kString,      // "..."
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kEquals,
  kColon,
  kStar,
  kEllipsis,
};

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const Token& Peek() const { return current_; }
  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }
  int line() const { return line_; }

 private:
  void Advance() {
    SkipWhitespaceAndComments();
    current_ = Token();
    current_.line = line_;
    if (pos_ >= text_.size()) {
      current_.kind = TokKind::kEof;
      return;
    }
    char c = text_[pos_];
    switch (c) {
      case '(': current_.kind = TokKind::kLParen; ++pos_; return;
      case ')': current_.kind = TokKind::kRParen; ++pos_; return;
      case '{': current_.kind = TokKind::kLBrace; ++pos_; return;
      case '}': current_.kind = TokKind::kRBrace; ++pos_; return;
      case '[': current_.kind = TokKind::kLBracket; ++pos_; return;
      case ']': current_.kind = TokKind::kRBracket; ++pos_; return;
      case ',': current_.kind = TokKind::kComma; ++pos_; return;
      case '=': current_.kind = TokKind::kEquals; ++pos_; return;
      case ':': current_.kind = TokKind::kColon; ++pos_; return;
      case '*': current_.kind = TokKind::kStar; ++pos_; return;
      default: break;
    }
    if (c == '.') {
      if (text_.substr(pos_, 3) == "...") {
        current_.kind = TokKind::kEllipsis;
        pos_ += 3;
        return;
      }
    }
    if (c == '"') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        ++pos_;
      }
      current_.kind = TokKind::kString;
      current_.text = std::string(text_.substr(start, pos_ - start));
      if (pos_ < text_.size()) {
        ++pos_;
      }
      return;
    }
    if (c == '%' || c == '@' || c == '!') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) {
        ++pos_;
      }
      current_.text = std::string(text_.substr(start, pos_ - start));
      current_.kind = c == '%'   ? TokKind::kLocal
                      : c == '@' ? TokKind::kGlobal
                                 : TokKind::kAnnotation;
      return;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      if (c == '-') {
        ++pos_;
      }
      bool is_float = false;
      while (pos_ < text_.size()) {
        char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
        } else if (d == '.' && pos_ + 1 < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
          is_float = true;
          ++pos_;
        } else if ((d == 'e' || d == 'E') && pos_ + 1 < text_.size()) {
          is_float = true;
          ++pos_;
          if (pos_ < text_.size() &&
              (text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
          }
        } else {
          break;
        }
      }
      std::string num(text_.substr(start, pos_ - start));
      if (is_float) {
        current_.kind = TokKind::kFloat;
        current_.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        current_.kind = TokKind::kInt;
        current_.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      current_.text = std::move(num);
      return;
    }
    if (IsIdentChar(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) {
        ++pos_;
      }
      current_.kind = TokKind::kIdent;
      current_.text = std::string(text_.substr(start, pos_ - start));
      return;
    }
    // Unknown character: emit as ident of one char so the parser reports it.
    current_.kind = TokKind::kIdent;
    current_.text = std::string(1, c);
    ++pos_;
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

// A pending operand reference that could not be resolved when first seen
// (forward reference to a value defined later in the function).
struct Fixup {
  Instruction* inst = nullptr;
  // Operand index, or if phi_index >= 0, the phi incoming slot.
  size_t operand_index = 0;
  int phi_index = -1;
  std::string name;
  int line = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  Result<std::unique_ptr<Module>> Parse() {
    SVA_RETURN_IF_ERROR(Expect(TokKind::kIdent, "module"));
    Token name = lexer_.Take();
    if (name.kind != TokKind::kString) {
      return Error("expected module name string");
    }
    module_ = std::make_unique<Module>(name.text);
    while (lexer_.Peek().kind != TokKind::kEof) {
      const Token& tok = lexer_.Peek();
      if (tok.kind == TokKind::kLocal) {
        SVA_RETURN_IF_ERROR(ParseTypeDecl());
      } else if (tok.kind == TokKind::kIdent && tok.text == "metapool") {
        SVA_RETURN_IF_ERROR(ParseMetapoolDecl());
      } else if (tok.kind == TokKind::kIdent && tok.text == "targetset") {
        SVA_RETURN_IF_ERROR(ParseTargetSet());
      } else if (tok.kind == TokKind::kIdent &&
                 (tok.text == "global" || tok.text == "extern")) {
        SVA_RETURN_IF_ERROR(ParseGlobal());
      } else if (tok.kind == TokKind::kIdent && tok.text == "declare") {
        SVA_RETURN_IF_ERROR(ParseDeclare());
      } else if (tok.kind == TokKind::kIdent && tok.text == "define") {
        SVA_RETURN_IF_ERROR(ParseDefine());
      } else if (tok.kind == TokKind::kIdent && tok.text == "assert_signature") {
        SVA_RETURN_IF_ERROR(ParseSignatureAssertion());
      } else {
        return Error(StrCat("unexpected token '", tok.text, "' at top level"));
      }
    }
    return std::move(module_);
  }

 private:
  Status Error(std::string msg) {
    return ParseError(StrCat("line ", lexer_.Peek().line, ": ", msg));
  }

  Status Expect(TokKind kind, const std::string& text = "") {
    Token tok = lexer_.Take();
    if (tok.kind != kind || (!text.empty() && tok.text != text)) {
      return ParseError(StrCat("line ", tok.line, ": expected '",
                               text.empty() ? "<token>" : text, "', got '",
                               tok.text, "'"));
    }
    return OkStatus();
  }

  bool ConsumeIf(TokKind kind, const std::string& text = "") {
    const Token& tok = lexer_.Peek();
    if (tok.kind == kind && (text.empty() || tok.text == text)) {
      lexer_.Take();
      return true;
    }
    return false;
  }

  // --- Types ---------------------------------------------------------------

  Result<const Type*> ParseType() {
    TypeContext& types = module_->types();
    const Type* base = nullptr;
    Token tok = lexer_.Take();
    if (tok.kind == TokKind::kIdent) {
      const std::string& t = tok.text;
      if (t == "void") {
        base = types.VoidTy();
      } else if (t == "i1") {
        base = types.I1();
      } else if (t == "i8") {
        base = types.I8();
      } else if (t == "i16") {
        base = types.I16();
      } else if (t == "i32") {
        base = types.I32();
      } else if (t == "i64") {
        base = types.I64();
      } else if (t == "f32") {
        base = types.F32();
      } else if (t == "f64") {
        base = types.F64();
      } else if (t == "opaque") {
        return ParseError(
            StrCat("line ", tok.line, ": 'opaque' only valid in type decls"));
      } else {
        return ParseError(
            StrCat("line ", tok.line, ": unknown type '", t, "'"));
      }
    } else if (tok.kind == TokKind::kLocal) {
      base = types.NamedStruct(tok.text);
    } else if (tok.kind == TokKind::kLBracket) {
      Token n = lexer_.Take();
      if (n.kind != TokKind::kInt) {
        return ParseError(StrCat("line ", n.line, ": expected array length"));
      }
      SVA_RETURN_IF_ERROR(Expect(TokKind::kIdent, "x"));
      SVA_ASSIGN_OR_RETURN(const Type* elem, ParseType());
      SVA_RETURN_IF_ERROR(Expect(TokKind::kRBracket));
      base = types.ArrayOf(elem, static_cast<uint64_t>(n.int_value));
    } else if (tok.kind == TokKind::kLBrace) {
      std::vector<const Type*> fields;
      if (!ConsumeIf(TokKind::kRBrace)) {
        while (true) {
          SVA_ASSIGN_OR_RETURN(const Type* f, ParseType());
          fields.push_back(f);
          if (ConsumeIf(TokKind::kRBrace)) {
            break;
          }
          SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
        }
      }
      base = types.Struct(fields);
    } else {
      return ParseError(
          StrCat("line ", tok.line, ": expected type, got '", tok.text, "'"));
    }
    // Function type suffix: TYPE ( params ) — only in type contexts where a
    // '(' directly follows (e.g. "i32 (i8*)*").
    if (lexer_.Peek().kind == TokKind::kLParen) {
      lexer_.Take();
      std::vector<const Type*> params;
      bool vararg = false;
      if (!ConsumeIf(TokKind::kRParen)) {
        while (true) {
          if (ConsumeIf(TokKind::kEllipsis)) {
            vararg = true;
            SVA_RETURN_IF_ERROR(Expect(TokKind::kRParen));
            break;
          }
          SVA_ASSIGN_OR_RETURN(const Type* p, ParseType());
          params.push_back(p);
          if (ConsumeIf(TokKind::kRParen)) {
            break;
          }
          SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
        }
      }
      base = types.FunctionTy(base, params, vararg);
    }
    while (ConsumeIf(TokKind::kStar)) {
      base = types.PointerTo(base);
    }
    return base;
  }

  // --- Top-level entities ----------------------------------------------------

  Status ParseTypeDecl() {
    Token name = lexer_.Take();  // %name
    SVA_RETURN_IF_ERROR(Expect(TokKind::kEquals));
    SVA_RETURN_IF_ERROR(Expect(TokKind::kIdent, "type"));
    if (ConsumeIf(TokKind::kIdent, "opaque")) {
      module_->types().NamedStruct(name.text);
      return OkStatus();
    }
    SVA_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    std::vector<const Type*> fields;
    if (!ConsumeIf(TokKind::kRBrace)) {
      while (true) {
        SVA_ASSIGN_OR_RETURN(const Type* f, ParseType());
        fields.push_back(f);
        if (ConsumeIf(TokKind::kRBrace)) {
          break;
        }
        SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      }
    }
    module_->types().NamedStruct(name.text, fields);
    return OkStatus();
  }

  Status ParseMetapoolDecl() {
    lexer_.Take();  // 'metapool'
    Token name = lexer_.Take();
    if (name.kind != TokKind::kIdent) {
      return Error("expected metapool name");
    }
    MetapoolDecl& decl = module_->DeclareMetapool(name.text);
    MetapoolHandle(*module_, name.text);
    while (true) {
      if (ConsumeIf(TokKind::kIdent, "th")) {
        SVA_ASSIGN_OR_RETURN(const Type* elem, ParseType());
        decl.type_homogeneous = true;
        decl.element_type = elem;
      } else if (ConsumeIf(TokKind::kIdent, "complete")) {
        decl.complete = true;
      } else if (ConsumeIf(TokKind::kIdent, "user")) {
        decl.user_reachable = true;
      } else if (ConsumeIf(TokKind::kIdent, "classified")) {
        decl.classified = true;
      } else {
        break;
      }
    }
    return OkStatus();
  }

  Status ParseTargetSet() {
    lexer_.Take();  // 'targetset'
    Token idx = lexer_.Take();
    if (idx.kind != TokKind::kInt) {
      return Error("expected target set index");
    }
    SVA_RETURN_IF_ERROR(Expect(TokKind::kEquals));
    std::vector<std::string> names;
    while (lexer_.Peek().kind == TokKind::kGlobal) {
      names.push_back(lexer_.Take().text);
    }
    uint64_t assigned = module_->AddTargetSet(std::move(names));
    if (assigned != static_cast<uint64_t>(idx.int_value)) {
      return Error("target sets must appear in index order");
    }
    return OkStatus();
  }

  Status ParseGlobal() {
    bool is_external = ConsumeIf(TokKind::kIdent, "extern");
    SVA_RETURN_IF_ERROR(Expect(TokKind::kIdent, "global"));
    Token name = lexer_.Take();
    if (name.kind != TokKind::kGlobal) {
      return Error("expected @name for global");
    }
    SVA_RETURN_IF_ERROR(Expect(TokKind::kColon));
    SVA_ASSIGN_OR_RETURN(const Type* vt, ParseType());
    GlobalVariable* gv = module_->CreateGlobal(name.text, vt, is_external);
    if (ConsumeIf(TokKind::kEquals)) {
      Token init = lexer_.Take();
      if (init.kind != TokKind::kInt) {
        return Error("expected integer initializer");
      }
      gv->set_int_initializer(static_cast<uint64_t>(init.int_value));
    }
    if (lexer_.Peek().kind == TokKind::kAnnotation) {
      module_->AnnotateValue(gv, lexer_.Take().text);
    }
    return OkStatus();
  }

  Status ParseDeclare() {
    lexer_.Take();  // 'declare'
    SVA_ASSIGN_OR_RETURN(const Type* ret, ParseType());
    Token name = lexer_.Take();
    if (name.kind != TokKind::kGlobal) {
      return Error("expected @name in declare");
    }
    SVA_RETURN_IF_ERROR(Expect(TokKind::kLParen));
    std::vector<const Type*> params;
    bool vararg = false;
    if (!ConsumeIf(TokKind::kRParen)) {
      while (true) {
        if (ConsumeIf(TokKind::kEllipsis)) {
          vararg = true;
          SVA_RETURN_IF_ERROR(Expect(TokKind::kRParen));
          break;
        }
        SVA_ASSIGN_OR_RETURN(const Type* p, ParseType());
        params.push_back(p);
        if (ConsumeIf(TokKind::kRParen)) {
          break;
        }
        SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      }
    }
    const FunctionType* ft =
        module_->types().FunctionTy(ret, params, vararg);
    module_->GetOrDeclareFunction(name.text, ft);
    return OkStatus();
  }

  Status ParseSignatureAssertion() {
    lexer_.Take();  // 'assert_signature'
    // Recorded per call instruction during function parsing via the
    // "!sig" annotation; the standalone form is accepted and ignored.
    return OkStatus();
  }

  // --- Function bodies -------------------------------------------------------

  Status ParseDefine() {
    lexer_.Take();  // 'define'
    SVA_ASSIGN_OR_RETURN(const Type* ret, ParseType());
    Token name = lexer_.Take();
    if (name.kind != TokKind::kGlobal) {
      return Error("expected @name in define");
    }
    SVA_RETURN_IF_ERROR(Expect(TokKind::kLParen));
    std::vector<const Type*> params;
    std::vector<std::string> param_names;
    std::vector<std::string> param_annotations;
    if (!ConsumeIf(TokKind::kRParen)) {
      while (true) {
        SVA_ASSIGN_OR_RETURN(const Type* p, ParseType());
        Token pn = lexer_.Take();
        if (pn.kind != TokKind::kLocal) {
          return Error("expected %name for parameter");
        }
        params.push_back(p);
        param_names.push_back(pn.text);
        if (lexer_.Peek().kind == TokKind::kAnnotation) {
          param_annotations.push_back(lexer_.Take().text);
        } else {
          param_annotations.emplace_back();
        }
        if (ConsumeIf(TokKind::kRParen)) {
          break;
        }
        SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      }
    }
    const FunctionType* ft = module_->types().FunctionTy(ret, params, false);
    Function* fn = module_->GetFunction(name.text);
    if (fn != nullptr) {
      if (!fn->is_declaration()) {
        return Error(StrCat("redefinition of @", name.text));
      }
      if (fn->function_type() != ft) {
        return Error(StrCat("type mismatch redefining @", name.text));
      }
      fn->set_is_declaration(false);
      for (size_t i = 0; i < param_names.size(); ++i) {
        fn->arg(i)->set_name(param_names[i]);
      }
    } else {
      fn = module_->CreateFunction(name.text, ft, /*is_declaration=*/false,
                                   param_names);
    }
    locals_.clear();
    blocks_.clear();
    fixups_.clear();
    fn_ = fn;
    for (size_t i = 0; i < fn->num_args(); ++i) {
      locals_[param_names[i]] = fn->arg(i);
      if (!param_annotations[i].empty()) {
        module_->AnnotateValue(fn->arg(i), param_annotations[i]);
      }
    }
    SVA_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    BasicBlock* current = nullptr;
    while (!ConsumeIf(TokKind::kRBrace)) {
      const Token& tok = lexer_.Peek();
      if (tok.kind == TokKind::kEof) {
        return Error("unexpected EOF in function body");
      }
      // A block label: IDENT ':'
      if (tok.kind == TokKind::kIdent && IsLabel()) {
        Token label = lexer_.Take();
        lexer_.Take();  // ':'
        current = GetBlock(label.text);
        continue;
      }
      if (current == nullptr) {
        return Error("instruction before first block label");
      }
      SVA_RETURN_IF_ERROR(ParseInstruction(current));
    }
    if (fn->blocks().empty()) {
      return Error(StrCat("function @", name.text, " has an empty body"));
    }
    // Resolve forward references.
    for (const Fixup& fx : fixups_) {
      auto it = locals_.find(fx.name);
      if (it == locals_.end()) {
        return ParseError(StrCat("line ", fx.line, ": undefined value %",
                                 fx.name));
      }
      if (fx.phi_index >= 0) {
        static_cast<PhiInst*>(fx.inst)->set_incoming_value(
            static_cast<size_t>(fx.phi_index), it->second);
      } else {
        fx.inst->set_operand(fx.operand_index, it->second);
      }
    }
    fn_ = nullptr;
    return OkStatus();
  }

  // True if the upcoming tokens are "IDENT :". The lexer has one-token
  // lookahead, so labels are detected by peeking the raw text: labels in our
  // printer output are always at line starts followed by ':'. We implement
  // two-token lookahead by saving/restoring.
  bool IsLabel() {
    // One-token lookahead is insufficient; cheat by copying the lexer.
    Lexer saved = lexer_;
    Token first = lexer_.Take();
    bool is_label = first.kind == TokKind::kIdent &&
                    lexer_.Peek().kind == TokKind::kColon;
    lexer_ = saved;
    return is_label;
  }

  BasicBlock* GetBlock(const std::string& name) {
    auto it = blocks_.find(name);
    if (it != blocks_.end()) {
      return it->second;
    }
    BasicBlock* bb = fn_->CreateBlock(name);
    blocks_[name] = bb;
    return bb;
  }

  // Parses "label %name" and returns the block.
  Result<BasicBlock*> ParseLabelRef() {
    SVA_RETURN_IF_ERROR(Expect(TokKind::kIdent, "label"));
    Token name = lexer_.Take();
    if (name.kind != TokKind::kLocal) {
      return ParseError(StrCat("line ", name.line, ": expected %block"));
    }
    return GetBlock(name.text);
  }

  // Parses a value reference of the given type. Returns nullptr when the
  // reference is a forward local reference; in that case *forward_name is set.
  Result<Value*> ParseValueRef(const Type* type, std::string* forward_name) {
    Token tok = lexer_.Take();
    switch (tok.kind) {
      case TokKind::kLocal: {
        auto it = locals_.find(tok.text);
        if (it != locals_.end()) {
          return it->second;
        }
        *forward_name = tok.text;
        return static_cast<Value*>(nullptr);
      }
      case TokKind::kGlobal: {
        if (GlobalVariable* gv = module_->GetGlobal(tok.text)) {
          return static_cast<Value*>(gv);
        }
        if (Function* f = module_->GetFunction(tok.text)) {
          return static_cast<Value*>(f);
        }
        // Intrinsics may be referenced without explicit declaration.
        Intrinsic which = LookupIntrinsic(tok.text);
        if (which != Intrinsic::kNone) {
          return static_cast<Value*>(DeclareIntrinsic(*module_, which));
        }
        // Forward reference to a function defined later in the module: the
        // typed reference tells us its signature, so declare it now (the
        // later `define` fills the body in).
        if (type->IsPointer()) {
          const Type* pointee =
              static_cast<const PointerType*>(type)->pointee();
          if (pointee->IsFunction()) {
            return static_cast<Value*>(module_->GetOrDeclareFunction(
                tok.text, static_cast<const FunctionType*>(pointee)));
          }
        }
        return ParseError(
            StrCat("line ", tok.line, ": unknown global @", tok.text));
      }
      case TokKind::kInt: {
        if (!type->IsInt()) {
          return ParseError(StrCat("line ", tok.line,
                                   ": integer literal for non-integer type ",
                                   type->ToString()));
        }
        return static_cast<Value*>(
            module_->GetInt(static_cast<const IntType*>(type),
                            static_cast<uint64_t>(tok.int_value)));
      }
      case TokKind::kFloat: {
        if (!type->IsFloat()) {
          return ParseError(
              StrCat("line ", tok.line, ": float literal for non-float type"));
        }
        return static_cast<Value*>(module_->GetFloat(
            static_cast<const FloatType*>(type), tok.float_value));
      }
      case TokKind::kIdent: {
        if (tok.text == "null") {
          if (!type->IsPointer()) {
            return ParseError(
                StrCat("line ", tok.line, ": null for non-pointer type"));
          }
          return static_cast<Value*>(
              module_->GetNull(static_cast<const PointerType*>(type)));
        }
        if (tok.text == "undef") {
          return static_cast<Value*>(module_->GetUndef(type));
        }
        return ParseError(
            StrCat("line ", tok.line, ": unexpected value '", tok.text, "'"));
      }
      default:
        return ParseError(
            StrCat("line ", tok.line, ": expected value, got '", tok.text,
                   "'"));
    }
  }

  // Parses "TYPE VALUE" and returns the value (or records a fixup slot by
  // returning nullptr; caller must then call NoteFixup with the slot).
  struct TypedRef {
    const Type* type = nullptr;
    Value* value = nullptr;     // nullptr when forward
    std::string forward_name;   // non-empty when forward
    int line = 0;
  };
  Result<TypedRef> ParseTypedRef() {
    TypedRef ref;
    ref.line = lexer_.Peek().line;
    SVA_ASSIGN_OR_RETURN(ref.type, ParseType());
    SVA_ASSIGN_OR_RETURN(ref.value, ParseValueRef(ref.type, &ref.forward_name));
    return ref;
  }

  // Placeholder used for forward references until fixup resolution. Typed as
  // undef of the referenced type.
  Value* Placeholder(const Type* type) { return module_->GetUndef(type); }

  void NoteFixup(Instruction* inst, size_t operand_index,
                 const std::string& name, int line, int phi_index = -1) {
    Fixup fx;
    fx.inst = inst;
    fx.operand_index = operand_index;
    fx.phi_index = phi_index;
    fx.name = name;
    fx.line = line;
    fixups_.push_back(fx);
  }

  Status ParseInstruction(BasicBlock* bb) {
    std::string result_name;
    if (lexer_.Peek().kind == TokKind::kLocal) {
      result_name = lexer_.Take().text;
      SVA_RETURN_IF_ERROR(Expect(TokKind::kEquals));
    }
    Token op = lexer_.Take();
    if (op.kind != TokKind::kIdent) {
      return Error(StrCat("expected opcode, got '", op.text, "'"));
    }
    IRBuilder b(*module_);
    b.SetInsertPoint(bb);
    TypeContext& types = module_->types();
    Value* result = nullptr;
    const std::string& o = op.text;

    auto parse_typed_operand = [&](std::vector<TypedRef>& refs) -> Status {
      SVA_ASSIGN_OR_RETURN(TypedRef r, ParseTypedRef());
      refs.push_back(r);
      return OkStatus();
    };

    static const std::map<std::string, Opcode> kBinaryOps = {
        {"add", Opcode::kAdd},   {"sub", Opcode::kSub},
        {"mul", Opcode::kMul},   {"udiv", Opcode::kUDiv},
        {"sdiv", Opcode::kSDiv}, {"urem", Opcode::kURem},
        {"srem", Opcode::kSRem}, {"and", Opcode::kAnd},
        {"or", Opcode::kOr},     {"xor", Opcode::kXor},
        {"shl", Opcode::kShl},   {"lshr", Opcode::kLShr},
        {"ashr", Opcode::kAShr}, {"fadd", Opcode::kFAdd},
        {"fsub", Opcode::kFSub}, {"fmul", Opcode::kFMul},
        {"fdiv", Opcode::kFDiv}};
    static const std::map<std::string, Opcode> kCastOps = {
        {"trunc", Opcode::kTrunc},       {"zext", Opcode::kZExt},
        {"sext", Opcode::kSExt},         {"bitcast", Opcode::kBitcast},
        {"ptrtoint", Opcode::kPtrToInt}, {"inttoptr", Opcode::kIntToPtr},
        {"sitofp", Opcode::kSIToFP},     {"fptosi", Opcode::kFPToSI}};
    static const std::map<std::string, CmpPred> kPreds = {
        {"eq", CmpPred::kEq},   {"ne", CmpPred::kNe},
        {"ugt", CmpPred::kUGt}, {"uge", CmpPred::kUGe},
        {"ult", CmpPred::kULt}, {"ule", CmpPred::kULe},
        {"sgt", CmpPred::kSGt}, {"sge", CmpPred::kSGe},
        {"slt", CmpPred::kSLt}, {"sle", CmpPred::kSLe}};

    if (auto bit = kBinaryOps.find(o); bit != kBinaryOps.end()) {
      SVA_ASSIGN_OR_RETURN(const Type* type, ParseType());
      std::string fwd1;
      int line1 = lexer_.Peek().line;
      SVA_ASSIGN_OR_RETURN(Value* lhs, ParseValueRef(type, &fwd1));
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      std::string fwd2;
      int line2 = lexer_.Peek().line;
      SVA_ASSIGN_OR_RETURN(Value* rhs, ParseValueRef(type, &fwd2));
      result = b.CreateBinary(bit->second, lhs ? lhs : Placeholder(type),
                              rhs ? rhs : Placeholder(type), result_name);
      auto* inst = static_cast<Instruction*>(result);
      if (lhs == nullptr) {
        NoteFixup(inst, 0, fwd1, line1);
      }
      if (rhs == nullptr) {
        NoteFixup(inst, 1, fwd2, line2);
      }
    } else if (auto cit = kCastOps.find(o); cit != kCastOps.end()) {
      SVA_ASSIGN_OR_RETURN(TypedRef src, ParseTypedRef());
      SVA_RETURN_IF_ERROR(Expect(TokKind::kIdent, "to"));
      SVA_ASSIGN_OR_RETURN(const Type* dst, ParseType());
      result = b.CreateCast(cit->second, Resolve(src), dst, result_name);
      MaybeFixup(static_cast<Instruction*>(result), 0, src);
    } else if (o == "icmp" || o == "fcmp") {
      Token pred = lexer_.Take();
      auto pit = kPreds.find(pred.text);
      if (pit == kPreds.end()) {
        return Error(StrCat("bad compare predicate '", pred.text, "'"));
      }
      SVA_ASSIGN_OR_RETURN(const Type* type, ParseType());
      std::string fwd1;
      int line1 = lexer_.Peek().line;
      SVA_ASSIGN_OR_RETURN(Value* lhs, ParseValueRef(type, &fwd1));
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      std::string fwd2;
      int line2 = lexer_.Peek().line;
      SVA_ASSIGN_OR_RETURN(Value* rhs, ParseValueRef(type, &fwd2));
      result = o == "icmp"
                   ? b.CreateICmp(pit->second, lhs ? lhs : Placeholder(type),
                                  rhs ? rhs : Placeholder(type), result_name)
                   : b.CreateFCmp(pit->second, lhs ? lhs : Placeholder(type),
                                  rhs ? rhs : Placeholder(type), result_name);
      auto* inst = static_cast<Instruction*>(result);
      if (lhs == nullptr) {
        NoteFixup(inst, 0, fwd1, line1);
      }
      if (rhs == nullptr) {
        NoteFixup(inst, 1, fwd2, line2);
      }
    } else if (o == "select") {
      SVA_ASSIGN_OR_RETURN(TypedRef cond, ParseTypedRef());
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      SVA_ASSIGN_OR_RETURN(TypedRef tval, ParseTypedRef());
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      SVA_ASSIGN_OR_RETURN(TypedRef fval, ParseTypedRef());
      result = b.CreateSelect(Resolve(cond), Resolve(tval), Resolve(fval),
                              result_name);
      auto* inst = static_cast<Instruction*>(result);
      MaybeFixup(inst, 0, cond);
      MaybeFixup(inst, 1, tval);
      MaybeFixup(inst, 2, fval);
    } else if (o == "alloca" || o == "malloc") {
      SVA_ASSIGN_OR_RETURN(const Type* allocated, ParseType());
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      SVA_ASSIGN_OR_RETURN(TypedRef count, ParseTypedRef());
      result = o == "alloca"
                   ? b.CreateAlloca(allocated, Resolve(count), result_name)
                   : b.CreateMalloc(allocated, Resolve(count), result_name);
      MaybeFixup(static_cast<Instruction*>(result), 0, count);
    } else if (o == "free") {
      SVA_ASSIGN_OR_RETURN(TypedRef ptr, ParseTypedRef());
      b.CreateFree(Resolve(ptr));
      Instruction* inst = bb->back();
      MaybeFixup(inst, 0, ptr);
    } else if (o == "load") {
      SVA_ASSIGN_OR_RETURN(const Type* result_type, ParseType());
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      SVA_ASSIGN_OR_RETURN(TypedRef ptr, ParseTypedRef());
      if (!ptr.type->IsPointer() ||
          static_cast<const PointerType*>(ptr.type)->pointee() != result_type) {
        return Error("load pointer type does not match result type");
      }
      result = b.CreateLoad(ResolveTyped(ptr), result_name);
      MaybeFixup(static_cast<Instruction*>(result), 0, ptr);
    } else if (o == "store") {
      SVA_ASSIGN_OR_RETURN(TypedRef value, ParseTypedRef());
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      SVA_ASSIGN_OR_RETURN(TypedRef ptr, ParseTypedRef());
      b.CreateStore(Resolve(value), ResolveTyped(ptr));
      Instruction* inst = bb->back();
      MaybeFixup(inst, 0, value);
      MaybeFixup(inst, 1, ptr);
    } else if (o == "getelementptr") {
      SVA_ASSIGN_OR_RETURN(TypedRef base, ParseTypedRef());
      std::vector<TypedRef> indices;
      while (ConsumeIf(TokKind::kComma)) {
        SVA_RETURN_IF_ERROR(parse_typed_operand(indices));
      }
      std::vector<Value*> index_values;
      index_values.reserve(indices.size());
      for (const TypedRef& r : indices) {
        index_values.push_back(Resolve(r));
      }
      result = b.CreateGEP(ResolveTyped(base), index_values, result_name);
      auto* inst = static_cast<Instruction*>(result);
      MaybeFixup(inst, 0, base);
      for (size_t i = 0; i < indices.size(); ++i) {
        MaybeFixup(inst, i + 1, indices[i]);
      }
    } else if (o == "atomiclis") {
      SVA_ASSIGN_OR_RETURN(TypedRef ptr, ParseTypedRef());
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      const Type* elem =
          static_cast<const PointerType*>(ptr.type)->pointee();
      std::string fwd;
      int line = lexer_.Peek().line;
      SVA_ASSIGN_OR_RETURN(Value* delta, ParseValueRef(elem, &fwd));
      result = b.CreateAtomicLIS(ResolveTyped(ptr),
                                 delta ? delta : Placeholder(elem),
                                 result_name);
      auto* inst = static_cast<Instruction*>(result);
      MaybeFixup(inst, 0, ptr);
      if (delta == nullptr) {
        NoteFixup(inst, 1, fwd, line);
      }
    } else if (o == "cmpxchg") {
      SVA_ASSIGN_OR_RETURN(TypedRef ptr, ParseTypedRef());
      const Type* elem =
          static_cast<const PointerType*>(ptr.type)->pointee();
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      std::string fwd1;
      int line1 = lexer_.Peek().line;
      SVA_ASSIGN_OR_RETURN(Value* expected, ParseValueRef(elem, &fwd1));
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      std::string fwd2;
      int line2 = lexer_.Peek().line;
      SVA_ASSIGN_OR_RETURN(Value* desired, ParseValueRef(elem, &fwd2));
      result = b.CreateCmpXchg(ResolveTyped(ptr),
                               expected ? expected : Placeholder(elem),
                               desired ? desired : Placeholder(elem),
                               result_name);
      auto* inst = static_cast<Instruction*>(result);
      MaybeFixup(inst, 0, ptr);
      if (expected == nullptr) {
        NoteFixup(inst, 1, fwd1, line1);
      }
      if (desired == nullptr) {
        NoteFixup(inst, 2, fwd2, line2);
      }
    } else if (o == "writebarrier") {
      b.CreateWriteBarrier();
    } else if (o == "call") {
      SVA_ASSIGN_OR_RETURN(const Type* ret, ParseType());
      Token callee_tok = lexer_.Take();
      Value* callee = nullptr;
      std::string callee_fwd;
      std::string forward_call_name;
      int callee_line = callee_tok.line;
      if (callee_tok.kind == TokKind::kGlobal) {
        callee = module_->GetFunction(callee_tok.text);
        if (callee == nullptr) {
          Intrinsic which = LookupIntrinsic(callee_tok.text);
          if (which != Intrinsic::kNone) {
            callee = DeclareIntrinsic(*module_, which);
          }
        }
        // Forward direct call: reconstruct the signature from the call and
        // declare; a later define must match it.
        if (callee == nullptr) {
          forward_call_name = callee_tok.text;
        }
      } else if (callee_tok.kind == TokKind::kLocal) {
        auto it = locals_.find(callee_tok.text);
        if (it != locals_.end()) {
          callee = it->second;
        } else {
          callee_fwd = callee_tok.text;
        }
      } else {
        return Error("expected callee");
      }
      SVA_RETURN_IF_ERROR(Expect(TokKind::kLParen));
      std::vector<TypedRef> args;
      if (!ConsumeIf(TokKind::kRParen)) {
        while (true) {
          SVA_RETURN_IF_ERROR(parse_typed_operand(args));
          if (ConsumeIf(TokKind::kRParen)) {
            break;
          }
          SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
        }
      }
      std::vector<Value*> arg_values;
      std::vector<const Type*> arg_types;
      arg_values.reserve(args.size());
      for (const TypedRef& r : args) {
        arg_values.push_back(Resolve(r));
        arg_types.push_back(r.type);
      }
      Value* resolved_callee = callee;
      if (resolved_callee == nullptr && !forward_call_name.empty()) {
        // Forward direct call: declare with the reconstructed signature.
        resolved_callee = module_->GetOrDeclareFunction(
            forward_call_name, types.FunctionTy(ret, arg_types, false));
      }
      if (resolved_callee == nullptr) {
        // Forward indirect callee: synthesize a placeholder of fn-ptr type.
        const FunctionType* ft = types.FunctionTy(ret, arg_types, false);
        resolved_callee = Placeholder(types.PointerTo(ft));
      }
      result = b.CreateCall(resolved_callee, arg_values, result_name);
      auto* inst = static_cast<Instruction*>(result);
      if (callee == nullptr && !callee_fwd.empty()) {
        NoteFixup(inst, 0, callee_fwd, callee_line);
      }
      for (size_t i = 0; i < args.size(); ++i) {
        MaybeFixup(inst, i + 1, args[i]);
      }
      if (result->type()->IsVoid()) {
        result = nullptr;
      }
    } else if (o == "phi") {
      SVA_ASSIGN_OR_RETURN(const Type* type, ParseType());
      PhiInst* phi = b.CreatePhi(type, result_name);
      int incoming = 0;
      while (true) {
        SVA_RETURN_IF_ERROR(Expect(TokKind::kLBracket));
        std::string fwd;
        int line = lexer_.Peek().line;
        SVA_ASSIGN_OR_RETURN(Value* v, ParseValueRef(type, &fwd));
        SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
        Token block_name = lexer_.Take();
        if (block_name.kind != TokKind::kLocal) {
          return Error("expected %block in phi");
        }
        SVA_RETURN_IF_ERROR(Expect(TokKind::kRBracket));
        phi->AddIncoming(v ? v : Placeholder(type),
                         GetBlock(block_name.text));
        if (v == nullptr) {
          NoteFixup(phi, 0, fwd, line, incoming);
        }
        ++incoming;
        if (!ConsumeIf(TokKind::kComma)) {
          break;
        }
      }
      result = phi;
    } else if (o == "br") {
      if (lexer_.Peek().kind == TokKind::kIdent &&
          lexer_.Peek().text == "label") {
        SVA_ASSIGN_OR_RETURN(BasicBlock* target, ParseLabelRef());
        b.CreateBr(target);
      } else {
        SVA_RETURN_IF_ERROR(Expect(TokKind::kIdent, "i1"));
        std::string fwd;
        int line = lexer_.Peek().line;
        SVA_ASSIGN_OR_RETURN(Value* cond, ParseValueRef(types.I1(), &fwd));
        SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
        SVA_ASSIGN_OR_RETURN(BasicBlock* t, ParseLabelRef());
        SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
        SVA_ASSIGN_OR_RETURN(BasicBlock* f, ParseLabelRef());
        b.CreateCondBr(cond ? cond : Placeholder(types.I1()), t, f);
        if (cond == nullptr) {
          NoteFixup(bb->back(), 0, fwd, line);
        }
      }
    } else if (o == "switch") {
      SVA_ASSIGN_OR_RETURN(TypedRef value, ParseTypedRef());
      SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
      SVA_ASSIGN_OR_RETURN(BasicBlock* def, ParseLabelRef());
      SwitchInst* sw = b.CreateSwitch(Resolve(value), def);
      MaybeFixup(sw, 0, value);
      while (ConsumeIf(TokKind::kComma)) {
        SVA_RETURN_IF_ERROR(Expect(TokKind::kLBracket));
        Token cv = lexer_.Take();
        if (cv.kind != TokKind::kInt) {
          return Error("expected case value");
        }
        SVA_RETURN_IF_ERROR(Expect(TokKind::kComma));
        SVA_ASSIGN_OR_RETURN(BasicBlock* target, ParseLabelRef());
        SVA_RETURN_IF_ERROR(Expect(TokKind::kRBracket));
        sw->AddCase(static_cast<uint64_t>(cv.int_value), target);
      }
    } else if (o == "ret") {
      if (ConsumeIf(TokKind::kIdent, "void")) {
        b.CreateRetVoid();
      } else {
        SVA_ASSIGN_OR_RETURN(TypedRef value, ParseTypedRef());
        b.CreateRet(Resolve(value));
        MaybeFixup(bb->back(), 0, value);
      }
    } else if (o == "unreachable") {
      b.CreateUnreachable();
    } else {
      return Error(StrCat("unknown opcode '", o, "'"));
    }

    // Optional metapool annotation on the result value.
    if (lexer_.Peek().kind == TokKind::kAnnotation) {
      Token ann = lexer_.Take();
      Instruction* inst = bb->back();
      if (ann.text == "sig") {
        module_->AddSignatureAssertion(inst);
      } else {
        module_->AnnotateValue(inst, ann.text);
      }
      // A second annotation may follow (e.g. "!MP1 !sig").
      if (lexer_.Peek().kind == TokKind::kAnnotation) {
        Token ann2 = lexer_.Take();
        if (ann2.text == "sig") {
          module_->AddSignatureAssertion(inst);
        } else {
          module_->AnnotateValue(inst, ann2.text);
        }
      }
    }

    if (result != nullptr && !result->type()->IsVoid() &&
        !result_name.empty()) {
      locals_[result_name] = result;
    }
    return OkStatus();
  }

  Value* Resolve(const TypedRef& ref) {
    return ref.value != nullptr ? ref.value : Placeholder(ref.type);
  }
  // Same but asserts the slot is a pointer type (load/store/gep bases).
  Value* ResolveTyped(const TypedRef& ref) { return Resolve(ref); }

  void MaybeFixup(Instruction* inst, size_t operand_index,
                  const TypedRef& ref) {
    if (ref.value == nullptr) {
      NoteFixup(inst, operand_index, ref.forward_name, ref.line);
    }
  }

  Lexer lexer_;
  std::unique_ptr<Module> module_;
  Function* fn_ = nullptr;
  std::map<std::string, Value*> locals_;
  std::map<std::string, BasicBlock*> blocks_;
  std::vector<Fixup> fixups_;
};

}  // namespace

Result<std::unique_ptr<Module>> ParseModule(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace sva::vir
