// Binary serialization of SVA bytecode modules ("virtual object code",
// Section 3.1). The SVM stores this form on disk, signs the (bytecode,
// native translation) pair, and verifies it at load time.
#ifndef SVA_SRC_VIR_BYTECODE_H_
#define SVA_SRC_VIR_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/support/status.h"
#include "src/vir/module.h"

namespace sva::vir {

// Serializes `module` to the binary bytecode format.
std::vector<uint8_t> WriteBytecode(const Module& module);

// Deserializes a module. Performs format-level validation only; callers
// should run VerifyModule and the metapool type checker afterwards.
Result<std::unique_ptr<Module>> ReadBytecode(const std::vector<uint8_t>& data);

// A stable 64-bit FNV-1a digest of arbitrary bytes, used by the SVM native
// code cache to "sign" bytecode/translation pairs (stand-in for the
// cryptographic signature of Section 3.4).
uint64_t DigestBytes(const std::vector<uint8_t>& data);

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_BYTECODE_H_
