// Parser for the textual SVA bytecode form produced by PrintModule. The
// exploit scenarios and the kernel IR corpus are authored in this syntax.
#ifndef SVA_SRC_VIR_PARSER_H_
#define SVA_SRC_VIR_PARSER_H_

#include <memory>
#include <string_view>

#include "src/support/status.h"
#include "src/vir/module.h"

namespace sva::vir {

// Parses a whole module from text. On failure returns a ParseError status
// with a line number.
Result<std::unique_ptr<Module>> ParseModule(std::string_view text);

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_PARSER_H_
