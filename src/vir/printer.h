// Textual rendering of SVA bytecode modules. The text form round-trips
// through the parser and is the format used by the on-disk corpus.
#ifndef SVA_SRC_VIR_PRINTER_H_
#define SVA_SRC_VIR_PRINTER_H_

#include <string>

#include "src/vir/module.h"

namespace sva::vir {

// Prints the whole module: named types, metapool declarations, globals,
// declarations, and function definitions with metapool annotations.
std::string PrintModule(const Module& module);

// Prints a single function definition (used in diagnostics and tests).
std::string PrintFunction(const Module& module, const Function& fn);

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_PRINTER_H_
