#include "src/vir/intrinsics.h"

#include "src/support/strings.h"

namespace sva::vir {

Intrinsic LookupIntrinsic(std::string_view name) {
  if (name == "pchk.reg.obj") {
    return Intrinsic::kPchkRegObj;
  }
  if (name == "pchk.drop.obj") {
    return Intrinsic::kPchkDropObj;
  }
  if (name == "sva.boundscheck") {
    return Intrinsic::kBoundsCheck;
  }
  if (name == "sva.boundscheck.direct") {
    return Intrinsic::kBoundsCheckDirect;
  }
  if (name == "sva.getbounds") {
    return Intrinsic::kGetBounds;
  }
  if (name == "sva.lscheck") {
    return Intrinsic::kLSCheck;
  }
  if (name == "sva.indirectcheck") {
    return Intrinsic::kIndirectCheck;
  }
  if (name == "sva.pseudo.alloc") {
    return Intrinsic::kPseudoAlloc;
  }
  if (name == "sva.register.syscall") {
    return Intrinsic::kRegisterSyscall;
  }
  return Intrinsic::kNone;
}

std::string_view IntrinsicName(Intrinsic which) {
  switch (which) {
    case Intrinsic::kNone:
      return "";
    case Intrinsic::kPchkRegObj:
      return "pchk.reg.obj";
    case Intrinsic::kPchkDropObj:
      return "pchk.drop.obj";
    case Intrinsic::kBoundsCheck:
      return "sva.boundscheck";
    case Intrinsic::kBoundsCheckDirect:
      return "sva.boundscheck.direct";
    case Intrinsic::kGetBounds:
      return "sva.getbounds";
    case Intrinsic::kLSCheck:
      return "sva.lscheck";
    case Intrinsic::kIndirectCheck:
      return "sva.indirectcheck";
    case Intrinsic::kPseudoAlloc:
      return "sva.pseudo.alloc";
    case Intrinsic::kRegisterSyscall:
      return "sva.register.syscall";
  }
  return "";
}

Function* DeclareIntrinsic(Module& module, Intrinsic which) {
  TypeContext& types = module.types();
  const Type* void_ty = types.VoidTy();
  const PointerType* i8p = types.PointerTo(types.I8());
  const PointerType* i8pp = types.PointerTo(i8p);
  const IntType* i64 = types.I64();
  const StructType* mp_struct =
      types.NamedStruct(std::string(kMetapoolStructName));
  const PointerType* mpp = types.PointerTo(mp_struct);

  const FunctionType* fn_type = nullptr;
  switch (which) {
    case Intrinsic::kNone:
      return nullptr;
    case Intrinsic::kPchkRegObj:
      fn_type = types.FunctionTy(void_ty, {mpp, i8p, i64});
      break;
    case Intrinsic::kPchkDropObj:
      fn_type = types.FunctionTy(void_ty, {mpp, i8p});
      break;
    case Intrinsic::kBoundsCheck:
      fn_type = types.FunctionTy(void_ty, {mpp, i8p, i8p});
      break;
    case Intrinsic::kBoundsCheckDirect:
      fn_type = types.FunctionTy(void_ty, {i8p, i8p, i8p});
      break;
    case Intrinsic::kGetBounds:
      fn_type = types.FunctionTy(void_ty, {mpp, i8p, i8pp, i8pp});
      break;
    case Intrinsic::kLSCheck:
      fn_type = types.FunctionTy(void_ty, {mpp, i8p});
      break;
    case Intrinsic::kIndirectCheck:
      fn_type = types.FunctionTy(void_ty, {i8p, i64});
      break;
    case Intrinsic::kPseudoAlloc:
      fn_type = types.FunctionTy(void_ty, {i64, i64});
      break;
    case Intrinsic::kRegisterSyscall:
      fn_type = types.FunctionTy(void_ty, {i64, i8p});
      break;
  }
  return module.GetOrDeclareFunction(std::string(IntrinsicName(which)),
                                     fn_type);
}

GlobalVariable* MetapoolHandle(Module& module, const std::string& name) {
  if (GlobalVariable* gv = module.GetGlobal(name)) {
    return gv;
  }
  const StructType* mp_struct =
      module.types().NamedStruct(std::string(kMetapoolStructName));
  return module.CreateGlobal(name, mp_struct, /*is_external=*/false);
}

bool IsMetapoolHandle(const GlobalVariable* gv) {
  const Type* vt = gv->value_type();
  if (!vt->IsStruct()) {
    return false;
  }
  return static_cast<const StructType*>(vt)->name() == kMetapoolStructName;
}

}  // namespace sva::vir
