// SVA-Core instructions (Section 3.2): arithmetic and logic, comparisons,
// explicit branches, typed indexing (getelementptr), loads and stores, heap
// and stack allocation/deallocation, calls, casts, and the atomic extensions
// (load-increment-store, compare-and-swap, write barrier).
//
// Run-time safety operations (pchk.reg.obj, boundscheck, lscheck, ...) and
// SVA-OS operations (llva.*) are modeled as calls to intrinsic declarations,
// mirroring the paper's "exposed as an API" design; see intrinsics.h.
#ifndef SVA_SRC_VIR_INSTRUCTIONS_H_
#define SVA_SRC_VIR_INSTRUCTIONS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "src/vir/value.h"

namespace sva::vir {

class BasicBlock;
class Function;

enum class Opcode {
  // Integer binary ops.
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  // Floating-point binary ops.
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  // Comparisons.
  kICmp,
  kFCmp,
  kSelect,
  // Casts.
  kTrunc,
  kZExt,
  kSExt,
  kBitcast,
  kPtrToInt,
  kIntToPtr,
  kSIToFP,
  kFPToSI,
  // Memory.
  kAlloca,
  kLoad,
  kStore,
  kGetElementPtr,
  kMalloc,
  kFree,
  // Atomics / ordering (SVA-Core extensions).
  kAtomicLIS,  // atomic load-increment-store: returns old value, adds operand
  kCmpXchg,
  kWriteBarrier,
  // Control flow.
  kCall,
  kPhi,
  kBr,
  kSwitch,
  kRet,
  kUnreachable,
};

const char* OpcodeName(Opcode op);

// Predicates for icmp/fcmp.
enum class CmpPred {
  kEq,
  kNe,
  kUGt,
  kUGe,
  kULt,
  kULe,
  kSGt,
  kSGe,
  kSLt,
  kSLe,
};

const char* CmpPredName(CmpPred pred);

class Instruction : public Value {
 public:
  Opcode opcode() const { return opcode_; }
  BasicBlock* parent() const { return parent_; }
  void set_parent(BasicBlock* bb) { parent_ = bb; }

  size_t num_operands() const { return operands_.size(); }
  Value* operand(size_t i) const {
    assert(i < operands_.size());
    return operands_[i];
  }
  void set_operand(size_t i, Value* v) {
    assert(i < operands_.size());
    operands_[i] = v;
  }
  const std::vector<Value*>& operands() const { return operands_; }

  // Replaces every use of `from` among this instruction's operands with `to`.
  void ReplaceUsesOfWith(Value* from, Value* to);

  bool IsTerminator() const {
    return opcode_ == Opcode::kBr || opcode_ == Opcode::kSwitch ||
           opcode_ == Opcode::kRet || opcode_ == Opcode::kUnreachable;
  }
  bool IsBinaryOp() const {
    return opcode_ >= Opcode::kAdd && opcode_ <= Opcode::kFDiv;
  }
  bool IsCast() const {
    return opcode_ >= Opcode::kTrunc && opcode_ <= Opcode::kFPToSI;
  }

 protected:
  Instruction(Opcode op, const Type* type, std::vector<Value*> operands,
              std::string name)
      : Value(ValueKind::kInstruction, type, std::move(name)),
        opcode_(op),
        operands_(std::move(operands)) {}

 private:
  const Opcode opcode_;
  std::vector<Value*> operands_;
  BasicBlock* parent_ = nullptr;
};

class BinaryInst : public Instruction {
 public:
  BinaryInst(Opcode op, Value* lhs, Value* rhs, std::string name)
      : Instruction(op, lhs->type(), {lhs, rhs}, std::move(name)) {}
  Value* lhs() const { return operand(0); }
  Value* rhs() const { return operand(1); }
};

class CmpInst : public Instruction {
 public:
  CmpInst(Opcode op, CmpPred pred, const IntType* i1, Value* lhs, Value* rhs,
          std::string name)
      : Instruction(op, i1, {lhs, rhs}, std::move(name)), pred_(pred) {}
  CmpPred pred() const { return pred_; }
  Value* lhs() const { return operand(0); }
  Value* rhs() const { return operand(1); }

 private:
  const CmpPred pred_;
};

class SelectInst : public Instruction {
 public:
  SelectInst(Value* cond, Value* tval, Value* fval, std::string name)
      : Instruction(Opcode::kSelect, tval->type(), {cond, tval, fval},
                    std::move(name)) {}
  Value* condition() const { return operand(0); }
  Value* true_value() const { return operand(1); }
  Value* false_value() const { return operand(2); }
};

class CastInst : public Instruction {
 public:
  CastInst(Opcode op, Value* src, const Type* dst_type, std::string name)
      : Instruction(op, dst_type, {src}, std::move(name)) {}
  Value* src() const { return operand(0); }
};

// Stack allocation: `alloca T, N` allocates N elements of T; result T*.
class AllocaInst : public Instruction {
 public:
  AllocaInst(const PointerType* result_type, const Type* allocated, Value* count,
             std::string name)
      : Instruction(Opcode::kAlloca, result_type, {count}, std::move(name)),
        allocated_(allocated) {}
  const Type* allocated_type() const { return allocated_; }
  Value* count() const { return operand(0); }

 private:
  const Type* const allocated_;
};

// Heap allocation: `malloc T, N` — lowered by the SVM to the kernel's
// ordinary allocator (Section 3.2).
class MallocInst : public Instruction {
 public:
  MallocInst(const PointerType* result_type, const Type* allocated, Value* count,
             std::string name)
      : Instruction(Opcode::kMalloc, result_type, {count}, std::move(name)),
        allocated_(allocated) {}
  const Type* allocated_type() const { return allocated_; }
  Value* count() const { return operand(0); }

 private:
  const Type* const allocated_;
};

class FreeInst : public Instruction {
 public:
  FreeInst(const Type* void_type, Value* ptr)
      : Instruction(Opcode::kFree, void_type, {ptr}, "") {}
  Value* pointer() const { return operand(0); }
};

class LoadInst : public Instruction {
 public:
  LoadInst(const Type* result_type, Value* ptr, std::string name)
      : Instruction(Opcode::kLoad, result_type, {ptr}, std::move(name)) {}
  Value* pointer() const { return operand(0); }
};

class StoreInst : public Instruction {
 public:
  StoreInst(const Type* void_type, Value* value, Value* ptr)
      : Instruction(Opcode::kStore, void_type, {value, ptr}, "") {}
  Value* stored_value() const { return operand(0); }
  Value* pointer() const { return operand(1); }
};

// Typed indexing. All address arithmetic in SVA-Core happens here, which is
// what makes the bounds-check insertion of Section 4.5 possible: the verifier
// checks that source and derived pointer stay within one registered object.
//
// Semantics follow LLVM: the first index steps over the pointee as an array;
// subsequent indexes drill into arrays (any integer) or structs (constant
// field number).
class GetElementPtrInst : public Instruction {
 public:
  GetElementPtrInst(const PointerType* result_type, Value* base,
                    std::vector<Value*> indices, std::string name)
      : Instruction(Opcode::kGetElementPtr, result_type,
                    Concat(base, std::move(indices)), std::move(name)) {}
  Value* base() const { return operand(0); }
  size_t num_indices() const { return num_operands() - 1; }
  Value* index(size_t i) const { return operand(i + 1); }

 private:
  static std::vector<Value*> Concat(Value* base, std::vector<Value*> idx) {
    std::vector<Value*> ops;
    ops.reserve(idx.size() + 1);
    ops.push_back(base);
    for (Value* v : idx) {
      ops.push_back(v);
    }
    return ops;
  }
};

class CallInst : public Instruction {
 public:
  CallInst(const Type* result_type, Value* callee, std::vector<Value*> args,
           std::string name)
      : Instruction(Opcode::kCall, result_type, Concat(callee, std::move(args)),
                    std::move(name)) {}
  Value* callee() const { return operand(0); }
  size_t num_args() const { return num_operands() - 1; }
  Value* arg(size_t i) const { return operand(i + 1); }

  // Direct call target, or nullptr for an indirect call.
  Function* called_function() const;

 private:
  static std::vector<Value*> Concat(Value* callee, std::vector<Value*> args) {
    std::vector<Value*> ops;
    ops.reserve(args.size() + 1);
    ops.push_back(callee);
    for (Value* v : args) {
      ops.push_back(v);
    }
    return ops;
  }
};

// Atomic load-increment-store: atomically { old = *p; *p = old + delta; }.
class AtomicLISInst : public Instruction {
 public:
  AtomicLISInst(const Type* result_type, Value* ptr, Value* delta,
                std::string name)
      : Instruction(Opcode::kAtomicLIS, result_type, {ptr, delta},
                    std::move(name)) {}
  Value* pointer() const { return operand(0); }
  Value* delta() const { return operand(1); }
};

// Compare-and-swap: atomically { old = *p; if (old == expected) *p = desired; }
// returning the old value.
class CmpXchgInst : public Instruction {
 public:
  CmpXchgInst(const Type* result_type, Value* ptr, Value* expected,
              Value* desired, std::string name)
      : Instruction(Opcode::kCmpXchg, result_type, {ptr, expected, desired},
                    std::move(name)) {}
  Value* pointer() const { return operand(0); }
  Value* expected() const { return operand(1); }
  Value* desired() const { return operand(2); }
};

class WriteBarrierInst : public Instruction {
 public:
  explicit WriteBarrierInst(const Type* void_type)
      : Instruction(Opcode::kWriteBarrier, void_type, {}, "") {}
};

class PhiInst : public Instruction {
 public:
  PhiInst(const Type* type, std::string name)
      : Instruction(Opcode::kPhi, type, {}, std::move(name)) {}

  void AddIncoming(Value* value, BasicBlock* block) {
    incoming_values_.push_back(value);
    incoming_blocks_.push_back(block);
  }
  size_t num_incoming() const { return incoming_values_.size(); }
  Value* incoming_value(size_t i) const { return incoming_values_[i]; }
  void set_incoming_value(size_t i, Value* v) { incoming_values_[i] = v; }
  BasicBlock* incoming_block(size_t i) const { return incoming_blocks_[i]; }

  // Returns the incoming value for `pred`, or nullptr.
  Value* ValueForBlock(const BasicBlock* pred) const;

  void ReplaceIncomingUsesOfWith(Value* from, Value* to);

 private:
  // Phi incoming values are held outside the operand list because they pair
  // with predecessor blocks.
  std::vector<Value*> incoming_values_;
  std::vector<BasicBlock*> incoming_blocks_;
};

// Conditional or unconditional branch. Explicit control flow graph, no
// computed branches (Section 3.1 property 2).
class BranchInst : public Instruction {
 public:
  // Unconditional.
  BranchInst(const Type* void_type, BasicBlock* target)
      : Instruction(Opcode::kBr, void_type, {}, "") {
    targets_.push_back(target);
  }
  // Conditional.
  BranchInst(const Type* void_type, Value* cond, BasicBlock* if_true,
             BasicBlock* if_false)
      : Instruction(Opcode::kBr, void_type, {cond}, "") {
    targets_.push_back(if_true);
    targets_.push_back(if_false);
  }

  bool is_conditional() const { return num_operands() == 1; }
  Value* condition() const { return operand(0); }
  size_t num_targets() const { return targets_.size(); }
  BasicBlock* target(size_t i) const { return targets_[i]; }

 private:
  std::vector<BasicBlock*> targets_;
};

class SwitchInst : public Instruction {
 public:
  SwitchInst(const Type* void_type, Value* value, BasicBlock* default_target)
      : Instruction(Opcode::kSwitch, void_type, {value}, ""),
        default_target_(default_target) {}

  Value* condition() const { return operand(0); }
  BasicBlock* default_target() const { return default_target_; }
  void AddCase(uint64_t case_value, BasicBlock* target) {
    case_values_.push_back(case_value);
    case_targets_.push_back(target);
  }
  size_t num_cases() const { return case_values_.size(); }
  uint64_t case_value(size_t i) const { return case_values_[i]; }
  BasicBlock* case_target(size_t i) const { return case_targets_[i]; }

 private:
  BasicBlock* default_target_;
  std::vector<uint64_t> case_values_;
  std::vector<BasicBlock*> case_targets_;
};

class RetInst : public Instruction {
 public:
  // `value` may be nullptr for `ret void`.
  RetInst(const Type* void_type, Value* value)
      : Instruction(Opcode::kRet, void_type,
                    value ? std::vector<Value*>{value} : std::vector<Value*>{},
                    "") {}
  bool has_value() const { return num_operands() == 1; }
  Value* value() const { return operand(0); }
};

class UnreachableInst : public Instruction {
 public:
  explicit UnreachableInst(const Type* void_type)
      : Instruction(Opcode::kUnreachable, void_type, {}, "") {}
};

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_INSTRUCTIONS_H_
