#include "src/vir/printer.h"

#include <map>
#include <set>
#include <sstream>

#include "src/support/strings.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::vir {
namespace {

// Assigns printable local names (%name or %N) to arguments, blocks, and
// instruction results of one function.
class ValueNamer {
 public:
  explicit ValueNamer(const Function& fn) {
    for (const auto& arg : fn.args()) {
      Assign(arg.get(), arg->name());
    }
    for (const auto& bb : fn.blocks()) {
      std::string base = bb->name().empty() ? "bb" : bb->name();
      block_names_[bb.get()] = Unique(base);
      for (const auto& inst : bb->instructions()) {
        if (!inst->type()->IsVoid()) {
          Assign(inst.get(), inst->name());
        }
      }
    }
  }

  std::string NameOf(const Value* v) const {
    auto it = names_.find(v);
    if (it != names_.end()) {
      return it->second;
    }
    return "<unnamed>";
  }

  std::string BlockName(const BasicBlock* bb) const {
    auto it = block_names_.find(bb);
    return it == block_names_.end() ? "<bb>" : it->second;
  }

 private:
  void Assign(const Value* v, const std::string& preferred) {
    std::string base = preferred.empty() ? "v" : preferred;
    names_[v] = Unique(base);
  }

  std::string Unique(const std::string& base) {
    int& count = used_[base];
    std::string name = count == 0 ? base : StrCat(base, ".", count);
    ++count;
    // Rare collision with an explicit name like "v.1": keep bumping.
    while (taken_.count(name) != 0) {
      name = StrCat(base, ".", count++);
    }
    taken_.insert(name);
    return name;
  }

  std::map<const Value*, std::string> names_;
  std::map<const BasicBlock*, std::string> block_names_;
  std::map<std::string, int> used_;
  std::set<std::string> taken_;
};

std::string ConstantToString(const Value* v) {
  switch (v->value_kind()) {
    case ValueKind::kConstantInt:
      return std::to_string(
          static_cast<const ConstantInt*>(v)->sext_value());
    case ValueKind::kConstantFloat: {
      std::ostringstream os;
      os << static_cast<const ConstantFloat*>(v)->value();
      std::string s = os.str();
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueKind::kConstantNull:
      return "null";
    case ValueKind::kConstantUndef:
      return "undef";
    case ValueKind::kGlobalVariable:
    case ValueKind::kFunction:
      return StrCat("@", v->name());
    default:
      return "<not-a-constant>";
  }
}

class FunctionPrinter {
 public:
  FunctionPrinter(const Module& module, const Function& fn)
      : module_(module), fn_(fn), namer_(fn) {}

  std::string Print() {
    std::ostringstream os;
    os << "define " << fn_.function_type()->return_type()->ToString() << " @"
       << fn_.name() << "(";
    for (size_t i = 0; i < fn_.num_args(); ++i) {
      if (i != 0) {
        os << ", ";
      }
      const Argument* arg = fn_.arg(i);
      os << arg->type()->ToString() << " %" << namer_.NameOf(arg);
      AppendAnnotation(os, arg);
    }
    os << ") {\n";
    for (const auto& bb : fn_.blocks()) {
      os << namer_.BlockName(bb.get()) << ":\n";
      for (const auto& inst : bb->instructions()) {
        os << "  " << RenderInstruction(*inst) << "\n";
      }
    }
    os << "}\n";
    return os.str();
  }

 private:
  std::string Ref(const Value* v) const {
    if (v->IsConstant()) {
      return ConstantToString(v);
    }
    return StrCat("%", namer_.NameOf(v));
  }

  std::string TypedRef(const Value* v) const {
    return StrCat(v->type()->ToString(), " ", Ref(v));
  }

  void AppendAnnotation(std::ostringstream& os, const Value* v) const {
    const std::string& mp = module_.MetapoolOf(v);
    if (!mp.empty()) {
      os << " !" << mp;
    }
  }

  std::string RenderInstruction(const Instruction& inst) const {
    std::ostringstream os;
    if (!inst.type()->IsVoid()) {
      os << "%" << namer_.NameOf(&inst) << " = ";
    }
    switch (inst.opcode()) {
      case Opcode::kICmp:
      case Opcode::kFCmp: {
        const auto& cmp = static_cast<const CmpInst&>(inst);
        os << OpcodeName(inst.opcode()) << " " << CmpPredName(cmp.pred()) << " "
           << cmp.lhs()->type()->ToString() << " " << Ref(cmp.lhs()) << ", "
           << Ref(cmp.rhs());
        break;
      }
      case Opcode::kSelect: {
        const auto& sel = static_cast<const SelectInst&>(inst);
        os << "select i1 " << Ref(sel.condition()) << ", "
           << TypedRef(sel.true_value()) << ", " << TypedRef(sel.false_value());
        break;
      }
      case Opcode::kTrunc:
      case Opcode::kZExt:
      case Opcode::kSExt:
      case Opcode::kBitcast:
      case Opcode::kPtrToInt:
      case Opcode::kIntToPtr:
      case Opcode::kSIToFP:
      case Opcode::kFPToSI: {
        const auto& cast = static_cast<const CastInst&>(inst);
        os << OpcodeName(inst.opcode()) << " " << TypedRef(cast.src()) << " to "
           << inst.type()->ToString();
        break;
      }
      case Opcode::kAlloca: {
        const auto& a = static_cast<const AllocaInst&>(inst);
        os << "alloca " << a.allocated_type()->ToString() << ", "
           << TypedRef(a.count());
        break;
      }
      case Opcode::kMalloc: {
        const auto& m = static_cast<const MallocInst&>(inst);
        os << "malloc " << m.allocated_type()->ToString() << ", "
           << TypedRef(m.count());
        break;
      }
      case Opcode::kFree: {
        const auto& f = static_cast<const FreeInst&>(inst);
        os << "free " << TypedRef(f.pointer());
        break;
      }
      case Opcode::kLoad: {
        const auto& l = static_cast<const LoadInst&>(inst);
        os << "load " << inst.type()->ToString() << ", "
           << TypedRef(l.pointer());
        break;
      }
      case Opcode::kStore: {
        const auto& s = static_cast<const StoreInst&>(inst);
        os << "store " << TypedRef(s.stored_value()) << ", "
           << TypedRef(s.pointer());
        break;
      }
      case Opcode::kGetElementPtr: {
        const auto& gep = static_cast<const GetElementPtrInst&>(inst);
        os << "getelementptr " << TypedRef(gep.base());
        for (size_t i = 0; i < gep.num_indices(); ++i) {
          os << ", " << TypedRef(gep.index(i));
        }
        break;
      }
      case Opcode::kAtomicLIS: {
        const auto& a = static_cast<const AtomicLISInst&>(inst);
        os << "atomiclis " << TypedRef(a.pointer()) << ", " << Ref(a.delta());
        break;
      }
      case Opcode::kCmpXchg: {
        const auto& c = static_cast<const CmpXchgInst&>(inst);
        os << "cmpxchg " << TypedRef(c.pointer()) << ", " << Ref(c.expected())
           << ", " << Ref(c.desired());
        break;
      }
      case Opcode::kWriteBarrier:
        os << "writebarrier";
        break;
      case Opcode::kCall: {
        const auto& call = static_cast<const CallInst&>(inst);
        os << "call " << inst.type()->ToString() << " " << Ref(call.callee())
           << "(";
        for (size_t i = 0; i < call.num_args(); ++i) {
          if (i != 0) {
            os << ", ";
          }
          os << TypedRef(call.arg(i));
        }
        os << ")";
        break;
      }
      case Opcode::kPhi: {
        const auto& phi = static_cast<const PhiInst&>(inst);
        os << "phi " << inst.type()->ToString();
        for (size_t i = 0; i < phi.num_incoming(); ++i) {
          os << (i == 0 ? " " : ", ") << "[ " << Ref(phi.incoming_value(i))
             << ", %" << namer_.BlockName(phi.incoming_block(i)) << " ]";
        }
        break;
      }
      case Opcode::kBr: {
        const auto& br = static_cast<const BranchInst&>(inst);
        if (br.is_conditional()) {
          os << "br i1 " << Ref(br.condition()) << ", label %"
             << namer_.BlockName(br.target(0)) << ", label %"
             << namer_.BlockName(br.target(1));
        } else {
          os << "br label %" << namer_.BlockName(br.target(0));
        }
        break;
      }
      case Opcode::kSwitch: {
        const auto& sw = static_cast<const SwitchInst&>(inst);
        os << "switch " << TypedRef(sw.condition()) << ", label %"
           << namer_.BlockName(sw.default_target());
        for (size_t i = 0; i < sw.num_cases(); ++i) {
          os << ", [ " << sw.case_value(i) << ", label %"
             << namer_.BlockName(sw.case_target(i)) << " ]";
        }
        break;
      }
      case Opcode::kRet: {
        const auto& ret = static_cast<const RetInst&>(inst);
        if (ret.has_value()) {
          os << "ret " << TypedRef(ret.value());
        } else {
          os << "ret void";
        }
        break;
      }
      case Opcode::kUnreachable:
        os << "unreachable";
        break;
      default:
        // Binary arithmetic ops.
        os << OpcodeName(inst.opcode()) << " " << inst.type()->ToString() << " "
           << Ref(inst.operand(0)) << ", " << Ref(inst.operand(1));
        break;
    }
    AppendAnnotation(os, &inst);
    return os.str();
  }

  const Module& module_;
  const Function& fn_;
  ValueNamer namer_;
};

}  // namespace

std::string PrintFunction(const Module& module, const Function& fn) {
  FunctionPrinter printer(module, fn);
  return printer.Print();
}

std::string PrintModule(const Module& module) {
  std::ostringstream os;
  os << "module \"" << module.name() << "\"\n\n";

  for (const StructType* st : module.types().named_structs()) {
    if (st->name() == kMetapoolStructName) {
      continue;  // Implicitly known.
    }
    os << "%" << st->name() << " = type ";
    if (st->IsOpaque()) {
      os << "opaque\n";
      continue;
    }
    os << "{ ";
    for (size_t i = 0; i < st->fields().size(); ++i) {
      if (i != 0) {
        os << ", ";
      }
      os << st->fields()[i]->ToString();
    }
    os << " }\n";
  }
  os << "\n";

  for (const auto& [name, decl] : module.metapools()) {
    os << "metapool " << name;
    if (decl.type_homogeneous && decl.element_type != nullptr) {
      os << " th " << decl.element_type->ToString();
    }
    if (decl.complete) {
      os << " complete";
    }
    if (decl.user_reachable) {
      os << " user";
    }
    if (decl.classified) {
      os << " classified";
    }
    os << "\n";
  }
  if (!module.metapools().empty()) {
    os << "\n";
  }

  for (size_t i = 0; i < module.target_sets().size(); ++i) {
    os << "targetset " << i << " =";
    for (const std::string& f : module.target_sets()[i]) {
      os << " @" << f;
    }
    os << "\n";
  }
  if (!module.target_sets().empty()) {
    os << "\n";
  }

  for (const auto& gv : module.globals()) {
    if (IsMetapoolHandle(gv.get())) {
      continue;  // Reconstructed from metapool declarations at parse time.
    }
    if (gv->is_external()) {
      os << "extern ";
    }
    os << "global @" << gv->name() << " : " << gv->value_type()->ToString();
    if (gv->has_int_initializer()) {
      os << " = " << gv->int_initializer();
    }
    const std::string& mp = module.MetapoolOf(gv.get());
    if (!mp.empty()) {
      os << " !" << mp;
    }
    os << "\n";
  }
  os << "\n";

  for (const auto& fn : module.functions()) {
    if (!fn->is_declaration()) {
      continue;
    }
    if (LookupIntrinsic(fn->name()) != Intrinsic::kNone) {
      continue;  // Intrinsics are implicitly declared.
    }
    const FunctionType* ft = fn->function_type();
    os << "declare " << ft->return_type()->ToString() << " @" << fn->name()
       << "(";
    for (size_t i = 0; i < ft->params().size(); ++i) {
      if (i != 0) {
        os << ", ";
      }
      os << ft->params()[i]->ToString();
    }
    if (ft->is_vararg()) {
      os << (ft->params().empty() ? "..." : ", ...");
    }
    os << ")\n";
  }
  os << "\n";

  for (const auto& fn : module.functions()) {
    if (fn->is_declaration()) {
      continue;
    }
    os << PrintFunction(module, *fn) << "\n";
  }
  return os.str();
}

}  // namespace sva::vir
