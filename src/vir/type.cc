#include "src/vir/type.h"

#include <algorithm>
#include <cassert>

#include "src/support/strings.h"

namespace sva::vir {

void StructType::SetBody(std::vector<const Type*> fields) {
  assert(opaque_ && "SetBody on a struct that already has a body");
  fields_ = std::move(fields);
  opaque_ = false;
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kInt:
      return StrCat("i", static_cast<const IntType*>(this)->bits());
    case TypeKind::kFloat:
      return StrCat("f", static_cast<const FloatType*>(this)->bits());
    case TypeKind::kPointer:
      return StrCat(static_cast<const PointerType*>(this)->pointee()->ToString(),
                    "*");
    case TypeKind::kArray: {
      const auto* at = static_cast<const ArrayType*>(this);
      return StrCat("[", at->length(), " x ", at->element()->ToString(), "]");
    }
    case TypeKind::kStruct: {
      const auto* st = static_cast<const StructType*>(this);
      if (!st->name().empty()) {
        return StrCat("%", st->name());
      }
      std::string out = "{ ";
      for (size_t i = 0; i < st->fields().size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += st->fields()[i]->ToString();
      }
      out += " }";
      return out;
    }
    case TypeKind::kFunction: {
      const auto* ft = static_cast<const FunctionType*>(this);
      std::string out = ft->return_type()->ToString() + " (";
      for (size_t i = 0; i < ft->params().size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += ft->params()[i]->ToString();
      }
      if (ft->is_vararg()) {
        out += ft->params().empty() ? "..." : ", ...";
      }
      out += ")";
      return out;
    }
  }
  return "<bad-type>";
}

TypeContext::TypeContext() {
  auto v = std::unique_ptr<Type>(new Type(TypeKind::kVoid));
  void_ = v.get();
  owned_.push_back(std::move(v));
}

const IntType* TypeContext::IntTy(unsigned bits) {
  assert(bits == 1 || bits == 8 || bits == 16 || bits == 32 || bits == 64);
  auto it = ints_.find(bits);
  if (it != ints_.end()) {
    return it->second;
  }
  auto t = std::unique_ptr<IntType>(new IntType(bits));
  const IntType* raw = t.get();
  owned_.push_back(std::move(t));
  ints_[bits] = raw;
  return raw;
}

const FloatType* TypeContext::FloatTy(unsigned bits) {
  assert(bits == 32 || bits == 64);
  auto it = floats_.find(bits);
  if (it != floats_.end()) {
    return it->second;
  }
  auto t = std::unique_ptr<FloatType>(new FloatType(bits));
  const FloatType* raw = t.get();
  owned_.push_back(std::move(t));
  floats_[bits] = raw;
  return raw;
}

const PointerType* TypeContext::PointerTo(const Type* pointee) {
  auto it = pointers_.find(pointee);
  if (it != pointers_.end()) {
    return it->second;
  }
  auto t = std::unique_ptr<PointerType>(new PointerType(pointee));
  const PointerType* raw = t.get();
  owned_.push_back(std::move(t));
  pointers_[pointee] = raw;
  return raw;
}

const ArrayType* TypeContext::ArrayOf(const Type* element, uint64_t length) {
  auto key = std::make_pair(element, length);
  auto it = arrays_.find(key);
  if (it != arrays_.end()) {
    return it->second;
  }
  auto t = std::unique_ptr<ArrayType>(new ArrayType(element, length));
  const ArrayType* raw = t.get();
  owned_.push_back(std::move(t));
  arrays_[key] = raw;
  return raw;
}

const StructType* TypeContext::Struct(const std::vector<const Type*>& fields) {
  auto it = literal_structs_.find(fields);
  if (it != literal_structs_.end()) {
    return it->second;
  }
  auto t = std::unique_ptr<StructType>(new StructType("", fields, false));
  const StructType* raw = t.get();
  owned_.push_back(std::move(t));
  literal_structs_[fields] = raw;
  return raw;
}

StructType* TypeContext::NamedStruct(const std::string& name) {
  auto it = named_structs_.find(name);
  if (it != named_structs_.end()) {
    return it->second;
  }
  auto t = std::unique_ptr<StructType>(new StructType(name, {}, true));
  StructType* raw = t.get();
  owned_.push_back(std::move(t));
  named_structs_[name] = raw;
  named_order_.push_back(raw);
  return raw;
}

StructType* TypeContext::NamedStruct(const std::string& name,
                                     const std::vector<const Type*>& fields) {
  StructType* st = NamedStruct(name);
  if (st->IsOpaque()) {
    st->SetBody(fields);
  }
  return st;
}

StructType* TypeContext::FindNamedStruct(const std::string& name) const {
  auto it = named_structs_.find(name);
  return it == named_structs_.end() ? nullptr : it->second;
}

const FunctionType* TypeContext::FunctionTy(
    const Type* ret, const std::vector<const Type*>& params, bool vararg) {
  auto key = std::make_tuple(ret, params, vararg);
  auto it = functions_.find(key);
  if (it != functions_.end()) {
    return it->second;
  }
  auto t = std::unique_ptr<FunctionType>(new FunctionType(ret, params, vararg));
  const FunctionType* raw = t.get();
  owned_.push_back(std::move(t));
  functions_[key] = raw;
  return raw;
}

uint64_t AlignOf(const Type* type) {
  switch (type->kind()) {
    case TypeKind::kVoid:
      return 1;
    case TypeKind::kInt: {
      unsigned bits = static_cast<const IntType*>(type)->bits();
      return bits <= 8 ? 1 : bits / 8;
    }
    case TypeKind::kFloat:
      return static_cast<const FloatType*>(type)->bits() / 8;
    case TypeKind::kPointer:
    case TypeKind::kFunction:
      return 8;
    case TypeKind::kArray:
      return AlignOf(static_cast<const ArrayType*>(type)->element());
    case TypeKind::kStruct: {
      const auto* st = static_cast<const StructType*>(type);
      uint64_t align = 1;
      for (const Type* f : st->fields()) {
        align = std::max(align, AlignOf(f));
      }
      return align;
    }
  }
  return 1;
}

uint64_t SizeOf(const Type* type) {
  switch (type->kind()) {
    case TypeKind::kVoid:
      return 0;
    case TypeKind::kInt: {
      unsigned bits = static_cast<const IntType*>(type)->bits();
      return bits <= 8 ? 1 : bits / 8;
    }
    case TypeKind::kFloat:
      return static_cast<const FloatType*>(type)->bits() / 8;
    case TypeKind::kPointer:
    case TypeKind::kFunction:
      return 8;
    case TypeKind::kArray: {
      const auto* at = static_cast<const ArrayType*>(type);
      return SizeOf(at->element()) * at->length();
    }
    case TypeKind::kStruct: {
      const auto* st = static_cast<const StructType*>(type);
      if (st->IsOpaque()) {
        return 0;  // No layout; IsSized() is the queryable marker.
      }
      uint64_t offset = 0;
      for (const Type* f : st->fields()) {
        uint64_t align = AlignOf(f);
        offset = (offset + align - 1) / align * align;
        offset += SizeOf(f);
      }
      uint64_t align = AlignOf(st);
      offset = (offset + align - 1) / align * align;
      return offset;
    }
  }
  return 0;
}

bool IsSized(const Type* type) {
  switch (type->kind()) {
    case TypeKind::kVoid:
    case TypeKind::kInt:
    case TypeKind::kFloat:
    case TypeKind::kPointer:
    case TypeKind::kFunction:
      return true;
    case TypeKind::kArray:
      return IsSized(static_cast<const ArrayType*>(type)->element());
    case TypeKind::kStruct: {
      const auto* st = static_cast<const StructType*>(type);
      if (st->IsOpaque()) {
        return false;
      }
      for (const Type* f : st->fields()) {
        if (!IsSized(f)) {
          return false;
        }
      }
      return true;
    }
  }
  return true;
}

namespace {
bool TypeContainsMemberImpl(const Type* hay, const Type* needle, int depth) {
  if (depth > 16) {
    return false;
  }
  while (hay->IsArray()) {
    hay = static_cast<const ArrayType*>(hay)->element();
  }
  while (needle->IsArray()) {
    needle = static_cast<const ArrayType*>(needle)->element();
  }
  if (hay == needle) {
    return true;
  }
  if (hay->IsStruct()) {
    const auto* st = static_cast<const StructType*>(hay);
    if (st->IsOpaque()) {
      return false;
    }
    for (const Type* f : st->fields()) {
      if (TypeContainsMemberImpl(f, needle, depth + 1)) {
        return true;
      }
    }
  }
  return false;
}
}  // namespace

bool TypeContainsMember(const Type* hay, const Type* needle) {
  return TypeContainsMemberImpl(hay, needle, 0);
}

uint64_t StructFieldOffset(const StructType* type, unsigned index) {
  assert(index < type->fields().size());
  uint64_t offset = 0;
  for (unsigned i = 0; i <= index; ++i) {
    const Type* f = type->fields()[i];
    uint64_t align = AlignOf(f);
    offset = (offset + align - 1) / align * align;
    if (i == index) {
      return offset;
    }
    offset += SizeOf(f);
  }
  return offset;
}

}  // namespace sva::vir
