// A Module is the SVA object file (Section 3.1): functions, global variables,
// type declarations, and — after the safety-checking compiler runs — the
// metapool declarations and per-pointer metapool annotations that the
// bytecode verifier type-checks (Section 5).
#ifndef SVA_SRC_VIR_MODULE_H_
#define SVA_SRC_VIR_MODULE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/vir/function.h"
#include "src/vir/type.h"
#include "src/vir/value.h"

namespace sva::vir {

// Declared properties of one metapool, encoded as type attributes on the
// bytecode. The verifier re-checks the annotation consistency; the runtime
// uses th/type_size to enforce the allocator alignment contract.
struct MetapoolDecl {
  std::string name;
  bool type_homogeneous = false;
  bool complete = false;
  // Reachable from system call pointer arguments: the SVM registers all of
  // userspace as one object in this pool at load time (Section 4.6).
  bool user_reachable = false;
  // Section 9 extension ("encoding security policies as types"): pools
  // holding security-sensitive objects. The type checker enforces a simple
  // information-flow rule: pointers into classified pools may not be stored
  // into objects of unclassified pools (no capability leaks), checked
  // purely locally like the other metapool typing rules.
  bool classified = false;
  // Element type for TH pools (empty string otherwise, in serialized form).
  const Type* element_type = nullptr;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  TypeContext& types() { return types_; }
  const TypeContext& types() const { return types_; }

  // --- Functions -----------------------------------------------------------
  Function* CreateFunction(const std::string& name, const FunctionType* type,
                           bool is_declaration,
                           const std::vector<std::string>& arg_names = {});
  Function* GetFunction(const std::string& name) const;
  // Declares if absent, returns existing otherwise.
  Function* GetOrDeclareFunction(const std::string& name,
                                 const FunctionType* type);
  const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }

  // --- Globals -------------------------------------------------------------
  GlobalVariable* CreateGlobal(const std::string& name, const Type* value_type,
                               bool is_external = false);
  GlobalVariable* GetGlobal(const std::string& name) const;
  const std::vector<std::unique_ptr<GlobalVariable>>& globals() const {
    return globals_;
  }

  // --- Constants (interned, owned by the module) ----------------------------
  ConstantInt* GetInt(const IntType* type, uint64_t bits);
  ConstantInt* GetInt32(uint64_t v) { return GetInt(types_.I32(), v); }
  ConstantInt* GetInt64(uint64_t v) { return GetInt(types_.I64(), v); }
  ConstantFloat* GetFloat(const FloatType* type, double value);
  ConstantNull* GetNull(const PointerType* type);
  ConstantUndef* GetUndef(const Type* type);

  // --- Metapool annotations (Sections 4.3, 5) -------------------------------
  MetapoolDecl& DeclareMetapool(const std::string& name);
  const MetapoolDecl* FindMetapool(const std::string& name) const;
  const std::map<std::string, MetapoolDecl>& metapools() const {
    return metapools_;
  }
  std::map<std::string, MetapoolDecl>& mutable_metapools() {
    return metapools_;
  }

  // Binds a pointer-typed value to its metapool. These are the `int *M1 Q`
  // style type qualifiers of Section 5, stored out-of-band.
  void AnnotateValue(const Value* v, const std::string& metapool) {
    value_metapool_[v] = metapool;
  }
  // Returns the metapool name for `v`, or empty string.
  const std::string& MetapoolOf(const Value* v) const;
  const std::map<const Value*, std::string>& value_annotations() const {
    return value_metapool_;
  }
  std::map<const Value*, std::string>& mutable_value_annotations() {
    return value_metapool_;
  }

  // Indirect-call signature assertions (Section 4.8): call sites the kernel
  // programmer annotated as "all callees match this signature".
  void AddSignatureAssertion(const Value* call) {
    signature_asserted_.push_back(call);
  }
  bool HasSignatureAssertion(const Value* call) const;
  const std::vector<const Value*>& signature_assertions() const {
    return signature_asserted_;
  }

  // Indirect-call target sets computed by the call-graph analysis. Each set
  // lists the functions an sva.indirectcheck with that set id accepts.
  uint64_t AddTargetSet(std::vector<std::string> function_names) {
    target_sets_.push_back(std::move(function_names));
    return target_sets_.size() - 1;
  }
  const std::vector<std::vector<std::string>>& target_sets() const {
    return target_sets_;
  }

 private:
  std::string name_;
  TypeContext types_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::map<std::string, Function*> function_map_;
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::map<std::string, GlobalVariable*> global_map_;

  std::vector<std::unique_ptr<Value>> constants_;
  std::map<std::pair<const Type*, uint64_t>, ConstantInt*> int_constants_;
  std::map<std::pair<const Type*, double>, ConstantFloat*> float_constants_;
  std::map<const Type*, ConstantNull*> null_constants_;
  std::map<const Type*, ConstantUndef*> undef_constants_;

  std::map<std::string, MetapoolDecl> metapools_;
  std::map<const Value*, std::string> value_metapool_;
  std::vector<const Value*> signature_asserted_;
  std::vector<std::vector<std::string>> target_sets_;
};

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_MODULE_H_
