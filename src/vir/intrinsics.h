// SVA intrinsic operations, modeled as calls to well-known declarations.
//
// - pchk.reg.obj / pchk.drop.obj: object registration (Table 3).
// - sva.boundscheck / sva.boundscheck.direct / sva.getbounds: array bounds
//   checks (Section 4.5, check #1).
// - sva.lscheck: load-store check for non-TH metapools (check #2).
// - sva.indirectcheck: indirect call check (check #3).
// - sva.pseudo.alloc: manufactured-address registration (Section 4.7).
// - sva.register.syscall: the SVA-OS syscall registration hook the pointer
//   analysis inspects to resolve internal system calls (Section 4.8).
//
// The SVM interpreter executes these natively against the MetaPool runtime;
// they never appear as ordinary user functions.
#ifndef SVA_SRC_VIR_INTRINSICS_H_
#define SVA_SRC_VIR_INTRINSICS_H_

#include <string_view>

#include "src/vir/module.h"

namespace sva::vir {

enum class Intrinsic {
  kNone = 0,
  kPchkRegObj,        // void pchk.reg.obj(%sva.metapool* MP, i8* p, i64 len)
  kPchkDropObj,       // void pchk.drop.obj(%sva.metapool* MP, i8* p)
  kBoundsCheck,       // void sva.boundscheck(%sva.metapool* MP, i8* src, i8* derived)
  kBoundsCheckDirect,  // void sva.boundscheck.direct(i8* start, i8* derived, i8* end)
  kGetBounds,         // void sva.getbounds(%sva.metapool* MP, i8* p, i8** s, i8** e)
  kLSCheck,           // void sva.lscheck(%sva.metapool* MP, i8* p)
  kIndirectCheck,     // void sva.indirectcheck(i8* fp, i64 target_set_id)
  kPseudoAlloc,       // void sva.pseudo.alloc(i64 start, i64 end)
  kRegisterSyscall,   // void sva.register.syscall(i64 number, i8* handler)
};

// The name of the opaque struct type used for metapool handles in bytecode.
inline constexpr std::string_view kMetapoolStructName = "sva.metapool";

// Maps a function name to its intrinsic id (kNone if not an intrinsic).
Intrinsic LookupIntrinsic(std::string_view name);

// The canonical name of an intrinsic.
std::string_view IntrinsicName(Intrinsic which);

// Declares (or returns the existing declaration of) an intrinsic in `module`.
Function* DeclareIntrinsic(Module& module, Intrinsic which);

// Returns (creating if needed) the global variable that serves as the
// run-time handle for metapool `name` (type %sva.metapool).
GlobalVariable* MetapoolHandle(Module& module, const std::string& name);

// True if `gv` is a metapool handle global.
bool IsMetapoolHandle(const GlobalVariable* gv);

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_INTRINSICS_H_
