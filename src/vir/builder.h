// IRBuilder: convenience construction of SVA-Core instructions at an
// insertion point. Used by tests, the exploit/corpus generators, and the
// safety-checking compiler's instrumentation pass.
#ifndef SVA_SRC_VIR_BUILDER_H_
#define SVA_SRC_VIR_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/support/status.h"
#include "src/vir/module.h"

namespace sva::vir {

// Computes the result *pointee* type of a getelementptr with the given base
// pointee type and indices (the result is a pointer to the returned type).
// Returns an error for malformed index lists.
Result<const Type*> GepIndexedType(const Type* base_pointee,
                                   const std::vector<Value*>& indices);

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module) {}

  Module& module() { return module_; }
  TypeContext& types() { return module_.types(); }

  void SetInsertPoint(BasicBlock* bb) {
    block_ = bb;
    insert_index_ = bb->instructions().size();
    track_insert_index_ = false;
  }
  // Inserts before instruction at `index` in `bb`; subsequent insertions
  // keep appending before the same original instruction.
  void SetInsertPoint(BasicBlock* bb, size_t index) {
    block_ = bb;
    insert_index_ = index;
    track_insert_index_ = true;
  }
  BasicBlock* insert_block() const { return block_; }

  // --- Arithmetic ---------------------------------------------------------
  Value* CreateBinary(Opcode op, Value* lhs, Value* rhs, std::string name = "");
  Value* CreateAdd(Value* l, Value* r, std::string name = "") {
    return CreateBinary(Opcode::kAdd, l, r, std::move(name));
  }
  Value* CreateSub(Value* l, Value* r, std::string name = "") {
    return CreateBinary(Opcode::kSub, l, r, std::move(name));
  }
  Value* CreateMul(Value* l, Value* r, std::string name = "") {
    return CreateBinary(Opcode::kMul, l, r, std::move(name));
  }
  Value* CreateAnd(Value* l, Value* r, std::string name = "") {
    return CreateBinary(Opcode::kAnd, l, r, std::move(name));
  }
  Value* CreateOr(Value* l, Value* r, std::string name = "") {
    return CreateBinary(Opcode::kOr, l, r, std::move(name));
  }
  Value* CreateShl(Value* l, Value* r, std::string name = "") {
    return CreateBinary(Opcode::kShl, l, r, std::move(name));
  }

  Value* CreateICmp(CmpPred pred, Value* lhs, Value* rhs,
                    std::string name = "");
  Value* CreateFCmp(CmpPred pred, Value* lhs, Value* rhs,
                    std::string name = "");
  Value* CreateSelect(Value* cond, Value* tval, Value* fval,
                      std::string name = "");

  // --- Casts ---------------------------------------------------------------
  Value* CreateCast(Opcode op, Value* src, const Type* dst,
                    std::string name = "");
  Value* CreateBitcast(Value* src, const Type* dst, std::string name = "") {
    return CreateCast(Opcode::kBitcast, src, dst, std::move(name));
  }
  Value* CreateZExt(Value* src, const Type* dst, std::string name = "") {
    return CreateCast(Opcode::kZExt, src, dst, std::move(name));
  }
  Value* CreateSExt(Value* src, const Type* dst, std::string name = "") {
    return CreateCast(Opcode::kSExt, src, dst, std::move(name));
  }
  Value* CreateTrunc(Value* src, const Type* dst, std::string name = "") {
    return CreateCast(Opcode::kTrunc, src, dst, std::move(name));
  }
  Value* CreatePtrToInt(Value* src, const Type* dst, std::string name = "") {
    return CreateCast(Opcode::kPtrToInt, src, dst, std::move(name));
  }
  Value* CreateIntToPtr(Value* src, const Type* dst, std::string name = "") {
    return CreateCast(Opcode::kIntToPtr, src, dst, std::move(name));
  }

  // --- Memory --------------------------------------------------------------
  Value* CreateAlloca(const Type* allocated, Value* count,
                      std::string name = "");
  Value* CreateMalloc(const Type* allocated, Value* count,
                      std::string name = "");
  void CreateFree(Value* ptr);
  Value* CreateLoad(Value* ptr, std::string name = "");
  void CreateStore(Value* value, Value* ptr);
  Value* CreateGEP(Value* base, std::vector<Value*> indices,
                   std::string name = "");
  Value* CreateAtomicLIS(Value* ptr, Value* delta, std::string name = "");
  Value* CreateCmpXchg(Value* ptr, Value* expected, Value* desired,
                       std::string name = "");
  void CreateWriteBarrier();

  // --- Calls & control flow --------------------------------------------------
  Value* CreateCall(Value* callee, std::vector<Value*> args,
                    std::string name = "");
  PhiInst* CreatePhi(const Type* type, std::string name = "");
  void CreateBr(BasicBlock* target);
  void CreateCondBr(Value* cond, BasicBlock* if_true, BasicBlock* if_false);
  SwitchInst* CreateSwitch(Value* value, BasicBlock* default_target);
  void CreateRet(Value* value);
  void CreateRetVoid();
  void CreateUnreachable();

  // --- Constants (forwarders) ------------------------------------------------
  ConstantInt* Int32(uint64_t v) { return module_.GetInt32(v); }
  ConstantInt* Int64(uint64_t v) { return module_.GetInt64(v); }
  ConstantInt* Int8(uint64_t v) { return module_.GetInt(types().I8(), v); }
  ConstantInt* Int1(bool v) { return module_.GetInt(types().I1(), v ? 1 : 0); }
  ConstantNull* Null(const Type* pointee) {
    return module_.GetNull(types().PointerTo(pointee));
  }

 private:
  Instruction* Insert(std::unique_ptr<Instruction> inst);

  Module& module_;
  BasicBlock* block_ = nullptr;
  size_t insert_index_ = 0;
  bool track_insert_index_ = false;
};

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_BUILDER_H_
