// The SVA-Core type system (Section 3.1/3.2 of the paper).
//
// The virtual instruction set is typed: every value carries a Type, and the
// safety analyses (points-to, type-homogeneity inference, metapool typing)
// are driven by these types. Types are immutable and interned in a
// TypeContext, so pointer equality is type equality — with the single
// exception of named struct types, whose bodies may be set once after
// creation to permit recursive kernel data structures (e.g. list heads).
#ifndef SVA_SRC_VIR_TYPE_H_
#define SVA_SRC_VIR_TYPE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace sva::vir {

enum class TypeKind {
  kVoid,
  kInt,       // i1, i8, i16, i32, i64
  kFloat,     // f32, f64
  kPointer,   // T*
  kArray,     // [N x T]
  kStruct,    // { T0, T1, ... }, optionally named
  kFunction,  // R (A0, A1, ...) possibly vararg
};

class TypeContext;

// Base class for all types. Instances are owned by a TypeContext and live as
// long as it does.
class Type {
 public:
  virtual ~Type() = default;

  TypeKind kind() const { return kind_; }

  bool IsVoid() const { return kind_ == TypeKind::kVoid; }
  bool IsInt() const { return kind_ == TypeKind::kInt; }
  bool IsFloat() const { return kind_ == TypeKind::kFloat; }
  bool IsPointer() const { return kind_ == TypeKind::kPointer; }
  bool IsArray() const { return kind_ == TypeKind::kArray; }
  bool IsStruct() const { return kind_ == TypeKind::kStruct; }
  bool IsFunction() const { return kind_ == TypeKind::kFunction; }
  // Integer or float.
  bool IsArithmetic() const { return IsInt() || IsFloat(); }
  // A type that can be the element of a load/store (not void/function).
  bool IsFirstClass() const { return !IsVoid() && !IsFunction(); }

  // Renders the type in the textual bytecode syntax (e.g. "i32**",
  // "[4 x %struct.task]").
  std::string ToString() const;

 protected:
  explicit Type(TypeKind kind) : kind_(kind) {}

 private:
  friend class TypeContext;
  const TypeKind kind_;
};

class IntType : public Type {
 public:
  unsigned bits() const { return bits_; }

 private:
  friend class TypeContext;
  explicit IntType(unsigned bits) : Type(TypeKind::kInt), bits_(bits) {}
  const unsigned bits_;
};

class FloatType : public Type {
 public:
  unsigned bits() const { return bits_; }

 private:
  friend class TypeContext;
  explicit FloatType(unsigned bits) : Type(TypeKind::kFloat), bits_(bits) {}
  const unsigned bits_;
};

class PointerType : public Type {
 public:
  const Type* pointee() const { return pointee_; }

 private:
  friend class TypeContext;
  explicit PointerType(const Type* pointee)
      : Type(TypeKind::kPointer), pointee_(pointee) {}
  const Type* const pointee_;
};

class ArrayType : public Type {
 public:
  const Type* element() const { return element_; }
  uint64_t length() const { return length_; }

 private:
  friend class TypeContext;
  ArrayType(const Type* element, uint64_t length)
      : Type(TypeKind::kArray), element_(element), length_(length) {}
  const Type* const element_;
  const uint64_t length_;
};

class StructType : public Type {
 public:
  // Empty for anonymous (literal) structs.
  const std::string& name() const { return name_; }
  bool IsOpaque() const { return opaque_; }
  const std::vector<const Type*>& fields() const { return fields_; }

  // Sets the body of a named struct created opaque. May be called once.
  void SetBody(std::vector<const Type*> fields);

 private:
  friend class TypeContext;
  StructType(std::string name, std::vector<const Type*> fields, bool opaque)
      : Type(TypeKind::kStruct),
        name_(std::move(name)),
        fields_(std::move(fields)),
        opaque_(opaque) {}
  const std::string name_;
  std::vector<const Type*> fields_;
  bool opaque_;
};

class FunctionType : public Type {
 public:
  const Type* return_type() const { return return_type_; }
  const std::vector<const Type*>& params() const { return params_; }
  bool is_vararg() const { return vararg_; }

 private:
  friend class TypeContext;
  FunctionType(const Type* ret, std::vector<const Type*> params, bool vararg)
      : Type(TypeKind::kFunction),
        return_type_(ret),
        params_(std::move(params)),
        vararg_(vararg) {}
  const Type* const return_type_;
  const std::vector<const Type*> params_;
  const bool vararg_;
};

// Owns and interns all types of one Module. Interning makes `const Type*`
// comparison sufficient for type equality everywhere in the compiler.
class TypeContext {
 public:
  TypeContext();
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;

  const Type* VoidTy() const { return void_; }
  const IntType* IntTy(unsigned bits);
  const IntType* I1() { return IntTy(1); }
  const IntType* I8() { return IntTy(8); }
  const IntType* I16() { return IntTy(16); }
  const IntType* I32() { return IntTy(32); }
  const IntType* I64() { return IntTy(64); }
  const FloatType* FloatTy(unsigned bits);
  const FloatType* F32() { return FloatTy(32); }
  const FloatType* F64() { return FloatTy(64); }
  const PointerType* PointerTo(const Type* pointee);
  const ArrayType* ArrayOf(const Type* element, uint64_t length);
  // Anonymous literal struct; structurally interned.
  const StructType* Struct(const std::vector<const Type*>& fields);
  // Named struct. Returns the existing one if already created (opaque structs
  // may later receive a body via SetBody).
  StructType* NamedStruct(const std::string& name);
  StructType* NamedStruct(const std::string& name,
                          const std::vector<const Type*>& fields);
  // Looks up a previously created named struct or returns nullptr.
  StructType* FindNamedStruct(const std::string& name) const;
  const FunctionType* FunctionTy(const Type* ret,
                                 const std::vector<const Type*>& params,
                                 bool vararg = false);

  // All named structs, in creation order (for printing).
  const std::vector<StructType*>& named_structs() const { return named_order_; }

 private:
  std::vector<std::unique_ptr<Type>> owned_;
  const Type* void_;
  std::map<unsigned, const IntType*> ints_;
  std::map<unsigned, const FloatType*> floats_;
  std::map<const Type*, const PointerType*> pointers_;
  std::map<std::pair<const Type*, uint64_t>, const ArrayType*> arrays_;
  std::map<std::vector<const Type*>, const StructType*> literal_structs_;
  std::map<std::string, StructType*> named_structs_;
  std::vector<StructType*> named_order_;
  std::map<std::tuple<const Type*, std::vector<const Type*>, bool>,
           const FunctionType*>
      functions_;
};

// Byte size of a value of this type in the virtual memory model used by the
// SVM translator/interpreter: i1/i8 -> 1, i16 -> 2, i32/f32 -> 4,
// i64/f64/pointers -> 8, arrays/structs -> aggregate with natural alignment.
// Unsized types (see IsSized) report 0: opaque structs have no layout, and
// untrusted modules can name them in sized positions, so this must degrade
// to "zero bytes" rather than assert.
uint64_t SizeOf(const Type* type);

// Whether the type has a defined layout. False for opaque named structs and
// any aggregate that (recursively) contains one; such types may only be
// used behind a pointer, and allocations/loads of them are rejected rather
// than sized.
bool IsSized(const Type* type);

// Natural alignment of the type (power of two, <= 8).
uint64_t AlignOf(const Type* type);

// Byte offset of struct field `index` honouring natural alignment padding.
uint64_t StructFieldOffset(const StructType* type, unsigned index);

// True if `needle` equals `hay` or is a (recursively nested) member type of
// it, after normalizing arrays to their element type. Used by the type
// checker and the points-to type tracking: accessing a field of a struct
// object does not break the object's type homogeneity.
bool TypeContainsMember(const Type* hay, const Type* needle);

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_TYPE_H_
