#include "src/vir/structural_verifier.h"

#include <algorithm>
#include <set>

#include "src/support/strings.h"
#include "src/vir/builder.h"
#include "src/vir/instructions.h"

namespace sva::vir {
namespace {

// Reverse post-order over reachable blocks.
std::vector<const BasicBlock*> ReversePostOrder(const Function& fn) {
  std::vector<const BasicBlock*> order;
  std::set<const BasicBlock*> visited;
  std::vector<std::pair<const BasicBlock*, size_t>> stack;
  const BasicBlock* entry = fn.entry();
  if (entry == nullptr) {
    return order;
  }
  stack.emplace_back(entry, 0);
  visited.insert(entry);
  std::vector<const BasicBlock*> post;
  while (!stack.empty()) {
    auto& [bb, next] = stack.back();
    std::vector<BasicBlock*> succs = bb->Successors();
    if (next < succs.size()) {
      BasicBlock* s = succs[next++];
      if (visited.insert(s).second) {
        stack.emplace_back(s, 0);
      }
    } else {
      post.push_back(bb);
      stack.pop_back();
    }
  }
  order.assign(post.rbegin(), post.rend());
  return order;
}

}  // namespace

std::map<const BasicBlock*, std::vector<const BasicBlock*>> PredecessorMap(
    const Function& fn) {
  std::map<const BasicBlock*, std::vector<const BasicBlock*>> preds;
  for (const auto& bb : fn.blocks()) {
    for (BasicBlock* succ : bb->Successors()) {
      preds[succ].push_back(bb.get());
    }
  }
  return preds;
}

DominatorTree::DominatorTree(const Function& fn) {
  std::vector<const BasicBlock*> rpo = ReversePostOrder(fn);
  for (size_t i = 0; i < rpo.size(); ++i) {
    rpo_index_[rpo[i]] = static_cast<int>(i);
  }
  if (rpo.empty()) {
    return;
  }
  auto preds = PredecessorMap(fn);
  const BasicBlock* entry = rpo.front();
  idom_[entry] = entry;

  auto intersect = [&](const BasicBlock* a,
                       const BasicBlock* b) -> const BasicBlock* {
    while (a != b) {
      while (rpo_index_.at(a) > rpo_index_.at(b)) {
        a = idom_.at(a);
      }
      while (rpo_index_.at(b) > rpo_index_.at(a)) {
        b = idom_.at(b);
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 1; i < rpo.size(); ++i) {
      const BasicBlock* bb = rpo[i];
      const BasicBlock* new_idom = nullptr;
      for (const BasicBlock* p : preds[bb]) {
        if (idom_.find(p) == idom_.end()) {
          continue;  // Unreachable or not yet processed.
        }
        new_idom = new_idom == nullptr ? p : intersect(p, new_idom);
      }
      if (new_idom != nullptr) {
        auto it = idom_.find(bb);
        if (it == idom_.end() || it->second != new_idom) {
          idom_[bb] = new_idom;
          changed = true;
        }
      }
    }
  }
}

const BasicBlock* DominatorTree::ImmediateDominator(
    const BasicBlock* bb) const {
  auto it = idom_.find(bb);
  if (it == idom_.end() || it->second == bb) {
    return nullptr;
  }
  return it->second;
}

bool DominatorTree::Dominates(const BasicBlock* a, const BasicBlock* b) const {
  if (!IsReachable(a) || !IsReachable(b)) {
    return false;
  }
  const BasicBlock* cur = b;
  while (true) {
    if (cur == a) {
      return true;
    }
    auto it = idom_.find(cur);
    if (it == idom_.end() || it->second == cur) {
      return false;
    }
    cur = it->second;
  }
}

bool DominatorTree::IsReachable(const BasicBlock* bb) const {
  return rpo_index_.find(bb) != rpo_index_.end();
}

Status VerifyFunction(const Module& module, const Function& fn) {
  (void)module;
  if (fn.is_declaration()) {
    return OkStatus();
  }
  if (fn.blocks().empty()) {
    return VerificationFailed(
        StrCat("@", fn.name(), ": defined function has no blocks"));
  }
  auto preds = PredecessorMap(fn);

  // Every block must end with exactly one terminator, and only at the end.
  for (const auto& bb : fn.blocks()) {
    if (bb->terminator() == nullptr) {
      return VerificationFailed(
          StrCat("@", fn.name(), " block ", bb->name(), ": no terminator"));
    }
    for (size_t i = 0; i + 1 < bb->instructions().size(); ++i) {
      if (bb->instructions()[i]->IsTerminator()) {
        return VerificationFailed(StrCat("@", fn.name(), " block ", bb->name(),
                                         ": terminator in mid-block"));
      }
      if (bb->instructions()[i]->opcode() == Opcode::kPhi &&
          i > 0 &&
          bb->instructions()[i - 1]->opcode() != Opcode::kPhi) {
        return VerificationFailed(StrCat("@", fn.name(), " block ", bb->name(),
                                         ": phi not at block start"));
      }
    }
  }

  // Type agreement checks.
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->IsBinaryOp()) {
        if (inst->operand(0)->type() != inst->operand(1)->type() ||
            inst->operand(0)->type() != inst->type()) {
          return VerificationFailed(StrCat("@", fn.name(),
                                           ": binary operand type mismatch"));
        }
      }
      switch (inst->opcode()) {
        case Opcode::kLoad: {
          const auto* load = static_cast<const LoadInst*>(inst.get());
          const Type* pt = load->pointer()->type();
          if (!pt->IsPointer() ||
              static_cast<const PointerType*>(pt)->pointee() != inst->type()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": load type mismatch"));
          }
          break;
        }
        case Opcode::kStore: {
          const auto* store = static_cast<const StoreInst*>(inst.get());
          const Type* pt = store->pointer()->type();
          if (!pt->IsPointer() ||
              static_cast<const PointerType*>(pt)->pointee() !=
                  store->stored_value()->type()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": store type mismatch"));
          }
          break;
        }
        case Opcode::kGetElementPtr: {
          const auto* gep = static_cast<const GetElementPtrInst*>(inst.get());
          if (!gep->base()->type()->IsPointer()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": gep base not a pointer"));
          }
          std::vector<Value*> indices;
          for (size_t i = 0; i < gep->num_indices(); ++i) {
            indices.push_back(gep->index(i));
          }
          Result<const Type*> indexed = GepIndexedType(
              static_cast<const PointerType*>(gep->base()->type())->pointee(),
              indices);
          if (!indexed.ok()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": ", indexed.status().message()));
          }
          if (!gep->type()->IsPointer() ||
              static_cast<const PointerType*>(gep->type())->pointee() !=
                  indexed.value()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": gep result type mismatch"));
          }
          break;
        }
        case Opcode::kCall: {
          const auto* call = static_cast<const CallInst*>(inst.get());
          const Type* ct = call->callee()->type();
          if (!ct->IsPointer() ||
              !static_cast<const PointerType*>(ct)->pointee()->IsFunction()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": call callee not a function pointer"));
          }
          const auto* ft = static_cast<const FunctionType*>(
              static_cast<const PointerType*>(ct)->pointee());
          if (ft->return_type() != inst->type()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": call return type mismatch"));
          }
          if (!ft->is_vararg() && ft->params().size() != call->num_args()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": call arity mismatch calling ",
                       call->callee()->name()));
          }
          for (size_t i = 0; i < ft->params().size() && i < call->num_args();
               ++i) {
            if (call->arg(i)->type() != ft->params()[i]) {
              return VerificationFailed(StrCat("@", fn.name(), ": call arg ", i,
                                               " type mismatch calling ",
                                               call->callee()->name()));
            }
          }
          break;
        }
        case Opcode::kAlloca:
        case Opcode::kMalloc: {
          const Type* allocated =
              inst->opcode() == Opcode::kAlloca
                  ? static_cast<const AllocaInst*>(inst.get())
                        ->allocated_type()
                  : static_cast<const MallocInst*>(inst.get())
                        ->allocated_type();
          if (!IsSized(allocated)) {
            return VerificationFailed(StrCat(
                "@", fn.name(), ": allocation of unsized (opaque) type"));
          }
          break;
        }
        case Opcode::kBr: {
          const auto* br = static_cast<const BranchInst*>(inst.get());
          if (br->is_conditional() && !br->condition()->type()->IsInt()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": branch condition not i1"));
          }
          break;
        }
        case Opcode::kRet: {
          const auto* ret = static_cast<const RetInst*>(inst.get());
          const Type* expected = fn.function_type()->return_type();
          if (ret->has_value()) {
            if (ret->value()->type() != expected) {
              return VerificationFailed(
                  StrCat("@", fn.name(), ": ret value type mismatch"));
            }
          } else if (!expected->IsVoid()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": ret void from non-void function"));
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // Phi coherence: incoming blocks exactly match predecessors.
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != Opcode::kPhi) {
        continue;
      }
      const auto* phi = static_cast<const PhiInst*>(inst.get());
      std::set<const BasicBlock*> incoming;
      for (size_t i = 0; i < phi->num_incoming(); ++i) {
        if (phi->incoming_value(i)->type() != phi->type()) {
          return VerificationFailed(
              StrCat("@", fn.name(), ": phi incoming type mismatch"));
        }
        incoming.insert(phi->incoming_block(i));
      }
      std::set<const BasicBlock*> expected(preds[bb.get()].begin(),
                                           preds[bb.get()].end());
      if (incoming != expected) {
        return VerificationFailed(StrCat(
            "@", fn.name(), " block ", bb->name(),
            ": phi incoming blocks do not match predecessors"));
      }
    }
  }

  // SSA dominance: every instruction operand that is itself an instruction
  // must dominate the use; arguments/constants always dominate.
  DominatorTree dom(fn);
  std::map<const Instruction*, std::pair<const BasicBlock*, size_t>> position;
  for (const auto& bb : fn.blocks()) {
    for (size_t i = 0; i < bb->instructions().size(); ++i) {
      position[bb->instructions()[i].get()] = {bb.get(), i};
    }
  }
  for (const auto& bb : fn.blocks()) {
    if (!dom.IsReachable(bb.get())) {
      continue;
    }
    for (size_t i = 0; i < bb->instructions().size(); ++i) {
      const Instruction* inst = bb->instructions()[i].get();
      auto check_use = [&](const Value* operand,
                           const BasicBlock* use_block,
                           size_t use_index) -> Status {
        const auto* def = dynamic_cast<const Instruction*>(operand);
        if (def == nullptr) {
          return OkStatus();
        }
        auto it = position.find(def);
        if (it == position.end()) {
          return VerificationFailed(
              StrCat("@", fn.name(), ": use of instruction from another "
                     "function"));
        }
        const auto& [def_block, def_index] = it->second;
        if (def_block == use_block) {
          if (def_index >= use_index) {
            return VerificationFailed(StrCat("@", fn.name(), " block ",
                                             use_block->name(),
                                             ": def does not precede use"));
          }
          return OkStatus();
        }
        if (!dom.Dominates(def_block, use_block)) {
          return VerificationFailed(StrCat("@", fn.name(),
                                           ": definition does not dominate "
                                           "use of %", def->name()));
        }
        return OkStatus();
      };

      if (inst->opcode() == Opcode::kPhi) {
        const auto* phi = static_cast<const PhiInst*>(inst);
        for (size_t k = 0; k < phi->num_incoming(); ++k) {
          // A phi use must dominate the end of the incoming block.
          const auto* def =
              dynamic_cast<const Instruction*>(phi->incoming_value(k));
          if (def == nullptr) {
            continue;
          }
          auto it = position.find(def);
          if (it == position.end()) {
            return VerificationFailed(
                StrCat("@", fn.name(), ": phi uses foreign instruction"));
          }
          const BasicBlock* in = phi->incoming_block(k);
          if (it->second.first != in && !dom.Dominates(it->second.first, in)) {
            return VerificationFailed(
                StrCat("@", fn.name(),
                       ": phi incoming def does not dominate incoming edge"));
          }
        }
        continue;
      }
      for (size_t oi = 0; oi < inst->num_operands(); ++oi) {
        SVA_RETURN_IF_ERROR(check_use(inst->operand(oi), bb.get(), i));
      }
    }
  }
  return OkStatus();
}

Status VerifyModule(const Module& module) {
  for (const auto& fn : module.functions()) {
    SVA_RETURN_IF_ERROR(VerifyFunction(module, *fn));
  }
  return OkStatus();
}

}  // namespace sva::vir
