// Values of the SVA-Core virtual instruction set: constants, globals,
// function arguments, and instruction results. The instruction set is in SSA
// form (Section 3.1), so every Value has exactly one definition.
#ifndef SVA_SRC_VIR_VALUE_H_
#define SVA_SRC_VIR_VALUE_H_

#include <cstdint>
#include <string>

#include "src/vir/type.h"

namespace sva::vir {

enum class ValueKind {
  kArgument,
  kConstantInt,
  kConstantFloat,
  kConstantNull,
  kConstantUndef,
  kGlobalVariable,
  kFunction,
  kInstruction,
};

class Function;

class Value {
 public:
  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueKind value_kind() const { return value_kind_; }
  const Type* type() const { return type_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  bool IsConstant() const {
    return value_kind_ == ValueKind::kConstantInt ||
           value_kind_ == ValueKind::kConstantFloat ||
           value_kind_ == ValueKind::kConstantNull ||
           value_kind_ == ValueKind::kConstantUndef ||
           value_kind_ == ValueKind::kGlobalVariable ||
           value_kind_ == ValueKind::kFunction;
  }
  bool IsInstruction() const { return value_kind_ == ValueKind::kInstruction; }

 protected:
  Value(ValueKind kind, const Type* type, std::string name)
      : value_kind_(kind), type_(type), name_(std::move(name)) {}

 private:
  const ValueKind value_kind_;
  const Type* const type_;
  std::string name_;
};

// An integer literal. Stored sign-agnostically in 64 bits; instructions
// interpret the bits as signed or unsigned as appropriate.
class ConstantInt : public Value {
 public:
  ConstantInt(const IntType* type, uint64_t bits)
      : Value(ValueKind::kConstantInt, type, ""), bits_(bits) {}

  uint64_t zext_value() const { return bits_; }
  int64_t sext_value() const {
    unsigned width = static_cast<const IntType*>(type())->bits();
    if (width == 64) {
      return static_cast<int64_t>(bits_);
    }
    uint64_t sign = uint64_t{1} << (width - 1);
    return static_cast<int64_t>((bits_ ^ sign)) - static_cast<int64_t>(sign);
  }

 private:
  const uint64_t bits_;
};

class ConstantFloat : public Value {
 public:
  ConstantFloat(const FloatType* type, double value)
      : Value(ValueKind::kConstantFloat, type, ""), value_(value) {}
  double value() const { return value_; }

 private:
  const double value_;
};

// The null pointer of a given pointer type.
class ConstantNull : public Value {
 public:
  explicit ConstantNull(const PointerType* type)
      : Value(ValueKind::kConstantNull, type, "") {}
};

// An undefined value (the result of reading uninitialized state the dataflow
// analysis in SAFECode would flag; kept for completeness of the IR).
class ConstantUndef : public Value {
 public:
  explicit ConstantUndef(const Type* type)
      : Value(ValueKind::kConstantUndef, type, "") {}
};

// A formal parameter of a Function.
class Argument : public Value {
 public:
  Argument(const Type* type, std::string name, Function* parent, unsigned index)
      : Value(ValueKind::kArgument, type, std::move(name)),
        parent_(parent),
        index_(index) {}

  Function* parent() const { return parent_; }
  unsigned index() const { return index_; }

 private:
  Function* const parent_;
  const unsigned index_;
};

// A module-level global. Its Value type is a pointer to `value_type`, like an
// LLVM global. Externals have no initializer and model objects allocated
// outside the analyzed portion of the kernel (Section 4.5 "Incomplete").
class GlobalVariable : public Value {
 public:
  GlobalVariable(const PointerType* ptr_type, const Type* value_type,
                 std::string name, bool is_external)
      : Value(ValueKind::kGlobalVariable, ptr_type, std::move(name)),
        value_type_(value_type),
        is_external_(is_external) {}

  const Type* value_type() const { return value_type_; }
  bool is_external() const { return is_external_; }

  // Optional scalar integer initializer payload, applied byte-wise at offset 0
  // when the SVM maps globals. Aggregate initialization happens in kernel
  // "entry" code in this reproduction, as registration does in the paper.
  bool has_int_initializer() const { return has_init_; }
  uint64_t int_initializer() const { return init_bits_; }
  void set_int_initializer(uint64_t bits) {
    has_init_ = true;
    init_bits_ = bits;
  }

 private:
  const Type* const value_type_;
  const bool is_external_;
  bool has_init_ = false;
  uint64_t init_bits_ = 0;
};

}  // namespace sva::vir

#endif  // SVA_SRC_VIR_VALUE_H_
