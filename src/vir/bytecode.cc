#include "src/vir/bytecode.h"

#include <cstring>
#include <map>

#include "src/support/strings.h"
#include "src/vir/builder.h"
#include "src/vir/instructions.h"
#include "src/vir/intrinsics.h"

namespace sva::vir {
namespace {

constexpr uint8_t kMagic[6] = {'S', 'V', 'A', 'B', 'C', 1};

// Operand reference tags.
enum class RefTag : uint8_t {
  kLocal = 0,   // argument or instruction result: id + type idx
  kInt = 1,     // type idx + raw bits
  kFloat = 2,   // type idx + IEEE bits
  kNull = 3,    // pointer type idx
  kUndef = 4,   // type idx
  kGlobal = 5,  // name
  kFunc = 6,    // name
};

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void VarU64(uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<uint8_t>(v));
  }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
    }
  }
  void Str(const std::string& s) {
    VarU64(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }
  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& data) : data_(data) {}

  Result<uint8_t> U8() {
    if (pos_ >= data_.size()) {
      return ParseError("bytecode truncated (u8)");
    }
    return data_[pos_++];
  }
  Result<uint64_t> VarU64() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size() || shift > 63) {
        return ParseError("bytecode truncated (varint)");
      }
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        break;
      }
      shift += 7;
    }
    return v;
  }
  Result<double> F64() {
    if (pos_ + 8 > data_.size()) {
      return ParseError("bytecode truncated (f64)");
    }
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<std::string> Str() {
    SVA_ASSIGN_OR_RETURN(uint64_t len, VarU64());
    if (pos_ + len > data_.size()) {
      return ParseError("bytecode truncated (string)");
    }
    std::string s(data_.begin() + static_cast<ptrdiff_t>(pos_),
                  data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return s;
  }
  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

// Assigns indexes to all types in the module. Children of non-named types
// are assigned before their parents; named struct bodies may reference any
// index (resolved in a second pass on read).
class TypeTable {
 public:
  uint32_t IndexOf(const Type* t) {
    auto it = index_.find(t);
    if (it != index_.end()) {
      return it->second;
    }
    // Named structs are pre-assigned to break recursion.
    if (t->IsStruct() &&
        !static_cast<const StructType*>(t)->name().empty()) {
      uint32_t idx = Assign(t);
      for (const Type* f : static_cast<const StructType*>(t)->fields()) {
        IndexOf(f);
      }
      return idx;
    }
    switch (t->kind()) {
      case TypeKind::kPointer:
        IndexOf(static_cast<const PointerType*>(t)->pointee());
        break;
      case TypeKind::kArray:
        IndexOf(static_cast<const ArrayType*>(t)->element());
        break;
      case TypeKind::kStruct:
        for (const Type* f : static_cast<const StructType*>(t)->fields()) {
          IndexOf(f);
        }
        break;
      case TypeKind::kFunction: {
        const auto* ft = static_cast<const FunctionType*>(t);
        IndexOf(ft->return_type());
        for (const Type* p : ft->params()) {
          IndexOf(p);
        }
        break;
      }
      default:
        break;
    }
    return Assign(t);
  }

  const std::vector<const Type*>& order() const { return order_; }

 private:
  uint32_t Assign(const Type* t) {
    auto it = index_.find(t);
    if (it != index_.end()) {
      return it->second;
    }
    uint32_t idx = static_cast<uint32_t>(order_.size());
    index_[t] = idx;
    order_.push_back(t);
    return idx;
  }

  std::map<const Type*, uint32_t> index_;
  std::vector<const Type*> order_;
};

class Writer {
 public:
  explicit Writer(const Module& module) : module_(module) {}

  std::vector<uint8_t> Write() {
    for (uint8_t b : kMagic) {
      w_.U8(b);
    }
    w_.Str(module_.name());
    CollectTypes();
    WriteTypeTable();
    WriteMetapools();
    WriteGlobals();
    WriteFunctionSignatures();
    for (const auto& fn : module_.functions()) {
      if (!fn->is_declaration()) {
        WriteFunctionBody(*fn);
      }
    }
    return w_.Take();
  }

 private:
  void CollectTypes() {
    for (const StructType* st : module_.types().named_structs()) {
      types_.IndexOf(st);
    }
    for (const auto& gv : module_.globals()) {
      types_.IndexOf(gv->value_type());
    }
    for (const auto& fn : module_.functions()) {
      types_.IndexOf(fn->function_type());
      for (const auto& bb : fn->blocks()) {
        for (const auto& inst : bb->instructions()) {
          types_.IndexOf(inst->type());
          for (const Value* op : inst->operands()) {
            types_.IndexOf(op->type());
          }
          if (const auto* a = dynamic_cast<const AllocaInst*>(inst.get())) {
            types_.IndexOf(a->allocated_type());
          } else if (const auto* m =
                         dynamic_cast<const MallocInst*>(inst.get())) {
            types_.IndexOf(m->allocated_type());
          } else if (const auto* phi =
                         dynamic_cast<const PhiInst*>(inst.get())) {
            for (size_t i = 0; i < phi->num_incoming(); ++i) {
              types_.IndexOf(phi->incoming_value(i)->type());
            }
          }
        }
      }
    }
    for (const auto& [name, decl] : module_.metapools()) {
      if (decl.element_type != nullptr) {
        types_.IndexOf(decl.element_type);
      }
    }
  }

  void WriteTypeTable() {
    // The table may grow while we serialize (it should not, since
    // CollectTypes visited everything), so snapshot the size first.
    const auto& order = types_.order();
    w_.VarU64(order.size());
    for (const Type* t : order) {
      w_.U8(static_cast<uint8_t>(t->kind()));
      switch (t->kind()) {
        case TypeKind::kVoid:
          break;
        case TypeKind::kInt:
          w_.VarU64(static_cast<const IntType*>(t)->bits());
          break;
        case TypeKind::kFloat:
          w_.VarU64(static_cast<const FloatType*>(t)->bits());
          break;
        case TypeKind::kPointer:
          w_.VarU64(types_.IndexOf(static_cast<const PointerType*>(t)->pointee()));
          break;
        case TypeKind::kArray: {
          const auto* at = static_cast<const ArrayType*>(t);
          w_.VarU64(types_.IndexOf(at->element()));
          w_.VarU64(at->length());
          break;
        }
        case TypeKind::kStruct: {
          const auto* st = static_cast<const StructType*>(t);
          w_.Str(st->name());
          w_.U8(st->IsOpaque() ? 1 : 0);
          if (!st->IsOpaque()) {
            w_.VarU64(st->fields().size());
            for (const Type* f : st->fields()) {
              w_.VarU64(types_.IndexOf(f));
            }
          }
          break;
        }
        case TypeKind::kFunction: {
          const auto* ft = static_cast<const FunctionType*>(t);
          w_.VarU64(types_.IndexOf(ft->return_type()));
          w_.VarU64(ft->params().size());
          for (const Type* p : ft->params()) {
            w_.VarU64(types_.IndexOf(p));
          }
          w_.U8(ft->is_vararg() ? 1 : 0);
          break;
        }
      }
    }
  }

  void WriteMetapools() {
    w_.VarU64(module_.metapools().size());
    for (const auto& [name, decl] : module_.metapools()) {
      w_.Str(name);
      w_.U8((decl.type_homogeneous ? 1 : 0) | (decl.complete ? 2 : 0) |
            (decl.user_reachable ? 4 : 0) | (decl.classified ? 8 : 0));
      if (decl.type_homogeneous && decl.element_type != nullptr) {
        w_.U8(1);
        w_.VarU64(types_.IndexOf(decl.element_type));
      } else {
        w_.U8(0);
      }
    }
    w_.VarU64(module_.target_sets().size());
    for (const auto& set : module_.target_sets()) {
      w_.VarU64(set.size());
      for (const std::string& fn : set) {
        w_.Str(fn);
      }
    }
  }

  void WriteGlobals() {
    uint64_t count = 0;
    for (const auto& gv : module_.globals()) {
      if (!IsMetapoolHandle(gv.get())) {
        ++count;
      }
    }
    w_.VarU64(count);
    for (const auto& gv : module_.globals()) {
      if (IsMetapoolHandle(gv.get())) {
        continue;  // Recreated from metapool declarations on read.
      }
      w_.Str(gv->name());
      w_.VarU64(types_.IndexOf(gv->value_type()));
      w_.U8((gv->is_external() ? 1 : 0) |
            (gv->has_int_initializer() ? 2 : 0));
      if (gv->has_int_initializer()) {
        w_.VarU64(gv->int_initializer());
      }
      w_.Str(module_.MetapoolOf(gv.get()));
    }
  }

  void WriteFunctionSignatures() {
    w_.VarU64(module_.functions().size());
    for (const auto& fn : module_.functions()) {
      w_.Str(fn->name());
      w_.VarU64(types_.IndexOf(fn->function_type()));
      w_.U8(fn->is_declaration() ? 1 : 0);
    }
  }

  void WriteRef(const Value* v) {
    switch (v->value_kind()) {
      case ValueKind::kArgument:
      case ValueKind::kInstruction: {
        w_.U8(static_cast<uint8_t>(RefTag::kLocal));
        w_.VarU64(local_ids_.at(v));
        w_.VarU64(types_.IndexOf(v->type()));
        break;
      }
      case ValueKind::kConstantInt:
        w_.U8(static_cast<uint8_t>(RefTag::kInt));
        w_.VarU64(types_.IndexOf(v->type()));
        w_.VarU64(static_cast<const ConstantInt*>(v)->zext_value());
        break;
      case ValueKind::kConstantFloat:
        w_.U8(static_cast<uint8_t>(RefTag::kFloat));
        w_.VarU64(types_.IndexOf(v->type()));
        w_.F64(static_cast<const ConstantFloat*>(v)->value());
        break;
      case ValueKind::kConstantNull:
        w_.U8(static_cast<uint8_t>(RefTag::kNull));
        w_.VarU64(types_.IndexOf(v->type()));
        break;
      case ValueKind::kConstantUndef:
        w_.U8(static_cast<uint8_t>(RefTag::kUndef));
        w_.VarU64(types_.IndexOf(v->type()));
        break;
      case ValueKind::kGlobalVariable:
        w_.U8(static_cast<uint8_t>(RefTag::kGlobal));
        w_.Str(v->name());
        break;
      case ValueKind::kFunction:
        w_.U8(static_cast<uint8_t>(RefTag::kFunc));
        w_.Str(v->name());
        break;
    }
  }

  void WriteFunctionBody(const Function& fn) {
    w_.Str(fn.name());
    local_ids_.clear();
    block_ids_.clear();
    uint64_t next_id = 0;
    for (const auto& arg : fn.args()) {
      local_ids_[arg.get()] = next_id++;
    }
    uint64_t block_id = 0;
    for (const auto& bb : fn.blocks()) {
      block_ids_[bb.get()] = block_id++;
      for (const auto& inst : bb->instructions()) {
        local_ids_[inst.get()] = next_id++;
      }
    }

    for (const auto& arg : fn.args()) {
      w_.Str(arg->name());
      w_.Str(module_.MetapoolOf(arg.get()));
    }
    w_.VarU64(fn.blocks().size());
    for (const auto& bb : fn.blocks()) {
      w_.Str(bb->name());
      w_.VarU64(bb->instructions().size());
      for (const auto& inst : bb->instructions()) {
        WriteInstruction(*inst);
      }
    }
  }

  void WriteInstruction(const Instruction& inst) {
    w_.U8(static_cast<uint8_t>(inst.opcode()));
    w_.Str(inst.name());
    w_.Str(module_.MetapoolOf(&inst));
    w_.U8(module_.HasSignatureAssertion(&inst) ? 1 : 0);
    switch (inst.opcode()) {
      case Opcode::kICmp:
      case Opcode::kFCmp: {
        const auto& cmp = static_cast<const CmpInst&>(inst);
        w_.U8(static_cast<uint8_t>(cmp.pred()));
        WriteRef(cmp.lhs());
        WriteRef(cmp.rhs());
        break;
      }
      case Opcode::kSelect:
      case Opcode::kCmpXchg:
        WriteRef(inst.operand(0));
        WriteRef(inst.operand(1));
        WriteRef(inst.operand(2));
        break;
      case Opcode::kTrunc:
      case Opcode::kZExt:
      case Opcode::kSExt:
      case Opcode::kBitcast:
      case Opcode::kPtrToInt:
      case Opcode::kIntToPtr:
      case Opcode::kSIToFP:
      case Opcode::kFPToSI:
        w_.VarU64(types_.IndexOf(inst.type()));
        WriteRef(inst.operand(0));
        break;
      case Opcode::kAlloca: {
        const auto& a = static_cast<const AllocaInst&>(inst);
        w_.VarU64(types_.IndexOf(a.allocated_type()));
        WriteRef(a.count());
        break;
      }
      case Opcode::kMalloc: {
        const auto& m = static_cast<const MallocInst&>(inst);
        w_.VarU64(types_.IndexOf(m.allocated_type()));
        WriteRef(m.count());
        break;
      }
      case Opcode::kFree:
      case Opcode::kLoad:
        WriteRef(inst.operand(0));
        break;
      case Opcode::kStore:
      case Opcode::kAtomicLIS:
        WriteRef(inst.operand(0));
        WriteRef(inst.operand(1));
        break;
      case Opcode::kGetElementPtr: {
        w_.VarU64(inst.num_operands());
        for (const Value* op : inst.operands()) {
          WriteRef(op);
        }
        break;
      }
      case Opcode::kWriteBarrier:
      case Opcode::kUnreachable:
        break;
      case Opcode::kCall: {
        w_.VarU64(types_.IndexOf(inst.type()));
        w_.VarU64(inst.num_operands());
        for (const Value* op : inst.operands()) {
          WriteRef(op);
        }
        break;
      }
      case Opcode::kPhi: {
        const auto& phi = static_cast<const PhiInst&>(inst);
        w_.VarU64(types_.IndexOf(inst.type()));
        w_.VarU64(phi.num_incoming());
        for (size_t i = 0; i < phi.num_incoming(); ++i) {
          WriteRef(phi.incoming_value(i));
          w_.VarU64(block_ids_.at(phi.incoming_block(i)));
        }
        break;
      }
      case Opcode::kBr: {
        const auto& br = static_cast<const BranchInst&>(inst);
        w_.U8(br.is_conditional() ? 1 : 0);
        if (br.is_conditional()) {
          WriteRef(br.condition());
          w_.VarU64(block_ids_.at(br.target(0)));
          w_.VarU64(block_ids_.at(br.target(1)));
        } else {
          w_.VarU64(block_ids_.at(br.target(0)));
        }
        break;
      }
      case Opcode::kSwitch: {
        const auto& sw = static_cast<const SwitchInst&>(inst);
        WriteRef(sw.condition());
        w_.VarU64(block_ids_.at(sw.default_target()));
        w_.VarU64(sw.num_cases());
        for (size_t i = 0; i < sw.num_cases(); ++i) {
          w_.VarU64(sw.case_value(i));
          w_.VarU64(block_ids_.at(sw.case_target(i)));
        }
        break;
      }
      case Opcode::kRet: {
        const auto& ret = static_cast<const RetInst&>(inst);
        w_.U8(ret.has_value() ? 1 : 0);
        if (ret.has_value()) {
          WriteRef(ret.value());
        }
        break;
      }
      default:
        // Binary arithmetic.
        WriteRef(inst.operand(0));
        WriteRef(inst.operand(1));
        break;
    }
  }

  const Module& module_;
  ByteWriter w_;
  TypeTable types_;
  std::map<const Value*, uint64_t> local_ids_;
  std::map<const BasicBlock*, uint64_t> block_ids_;
};

// --- Reader ------------------------------------------------------------------

struct PendingStructBody {
  StructType* st;
  std::vector<uint64_t> field_indexes;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& data) : r_(data) {}

  Result<std::unique_ptr<Module>> Read() {
    for (uint8_t expected : kMagic) {
      SVA_ASSIGN_OR_RETURN(uint8_t b, r_.U8());
      if (b != expected) {
        return ParseError("bad bytecode magic");
      }
    }
    SVA_ASSIGN_OR_RETURN(std::string name, r_.Str());
    module_ = std::make_unique<Module>(name);
    SVA_RETURN_IF_ERROR(ReadTypeTable());
    SVA_RETURN_IF_ERROR(ReadMetapools());
    SVA_RETURN_IF_ERROR(ReadGlobals());
    SVA_RETURN_IF_ERROR(ReadFunctionSignatures());
    while (!r_.AtEnd()) {
      SVA_RETURN_IF_ERROR(ReadFunctionBody());
    }
    return std::move(module_);
  }

 private:
  Result<const Type*> TypeAt(uint64_t idx) {
    if (idx >= type_table_.size()) {
      return ParseError("type index out of range");
    }
    return type_table_[idx];
  }

  Status ReadTypeTable() {
    TypeContext& types = module_->types();
    SVA_ASSIGN_OR_RETURN(uint64_t count, r_.VarU64());
    std::vector<PendingStructBody> pending;
    // Pass 1: create all types. Named structs start opaque; non-named types
    // reference only earlier indexes by construction of the writer.
    for (uint64_t i = 0; i < count; ++i) {
      SVA_ASSIGN_OR_RETURN(uint8_t kind_byte, r_.U8());
      auto kind = static_cast<TypeKind>(kind_byte);
      switch (kind) {
        case TypeKind::kVoid:
          type_table_.push_back(types.VoidTy());
          break;
        case TypeKind::kInt: {
          SVA_ASSIGN_OR_RETURN(uint64_t bits, r_.VarU64());
          type_table_.push_back(types.IntTy(static_cast<unsigned>(bits)));
          break;
        }
        case TypeKind::kFloat: {
          SVA_ASSIGN_OR_RETURN(uint64_t bits, r_.VarU64());
          type_table_.push_back(types.FloatTy(static_cast<unsigned>(bits)));
          break;
        }
        case TypeKind::kPointer: {
          SVA_ASSIGN_OR_RETURN(uint64_t p, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(const Type* pointee, TypeAt(p));
          type_table_.push_back(types.PointerTo(pointee));
          break;
        }
        case TypeKind::kArray: {
          SVA_ASSIGN_OR_RETURN(uint64_t e, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(uint64_t len, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(const Type* elem, TypeAt(e));
          type_table_.push_back(types.ArrayOf(elem, len));
          break;
        }
        case TypeKind::kStruct: {
          SVA_ASSIGN_OR_RETURN(std::string sname, r_.Str());
          SVA_ASSIGN_OR_RETURN(uint8_t opaque, r_.U8());
          if (!sname.empty()) {
            StructType* st = types.NamedStruct(sname);
            type_table_.push_back(st);
            if (opaque == 0) {
              SVA_ASSIGN_OR_RETURN(uint64_t nfields, r_.VarU64());
              PendingStructBody body;
              body.st = st;
              for (uint64_t f = 0; f < nfields; ++f) {
                SVA_ASSIGN_OR_RETURN(uint64_t fi, r_.VarU64());
                body.field_indexes.push_back(fi);
              }
              pending.push_back(std::move(body));
            }
          } else {
            // Literal struct: fields must already exist.
            SVA_ASSIGN_OR_RETURN(uint64_t nfields, r_.VarU64());
            std::vector<const Type*> fields;
            for (uint64_t f = 0; f < nfields; ++f) {
              SVA_ASSIGN_OR_RETURN(uint64_t fi, r_.VarU64());
              SVA_ASSIGN_OR_RETURN(const Type* ft, TypeAt(fi));
              fields.push_back(ft);
            }
            type_table_.push_back(types.Struct(fields));
          }
          break;
        }
        case TypeKind::kFunction: {
          SVA_ASSIGN_OR_RETURN(uint64_t ret, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(uint64_t nparams, r_.VarU64());
          std::vector<const Type*> params;
          for (uint64_t p = 0; p < nparams; ++p) {
            SVA_ASSIGN_OR_RETURN(uint64_t pi, r_.VarU64());
            SVA_ASSIGN_OR_RETURN(const Type* pt, TypeAt(pi));
            params.push_back(pt);
          }
          SVA_ASSIGN_OR_RETURN(uint8_t vararg, r_.U8());
          SVA_ASSIGN_OR_RETURN(const Type* rt, TypeAt(ret));
          type_table_.push_back(types.FunctionTy(rt, params, vararg != 0));
          break;
        }
        default:
          return ParseError("bad type kind in bytecode");
      }
    }
    // Pass 2: fill named struct bodies.
    for (const PendingStructBody& body : pending) {
      std::vector<const Type*> fields;
      for (uint64_t fi : body.field_indexes) {
        SVA_ASSIGN_OR_RETURN(const Type* ft, TypeAt(fi));
        fields.push_back(ft);
      }
      if (body.st->IsOpaque()) {
        body.st->SetBody(std::move(fields));
      }
    }
    return OkStatus();
  }

  Status ReadMetapools() {
    SVA_ASSIGN_OR_RETURN(uint64_t count, r_.VarU64());
    for (uint64_t i = 0; i < count; ++i) {
      SVA_ASSIGN_OR_RETURN(std::string name, r_.Str());
      SVA_ASSIGN_OR_RETURN(uint8_t flags, r_.U8());
      MetapoolDecl& decl = module_->DeclareMetapool(name);
      decl.type_homogeneous = (flags & 1) != 0;
      decl.complete = (flags & 2) != 0;
      decl.user_reachable = (flags & 4) != 0;
      decl.classified = (flags & 8) != 0;
      SVA_ASSIGN_OR_RETURN(uint8_t has_type, r_.U8());
      if (has_type != 0) {
        SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(decl.element_type, TypeAt(ti));
      }
      MetapoolHandle(*module_, name);
    }
    SVA_ASSIGN_OR_RETURN(uint64_t nsets, r_.VarU64());
    for (uint64_t i = 0; i < nsets; ++i) {
      SVA_ASSIGN_OR_RETURN(uint64_t nfns, r_.VarU64());
      std::vector<std::string> names;
      for (uint64_t f = 0; f < nfns; ++f) {
        SVA_ASSIGN_OR_RETURN(std::string fname, r_.Str());
        names.push_back(std::move(fname));
      }
      module_->AddTargetSet(std::move(names));
    }
    return OkStatus();
  }

  Status ReadGlobals() {
    SVA_ASSIGN_OR_RETURN(uint64_t count, r_.VarU64());
    for (uint64_t i = 0; i < count; ++i) {
      SVA_ASSIGN_OR_RETURN(std::string name, r_.Str());
      SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
      SVA_ASSIGN_OR_RETURN(uint8_t flags, r_.U8());
      SVA_ASSIGN_OR_RETURN(const Type* vt, TypeAt(ti));
      GlobalVariable* gv = module_->CreateGlobal(name, vt, (flags & 1) != 0);
      if ((flags & 2) != 0) {
        SVA_ASSIGN_OR_RETURN(uint64_t init, r_.VarU64());
        gv->set_int_initializer(init);
      }
      SVA_ASSIGN_OR_RETURN(std::string mp, r_.Str());
      if (!mp.empty()) {
        module_->AnnotateValue(gv, mp);
      }
    }
    return OkStatus();
  }

  Status ReadFunctionSignatures() {
    SVA_ASSIGN_OR_RETURN(uint64_t count, r_.VarU64());
    for (uint64_t i = 0; i < count; ++i) {
      SVA_ASSIGN_OR_RETURN(std::string name, r_.Str());
      SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
      SVA_ASSIGN_OR_RETURN(uint8_t is_decl, r_.U8());
      SVA_ASSIGN_OR_RETURN(const Type* ft, TypeAt(ti));
      if (!ft->IsFunction()) {
        return ParseError("function signature type is not a function type");
      }
      Function* fn = module_->GetFunction(name);
      if (fn == nullptr) {
        fn = module_->CreateFunction(
            name, static_cast<const FunctionType*>(ft), /*is_declaration=*/true);
      }
      if (is_decl == 0) {
        fn->set_is_declaration(false);
      }
      (void)fn;
    }
    return OkStatus();
  }

  struct LocalFixup {
    Instruction* inst;
    size_t operand_index;
    int phi_index;
    uint64_t id;
  };

  struct RefResult {
    Value* value = nullptr;   // resolved
    bool forward = false;     // forward local ref
    uint64_t id = 0;
    const Type* type = nullptr;
  };

  Result<RefResult> ReadRef() {
    RefResult out;
    SVA_ASSIGN_OR_RETURN(uint8_t tag_byte, r_.U8());
    auto tag = static_cast<RefTag>(tag_byte);
    switch (tag) {
      case RefTag::kLocal: {
        SVA_ASSIGN_OR_RETURN(out.id, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(out.type, TypeAt(ti));
        auto it = locals_.find(out.id);
        if (it != locals_.end()) {
          out.value = it->second;
        } else {
          out.forward = true;
          out.value = module_->GetUndef(out.type);
        }
        return out;
      }
      case RefTag::kInt: {
        SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(uint64_t bits, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(const Type* t, TypeAt(ti));
        if (!t->IsInt()) {
          return ParseError("int constant with non-int type");
        }
        out.value = module_->GetInt(static_cast<const IntType*>(t), bits);
        return out;
      }
      case RefTag::kFloat: {
        SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(double v, r_.F64());
        SVA_ASSIGN_OR_RETURN(const Type* t, TypeAt(ti));
        if (!t->IsFloat()) {
          return ParseError("float constant with non-float type");
        }
        out.value = module_->GetFloat(static_cast<const FloatType*>(t), v);
        return out;
      }
      case RefTag::kNull: {
        SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(const Type* t, TypeAt(ti));
        if (!t->IsPointer()) {
          return ParseError("null constant with non-pointer type");
        }
        out.value = module_->GetNull(static_cast<const PointerType*>(t));
        return out;
      }
      case RefTag::kUndef: {
        SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(const Type* t, TypeAt(ti));
        out.value = module_->GetUndef(t);
        return out;
      }
      case RefTag::kGlobal: {
        SVA_ASSIGN_OR_RETURN(std::string name, r_.Str());
        out.value = module_->GetGlobal(name);
        if (out.value == nullptr) {
          return ParseError(StrCat("bytecode references unknown global @",
                                   name));
        }
        return out;
      }
      case RefTag::kFunc: {
        SVA_ASSIGN_OR_RETURN(std::string name, r_.Str());
        out.value = module_->GetFunction(name);
        if (out.value == nullptr) {
          return ParseError(StrCat("bytecode references unknown function @",
                                   name));
        }
        return out;
      }
    }
    return ParseError("bad operand tag");
  }

  Result<BasicBlock*> BlockAt(uint64_t idx) {
    if (idx >= block_list_.size()) {
      return ParseError("block index out of range");
    }
    return block_list_[idx];
  }

  Status ReadFunctionBody() {
    SVA_ASSIGN_OR_RETURN(std::string name, r_.Str());
    Function* fn = module_->GetFunction(name);
    if (fn == nullptr) {
      return ParseError(StrCat("body for unknown function @", name));
    }
    locals_.clear();
    block_list_.clear();
    std::vector<LocalFixup> fixups;
    uint64_t next_id = 0;
    for (size_t i = 0; i < fn->num_args(); ++i) {
      SVA_ASSIGN_OR_RETURN(std::string arg_name, r_.Str());
      SVA_ASSIGN_OR_RETURN(std::string mp, r_.Str());
      fn->arg(i)->set_name(arg_name);
      if (!mp.empty()) {
        module_->AnnotateValue(fn->arg(i), mp);
      }
      locals_[next_id++] = fn->arg(i);
    }
    SVA_ASSIGN_OR_RETURN(uint64_t nblocks, r_.VarU64());
    std::vector<uint64_t> block_sizes;
    // We must create all blocks before reading instructions (forward branch
    // targets), so read block headers and instruction payloads in one pass,
    // creating blocks lazily is not possible — instead the writer interleaves
    // them. We create blocks on demand by index as encountered; but since
    // block count is known, pre-create with placeholder names and rename.
    for (uint64_t i = 0; i < nblocks; ++i) {
      block_list_.push_back(fn->CreateBlock(StrCat("bb", i)));
    }
    IRBuilder b(*module_);
    for (uint64_t bi = 0; bi < nblocks; ++bi) {
      SVA_ASSIGN_OR_RETURN(std::string bname, r_.Str());
      block_list_[bi]->set_name(bname);
      SVA_ASSIGN_OR_RETURN(uint64_t ninsts, r_.VarU64());
      BasicBlock* bb = block_list_[bi];
      b.SetInsertPoint(bb);
      for (uint64_t ii = 0; ii < ninsts; ++ii) {
        SVA_RETURN_IF_ERROR(ReadInstruction(b, bb, next_id, fixups));
      }
    }
    (void)block_sizes;
    for (const LocalFixup& fx : fixups) {
      auto it = locals_.find(fx.id);
      if (it == locals_.end()) {
        return ParseError("unresolved forward local reference");
      }
      if (fx.phi_index >= 0) {
        static_cast<PhiInst*>(fx.inst)->set_incoming_value(
            static_cast<size_t>(fx.phi_index), it->second);
      } else {
        fx.inst->set_operand(fx.operand_index, it->second);
      }
    }
    return OkStatus();
  }

  // The IRBuilder assumes verified IR and downcasts operand types without
  // checking (static_cast to PointerType); untrusted bytecode must not reach
  // it with a non-pointer operand, so memory/call instructions validate the
  // operand's type kind here and reject the module instead.
  Status RequirePointer(const RefResult& ref, const char* what) {
    if (ref.value == nullptr || !ref.value->type()->IsPointer()) {
      return ParseError(std::string(what) + " operand is not a pointer");
    }
    return OkStatus();
  }

  Status ReadInstruction(IRBuilder& b, BasicBlock* bb, uint64_t& next_id,
                         std::vector<LocalFixup>& fixups) {
    TypeContext& types = module_->types();
    SVA_ASSIGN_OR_RETURN(uint8_t op_byte, r_.U8());
    auto op = static_cast<Opcode>(op_byte);
    SVA_ASSIGN_OR_RETURN(std::string name, r_.Str());
    SVA_ASSIGN_OR_RETURN(std::string mp, r_.Str());
    SVA_ASSIGN_OR_RETURN(uint8_t has_sig, r_.U8());

    auto note = [&](Instruction* inst, size_t oi, const RefResult& ref,
                    int phi_index = -1) {
      if (ref.forward) {
        fixups.push_back(LocalFixup{inst, oi, phi_index, ref.id});
      }
    };

    Value* result = nullptr;
    switch (op) {
      case Opcode::kICmp:
      case Opcode::kFCmp: {
        SVA_ASSIGN_OR_RETURN(uint8_t pred, r_.U8());
        SVA_ASSIGN_OR_RETURN(RefResult lhs, ReadRef());
        SVA_ASSIGN_OR_RETURN(RefResult rhs, ReadRef());
        result = op == Opcode::kICmp
                     ? b.CreateICmp(static_cast<CmpPred>(pred), lhs.value,
                                    rhs.value, name)
                     : b.CreateFCmp(static_cast<CmpPred>(pred), lhs.value,
                                    rhs.value, name);
        note(static_cast<Instruction*>(result), 0, lhs);
        note(static_cast<Instruction*>(result), 1, rhs);
        break;
      }
      case Opcode::kSelect: {
        SVA_ASSIGN_OR_RETURN(RefResult c, ReadRef());
        SVA_ASSIGN_OR_RETURN(RefResult t, ReadRef());
        SVA_ASSIGN_OR_RETURN(RefResult f, ReadRef());
        result = b.CreateSelect(c.value, t.value, f.value, name);
        note(static_cast<Instruction*>(result), 0, c);
        note(static_cast<Instruction*>(result), 1, t);
        note(static_cast<Instruction*>(result), 2, f);
        break;
      }
      case Opcode::kCmpXchg: {
        SVA_ASSIGN_OR_RETURN(RefResult p, ReadRef());
        SVA_ASSIGN_OR_RETURN(RefResult e, ReadRef());
        SVA_ASSIGN_OR_RETURN(RefResult d, ReadRef());
        SVA_RETURN_IF_ERROR(RequirePointer(p, "cmpxchg"));
        result = b.CreateCmpXchg(p.value, e.value, d.value, name);
        note(static_cast<Instruction*>(result), 0, p);
        note(static_cast<Instruction*>(result), 1, e);
        note(static_cast<Instruction*>(result), 2, d);
        break;
      }
      case Opcode::kTrunc:
      case Opcode::kZExt:
      case Opcode::kSExt:
      case Opcode::kBitcast:
      case Opcode::kPtrToInt:
      case Opcode::kIntToPtr:
      case Opcode::kSIToFP:
      case Opcode::kFPToSI: {
        SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(const Type* dst, TypeAt(ti));
        SVA_ASSIGN_OR_RETURN(RefResult src, ReadRef());
        result = b.CreateCast(op, src.value, dst, name);
        note(static_cast<Instruction*>(result), 0, src);
        break;
      }
      case Opcode::kAlloca:
      case Opcode::kMalloc: {
        SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(const Type* allocated, TypeAt(ti));
        SVA_ASSIGN_OR_RETURN(RefResult count, ReadRef());
        result = op == Opcode::kAlloca
                     ? b.CreateAlloca(allocated, count.value, name)
                     : b.CreateMalloc(allocated, count.value, name);
        note(static_cast<Instruction*>(result), 0, count);
        break;
      }
      case Opcode::kFree: {
        SVA_ASSIGN_OR_RETURN(RefResult ptr, ReadRef());
        SVA_RETURN_IF_ERROR(RequirePointer(ptr, "free"));
        b.CreateFree(ptr.value);
        note(bb->back(), 0, ptr);
        break;
      }
      case Opcode::kLoad: {
        SVA_ASSIGN_OR_RETURN(RefResult ptr, ReadRef());
        SVA_RETURN_IF_ERROR(RequirePointer(ptr, "load"));
        result = b.CreateLoad(ptr.value, name);
        note(static_cast<Instruction*>(result), 0, ptr);
        break;
      }
      case Opcode::kStore: {
        SVA_ASSIGN_OR_RETURN(RefResult v, ReadRef());
        SVA_ASSIGN_OR_RETURN(RefResult p, ReadRef());
        SVA_RETURN_IF_ERROR(RequirePointer(p, "store"));
        b.CreateStore(v.value, p.value);
        note(bb->back(), 0, v);
        note(bb->back(), 1, p);
        break;
      }
      case Opcode::kAtomicLIS: {
        SVA_ASSIGN_OR_RETURN(RefResult p, ReadRef());
        SVA_ASSIGN_OR_RETURN(RefResult d, ReadRef());
        SVA_RETURN_IF_ERROR(RequirePointer(p, "atomic-lis"));
        result = b.CreateAtomicLIS(p.value, d.value, name);
        note(static_cast<Instruction*>(result), 0, p);
        note(static_cast<Instruction*>(result), 1, d);
        break;
      }
      case Opcode::kGetElementPtr: {
        SVA_ASSIGN_OR_RETURN(uint64_t nops, r_.VarU64());
        if (nops == 0) {
          return ParseError("gep with no operands");
        }
        std::vector<RefResult> refs;
        for (uint64_t i = 0; i < nops; ++i) {
          SVA_ASSIGN_OR_RETURN(RefResult r, ReadRef());
          refs.push_back(r);
        }
        std::vector<Value*> indices;
        for (size_t i = 1; i < refs.size(); ++i) {
          indices.push_back(refs[i].value);
        }
        SVA_RETURN_IF_ERROR(RequirePointer(refs[0], "gep base"));
        Result<const Type*> indexed = GepIndexedType(
            static_cast<const PointerType*>(refs[0].value->type())->pointee(),
            indices);
        if (!indexed.ok()) {
          return ParseError("gep indices do not match the pointee type");
        }
        result = b.CreateGEP(refs[0].value, indices, name);
        for (size_t i = 0; i < refs.size(); ++i) {
          note(static_cast<Instruction*>(result), i, refs[i]);
        }
        break;
      }
      case Opcode::kWriteBarrier:
        b.CreateWriteBarrier();
        break;
      case Opcode::kUnreachable:
        b.CreateUnreachable();
        break;
      case Opcode::kCall: {
        SVA_ASSIGN_OR_RETURN(uint64_t rt, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(const Type* ret, TypeAt(rt));
        SVA_ASSIGN_OR_RETURN(uint64_t nops, r_.VarU64());
        if (nops == 0) {
          return ParseError("call with no callee");
        }
        std::vector<RefResult> refs;
        for (uint64_t i = 0; i < nops; ++i) {
          SVA_ASSIGN_OR_RETURN(RefResult r, ReadRef());
          refs.push_back(r);
        }
        Value* callee = refs[0].value;
        if (refs[0].forward) {
          // Forward indirect callee: placeholder with reconstructed type.
          std::vector<const Type*> params;
          for (size_t i = 1; i < refs.size(); ++i) {
            params.push_back(refs[i].value->type());
          }
          callee = module_->GetUndef(
              types.PointerTo(types.FunctionTy(ret, params, false)));
        }
        std::vector<Value*> args;
        for (size_t i = 1; i < refs.size(); ++i) {
          args.push_back(refs[i].value);
        }
        if (!callee->type()->IsPointer() ||
            !static_cast<const PointerType*>(callee->type())
                 ->pointee()
                 ->IsFunction()) {
          return ParseError("call callee is not a function pointer");
        }
        result = b.CreateCall(callee, args, name);
        for (size_t i = 0; i < refs.size(); ++i) {
          note(static_cast<Instruction*>(result), i, refs[i]);
        }
        if (result->type()->IsVoid()) {
          result = nullptr;
        }
        break;
      }
      case Opcode::kPhi: {
        SVA_ASSIGN_OR_RETURN(uint64_t ti, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(const Type* type, TypeAt(ti));
        SVA_ASSIGN_OR_RETURN(uint64_t n, r_.VarU64());
        PhiInst* phi = b.CreatePhi(type, name);
        for (uint64_t i = 0; i < n; ++i) {
          SVA_ASSIGN_OR_RETURN(RefResult v, ReadRef());
          SVA_ASSIGN_OR_RETURN(uint64_t bi, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(BasicBlock* in, BlockAt(bi));
          phi->AddIncoming(v.value, in);
          note(phi, 0, v, static_cast<int>(i));
        }
        result = phi;
        break;
      }
      case Opcode::kBr: {
        SVA_ASSIGN_OR_RETURN(uint8_t cond, r_.U8());
        if (cond != 0) {
          SVA_ASSIGN_OR_RETURN(RefResult c, ReadRef());
          SVA_ASSIGN_OR_RETURN(uint64_t t, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(uint64_t f, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(BasicBlock* tb, BlockAt(t));
          SVA_ASSIGN_OR_RETURN(BasicBlock* fb, BlockAt(f));
          b.CreateCondBr(c.value, tb, fb);
          note(bb->back(), 0, c);
        } else {
          SVA_ASSIGN_OR_RETURN(uint64_t t, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(BasicBlock* tb, BlockAt(t));
          b.CreateBr(tb);
        }
        break;
      }
      case Opcode::kSwitch: {
        SVA_ASSIGN_OR_RETURN(RefResult v, ReadRef());
        SVA_ASSIGN_OR_RETURN(uint64_t d, r_.VarU64());
        SVA_ASSIGN_OR_RETURN(BasicBlock* db, BlockAt(d));
        SwitchInst* sw = b.CreateSwitch(v.value, db);
        note(sw, 0, v);
        SVA_ASSIGN_OR_RETURN(uint64_t ncases, r_.VarU64());
        for (uint64_t i = 0; i < ncases; ++i) {
          SVA_ASSIGN_OR_RETURN(uint64_t cv, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(uint64_t ct, r_.VarU64());
          SVA_ASSIGN_OR_RETURN(BasicBlock* cb, BlockAt(ct));
          sw->AddCase(cv, cb);
        }
        break;
      }
      case Opcode::kRet: {
        SVA_ASSIGN_OR_RETURN(uint8_t has_value, r_.U8());
        if (has_value != 0) {
          SVA_ASSIGN_OR_RETURN(RefResult v, ReadRef());
          b.CreateRet(v.value);
          note(bb->back(), 0, v);
        } else {
          b.CreateRetVoid();
        }
        break;
      }
      default: {
        if (op < Opcode::kAdd || op > Opcode::kFDiv) {
          return ParseError("bad opcode in bytecode");
        }
        SVA_ASSIGN_OR_RETURN(RefResult lhs, ReadRef());
        SVA_ASSIGN_OR_RETURN(RefResult rhs, ReadRef());
        result = b.CreateBinary(op, lhs.value, rhs.value, name);
        note(static_cast<Instruction*>(result), 0, lhs);
        note(static_cast<Instruction*>(result), 1, rhs);
        break;
      }
    }

    Instruction* inst = bb->back();
    locals_[next_id++] = inst;
    if (!mp.empty()) {
      module_->AnnotateValue(inst, mp);
    }
    if (has_sig != 0) {
      module_->AddSignatureAssertion(inst);
    }
    (void)result;
    return OkStatus();
  }

  ByteReader r_;
  std::unique_ptr<Module> module_;
  std::vector<const Type*> type_table_;
  std::map<uint64_t, Value*> locals_;
  std::vector<BasicBlock*> block_list_;
};

}  // namespace

std::vector<uint8_t> WriteBytecode(const Module& module) {
  Writer writer(module);
  return writer.Write();
}

Result<std::unique_ptr<Module>> ReadBytecode(const std::vector<uint8_t>& data) {
  Reader reader(data);
  return reader.Read();
}

uint64_t DigestBytes(const std::vector<uint8_t>& data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint8_t b : data) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace sva::vir
