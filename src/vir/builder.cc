#include "src/vir/builder.h"

#include <cassert>

#include "src/support/strings.h"

namespace sva::vir {

Result<const Type*> GepIndexedType(const Type* base_pointee,
                                   const std::vector<Value*>& indices) {
  if (indices.empty()) {
    return InvalidArgument("getelementptr requires at least one index");
  }
  // The first index steps over the pointee as if it were an array element;
  // it does not change the type.
  const Type* current = base_pointee;
  for (size_t i = 1; i < indices.size(); ++i) {
    if (current->IsArray()) {
      current = static_cast<const ArrayType*>(current)->element();
    } else if (current->IsStruct()) {
      const auto* st = static_cast<const StructType*>(current);
      if (st->IsOpaque()) {
        return InvalidArgument(
            StrCat("getelementptr into opaque struct %", st->name()));
      }
      const auto* ci = dynamic_cast<const ConstantInt*>(indices[i]);
      if (ci == nullptr) {
        return InvalidArgument("struct index must be a constant integer");
      }
      uint64_t field = ci->zext_value();
      if (field >= st->fields().size()) {
        return InvalidArgument(
            StrCat("struct index ", field, " out of range for ",
                   st->ToString()));
      }
      current = st->fields()[field];
    } else {
      return InvalidArgument(
          StrCat("cannot index into type ", current->ToString()));
    }
  }
  return current;
}

Instruction* IRBuilder::Insert(std::unique_ptr<Instruction> inst) {
  assert(block_ != nullptr && "no insertion point set");
  if (track_insert_index_) {
    Instruction* raw = block_->InsertAt(insert_index_, std::move(inst));
    ++insert_index_;
    return raw;
  }
  return block_->Append(std::move(inst));
}

Value* IRBuilder::CreateBinary(Opcode op, Value* lhs, Value* rhs,
                               std::string name) {
  assert(lhs->type() == rhs->type() && "binary op operand type mismatch");
  return Insert(std::make_unique<BinaryInst>(op, lhs, rhs, std::move(name)));
}

Value* IRBuilder::CreateICmp(CmpPred pred, Value* lhs, Value* rhs,
                             std::string name) {
  return Insert(std::make_unique<CmpInst>(Opcode::kICmp, pred, types().I1(),
                                          lhs, rhs, std::move(name)));
}

Value* IRBuilder::CreateFCmp(CmpPred pred, Value* lhs, Value* rhs,
                             std::string name) {
  return Insert(std::make_unique<CmpInst>(Opcode::kFCmp, pred, types().I1(),
                                          lhs, rhs, std::move(name)));
}

Value* IRBuilder::CreateSelect(Value* cond, Value* tval, Value* fval,
                               std::string name) {
  return Insert(
      std::make_unique<SelectInst>(cond, tval, fval, std::move(name)));
}

Value* IRBuilder::CreateCast(Opcode op, Value* src, const Type* dst,
                             std::string name) {
  return Insert(std::make_unique<CastInst>(op, src, dst, std::move(name)));
}

Value* IRBuilder::CreateAlloca(const Type* allocated, Value* count,
                               std::string name) {
  const PointerType* result = types().PointerTo(allocated);
  return Insert(
      std::make_unique<AllocaInst>(result, allocated, count, std::move(name)));
}

Value* IRBuilder::CreateMalloc(const Type* allocated, Value* count,
                               std::string name) {
  const PointerType* result = types().PointerTo(allocated);
  return Insert(
      std::make_unique<MallocInst>(result, allocated, count, std::move(name)));
}

void IRBuilder::CreateFree(Value* ptr) {
  Insert(std::make_unique<FreeInst>(types().VoidTy(), ptr));
}

Value* IRBuilder::CreateLoad(Value* ptr, std::string name) {
  assert(ptr->type()->IsPointer() && "load from non-pointer");
  const Type* result =
      static_cast<const PointerType*>(ptr->type())->pointee();
  return Insert(std::make_unique<LoadInst>(result, ptr, std::move(name)));
}

void IRBuilder::CreateStore(Value* value, Value* ptr) {
  assert(ptr->type()->IsPointer() && "store to non-pointer");
  Insert(std::make_unique<StoreInst>(types().VoidTy(), value, ptr));
}

Value* IRBuilder::CreateGEP(Value* base, std::vector<Value*> indices,
                            std::string name) {
  assert(base->type()->IsPointer() && "gep base must be a pointer");
  const Type* pointee =
      static_cast<const PointerType*>(base->type())->pointee();
  Result<const Type*> indexed = GepIndexedType(pointee, indices);
  assert(indexed.ok() && "malformed getelementptr indices");
  const PointerType* result = types().PointerTo(indexed.value());
  return Insert(std::make_unique<GetElementPtrInst>(
      result, base, std::move(indices), std::move(name)));
}

Value* IRBuilder::CreateAtomicLIS(Value* ptr, Value* delta, std::string name) {
  assert(ptr->type()->IsPointer() && "atomic-lis on non-pointer");
  const Type* result =
      static_cast<const PointerType*>(ptr->type())->pointee();
  return Insert(
      std::make_unique<AtomicLISInst>(result, ptr, delta, std::move(name)));
}

Value* IRBuilder::CreateCmpXchg(Value* ptr, Value* expected, Value* desired,
                                std::string name) {
  assert(ptr->type()->IsPointer() && "cmpxchg on non-pointer");
  const Type* result =
      static_cast<const PointerType*>(ptr->type())->pointee();
  return Insert(std::make_unique<CmpXchgInst>(result, ptr, expected, desired,
                                              std::move(name)));
}

void IRBuilder::CreateWriteBarrier() {
  Insert(std::make_unique<WriteBarrierInst>(types().VoidTy()));
}

Value* IRBuilder::CreateCall(Value* callee, std::vector<Value*> args,
                             std::string name) {
  const Type* callee_type = callee->type();
  assert(callee_type->IsPointer() && "callee must be a function pointer");
  const Type* pointee =
      static_cast<const PointerType*>(callee_type)->pointee();
  assert(pointee->IsFunction() && "callee must point to a function type");
  const Type* result =
      static_cast<const FunctionType*>(pointee)->return_type();
  return Insert(std::make_unique<CallInst>(result, callee, std::move(args),
                                           std::move(name)));
}

PhiInst* IRBuilder::CreatePhi(const Type* type, std::string name) {
  return static_cast<PhiInst*>(
      Insert(std::make_unique<PhiInst>(type, std::move(name))));
}

void IRBuilder::CreateBr(BasicBlock* target) {
  Insert(std::make_unique<BranchInst>(types().VoidTy(), target));
}

void IRBuilder::CreateCondBr(Value* cond, BasicBlock* if_true,
                             BasicBlock* if_false) {
  Insert(std::make_unique<BranchInst>(types().VoidTy(), cond, if_true,
                                      if_false));
}

SwitchInst* IRBuilder::CreateSwitch(Value* value, BasicBlock* default_target) {
  return static_cast<SwitchInst*>(Insert(
      std::make_unique<SwitchInst>(types().VoidTy(), value, default_target)));
}

void IRBuilder::CreateRet(Value* value) {
  Insert(std::make_unique<RetInst>(types().VoidTy(), value));
}

void IRBuilder::CreateRetVoid() {
  Insert(std::make_unique<RetInst>(types().VoidTy(), nullptr));
}

void IRBuilder::CreateUnreachable() {
  Insert(std::make_unique<UnreachableInst>(types().VoidTy()));
}

}  // namespace sva::vir
