#include "src/support/strings.h"

namespace sva {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && (text[begin] == ' ' || text[begin] == '\t' ||
                                 text[begin] == '\n' || text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace sva
