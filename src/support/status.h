// Lightweight Status / Result error-handling primitives used across the SVA
// libraries. Recoverable errors (parse failures, verification failures,
// safety violations surfaced to callers) travel as Status; programming errors
// use assertions.
#ifndef SVA_SRC_SUPPORT_STATUS_H_
#define SVA_SRC_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sva {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  // A run-time safety check rejected an operation (bounds, load-store,
  // indirect call, illegal free).
  kSafetyViolation,
  // The bytecode type checker rejected a module.
  kVerificationFailed,
  kParseError,
  // A finite pool (physical frames, asids) is empty; retryable after
  // resources are released, unlike kInternal.
  kResourceExhausted,
};

// Returns a short stable name for a status code ("OK", "SAFETY_VIOLATION", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status() or OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE_NAME: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status SafetyViolation(std::string msg) {
  return Status(StatusCode::kSafetyViolation, std::move(msg));
}
inline Status VerificationFailed(std::string msg) {
  return Status(StatusCode::kVerificationFailed, std::move(msg));
}
inline Status ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}

// A value-or-error. The value is only accessible when ok().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "cannot build a Result<T> from an OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok() && "value() on an error Result");
    return *value_;
  }
  const T& value() const& {
    assert(ok() && "value() on an error Result");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() on an error Result");
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates an error Status from an expression producing a Status.
#define SVA_RETURN_IF_ERROR(expr)        \
  do {                                   \
    ::sva::Status _sva_status = (expr);  \
    if (!_sva_status.ok()) {             \
      return _sva_status;                \
    }                                    \
  } while (0)

// Assigns the value of a Result expression or propagates its error.
#define SVA_STATUS_CONCAT_INNER(a, b) a##b
#define SVA_STATUS_CONCAT(a, b) SVA_STATUS_CONCAT_INNER(a, b)
#define SVA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = std::move(tmp).value()
#define SVA_ASSIGN_OR_RETURN(lhs, expr) \
  SVA_ASSIGN_OR_RETURN_IMPL(SVA_STATUS_CONCAT(_sva_result_, __LINE__), lhs, expr)

}  // namespace sva

#endif  // SVA_SRC_SUPPORT_STATUS_H_
