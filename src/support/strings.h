// Small string helpers shared by the parser, printers, and report generators.
#ifndef SVA_SRC_SUPPORT_STRINGS_H_
#define SVA_SRC_SUPPORT_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace sva {

// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

}  // namespace sva

#endif  // SVA_SRC_SUPPORT_STRINGS_H_
