#include "src/net/net_stack.h"

#include <cstring>

#include "src/support/strings.h"
#include "src/trace/trace.h"

namespace sva::net {

NetStack::NetStack(hw::Machine& machine, svaos::SvaOS& svaos,
                   runtime::MetaPoolRuntime* pools, bool safety_checks,
                   bool use_svaos)
    : machine_(machine),
      svaos_(svaos),
      pools_(safety_checks ? pools : nullptr),
      use_svaos_(use_svaos),
      skb_pool_(machine, pools, safety_checks),
      sock_pages_(machine),
      sock_cache_("net_sock", 128, sock_pages_) {
  if (pools_ != nullptr) {
    sock_metapool_ = pools_->GetPool("MPc.net_sock", /*type_homogeneous=*/true,
                                     /*element_size=*/128, /*complete=*/true);
  }
}

Status NetStack::IoWriteReg(hw::NicReg reg, uint64_t value) {
  uint16_t port = static_cast<uint16_t>(hw::Machine::kPortNicBase +
                                        static_cast<uint16_t>(reg));
  // SVA-PORT(svaos): device register writes go through the SVA-OS I/O
  // operation instead of a raw outb (Section 3.3).
  return use_svaos_ ? svaos_.IoWrite(port, value)
                    : machine_.IoWrite(port, value);
}

Result<uint64_t> NetStack::IoReadReg(hw::NicReg reg) {
  uint16_t port = static_cast<uint16_t>(hw::Machine::kPortNicBase +
                                        static_cast<uint16_t>(reg));
  // SVA-PORT(svaos): device register reads through the SVA-OS I/O op.
  return use_svaos_ ? svaos_.IoRead(port) : machine_.IoRead(port);
}

Status NetStack::PostRxSlot(uint64_t index, uint64_t skb_addr) {
  hw::PhysicalMemory& mem = machine_.memory();
  uint64_t at = rx_ring_base_ + index * hw::kNicDescriptorBytes;
  SVA_RETURN_IF_ERROR(mem.Write(at, 8, skb_addr));
  SVA_RETURN_IF_ERROR(mem.Write(at + 8, 2, kSkbBufferBytes));
  SVA_RETURN_IF_ERROR(mem.Write(at + 10, 2, 0));
  SVA_RETURN_IF_ERROR(mem.Write(at + 12, 2, hw::kNicDescOwned));
  rx_slot_skbs_[index] = skb_addr;
  return OkStatus();
}

Status NetStack::Boot() {
  // DMA-coherent ring pages, allocated once at driver init.
  rx_ring_base_ = machine_.AllocatePhysicalPage();
  tx_ring_base_ = machine_.AllocatePhysicalPage();
  if (rx_ring_base_ == 0 || tx_ring_base_ == 0) {
    return Internal("net: no memory for NIC rings");
  }
  // Post every rx slot with a fresh packet-pool buffer: DMA lands directly
  // in metapool-registered objects.
  for (uint64_t i = 0; i < kRxRingSize; ++i) {
    SVA_ASSIGN_OR_RETURN(Skb skb, skb_pool_.Alloc());
    SVA_RETURN_IF_ERROR(PostRxSlot(i, skb.addr));
  }
  SVA_RETURN_IF_ERROR(IoWriteReg(hw::NicReg::kRxBase, rx_ring_base_));
  SVA_RETURN_IF_ERROR(IoWriteReg(hw::NicReg::kRxSize, kRxRingSize));
  SVA_RETURN_IF_ERROR(IoWriteReg(hw::NicReg::kTxBase, tx_ring_base_));
  SVA_RETURN_IF_ERROR(IoWriteReg(hw::NicReg::kTxSize, kTxRingSize));
  SVA_RETURN_IF_ERROR(
      IoWriteReg(hw::NicReg::kCommand,
                 static_cast<uint64_t>(hw::NicCommand::kEnable)));
  if (use_svaos_) {
    // SVA-PORT(svaos): the rx handler is registered through
    // llva.register.interrupt rather than wired into a hand-built IDT.
    SVA_RETURN_IF_ERROR(svaos_.RegisterInterrupt(
        kNicIrqVector, [this](svaos::InterruptContext*) {
          HandleRxInterrupt();
        }));
  }
  booted_ = true;
  return OkStatus();
}

void NetStack::PumpRx() {
  while (true) {
    auto status = IoReadReg(hw::NicReg::kStatus);
    if (!status.ok() || (*status & hw::kNicStatusRxPending) == 0) {
      return;
    }
    if (use_svaos_) {
      (void)svaos_.RaiseInterrupt(kNicIrqVector);
    } else {
      HandleRxInterrupt();
    }
  }
}

void NetStack::HandleRxInterrupt() {
  trace::Span span(trace::EventId::kNicRxIrq, trace::HistId::kNicRxIrqNs);
  stats_.rx_irqs.fetch_add(1, std::memory_order_relaxed);
  // NAPI: mask the line so back-to-back arrivals don't re-interrupt, then
  // poll the ring in budget-bounded passes until a pass comes back short
  // and the device reports no further work. One interrupt absorbs a whole
  // burst; the per-frame cost is a descriptor read, not an irq.
  (void)IoWriteReg(hw::NicReg::kCommand,
                   static_cast<uint64_t>(hw::NicCommand::kIrqMask));
  while (true) {
    (void)IoWriteReg(hw::NicReg::kCommand,
                     static_cast<uint64_t>(hw::NicCommand::kIrqAck));
    uint64_t polled = PollRxOnce(kNapiRxBudget);
    stats_.rx_polls.fetch_add(1, std::memory_order_relaxed);
    stats_.rx_frames_polled.fetch_add(polled, std::memory_order_relaxed);
    trace::Emit(trace::EventId::kNapiPoll, polled, kNapiRxBudget);
    if (polled == kNapiRxBudget) {
      continue;  // Full budget consumed: assume the ring has more.
    }
    auto status = IoReadReg(hw::NicReg::kStatus);
    if (status.ok() && (*status & hw::kNicStatusRxWork) != 0) {
      continue;  // More frames landed while we were delivering.
    }
    break;
  }
  (void)IoWriteReg(hw::NicReg::kCommand,
                   static_cast<uint64_t>(hw::NicCommand::kIrqUnmask));
}

uint64_t NetStack::PollRxOnce(uint64_t budget) {
  // Harvest filled descriptors under the driver lock, then deliver with the
  // lock released (delivery takes socket locks).
  std::vector<Skb> harvested;
  {
    std::lock_guard<smp::SpinLock> guard(nic_lock_);
    hw::PhysicalMemory& mem = machine_.memory();
    for (uint64_t scanned = 0; scanned < budget; ++scanned) {
      uint64_t at = rx_ring_base_ + rx_next_ * hw::kNicDescriptorBytes;
      auto flags = mem.Read(at + 12, 2);
      if (!flags.ok() || (*flags & hw::kNicDescOwned) != 0) {
        break;  // Still NIC-owned: not yet filled.
      }
      if (rx_slot_skbs_[rx_next_] == 0) {
        break;  // Slot was never reposted (pool pressure); nothing here.
      }
      auto length = mem.Read(at + 10, 2);
      Skb skb;
      skb.addr = rx_slot_skbs_[rx_next_];
      skb.len = length.ok() ? static_cast<uint32_t>(*length) : 0;
      harvested.push_back(skb);
      // Repost the slot with a fresh buffer so the ring keeps receiving.
      auto fresh = skb_pool_.Alloc();
      if (fresh.ok()) {
        (void)PostRxSlot(rx_next_, fresh->addr);
      } else {
        rx_slot_skbs_[rx_next_] = 0;  // Ring stalls here until pool recovers.
      }
      rx_next_ = (rx_next_ + 1) % kRxRingSize;
    }
  }
  for (const Skb& skb : harvested) {
    (void)DeliverFrame(skb);
  }
  return harvested.size();
}

Status NetStack::DeliverFrame(Skb skb) {
  trace::Emit(trace::EventId::kNicRxDeliver, skb.len);
  const uint8_t* data = machine_.memory().raw(skb.addr);
  auto header = ParseHeaders(data, skb.len);
  if (!header.ok()) {
    stats_.rx_parse_errors.fetch_add(1, std::memory_order_relaxed);
    (void)skb_pool_.Free(skb.addr);
    return header.status();
  }
  const FrameHeader& h = *header;

  uint32_t payload_len = h.claimed_payload;
  if (pools_ != nullptr) {
    // SVA-PORT(analysis): the parser derives a payload-end pointer from the
    // header's claimed length; the safety compiler inserts a bounds check on
    // that arithmetic against the packet buffer's metapool entry. A frame
    // whose length field lies past the buffer is caught right here.
    uint64_t derived =
        skb.addr + h.payload_offset + payload_len - (payload_len == 0 ? 0 : 1);
    Status check = pools_->BoundsCheck(*skb_pool_.metapool(), skb.addr,
                                       derived);
    if (!check.ok()) {
      stats_.rx_violations.fetch_add(1, std::memory_order_relaxed);
      (void)skb_pool_.Free(skb.addr);
      return check;
    }
  } else {
    // Unchecked kernels never notice the lie; the parser would walk off the
    // buffer into the neighboring pool objects. The simulation clamps to the
    // buffer so the overread stays silent, as it was on real hardware.
    payload_len = std::min<uint32_t>(
        payload_len, static_cast<uint32_t>(kSkbBufferBytes) - h.payload_offset);
  }

  if (h.protocol == kIpProtoStream) {
    return DeliverStream(h, skb, payload_len);
  }

  // UDP datagram demux.
  int sid = -1;
  {
    std::lock_guard<smp::SpinLock> guard(table_lock_);
    auto it = udp_ports_.find(h.dst_port);
    if (it != udp_ports_.end()) {
      sid = it->second;
    }
  }
  NetSocket* sock = SocketById(sid);
  if (sock == nullptr) {
    stats_.rx_no_socket.fetch_add(1, std::memory_order_relaxed);
    (void)skb_pool_.Free(skb.addr);
    return NotFound(StrCat("net: no socket on udp port ", h.dst_port));
  }
  {
    std::lock_guard<smp::SpinLock> guard(sock->lock);
    if (!sock->open || sock->rx.size() >= kMaxRxQueuePackets) {
      ++sock->rx_queue_drops;
      stats_.rx_queue_drops.fetch_add(1, std::memory_order_relaxed);
      (void)skb_pool_.Free(skb.addr);
      return OkStatus();
    }
    RxPacket pkt;
    pkt.skb_addr = skb.addr;
    pkt.off = h.payload_offset;
    pkt.len = payload_len;
    pkt.src_ip = h.src_ip;
    pkt.src_port = h.src_port;
    sock->rx.push_back(pkt);
  }
  stats_.rx_delivered.fetch_add(1, std::memory_order_relaxed);
  NotifyReady(sid);
  return OkStatus();
}

Status NetStack::DeliverStream(const FrameHeader& h, Skb skb,
                               uint32_t payload_len) {
  if ((h.stream_flags & kStreamSyn) != 0) {
    // Connection setup: create the stream socket and queue it on the
    // backlog of one listener in the port's accept-shard group. The shard
    // is picked by a flow hash over the peer address, so a given
    // connection always lands on the same listener (SO_REUSEPORT).
    int listener_sid = -1;
    {
      std::lock_guard<smp::SpinLock> guard(table_lock_);
      auto it = stream_listeners_.find(h.dst_port);
      if (it != stream_listeners_.end() && !it->second.empty()) {
        uint64_t flow = (static_cast<uint64_t>(h.src_ip) << 16) | h.src_port;
        flow *= 0x9E3779B97F4A7C15ull;  // Fibonacci hash: mixes low ports.
        listener_sid =
            it->second[(flow >> 32) % it->second.size()];
      }
    }
    NetSocket* listener = SocketById(listener_sid);
    if (listener == nullptr) {
      stats_.rx_no_socket.fetch_add(1, std::memory_order_relaxed);
      (void)skb_pool_.Free(skb.addr);
      return NotFound(StrCat("net: no listener on port ", h.dst_port));
    }
    auto conn = CreateSocket(SocketKind::kStream);
    if (!conn.ok()) {
      (void)skb_pool_.Free(skb.addr);
      return conn.status();
    }
    {
      std::lock_guard<smp::SpinLock> guard(table_lock_);
      NetSocket& s = *sockets_[static_cast<size_t>(*conn)];
      s.local_port = h.dst_port;
      s.peer_ip = h.src_ip;
      s.peer_port = h.src_port;
      stream_conns_[StreamKey(h.dst_port, h.src_port, h.src_ip)] = *conn;
    }
    bool queued = false;
    {
      std::lock_guard<smp::SpinLock> guard(listener->lock);
      if (listener->open) {
        // Backlog growth under SYN pressure: double the capacity (fd-table
        // style) up to the configured ceiling instead of dropping at the
        // fixed initial 64 slots.
        const uint32_t max_cap =
            max_accept_backlog_.load(std::memory_order_relaxed);
        if (listener->backlog.size() >= listener->backlog_cap &&
            listener->backlog_cap < max_cap) {
          listener->backlog_cap =
              std::min(listener->backlog_cap * 2, max_cap);
        }
        if (listener->backlog.size() < listener->backlog_cap) {
          listener->backlog.push_back(*conn);
          queued = true;
        }
      }
    }
    if (!queued) {
      // A full-at-ceiling backlog drops the connection, loudly: the SYN is
      // accounted like any other rx-queue overflow. (Close runs with the
      // listener lock released — it takes table and socket locks itself.)
      {
        std::lock_guard<smp::SpinLock> guard(listener->lock);
        ++listener->rx_queue_drops;
      }
      stats_.rx_queue_drops.fetch_add(1, std::memory_order_relaxed);
      (void)Close(*conn);
    }
    (void)skb_pool_.Free(skb.addr);
    if (queued) {
      NotifyReady(listener_sid);
    }
    return OkStatus();
  }

  int sid = -1;
  {
    std::lock_guard<smp::SpinLock> guard(table_lock_);
    auto it =
        stream_conns_.find(StreamKey(h.dst_port, h.src_port, h.src_ip));
    if (it != stream_conns_.end()) {
      sid = it->second;
    }
  }
  NetSocket* sock = SocketById(sid);
  if (sock == nullptr) {
    stats_.rx_no_socket.fetch_add(1, std::memory_order_relaxed);
    (void)skb_pool_.Free(skb.addr);
    return NotFound("net: stream segment for unknown connection");
  }
  {
    std::lock_guard<smp::SpinLock> guard(sock->lock);
    if ((h.stream_flags & kStreamFin) != 0) {
      sock->peer_fin = true;
      (void)skb_pool_.Free(skb.addr);
    } else if (payload_len == 0 || !sock->open ||
               sock->rx.size() >= kMaxRxQueuePackets) {
      if (payload_len != 0) {
        ++sock->rx_queue_drops;
        stats_.rx_queue_drops.fetch_add(1, std::memory_order_relaxed);
      }
      (void)skb_pool_.Free(skb.addr);
      return OkStatus();  // A drop is not a readiness edge.
    } else {
      RxPacket pkt;
      pkt.skb_addr = skb.addr;
      pkt.off = h.payload_offset;
      pkt.len = payload_len;
      pkt.src_ip = h.src_ip;
      pkt.src_port = h.src_port;
      sock->rx.push_back(pkt);
      stats_.rx_delivered.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Data and FIN both make the socket readable; notify with the socket
  // lock released (the callback takes the kernel's evq locks).
  NotifyReady(sid);
  return OkStatus();
}

NetSocket* NetStack::SocketById(int sid) {
  if (sid < 0) {
    return nullptr;
  }
  std::lock_guard<smp::SpinLock> guard(table_lock_);
  if (static_cast<size_t>(sid) >= sockets_.size() ||
      sockets_[static_cast<size_t>(sid)] == nullptr ||
      !sockets_[static_cast<size_t>(sid)]->open) {
    return nullptr;
  }
  return sockets_[static_cast<size_t>(sid)].get();
}

Result<int> NetStack::CreateSocket(SocketKind kind) {
  uint64_t addr = sock_cache_.Allocate();
  if (addr == 0) {
    return FailedPrecondition("net: sock cache exhausted");
  }
  if (pools_ != nullptr) {
    // SVA-PORT(alloc): pchk.reg.obj on the sock object.
    Status reg = pools_->RegisterObject(*sock_metapool_, addr, 128);
    if (!reg.ok()) {
      (void)sock_cache_.Free(addr);
      return reg;
    }
  }
  auto sock = std::make_unique<NetSocket>();
  sock->kind = kind;
  sock->addr = addr;
  std::lock_guard<smp::SpinLock> guard(table_lock_);
  sockets_.push_back(std::move(sock));
  return static_cast<int>(sockets_.size() - 1);
}

Status NetStack::Bind(int sid, uint16_t port, bool reuse) {
  if (port == 0) {
    return InvalidArgument("net: bind to port 0");
  }
  std::lock_guard<smp::SpinLock> guard(table_lock_);
  if (sid < 0 || static_cast<size_t>(sid) >= sockets_.size() ||
      sockets_[static_cast<size_t>(sid)] == nullptr ||
      !sockets_[static_cast<size_t>(sid)]->open) {
    return NotFound("net: bind on bad socket");
  }
  NetSocket& sock = *sockets_[static_cast<size_t>(sid)];
  if (sock.local_port != 0) {
    return FailedPrecondition("net: socket already bound");
  }
  if (sock.kind == SocketKind::kStream) {
    return InvalidArgument("net: bind on an accepted connection");
  }
  if (sock.kind == SocketKind::kDatagram) {
    if (udp_ports_.count(port) != 0) {
      return AlreadyExists(StrCat("net: port ", port, " in use"));
    }
    sock.local_port = port;
    udp_ports_[port] = sid;
    return OkStatus();
  }
  // Listener: without `reuse` the port must be free; with it the listener
  // joins the port's accept-shard group (SO_REUSEPORT semantics).
  auto it = stream_listeners_.find(port);
  if (it != stream_listeners_.end() && !it->second.empty() && !reuse) {
    return AlreadyExists(StrCat("net: port ", port, " in use"));
  }
  sock.local_port = port;
  stream_listeners_[port].push_back(sid);
  return OkStatus();
}

Result<int> NetStack::Accept(int listener_sid) {
  NetSocket* listener = SocketById(listener_sid);
  if (listener == nullptr || listener->kind != SocketKind::kListener) {
    return InvalidArgument("net: accept on a non-listener");
  }
  std::lock_guard<smp::SpinLock> guard(listener->lock);
  if (listener->backlog.empty()) {
    return FailedPrecondition("net: no pending connections");
  }
  int sid = listener->backlog.front();
  listener->backlog.pop_front();
  stats_.conns_accepted.fetch_add(1, std::memory_order_relaxed);
  return sid;
}

Result<SocketKind> NetStack::Kind(int sid) {
  NetSocket* sock = SocketById(sid);
  if (sock == nullptr) {
    return NotFound("net: bad socket id");
  }
  return sock->kind;
}

Status NetStack::Close(int sid) {
  NetSocket* sock = SocketById(sid);
  if (sock == nullptr) {
    return NotFound("net: close on bad socket");
  }
  std::vector<int> orphaned;
  std::vector<uint64_t> to_free;
  {
    std::lock_guard<smp::SpinLock> table(table_lock_);
    std::lock_guard<smp::SpinLock> guard(sock->lock);
    sock->open = false;
    if (sock->kind == SocketKind::kDatagram && sock->local_port != 0) {
      udp_ports_.erase(sock->local_port);
    } else if (sock->kind == SocketKind::kListener && sock->local_port != 0) {
      // Leave the port's other accept shards serving; drop the group only
      // when this was the last one.
      auto it = stream_listeners_.find(sock->local_port);
      if (it != stream_listeners_.end()) {
        std::erase(it->second, sid);
        if (it->second.empty()) {
          stream_listeners_.erase(it);
        }
      }
    } else if (sock->kind == SocketKind::kStream) {
      stream_conns_.erase(
          StreamKey(sock->local_port, sock->peer_port, sock->peer_ip));
    }
    for (const RxPacket& pkt : sock->rx) {
      to_free.push_back(pkt.skb_addr);
    }
    sock->rx.clear();
    orphaned.assign(sock->backlog.begin(), sock->backlog.end());
    sock->backlog.clear();
  }
  for (uint64_t addr : to_free) {
    (void)skb_pool_.Free(addr);
  }
  for (int conn : orphaned) {
    (void)Close(conn);
  }
  if (pools_ != nullptr) {
    // SVA-PORT(alloc): pchk.drop.obj before the sock slot is reused.
    SVA_RETURN_IF_ERROR(pools_->DropObject(*sock_metapool_, sock->addr));
  }
  return sock_cache_.Free(sock->addr);
}

Result<Skb> NetStack::AllocTxSkb() { return skb_pool_.Alloc(); }

Status NetStack::FreeSkb(uint64_t addr) { return skb_pool_.Free(addr); }

Result<uint64_t> NetStack::Send(int sid, Skb skb, uint32_t payload_len,
                                uint32_t dst_ip, uint16_t dst_port) {
  NetSocket* sock = SocketById(sid);
  if (sock == nullptr) {
    (void)skb_pool_.Free(skb.addr);
    return NotFound("net: send on bad socket");
  }
  uint8_t protocol;
  uint16_t src_port;
  uint32_t max_payload;
  {
    std::lock_guard<smp::SpinLock> guard(sock->lock);
    switch (sock->kind) {
      case SocketKind::kDatagram:
        protocol = kIpProtoUdp;
        src_port = sock->local_port;
        max_payload = kMaxUdpPayload;
        if (dst_ip == 0 || dst_port == 0) {
          (void)skb_pool_.Free(skb.addr);
          return InvalidArgument("net: datagram send needs a destination");
        }
        break;
      case SocketKind::kStream:
        protocol = kIpProtoStream;
        src_port = sock->local_port;
        max_payload = kMaxStreamPayload;
        dst_ip = sock->peer_ip;
        dst_port = sock->peer_port;
        break;
      case SocketKind::kListener:
      default:
        (void)skb_pool_.Free(skb.addr);
        return InvalidArgument("net: send on a listener");
    }
  }
  if (payload_len > max_payload) {
    (void)skb_pool_.Free(skb.addr);
    return InvalidArgument("net: payload exceeds one frame");
  }

  // Frame the headers in front of the payload the caller already placed at
  // kTxPayloadOffset.
  std::vector<uint8_t> headers;
  BuildHeaders(headers, protocol, kServerIp, dst_ip, src_port, dst_port,
               payload_len);
  skb.len = static_cast<uint32_t>(headers.size()) + payload_len;
  if (pools_ != nullptr) {
    // SVA-PORT(analysis): bounds check on the header store loop's derived
    // pointer before writing into the packet buffer.
    Status check = pools_->BoundsCheck(*skb_pool_.metapool(), skb.addr,
                                       skb.addr + skb.len - 1);
    if (!check.ok()) {
      (void)skb_pool_.Free(skb.addr);
      return check;
    }
  }
  std::memcpy(machine_.memory().raw(skb.addr), headers.data(),
              headers.size());

  if (dst_ip == kLoopbackIp || dst_ip == kServerIp) {
    // The lo device: the frame never touches the NIC; it re-enters the rx
    // path (full parse + checks) and lands on the destination socket.
    stats_.loopback_frames.fetch_add(1, std::memory_order_relaxed);
    (void)DeliverFrame(skb);  // Undeliverable frames drop, as on a real lo.
    return payload_len;
  }
  SVA_RETURN_IF_ERROR(TransmitFrame(skb));
  return payload_len;
}

Status NetStack::TransmitFrame(Skb skb) {
  trace::Span span(trace::EventId::kNicTx, trace::HistId::kNicTxNs, skb.len);
  std::lock_guard<smp::SpinLock> guard(nic_lock_);
  hw::PhysicalMemory& mem = machine_.memory();
  uint64_t at = tx_ring_base_ + tx_next_ * hw::kNicDescriptorBytes;
  auto flags = mem.Read(at + 12, 2);
  if (!flags.ok() || (*flags & hw::kNicDescOwned) != 0) {
    (void)skb_pool_.Free(skb.addr);
    return FailedPrecondition("net: tx ring full");
  }
  // Zero-copy tx: the descriptor points straight at the packet-pool buffer.
  SVA_RETURN_IF_ERROR(mem.Write(at, 8, skb.addr));
  SVA_RETURN_IF_ERROR(mem.Write(at + 8, 2, kSkbBufferBytes));
  SVA_RETURN_IF_ERROR(mem.Write(at + 10, 2, skb.len));
  SVA_RETURN_IF_ERROR(mem.Write(at + 12, 2, hw::kNicDescOwned));
  tx_next_ = (tx_next_ + 1) % kTxRingSize;
  Status kick = IoWriteReg(hw::NicReg::kCommand,
                           static_cast<uint64_t>(hw::NicCommand::kTxKick));
  // The virtual NIC transmits synchronously on the kick, so the buffer is
  // free to reuse as soon as it returns.
  stats_.tx_frames.fetch_add(1, std::memory_order_relaxed);
  Status freed = skb_pool_.Free(skb.addr);
  SVA_RETURN_IF_ERROR(kick);
  return freed;
}

Result<NetStack::RecvSlice> NetStack::RecvBegin(int sid, uint32_t want) {
  NetSocket* sock = SocketById(sid);
  if (sock == nullptr) {
    return NotFound("net: recv on bad socket");
  }
  if (sock->kind == SocketKind::kListener) {
    return InvalidArgument("net: recv on a listener");
  }
  std::lock_guard<smp::SpinLock> guard(sock->lock);
  RecvSlice slice;
  if (sock->rx.empty() || want == 0) {
    return slice;  // len 0: nothing queued (or EOF after FIN).
  }
  RxPacket& front = sock->rx.front();
  slice.skb_addr = front.skb_addr;
  slice.data_addr = front.skb_addr + front.off;
  slice.len = std::min(want, front.len);
  if (sock->kind == SocketKind::kStream && slice.len < front.len) {
    // Partial byte-stream read: the remainder stays queued.
    front.off += slice.len;
    front.len -= slice.len;
    slice.free_skb = false;
  } else {
    // Whole packet consumed (datagrams always pop; the tail past `want` is
    // discarded, as recv(2) does).
    sock->rx.pop_front();
    slice.free_skb = true;
  }
  return slice;
}

Status NetStack::RecvFinish(const RecvSlice& slice) {
  if (slice.free_skb && slice.skb_addr != 0) {
    return skb_pool_.Free(slice.skb_addr);
  }
  return OkStatus();
}

uint32_t NetStack::PollReady(int sid) {
  NetSocket* sock = SocketById(sid);
  if (sock == nullptr) {
    // Gone (closed or never existed): report it as a terminal condition so
    // a stale watch fires once and gets culled instead of hanging a waiter.
    return kReadyErr | kReadyHup;
  }
  std::lock_guard<smp::SpinLock> guard(sock->lock);
  uint32_t mask = 0;
  if (sock->kind == SocketKind::kListener) {
    if (!sock->backlog.empty()) {
      mask |= kReadyIn;  // accept() won't block.
    }
    return mask;
  }
  if (!sock->rx.empty()) {
    mask |= kReadyIn;
  }
  if (sock->peer_fin) {
    // EOF is readable (recv returns 0) and reported as a hangup.
    mask |= kReadyIn | kReadyHup;
  }
  mask |= kReadyOut;  // The virtual tx path never backpressures a frame.
  return mask;
}

}  // namespace sva::net
