// The packet-buffer allocator: skb-style fixed-size buffers carved from a
// dedicated kernel pool (the skbuff cache) *correlated* with a metapool —
// the paper's core mechanism applied to the packet path. Every buffer that
// DMA can land in or that the stack frames into is pchk.reg.obj'd on
// allocation and pchk.drop.obj'd on free, so the parser's pointer
// arithmetic over header length fields is checkable against true object
// bounds.
#ifndef SVA_SRC_NET_SKB_H_
#define SVA_SRC_NET_SKB_H_

#include <cstdint>

#include "src/hw/machine.h"
#include "src/runtime/metapool_runtime.h"
#include "src/runtime/pool_allocator.h"
#include "src/support/status.h"

namespace sva::net {

// One buffer size fits every frame (MTU 1500 + link header + headroom),
// like Linux's single-size skb data area for MTU-sized traffic.
inline constexpr uint64_t kSkbBufferBytes = 2048;

// A packet buffer handle: the pool object's address in machine memory plus
// the number of valid frame bytes in it.
struct Skb {
  uint64_t addr = 0;
  uint32_t len = 0;
};

// PageProvider over the machine's bump allocator (the net subsystem's own
// instance: no dependency on the kernel's allocator wiring).
class NetPages : public runtime::PageProvider {
 public:
  explicit NetPages(hw::Machine& machine) : machine_(machine) {}
  uint64_t AllocatePage() override { return machine_.AllocatePhysicalPage(); }
  uint64_t page_size() const override { return hw::kPageSize; }

 private:
  hw::Machine& machine_;
};

class SkbPool {
 public:
  // `pools` may be null (no-check kernel modes); with checks on, a TH
  // complete metapool "MPc.skbuff" tracks every live buffer.
  SkbPool(hw::Machine& machine, runtime::MetaPoolRuntime* pools,
          bool safety_checks);

  // SVA-PORT(alloc): allocation performs the pchk.reg.obj the safety
  // compiler inserts after kmem_cache_alloc.
  Result<Skb> Alloc();
  // SVA-PORT(alloc): free performs pchk.drop.obj before the slot returns
  // to the cache's free list.
  Status Free(uint64_t addr);

  runtime::MetaPool* metapool() { return metapool_; }
  const runtime::PoolAllocator& cache() const { return cache_; }
  uint64_t live() const { return cache_.live_objects(); }

 private:
  NetPages pages_;
  runtime::PoolAllocator cache_;
  runtime::MetaPoolRuntime* pools_;
  runtime::MetaPool* metapool_ = nullptr;
};

}  // namespace sva::net

#endif  // SVA_SRC_NET_SKB_H_
