// Wire formats for the minikernel network stack: Ethernet II framing, a
// 20-byte IPv4 header with the ones'-complement header checksum, UDP, and
// a minimal stream transport ("stream", IP protocol 6) carrying
// SYN/FIN/DATA segments for the thttpd-style serving path.
//
// The parser deliberately returns the header length fields *as claimed on
// the wire*, unvalidated: trusting them is exactly the packet-parser bug
// class the metapool bounds check catches (the exploit scenario in
// src/exploits). Validation against the actual buffer is the caller's job.
#ifndef SVA_SRC_NET_PROTO_H_
#define SVA_SRC_NET_PROTO_H_

#include <cstdint>
#include <vector>

#include "src/support/status.h"

namespace sva::net {

inline constexpr uint64_t kEthHeaderBytes = 14;
inline constexpr uint64_t kIpHeaderBytes = 20;
inline constexpr uint64_t kUdpHeaderBytes = 8;
inline constexpr uint64_t kStreamHeaderBytes = 8;
inline constexpr uint16_t kEthertypeIpv4 = 0x0800;
inline constexpr uint8_t kIpProtoStream = 6;
inline constexpr uint8_t kIpProtoUdp = 17;

inline constexpr uint32_t kMtu = 1500;  // IP header + transport + payload.
// Largest payload one frame can carry per transport.
inline constexpr uint32_t kMaxUdpPayload =
    kMtu - kIpHeaderBytes - kUdpHeaderBytes;
inline constexpr uint32_t kMaxStreamPayload =
    kMtu - kIpHeaderBytes - kStreamHeaderBytes;

// Stream segment flags.
inline constexpr uint16_t kStreamSyn = 1 << 0;
inline constexpr uint16_t kStreamFin = 1 << 1;

// Parsed view of one frame's headers. Length fields are as claimed by the
// sender and may lie.
struct FrameHeader {
  uint16_t ethertype = 0;
  uint8_t protocol = 0;
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t ip_total_length = 0;  // Claimed: IP header + transport + payload.
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  // Claimed payload bytes after the transport header (from the UDP length
  // field or the stream segment length field).
  uint32_t claimed_payload = 0;
  uint16_t stream_flags = 0;
  // Offset of the transport payload from the start of the frame.
  uint32_t payload_offset = 0;
};

// Serializes eth+ip+transport headers for `payload_len` payload bytes into
// `out` (resized to payload_offset; caller appends or copies the payload).
// `claimed_payload_override`, when nonzero, is written into the transport
// length field instead of the truth — the malformed-packet injection knob.
void BuildHeaders(std::vector<uint8_t>& out, uint8_t protocol,
                  uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                  uint16_t dst_port, uint32_t payload_len,
                  uint16_t stream_flags = 0,
                  uint32_t claimed_payload_override = 0);

// Parses the headers of a frame of `len` readable bytes. Fails only on
// structural truncation (fewer bytes than the fixed headers), a non-IPv4
// ethertype, an unknown transport, or a corrupt IP header checksum; the
// claimed length fields are returned as-is.
Result<FrameHeader> ParseHeaders(const uint8_t* data, uint64_t len);

// Ones'-complement sum over `len` bytes (IP header checksum).
uint16_t IpChecksum(const uint8_t* data, uint64_t len);

}  // namespace sva::net

#endif  // SVA_SRC_NET_PROTO_H_
