// The minikernel network stack over the virtual NIC: an skb-backed NIC
// driver (descriptor rings posted with packet-pool buffers, rx interrupt
// through SVA-OS), Ethernet/IPv4 parsing with metapool bounds checks on
// every header-derived pointer, UDP datagram sockets, a minimal stream
// transport with listener/accept semantics, and a loopback (lo) device for
// in-kernel traffic.
//
// Locking: the stack runs OFF the big kernel lock (the per-subsystem
// locking the ROADMAP asks for). Three lock classes, never nested in
// reverse order:
//   table_lock_  - socket table and port demux maps (create/bind/close).
//   socket lock  - one per socket: rx queue and accept backlog.
//   nic_lock_    - descriptor rings and the posted-buffer slots.
// The rx path takes nic_lock_ to harvest, releases it, then takes
// table/socket locks to deliver; the tx path takes socket state first and
// nic_lock_ last. Allocator and metapool runtimes are internally
// thread-safe.
#ifndef SVA_SRC_NET_NET_STACK_H_
#define SVA_SRC_NET_NET_STACK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/net/proto.h"
#include "src/net/skb.h"
#include "src/runtime/metapool_runtime.h"
#include "src/smp/sync.h"
#include "src/support/status.h"
#include "src/svaos/svaos.h"

namespace sva::net {

// Interrupt vector the NIC driver registers through llva.register.interrupt.
inline constexpr unsigned kNicIrqVector = 32;

// The simulated topology: the kernel serves at kServerIp, the loopback
// client lives at kClientIp, and kLoopbackIp is the in-kernel lo device.
inline constexpr uint32_t kServerIp = 0x0A000001;    // 10.0.0.1
inline constexpr uint32_t kClientIp = 0x0A000002;    // 10.0.0.2
inline constexpr uint32_t kLoopbackIp = 0x7F000001;  // 127.0.0.1

inline constexpr uint64_t kRxRingSize = 256;
inline constexpr uint64_t kTxRingSize = 32;
inline constexpr uint32_t kAcceptBacklog = 64;
inline constexpr uint32_t kMaxRxQueuePackets = 512;
// NAPI-style rx: descriptors polled per pass with the interrupt line
// masked; the handler repeats passes while a full budget was consumed or
// the device still reports work, then unmasks.
inline constexpr uint64_t kNapiRxBudget = 64;

// Readiness bits reported by PollReady and pushed through the ready
// callback — numerically identical to the kernel's kEvq* event bits.
inline constexpr uint32_t kReadyIn = 1 << 0;   // recv/accept won't block.
inline constexpr uint32_t kReadyOut = 1 << 1;  // send won't block.
inline constexpr uint32_t kReadyErr = 1 << 2;  // Socket gone/invalid.
inline constexpr uint32_t kReadyHup = 1 << 3;  // Peer sent FIN.
// Payload offset inside a tx skb (eth + ip + transport; UDP and stream
// headers are the same size).
inline constexpr uint32_t kTxPayloadOffset =
    static_cast<uint32_t>(kEthHeaderBytes + kIpHeaderBytes + kUdpHeaderBytes);

enum class SocketKind { kDatagram = 1, kListener = 2, kStream = 3 };

// One queued receive: a region inside a live packet-pool buffer.
struct RxPacket {
  uint64_t skb_addr = 0;
  uint32_t off = 0;
  uint32_t len = 0;
  uint32_t src_ip = 0;
  uint16_t src_port = 0;
};

struct NetSocket {
  mutable smp::SpinLock lock;
  SocketKind kind = SocketKind::kDatagram;
  uint64_t addr = 0;  // Backing object in the net sock cache.
  bool open = true;
  uint16_t local_port = 0;
  uint32_t peer_ip = 0;    // Stream only.
  uint16_t peer_port = 0;  // Stream only.
  bool peer_fin = false;
  std::deque<RxPacket> rx;
  std::deque<int> backlog;  // Listener: pending connection socket ids.
  // Listener: current backlog capacity. Starts at kAcceptBacklog and
  // doubles under SYN pressure up to NetStack's max_accept_backlog (the
  // fd-table growth scheme applied to the accept queue).
  uint32_t backlog_cap = kAcceptBacklog;
  uint64_t rx_queue_drops = 0;
};

// Counters are atomics: rx delivery, tx, and socket paths run concurrently.
struct NetStats {
  std::atomic<uint64_t> rx_delivered{0};
  std::atomic<uint64_t> rx_parse_errors{0};
  std::atomic<uint64_t> rx_violations{0};  // Caught by the bounds check.
  std::atomic<uint64_t> rx_no_socket{0};
  std::atomic<uint64_t> rx_queue_drops{0};
  std::atomic<uint64_t> tx_frames{0};
  std::atomic<uint64_t> loopback_frames{0};
  std::atomic<uint64_t> conns_accepted{0};
  // NAPI accounting: interrupts taken, poll passes run under the masked
  // line, and frames harvested by those passes. frames/irqs >> 1 is the
  // batching win; irqs/frame < 1 is the acceptance criterion.
  std::atomic<uint64_t> rx_irqs{0};
  std::atomic<uint64_t> rx_polls{0};
  std::atomic<uint64_t> rx_frames_polled{0};
};

class NetStack {
 public:
  // `use_svaos`: SVA kernel modes reach the device through SVA-OS I/O ops
  // and deliver rx through the registered interrupt; native mode touches
  // the machine directly (the hand-written-driver baseline).
  NetStack(hw::Machine& machine, svaos::SvaOS& svaos,
           runtime::MetaPoolRuntime* pools, bool safety_checks,
           bool use_svaos);

  // Allocates the DMA rings, posts rx buffers from the packet pool,
  // programs and enables the NIC, and registers the rx interrupt handler.
  Status Boot();

  // --- Socket layer (the kernel's syscall backends) -------------------------
  Result<int> CreateSocket(SocketKind kind);
  // `reuse` (SO_REUSEPORT style) lets several listeners share one port as
  // accept shards; incoming SYNs are flow-hashed across the group.
  Status Bind(int sid, uint16_t port, bool reuse = false);
  // Pops one pending connection off a listener; FailedPrecondition when
  // the backlog is empty.
  Result<int> Accept(int listener_sid);
  Status Close(int sid);
  Result<SocketKind> Kind(int sid);

  // Tx: the caller allocates an skb, copies payload at kTxPayloadOffset,
  // then Send frames the headers around it and routes it. Send always
  // takes ownership of the skb.
  Result<Skb> AllocTxSkb();
  Status FreeSkb(uint64_t addr);
  Result<uint64_t> Send(int sid, Skb skb, uint32_t payload_len,
                        uint32_t dst_ip, uint16_t dst_port);

  // Rx: RecvBegin hands out a region of a live packet buffer (len 0 when
  // the queue is empty); the caller copies out and calls RecvFinish, which
  // frees the buffer once fully consumed. Stream sockets consume
  // byte-wise; datagram sockets pop whole packets.
  struct RecvSlice {
    uint64_t skb_addr = 0;
    uint64_t data_addr = 0;
    uint32_t len = 0;
    bool free_skb = false;
  };
  Result<RecvSlice> RecvBegin(int sid, uint32_t want);
  Status RecvFinish(const RecvSlice& slice);

  // --- Readiness (the kernel event queue's view of the stack) ----------------
  // Current level-triggered readiness of a socket, as kReady* bits.
  // A bad/closed sid reports kReadyErr|kReadyHup (so a stale watch fires
  // once more and can be culled rather than hanging a waiter).
  uint32_t PollReady(int sid);
  // Called (outside all stack locks) whenever a socket may have become
  // ready: rx data queued, a connection queued on a listener backlog, or a
  // FIN arrived. The kernel points this at its event-queue wakeup.
  void SetReadyCallback(std::function<void(int sid)> cb) {
    ready_cb_ = std::move(cb);
  }

  // --- Wire side (the outside world; used by src/net/client.h) ---------------
  // Delivers every pending rx interrupt: while the NIC status shows rx
  // pending, raise the vector (SVA modes) or call the handler (native).
  void PumpRx();

  hw::VirtualNic& nic() { return machine_.nic(); }
  SkbPool& skbs() { return skb_pool_; }
  const NetStats& stats() const { return stats_; }

  // Ceiling for dynamic listener-backlog growth (KernelConfig plumbs its
  // max_accept_backlog here at boot). Growth doubles from kAcceptBacklog.
  void set_max_accept_backlog(uint32_t cap) { max_accept_backlog_ = cap; }
  uint32_t max_accept_backlog() const { return max_accept_backlog_; }

 private:
  Status IoWriteReg(hw::NicReg reg, uint64_t value);
  Result<uint64_t> IoReadReg(hw::NicReg reg);
  // The rx interrupt handler body: mask the line, ack, poll the ring in
  // budget-bounded passes, unmask (NAPI).
  void HandleRxInterrupt();
  // One poll pass: harvests up to `budget` filled descriptors under
  // nic_lock_, delivers them with the lock released. Returns the harvest.
  uint64_t PollRxOnce(uint64_t budget);
  // Fires the kernel's readiness callback for `sid` (no stack locks held).
  void NotifyReady(int sid) {
    if (ready_cb_) {
      ready_cb_(sid);
    }
  }
  // Parses, bounds-checks, and demuxes one received frame; takes ownership
  // of the skb (enqueued to a socket or freed).
  Status DeliverFrame(Skb skb);
  Status DeliverStream(const FrameHeader& header, Skb skb,
                       uint32_t payload_len);
  // DMAs one framed skb out through the NIC tx ring; frees the skb.
  Status TransmitFrame(Skb skb);
  Status PostRxSlot(uint64_t index, uint64_t skb_addr);
  NetSocket* SocketById(int sid);
  static uint64_t StreamKey(uint16_t local_port, uint16_t peer_port,
                            uint32_t peer_ip) {
    return static_cast<uint64_t>(local_port) << 48 |
           static_cast<uint64_t>(peer_port) << 32 | peer_ip;
  }

  hw::Machine& machine_;
  svaos::SvaOS& svaos_;
  runtime::MetaPoolRuntime* pools_;  // Null when checks are off.
  const bool use_svaos_;
  SkbPool skb_pool_;
  // The sock cache, metapool-correlated like every other kernel cache.
  NetPages sock_pages_;
  runtime::PoolAllocator sock_cache_;
  runtime::MetaPool* sock_metapool_ = nullptr;

  mutable smp::SpinLock nic_lock_;
  uint64_t rx_ring_base_ = 0;
  uint64_t tx_ring_base_ = 0;
  std::array<uint64_t, kRxRingSize> rx_slot_skbs_{};
  uint64_t rx_next_ = 0;  // Next rx slot the driver harvests.
  uint64_t tx_next_ = 0;  // Next tx slot the driver fills.

  mutable smp::SpinLock table_lock_;
  std::vector<std::unique_ptr<NetSocket>> sockets_;
  std::map<uint16_t, int> udp_ports_;
  // Port -> accept-shard group: one listener, or several bound with
  // `reuse` (SYNs are flow-hashed across the vector).
  std::map<uint16_t, std::vector<int>> stream_listeners_;
  std::map<uint64_t, int> stream_conns_;  // StreamKey -> socket id.

  std::function<void(int sid)> ready_cb_;
  std::atomic<uint32_t> max_accept_backlog_{16384};
  NetStats stats_;
  bool booted_ = false;
};

}  // namespace sva::net

#endif  // SVA_SRC_NET_NET_STACK_H_
