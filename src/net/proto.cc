#include "src/net/proto.h"

#include <cstring>

#include "src/support/strings.h"

namespace sva::net {

namespace {

void Put16(uint8_t* at, uint16_t v) {
  at[0] = static_cast<uint8_t>(v >> 8);
  at[1] = static_cast<uint8_t>(v);
}

void Put32(uint8_t* at, uint32_t v) {
  at[0] = static_cast<uint8_t>(v >> 24);
  at[1] = static_cast<uint8_t>(v >> 16);
  at[2] = static_cast<uint8_t>(v >> 8);
  at[3] = static_cast<uint8_t>(v);
}

uint16_t Get16(const uint8_t* at) {
  return static_cast<uint16_t>(at[0] << 8 | at[1]);
}

uint32_t Get32(const uint8_t* at) {
  return static_cast<uint32_t>(at[0]) << 24 | static_cast<uint32_t>(at[1]) << 16 |
         static_cast<uint32_t>(at[2]) << 8 | at[3];
}

}  // namespace

uint16_t IpChecksum(const uint8_t* data, uint64_t len) {
  uint32_t sum = 0;
  for (uint64_t i = 0; i + 1 < len; i += 2) {
    sum += Get16(data + i);
  }
  if (len % 2 != 0) {
    sum += static_cast<uint32_t>(data[len - 1]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

void BuildHeaders(std::vector<uint8_t>& out, uint8_t protocol,
                  uint32_t src_ip, uint32_t dst_ip, uint16_t src_port,
                  uint16_t dst_port, uint32_t payload_len,
                  uint16_t stream_flags, uint32_t claimed_payload_override) {
  uint64_t transport = protocol == kIpProtoUdp ? kUdpHeaderBytes
                                               : kStreamHeaderBytes;
  uint32_t claimed = claimed_payload_override != 0 ? claimed_payload_override
                                                   : payload_len;
  out.assign(kEthHeaderBytes + kIpHeaderBytes + transport, 0);
  uint8_t* eth = out.data();
  // Placeholder locally-administered MACs; the simulation routes by IP.
  std::memset(eth, 0x02, 12);
  Put16(eth + 12, kEthertypeIpv4);

  uint8_t* ip = eth + kEthHeaderBytes;
  ip[0] = 0x45;  // Version 4, IHL 5 words.
  Put16(ip + 2, static_cast<uint16_t>(kIpHeaderBytes + transport + claimed));
  ip[8] = 64;  // TTL.
  ip[9] = protocol;
  Put32(ip + 12, src_ip);
  Put32(ip + 16, dst_ip);
  Put16(ip + 10, 0);
  Put16(ip + 10, IpChecksum(ip, kIpHeaderBytes));

  uint8_t* tp = ip + kIpHeaderBytes;
  Put16(tp, src_port);
  Put16(tp + 2, dst_port);
  if (protocol == kIpProtoUdp) {
    Put16(tp + 4, static_cast<uint16_t>(kUdpHeaderBytes + claimed));
    Put16(tp + 6, 0);  // UDP checksum optional over the virtual wire.
  } else {
    Put16(tp + 4, stream_flags);
    Put16(tp + 6, static_cast<uint16_t>(claimed));
  }
}

Result<FrameHeader> ParseHeaders(const uint8_t* data, uint64_t len) {
  if (len < kEthHeaderBytes + kIpHeaderBytes) {
    return InvalidArgument("net: truncated frame");
  }
  FrameHeader h;
  h.ethertype = Get16(data + 12);
  if (h.ethertype != kEthertypeIpv4) {
    return InvalidArgument(StrCat("net: unknown ethertype ", h.ethertype));
  }
  const uint8_t* ip = data + kEthHeaderBytes;
  if ((ip[0] >> 4) != 4 || (ip[0] & 0x0F) != 5) {
    return InvalidArgument("net: bad IP version/IHL");
  }
  if (IpChecksum(ip, kIpHeaderBytes) != 0) {
    return InvalidArgument("net: IP header checksum mismatch");
  }
  h.ip_total_length = Get16(ip + 2);
  h.protocol = ip[9];
  h.src_ip = Get32(ip + 12);
  h.dst_ip = Get32(ip + 16);

  uint64_t transport;
  if (h.protocol == kIpProtoUdp) {
    transport = kUdpHeaderBytes;
  } else if (h.protocol == kIpProtoStream) {
    transport = kStreamHeaderBytes;
  } else {
    return InvalidArgument(StrCat("net: unknown transport ", h.protocol));
  }
  if (len < kEthHeaderBytes + kIpHeaderBytes + transport) {
    return InvalidArgument("net: truncated transport header");
  }
  const uint8_t* tp = ip + kIpHeaderBytes;
  h.src_port = Get16(tp);
  h.dst_port = Get16(tp + 2);
  if (h.protocol == kIpProtoUdp) {
    uint16_t udp_len = Get16(tp + 4);
    h.claimed_payload =
        udp_len >= kUdpHeaderBytes ? udp_len - kUdpHeaderBytes : 0;
  } else {
    h.stream_flags = Get16(tp + 4);
    h.claimed_payload = Get16(tp + 6);
  }
  h.payload_offset =
      static_cast<uint32_t>(kEthHeaderBytes + kIpHeaderBytes + transport);
  return h;
}

}  // namespace sva::net
