#include "src/net/client.h"

#include <algorithm>
#include <cstring>

namespace sva::net {

Status LoopbackClient::Inject(const std::vector<uint8_t>& frame) {
  Status rx = stack_.nic().Receive(frame.data(), frame.size());
  ++frames_sent_;
  if (batch_) {
    // Batch mode: leave the frame in the ring for the next Flush(); only a
    // full ring forces an early drain (as wire backpressure would).
    if (!rx.ok() && rx.code() == StatusCode::kFailedPrecondition) {
      stack_.PumpRx();
      rx = stack_.nic().Receive(frame.data(), frame.size());
    }
    return rx;
  }
  // Deliver whatever landed (including earlier frames) even if this one was
  // tail-dropped by a full ring.
  stack_.PumpRx();
  if (!rx.ok() && rx.code() == StatusCode::kFailedPrecondition) {
    // Ring was full: the driver has now drained it, retry once.
    rx = stack_.nic().Receive(frame.data(), frame.size());
    stack_.PumpRx();
  }
  return rx;
}

Status LoopbackClient::SendDatagram(uint16_t src_port, uint16_t dst_port,
                                    const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxUdpPayload) {
    return InvalidArgument("client: datagram larger than one frame");
  }
  std::vector<uint8_t> frame;
  BuildHeaders(frame, kIpProtoUdp, ip_, kServerIp, src_port, dst_port,
               static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return Inject(frame);
}

Status LoopbackClient::SendMalformedDatagram(uint16_t src_port,
                                             uint16_t dst_port,
                                             uint32_t claimed_payload,
                                             uint32_t actual_payload) {
  std::vector<uint8_t> frame;
  BuildHeaders(frame, kIpProtoUdp, ip_, kServerIp, src_port, dst_port,
               actual_payload, /*stream_flags=*/0, claimed_payload);
  frame.resize(frame.size() + actual_payload, 0xA5);
  return Inject(frame);
}

Result<int> LoopbackClient::OpenStream(uint16_t dst_port) {
  Conn conn;
  conn.local_port = next_ephemeral_++;
  conn.dst_port = dst_port;
  std::vector<uint8_t> frame;
  BuildHeaders(frame, kIpProtoStream, ip_, kServerIp, conn.local_port,
               dst_port, 0, kStreamSyn);
  SVA_RETURN_IF_ERROR(Inject(frame));
  conns_.push_back(conn);
  int index = static_cast<int>(conns_.size()) - 1;
  port_to_conn_[conn.local_port] = index;
  return index;
}

Status LoopbackClient::SendStream(int conn, const uint8_t* data,
                                  uint64_t len) {
  if (conn < 0 || static_cast<size_t>(conn) >= conns_.size()) {
    return InvalidArgument("client: bad connection handle");
  }
  const Conn& c = conns_[static_cast<size_t>(conn)];
  uint64_t sent = 0;
  while (sent < len) {
    uint32_t chunk = static_cast<uint32_t>(
        std::min<uint64_t>(len - sent, kMaxStreamPayload));
    std::vector<uint8_t> frame;
    BuildHeaders(frame, kIpProtoStream, ip_, kServerIp, c.local_port,
                 c.dst_port, chunk);
    frame.insert(frame.end(), data + sent, data + sent + chunk);
    SVA_RETURN_IF_ERROR(Inject(frame));
    sent += chunk;
  }
  return OkStatus();
}

Status LoopbackClient::SendStream(int conn, const std::string& data) {
  return SendStream(conn, reinterpret_cast<const uint8_t*>(data.data()),
                    data.size());
}

Status LoopbackClient::CloseStream(int conn) {
  if (conn < 0 || static_cast<size_t>(conn) >= conns_.size()) {
    return InvalidArgument("client: bad connection handle");
  }
  const Conn& c = conns_[static_cast<size_t>(conn)];
  std::vector<uint8_t> frame;
  BuildHeaders(frame, kIpProtoStream, ip_, kServerIp, c.local_port,
               c.dst_port, 0, kStreamFin);
  return Inject(frame);
}

uint64_t LoopbackClient::Poll() {
  uint64_t consumed = 0;
  for (const std::vector<uint8_t>& frame : stack_.nic().DrainTransmitted()) {
    ++consumed;
    ++frames_received_;
    auto header = ParseHeaders(frame.data(), frame.size());
    if (!header.ok() || header->dst_ip != ip_) {
      continue;  // Not for this host (or mangled); a real NIC would filter.
    }
    uint64_t have = frame.size() - header->payload_offset;
    uint64_t take = std::min<uint64_t>(header->claimed_payload, have);
    const uint8_t* payload = frame.data() + header->payload_offset;
    if (header->protocol == kIpProtoStream) {
      auto it = port_to_conn_.find(header->dst_port);
      if (it != port_to_conn_.end()) {
        conns_[static_cast<size_t>(it->second)].rx.append(
            reinterpret_cast<const char*>(payload), take);
      }
    } else if (header->protocol == kIpProtoUdp) {
      datagrams_.emplace_back(payload, payload + take);
    }
  }
  return consumed;
}

std::string LoopbackClient::TakeStream(int conn) {
  Poll();
  if (conn < 0 || static_cast<size_t>(conn) >= conns_.size()) {
    return "";
  }
  std::string out;
  out.swap(conns_[static_cast<size_t>(conn)].rx);
  return out;
}

std::vector<std::vector<uint8_t>> LoopbackClient::TakeDatagrams() {
  Poll();
  std::vector<std::vector<uint8_t>> out;
  out.swap(datagrams_);
  return out;
}

}  // namespace sva::net
