#include "src/net/skb.h"

namespace sva::net {

SkbPool::SkbPool(hw::Machine& machine, runtime::MetaPoolRuntime* pools,
                 bool safety_checks)
    : pages_(machine),
      cache_("skbuff", kSkbBufferBytes, pages_),
      pools_(safety_checks ? pools : nullptr) {
  if (pools_ != nullptr) {
    metapool_ = pools_->GetPool("MPc.skbuff", /*type_homogeneous=*/true,
                                kSkbBufferBytes, /*complete=*/true);
  }
}

Result<Skb> SkbPool::Alloc() {
  uint64_t addr = cache_.Allocate();
  if (addr == 0) {
    return FailedPrecondition("skb pool exhausted");
  }
  if (pools_ != nullptr) {
    Status reg = pools_->RegisterObject(*metapool_, addr, kSkbBufferBytes);
    if (!reg.ok()) {
      (void)cache_.Free(addr);
      return reg;
    }
  }
  Skb skb;
  skb.addr = addr;
  return skb;
}

Status SkbPool::Free(uint64_t addr) {
  if (pools_ != nullptr) {
    SVA_RETURN_IF_ERROR(pools_->DropObject(*metapool_, addr));
  }
  return cache_.Free(addr);
}

}  // namespace sva::net
