// The load generator: a host at kClientIp on the far side of the wire. It
// builds frames host-side (it is not kernel code and runs no safety
// checks), injects them through VirtualNic::Receive — exactly the path DMA
// from a physical link would take — and collects the kernel's replies from
// the NIC tx queue. Benchmarks and the table6 harness drive it as the
// "client machine" of the paper's bandwidth experiment.
#ifndef SVA_SRC_NET_CLIENT_H_
#define SVA_SRC_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/net/net_stack.h"
#include "src/net/proto.h"
#include "src/support/status.h"

namespace sva::net {

class LoopbackClient {
 public:
  explicit LoopbackClient(NetStack& stack, uint32_t ip = kClientIp)
      : stack_(stack), ip_(ip) {}

  // --- Datagrams ------------------------------------------------------------
  // One UDP datagram to the server; pumps rx so it is delivered before
  // returning.
  Status SendDatagram(uint16_t src_port, uint16_t dst_port,
                      const std::vector<uint8_t>& payload);
  // The attack frame: the UDP length field claims `claimed_payload` bytes
  // while the frame actually carries `actual_payload`. A correct stack
  // bounds-checks the claim against the packet buffer before trusting it.
  Status SendMalformedDatagram(uint16_t src_port, uint16_t dst_port,
                               uint32_t claimed_payload,
                               uint32_t actual_payload);

  // --- Streams --------------------------------------------------------------
  // Opens a connection to a listening server port: sends SYN from a fresh
  // ephemeral port. Returns a client-side connection handle.
  Result<int> OpenStream(uint16_t dst_port);
  // Sends bytes on the connection, chunked into MTU-sized frames.
  Status SendStream(int conn, const uint8_t* data, uint64_t len);
  Status SendStream(int conn, const std::string& data);
  Status CloseStream(int conn);  // FIN.

  // Drains the NIC tx queue, parses each frame host-side, and routes
  // payloads into per-connection (and datagram) receive buffers. Returns
  // the number of frames consumed.
  uint64_t Poll();

  // Received bytes on a stream connection (Polls first); the returned data
  // is removed from the buffer.
  std::string TakeStream(int conn);
  // Received datagrams addressed to this host (Polls first).
  std::vector<std::vector<uint8_t>> TakeDatagrams();

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_received() const { return frames_received_; }

  // Batch injection: queue frames in the NIC ring without pumping delivery
  // per frame; the kernel sees one rx interrupt per Flush() (or per
  // ring-full drain) and the NAPI poll loop harvests the burst. This is how
  // a real link offers back-to-back frames — per-frame pumping models an
  // interrupt per packet, the worst case NAPI exists to avoid.
  void set_batch_mode(bool on) { batch_ = on; }
  // Delivers everything injected since the last pump.
  void Flush() { stack_.PumpRx(); }

 private:
  // Injects one framed buffer into the NIC and pumps delivery.
  Status Inject(const std::vector<uint8_t>& frame);

  struct Conn {
    uint16_t local_port = 0;
    uint16_t dst_port = 0;
    std::string rx;
  };

  NetStack& stack_;
  const uint32_t ip_;
  uint16_t next_ephemeral_ = 40000;
  std::vector<Conn> conns_;
  std::map<uint32_t, int> port_to_conn_;  // client-side port -> conn index
  std::vector<std::vector<uint8_t>> datagrams_;
  uint64_t frames_sent_ = 0;
  uint64_t frames_received_ = 0;
  bool batch_ = false;
};

}  // namespace sva::net

#endif  // SVA_SRC_NET_CLIENT_H_
