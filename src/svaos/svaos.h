// SVA-OS: the OS support operations of Section 3.3, Tables 1 and 2. These
// abstract every privileged hardware operation a kernel performs — state
// save/restore, interrupt contexts, MMU configuration, interrupt/syscall
// handler registration, and I/O — so that a ported kernel contains no
// assembly and the SVM mediates all privileged behaviour.
//
// Design choice carried over from the paper: SVA-OS provides *mechanisms
// only*; all policy (scheduling, signal semantics, fd tables) lives in the
// minikernel (src/kernel).
#ifndef SVA_SRC_SVAOS_SVAOS_H_
#define SVA_SRC_SVAOS_SVAOS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/hw/machine.h"
#include "src/support/status.h"

namespace sva::svaos {

// Opaque buffer for llva.save.integer / llva.load.integer (Table 1). The
// kernel sees only this handle; the layout belongs to the SVM.
struct SavedIntegerState {
  hw::ControlState control;
  bool valid = false;
};

// Opaque buffer for llva.save.fp / llva.load.fp.
struct SavedFpState {
  hw::FpState fp;
  bool valid = false;
};

// A function call pushed onto an interrupted context by
// llva.ipush.function — the signal-dispatch mechanism of Table 2.
struct PushedCall {
  std::function<void(uint64_t)> fn;
  uint64_t argument = 0;
};

// The interrupt context of Section 3.3: the interrupted control state, kept
// on the kernel stack by the SVM, manipulated only through the llva.icontext
// operations.
class InterruptContext {
 public:
  uint64_t id() const { return id_; }
  bool committed() const { return committed_; }

 private:
  friend class SvaOS;
  uint64_t id_ = 0;
  hw::ControlState interrupted_;
  bool from_privileged_ = false;
  bool committed_ = false;
  std::vector<PushedCall> pushed_;
};

// Per-operation counters; the Table 7 analysis attributes syscall overhead
// to these operations.
struct SvaOsStats {
  uint64_t save_integer = 0;
  uint64_t load_integer = 0;
  uint64_t save_fp = 0;
  uint64_t save_fp_skipped = 0;  // Lazy saves avoided (Table 1 `always=0`).
  uint64_t load_fp = 0;
  uint64_t icontext_created = 0;
  uint64_t icontext_committed = 0;
  uint64_t ipush_function = 0;
  uint64_t syscalls_dispatched = 0;
  uint64_t interrupts_dispatched = 0;
  uint64_t mmu_ops = 0;
  uint64_t io_ops = 0;
};

struct SyscallArgs {
  std::array<uint64_t, 6> args{};
  InterruptContext* icontext = nullptr;
};

using SyscallHandler = std::function<Result<uint64_t>(const SyscallArgs&)>;
using InterruptHandler = std::function<void(InterruptContext*)>;

class SvaOS {
 public:
  explicit SvaOS(hw::Machine& machine);

  // --- Table 1: native state save/restore ------------------------------------
  void SaveIntegerState(SavedIntegerState* buffer);
  Status LoadIntegerState(const SavedIntegerState& buffer);
  // Returns true if state was actually written (lazy when always == false).
  bool SaveFpState(SavedFpState* buffer, bool always);
  Status LoadFpState(const SavedFpState& buffer);

  // --- Table 2: interrupt contexts ---------------------------------------------
  // llva.icontext.save: capture the context as Integer State.
  void IContextSave(const InterruptContext* icp, SavedIntegerState* out);
  // llva.icontext.load: replace the interrupted state.
  Status IContextLoad(InterruptContext* icp, const SavedIntegerState& in);
  // llva.icontext.commit: write the full context to memory.
  void IContextCommit(InterruptContext* icp);
  // llva.ipush.function: make `fn(argument)` run when the context resumes.
  void IPushFunction(InterruptContext* icp, std::function<void(uint64_t)> fn,
                     uint64_t argument);
  // llva.was.privileged.
  bool WasPrivileged(const InterruptContext* icp) const;

  // --- Handler registration -----------------------------------------------------
  Status RegisterSyscall(uint64_t number, SyscallHandler handler);
  Status RegisterInterrupt(unsigned vector, InterruptHandler handler);
  bool HasSyscall(uint64_t number) const {
    return syscalls_.count(number) != 0;
  }

  // --- Dispatch -------------------------------------------------------------------
  // Raises the syscall trap: builds an interrupt context, elevates to
  // kernel privilege, runs the registered handler, runs pushed functions,
  // and restores the interrupted state. This is the kernel entry path the
  // Table 7 microbenchmarks measure.
  Result<uint64_t> Syscall(uint64_t number,
                           const std::array<uint64_t, 6>& args);
  // Raises a hardware interrupt through the registered vector.
  Status RaiseInterrupt(unsigned vector);

  // --- MMU and I/O (privileged operations) -------------------------------------
  Status MmuMap(uint64_t vaddr, uint64_t paddr, uint32_t flags);
  Status MmuUnmap(uint64_t vaddr);
  Status LoadPageTable(uint64_t base);
  // Reserves a page for the SVM itself: the kernel can never map over or
  // unmap it (Section 3.4: SVM memory is invisible to the kernel).
  Status ReserveSvmPage(uint64_t vaddr, uint64_t paddr);

  Result<uint64_t> IoRead(uint16_t port);
  Status IoWrite(uint16_t port, uint64_t value);

  hw::Machine& machine() { return machine_; }
  const SvaOsStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SvaOsStats{}; }

 private:
  InterruptContext* EnterKernel();
  void ReturnFromInterrupt(InterruptContext* icp);

  hw::Machine& machine_;
  SvaOsStats stats_;
  std::map<uint64_t, SyscallHandler> syscalls_;
  std::array<InterruptHandler, hw::kNumVectors> interrupts_;
  // The kernel-stack region holding live interrupt contexts: a fixed slab,
  // like the real kernel stack — no allocation on the trap path. Nested
  // interrupts stack up to the slab depth.
  static constexpr size_t kMaxNestedContexts = 32;
  std::array<InterruptContext, kMaxNestedContexts> icontext_slab_;
  size_t icontext_depth_ = 0;
  uint64_t next_icontext_id_ = 1;
};

}  // namespace sva::svaos

#endif  // SVA_SRC_SVAOS_SVAOS_H_
