// SVA-OS: the OS support operations of Section 3.3, Tables 1 and 2. These
// abstract every privileged hardware operation a kernel performs — state
// save/restore, interrupt contexts, MMU configuration, interrupt/syscall
// handler registration, and I/O — so that a ported kernel contains no
// assembly and the SVM mediates all privileged behaviour.
//
// Design choice carried over from the paper: SVA-OS provides *mechanisms
// only*; all policy (scheduling, signal semantics, fd tables) lives in the
// minikernel (src/kernel).
//
// SMP: the per-processor state the paper assumes (interrupt-context stack,
// save/restore buffers, per-processor counters) lives on smp::VirtualCpu;
// SvaOS dispatches against the calling thread's CPU (smp::current_cpu_id).
// CPU 0 is bound to the machine's boot CPU, so a single-CPU configuration
// behaves exactly as the pre-SMP code did.
#ifndef SVA_SRC_SVAOS_SVAOS_H_
#define SVA_SRC_SVAOS_SVAOS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/hw/machine.h"
#include "src/smp/vcpu.h"
#include "src/support/status.h"

namespace sva::svaos {

// The SVA-OS state types are per-CPU and live with the virtual CPU
// (src/smp/vcpu.h); aliased here so kernel and test code keeps the
// svaos:: spelling.
using SavedIntegerState = smp::SavedIntegerState;
using SavedFpState = smp::SavedFpState;
using PushedCall = smp::PushedCall;
using InterruptContext = smp::InterruptContext;
using SvaOsStats = smp::SvaOsStats;

// Interrupt vector SvaOS::TlbShootdown raises on the initiating CPU to
// model the cross-CPU shootdown IPI round (the NIC owns vector 32).
inline constexpr unsigned kTlbShootdownVector = 33;

struct SyscallArgs {
  std::array<uint64_t, 6> args{};
  InterruptContext* icontext = nullptr;
};

using SyscallHandler = std::function<Result<uint64_t>(const SyscallArgs&)>;
using InterruptHandler = std::function<void(InterruptContext*)>;

class SvaOS {
 public:
  explicit SvaOS(hw::Machine& machine);

  // --- SMP topology ------------------------------------------------------------
  // Brings up `n` virtual CPUs (clamped to [1, smp::kMaxCpus]); call before
  // spawning worker threads. Workers bind with smp::ScopedCpu.
  void ConfigureCpus(unsigned n) { vmp_.Configure(n); }
  unsigned num_cpus() const { return vmp_.num_cpus(); }
  smp::VirtualCpu& current_cpu() { return vmp_.Current(); }
  smp::VirtualCpu& cpu(unsigned id) { return vmp_.cpu(id); }

  // --- Table 1: native state save/restore ------------------------------------
  void SaveIntegerState(SavedIntegerState* buffer);
  Status LoadIntegerState(const SavedIntegerState& buffer);
  // Returns true if state was actually written (lazy when always == false).
  bool SaveFpState(SavedFpState* buffer, bool always);
  Status LoadFpState(const SavedFpState& buffer);

  // --- Table 2: interrupt contexts ---------------------------------------------
  // llva.icontext.save: capture the context as Integer State.
  void IContextSave(const InterruptContext* icp, SavedIntegerState* out);
  // llva.icontext.load: replace the interrupted state.
  Status IContextLoad(InterruptContext* icp, const SavedIntegerState& in);
  // llva.icontext.commit: write the full context to memory.
  void IContextCommit(InterruptContext* icp);
  // llva.ipush.function: make `fn(argument)` run when the context resumes.
  void IPushFunction(InterruptContext* icp, std::function<void(uint64_t)> fn,
                     uint64_t argument);
  // llva.was.privileged.
  bool WasPrivileged(const InterruptContext* icp) const;

  // --- Handler registration -----------------------------------------------------
  Status RegisterSyscall(uint64_t number, SyscallHandler handler);
  Status RegisterInterrupt(unsigned vector, InterruptHandler handler);
  bool HasSyscall(uint64_t number) const {
    return syscalls_.count(number) != 0;
  }

  // --- Dispatch -------------------------------------------------------------------
  // Raises the syscall trap: builds an interrupt context, elevates to
  // kernel privilege, runs the registered handler, runs pushed functions,
  // and restores the interrupted state. This is the kernel entry path the
  // Table 7 microbenchmarks measure.
  Result<uint64_t> Syscall(uint64_t number,
                           const std::array<uint64_t, 6>& args);
  // Raises a hardware interrupt through the registered vector.
  Status RaiseInterrupt(unsigned vector);

  // --- MMU and I/O (privileged operations) -------------------------------------
  // The ONLY translation-mutation path in the system (§4.3): each op
  // validates the request against the declared frame types before touching
  // the page tables. A kernel (or driver) asking for a user-accessible
  // mapping of a kernel, page-table, I/O, or SVM frame gets a
  // SafetyViolation, never a mapping.
  Status MmuMap(uint32_t asid, uint64_t vaddr, uint64_t paddr,
                uint32_t flags);
  Status MmuUnmap(uint32_t asid, uint64_t vaddr);
  // Changes an existing mapping's protection (the COW downgrade/upgrade
  // path), subject to the same frame-type checks as MmuMap.
  Status MmuProtect(uint32_t asid, uint64_t vaddr, uint32_t flags);
  // Declares what a physical frame is used for; checked by every later map.
  Status DeclareFrameType(uint64_t paddr, hw::FrameType type);
  // Address-space lifecycle for per-task page tables.
  Result<uint32_t> CreateAddressSpace();
  Status DestroyAddressSpace(uint32_t asid);
  // Invalidates (asid, vaddr) — or the whole asid when `entire_asid` — in
  // EVERY configured CPU's TLB, then raises kTlbShootdownVector on the
  // initiating CPU if a handler is registered. Synchronous: when it
  // returns, no stale translation survives anywhere (the IPI+ack round).
  Status TlbShootdown(uint32_t asid, uint64_t vaddr, bool entire_asid);

  // Kernel-asid conveniences (the pre-asid API; tests and boot mappings).
  Status MmuMap(uint64_t vaddr, uint64_t paddr, uint32_t flags) {
    return MmuMap(hw::Mmu::kKernelAsid, vaddr, paddr, flags);
  }
  Status MmuUnmap(uint64_t vaddr) {
    return MmuUnmap(hw::Mmu::kKernelAsid, vaddr);
  }
  Status LoadPageTable(uint64_t base);
  // Reserves a page for the SVM itself: the kernel can never map over or
  // unmap it (Section 3.4: SVM memory is invisible to the kernel).
  Status ReserveSvmPage(uint64_t vaddr, uint64_t paddr);

  Result<uint64_t> IoRead(uint16_t port);
  Status IoWrite(uint16_t port, uint64_t value);

  hw::Machine& machine() { return machine_; }
  // Aggregated over all CPUs.
  SvaOsStats stats() const { return vmp_.AggregateStats(); }
  void ResetStats() { vmp_.ResetStats(); }

 private:
  InterruptContext* EnterKernel();
  void ReturnFromInterrupt(InterruptContext* icp);
  // The hardware CPU behind the calling thread's virtual CPU.
  hw::Cpu& cpu_hw() { return vmp_.Current().cpu(); }
  SvaOsStats& cpu_stats() { return vmp_.Current().stats(); }

  hw::Machine& machine_;
  smp::VirtualMultiprocessor vmp_;
  std::map<uint64_t, SyscallHandler> syscalls_;
  std::array<InterruptHandler, hw::kNumVectors> interrupts_;
  // Context ids are global (they name contexts across all CPUs).
  std::atomic<uint64_t> next_icontext_id_{1};
};

}  // namespace sva::svaos

#endif  // SVA_SRC_SVAOS_SVAOS_H_
