#include "src/svaos/svaos.h"

#include "src/support/strings.h"
#include "src/trace/profiler.h"
#include "src/trace/trace.h"

namespace sva::svaos {

SvaOS::SvaOS(hw::Machine& machine)
    : machine_(machine), vmp_(machine.cpu()) {}

// --- Table 1 ---------------------------------------------------------------------

void SvaOS::SaveIntegerState(SavedIntegerState* buffer) {
  ++cpu_stats().save_integer;
  trace::Emit(trace::EventId::kSaveInteger,
              reinterpret_cast<uint64_t>(buffer));
  buffer->control = cpu_hw().control();
  buffer->valid = true;
}

Status SvaOS::LoadIntegerState(const SavedIntegerState& buffer) {
  if (!buffer.valid) {
    return FailedPrecondition(
        "llva.load.integer: buffer never saved");
  }
  ++cpu_stats().load_integer;
  trace::Emit(trace::EventId::kLoadInteger,
              reinterpret_cast<uint64_t>(&buffer));
  cpu_hw().control() = buffer.control;
  return OkStatus();
}

bool SvaOS::SaveFpState(SavedFpState* buffer, bool always) {
  hw::Cpu& cpu = cpu_hw();
  if (!always && !cpu.fp_dirty()) {
    ++cpu_stats().save_fp_skipped;
    return false;  // Lazy save: FP untouched since the last load.
  }
  ++cpu_stats().save_fp;
  buffer->fp = cpu.fp();
  buffer->valid = true;
  cpu.set_fp_dirty(false);
  return true;
}

Status SvaOS::LoadFpState(const SavedFpState& buffer) {
  if (!buffer.valid) {
    return FailedPrecondition("llva.load.fp: buffer never saved");
  }
  ++cpu_stats().load_fp;
  cpu_hw().fp() = buffer.fp;
  cpu_hw().set_fp_dirty(false);
  return OkStatus();
}

// --- Table 2 ---------------------------------------------------------------------

void SvaOS::IContextSave(const InterruptContext* icp, SavedIntegerState* out) {
  out->control = icp->interrupted_;
  out->valid = true;
}

Status SvaOS::IContextLoad(InterruptContext* icp,
                           const SavedIntegerState& in) {
  if (!in.valid) {
    return FailedPrecondition("llva.icontext.load: buffer never saved");
  }
  icp->interrupted_ = in.control;
  return OkStatus();
}

void SvaOS::IContextCommit(InterruptContext* icp) {
  // In hardware this writes the remaining shadow-register state to memory;
  // in the simulation the context is already memory-resident, so commit is
  // a flag plus accounting.
  icp->committed_ = true;
  ++cpu_stats().icontext_committed;
}

void SvaOS::IPushFunction(InterruptContext* icp,
                          std::function<void(uint64_t)> fn,
                          uint64_t argument) {
  ++cpu_stats().ipush_function;
  icp->pushed_.push_back(PushedCall{std::move(fn), argument});
}

bool SvaOS::WasPrivileged(const InterruptContext* icp) const {
  return icp->from_privileged_;
}

// --- Registration -----------------------------------------------------------------

Status SvaOS::RegisterSyscall(uint64_t number, SyscallHandler handler) {
  syscalls_[number] = std::move(handler);
  return OkStatus();
}

Status SvaOS::RegisterInterrupt(unsigned vector, InterruptHandler handler) {
  if (vector >= hw::kNumVectors) {
    return InvalidArgument(StrCat("bad interrupt vector ", vector));
  }
  interrupts_[vector] = std::move(handler);
  return OkStatus();
}

// --- Dispatch ---------------------------------------------------------------------

InterruptContext* SvaOS::EnterKernel() {
  trace::Emit(trace::EventId::kKernelEntry);
  smp::VirtualCpu& vcpu = vmp_.Current();
  ++vcpu.stats().icontext_created;
  InterruptContext* icp = vcpu.PushContext(
      next_icontext_id_.fetch_add(1, std::memory_order_relaxed));
  hw::Cpu& cpu = vcpu.cpu();
  icp->interrupted_ = cpu.control();
  icp->from_privileged_ = cpu.control().privilege == hw::Privilege::kKernel;
  cpu.control().privilege = hw::Privilege::kKernel;
  return icp;
}

void SvaOS::ReturnFromInterrupt(InterruptContext* icp) {
  // Run the functions pushed by llva.ipush.function (signal dispatch) in
  // push order before resuming the interrupted computation.
  for (PushedCall& call : icp->pushed_) {
    call.fn(call.argument);
  }
  icp->pushed_.clear();
  smp::VirtualCpu& vcpu = vmp_.Current();
  vcpu.cpu().control() = icp->interrupted_;
  // Pop the context (it must be the innermost one on this CPU).
  vcpu.PopContext(icp);
  trace::Emit(trace::EventId::kKernelExit);
}

Result<uint64_t> SvaOS::Syscall(uint64_t number,
                                const std::array<uint64_t, 6>& args) {
  auto it = syscalls_.find(number);
  if (it == syscalls_.end()) {
    return NotFound(StrCat("unregistered system call ", number));
  }
  trace::Span span(trace::EventId::kSvaosDispatch,
                   trace::HistId::kSvaosDispatchNs, number);
  // Publish the SVA-OS entry to the sampling profiler: ticks landing here
  // (state save, icontext bookkeeping, dispatch) attribute to the SVM's
  // mediation cost, not the syscall body (which pushes its own context).
  trace::ProfContextScope prof;
  if (trace::prof_enabled()) {
    static const uint32_t kDispatchNameId =
        trace::InternProfName("svaos:dispatch");
    prof.Enter(trace::ProfContext::kSvaOsOp, kDispatchNameId, 0, 1);
  }
  ++cpu_stats().syscalls_dispatched;
  InterruptContext* icp = EnterKernel();
  SyscallArgs call;
  call.args = args;
  call.icontext = icp;
  Result<uint64_t> result = it->second(call);
  ReturnFromInterrupt(icp);
  return result;
}

Status SvaOS::RaiseInterrupt(unsigned vector) {
  if (vector >= hw::kNumVectors || !interrupts_[vector]) {
    return NotFound(StrCat("unregistered interrupt vector ", vector));
  }
  trace::Span span(trace::EventId::kInterrupt, trace::HistId::kIrqNs,
                   vector);
  // Vector 32 is the NIC rx line (net-irq context for the profiler);
  // everything else (TLB shootdown IPIs, ...) is SVA-OS work.
  trace::ProfContextScope prof;
  if (trace::prof_enabled()) {
    static const uint32_t kNetIrqNameId =
        trace::InternProfName("net:rx-irq");
    static const uint32_t kIrqNameId = trace::InternProfName("svaos:irq");
    if (vector == 32) {
      prof.Enter(trace::ProfContext::kNetIrq, kNetIrqNameId, 0, 1);
    } else {
      prof.Enter(trace::ProfContext::kSvaOsOp, kIrqNameId, 0, 1);
    }
  }
  ++cpu_stats().interrupts_dispatched;
  InterruptContext* icp = EnterKernel();
  interrupts_[vector](icp);
  ReturnFromInterrupt(icp);
  return OkStatus();
}

// --- MMU / IO ---------------------------------------------------------------------

namespace {

// The §4.3 map-time integrity rules over declared frame types. Returns a
// SafetyViolation for any request that would let the kernel (or a driver)
// subvert translation integrity; OkStatus for everything else.
Status CheckMappingAgainstFrameType(hw::FrameType type, uint64_t paddr,
                                    uint32_t flags) {
  switch (type) {
    case hw::FrameType::kUnused:
    case hw::FrameType::kUser:
      return OkStatus();
    case hw::FrameType::kKernel:
    case hw::FrameType::kIo:
      if ((flags & hw::kPteUser) != 0) {
        return SafetyViolation(
            StrCat("mmu check: user-accessible mapping of ",
                   hw::FrameTypeName(type), " frame 0x", std::hex, paddr));
      }
      return OkStatus();
    case hw::FrameType::kPageTable:
      // Page-table frames are writable only by the SVM itself: neither a
      // user mapping nor a kernel-writable mapping may exist.
      if ((flags & (hw::kPteUser | hw::kPteWritable)) != 0) {
        return SafetyViolation(
            StrCat("mmu check: writable or user mapping of page-table "
                   "frame 0x",
                   std::hex, paddr));
      }
      return OkStatus();
    case hw::FrameType::kSvm:
      if ((flags & hw::kPteSvmReserved) == 0) {
        return SafetyViolation(
            StrCat("mmu check: kernel mapping of SVM frame 0x", std::hex,
                   paddr));
      }
      return OkStatus();
  }
  return OkStatus();
}

}  // namespace

Status SvaOS::MmuMap(uint32_t asid, uint64_t vaddr, uint64_t paddr,
                     uint32_t flags) {
  ++cpu_stats().mmu_ops;
  trace::Emit(trace::EventId::kMmuOp, vaddr, 0);
  // SVM mediation: the kernel may never create a mapping into SVM pages.
  if ((flags & hw::kPteSvmReserved) != 0) {
    return FailedPrecondition("kernel may not create SVM-reserved mappings");
  }
  Status check = CheckMappingAgainstFrameType(
      machine_.mmu().frame_type(paddr), paddr, flags);
  if (!check.ok()) {
    ++cpu_stats().mmu_checks_failed;
    return check;
  }
  return machine_.mmu().Map(asid, vaddr, paddr, flags);
}

Status SvaOS::MmuUnmap(uint32_t asid, uint64_t vaddr) {
  ++cpu_stats().mmu_ops;
  trace::Emit(trace::EventId::kMmuOp, vaddr, 1);
  return machine_.mmu().Unmap(asid, vaddr);
}

Status SvaOS::MmuProtect(uint32_t asid, uint64_t vaddr, uint32_t flags) {
  ++cpu_stats().mmu_ops;
  ++cpu_stats().mmu_protects;
  trace::Emit(trace::EventId::kMmuOp, vaddr, 4);
  if ((flags & hw::kPteSvmReserved) != 0) {
    return FailedPrecondition("kernel may not create SVM-reserved mappings");
  }
  // Re-validate against the frame the mapping points at: a protection
  // change to user/writable is as dangerous as a fresh map.
  hw::PageTableEntry pte;
  if (machine_.mmu().Lookup(asid, vaddr, &pte)) {
    const uint64_t paddr = pte.physical_page * hw::kPageSize;
    Status check = CheckMappingAgainstFrameType(
        machine_.mmu().frame_type(paddr), paddr, flags);
    if (!check.ok()) {
      ++cpu_stats().mmu_checks_failed;
      return check;
    }
  }
  return machine_.mmu().Protect(asid, vaddr, flags);
}

Status SvaOS::DeclareFrameType(uint64_t paddr, hw::FrameType type) {
  ++cpu_stats().mmu_ops;
  trace::Emit(trace::EventId::kMmuOp, paddr, 5);
  if (paddr % hw::kPageSize != 0) {
    return InvalidArgument("declare-frame-type: unaligned frame address");
  }
  machine_.mmu().DeclareFrameType(paddr, type);
  return OkStatus();
}

Result<uint32_t> SvaOS::CreateAddressSpace() {
  ++cpu_stats().mmu_ops;
  return machine_.mmu().CreateAddressSpace();
}

Status SvaOS::DestroyAddressSpace(uint32_t asid) {
  ++cpu_stats().mmu_ops;
  return machine_.mmu().DestroyAddressSpace(asid);
}

Status SvaOS::TlbShootdown(uint32_t asid, uint64_t vaddr, bool entire_asid) {
  ++cpu_stats().tlb_shootdowns;
  trace::Emit(trace::EventId::kTlbShootdown, asid,
              entire_asid ? 0 : vaddr);
  // Invalidate every CPU's TLB synchronously — the moral equivalent of an
  // IPI round where the initiator spins until all acks arrive. The PTE
  // mutation always happens BEFORE the caller invokes this, so after it
  // returns no CPU can load the stale translation.
  smp::VirtualCpu& self = vmp_.Current();
  for (unsigned i = 0; i < vmp_.num_cpus(); ++i) {
    smp::VirtualCpu& target = vmp_.cpu(i);
    if (entire_asid) {
      target.tlb().InvalidateAsid(asid);
    } else {
      target.tlb().InvalidatePage(asid, vaddr);
    }
    if (&target != &self) {
      target.tlb().CountShootdown();
    }
  }
  // Deliver the IPI through the normal interrupt path on the initiating
  // CPU when the kernel registered a handler for the vector.
  if (interrupts_[kTlbShootdownVector]) {
    return RaiseInterrupt(kTlbShootdownVector);
  }
  return OkStatus();
}

Status SvaOS::LoadPageTable(uint64_t base) {
  ++cpu_stats().mmu_ops;
  trace::Emit(trace::EventId::kMmuOp, base, 2);
  cpu_hw().control().page_table_base = base;
  return OkStatus();
}

Status SvaOS::ReserveSvmPage(uint64_t vaddr, uint64_t paddr) {
  ++cpu_stats().mmu_ops;
  trace::Emit(trace::EventId::kMmuOp, vaddr, 3);
  // The frame becomes SVM-typed, so any later kernel MmuMap of it is
  // rejected by the frame-type check regardless of the target vaddr.
  machine_.mmu().DeclareFrameType(paddr, hw::FrameType::kSvm);
  return machine_.mmu().Map(vaddr, paddr,
                            hw::kPtePresent | hw::kPteWritable |
                                hw::kPteSvmReserved);
}

Result<uint64_t> SvaOS::IoRead(uint16_t port) {
  ++cpu_stats().io_ops;
  trace::Emit(trace::EventId::kIoOp, port, 0);
  return machine_.IoRead(port);
}

Status SvaOS::IoWrite(uint16_t port, uint64_t value) {
  ++cpu_stats().io_ops;
  trace::Emit(trace::EventId::kIoOp, port, 1);
  return machine_.IoWrite(port, value);
}

}  // namespace sva::svaos
