#include "src/svaos/svaos.h"

#include "src/support/strings.h"
#include "src/trace/trace.h"

namespace sva::svaos {

SvaOS::SvaOS(hw::Machine& machine)
    : machine_(machine), vmp_(machine.cpu()) {}

// --- Table 1 ---------------------------------------------------------------------

void SvaOS::SaveIntegerState(SavedIntegerState* buffer) {
  ++cpu_stats().save_integer;
  trace::Emit(trace::EventId::kSaveInteger,
              reinterpret_cast<uint64_t>(buffer));
  buffer->control = cpu_hw().control();
  buffer->valid = true;
}

Status SvaOS::LoadIntegerState(const SavedIntegerState& buffer) {
  if (!buffer.valid) {
    return FailedPrecondition(
        "llva.load.integer: buffer never saved");
  }
  ++cpu_stats().load_integer;
  trace::Emit(trace::EventId::kLoadInteger,
              reinterpret_cast<uint64_t>(&buffer));
  cpu_hw().control() = buffer.control;
  return OkStatus();
}

bool SvaOS::SaveFpState(SavedFpState* buffer, bool always) {
  hw::Cpu& cpu = cpu_hw();
  if (!always && !cpu.fp_dirty()) {
    ++cpu_stats().save_fp_skipped;
    return false;  // Lazy save: FP untouched since the last load.
  }
  ++cpu_stats().save_fp;
  buffer->fp = cpu.fp();
  buffer->valid = true;
  cpu.set_fp_dirty(false);
  return true;
}

Status SvaOS::LoadFpState(const SavedFpState& buffer) {
  if (!buffer.valid) {
    return FailedPrecondition("llva.load.fp: buffer never saved");
  }
  ++cpu_stats().load_fp;
  cpu_hw().fp() = buffer.fp;
  cpu_hw().set_fp_dirty(false);
  return OkStatus();
}

// --- Table 2 ---------------------------------------------------------------------

void SvaOS::IContextSave(const InterruptContext* icp, SavedIntegerState* out) {
  out->control = icp->interrupted_;
  out->valid = true;
}

Status SvaOS::IContextLoad(InterruptContext* icp,
                           const SavedIntegerState& in) {
  if (!in.valid) {
    return FailedPrecondition("llva.icontext.load: buffer never saved");
  }
  icp->interrupted_ = in.control;
  return OkStatus();
}

void SvaOS::IContextCommit(InterruptContext* icp) {
  // In hardware this writes the remaining shadow-register state to memory;
  // in the simulation the context is already memory-resident, so commit is
  // a flag plus accounting.
  icp->committed_ = true;
  ++cpu_stats().icontext_committed;
}

void SvaOS::IPushFunction(InterruptContext* icp,
                          std::function<void(uint64_t)> fn,
                          uint64_t argument) {
  ++cpu_stats().ipush_function;
  icp->pushed_.push_back(PushedCall{std::move(fn), argument});
}

bool SvaOS::WasPrivileged(const InterruptContext* icp) const {
  return icp->from_privileged_;
}

// --- Registration -----------------------------------------------------------------

Status SvaOS::RegisterSyscall(uint64_t number, SyscallHandler handler) {
  syscalls_[number] = std::move(handler);
  return OkStatus();
}

Status SvaOS::RegisterInterrupt(unsigned vector, InterruptHandler handler) {
  if (vector >= hw::kNumVectors) {
    return InvalidArgument(StrCat("bad interrupt vector ", vector));
  }
  interrupts_[vector] = std::move(handler);
  return OkStatus();
}

// --- Dispatch ---------------------------------------------------------------------

InterruptContext* SvaOS::EnterKernel() {
  trace::Emit(trace::EventId::kKernelEntry);
  smp::VirtualCpu& vcpu = vmp_.Current();
  ++vcpu.stats().icontext_created;
  InterruptContext* icp = vcpu.PushContext(
      next_icontext_id_.fetch_add(1, std::memory_order_relaxed));
  hw::Cpu& cpu = vcpu.cpu();
  icp->interrupted_ = cpu.control();
  icp->from_privileged_ = cpu.control().privilege == hw::Privilege::kKernel;
  cpu.control().privilege = hw::Privilege::kKernel;
  return icp;
}

void SvaOS::ReturnFromInterrupt(InterruptContext* icp) {
  // Run the functions pushed by llva.ipush.function (signal dispatch) in
  // push order before resuming the interrupted computation.
  for (PushedCall& call : icp->pushed_) {
    call.fn(call.argument);
  }
  icp->pushed_.clear();
  smp::VirtualCpu& vcpu = vmp_.Current();
  vcpu.cpu().control() = icp->interrupted_;
  // Pop the context (it must be the innermost one on this CPU).
  vcpu.PopContext(icp);
  trace::Emit(trace::EventId::kKernelExit);
}

Result<uint64_t> SvaOS::Syscall(uint64_t number,
                                const std::array<uint64_t, 6>& args) {
  auto it = syscalls_.find(number);
  if (it == syscalls_.end()) {
    return NotFound(StrCat("unregistered system call ", number));
  }
  trace::Span span(trace::EventId::kSvaosDispatch,
                   trace::HistId::kSvaosDispatchNs, number);
  ++cpu_stats().syscalls_dispatched;
  InterruptContext* icp = EnterKernel();
  SyscallArgs call;
  call.args = args;
  call.icontext = icp;
  Result<uint64_t> result = it->second(call);
  ReturnFromInterrupt(icp);
  return result;
}

Status SvaOS::RaiseInterrupt(unsigned vector) {
  if (vector >= hw::kNumVectors || !interrupts_[vector]) {
    return NotFound(StrCat("unregistered interrupt vector ", vector));
  }
  trace::Span span(trace::EventId::kInterrupt, trace::HistId::kIrqNs,
                   vector);
  ++cpu_stats().interrupts_dispatched;
  InterruptContext* icp = EnterKernel();
  interrupts_[vector](icp);
  ReturnFromInterrupt(icp);
  return OkStatus();
}

// --- MMU / IO ---------------------------------------------------------------------

Status SvaOS::MmuMap(uint64_t vaddr, uint64_t paddr, uint32_t flags) {
  ++cpu_stats().mmu_ops;
  trace::Emit(trace::EventId::kMmuOp, vaddr, 0);
  // SVM mediation: the kernel may never create a mapping into SVM pages.
  if ((flags & hw::kPteSvmReserved) != 0) {
    return FailedPrecondition("kernel may not create SVM-reserved mappings");
  }
  return machine_.mmu().Map(vaddr, paddr, flags);
}

Status SvaOS::MmuUnmap(uint64_t vaddr) {
  ++cpu_stats().mmu_ops;
  trace::Emit(trace::EventId::kMmuOp, vaddr, 1);
  return machine_.mmu().Unmap(vaddr);
}

Status SvaOS::LoadPageTable(uint64_t base) {
  ++cpu_stats().mmu_ops;
  trace::Emit(trace::EventId::kMmuOp, base, 2);
  cpu_hw().control().page_table_base = base;
  return OkStatus();
}

Status SvaOS::ReserveSvmPage(uint64_t vaddr, uint64_t paddr) {
  ++cpu_stats().mmu_ops;
  trace::Emit(trace::EventId::kMmuOp, vaddr, 3);
  return machine_.mmu().Map(vaddr, paddr,
                            hw::kPtePresent | hw::kPteWritable |
                                hw::kPteSvmReserved);
}

Result<uint64_t> SvaOS::IoRead(uint16_t port) {
  ++cpu_stats().io_ops;
  trace::Emit(trace::EventId::kIoOp, port, 0);
  return machine_.IoRead(port);
}

Status SvaOS::IoWrite(uint16_t port, uint64_t value) {
  ++cpu_stats().io_ops;
  trace::Emit(trace::EventId::kIoOp, port, 1);
  return machine_.IoWrite(port, value);
}

}  // namespace sva::svaos
