#include "src/svaos/svaos.h"

#include "src/support/strings.h"

namespace sva::svaos {

SvaOS::SvaOS(hw::Machine& machine) : machine_(machine) {}

// --- Table 1 ---------------------------------------------------------------------

void SvaOS::SaveIntegerState(SavedIntegerState* buffer) {
  ++stats_.save_integer;
  buffer->control = machine_.cpu().control();
  buffer->valid = true;
}

Status SvaOS::LoadIntegerState(const SavedIntegerState& buffer) {
  if (!buffer.valid) {
    return FailedPrecondition(
        "llva.load.integer: buffer never saved");
  }
  ++stats_.load_integer;
  machine_.cpu().control() = buffer.control;
  return OkStatus();
}

bool SvaOS::SaveFpState(SavedFpState* buffer, bool always) {
  if (!always && !machine_.cpu().fp_dirty()) {
    ++stats_.save_fp_skipped;
    return false;  // Lazy save: FP untouched since the last load.
  }
  ++stats_.save_fp;
  buffer->fp = machine_.cpu().fp();
  buffer->valid = true;
  machine_.cpu().set_fp_dirty(false);
  return true;
}

Status SvaOS::LoadFpState(const SavedFpState& buffer) {
  if (!buffer.valid) {
    return FailedPrecondition("llva.load.fp: buffer never saved");
  }
  ++stats_.load_fp;
  machine_.cpu().fp() = buffer.fp;
  machine_.cpu().set_fp_dirty(false);
  return OkStatus();
}

// --- Table 2 ---------------------------------------------------------------------

void SvaOS::IContextSave(const InterruptContext* icp, SavedIntegerState* out) {
  out->control = icp->interrupted_;
  out->valid = true;
}

Status SvaOS::IContextLoad(InterruptContext* icp,
                           const SavedIntegerState& in) {
  if (!in.valid) {
    return FailedPrecondition("llva.icontext.load: buffer never saved");
  }
  icp->interrupted_ = in.control;
  return OkStatus();
}

void SvaOS::IContextCommit(InterruptContext* icp) {
  // In hardware this writes the remaining shadow-register state to memory;
  // in the simulation the context is already memory-resident, so commit is
  // a flag plus accounting.
  icp->committed_ = true;
  ++stats_.icontext_committed;
}

void SvaOS::IPushFunction(InterruptContext* icp,
                          std::function<void(uint64_t)> fn,
                          uint64_t argument) {
  ++stats_.ipush_function;
  icp->pushed_.push_back(PushedCall{std::move(fn), argument});
}

bool SvaOS::WasPrivileged(const InterruptContext* icp) const {
  return icp->from_privileged_;
}

// --- Registration -----------------------------------------------------------------

Status SvaOS::RegisterSyscall(uint64_t number, SyscallHandler handler) {
  syscalls_[number] = std::move(handler);
  return OkStatus();
}

Status SvaOS::RegisterInterrupt(unsigned vector, InterruptHandler handler) {
  if (vector >= hw::kNumVectors) {
    return InvalidArgument(StrCat("bad interrupt vector ", vector));
  }
  interrupts_[vector] = std::move(handler);
  return OkStatus();
}

// --- Dispatch ---------------------------------------------------------------------

InterruptContext* SvaOS::EnterKernel() {
  ++stats_.icontext_created;
  InterruptContext* icp = &icontext_slab_[icontext_depth_ %
                                          kMaxNestedContexts];
  ++icontext_depth_;
  icp->id_ = next_icontext_id_++;
  icp->committed_ = false;
  icp->pushed_.clear();
  hw::Cpu& cpu = machine_.cpu();
  icp->interrupted_ = cpu.control();
  icp->from_privileged_ = cpu.control().privilege == hw::Privilege::kKernel;
  cpu.control().privilege = hw::Privilege::kKernel;
  return icp;
}

void SvaOS::ReturnFromInterrupt(InterruptContext* icp) {
  // Run the functions pushed by llva.ipush.function (signal dispatch) in
  // push order before resuming the interrupted computation.
  for (PushedCall& call : icp->pushed_) {
    call.fn(call.argument);
  }
  icp->pushed_.clear();
  machine_.cpu().control() = icp->interrupted_;
  // Pop the context (it must be the innermost one).
  if (icontext_depth_ > 0 &&
      &icontext_slab_[(icontext_depth_ - 1) % kMaxNestedContexts] == icp) {
    --icontext_depth_;
  }
}

Result<uint64_t> SvaOS::Syscall(uint64_t number,
                                const std::array<uint64_t, 6>& args) {
  auto it = syscalls_.find(number);
  if (it == syscalls_.end()) {
    return NotFound(StrCat("unregistered system call ", number));
  }
  ++stats_.syscalls_dispatched;
  InterruptContext* icp = EnterKernel();
  SyscallArgs call;
  call.args = args;
  call.icontext = icp;
  Result<uint64_t> result = it->second(call);
  ReturnFromInterrupt(icp);
  return result;
}

Status SvaOS::RaiseInterrupt(unsigned vector) {
  if (vector >= hw::kNumVectors || !interrupts_[vector]) {
    return NotFound(StrCat("unregistered interrupt vector ", vector));
  }
  ++stats_.interrupts_dispatched;
  InterruptContext* icp = EnterKernel();
  interrupts_[vector](icp);
  ReturnFromInterrupt(icp);
  return OkStatus();
}

// --- MMU / IO ---------------------------------------------------------------------

Status SvaOS::MmuMap(uint64_t vaddr, uint64_t paddr, uint32_t flags) {
  ++stats_.mmu_ops;
  // SVM mediation: the kernel may never create a mapping into SVM pages.
  if ((flags & hw::kPteSvmReserved) != 0) {
    return FailedPrecondition("kernel may not create SVM-reserved mappings");
  }
  return machine_.mmu().Map(vaddr, paddr, flags);
}

Status SvaOS::MmuUnmap(uint64_t vaddr) {
  ++stats_.mmu_ops;
  return machine_.mmu().Unmap(vaddr);
}

Status SvaOS::LoadPageTable(uint64_t base) {
  ++stats_.mmu_ops;
  machine_.cpu().control().page_table_base = base;
  return OkStatus();
}

Status SvaOS::ReserveSvmPage(uint64_t vaddr, uint64_t paddr) {
  ++stats_.mmu_ops;
  return machine_.mmu().Map(vaddr, paddr,
                            hw::kPtePresent | hw::kPteWritable |
                                hw::kPteSvmReserved);
}

Result<uint64_t> SvaOS::IoRead(uint16_t port) {
  ++stats_.io_ops;
  return machine_.IoRead(port);
}

Status SvaOS::IoWrite(uint16_t port, uint64_t value) {
  ++stats_.io_ops;
  return machine_.IoWrite(port, value);
}

}  // namespace sva::svaos
