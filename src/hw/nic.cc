#include "src/hw/nic.h"

#include <cstring>

#include "src/hw/machine.h"
#include "src/support/strings.h"
#include "src/trace/trace.h"

namespace sva::hw {

Result<uint64_t> VirtualNic::RegRead(uint16_t reg) {
  std::lock_guard<std::mutex> guard(device_mutex_);
  switch (static_cast<NicReg>(reg)) {
    case NicReg::kStatus: {
      // Bit 0 models the interrupt *line*: asserted only while unmasked.
      // Bit 1 reports pending rx work regardless of the mask, so a NAPI
      // poll loop can keep polling with the line masked.
      uint64_t status = 0;
      if (irq_pending_ && !irq_masked_) status |= kNicStatusRxPending;
      if (irq_pending_) status |= kNicStatusRxWork;
      return status;
    }
    case NicReg::kRxHead:
      return rx_head_;
    case NicReg::kTxHead:
      return tx_head_;
    case NicReg::kRxSize:
      return rx_size_;
    case NicReg::kTxSize:
      return tx_size_;
    default:
      return NotFound(StrCat("nic: read of write-only register ", reg));
  }
}

Status VirtualNic::RegWrite(uint16_t reg, uint64_t value) {
  std::lock_guard<std::mutex> guard(device_mutex_);
  switch (static_cast<NicReg>(reg)) {
    case NicReg::kCommand:
      switch (static_cast<NicCommand>(value)) {
        case NicCommand::kReset:
          enabled_ = false;
          irq_pending_ = false;
          irq_masked_ = false;
          rx_base_ = rx_size_ = tx_base_ = tx_size_ = 0;
          rx_head_ = tx_head_ = 0;
          tx_queue_.clear();
          return OkStatus();
        case NicCommand::kEnable:
          if (rx_base_ == 0 || rx_size_ == 0 || tx_base_ == 0 ||
              tx_size_ == 0) {
            return FailedPrecondition("nic: enable before ring setup");
          }
          enabled_ = true;
          return OkStatus();
        case NicCommand::kTxKick:
          return TxKick();
        case NicCommand::kIrqAck:
          irq_pending_ = false;
          return OkStatus();
        case NicCommand::kIrqMask:
          irq_masked_ = true;
          return OkStatus();
        case NicCommand::kIrqUnmask:
          irq_masked_ = false;
          return OkStatus();
      }
      return InvalidArgument(StrCat("nic: unknown command ", value));
    case NicReg::kRxBase:
      rx_base_ = value;
      return OkStatus();
    case NicReg::kRxSize:
      rx_size_ = value;
      rx_head_ = 0;
      return OkStatus();
    case NicReg::kTxBase:
      tx_base_ = value;
      return OkStatus();
    case NicReg::kTxSize:
      tx_size_ = value;
      tx_head_ = 0;
      return OkStatus();
    default:
      return NotFound(StrCat("nic: write to read-only register ", reg));
  }
}

Result<VirtualNic::Descriptor> VirtualNic::ReadDescriptor(uint64_t ring_base,
                                                          uint64_t index) {
  uint64_t at = ring_base + index * kNicDescriptorBytes;
  SVA_ASSIGN_OR_RETURN(uint64_t buffer, memory_.Read(at, 8));
  SVA_ASSIGN_OR_RETURN(uint64_t capacity, memory_.Read(at + 8, 2));
  SVA_ASSIGN_OR_RETURN(uint64_t length, memory_.Read(at + 10, 2));
  SVA_ASSIGN_OR_RETURN(uint64_t flags, memory_.Read(at + 12, 2));
  Descriptor d;
  d.buffer = buffer;
  d.capacity = static_cast<uint16_t>(capacity);
  d.length = static_cast<uint16_t>(length);
  d.flags = static_cast<uint16_t>(flags);
  return d;
}

Status VirtualNic::WriteDescriptor(uint64_t ring_base, uint64_t index,
                                   const Descriptor& desc) {
  uint64_t at = ring_base + index * kNicDescriptorBytes;
  SVA_RETURN_IF_ERROR(memory_.Write(at, 8, desc.buffer));
  SVA_RETURN_IF_ERROR(memory_.Write(at + 8, 2, desc.capacity));
  SVA_RETURN_IF_ERROR(memory_.Write(at + 10, 2, desc.length));
  return memory_.Write(at + 12, 2, desc.flags);
}

Status VirtualNic::Receive(const uint8_t* frame, uint64_t len) {
  std::lock_guard<std::mutex> guard(device_mutex_);
  if (!enabled_) {
    ++counters_.rx_dropped_disabled;
    return FailedPrecondition("nic: rx while disabled");
  }
  if (len > kNicMaxFrameBytes) {
    ++counters_.dma_errors;
    return InvalidArgument("nic: frame larger than device maximum");
  }
  SVA_ASSIGN_OR_RETURN(Descriptor desc, ReadDescriptor(rx_base_, rx_head_));
  if ((desc.flags & kNicDescOwned) == 0) {
    // The driver has not reposted this slot: ring full, tail drop.
    ++counters_.rx_dropped_full;
    return FailedPrecondition("nic: rx ring full");
  }
  // DMA bounds: the device never writes past the buffer the driver
  // described, and never outside physical memory.
  if (len > desc.capacity ||
      desc.buffer + desc.capacity > memory_.size()) {
    ++counters_.dma_errors;
    return OutOfRange("nic: rx DMA would overrun the posted buffer");
  }
  std::memcpy(memory_.raw(desc.buffer), frame, len);
  trace::Emit(trace::EventId::kNicDma, rx_head_, 0);
  desc.length = static_cast<uint16_t>(len);
  desc.flags = static_cast<uint16_t>(desc.flags & ~kNicDescOwned);
  SVA_RETURN_IF_ERROR(WriteDescriptor(rx_base_, rx_head_, desc));
  rx_head_ = (rx_head_ + 1) % rx_size_;
  ++counters_.rx_frames;
  irq_pending_ = true;
  return OkStatus();
}

Status VirtualNic::TxKick() {
  if (!enabled_) {
    return FailedPrecondition("nic: tx kick while disabled");
  }
  for (uint64_t scanned = 0; scanned < tx_size_; ++scanned) {
    SVA_ASSIGN_OR_RETURN(Descriptor desc, ReadDescriptor(tx_base_, tx_head_));
    if ((desc.flags & kNicDescOwned) == 0) {
      break;  // Nothing more queued by the driver.
    }
    if (desc.length > desc.capacity ||
        desc.buffer + desc.length > memory_.size()) {
      ++counters_.dma_errors;
    } else {
      std::vector<uint8_t> frame(desc.length);
      std::memcpy(frame.data(), memory_.raw(desc.buffer), desc.length);
      trace::Emit(trace::EventId::kNicDma, tx_head_, 1);
      tx_queue_.push_back(std::move(frame));
      ++counters_.tx_frames;
    }
    desc.flags = static_cast<uint16_t>(desc.flags & ~kNicDescOwned);
    SVA_RETURN_IF_ERROR(WriteDescriptor(tx_base_, tx_head_, desc));
    tx_head_ = (tx_head_ + 1) % tx_size_;
  }
  return OkStatus();
}

std::vector<std::vector<uint8_t>> VirtualNic::DrainTransmitted() {
  std::lock_guard<std::mutex> guard(device_mutex_);
  std::vector<std::vector<uint8_t>> out;
  out.swap(tx_queue_);
  return out;
}

}  // namespace sva::hw
