// Simulated hardware platform the SVM controls: physical memory, a CPU with
// privilege levels and control/FP state, an MMU with page tables, an
// interrupt/trap vector, and simple devices (console, timer, block).
//
// This stands in for the 800 MHz Pentium III of the paper's evaluation
// (see DESIGN.md §2): SVA-OS (src/svaos) is the only component allowed to
// touch these privileged structures, exactly as the paper requires all
// privileged operations to flow through the SVM.
#ifndef SVA_SRC_HW_MACHINE_H_
#define SVA_SRC_HW_MACHINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/hw/nic.h"
#include "src/support/status.h"

namespace sva::hw {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr unsigned kNumGeneralRegisters = 16;
inline constexpr unsigned kNumFpRegisters = 8;
inline constexpr unsigned kNumVectors = 256;

// Privilege levels (x86 ring style).
enum class Privilege : uint8_t {
  kKernel = 0,
  kUser = 3,
};

// The control state of Section 3.3: program counter, general-purpose
// registers, privilege, and control registers.
struct ControlState {
  uint64_t pc = 0;
  uint64_t sp = 0;
  std::array<uint64_t, kNumGeneralRegisters> regs{};
  Privilege privilege = Privilege::kKernel;
  uint64_t page_table_base = 0;
  bool interrupts_enabled = true;
};

// Floating point state, saved lazily (Table 1).
struct FpState {
  std::array<double, kNumFpRegisters> regs{};
  uint64_t control_word = 0x037F;
};

class Cpu {
 public:
  ControlState& control() { return control_; }
  const ControlState& control() const { return control_; }
  FpState& fp() { return fp_; }
  const FpState& fp() const { return fp_; }

  // Set whenever FP registers are written; llva.save.fp consults this for
  // lazy saving.
  bool fp_dirty() const { return fp_dirty_; }
  void set_fp_dirty(bool dirty) { fp_dirty_ = dirty; }

  void WriteFpRegister(unsigned index, double value) {
    fp_.regs[index % kNumFpRegisters] = value;
    fp_dirty_ = true;
  }

 private:
  ControlState control_;
  FpState fp_;
  bool fp_dirty_ = false;
};

// Page table entry flags.
enum PteFlags : uint32_t {
  kPtePresent = 1 << 0,
  kPteWritable = 1 << 1,
  kPteUser = 1 << 2,
  kPteSvmReserved = 1 << 3,  // Owned by the SVM; unmappable by the kernel.
  kPteCow = 1 << 4,  // Copy-on-write: shared frame, write breaks the share.
};

struct PageTableEntry {
  uint64_t physical_page = 0;
  uint32_t flags = 0;
};

// What a physical frame is used for. The SVA-OS MMU ops consult this table
// at map time to enforce the paper's §4.3 integrity rules (a frame holding
// kernel data or page tables must never become user-accessible).
enum class FrameType : uint8_t {
  kUnused = 0,     // Not declared; mappable for any use.
  kUser = 1,       // User-space data page.
  kKernel = 2,     // Kernel data/code.
  kPageTable = 3,  // Holds translations; writable only by the SVM.
  kSvm = 4,        // SVM-private (metapool metadata, saved state).
  kIo = 5,         // Device MMIO window.
};

const char* FrameTypeName(FrameType type);

// Hierarchical per-address-space page tables. Each address space (asid) is
// a two-level structure: a directory keyed by the top virtual-page bits
// pointing at 512-entry leaf tables (2 MB of address space per leaf) —
// enough walk structure for per-task translation and frame-type mediation
// without modelling the full 4-level x86 radix.
//
// Asid 0 (kKernelAsid) always exists and carries the kernel/SVM mappings;
// the legacy single-address-space API forwards to it. All methods are
// thread-safe behind an internal (unranked, leaf) mutex; callers needing
// multi-op atomicity (e.g. COW remap) serialize at the address-space level.
class Mmu {
 public:
  static constexpr uint32_t kKernelAsid = 0;
  static constexpr size_t kLeafEntries = 512;  // 2 MB per leaf table.

  Mmu();

  // --- Address-space lifecycle ----------------------------------------------
  Result<uint32_t> CreateAddressSpace();
  Status DestroyAddressSpace(uint32_t asid);

  // --- Translation mutation (reached only via SvaOS::Mmu*) ------------------
  // Fails with AlreadyExists if `vaddr` is already mapped in `asid` (the
  // caller unmaps first; there is no silent overwrite).
  Status Map(uint32_t asid, uint64_t vaddr, uint64_t paddr, uint32_t flags);
  Status Unmap(uint32_t asid, uint64_t vaddr);
  // Replaces the flags of an existing mapping, keeping the frame (the COW
  // upgrade/downgrade path). Present is implied.
  Status Protect(uint32_t asid, uint64_t vaddr, uint32_t flags);

  // --- Walks ----------------------------------------------------------------
  Result<uint64_t> Translate(uint32_t asid, uint64_t vaddr, bool write,
                             Privilege privilege) const;
  // Raw PTE fetch (no fault accounting); false if not present.
  bool Lookup(uint32_t asid, uint64_t vaddr, PageTableEntry* out) const;
  bool IsMapped(uint32_t asid, uint64_t vaddr) const;
  // Snapshot of every present mapping in `asid` as (vaddr, pte) pairs.
  std::vector<std::pair<uint64_t, PageTableEntry>> Entries(
      uint32_t asid) const;

  // --- Legacy single-address-space API (kernel asid) ------------------------
  Status Map(uint64_t vaddr, uint64_t paddr, uint32_t flags) {
    return Map(kKernelAsid, vaddr, paddr, flags);
  }
  Status Unmap(uint64_t vaddr) { return Unmap(kKernelAsid, vaddr); }
  Result<uint64_t> Translate(uint64_t vaddr, bool write,
                             Privilege privilege) const {
    return Translate(kKernelAsid, vaddr, write, privilege);
  }
  bool IsMapped(uint64_t vaddr) const { return IsMapped(kKernelAsid, vaddr); }

  // --- Frame-type declarations (§4.3) ---------------------------------------
  void DeclareFrameType(uint64_t paddr, FrameType type);
  FrameType frame_type(uint64_t paddr) const;

  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }

 private:
  struct Leaf {
    std::array<PageTableEntry, kLeafEntries> ptes{};
  };
  struct Space {
    std::map<uint64_t, std::unique_ptr<Leaf>> dir;  // vpage>>9 -> leaf
  };

  // Both require mu_ held. Find returns null when the leaf or PTE is absent.
  PageTableEntry* Find(uint32_t asid, uint64_t vpage);
  const PageTableEntry* Find(uint32_t asid, uint64_t vpage) const;

  mutable std::mutex mu_;  // Unranked leaf: never calls out under it.
  std::map<uint32_t, Space> spaces_;
  std::vector<uint32_t> free_asids_;
  uint32_t next_asid_ = 1;
  std::vector<FrameType> frame_types_;  // Indexed by physical page number.
  mutable std::atomic<uint64_t> faults_{0};
};

// A per-virtual-CPU translation lookaside buffer: direct-mapped, tagged by
// (asid, virtual page). Lookups are the user-copy fast path; misses and
// permission mismatches fall back to the page-fault path, which refills the
// entry. Cross-CPU invalidation (TLB shootdown) goes through
// SvaOS::TlbShootdown, which invalidates every configured CPU's TLB before
// the mutating MMU op returns — the synchronous model of a shootdown IPI
// round with acks.
class Tlb {
 public:
  static constexpr size_t kEntries = 64;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    uint64_t shootdowns_received = 0;
  };

  // True if a present entry for (asid, vaddr) exists; copies it to `out`.
  // Callers re-check permission bits (write to a read-only or COW entry
  // must take the fault path even on a TLB hit).
  bool Lookup(uint32_t asid, uint64_t vaddr, PageTableEntry* out);
  void Insert(uint32_t asid, uint64_t vaddr, const PageTableEntry& pte);
  void InvalidatePage(uint32_t asid, uint64_t vaddr);
  void InvalidateAsid(uint32_t asid);
  void InvalidateAll();
  // Remote-CPU accounting: the initiator of a shootdown calls this on every
  // other CPU's TLB it invalidated.
  void CountShootdown() {
    shootdowns_.fetch_add(1, std::memory_order_relaxed);
  }

  Stats stats() const;

 private:
  struct Entry {
    bool valid = false;
    uint32_t asid = 0;
    uint64_t vpage = 0;
    PageTableEntry pte;
  };
  static size_t SlotFor(uint32_t asid, uint64_t vpage) {
    return static_cast<size_t>(vpage ^ asid) % kEntries;
  }

  mutable std::mutex mu_;  // Unranked leaf (remote CPUs invalidate).
  std::array<Entry, kEntries> entries_{};
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
  std::atomic<uint64_t> shootdowns_{0};
};

class PhysicalMemory {
 public:
  explicit PhysicalMemory(uint64_t bytes) : bytes_(bytes, 0) {}

  uint64_t size() const { return bytes_.size(); }
  Result<uint64_t> Read(uint64_t paddr, unsigned width) const;
  Status Write(uint64_t paddr, unsigned width, uint64_t value);
  Status Copy(uint64_t dst, uint64_t src, uint64_t len);
  Status Fill(uint64_t addr, uint8_t value, uint64_t len);
  uint8_t* raw(uint64_t paddr) { return bytes_.data() + paddr; }

 private:
  std::vector<uint8_t> bytes_;
};

// --- Devices -------------------------------------------------------------------

class ConsoleDevice {
 public:
  void PutChar(char c) { output_.push_back(c); }
  const std::string& output() const { return output_; }
  void Clear() { output_.clear(); }

 private:
  std::string output_;
};

// Programmable interval timer. Two independent faces:
//   - the tick counter (Tick/ticks/microseconds): the guest's uptime clock,
//     advanced by workload-driven IoWrite(kPortTimer) as ever — one tick is
//     the 100µs fiction gettimeofday is built on;
//   - the interrupt line (SetFrequency/SetInterruptCallback/FireInterrupt):
//     a reprogrammable firing rate plus a callback, the hook the sampling
//     profiler hangs off. Firing does NOT advance the tick counter, so
//     reprogramming the rate never skews guest time.
class TimerDevice {
 public:
  static constexpr uint64_t kDefaultFrequencyHz = 10000;  // = 100µs ticks.
  static constexpr uint64_t kMaxFrequencyHz = 1000000;

  void Tick(uint64_t n = 1) {
    ticks_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  // Microseconds-of-uptime fiction for gettimeofday.
  uint64_t microseconds() const { return ticks() * 100; }

  // Reprograms the interrupt rate. Rejects 0 Hz (a stopped clock wedges
  // anything paced by it) and rates past the device's crystal.
  Status SetFrequency(uint64_t hz) {
    if (hz == 0 || hz > kMaxFrequencyHz) {
      return Status(StatusCode::kInvalidArgument,
                    "timer frequency out of range");
    }
    frequency_hz_.store(hz, std::memory_order_relaxed);
    return OkStatus();
  }
  uint64_t frequency_hz() const {
    return frequency_hz_.load(std::memory_order_relaxed);
  }
  uint64_t period_ns() const { return 1000000000ull / frequency_hz(); }

  // Installs (or clears, with nullptr) the interrupt handler.
  void SetInterruptCallback(std::function<void()> cb) {
    std::lock_guard<std::mutex> guard(callback_lock_);
    callback_ = std::move(cb);
  }

  // One edge of the interrupt line: invokes the callback, if any. Called by
  // whatever paces the timer (the profiler's sampler thread, tests).
  void FireInterrupt() {
    interrupts_fired_.fetch_add(1, std::memory_order_relaxed);
    std::function<void()> cb;
    {
      std::lock_guard<std::mutex> guard(callback_lock_);
      cb = callback_;
    }
    if (cb) {
      cb();
    }
  }
  uint64_t interrupts_fired() const {
    return interrupts_fired_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> frequency_hz_{kDefaultFrequencyHz};
  std::atomic<uint64_t> interrupts_fired_{0};
  std::mutex callback_lock_;
  std::function<void()> callback_;
};

class BlockDevice {
 public:
  static constexpr uint64_t kSectorSize = 512;
  explicit BlockDevice(uint64_t sectors) : data_(sectors * kSectorSize, 0) {}

  uint64_t num_sectors() const { return data_.size() / kSectorSize; }
  Status ReadSector(uint64_t sector, uint8_t* out);
  Status WriteSector(uint64_t sector, const uint8_t* in);
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  std::vector<uint8_t> data_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

// The whole platform.
class Machine {
 public:
  explicit Machine(uint64_t memory_bytes = 64ull << 20,
                   uint64_t disk_sectors = 16384)
      : memory_(memory_bytes), disk_(disk_sectors), nic_(memory_) {}

  Cpu& cpu() { return cpu_; }
  Mmu& mmu() { return mmu_; }
  PhysicalMemory& memory() { return memory_; }
  ConsoleDevice& console() { return console_; }
  TimerDevice& timer() { return timer_; }
  BlockDevice& disk() { return disk_; }
  VirtualNic& nic() { return nic_; }

  // I/O port space (Section 3.3: I/O functions are SVA-OS operations).
  enum Port : uint16_t {
    kPortConsole = 0x3F8,
    kPortTimer = 0x40,
    kPortDiskSector = 0x1F0,
    kPortDiskCommand = 0x1F7,
    // NIC register window: kPortNicBase + NicReg (src/hw/nic.h).
    kPortNicBase = 0x300,
  };
  Result<uint64_t> IoRead(uint16_t port);
  Status IoWrite(uint16_t port, uint64_t value);

  // Physical page allocator for kernel boot (bump; pages never move).
  // Returns the physical address of a fresh zeroed page, or 0 if exhausted.
  uint64_t AllocatePhysicalPage();
  uint64_t pages_allocated() const {
    return next_free_page_.load(std::memory_order_relaxed);
  }

 private:
  Cpu cpu_;
  Mmu mmu_;
  PhysicalMemory memory_;
  ConsoleDevice console_;
  TimerDevice timer_;
  BlockDevice disk_;
  VirtualNic nic_;
  // Atomic: the net fast path demand-pages user memory off the big kernel
  // lock, so concurrent first touches may race to allocate.
  std::atomic<uint64_t> next_free_page_{1};  // Page 0 unmapped (null guard).
  uint64_t disk_sector_latch_ = 0;
};

}  // namespace sva::hw

#endif  // SVA_SRC_HW_MACHINE_H_
