// Simulated hardware platform the SVM controls: physical memory, a CPU with
// privilege levels and control/FP state, an MMU with page tables, an
// interrupt/trap vector, and simple devices (console, timer, block).
//
// This stands in for the 800 MHz Pentium III of the paper's evaluation
// (see DESIGN.md §2): SVA-OS (src/svaos) is the only component allowed to
// touch these privileged structures, exactly as the paper requires all
// privileged operations to flow through the SVM.
#ifndef SVA_SRC_HW_MACHINE_H_
#define SVA_SRC_HW_MACHINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/hw/nic.h"
#include "src/support/status.h"

namespace sva::hw {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr unsigned kNumGeneralRegisters = 16;
inline constexpr unsigned kNumFpRegisters = 8;
inline constexpr unsigned kNumVectors = 256;

// Privilege levels (x86 ring style).
enum class Privilege : uint8_t {
  kKernel = 0,
  kUser = 3,
};

// The control state of Section 3.3: program counter, general-purpose
// registers, privilege, and control registers.
struct ControlState {
  uint64_t pc = 0;
  uint64_t sp = 0;
  std::array<uint64_t, kNumGeneralRegisters> regs{};
  Privilege privilege = Privilege::kKernel;
  uint64_t page_table_base = 0;
  bool interrupts_enabled = true;
};

// Floating point state, saved lazily (Table 1).
struct FpState {
  std::array<double, kNumFpRegisters> regs{};
  uint64_t control_word = 0x037F;
};

class Cpu {
 public:
  ControlState& control() { return control_; }
  const ControlState& control() const { return control_; }
  FpState& fp() { return fp_; }
  const FpState& fp() const { return fp_; }

  // Set whenever FP registers are written; llva.save.fp consults this for
  // lazy saving.
  bool fp_dirty() const { return fp_dirty_; }
  void set_fp_dirty(bool dirty) { fp_dirty_ = dirty; }

  void WriteFpRegister(unsigned index, double value) {
    fp_.regs[index % kNumFpRegisters] = value;
    fp_dirty_ = true;
  }

 private:
  ControlState control_;
  FpState fp_;
  bool fp_dirty_ = false;
};

// Page table entry flags.
enum PteFlags : uint32_t {
  kPtePresent = 1 << 0,
  kPteWritable = 1 << 1,
  kPteUser = 1 << 2,
  kPteSvmReserved = 1 << 3,  // Owned by the SVM; unmappable by the kernel.
};

struct PageTableEntry {
  uint64_t physical_page = 0;
  uint32_t flags = 0;
};

// A single-level page table keyed by virtual page number — enough structure
// for SVM mediation semantics without multi-level walk detail.
class Mmu {
 public:
  Status Map(uint64_t vaddr, uint64_t paddr, uint32_t flags);
  Status Unmap(uint64_t vaddr);
  // Physical address for a virtual one, honoring present bits; error on
  // fault.
  Result<uint64_t> Translate(uint64_t vaddr, bool write,
                             Privilege privilege) const;
  bool IsMapped(uint64_t vaddr) const;
  const std::map<uint64_t, PageTableEntry>& entries() const {
    return entries_;
  }
  uint64_t faults() const { return faults_; }

 private:
  std::map<uint64_t, PageTableEntry> entries_;  // vpage -> pte
  mutable uint64_t faults_ = 0;
};

class PhysicalMemory {
 public:
  explicit PhysicalMemory(uint64_t bytes) : bytes_(bytes, 0) {}

  uint64_t size() const { return bytes_.size(); }
  Result<uint64_t> Read(uint64_t paddr, unsigned width) const;
  Status Write(uint64_t paddr, unsigned width, uint64_t value);
  Status Copy(uint64_t dst, uint64_t src, uint64_t len);
  Status Fill(uint64_t addr, uint8_t value, uint64_t len);
  uint8_t* raw(uint64_t paddr) { return bytes_.data() + paddr; }

 private:
  std::vector<uint8_t> bytes_;
};

// --- Devices -------------------------------------------------------------------

class ConsoleDevice {
 public:
  void PutChar(char c) { output_.push_back(c); }
  const std::string& output() const { return output_; }
  void Clear() { output_.clear(); }

 private:
  std::string output_;
};

class TimerDevice {
 public:
  void Tick(uint64_t n = 1) { ticks_ += n; }
  uint64_t ticks() const { return ticks_; }
  // Microseconds-of-uptime fiction for gettimeofday.
  uint64_t microseconds() const { return ticks_ * 100; }

 private:
  uint64_t ticks_ = 0;
};

class BlockDevice {
 public:
  static constexpr uint64_t kSectorSize = 512;
  explicit BlockDevice(uint64_t sectors) : data_(sectors * kSectorSize, 0) {}

  uint64_t num_sectors() const { return data_.size() / kSectorSize; }
  Status ReadSector(uint64_t sector, uint8_t* out);
  Status WriteSector(uint64_t sector, const uint8_t* in);
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  std::vector<uint8_t> data_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

// The whole platform.
class Machine {
 public:
  explicit Machine(uint64_t memory_bytes = 64ull << 20,
                   uint64_t disk_sectors = 16384)
      : memory_(memory_bytes), disk_(disk_sectors), nic_(memory_) {}

  Cpu& cpu() { return cpu_; }
  Mmu& mmu() { return mmu_; }
  PhysicalMemory& memory() { return memory_; }
  ConsoleDevice& console() { return console_; }
  TimerDevice& timer() { return timer_; }
  BlockDevice& disk() { return disk_; }
  VirtualNic& nic() { return nic_; }

  // I/O port space (Section 3.3: I/O functions are SVA-OS operations).
  enum Port : uint16_t {
    kPortConsole = 0x3F8,
    kPortTimer = 0x40,
    kPortDiskSector = 0x1F0,
    kPortDiskCommand = 0x1F7,
    // NIC register window: kPortNicBase + NicReg (src/hw/nic.h).
    kPortNicBase = 0x300,
  };
  Result<uint64_t> IoRead(uint16_t port);
  Status IoWrite(uint16_t port, uint64_t value);

  // Physical page allocator for kernel boot (bump; pages never move).
  // Returns the physical address of a fresh zeroed page, or 0 if exhausted.
  uint64_t AllocatePhysicalPage();
  uint64_t pages_allocated() const {
    return next_free_page_.load(std::memory_order_relaxed);
  }

 private:
  Cpu cpu_;
  Mmu mmu_;
  PhysicalMemory memory_;
  ConsoleDevice console_;
  TimerDevice timer_;
  BlockDevice disk_;
  VirtualNic nic_;
  // Atomic: the net fast path demand-pages user memory off the big kernel
  // lock, so concurrent first touches may race to allocate.
  std::atomic<uint64_t> next_free_page_{1};  // Page 0 unmapped (null guard).
  uint64_t disk_sector_latch_ = 0;
};

}  // namespace sva::hw

#endif  // SVA_SRC_HW_MACHINE_H_
