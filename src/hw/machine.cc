#include "src/hw/machine.h"

#include <cstring>

#include "src/support/strings.h"

namespace sva::hw {

Status Mmu::Map(uint64_t vaddr, uint64_t paddr, uint32_t flags) {
  if (vaddr % kPageSize != 0 || paddr % kPageSize != 0) {
    return InvalidArgument("mmu: unaligned mapping");
  }
  PageTableEntry& pte = entries_[vaddr / kPageSize];
  if ((pte.flags & kPteSvmReserved) != 0) {
    return FailedPrecondition(
        "mmu: attempt to remap an SVM-reserved page");
  }
  pte.physical_page = paddr / kPageSize;
  pte.flags = flags | kPtePresent;
  return OkStatus();
}

Status Mmu::Unmap(uint64_t vaddr) {
  auto it = entries_.find(vaddr / kPageSize);
  if (it == entries_.end() || (it->second.flags & kPtePresent) == 0) {
    return NotFound("mmu: unmap of unmapped page");
  }
  if ((it->second.flags & kPteSvmReserved) != 0) {
    return FailedPrecondition("mmu: attempt to unmap an SVM-reserved page");
  }
  entries_.erase(it);
  return OkStatus();
}

Result<uint64_t> Mmu::Translate(uint64_t vaddr, bool write,
                                Privilege privilege) const {
  auto it = entries_.find(vaddr / kPageSize);
  if (it == entries_.end() || (it->second.flags & kPtePresent) == 0) {
    ++faults_;
    return SafetyViolation(StrCat("page fault at 0x", std::hex, vaddr));
  }
  const PageTableEntry& pte = it->second;
  if (privilege == Privilege::kUser && (pte.flags & kPteUser) == 0) {
    ++faults_;
    return SafetyViolation(
        StrCat("protection fault: user access to kernel page 0x", std::hex,
               vaddr));
  }
  if (privilege != Privilege::kKernel &&
      (pte.flags & kPteSvmReserved) != 0) {
    ++faults_;
    return SafetyViolation("protection fault: access to SVM page");
  }
  if (write && (pte.flags & kPteWritable) == 0) {
    ++faults_;
    return SafetyViolation(
        StrCat("write to read-only page 0x", std::hex, vaddr));
  }
  return pte.physical_page * kPageSize + vaddr % kPageSize;
}

bool Mmu::IsMapped(uint64_t vaddr) const {
  auto it = entries_.find(vaddr / kPageSize);
  return it != entries_.end() && (it->second.flags & kPtePresent) != 0;
}

Result<uint64_t> PhysicalMemory::Read(uint64_t paddr, unsigned width) const {
  if (paddr + width > bytes_.size()) {
    return OutOfRange(StrCat("physical read beyond memory at 0x", std::hex,
                             paddr));
  }
  uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(bytes_[paddr + i]) << (8 * i);
  }
  return v;
}

Status PhysicalMemory::Write(uint64_t paddr, unsigned width, uint64_t value) {
  if (paddr + width > bytes_.size()) {
    return OutOfRange(StrCat("physical write beyond memory at 0x", std::hex,
                             paddr));
  }
  for (unsigned i = 0; i < width; ++i) {
    bytes_[paddr + i] = static_cast<uint8_t>(value >> (8 * i));
  }
  return OkStatus();
}

Status PhysicalMemory::Copy(uint64_t dst, uint64_t src, uint64_t len) {
  if (dst + len > bytes_.size() || src + len > bytes_.size()) {
    return OutOfRange("physical copy beyond memory");
  }
  std::memmove(bytes_.data() + dst, bytes_.data() + src, len);
  return OkStatus();
}

Status PhysicalMemory::Fill(uint64_t addr, uint8_t value, uint64_t len) {
  if (addr + len > bytes_.size()) {
    return OutOfRange("physical fill beyond memory");
  }
  std::memset(bytes_.data() + addr, value, len);
  return OkStatus();
}

Status BlockDevice::ReadSector(uint64_t sector, uint8_t* out) {
  if (sector >= num_sectors()) {
    return OutOfRange(StrCat("disk read beyond device: sector ", sector));
  }
  std::memcpy(out, data_.data() + sector * kSectorSize, kSectorSize);
  ++reads_;
  return OkStatus();
}

Status BlockDevice::WriteSector(uint64_t sector, const uint8_t* in) {
  if (sector >= num_sectors()) {
    return OutOfRange(StrCat("disk write beyond device: sector ", sector));
  }
  std::memcpy(data_.data() + sector * kSectorSize, in, kSectorSize);
  ++writes_;
  return OkStatus();
}

Result<uint64_t> Machine::IoRead(uint16_t port) {
  if (port >= kPortNicBase && port < kPortNicBase + kNicRegCount) {
    return nic_.RegRead(static_cast<uint16_t>(port - kPortNicBase));
  }
  switch (port) {
    case kPortTimer:
      return timer_.ticks();
    case kPortDiskSector:
      return disk_sector_latch_;
    default:
      return NotFound(StrCat("io read from unknown port 0x", std::hex, port));
  }
}

Status Machine::IoWrite(uint16_t port, uint64_t value) {
  if (port >= kPortNicBase && port < kPortNicBase + kNicRegCount) {
    return nic_.RegWrite(static_cast<uint16_t>(port - kPortNicBase), value);
  }
  switch (port) {
    case kPortConsole:
      console_.PutChar(static_cast<char>(value));
      return OkStatus();
    case kPortTimer:
      timer_.Tick(value);
      return OkStatus();
    case kPortDiskSector:
      disk_sector_latch_ = value;
      return OkStatus();
    default:
      return NotFound(StrCat("io write to unknown port 0x", std::hex, port));
  }
}

uint64_t Machine::AllocatePhysicalPage() {
  uint64_t page = next_free_page_.fetch_add(1, std::memory_order_relaxed);
  if ((page + 1) * kPageSize > memory_.size()) {
    // Exhausted; the bump pointer stays past the end and every subsequent
    // allocation keeps failing (pages never return to this allocator).
    return 0;
  }
  uint64_t addr = page * kPageSize;
  (void)memory_.Fill(addr, 0, kPageSize);
  return addr;
}

}  // namespace sva::hw
