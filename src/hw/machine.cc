#include "src/hw/machine.h"

#include <cstring>

#include "src/support/strings.h"

namespace sva::hw {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kUnused: return "unused";
    case FrameType::kUser: return "user";
    case FrameType::kKernel: return "kernel";
    case FrameType::kPageTable: return "page-table";
    case FrameType::kSvm: return "svm";
    case FrameType::kIo: return "io";
  }
  return "unknown";
}

Mmu::Mmu() {
  spaces_[kKernelAsid];  // The kernel address space always exists.
}

Result<uint32_t> Mmu::CreateAddressSpace() {
  std::lock_guard<std::mutex> guard(mu_);
  uint32_t asid;
  if (!free_asids_.empty()) {
    asid = free_asids_.back();
    free_asids_.pop_back();
  } else {
    asid = next_asid_++;
  }
  spaces_[asid];
  return asid;
}

Status Mmu::DestroyAddressSpace(uint32_t asid) {
  if (asid == kKernelAsid) {
    return FailedPrecondition("mmu: cannot destroy the kernel address space");
  }
  std::lock_guard<std::mutex> guard(mu_);
  auto it = spaces_.find(asid);
  if (it == spaces_.end()) {
    return NotFound(StrCat("mmu: no address space ", asid));
  }
  spaces_.erase(it);
  free_asids_.push_back(asid);
  return OkStatus();
}

PageTableEntry* Mmu::Find(uint32_t asid, uint64_t vpage) {
  auto space = spaces_.find(asid);
  if (space == spaces_.end()) {
    return nullptr;
  }
  auto leaf = space->second.dir.find(vpage / kLeafEntries);
  if (leaf == space->second.dir.end()) {
    return nullptr;
  }
  return &leaf->second->ptes[vpage % kLeafEntries];
}

const PageTableEntry* Mmu::Find(uint32_t asid, uint64_t vpage) const {
  return const_cast<Mmu*>(this)->Find(asid, vpage);
}

Status Mmu::Map(uint32_t asid, uint64_t vaddr, uint64_t paddr,
                uint32_t flags) {
  if (vaddr % kPageSize != 0 || paddr % kPageSize != 0) {
    return InvalidArgument("mmu: unaligned mapping");
  }
  std::lock_guard<std::mutex> guard(mu_);
  auto space = spaces_.find(asid);
  if (space == spaces_.end()) {
    return NotFound(StrCat("mmu: no address space ", asid));
  }
  const uint64_t vpage = vaddr / kPageSize;
  std::unique_ptr<Leaf>& leaf = space->second.dir[vpage / kLeafEntries];
  if (leaf == nullptr) {
    leaf = std::make_unique<Leaf>();
  }
  PageTableEntry& pte = leaf->ptes[vpage % kLeafEntries];
  if ((pte.flags & kPteSvmReserved) != 0) {
    return FailedPrecondition(
        "mmu: attempt to remap an SVM-reserved page");
  }
  if ((pte.flags & kPtePresent) != 0) {
    return AlreadyExists(
        StrCat("mmu: double map of 0x", std::hex, vaddr));
  }
  pte.physical_page = paddr / kPageSize;
  pte.flags = flags | kPtePresent;
  return OkStatus();
}

Status Mmu::Unmap(uint32_t asid, uint64_t vaddr) {
  std::lock_guard<std::mutex> guard(mu_);
  PageTableEntry* pte = Find(asid, vaddr / kPageSize);
  if (pte == nullptr || (pte->flags & kPtePresent) == 0) {
    return NotFound("mmu: unmap of unmapped page");
  }
  if ((pte->flags & kPteSvmReserved) != 0) {
    return FailedPrecondition("mmu: attempt to unmap an SVM-reserved page");
  }
  *pte = PageTableEntry{};
  return OkStatus();
}

Status Mmu::Protect(uint32_t asid, uint64_t vaddr, uint32_t flags) {
  std::lock_guard<std::mutex> guard(mu_);
  PageTableEntry* pte = Find(asid, vaddr / kPageSize);
  if (pte == nullptr || (pte->flags & kPtePresent) == 0) {
    return NotFound("mmu: protect of unmapped page");
  }
  if ((pte->flags & kPteSvmReserved) != 0) {
    return FailedPrecondition(
        "mmu: attempt to reprotect an SVM-reserved page");
  }
  pte->flags = flags | kPtePresent;
  return OkStatus();
}

Result<uint64_t> Mmu::Translate(uint32_t asid, uint64_t vaddr, bool write,
                                Privilege privilege) const {
  std::lock_guard<std::mutex> guard(mu_);
  const PageTableEntry* found = Find(asid, vaddr / kPageSize);
  if (found == nullptr || (found->flags & kPtePresent) == 0) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return SafetyViolation(StrCat("page fault at 0x", std::hex, vaddr));
  }
  const PageTableEntry& pte = *found;
  if (privilege == Privilege::kUser && (pte.flags & kPteUser) == 0) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return SafetyViolation(
        StrCat("protection fault: user access to kernel page 0x", std::hex,
               vaddr));
  }
  if (privilege != Privilege::kKernel &&
      (pte.flags & kPteSvmReserved) != 0) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return SafetyViolation("protection fault: access to SVM page");
  }
  if (write && ((pte.flags & kPteWritable) == 0 ||
                (pte.flags & kPteCow) != 0)) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return SafetyViolation(
        StrCat("write to read-only page 0x", std::hex, vaddr));
  }
  return pte.physical_page * kPageSize + vaddr % kPageSize;
}

bool Mmu::Lookup(uint32_t asid, uint64_t vaddr, PageTableEntry* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  const PageTableEntry* pte = Find(asid, vaddr / kPageSize);
  if (pte == nullptr || (pte->flags & kPtePresent) == 0) {
    return false;
  }
  *out = *pte;
  return true;
}

bool Mmu::IsMapped(uint32_t asid, uint64_t vaddr) const {
  PageTableEntry pte;
  return Lookup(asid, vaddr, &pte);
}

std::vector<std::pair<uint64_t, PageTableEntry>> Mmu::Entries(
    uint32_t asid) const {
  std::vector<std::pair<uint64_t, PageTableEntry>> out;
  std::lock_guard<std::mutex> guard(mu_);
  auto space = spaces_.find(asid);
  if (space == spaces_.end()) {
    return out;
  }
  for (const auto& [top, leaf] : space->second.dir) {
    for (size_t i = 0; i < kLeafEntries; ++i) {
      const PageTableEntry& pte = leaf->ptes[i];
      if ((pte.flags & kPtePresent) != 0) {
        out.emplace_back((top * kLeafEntries + i) * kPageSize, pte);
      }
    }
  }
  return out;
}

void Mmu::DeclareFrameType(uint64_t paddr, FrameType type) {
  const uint64_t pfn = paddr / kPageSize;
  std::lock_guard<std::mutex> guard(mu_);
  if (frame_types_.size() <= pfn) {
    frame_types_.resize(pfn + 1, FrameType::kUnused);
  }
  frame_types_[pfn] = type;
}

FrameType Mmu::frame_type(uint64_t paddr) const {
  const uint64_t pfn = paddr / kPageSize;
  std::lock_guard<std::mutex> guard(mu_);
  return pfn < frame_types_.size() ? frame_types_[pfn] : FrameType::kUnused;
}

bool Tlb::Lookup(uint32_t asid, uint64_t vaddr, PageTableEntry* out) {
  const uint64_t vpage = vaddr / kPageSize;
  std::lock_guard<std::mutex> guard(mu_);
  const Entry& e = entries_[SlotFor(asid, vpage)];
  if (e.valid && e.asid == asid && e.vpage == vpage) {
    ++hits_;
    *out = e.pte;
    return true;
  }
  ++misses_;
  return false;
}

void Tlb::Insert(uint32_t asid, uint64_t vaddr, const PageTableEntry& pte) {
  const uint64_t vpage = vaddr / kPageSize;
  std::lock_guard<std::mutex> guard(mu_);
  Entry& e = entries_[SlotFor(asid, vpage)];
  e.valid = true;
  e.asid = asid;
  e.vpage = vpage;
  e.pte = pte;
}

void Tlb::InvalidatePage(uint32_t asid, uint64_t vaddr) {
  const uint64_t vpage = vaddr / kPageSize;
  std::lock_guard<std::mutex> guard(mu_);
  Entry& e = entries_[SlotFor(asid, vpage)];
  if (e.valid && e.asid == asid && e.vpage == vpage) {
    e.valid = false;
    ++invalidations_;
  }
}

void Tlb::InvalidateAsid(uint32_t asid) {
  std::lock_guard<std::mutex> guard(mu_);
  for (Entry& e : entries_) {
    if (e.valid && e.asid == asid) {
      e.valid = false;
      ++invalidations_;
    }
  }
}

void Tlb::InvalidateAll() {
  std::lock_guard<std::mutex> guard(mu_);
  for (Entry& e : entries_) {
    if (e.valid) {
      e.valid = false;
      ++invalidations_;
    }
  }
}

Tlb::Stats Tlb::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.invalidations = invalidations_;
  s.shootdowns_received = shootdowns_.load(std::memory_order_relaxed);
  return s;
}

Result<uint64_t> PhysicalMemory::Read(uint64_t paddr, unsigned width) const {
  if (paddr + width > bytes_.size()) {
    return OutOfRange(StrCat("physical read beyond memory at 0x", std::hex,
                             paddr));
  }
  uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(bytes_[paddr + i]) << (8 * i);
  }
  return v;
}

Status PhysicalMemory::Write(uint64_t paddr, unsigned width, uint64_t value) {
  if (paddr + width > bytes_.size()) {
    return OutOfRange(StrCat("physical write beyond memory at 0x", std::hex,
                             paddr));
  }
  for (unsigned i = 0; i < width; ++i) {
    bytes_[paddr + i] = static_cast<uint8_t>(value >> (8 * i));
  }
  return OkStatus();
}

Status PhysicalMemory::Copy(uint64_t dst, uint64_t src, uint64_t len) {
  if (dst + len > bytes_.size() || src + len > bytes_.size()) {
    return OutOfRange("physical copy beyond memory");
  }
  std::memmove(bytes_.data() + dst, bytes_.data() + src, len);
  return OkStatus();
}

Status PhysicalMemory::Fill(uint64_t addr, uint8_t value, uint64_t len) {
  if (addr + len > bytes_.size()) {
    return OutOfRange("physical fill beyond memory");
  }
  std::memset(bytes_.data() + addr, value, len);
  return OkStatus();
}

Status BlockDevice::ReadSector(uint64_t sector, uint8_t* out) {
  if (sector >= num_sectors()) {
    return OutOfRange(StrCat("disk read beyond device: sector ", sector));
  }
  std::memcpy(out, data_.data() + sector * kSectorSize, kSectorSize);
  ++reads_;
  return OkStatus();
}

Status BlockDevice::WriteSector(uint64_t sector, const uint8_t* in) {
  if (sector >= num_sectors()) {
    return OutOfRange(StrCat("disk write beyond device: sector ", sector));
  }
  std::memcpy(data_.data() + sector * kSectorSize, in, kSectorSize);
  ++writes_;
  return OkStatus();
}

Result<uint64_t> Machine::IoRead(uint16_t port) {
  if (port >= kPortNicBase && port < kPortNicBase + kNicRegCount) {
    return nic_.RegRead(static_cast<uint16_t>(port - kPortNicBase));
  }
  switch (port) {
    case kPortTimer:
      return timer_.ticks();
    case kPortDiskSector:
      return disk_sector_latch_;
    default:
      return NotFound(StrCat("io read from unknown port 0x", std::hex, port));
  }
}

Status Machine::IoWrite(uint16_t port, uint64_t value) {
  if (port >= kPortNicBase && port < kPortNicBase + kNicRegCount) {
    return nic_.RegWrite(static_cast<uint16_t>(port - kPortNicBase), value);
  }
  switch (port) {
    case kPortConsole:
      console_.PutChar(static_cast<char>(value));
      return OkStatus();
    case kPortTimer:
      timer_.Tick(value);
      return OkStatus();
    case kPortDiskSector:
      disk_sector_latch_ = value;
      return OkStatus();
    default:
      return NotFound(StrCat("io write to unknown port 0x", std::hex, port));
  }
}

uint64_t Machine::AllocatePhysicalPage() {
  uint64_t page = next_free_page_.fetch_add(1, std::memory_order_relaxed);
  if ((page + 1) * kPageSize > memory_.size()) {
    // Exhausted; the bump pointer stays past the end and every subsequent
    // allocation keeps failing (pages never return to this allocator).
    return 0;
  }
  uint64_t addr = page * kPageSize;
  (void)memory_.Fill(addr, 0, kPageSize);
  return addr;
}

}  // namespace sva::hw
