// Virtual network interface card: the traffic-bearing device of the
// simulated platform. Modeled on the classic descriptor-ring designs
// (e1000/tulip): the driver allocates rx/tx descriptor rings in guest
// physical memory, programs their base/size through I/O port registers,
// and hands buffer ownership to the NIC via an OWNED flag per descriptor.
//
// The device side DMAs frames directly into (rx) and out of (tx) the
// buffers the descriptors point at — in this repo those buffers are
// packet-pool objects registered with a metapool, which is exactly the
// correlation the paper's safety checking needs on the packet path.
//
// All register access from the kernel flows through SVA-OS I/O operations
// (Section 3.3); the wire side (Receive/DrainTransmitted) is the outside
// world and is driven by the loopback client in src/net/client.h.
#ifndef SVA_SRC_HW_NIC_H_
#define SVA_SRC_HW_NIC_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/support/status.h"

namespace sva::hw {

class PhysicalMemory;

// Descriptor layout in guest physical memory (16 bytes, little-endian):
//   +0  u64 buffer physical address
//   +8  u16 buffer capacity in bytes
//   +10 u16 frame length (rx: written by the NIC; tx: set by the driver)
//   +12 u16 flags
//   +14 u16 reserved
inline constexpr uint64_t kNicDescriptorBytes = 16;
inline constexpr uint16_t kNicDescOwned = 1 << 0;  // Owned by the NIC.
inline constexpr uint64_t kNicMaxFrameBytes = 2048;

// NIC register file, addressed as I/O ports at Machine::kPortNicBase + reg.
enum class NicReg : uint16_t {
  kCommand = 0,   // write: NicCommand
  kStatus = 1,    // read: bit 0 = rx interrupt pending
  kRxBase = 2,    // write: rx ring physical base
  kRxSize = 3,    // write: rx ring descriptor count
  kTxBase = 4,    // write: tx ring physical base
  kTxSize = 5,    // write: tx ring descriptor count
  kRxHead = 6,    // read: next rx slot the device will fill
  kTxHead = 7,    // read: next tx slot the device will scan
};
inline constexpr uint16_t kNicRegCount = 8;

enum class NicCommand : uint64_t {
  kReset = 0,
  kEnable = 1,
  kTxKick = 2,   // Scan the tx ring and transmit every NIC-owned frame.
  kIrqAck = 3,   // Clear the rx interrupt line.
  kIrqMask = 4,    // Mask the rx interrupt line (NAPI poll mode).
  kIrqUnmask = 5,  // Re-enable the rx interrupt line.
};

inline constexpr uint64_t kNicStatusRxPending = 1 << 0;
// Set while frames are waiting in the ring regardless of the mask — the
// NAPI poll loop reads this to decide whether another budget pass is due.
inline constexpr uint64_t kNicStatusRxWork = 1 << 1;

struct NicCounters {
  uint64_t rx_frames = 0;
  uint64_t tx_frames = 0;
  uint64_t rx_dropped_full = 0;   // No NIC-owned rx descriptor available.
  uint64_t rx_dropped_disabled = 0;
  uint64_t dma_errors = 0;        // Descriptor pointed outside memory or
                                  // capacity could not hold the frame.
};

class VirtualNic {
 public:
  explicit VirtualNic(PhysicalMemory& memory) : memory_(memory) {}

  // --- Register file (reached only through Machine::IoRead/IoWrite) ----------
  Result<uint64_t> RegRead(uint16_t reg);
  Status RegWrite(uint16_t reg, uint64_t value);

  // --- Wire side ----------------------------------------------------------------
  // A frame arrives from the medium: DMA into the next NIC-owned rx
  // descriptor's buffer, write back the length, clear OWNED, raise the
  // interrupt line. Drops (with a counter) when disabled or ring-full.
  Status Receive(const uint8_t* frame, uint64_t len);
  // Frames the device has transmitted since the last drain, in order.
  std::vector<std::vector<uint8_t>> DrainTransmitted();

  bool irq_pending() const {
    std::lock_guard<std::mutex> guard(device_mutex_);
    return irq_pending_ && !irq_masked_;
  }
  bool enabled() const {
    std::lock_guard<std::mutex> guard(device_mutex_);
    return enabled_;
  }
  NicCounters counters() const {
    std::lock_guard<std::mutex> guard(device_mutex_);
    return counters_;
  }

 private:
  struct Descriptor {
    uint64_t buffer = 0;
    uint16_t capacity = 0;
    uint16_t length = 0;
    uint16_t flags = 0;
  };
  Result<Descriptor> ReadDescriptor(uint64_t ring_base, uint64_t index);
  Status WriteDescriptor(uint64_t ring_base, uint64_t index,
                         const Descriptor& desc);
  // Walk the tx ring transmitting every consecutively NIC-owned frame.
  Status TxKick();

  // Hardware serializes concurrent access to the register file and the
  // wire side; the kernel may kick tx from several virtual CPUs while the
  // client thread injects rx frames. Sits below every kernel lock (only
  // leaf memory/trace operations run under it).
  mutable std::mutex device_mutex_;

  PhysicalMemory& memory_;
  bool enabled_ = false;
  bool irq_pending_ = false;
  bool irq_masked_ = false;
  uint64_t rx_base_ = 0;
  uint64_t rx_size_ = 0;
  uint64_t tx_base_ = 0;
  uint64_t tx_size_ = 0;
  uint64_t rx_head_ = 0;
  uint64_t tx_head_ = 0;
  std::vector<std::vector<uint8_t>> tx_queue_;
  NicCounters counters_;
};

}  // namespace sva::hw

#endif  // SVA_SRC_HW_NIC_H_
