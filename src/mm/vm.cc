#include "src/mm/vm.h"

#include <utility>
#include <vector>

#include "src/support/strings.h"
#include "src/trace/trace.h"

namespace sva::mm {

namespace {

inline uint64_t PageBase(uint64_t vaddr) {
  return vaddr & ~(hw::kPageSize - 1);
}

// PTEs store the frame as a page number; the allocator and PhysicalMemory
// speak byte addresses.
inline uint64_t FrameAddr(const hw::PageTableEntry& pte) {
  return pte.physical_page * hw::kPageSize;
}

// A TLB entry satisfies an access iff present and, for writes, writable and
// not COW-shared. Anything else takes the fault path.
inline bool PermitsAccess(const hw::PageTableEntry& pte, bool write) {
  if ((pte.flags & hw::kPtePresent) == 0) {
    return false;
  }
  return !write || ((pte.flags & hw::kPteWritable) != 0 &&
                    (pte.flags & hw::kPteCow) == 0);
}

}  // namespace

Status VmManager::Init() {
  // The shootdown IPI: remote invalidation already happened synchronously in
  // SvaOS::TlbShootdown (the model's "ack"); the handler is the observable
  // interrupt-path delivery.
  return os_.RegisterInterrupt(
      svaos::kTlbShootdownVector, [this](svaos::InterruptContext*) {
        shootdown_ipis_.fetch_add(1, std::memory_order_relaxed);
      });
}

Result<std::unique_ptr<AddressSpace>> VmManager::CreateAddressSpace(
    uint64_t base, uint64_t initial_pages, uint64_t max_pages) {
  if (base % hw::kPageSize != 0) {
    return InvalidArgument("vm: unaligned address-space base");
  }
  if (initial_pages > max_pages) {
    return InvalidArgument("vm: initial pages exceed max pages");
  }
  SVA_ASSIGN_OR_RETURN(uint32_t asid, os_.CreateAddressSpace());
  return std::unique_ptr<AddressSpace>(
      new AddressSpace(asid, base, initial_pages, max_pages));
}

Status VmManager::Destroy(AddressSpace& as) {
  {
    std::lock_guard<smp::OrderedSpinLock> guard(as.lock_);
    auto entries = os_.machine().mmu().Entries(as.asid_);
    for (const auto& [vaddr, pte] : entries) {
      SVA_RETURN_IF_ERROR(os_.MmuUnmap(as.asid_, vaddr));
      frames_.Release(FrameAddr(pte));
    }
    SVA_RETURN_IF_ERROR(os_.TlbShootdown(as.asid_, 0, /*entire_asid=*/true));
    as.resident_pages_.store(0, std::memory_order_relaxed);
  }
  return os_.DestroyAddressSpace(as.asid_);
}

Result<uint64_t> VmManager::Resolve(AddressSpace& as, uint64_t vaddr,
                                    bool write) {
  hw::PageTableEntry pte;
  if (os_.current_cpu().tlb().Lookup(as.asid_, vaddr, &pte) &&
      PermitsAccess(pte, write)) {
    return FrameAddr(pte) + (vaddr & (hw::kPageSize - 1));
  }
  return FaultIn(as, vaddr, write);
}

Result<uint64_t> VmManager::FaultIn(AddressSpace& as, uint64_t vaddr,
                                    bool write) {
  trace::Span span(trace::EventId::kPageFault, trace::HistId::kPageFaultNs,
                   vaddr, write ? 1 : 0);
  page_faults_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t page = PageBase(vaddr);
  const uint64_t offset = vaddr & (hw::kPageSize - 1);
  std::lock_guard<smp::OrderedSpinLock> guard(as.lock_);

  hw::Mmu& mmu = os_.machine().mmu();
  hw::PageTableEntry pte;
  if (mmu.Lookup(as.asid_, page, &pte)) {
    if (write && (pte.flags & hw::kPteCow) != 0) {
      // COW break. Refcounts count mappings and this space's own COW entry
      // can only be retired under as.lock_ (held), so rc == 1 means sole
      // owner: upgrade in place. A stale rc > 1 read only costs an extra
      // copy, never a lost write.
      cow_faults_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t shared_frame = FrameAddr(pte);
      const uint32_t new_flags =
          (pte.flags & ~hw::kPteCow) | hw::kPteWritable;
      if (frames_.RefCount(shared_frame) <= 1) {
        SVA_RETURN_IF_ERROR(os_.MmuProtect(as.asid_, page, new_flags));
      } else {
        SVA_ASSIGN_OR_RETURN(uint64_t copy,
                             frames_.Allocate(hw::FrameType::kUser));
        SVA_RETURN_IF_ERROR(os_.machine().memory().Copy(
            copy, shared_frame, hw::kPageSize));
        SVA_RETURN_IF_ERROR(os_.MmuUnmap(as.asid_, page));
        SVA_RETURN_IF_ERROR(os_.MmuMap(as.asid_, page, copy, new_flags));
        frames_.Release(shared_frame);
        cow_copies_.fetch_add(1, std::memory_order_relaxed);
      }
      SVA_RETURN_IF_ERROR(
          os_.TlbShootdown(as.asid_, page, /*entire_asid=*/false));
      (void)mmu.Lookup(as.asid_, page, &pte);
      os_.current_cpu().tlb().Insert(as.asid_, page, pte);
      return FrameAddr(pte) + offset;
    }
    if (write && (pte.flags & hw::kPteWritable) == 0) {
      return SafetyViolation(
          StrCat("write to read-only page 0x", std::hex, page));
    }
    // Read (or already-writable) TLB miss: refill.
    os_.current_cpu().tlb().Insert(as.asid_, page, pte);
    return FrameAddr(pte) + offset;
  }

  // Not mapped: zero-fill demand paging inside the brk frontier, fault
  // outside it.
  const uint64_t limit =
      as.base_ + as.page_limit_.load(std::memory_order_relaxed) *
                     hw::kPageSize;
  if (vaddr < as.base_ || vaddr >= limit) {
    return SafetyViolation(StrCat("bad user address 0x", std::hex, vaddr));
  }
  demand_fills_.fetch_add(1, std::memory_order_relaxed);
  SVA_ASSIGN_OR_RETURN(uint64_t frame,
                       frames_.Allocate(hw::FrameType::kUser));
  SVA_RETURN_IF_ERROR(
      os_.MmuMap(as.asid_, page, frame,
                 hw::kPtePresent | hw::kPteWritable | hw::kPteUser));
  as.resident_pages_.fetch_add(1, std::memory_order_relaxed);
  pte.physical_page = frame / hw::kPageSize;
  pte.flags = hw::kPtePresent | hw::kPteWritable | hw::kPteUser;
  os_.current_cpu().tlb().Insert(as.asid_, page, pte);
  return frame + offset;
}

Status VmManager::ExtendLimit(AddressSpace& as, uint64_t new_limit_pages) {
  if (new_limit_pages > as.max_pages_) {
    return Status(StatusCode::kResourceExhausted,
                  "vm: address space limit exceeds its hard cap");
  }
  // Monotonic raise; concurrent brk calls race benignly.
  uint64_t cur = as.page_limit_.load(std::memory_order_relaxed);
  while (cur < new_limit_pages &&
         !as.page_limit_.compare_exchange_weak(cur, new_limit_pages,
                                               std::memory_order_relaxed)) {
  }
  return OkStatus();
}

Status VmManager::CloneCow(AddressSpace& parent, AddressSpace& child) {
  struct Shared {
    uint64_t offset;  // vaddr - parent base
    uint64_t paddr;
    uint32_t flags;
  };
  std::vector<Shared> shared;
  // Phase 1 — under the PARENT lock only: downgrade every writable mapping
  // to read-only COW, take a reference for the child, and shoot down stale
  // writable TLB entries before any CPU can write through them.
  {
    std::lock_guard<smp::OrderedSpinLock> guard(parent.lock_);
    auto entries = os_.machine().mmu().Entries(parent.asid_);
    shared.reserve(entries.size());
    for (const auto& [vaddr, pte] : entries) {
      uint32_t flags = (pte.flags & ~hw::kPteWritable) | hw::kPteCow;
      if (flags != pte.flags) {
        SVA_RETURN_IF_ERROR(os_.MmuProtect(parent.asid_, vaddr, flags));
      }
      frames_.AddRef(FrameAddr(pte));
      shared.push_back({vaddr - parent.base_, FrameAddr(pte), flags});
    }
    SVA_RETURN_IF_ERROR(
        os_.TlbShootdown(parent.asid_, 0, /*entire_asid=*/true));
  }
  // Phase 2 — under the CHILD lock (sequential, same rank forbids nesting):
  // map the shared frames at the child's base.
  {
    std::lock_guard<smp::OrderedSpinLock> guard(child.lock_);
    for (const Shared& s : shared) {
      SVA_RETURN_IF_ERROR(
          os_.MmuMap(child.asid_, child.base_ + s.offset, s.paddr, s.flags));
    }
    child.resident_pages_.store(shared.size(), std::memory_order_relaxed);
  }
  child.page_limit_.store(parent.page_limit_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  forks_cow_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status VmManager::CloneEager(AddressSpace& parent, AddressSpace& child) {
  struct Copied {
    uint64_t offset;
    uint64_t paddr;
    uint32_t flags;
  };
  std::vector<Copied> copies;
  {
    std::lock_guard<smp::OrderedSpinLock> guard(parent.lock_);
    auto entries = os_.machine().mmu().Entries(parent.asid_);
    copies.reserve(entries.size());
    for (const auto& [vaddr, pte] : entries) {
      SVA_ASSIGN_OR_RETURN(uint64_t frame,
                           frames_.Allocate(hw::FrameType::kUser));
      SVA_RETURN_IF_ERROR(os_.machine().memory().Copy(
          frame, FrameAddr(pte), hw::kPageSize));
      // The copy is private, so it is born writable even if the source was
      // COW-shared.
      copies.push_back({vaddr - parent.base_, frame,
                        (pte.flags & ~hw::kPteCow) | hw::kPteWritable});
    }
  }
  {
    std::lock_guard<smp::OrderedSpinLock> guard(child.lock_);
    for (const Copied& c : copies) {
      SVA_RETURN_IF_ERROR(
          os_.MmuMap(child.asid_, child.base_ + c.offset, c.paddr, c.flags));
    }
    child.resident_pages_.store(copies.size(), std::memory_order_relaxed);
  }
  child.page_limit_.store(parent.page_limit_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  forks_eager_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status VmManager::Reset(AddressSpace& as, uint64_t initial_pages) {
  std::lock_guard<smp::OrderedSpinLock> guard(as.lock_);
  auto entries = os_.machine().mmu().Entries(as.asid_);
  for (const auto& [vaddr, pte] : entries) {
    SVA_RETURN_IF_ERROR(os_.MmuUnmap(as.asid_, vaddr));
    frames_.Release(FrameAddr(pte));
  }
  SVA_RETURN_IF_ERROR(os_.TlbShootdown(as.asid_, 0, /*entire_asid=*/true));
  as.resident_pages_.store(0, std::memory_order_relaxed);
  as.page_limit_.store(initial_pages, std::memory_order_relaxed);
  return OkStatus();
}

VmStats VmManager::stats() const {
  VmStats s;
  s.page_faults = page_faults_.load(std::memory_order_relaxed);
  s.demand_fills = demand_fills_.load(std::memory_order_relaxed);
  s.cow_faults = cow_faults_.load(std::memory_order_relaxed);
  s.cow_copies = cow_copies_.load(std::memory_order_relaxed);
  s.forks_cow = forks_cow_.load(std::memory_order_relaxed);
  s.forks_eager = forks_eager_.load(std::memory_order_relaxed);
  s.shootdown_ipis = shootdown_ipis_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sva::mm
