// Physical frame allocator for the virtual-memory subsystem (src/mm).
//
// Sits between the Machine's bump allocator (pages are carved out once and
// never returned to it) and the demand-paging / COW paths, adding the two
// things those paths need: a free list so address-space teardown recycles
// frames, and per-frame reference counts so COW fork can share a frame
// across parent and child until the first write.
//
// Every frame handed out is declared to the MMU with the caller's frame
// type (§4.3), so the SVA-OS map-time checks see an accurate type table.
// Releasing the last reference re-declares the frame kUnused and parks it
// on the free list; re-allocation zeroes it before reuse so no data leaks
// between address spaces.
//
// Thread-safety: all operations are guarded by one internal mutex — an
// unranked leaf below the address-space locks (docs/CONCURRENCY.md); no
// callback ever runs under it.
#ifndef SVA_SRC_MM_FRAME_ALLOCATOR_H_
#define SVA_SRC_MM_FRAME_ALLOCATOR_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/hw/machine.h"
#include "src/support/status.h"
#include "src/svaos/svaos.h"

namespace sva::mm {

class FrameAllocator {
 public:
  FrameAllocator(hw::Machine& machine, svaos::SvaOS& svaos)
      : machine_(machine), os_(svaos) {}

  // Returns a zeroed frame declared as `type`, refcount 1. Prefers the free
  // list; falls back to the machine's bump allocator. ResourceExhausted when
  // both are dry (the caller maps this to kENoMem, never an abort).
  Result<uint64_t> Allocate(hw::FrameType type);

  // COW sharing: one more mapping now references `paddr`.
  void AddRef(uint64_t paddr);

  // Drops one reference; the last drop re-declares the frame kUnused and
  // recycles it onto the free list.
  void Release(uint64_t paddr);

  uint32_t RefCount(uint64_t paddr) const;
  size_t free_frames() const;
  // Frames currently handed out (refcount >= 1).
  size_t live_frames() const;

 private:
  hw::Machine& machine_;
  svaos::SvaOS& os_;
  mutable std::mutex mu_;  // Unranked leaf below the AS locks.
  std::unordered_map<uint64_t, uint32_t> refs_;
  std::vector<uint64_t> free_list_;
};

}  // namespace sva::mm

#endif  // SVA_SRC_MM_FRAME_ALLOCATOR_H_
