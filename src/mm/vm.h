// Virtual-memory subsystem: per-task address spaces, demand paging, and
// copy-on-write fork on top of the asid-aware MMU (src/hw) and the SVA-OS
// MMU operations (the sole translation-mutation path, §4.3).
//
// The paper's kernel keeps its page tables in SVM-declared frames and asks
// the SVM for every change; this layer is the kernel-side policy that sits
// on those mechanisms:
//
//   * Demand paging — user pages are not committed at task creation. The
//     address space records a page *limit* (grown lazily by brk); the first
//     touch of a page inside the limit takes a page fault (FaultIn), gets a
//     zeroed frame, and maps it. Touches outside the limit are safety
//     violations, exactly like a hardware fault the kernel turns into a
//     kill.
//   * Copy-on-write fork — CloneCow downgrades every parent mapping to
//     read-only + kPteCow, bumps frame refcounts, and maps the same frames
//     into the child. The first write on either side faults, and the fault
//     handler either upgrades in place (sole owner) or copies the frame.
//   * TLB coherence — every translation mutation is followed by a
//     synchronous SvaOS::TlbShootdown before the operation returns, so no
//     CPU can act on a stale entry (the IPI+ack round, delivered through
//     the SVA-OS interrupt path on vector kTlbShootdownVector).
//
// Locking: each AddressSpace carries an OrderedSpinLock of rank kAddrSpace,
// ABOVE all kernel table locks — user-copy faults occur while vfs/pipes/
// files locks are held. Same-rank nesting is forbidden, so CloneCow/-Eager
// take the parent and child locks in two sequential critical sections,
// never nested (docs/CONCURRENCY.md).
#ifndef SVA_SRC_MM_VM_H_
#define SVA_SRC_MM_VM_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/hw/machine.h"
#include "src/mm/frame_allocator.h"
#include "src/smp/lock_order.h"
#include "src/support/status.h"
#include "src/svaos/svaos.h"

namespace sva::mm {

// One task's address space: an MMU asid plus the demand-paging policy state
// (base, lazy page limit, hard cap). Created and mutated only through
// VmManager; the kernel stores one per task.
class AddressSpace {
 public:
  uint32_t asid() const { return asid_; }
  uint64_t base() const { return base_; }
  // Pages the task may touch (brk frontier); grown lazily, not committed.
  uint64_t page_limit() const {
    return page_limit_.load(std::memory_order_relaxed);
  }
  uint64_t max_pages() const { return max_pages_; }
  // Pages actually backed by a frame.
  uint64_t resident_pages() const {
    return resident_pages_.load(std::memory_order_relaxed);
  }

 private:
  friend class VmManager;
  AddressSpace(uint32_t asid, uint64_t base, uint64_t initial_pages,
               uint64_t max_pages)
      : asid_(asid),
        base_(base),
        max_pages_(max_pages),
        page_limit_(initial_pages) {}

  const uint32_t asid_;
  const uint64_t base_;
  const uint64_t max_pages_;
  std::atomic<uint64_t> page_limit_;
  std::atomic<uint64_t> resident_pages_{0};
  // Serializes all translation mutations for this space (fault handling,
  // fork clone phases, reset). Rank kAddrSpace: above every table lock.
  smp::OrderedSpinLock lock_{smp::LockRank::kAddrSpace};
};

struct VmStats {
  uint64_t page_faults = 0;
  uint64_t demand_fills = 0;
  uint64_t cow_faults = 0;
  uint64_t cow_copies = 0;
  uint64_t forks_cow = 0;
  uint64_t forks_eager = 0;
  uint64_t shootdown_ipis = 0;
};

class VmManager {
 public:
  VmManager(svaos::SvaOS& svaos, FrameAllocator& frames)
      : os_(svaos), frames_(frames) {}

  // Registers the shootdown-IPI handler (vector kTlbShootdownVector) so
  // cross-CPU invalidations flow through the SVA-OS interrupt path. Call
  // once, at kernel boot.
  Status Init();

  // A fresh empty space: [base, base + initial_pages) touchable, growable
  // to max_pages. No frames are committed.
  Result<std::unique_ptr<AddressSpace>> CreateAddressSpace(
      uint64_t base, uint64_t initial_pages, uint64_t max_pages);

  // Unmaps everything, releases the frames, and retires the asid.
  Status Destroy(AddressSpace& as);

  // Virtual -> physical for a user access, faulting pages in as needed.
  // The user-copy hot path: per-CPU TLB hit + permission check; misses and
  // COW writes fall into FaultIn. SafetyViolation outside the page limit;
  // ResourceExhausted when the frame pool is dry.
  Result<uint64_t> Resolve(AddressSpace& as, uint64_t vaddr, bool write);

  // Lazy brk: raises the touchable-page frontier without committing frames.
  // ResourceExhausted past max_pages (the kernel maps this to kENoMem).
  Status ExtendLimit(AddressSpace& as, uint64_t new_limit_pages);

  // Fork backends. `child` must be freshly created and empty; parent and
  // child locks are taken sequentially, never nested.
  Status CloneCow(AddressSpace& parent, AddressSpace& child);
  Status CloneEager(AddressSpace& parent, AddressSpace& child);

  // Execve: drops every mapping/frame and rewinds the limit.
  Status Reset(AddressSpace& as, uint64_t initial_pages);

  VmStats stats() const;

 private:
  // Slow path, called with no AS lock held; takes as.lock_.
  Result<uint64_t> FaultIn(AddressSpace& as, uint64_t vaddr, bool write);

  svaos::SvaOS& os_;
  FrameAllocator& frames_;
  std::atomic<uint64_t> page_faults_{0};
  std::atomic<uint64_t> demand_fills_{0};
  std::atomic<uint64_t> cow_faults_{0};
  std::atomic<uint64_t> cow_copies_{0};
  std::atomic<uint64_t> forks_cow_{0};
  std::atomic<uint64_t> forks_eager_{0};
  std::atomic<uint64_t> shootdown_ipis_{0};
};

}  // namespace sva::mm

#endif  // SVA_SRC_MM_VM_H_
