#include "src/mm/frame_allocator.h"

namespace sva::mm {

Result<uint64_t> FrameAllocator::Allocate(hw::FrameType type) {
  uint64_t paddr = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!free_list_.empty()) {
      paddr = free_list_.back();
      free_list_.pop_back();
    }
  }
  if (paddr == 0) {
    paddr = machine_.AllocatePhysicalPage();
    if (paddr == 0) {
      return Status(StatusCode::kResourceExhausted,
                    "physical frame pool exhausted");
    }
  } else {
    // Recycled frame: scrub before it crosses address spaces.
    (void)machine_.memory().Fill(paddr, 0, hw::kPageSize);
  }
  SVA_RETURN_IF_ERROR(os_.DeclareFrameType(paddr, type));
  std::lock_guard<std::mutex> guard(mu_);
  refs_[paddr] = 1;
  return paddr;
}

void FrameAllocator::AddRef(uint64_t paddr) {
  std::lock_guard<std::mutex> guard(mu_);
  ++refs_[paddr];
}

void FrameAllocator::Release(uint64_t paddr) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = refs_.find(paddr);
    if (it == refs_.end()) {
      return;  // Not ours (boot-time frame); nothing to recycle.
    }
    if (--it->second != 0) {
      return;
    }
    refs_.erase(it);
  }
  // Re-type BEFORE parking the frame on the free list: once listed, a
  // concurrent Allocate may hand it out with a fresh declaration, which a
  // stale late kUnused write here must never overwrite.
  (void)os_.DeclareFrameType(paddr, hw::FrameType::kUnused);
  std::lock_guard<std::mutex> guard(mu_);
  free_list_.push_back(paddr);
}

uint32_t FrameAllocator::RefCount(uint64_t paddr) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = refs_.find(paddr);
  return it == refs_.end() ? 0 : it->second;
}

size_t FrameAllocator::free_frames() const {
  std::lock_guard<std::mutex> guard(mu_);
  return free_list_.size();
}

size_t FrameAllocator::live_frames() const {
  std::lock_guard<std::mutex> guard(mu_);
  return refs_.size();
}

}  // namespace sva::mm
