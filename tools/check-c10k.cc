// check-c10k: gates the event-driven I/O subsystem. Reads the JSON report
// written by `c10k --quick --json` and asserts:
//
//   1. the bench held >= 10,000 concurrent connections (every one accepted
//      through the reuse-port shards, served, and closed — the bench exits
//      non-zero itself if any connection was dropped, so the record's
//      existence already implies integrity; this checks the scale), and
//   2. the p99 request latency stays under a deliberately loose bound
//      (10 s) — the number is queueing-dominated by design, the bound only
//      catches a wedged event loop, not a slow host.
//
// Exit codes: 0 = gate holds, 1 = regression (or malformed report),
// 77 = the p99 check is skipped because the host is starved (a single
// hardware thread runs driver + workers time-sliced, so latency is
// scheduler noise; the 10k-held check above still gates — ctest maps 77 to
// SKIP via SKIP_RETURN_CODE).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

constexpr double kRequiredConns = 10000;
constexpr double kMaxP99Us = 10e6;
constexpr int kExitSkip = 77;

// Extracts the number following `key` in `text` starting at `from`;
// returns the position after the match, or std::string::npos.
size_t FindNumber(const std::string& text, const std::string& key,
                  size_t from, double* out) {
  size_t pos = text.find(key, from);
  if (pos == std::string::npos) {
    return std::string::npos;
  }
  pos += key.size();
  char* end = nullptr;
  *out = std::strtod(text.c_str() + pos, &end);
  if (end == text.c_str() + pos) {
    return std::string::npos;
  }
  return pos;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: check-c10k <c10k.json>\n");
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "check-c10k: cannot read %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  double hw_cpus = 0;
  if (FindNumber(text, "\"hw_cpus\": ", 0, &hw_cpus) == std::string::npos) {
    std::fprintf(stderr, "check-c10k: no hw_cpus field in %s\n", argv[1]);
    return 1;
  }

  // Every mode's run must have held the full complement of connections.
  double conns = 0;
  size_t pos = 0;
  int conn_records = 0;
  while ((pos = text.find("\"metric\": \"concurrent connections\"", pos)) !=
         std::string::npos) {
    double value = 0;
    if (FindNumber(text, "\"value\": ", pos, &value) == std::string::npos) {
      std::fprintf(stderr, "check-c10k: malformed record in %s\n", argv[1]);
      return 1;
    }
    ++conn_records;
    conns = value;
    if (value < kRequiredConns) {
      std::fprintf(stderr,
                   "check-c10k: FAIL — held %.0f concurrent connections, "
                   "need >= %.0f\n",
                   value, kRequiredConns);
      return 1;
    }
    ++pos;
  }
  if (conn_records == 0) {
    std::fprintf(stderr,
                 "check-c10k: no 'concurrent connections' record in %s\n",
                 argv[1]);
    return 1;
  }
  std::printf("check-c10k: %.0f concurrent connections held (>= %.0f)\n",
              conns, kRequiredConns);

  if (hw_cpus < 2) {
    std::printf(
        "check-c10k: SKIP p99 bound — host has %.0f hardware thread(s); "
        "driver and workers are time-sliced, so latency is scheduler "
        "noise\n",
        hw_cpus);
    return kExitSkip;
  }

  pos = 0;
  int p99_records = 0;
  while ((pos = text.find("\"metric\": \"latency p99\"", pos)) !=
         std::string::npos) {
    double value = 0;
    if (FindNumber(text, "\"value\": ", pos, &value) == std::string::npos) {
      std::fprintf(stderr, "check-c10k: malformed p99 record in %s\n",
                   argv[1]);
      return 1;
    }
    ++p99_records;
    if (value > kMaxP99Us) {
      std::fprintf(stderr,
                   "check-c10k: FAIL — p99 latency %.0f us exceeds %.0f us "
                   "(wedged event loop?)\n",
                   value, kMaxP99Us);
      return 1;
    }
    ++pos;
  }
  if (p99_records == 0) {
    std::fprintf(stderr, "check-c10k: no 'latency p99' record in %s\n",
                 argv[1]);
    return 1;
  }
  std::printf("check-c10k: p99 bound holds across %d record(s)\n",
              p99_records);
  return 0;
}
