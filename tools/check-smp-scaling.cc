// check-smp-scaling: gates the big-kernel-lock split and the epoch-based
// read path. Reads a JSON report written by `smp_scaling --json` and asserts
// two phases scale from 1 to 4 workers:
//
//   - kernel syscall phase (mixed read/write): >= 1.3x. Deliberately loose
//     so scheduler noise on shared CI hosts never flakes it; the real
//     speedup on a quiet 4-core host is well above 2x. This phase still
//     takes leaf locks on its write paths, so contention bounds it.
//   - read-mostly phase (stat/getpid/lseek fd-lookup mix): >= 2.5x. These
//     syscalls resolve fds and paths under epoch protection with no shared
//     lock at all, so they must scale near-linearly; falling under 2.5x
//     means a reader path regressed onto files_lock_ or vfs_lock_.
//
// Exit codes: 0 = both speedups hold, 1 = regression (or malformed report),
// 77 = skipped because the host cannot run 4 workers in parallel (fewer
// than 4 hardware threads — ctest maps 77 to SKIP via SKIP_RETURN_CODE).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

constexpr double kKernelRequiredSpeedup = 1.3;
constexpr double kReadMostlyRequiredSpeedup = 2.5;
constexpr int kExitSkip = 77;

// Extracts the number following `key` (e.g. "\"cpus\": ") in `text` starting
// at `from`; returns the position after the match, or std::string::npos.
size_t FindNumber(const std::string& text, const std::string& key,
                  size_t from, double* out) {
  size_t pos = text.find(key, from);
  if (pos == std::string::npos) {
    return std::string::npos;
  }
  pos += key.size();
  char* end = nullptr;
  *out = std::strtod(text.c_str() + pos, &end);
  if (end == text.c_str() + pos) {
    return std::string::npos;
  }
  return pos;
}

// Walks the records for `metric` and checks the 4-worker rate against the
// 1-worker rate. Returns true if the phase holds its speedup floor.
bool CheckPhase(const std::string& text, const std::string& metric_name,
                const char* phase_label, double required) {
  double rate1 = 0;
  double rate4 = 0;
  const std::string metric = "\"metric\": \"" + metric_name + "\"";
  for (size_t pos = text.find(metric); pos != std::string::npos;
       pos = text.find(metric, pos + metric.size())) {
    double value = 0;
    double cpus = 0;
    if (FindNumber(text, "\"value\": ", pos, &value) == std::string::npos ||
        FindNumber(text, "\"cpus\": ", pos, &cpus) == std::string::npos) {
      continue;
    }
    if (cpus == 1) {
      rate1 = value;
    } else if (cpus == 4) {
      rate4 = value;
    }
  }
  if (rate1 <= 0 || rate4 <= 0) {
    std::fprintf(stderr,
                 "check-smp-scaling: report has no %s records for 1 and 4 "
                 "workers (run smp_scaling with --cpus >= 4)\n",
                 phase_label);
    return false;
  }
  double speedup = rate4 / rate1;
  std::printf(
      "check-smp-scaling: %s phase %.3g -> %.3g calls/s (1 -> 4 workers), "
      "speedup %.2fx (required >= %.2fx)\n",
      phase_label, rate1, rate4, speedup, required);
  if (speedup < required) {
    std::fprintf(stderr,
                 "check-smp-scaling: FAIL — the %s phase no longer scales; "
                 "did a syscall path fall back onto a shared lock?\n",
                 phase_label);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: check-smp-scaling <smp_scaling.json>\n");
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "check-smp-scaling: cannot read %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  double hw_cpus = 0;
  if (FindNumber(text, "\"hw_cpus\": ", 0, &hw_cpus) == std::string::npos) {
    std::fprintf(stderr, "check-smp-scaling: no hw_cpus field in %s\n",
                 argv[1]);
    return 1;
  }
  if (hw_cpus < 4) {
    std::printf(
        "check-smp-scaling: SKIP — host has %.0f hardware thread(s); the "
        "1->4 worker speedup needs 4 to mean anything\n",
        hw_cpus);
    return kExitSkip;
  }

  bool ok = CheckPhase(text, "kernel syscalls/sec", "kernel",
                       kKernelRequiredSpeedup);
  ok &= CheckPhase(text, "readmostly syscalls/sec", "read-mostly",
                   kReadMostlyRequiredSpeedup);
  if (!ok) {
    return 1;
  }
  std::printf("check-smp-scaling: OK\n");
  return 0;
}
